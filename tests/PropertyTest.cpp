//===- tests/PropertyTest.cpp - Cross-cutting properties -------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// Whole-pipeline properties checked across the corpus:
//
//  * Dynamic soundness of detection: every NPE the interpreter witnesses
//    corresponds to a detected warning (modulo the deliberately-opaque
//    framework round-trips, which the corpus apps do not contain).
//  * Soundness of the sound filters: no witnessed (use, free) pair is
//    sound-pruned.
//  * Printer/parser round-trip over generated apps.
//  * Determinism of the whole pipeline.
//  * k-monotonicity: coarser contexts never lose warnings.
//
//===----------------------------------------------------------------------===//

#include "corpus/Evaluate.h"
#include "frontend/Frontend.h"
#include "interp/Interp.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace nadroid;

namespace {

/// Apps exercised by the heavier properties (a representative slice:
/// every harmful pattern type, FP categories, all filter idioms).
const char *SampleApps[] = {"ToDoList",   "Zxing",      "ConnectBot",
                            "MyTracks_1", "Aard",       "QKSMS",
                            "Dns66",      "MyTracks_2", "FireFox"};

class AppPropertyTest : public ::testing::TestWithParam<const char *> {};

TEST_P(AppPropertyTest, EveryWitnessIsADetectedWarning) {
  corpus::CorpusApp App = corpus::buildAppNamed(GetParam());
  report::NadroidResult R = report::analyzeProgram(*App.Prog);

  interp::ExploreOptions Opts;
  Opts.Schedules = 150;
  Opts.Seed = 29;
  interp::ScheduleExplorer Explorer(*App.Prog, Opts);
  std::set<interp::UafWitness> Witnesses = Explorer.explore();

  for (const interp::UafWitness &W : Witnesses) {
    bool Detected = false;
    for (const race::UafWarning &Warning : R.warnings())
      Detected |= Warning.Use == W.Use && Warning.Free == W.Free;
    EXPECT_TRUE(Detected) << "witnessed but undetected: "
                          << W.Use->field()->qualifiedName();
  }
}

TEST_P(AppPropertyTest, SoundFiltersNeverPruneWitnessedPairs) {
  corpus::CorpusApp App = corpus::buildAppNamed(GetParam());
  report::NadroidResult R = report::analyzeProgram(*App.Prog);

  interp::ExploreOptions Opts;
  Opts.Schedules = 150;
  Opts.Seed = 31;
  interp::ScheduleExplorer Explorer(*App.Prog, Opts);
  std::set<interp::UafWitness> Witnesses = Explorer.explore();

  for (const interp::UafWitness &W : Witnesses) {
    for (size_t I = 0; I < R.warnings().size(); ++I) {
      const race::UafWarning &Warning = R.warnings()[I];
      if (Warning.Use != W.Use || Warning.Free != W.Free)
        continue;
      EXPECT_NE(R.Pipeline.Verdicts[I].StageReached,
                filters::WarningVerdict::Stage::PrunedBySound)
          << "SOUND filter pruned a dynamically-confirmed UAF on "
          << Warning.F->qualifiedName();
    }
  }
}

TEST_P(AppPropertyTest, PrintParseRoundTripPreservesAnalysis) {
  corpus::CorpusApp App = corpus::buildAppNamed(GetParam());
  std::string Text = ir::programToString(*App.Prog);
  frontend::ParseResult Reparsed =
      frontend::parseProgramText(Text, "gen.air", App.Name);
  ASSERT_TRUE(Reparsed.Success) << "generated app must reparse";

  report::NadroidResult R1 = report::analyzeProgram(*App.Prog);
  report::NadroidResult R2 = report::analyzeProgram(*Reparsed.Prog);
  EXPECT_EQ(R1.warnings().size(), R2.warnings().size());
  EXPECT_EQ(R1.Pipeline.RemainingAfterSound,
            R2.Pipeline.RemainingAfterSound);
  EXPECT_EQ(R1.Pipeline.RemainingAfterUnsound,
            R2.Pipeline.RemainingAfterUnsound);
}

TEST_P(AppPropertyTest, PipelineIsDeterministic) {
  corpus::CorpusApp App = corpus::buildAppNamed(GetParam());
  report::NadroidResult R1 = report::analyzeProgram(*App.Prog);
  report::NadroidResult R2 = report::analyzeProgram(*App.Prog);
  ASSERT_EQ(R1.warnings().size(), R2.warnings().size());
  for (size_t I = 0; I < R1.warnings().size(); ++I) {
    EXPECT_EQ(R1.warnings()[I].key(), R2.warnings()[I].key());
    EXPECT_EQ(R1.Pipeline.Verdicts[I].StageReached,
              R2.Pipeline.Verdicts[I].StageReached);
  }
}

TEST_P(AppPropertyTest, CoarserContextsNeverLoseWarnings) {
  corpus::CorpusApp App = corpus::buildAppNamed(GetParam());
  report::NadroidOptions K1;
  K1.K = 1;
  report::NadroidOptions K2;
  K2.K = 2;
  report::NadroidResult R1 = report::analyzeProgram(*App.Prog, K1);
  report::NadroidResult R2 = report::analyzeProgram(*App.Prog, K2);
  // k=1 merges heap contexts: aliasing only grows.
  EXPECT_GE(R1.warnings().size(), R2.warnings().size());
  // Every k=2 warning has a k=1 counterpart at the same sites.
  std::set<std::string> Coarse;
  for (const race::UafWarning &W : R1.warnings())
    Coarse.insert(W.key());
  for (const race::UafWarning &W : R2.warnings())
    EXPECT_TRUE(Coarse.count(W.key())) << W.key();
}

INSTANTIATE_TEST_SUITE_P(Sample, AppPropertyTest,
                         ::testing::ValuesIn(SampleApps));

//===----------------------------------------------------------------------===//
// Whole-corpus aggregates (the Figure 5 shape as assertions)
//===----------------------------------------------------------------------===//

TEST(Property, SoundFiltersPruneMostWarningsOnTestApps) {
  uint64_t Potential = 0, AfterSound = 0;
  for (corpus::CorpusApp &App : corpus::buildTestCorpus()) {
    report::NadroidResult R = report::analyzeProgram(*App.Prog);
    Potential += R.warnings().size();
    AfterSound += R.Pipeline.RemainingAfterSound;
  }
  ASSERT_GT(Potential, 0u);
  double SoundShare = 1.0 - double(AfterSound) / double(Potential);
  // Paper: 88%. Accept the neighborhood.
  EXPECT_GT(SoundShare, 0.80);
  EXPECT_LT(SoundShare, 0.95);
}

TEST(Property, UnsoundFiltersPruneMostSurvivors) {
  uint64_t AfterSound = 0, AfterUnsound = 0;
  for (corpus::CorpusApp &App : corpus::buildTestCorpus()) {
    report::NadroidResult R = report::analyzeProgram(*App.Prog);
    AfterSound += R.Pipeline.RemainingAfterSound;
    AfterUnsound += R.Pipeline.RemainingAfterUnsound;
  }
  ASSERT_GT(AfterSound, 0u);
  double UnsoundShare = 1.0 - double(AfterUnsound) / double(AfterSound);
  // Paper: 70%. Accept the neighborhood.
  EXPECT_GT(UnsoundShare, 0.55);
  EXPECT_LT(UnsoundShare, 0.90);
}

} // namespace
