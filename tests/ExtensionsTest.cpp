//===- tests/ExtensionsTest.cpp - Ranking, Fragments, schedules -------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// Tests for the features beyond the paper's core pipeline: the §6.2/§7
// ranking view, the witness-schedule aid, and the Fragment-modeling
// future-work extension (§8.1/§8.7).
//
//===----------------------------------------------------------------------===//

#include "corpus/Patterns.h"
#include "interp/Interp.h"
#include "ir/IRBuilder.h"
#include "report/Rank.h"

#include <gtest/gtest.h>

using namespace nadroid;
using namespace nadroid::ir;

namespace {

//===----------------------------------------------------------------------===//
// Ranking
//===----------------------------------------------------------------------===//

TEST(Rank, RemainingBeforeUnsoundSoundExcluded) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.harmfulEcEc();         // remaining
  E.falseUr(1);            // unsound-pruned
  E.falseMhbLifecycle(1);  // sound-pruned: excluded

  report::NadroidResult R = report::analyzeProgram(P);
  std::vector<report::RankedWarning> Ranked = report::rankWarnings(R);
  ASSERT_EQ(Ranked.size(), 2u);
  EXPECT_EQ(Ranked[0].Tier, 0u);
  EXPECT_EQ(Ranked[1].Tier, 1u);
  EXPECT_EQ(R.warnings()[Ranked[0].Index].Use->parentMethod()->name(),
            "onClick");
}

TEST(Rank, SuspicionOrderWithinRemaining) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.harmfulEcEc(); // least suspicious type
  E.harmfulCNt();  // most suspicious type
  E.harmfulPcPc(); // middle

  report::NadroidResult R = report::analyzeProgram(P);
  std::vector<report::RankedWarning> Ranked = report::rankWarnings(R);
  // The C-NT pattern also yields a UR-pruned guard-load entry; look only
  // at tier 0.
  std::vector<report::PairType> Tier0;
  for (const report::RankedWarning &W : Ranked)
    if (W.Tier == 0)
      Tier0.push_back(W.Type);
  ASSERT_EQ(Tier0.size(), 3u);
  EXPECT_EQ(Tier0[0], report::PairType::CNt);
  EXPECT_EQ(Tier0[1], report::PairType::PcPc);
  EXPECT_EQ(Tier0[2], report::PairType::EcEc);
}

TEST(Rank, FewerUnsoundReasonsRankHigher) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.falseUr(1);  // one reason (UR)
  E.falseRhb();  // RHB fires; often PHB/CHB do not

  report::NadroidResult R = report::analyzeProgram(P);
  std::vector<report::RankedWarning> Ranked = report::rankWarnings(R);
  ASSERT_GE(Ranked.size(), 2u);
  for (size_t I = 1; I < Ranked.size(); ++I)
    EXPECT_LE(Ranked[I - 1].UnsoundReasons, Ranked[I].UnsoundReasons);
}

TEST(Rank, RenderedLineMentionsTierAndType) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.harmfulCNt();
  report::NadroidResult R = report::analyzeProgram(P);
  std::vector<report::RankedWarning> Ranked = report::rankWarnings(R);
  ASSERT_FALSE(Ranked.empty());
  std::string Line = report::renderRankedLine(R, Ranked[0], 1);
  EXPECT_NE(Line.find("#1"), std::string::npos);
  EXPECT_NE(Line.find("remaining"), std::string::npos);
  EXPECT_NE(Line.find("C-NT"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Witness schedules
//===----------------------------------------------------------------------===//

TEST(WitnessSchedule, TraceEndsAtTheCrashAndContainsBothSides) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.harmfulEcEc(); // use onClick, free onCreateOptionsMenu

  report::NadroidResult R = report::analyzeProgram(P);
  ASSERT_EQ(R.remainingIndices().size(), 1u);
  const race::UafWarning &W = R.warnings()[R.remainingIndices()[0]];

  interp::ScheduleExplorer Explorer(*&P);
  interp::WitnessSchedule Schedule;
  ASSERT_TRUE(Explorer.tryWitness(W.Use, W.Free, 60, &Schedule));
  ASSERT_FALSE(Schedule.Activations.empty());
  EXPECT_FALSE(Schedule.CrashSite.empty());

  // The last activation is the crashing use callback; the free callback
  // appears before it.
  EXPECT_NE(Schedule.Activations.back().find("onClick"),
            std::string::npos);
  bool FreeSeen = false;
  for (size_t I = 0; I + 1 < Schedule.Activations.size(); ++I)
    FreeSeen |= Schedule.Activations[I].find("onCreateOptionsMenu") !=
                std::string::npos;
  EXPECT_TRUE(FreeSeen);
  EXPECT_NE(Schedule.CrashSite.find("use"), std::string::npos);
}

TEST(WitnessSchedule, NativeThreadsAreLabelled) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.harmfulCRt();
  report::NadroidResult R = report::analyzeProgram(P);
  ASSERT_FALSE(R.remainingIndices().empty());
  const race::UafWarning &W = R.warnings()[R.remainingIndices()[0]];

  interp::ScheduleExplorer Explorer(P);
  interp::WitnessSchedule Schedule;
  ASSERT_TRUE(Explorer.tryWitness(W.Use, W.Free, 60, &Schedule));
  bool NativeSeen = false;
  for (const std::string &Step : Schedule.Activations)
    NativeSeen |= Step.find("[native]") != std::string::npos;
  EXPECT_TRUE(NativeSeen);
}

//===----------------------------------------------------------------------===//
// Fragment-modeling extension
//===----------------------------------------------------------------------===//

TEST(Fragments, OffByDefaultMatchesPrototype) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.fnFragment();
  report::NadroidResult R = report::analyzeProgram(P);
  EXPECT_TRUE(R.warnings().empty()) << "§8.1: Fragments not modeled";
}

TEST(Fragments, ExtensionDetectsTheBrowserMiss) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.fnFragment(); // onResume uses, onDestroy frees

  report::NadroidOptions Opts;
  Opts.ModelFragments = true;
  report::NadroidResult R = report::analyzeProgram(P, Opts);
  ASSERT_EQ(R.warnings().size(), 1u);
  // use in onResume vs free in onDestroy: MHB-Lifecycle proves the order
  // — exactly how the paper's Table 3 onDestroy rows get filtered.
  EXPECT_EQ(R.Pipeline.Verdicts[0].StageReached,
            filters::WarningVerdict::Stage::PrunedBySound);
  EXPECT_TRUE(R.Pipeline.Verdicts[0].FiredFilters.count(
      filters::FilterKind::MHB));
}

TEST(Fragments, ExtensionFindsGenuineFragmentBugs) {
  // A real ordering bug inside a Fragment (free NOT in onDestroy).
  Program P("t");
  IRBuilder B(P);
  Clazz *Payload = B.makeClass("Pl", ClassKind::Plain);
  B.makeMethod(Payload, "use");
  B.emitReturn();
  Clazz *Frag = B.makeClass("Frag", ClassKind::Fragment);
  Field *F = B.addField(Frag, "f", Payload);
  B.makeMethod(Frag, "onCreate");
  Local *X = B.emitNew("x", Payload);
  B.emitStore(B.thisLocal(), F, X);
  B.makeMethod(Frag, "onClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), F);
  B.emitCall(nullptr, U, "use");
  B.makeMethod(Frag, "onCreateOptionsMenu");
  B.emitStore(B.thisLocal(), F, nullptr);

  report::NadroidOptions Opts;
  Opts.ModelFragments = true;
  report::NadroidResult R = report::analyzeProgram(P, Opts);
  ASSERT_EQ(R.remainingIndices().size(), 1u);

  // And the interpreter extension can witness it.
  interp::ExploreOptions IOpts;
  IOpts.ModelFragments = true;
  IOpts.Schedules = 300;
  interp::ScheduleExplorer Explorer(P, IOpts);
  EXPECT_FALSE(Explorer.explore().empty());

  // Without the interpreter extension the fragment never runs.
  interp::ScheduleExplorer Vanilla(P);
  EXPECT_TRUE(Vanilla.explore().empty());
}

} // namespace
