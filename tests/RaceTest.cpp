//===- tests/RaceTest.cpp - Detector unit tests (§5) ----------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/ThreadReach.h"
#include "ir/IRBuilder.h"
#include "race/Detector.h"
#include "threadify/Threadifier.h"

#include <gtest/gtest.h>

using namespace nadroid;
using namespace nadroid::ir;

namespace {

struct RaceFixture {
  Program P{"t"};
  IRBuilder B{P};
  Clazz *Payload;
  Clazz *Act;
  Field *F;

  RaceFixture() {
    Payload = B.makeClass("P", ClassKind::Plain);
    Act = B.makeClass("Act", ClassKind::Activity);
    F = B.addField(Act, "f", Payload);
    P.addManifestComponent(Act);
    B.makeMethod(Act, "onCreate");
    Local *X = B.emitNew("x", Payload);
    B.emitStore(B.thisLocal(), F, X);
  }

  race::DetectorResult detect() {
    android::ApiIndex Apis(P);
    threadify::ThreadForest Forest = threadify::threadify(P);
    analysis::PointsToAnalysis PTA(P, Forest, Apis);
    PTA.run();
    analysis::ThreadReach Reach(PTA, Forest);
    return race::detectUafWarnings(Forest, PTA, Reach);
  }
};

TEST(Race, UseAndFreeInDifferentCallbacksRace) {
  RaceFixture Fx;
  Fx.B.makeMethod(Fx.Act, "onClick");
  Local *U = Fx.B.local("u");
  Fx.B.emitLoad(U, Fx.B.thisLocal(), Fx.F);
  Fx.B.makeMethod(Fx.Act, "onLongClick");
  Fx.B.emitStore(Fx.B.thisLocal(), Fx.F, nullptr);

  race::DetectorResult R = Fx.detect();
  ASSERT_EQ(R.Warnings.size(), 1u);
  EXPECT_EQ(R.Warnings[0].F, Fx.F);
  EXPECT_FALSE(R.Warnings[0].Pairs.empty());
}

TEST(Race, SameCallbackNeverRacesWithItself) {
  RaceFixture Fx;
  Fx.B.makeMethod(Fx.Act, "onClick");
  Local *U = Fx.B.local("u");
  Fx.B.emitLoad(U, Fx.B.thisLocal(), Fx.F);
  Fx.B.emitStore(Fx.B.thisLocal(), Fx.F, nullptr);

  race::DetectorResult R = Fx.detect();
  EXPECT_TRUE(R.Warnings.empty());
}

TEST(Race, NonNullStoreIsNotAFree) {
  RaceFixture Fx;
  Fx.B.makeMethod(Fx.Act, "onClick");
  Local *U = Fx.B.local("u");
  Fx.B.emitLoad(U, Fx.B.thisLocal(), Fx.F);
  Fx.B.makeMethod(Fx.Act, "onLongClick");
  Local *Y = Fx.B.emitNew("y", Fx.Payload);
  Fx.B.emitStore(Fx.B.thisLocal(), Fx.F, Y);

  race::DetectorResult R = Fx.detect();
  EXPECT_TRUE(R.Warnings.empty());
}

TEST(Race, DifferentFieldsDoNotPair) {
  RaceFixture Fx;
  Field *Other = Fx.B.addField(Fx.Act, "other", Fx.Payload);
  Fx.B.makeMethod(Fx.Act, "onClick");
  Local *U = Fx.B.local("u");
  Fx.B.emitLoad(U, Fx.B.thisLocal(), Fx.F);
  Fx.B.makeMethod(Fx.Act, "onLongClick");
  Fx.B.emitStore(Fx.B.thisLocal(), Other, nullptr);

  race::DetectorResult R = Fx.detect();
  EXPECT_TRUE(R.Warnings.empty());
}

TEST(Race, DistinctBaseObjectsDoNotAlias) {
  // Use on activity A's field, free on activity B's same-declared field:
  // different synthetic receivers, no alias, no race.
  Program P("t");
  IRBuilder B(P);
  Clazz *Payload = B.makeClass("P", ClassKind::Plain);
  Clazz *A1 = B.makeClass("A1", ClassKind::Activity);
  Field *F1 = B.addField(A1, "f", Payload);
  Clazz *A2 = B.makeClass("A2", ClassKind::Activity);
  Field *F2 = B.addField(A2, "f2", Payload);
  P.addManifestComponent(A1);
  P.addManifestComponent(A2);
  B.makeMethod(A1, "onClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), F1);
  B.makeMethod(A2, "onClick");
  B.emitStore(B.thisLocal(), F2, nullptr);

  android::ApiIndex Apis(P);
  threadify::ThreadForest Forest = threadify::threadify(P);
  analysis::PointsToAnalysis PTA(P, Forest, Apis);
  PTA.run();
  analysis::ThreadReach Reach(PTA, Forest);
  race::DetectorResult R = race::detectUafWarnings(Forest, PTA, Reach);
  EXPECT_TRUE(R.Warnings.empty());
}

TEST(Race, WarningAggregatesThreadPairs) {
  // Two distinct use callbacks against one free → two warnings; each
  // carries its own pair list.
  RaceFixture Fx;
  Fx.B.makeMethod(Fx.Act, "onClick");
  Local *U1 = Fx.B.local("u");
  Fx.B.emitLoad(U1, Fx.B.thisLocal(), Fx.F);
  Fx.B.makeMethod(Fx.Act, "onLongClick");
  Local *U2 = Fx.B.local("u");
  Fx.B.emitLoad(U2, Fx.B.thisLocal(), Fx.F);
  Fx.B.makeMethod(Fx.Act, "onCreateOptionsMenu");
  Fx.B.emitStore(Fx.B.thisLocal(), Fx.F, nullptr);

  race::DetectorResult R = Fx.detect();
  ASSERT_EQ(R.Warnings.size(), 2u);
  for (const race::UafWarning &W : R.Warnings)
    EXPECT_EQ(W.Pairs.size(), 1u);
  EXPECT_EQ(R.Stats.get("race.warnings"), 2u);
  EXPECT_GE(R.Stats.get("race.uses"), 2u);
  EXPECT_GE(R.Stats.get("race.frees"), 1u);
}

TEST(Race, DeterministicOrder) {
  RaceFixture Fx;
  Fx.B.makeMethod(Fx.Act, "onClick");
  Local *U1 = Fx.B.local("u1");
  Fx.B.emitLoad(U1, Fx.B.thisLocal(), Fx.F);
  Local *U2 = Fx.B.local("u2");
  Fx.B.emitLoad(U2, Fx.B.thisLocal(), Fx.F);
  Fx.B.makeMethod(Fx.Act, "onLongClick");
  Fx.B.emitStore(Fx.B.thisLocal(), Fx.F, nullptr);

  race::DetectorResult R1 = Fx.detect();
  race::DetectorResult R2 = Fx.detect();
  ASSERT_EQ(R1.Warnings.size(), R2.Warnings.size());
  for (size_t I = 0; I < R1.Warnings.size(); ++I)
    EXPECT_EQ(R1.Warnings[I].key(), R2.Warnings[I].key());
  // Sorted by use site id.
  ASSERT_EQ(R1.Warnings.size(), 2u);
  EXPECT_LT(R1.Warnings[0].Use->id(), R1.Warnings[1].Use->id());
}

TEST(Race, LocksDoNotSuppressDetection) {
  // §5: locks give atomicity, not ordering — a fully locked use/free
  // pair must still be reported by the detector (filters decide later).
  RaceFixture Fx;
  Field *LockF = Fx.B.addField(Fx.Act, "lock", Fx.Payload);
  Fx.B.setInsertMethod(Fx.Act->findOwnMethod("onCreate"));
  Local *LockObj = Fx.B.emitNew("l", Fx.Payload);
  Fx.B.emitStore(Fx.B.thisLocal(), LockF, LockObj);

  Fx.B.makeMethod(Fx.Act, "onClick");
  Local *L1 = Fx.B.local("l1");
  Fx.B.emitLoad(L1, Fx.B.thisLocal(), LockF);
  Fx.B.beginSync(L1);
  Local *U = Fx.B.local("u");
  Fx.B.emitLoad(U, Fx.B.thisLocal(), Fx.F);
  Fx.B.emitCall(nullptr, U, "use");
  Fx.B.endSync();

  Fx.B.makeMethod(Fx.Act, "onLongClick");
  Local *L2 = Fx.B.local("l2");
  Fx.B.emitLoad(L2, Fx.B.thisLocal(), LockF);
  Fx.B.beginSync(L2);
  Fx.B.emitStore(Fx.B.thisLocal(), Fx.F, nullptr);
  Fx.B.endSync();

  race::DetectorResult R = Fx.detect();
  // Two uses race with the free: the lock field load and the guarded
  // field load both count... only loads of Fx.F pair with the free.
  bool Found = false;
  for (const race::UafWarning &W : R.Warnings)
    Found |= W.F == Fx.F;
  EXPECT_TRUE(Found);
}

} // namespace
