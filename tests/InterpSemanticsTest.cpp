//===- tests/InterpSemanticsTest.cpp - Android semantics in the interpreter -----===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The interpreter is the ground-truth oracle, so its framework semantics
// must be right: lifecycle legality, pause gating, finish, AsyncTask
// ordering, monitors, and the dynamic-only APIs. Each test encodes a
// schedule-space property as "a witness exists" or "no witness exists
// over many random schedules".
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "interp/Interp.h"

#include <gtest/gtest.h>

using namespace nadroid;

namespace {

std::unique_ptr<ir::Program> parse(const std::string &Source) {
  frontend::ParseResult R =
      frontend::parseProgramText(Source, "test.air", "test");
  EXPECT_TRUE(R.Success) << [&] {
    std::string S;
    for (const auto &D : R.Diags)
      S += D.Message + "\n";
    return S;
  }();
  return std::move(R.Prog);
}

std::set<interp::UafWitness> explore(const ir::Program &P,
                                     unsigned Schedules = 400,
                                     uint64_t Seed = 5) {
  interp::ExploreOptions Opts;
  Opts.Schedules = Schedules;
  Opts.Seed = Seed;
  interp::ScheduleExplorer E(P, Opts);
  return E.explore();
}

/// Template app: a free in `FREE` and a use in `USE`, both on MainAct.
std::string app(const std::string &ExtraClasses,
                const std::string &Methods) {
  return R"(
app "t";
manifest MainAct;
class Obj : Plain {
  method use() {
    return;
  }
}
)" + ExtraClasses +
         R"(
class MainAct : Activity {
  field f : Obj;
  method onCreate() {
    x = new Obj;
    this.f = x;
  }
)" + Methods +
         "\n}\n";
}

TEST(InterpSemantics, OnCreateAlwaysPrecedesOtherCallbacks) {
  // The free is in onCreate *before* the allocation — if any callback
  // could run first, its use would crash on an uninitialized (no-origin)
  // null, never on this store. And since onCreate runs first, the
  // re-allocation means no schedule crashes at all.
  auto P = parse(app("", R"(
  method onClick() {
    u = this.f;
    u.use();
  }
)"));
  EXPECT_TRUE(explore(*P).empty());
}

TEST(InterpSemantics, OnDestroyDisablesComponent) {
  // free in onDestroy: after it the activity is dead, so the use can
  // never follow the free.
  auto P = parse(app("", R"(
  method onDestroy() {
    this.f = null;
  }
  method onClick() {
    u = this.f;
    u.use();
  }
)"));
  EXPECT_TRUE(explore(*P).empty());
}

TEST(InterpSemantics, PausedActivityBlocksUiCallbacks) {
  // free in onPause, realloc in onResume: UI events cannot fire while
  // paused, so the use never observes the free.
  auto P = parse(app("", R"(
  method onPause() {
    this.f = null;
  }
  method onResume() {
    x = new Obj;
    this.f = x;
  }
  method onClick() {
    u = this.f;
    u.use();
  }
)"));
  EXPECT_TRUE(explore(*P).empty());
}

TEST(InterpSemantics, SystemEventsFireWhilePaused) {
  // Same shape but the use is a system event (GPS): it DOES fire while
  // paused — the crash is reachable.
  auto P = parse(app("", R"(
  method onPause() {
    this.f = null;
  }
  method onResume() {
    x = new Obj;
    this.f = x;
  }
  method onLocationChanged() {
    u = this.f;
    u.use();
  }
)"));
  EXPECT_FALSE(explore(*P).empty());
}

TEST(InterpSemantics, FinishBlocksLaterUiEvents) {
  auto P = parse(app("", R"(
  method onClick() {
    this.finish();
    this.f = null;
  }
  method onLongClick() {
    u = this.f;
    u.use();
  }
)"));
  EXPECT_TRUE(explore(*P).empty());
}

TEST(InterpSemantics, FinishOnRareErrorPathStillCrashes) {
  auto P = parse(app("", R"(
  method onClick() {
    if (?) {
      this.finish();
    }
    this.f = null;
  }
  method onLongClick() {
    u = this.f;
    u.use();
  }
)"));
  EXPECT_FALSE(explore(*P).empty());
}

TEST(InterpSemantics, LooperCallbacksAreAtomic) {
  // Guarded check-then-use in one callback vs a free in another looper
  // callback: atomicity makes it safe.
  auto P = parse(app("", R"(
  method onClick() {
    g = this.f;
    if (g != null) {
      u = this.f;
      u.use();
    }
  }
  method onLongClick() {
    this.f = null;
  }
)"));
  EXPECT_TRUE(explore(*P).empty());
}

TEST(InterpSemantics, NativeThreadsInterleaveWithCallbacks) {
  // The same guard does NOT protect against a thread (Figure 1(c)).
  auto P = parse(app(R"(
class Killer : Thread {
  field act : MainAct;
  method run() {
    a = this.act;
    a.f = null;
  }
}
)",
                     R"(
  method onStart() {
    t = new Killer;
    t.act = this;
    t.start();
  }
  method onPause() {
    g = this.f;
    if (g != null) {
      u = this.f;
      u.use();
    }
  }
)"));
  EXPECT_FALSE(explore(*P).empty());
}

TEST(InterpSemantics, MonitorsBlockInterleaving) {
  // Locking both sides restores safety even against the thread.
  auto P2 = parse(R"(
app "t";
manifest MainAct;
class Obj : Plain {
  method use() {
    return;
  }
}
class Killer : Thread {
  field act : MainAct;
  method run() {
    a = this.act;
    l = a.mon;
    synchronized (l) {
      a.f = null;
    }
  }
}
class MainAct : Activity {
  field f : Obj;
  field mon : Obj;
  method onCreate() {
    x = new Obj;
    this.f = x;
    m = new Obj;
    this.mon = m;
  }
  method onStart() {
    t = new Killer;
    t.act = this;
    t.start();
  }
  method onPause() {
    l = this.mon;
    synchronized (l) {
      g = this.f;
      if (g != null) {
        u = this.f;
        u.use();
      }
    }
  }
}
)");
  EXPECT_TRUE(explore(*P2, 600).empty());
}

const char *AsyncOrderApp = R"(
app "t";
manifest MainAct;
class Obj : Plain {
  method use() {
    return;
  }
}
class Job : AsyncTask {
  field act : MainAct;
  method doInBackground() {
    a = this.act;
    u = a.f;
    u.use();
  }
  method onPostExecute() {
    a = this.act;
    a.f = null;
  }
}
class MainAct : Activity {
  field f : Obj;
  method onCreate() {
    x = new Obj;
    this.f = x;
    t = new Job;
    t.act = this;
    t.execute();
  }
}
)";

TEST(InterpSemantics, AsyncTaskObeysFrameworkOrderPerInstance) {
  // free in onPostExecute, use in doInBackground: within one task
  // instance bg always precedes post, so no crash is schedulable when
  // the task is executed once (onCreate runs once).
  auto P = parse(AsyncOrderApp);
  EXPECT_TRUE(explore(*P, 600).empty());
}

TEST(InterpSemantics, AsyncTaskOrderIsOnlyPerInstance) {
  // The same shape executed from a repeatable callback spawns several
  // task instances; task A's onPostExecute can free while task B's
  // doInBackground still uses. The paper's MHB-AsyncTask filter (like
  // Chord's k-obj naming) reasons per abstract instance, so this
  // cross-instance hazard is a latent unsoundness the reproduction
  // preserves deliberately.
  std::string Source = AsyncOrderApp;
  // Move the execute from onCreate to a repeatable UI callback.
  size_t Pos = Source.find("    t = new Job;");
  ASSERT_NE(Pos, std::string::npos);
  Source.insert(Pos, "  }\n  method onClick() {\n");
  auto P = parse(Source);
  EXPECT_FALSE(explore(*P, 600).empty());
}

TEST(InterpSemantics, RemoveCallbacksCancelsPendingPosts) {
  auto P = parse(R"(
app "t";
manifest MainAct;
class Obj : Plain {
  method use() {
    return;
  }
}
class H : Handler {
  field act : MainAct;
  method handleMessage() {
    a = this.act;
    u = a.f;
    u.use();
  }
}
class MainAct : Activity {
  field f : Obj;
  field h : H;
  method onCreate() {
    x = new Obj;
    this.f = x;
    hh = new H;
    hh.act = this;
    this.h = hh;
  }
  method onClick() {
    m = this.h;
    m.sendMessage();
    m2 = this.h;
    m2.removeCallbacksAndMessages();
    this.f = null;
  }
}
)");
  // The message is always cancelled before the free (same atomic
  // callback), so handleMessage never runs after the free.
  EXPECT_TRUE(explore(*P, 600).empty());
}

TEST(InterpSemantics, ConnectBeforeDisconnectEnforced) {
  // use in onServiceConnected, free in onServiceDisconnected: MHB holds
  // dynamically too.
  auto P = parse(R"(
app "t";
manifest MainAct;
class Obj : Plain {
  method use() {
    return;
  }
}
class Conn : ServiceConnection {
  field act : MainAct;
  method onServiceConnected() {
    a = this.act;
    u = a.f;
    u.use();
  }
  method onServiceDisconnected() {
    a = this.act;
    a.f = null;
  }
}
class MainAct : Activity {
  field f : Obj;
  method onCreate() {
    x = new Obj;
    this.f = x;
    c = new Conn;
    c.act = this;
    this.bindService(c);
  }
}
)");
  EXPECT_TRUE(explore(*P, 600).empty());
}

TEST(InterpSemantics, UninitializedNullHasNoProvenance) {
  // Reading a never-initialized field and dereferencing crashes the
  // schedule but must NOT count as a UAF witness (no freeing store).
  auto P = parse(R"(
app "t";
manifest MainAct;
class Obj : Plain {
  method use() {
    return;
  }
}
class MainAct : Activity {
  field f : Obj;
  method onClick() {
    u = this.f;
    u.use();
  }
}
)");
  EXPECT_TRUE(explore(*P).empty());
}

TEST(InterpSemantics, DeterministicWitnessSets) {
  auto P = parse(app("", R"(
  method onClick() {
    u = this.f;
    u.use();
  }
  method onCreateOptionsMenu() {
    this.f = null;
  }
)"));
  auto W1 = explore(*P, 100, 42);
  auto W2 = explore(*P, 100, 42);
  EXPECT_EQ(W1, W2);
  EXPECT_FALSE(W1.empty());
}

} // namespace
