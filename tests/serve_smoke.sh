#!/usr/bin/env bash
# End-to-end --serve smoke test: start the daemon, drive analyze /
# explain / lint / status / shutdown through --connect, and byte-compare
# every payload and exit code with the one-shot CLI on the same files.
# Usage: serve_smoke.sh <path-to-nadroid> <work-dir>
set -u

NADROID=$1
WORK=$2

rm -rf "$WORK"
mkdir -p "$WORK"
# Keep the socket short: sun_path caps out around 107 bytes.
SOCK=$(mktemp -u "${TMPDIR:-/tmp}/nadroid-smoke-XXXXXX.sock")

"$NADROID" --export-corpus "$WORK/apps" > /dev/null || exit 1

"$NADROID" --serve "$SOCK" 2> "$WORK/daemon.log" &
DAEMON=$!
trap 'kill $DAEMON 2>/dev/null' EXIT

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "FAIL: daemon never bound $SOCK"; exit 1; }

fail=0
for app in Aard Browser ConnectBot; do
  f="$WORK/apps/$app.air"
  for req in "analyze" "analyze --all" "explain" "lint"; do
    verb=${req%% *}
    flags=${req#"$verb"}
    case $verb in
      analyze) "$NADROID" $flags "$f" > "$WORK/cli.out" 2> "$WORK/cli.err" ;;
      explain) "$NADROID" --explain "$f" > "$WORK/cli.out" 2> "$WORK/cli.err" ;;
      lint)    "$NADROID" --lint "$f" > "$WORK/cli.out" 2> "$WORK/cli.err" ;;
    esac
    cli=$?
    "$NADROID" --connect "$SOCK" "$verb" "$f" $flags \
      > "$WORK/d.out" 2> "$WORK/d.err"
    daemon=$?
    if [ "$cli" -ne "$daemon" ]; then
      echo "FAIL $app '$req': exit $cli (cli) vs $daemon (daemon)"
      fail=1
    fi
    cmp -s "$WORK/cli.out" "$WORK/d.out" \
      || { echo "FAIL $app '$req': stdout differs"; fail=1; }
    cmp -s "$WORK/cli.err" "$WORK/d.err" \
      || { echo "FAIL $app '$req': stderr differs"; fail=1; }
  done
done

# The second pass answers from resident sessions — same bytes.
"$NADROID" "$WORK/apps/Aard.air" > "$WORK/cli.out" 2> /dev/null
"$NADROID" --connect "$SOCK" analyze "$WORK/apps/Aard.air" \
  > "$WORK/d.out" 2> /dev/null
cmp -s "$WORK/cli.out" "$WORK/d.out" \
  || { echo "FAIL: warm analyze differs from CLI"; fail=1; }

"$NADROID" --connect "$SOCK" status | grep -q "sessions:" \
  || { echo "FAIL: status response"; fail=1; }

# A malformed request is answered, not dropped, and the daemon survives.
"$NADROID" --connect "$SOCK" frobnicate 2>&1 | grep -q "unknown request verb" \
  || { echo "FAIL: malformed request diagnostic"; fail=1; }

"$NADROID" --connect "$SOCK" shutdown > /dev/null \
  || { echo "FAIL: shutdown request"; fail=1; }
wait $DAEMON
rc=$?
[ "$rc" -eq 0 ] || { echo "FAIL: daemon exited $rc"; fail=1; }
trap - EXIT

[ "$fail" -eq 0 ] && echo "serve smoke OK"
exit $fail
