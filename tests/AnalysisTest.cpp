//===- tests/AnalysisTest.cpp - Guard/alloc/lockset/cancel analyses -------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/AllocFlow.h"
#include "analysis/CancelReach.h"
#include "analysis/Guards.h"
#include "analysis/Lockset.h"
#include "analysis/ThreadReach.h"
#include "ir/IRBuilder.h"
#include "threadify/Threadifier.h"

#include <gtest/gtest.h>

using namespace nadroid;
using namespace nadroid::analysis;
using namespace nadroid::ir;

namespace {

struct MethodFixture {
  Program P{"t"};
  IRBuilder B{P};
  Clazz *Payload;
  Clazz *Act;
  Field *F;
  Method *M = nullptr;

  MethodFixture() {
    Payload = B.makeClass("P", ClassKind::Plain);
    Act = B.makeClass("Act", ClassKind::Activity);
    F = B.addField(Act, "f", Payload);
  }

  Method *method(const char *Name = "m") {
    M = B.makeMethod(Act, Name);
    return M;
  }
};

//===----------------------------------------------------------------------===//
// GuardAnalysis (IG support)
//===----------------------------------------------------------------------===//

TEST(Guards, ReloadUnderGuardIsGuarded) {
  MethodFixture Fx;
  Fx.method();
  Local *G = Fx.B.local("g");
  Fx.B.emitLoad(G, Fx.B.thisLocal(), Fx.F);
  Fx.B.beginIfNotNull(G);
  Local *U = Fx.B.local("u");
  LoadStmt *Use = Fx.B.emitLoad(U, Fx.B.thisLocal(), Fx.F);
  Fx.B.emitCall(nullptr, U, "use");
  Fx.B.endIf();
  GuardAnalysis GA(*Fx.M);
  EXPECT_TRUE(GA.isGuarded(Use));
}

TEST(Guards, CheckThenDerefGuardsTheLoad) {
  MethodFixture Fx;
  Fx.method();
  Local *X = Fx.B.local("x");
  LoadStmt *Load = Fx.B.emitLoad(X, Fx.B.thisLocal(), Fx.F);
  Fx.B.beginIfNotNull(X);
  Fx.B.emitCall(nullptr, X, "use");
  Fx.B.endIf();
  GuardAnalysis GA(*Fx.M);
  EXPECT_TRUE(GA.isGuarded(Load));
}

TEST(Guards, DerefOutsideGuardedRegionNotGuarded) {
  MethodFixture Fx;
  Fx.method();
  Local *X = Fx.B.local("x");
  LoadStmt *Load = Fx.B.emitLoad(X, Fx.B.thisLocal(), Fx.F);
  Fx.B.beginIfNotNull(X);
  Fx.B.endIf();
  Fx.B.emitCall(nullptr, X, "use"); // after the if: unprotected
  GuardAnalysis GA(*Fx.M);
  EXPECT_FALSE(GA.isGuarded(Load));
}

TEST(Guards, UnguardedLoadNotGuarded) {
  MethodFixture Fx;
  Fx.method();
  Local *U = Fx.B.local("u");
  LoadStmt *Use = Fx.B.emitLoad(U, Fx.B.thisLocal(), Fx.F);
  Fx.B.emitCall(nullptr, U, "use");
  GuardAnalysis GA(*Fx.M);
  EXPECT_FALSE(GA.isGuarded(Use));
}

TEST(Guards, IsNullGuardProtectsElseBranch) {
  MethodFixture Fx;
  Fx.method();
  Local *G = Fx.B.local("g");
  Fx.B.emitLoad(G, Fx.B.thisLocal(), Fx.F);
  Fx.B.beginIfIsNull(G);
  Local *Bad = Fx.B.local("bad");
  LoadStmt *ThenLoad = Fx.B.emitLoad(Bad, Fx.B.thisLocal(), Fx.F);
  Fx.B.emitCall(nullptr, Bad, "use");
  Fx.B.beginElse();
  Local *Ok = Fx.B.local("ok");
  LoadStmt *ElseLoad = Fx.B.emitLoad(Ok, Fx.B.thisLocal(), Fx.F);
  Fx.B.emitCall(nullptr, Ok, "use");
  Fx.B.endIf();
  GuardAnalysis GA(*Fx.M);
  EXPECT_FALSE(GA.isGuarded(ThenLoad)); // the null branch!
  EXPECT_TRUE(GA.isGuarded(ElseLoad));
}

TEST(Guards, GuardOnDifferentFieldDoesNotProtect) {
  MethodFixture Fx;
  Field *Other = Fx.B.addField(Fx.Act, "other", Fx.Payload);
  Fx.method();
  Local *G = Fx.B.local("g");
  Fx.B.emitLoad(G, Fx.B.thisLocal(), Other);
  Fx.B.beginIfNotNull(G);
  Local *U = Fx.B.local("u");
  LoadStmt *Use = Fx.B.emitLoad(U, Fx.B.thisLocal(), Fx.F);
  Fx.B.emitCall(nullptr, U, "use");
  Fx.B.endIf();
  GuardAnalysis GA(*Fx.M);
  EXPECT_FALSE(GA.isGuarded(Use));
}

TEST(Guards, InterveningStoreInvalidatesGuard) {
  MethodFixture Fx;
  Fx.method();
  Local *G = Fx.B.local("g");
  Fx.B.emitLoad(G, Fx.B.thisLocal(), Fx.F);
  Fx.B.emitStore(Fx.B.thisLocal(), Fx.F, nullptr); // free between
  Fx.B.beginIfNotNull(G);
  Local *U = Fx.B.local("u");
  LoadStmt *Use = Fx.B.emitLoad(U, Fx.B.thisLocal(), Fx.F);
  Fx.B.emitCall(nullptr, U, "use");
  Fx.B.endIf();
  GuardAnalysis GA(*Fx.M);
  EXPECT_FALSE(GA.isGuarded(Use));
}

TEST(Guards, UnknownPredicateGivesNoGuard) {
  MethodFixture Fx;
  Fx.method();
  Fx.B.beginIfUnknown();
  Local *U = Fx.B.local("u");
  LoadStmt *Use = Fx.B.emitLoad(U, Fx.B.thisLocal(), Fx.F);
  Fx.B.emitCall(nullptr, U, "use");
  Fx.B.endIf();
  GuardAnalysis GA(*Fx.M);
  EXPECT_FALSE(GA.isGuarded(Use));
}

//===----------------------------------------------------------------------===//
// AllocFlow (IA/MA/RHB support)
//===----------------------------------------------------------------------===//

TEST(AllocFlow, AllocationDominatesUse) {
  MethodFixture Fx;
  Fx.method();
  Local *X = Fx.B.emitNew("x", Fx.Payload);
  Fx.B.emitStore(Fx.B.thisLocal(), Fx.F, X);
  Local *U = Fx.B.local("u");
  LoadStmt *Use = Fx.B.emitLoad(U, Fx.B.thisLocal(), Fx.F);
  AllocFlowResult R = analyzeAllocFlow(*Fx.M, false);
  EXPECT_TRUE(R.ProtectedLoads.count(Use));
  EXPECT_TRUE(R.MayAllocFields.count(Fx.F));
}

TEST(AllocFlow, UseBeforeAllocationUnprotected) {
  MethodFixture Fx;
  Fx.method();
  Local *U = Fx.B.local("u");
  LoadStmt *Use = Fx.B.emitLoad(U, Fx.B.thisLocal(), Fx.F);
  Local *X = Fx.B.emitNew("x", Fx.Payload);
  Fx.B.emitStore(Fx.B.thisLocal(), Fx.F, X);
  AllocFlowResult R = analyzeAllocFlow(*Fx.M, false);
  EXPECT_FALSE(R.ProtectedLoads.count(Use));
  EXPECT_TRUE(R.MayAllocFields.count(Fx.F)); // may-analysis still sees it
}

TEST(AllocFlow, FreeKillsTheFact) {
  MethodFixture Fx;
  Fx.method();
  Local *X = Fx.B.emitNew("x", Fx.Payload);
  Fx.B.emitStore(Fx.B.thisLocal(), Fx.F, X);
  Fx.B.emitStore(Fx.B.thisLocal(), Fx.F, nullptr);
  Local *U = Fx.B.local("u");
  LoadStmt *Use = Fx.B.emitLoad(U, Fx.B.thisLocal(), Fx.F);
  AllocFlowResult R = analyzeAllocFlow(*Fx.M, false);
  EXPECT_FALSE(R.ProtectedLoads.count(Use));
}

TEST(AllocFlow, BranchJoinRequiresBothSides) {
  MethodFixture Fx;
  Fx.method();
  Fx.B.beginIfUnknown();
  Local *X = Fx.B.emitNew("x", Fx.Payload);
  Fx.B.emitStore(Fx.B.thisLocal(), Fx.F, X);
  Fx.B.endIf();
  Local *U = Fx.B.local("u");
  LoadStmt *Use = Fx.B.emitLoad(U, Fx.B.thisLocal(), Fx.F);
  AllocFlowResult R = analyzeAllocFlow(*Fx.M, false);
  EXPECT_FALSE(R.ProtectedLoads.count(Use)) << "one-sided alloc is may";
  EXPECT_TRUE(R.MayAllocFields.count(Fx.F));
}

TEST(AllocFlow, BothBranchesAllocating) {
  MethodFixture Fx;
  Fx.method();
  Fx.B.beginIfUnknown();
  Local *X = Fx.B.emitNew("x", Fx.Payload);
  Fx.B.emitStore(Fx.B.thisLocal(), Fx.F, X);
  Fx.B.beginElse();
  Local *Y = Fx.B.emitNew("y", Fx.Payload);
  Fx.B.emitStore(Fx.B.thisLocal(), Fx.F, Y);
  Fx.B.endIf();
  Local *U = Fx.B.local("u");
  LoadStmt *Use = Fx.B.emitLoad(U, Fx.B.thisLocal(), Fx.F);
  AllocFlowResult R = analyzeAllocFlow(*Fx.M, false);
  EXPECT_TRUE(R.ProtectedLoads.count(Use));
}

TEST(AllocFlow, GetterResultCountsOnlyInMaMode) {
  MethodFixture Fx;
  Fx.method();
  Local *T = Fx.B.local("t");
  Fx.B.emitCall(T, Fx.B.thisLocal(), "mk");
  Fx.B.emitStore(Fx.B.thisLocal(), Fx.F, T);
  Local *U = Fx.B.local("u");
  LoadStmt *Use = Fx.B.emitLoad(U, Fx.B.thisLocal(), Fx.F);
  EXPECT_FALSE(analyzeAllocFlow(*Fx.M, false).ProtectedLoads.count(Use));
  EXPECT_TRUE(analyzeAllocFlow(*Fx.M, true).ProtectedLoads.count(Use));
}

TEST(AllocFlow, EarlyReturnBeforeReallocKillsMustAtExit) {
  // An early return inside a branch exits before the re-allocation, so
  // the field is NOT must-allocated at exit — the refuter must not get a
  // revive edge from this method.
  MethodFixture Fx;
  Fx.method();
  Fx.B.beginIfUnknown();
  Fx.B.emitReturn();
  Fx.B.endIf();
  Local *X = Fx.B.emitNew("x", Fx.Payload);
  Fx.B.emitStore(Fx.B.thisLocal(), Fx.F, X);
  AllocFlowResult R = analyzeAllocFlow(*Fx.M, false);
  EXPECT_FALSE(R.MustAllocAtExitFields.count(Fx.F));
  EXPECT_TRUE(R.MayAllocFields.count(Fx.F));
}

TEST(AllocFlow, ReturnsOnAllPathsIntersectExitStates) {
  // Both branches return after allocating: the fall-through is dead and
  // the exit fact is the intersection of the two return states.
  MethodFixture Fx;
  Fx.method();
  Fx.B.beginIfUnknown();
  Local *X = Fx.B.emitNew("x", Fx.Payload);
  Fx.B.emitStore(Fx.B.thisLocal(), Fx.F, X);
  Fx.B.emitReturn();
  Fx.B.beginElse();
  Local *Y = Fx.B.emitNew("y", Fx.Payload);
  Fx.B.emitStore(Fx.B.thisLocal(), Fx.F, Y);
  Fx.B.emitReturn();
  Fx.B.endIf();
  Fx.B.emitStore(Fx.B.thisLocal(), Fx.F, nullptr); // dead: never reached
  AllocFlowResult R = analyzeAllocFlow(*Fx.M, false);
  EXPECT_TRUE(R.MustAllocAtExitFields.count(Fx.F));
}

TEST(AllocFlow, TailReturnKeepsMustAtExit) {
  MethodFixture Fx;
  Fx.method();
  Local *X = Fx.B.emitNew("x", Fx.Payload);
  Fx.B.emitStore(Fx.B.thisLocal(), Fx.F, X);
  Fx.B.emitReturn();
  AllocFlowResult R = analyzeAllocFlow(*Fx.M, false);
  EXPECT_TRUE(R.MustAllocAtExitFields.count(Fx.F));
}

TEST(AllocFlow, NonThisBasesIgnored) {
  MethodFixture Fx;
  Clazz *Holder = Fx.B.makeClass("H", ClassKind::Plain);
  Field *HF = Fx.B.addField(Holder, "hf", Fx.Payload);
  Fx.method();
  Local *H = Fx.B.emitNew("h", Holder);
  Local *X = Fx.B.emitNew("x", Fx.Payload);
  Fx.B.emitStore(H, HF, X);
  Local *U = Fx.B.local("u");
  LoadStmt *Use = Fx.B.emitLoad(U, H, HF);
  AllocFlowResult R = analyzeAllocFlow(*Fx.M, false);
  EXPECT_FALSE(R.ProtectedLoads.count(Use));
}

//===----------------------------------------------------------------------===//
// Lockset
//===----------------------------------------------------------------------===//

TEST(Lockset, NestedSyncsAccumulate) {
  Program P("t");
  IRBuilder B(P);
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  Field *F = B.addField(Act, "f", Act);
  P.addManifestComponent(Act);
  Method *M = B.makeMethod(Act, "onCreate");
  Local *L1 = B.emitNew("l1", Act);
  Local *L2 = B.emitNew("l2", Act);
  B.beginSync(L1);
  B.beginSync(L2);
  StoreStmt *Inner = B.emitStore(B.thisLocal(), F, L1);
  B.endSync();
  StoreStmt *Outer = B.emitStore(B.thisLocal(), F, L2);
  B.endSync();
  StoreStmt *Outside = B.emitStore(B.thisLocal(), F, nullptr);

  android::ApiIndex Apis(P);
  threadify::ThreadForest Forest = threadify::threadify(P);
  PointsToAnalysis PTA(P, Forest, Apis);
  PTA.run();
  LocksetAnalysis Locks(PTA);
  ObjectId Synth = 0;
  ASSERT_TRUE(PTA.syntheticObjectFor(Act, Synth));
  MethodCtx Ctx{M, Synth};
  EXPECT_EQ(Locks.locksHeldAt(Inner, Ctx).size(), 2u);
  EXPECT_EQ(Locks.locksHeldAt(Outer, Ctx).size(), 1u);
  EXPECT_TRUE(Locks.locksHeldAt(Outside, Ctx).empty());
}

//===----------------------------------------------------------------------===//
// CancelReach (CHB support)
//===----------------------------------------------------------------------===//

TEST(CancelReach, FindsFinishThroughHelpers) {
  Program P("t");
  IRBuilder B(P);
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  P.addManifestComponent(Act);
  B.makeMethod(Act, "bail");
  B.emitFinish();
  Method *Click = B.makeMethod(Act, "onClick");
  B.beginIfUnknown();
  B.emitCall(nullptr, B.thisLocal(), "bail");
  B.endIf();
  Method *Other = B.makeMethod(Act, "onLongClick");
  B.emitReturn();

  android::ApiIndex Apis(P);
  CancelReach CR(P, Apis);
  const auto &Cancels = CR.cancelsFrom(Click);
  ASSERT_EQ(Cancels.size(), 1u);
  EXPECT_EQ(Cancels[0].Kind, android::ApiKind::Finish);
  EXPECT_EQ(Cancels[0].Target, Act);
  EXPECT_TRUE(CR.cancelsFrom(Other).empty());
}

} // namespace
