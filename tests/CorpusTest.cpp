//===- tests/CorpusTest.cpp - Corpus integration tests --------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// Parameterized over all 27 corpus apps: the pipeline's per-app profile
// must match the seeded recipe — exactly the paper's Table 1 invariants —
// plus injection-harness checks (Table 2's 28/2/3 layout).
//
//===----------------------------------------------------------------------===//

#include "corpus/Evaluate.h"
#include "corpus/Inject.h"

#include <gtest/gtest.h>

using namespace nadroid;
using corpus::Recipe;
using corpus::SeedKind;

namespace {

class CorpusAppTest : public ::testing::TestWithParam<Recipe> {};

TEST_P(CorpusAppTest, ProfileMatchesRecipe) {
  const Recipe &R = GetParam();
  corpus::CorpusApp App = corpus::buildApp(R);
  corpus::EvaluateOptions Opts;
  Opts.RunInterpreter = false; // the witness sweep runs in PropertyTest
  corpus::AppEvaluation E = corpus::evaluateApp(App, Opts);

  // True harmful count equals the seeded count (the paper's totals).
  unsigned SeededHarmful = R.HEcEc + R.HEcPc + R.HPcPc + R.HCRt + R.HCNt +
                           R.HAsyncDestroy;
  EXPECT_EQ(E.TrueHarmful, SeededHarmful);

  // Surviving false positives match the seeded FP categories.
  auto FalseCount = [&](SeedKind K) {
    auto It = E.FalseBySeed.find(K);
    return It == E.FalseBySeed.end() ? 0u : It->second;
  };
  EXPECT_EQ(FalseCount(SeedKind::FpPathInsens), R.FpPath);
  EXPECT_EQ(FalseCount(SeedKind::FpPointsTo), R.FpPts);
  EXPECT_EQ(FalseCount(SeedKind::FpNotReach), R.FpNotReach);
  EXPECT_EQ(FalseCount(SeedKind::FpMissingHb), R.FpMissHb);

  // Remaining = harmful + FPs; every remaining warning is attributed.
  EXPECT_EQ(E.AfterUnsound,
            SeededHarmful + R.FpPath + R.FpPts + R.FpNotReach + R.FpMissHb);
  EXPECT_EQ(E.Unattributed, 0u);

  // Filter-stage monotonicity.
  EXPECT_LE(E.AfterUnsound, E.AfterSound);
  EXPECT_LE(E.AfterSound, E.Potential);

  // The bulk sound idioms really are pruned in the sound stage.
  unsigned SoundMass = R.SoundIg + R.SoundMhbLife + R.SoundMhbSvc +
                       R.SoundMhbAsync + R.SoundIa;
  EXPECT_GE(E.Potential - E.AfterSound, SoundMass);

  // Apps the paper reports as fully clean end fully clean.
  if (R.Paper.AfterUnsound == 0) {
    EXPECT_EQ(E.AfterUnsound, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    All27, CorpusAppTest, ::testing::ValuesIn(corpus::allRecipes()),
    [](const ::testing::TestParamInfo<Recipe> &Info) {
      return Info.param.Name;
    });

TEST(Corpus, TwentySevenAppsSplitTrainTest) {
  EXPECT_EQ(corpus::allRecipes().size(), 27u);
  EXPECT_EQ(corpus::buildTrainCorpus().size(), 7u);
  EXPECT_EQ(corpus::buildTestCorpus().size(), 20u);
}

TEST(Corpus, TotalTrueHarmfulMatchesPaper) {
  unsigned Total = 0;
  for (const Recipe &R : corpus::allRecipes())
    Total +=
        R.HEcEc + R.HEcPc + R.HPcPc + R.HCRt + R.HCNt + R.HAsyncDestroy;
  EXPECT_EQ(Total, 88u) << "the paper's headline count";
}

TEST(Corpus, BuildIsDeterministic) {
  corpus::CorpusApp A = corpus::buildAppNamed("ConnectBot");
  corpus::CorpusApp B = corpus::buildAppNamed("ConnectBot");
  EXPECT_EQ(A.Prog->statementCount(), B.Prog->statementCount());
  ASSERT_EQ(A.Seeds.size(), B.Seeds.size());
  for (size_t I = 0; I < A.Seeds.size(); ++I) {
    EXPECT_EQ(A.Seeds[I].FieldName, B.Seeds[I].FieldName);
    EXPECT_EQ(A.Seeds[I].Kind, B.Seeds[I].Kind);
  }
}

TEST(Corpus, SeedsHaveUniqueFields) {
  for (const Recipe &R : corpus::allRecipes()) {
    corpus::CorpusApp App = corpus::buildApp(R);
    std::set<std::string> Fields;
    for (const corpus::SeededBug &S : App.Seeds)
      EXPECT_TRUE(Fields.insert(S.FieldName).second)
          << R.Name << ": duplicate seeded field " << S.FieldName;
  }
}

//===----------------------------------------------------------------------===//
// Injection harness (Table 2 invariants)
//===----------------------------------------------------------------------===//

TEST(Inject, TwentyEightInjectionsOverEightApps) {
  unsigned Total = 0;
  for (const corpus::InjectionSpec &S : corpus::table2Injections())
    Total += S.total();
  EXPECT_EQ(corpus::table2Injections().size(), 8u);
  EXPECT_EQ(Total, 28u);
}

TEST(Inject, OpaquePathEscapesDetection) {
  corpus::InjectionSpec Spec;
  Spec.App = "Tomdroid";
  Spec.OpaquePath = 1;
  corpus::CorpusApp App = corpus::buildInjectedApp(Spec);
  report::NadroidResult R = report::analyzeProgram(*App.Prog);
  for (const race::UafWarning &W : R.warnings())
    EXPECT_EQ(W.F->qualifiedName().find(".pX"), std::string::npos)
        << "the framework round-trip must be invisible to detection";
}

TEST(Inject, ChbErrorPathDetectedButPruned) {
  corpus::InjectionSpec Spec;
  Spec.App = "Tomdroid";
  Spec.ChbErrorPath = 1;
  corpus::CorpusApp App = corpus::buildInjectedApp(Spec);
  report::NadroidResult R = report::analyzeProgram(*App.Prog);
  bool Found = false;
  for (size_t I = 0; I < R.warnings().size(); ++I) {
    if (R.warnings()[I].F->qualifiedName().find(".fX") ==
        std::string::npos)
      continue;
    Found = true;
    EXPECT_NE(R.Pipeline.Verdicts[I].StageReached,
              filters::WarningVerdict::Stage::Remaining);
    EXPECT_TRUE(R.Pipeline.Verdicts[I].FiredFilters.count(
        filters::FilterKind::CHB));
  }
  EXPECT_TRUE(Found);
}

TEST(Inject, PlainInjectionsSurviveFilters) {
  corpus::InjectionSpec Spec;
  Spec.App = "Swiftnotes"; // a clean app: only injections can remain
  Spec.EcEc = 1;
  Spec.EcPc = 1;
  corpus::CorpusApp App = corpus::buildInjectedApp(Spec);
  report::NadroidResult R = report::analyzeProgram(*App.Prog);
  EXPECT_EQ(R.Pipeline.RemainingAfterUnsound, 2u);
}

} // namespace
