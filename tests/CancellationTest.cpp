//===- tests/CancellationTest.cpp - CHB scopes and PHB transitivity ---------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The CHB filter recognizes four cancellation APIs (§6.2.1), each with
// its own coverage scope; these tests pin each scope down, plus PHB's
// behavior across posting chains.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "report/Json.h"
#include "report/Nadroid.h"

#include <gtest/gtest.h>

using namespace nadroid;
using namespace nadroid::ir;
using filters::FilterKind;
using filters::WarningVerdict;

namespace {

/// Shared scaffold: activity + payload field allocated in onCreate.
struct Scaffold {
  Program P{"t"};
  IRBuilder B{P};
  Clazz *Payload;
  Clazz *Act;
  Field *F;

  Scaffold() {
    Payload = B.makeClass("Pl", ClassKind::Plain);
    B.makeMethod(Payload, "use");
    B.emitReturn();
    Act = B.makeClass("Act", ClassKind::Activity);
    F = B.addField(Act, "f", Payload);
    P.addManifestComponent(Act);
    B.makeMethod(Act, "onCreate");
    Local *X = B.emitNew("x", Payload);
    B.emitStore(B.thisLocal(), F, X);
  }

  /// The verdict of the warning whose use method is \p UseMethod.
  const WarningVerdict *verdictFor(const report::NadroidResult &R,
                                   const std::string &UseMethod) {
    for (size_t I = 0; I < R.warnings().size(); ++I)
      if (R.warnings()[I].Use->parentMethod()->qualifiedName() ==
          UseMethod)
        return &R.Pipeline.Verdicts[I];
    return nullptr;
  }
};

TEST(Cancellation, UnbindServiceCoversConnectionCallbacks) {
  Scaffold S;
  // The connection's onServiceConnected uses the field (no MHB pair:
  // the free is NOT in onServiceDisconnected).
  Clazz *Conn = S.B.makeClass("Conn", ClassKind::ServiceConnection);
  Field *ActF = S.B.addField(Conn, "act", S.Act);
  S.B.makeMethod(Conn, "onServiceConnected");
  Local *A = S.B.local("a");
  S.B.emitLoad(A, S.B.thisLocal(), ActF);
  Local *U = S.B.local("u");
  S.B.emitLoad(U, A, S.F);
  S.B.emitCall(nullptr, U, "use");

  S.B.setInsertMethod(S.Act->findOwnMethod("onCreate"));
  Local *C = S.B.emitNew("c", Conn);
  S.B.emitStore(C, ActF, S.B.thisLocal());
  S.B.emitCall(nullptr, S.B.thisLocal(), "bindService", {C});

  // The freeing callback unbinds first: no connection callback can run
  // after it — CHB prunes.
  S.B.makeMethod(S.Act, "onClick");
  S.B.emitUnbindService();
  S.B.emitStore(S.B.thisLocal(), S.F, nullptr);

  report::NadroidResult R = report::analyzeProgram(S.P);
  const WarningVerdict *V = S.verdictFor(R, "Conn.onServiceConnected");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->StageReached, WarningVerdict::Stage::PrunedByUnsound);
  EXPECT_TRUE(V->FiredFilters.count(FilterKind::CHB));
}

TEST(Cancellation, UnregisterReceiverCoversOnReceive) {
  Scaffold S;
  Clazz *Recv = S.B.makeClass("Recv", ClassKind::Receiver);
  Field *ActF = S.B.addField(Recv, "act", S.Act);
  S.B.makeMethod(Recv, "onReceive");
  Local *A = S.B.local("a");
  S.B.emitLoad(A, S.B.thisLocal(), ActF);
  Local *U = S.B.local("u");
  S.B.emitLoad(U, A, S.F);
  S.B.emitCall(nullptr, U, "use");

  S.B.setInsertMethod(S.Act->findOwnMethod("onCreate"));
  Local *RV = S.B.emitNew("r", Recv);
  S.B.emitStore(RV, ActF, S.B.thisLocal());
  S.B.emitCall(nullptr, S.B.thisLocal(), "registerReceiver", {RV});

  S.B.makeMethod(S.Act, "onClick");
  S.B.emitUnregisterReceiver();
  S.B.emitStore(S.B.thisLocal(), S.F, nullptr);

  report::NadroidResult R = report::analyzeProgram(S.P);
  const WarningVerdict *V = S.verdictFor(R, "Recv.onReceive");
  ASSERT_NE(V, nullptr);
  EXPECT_TRUE(V->FiredFilters.count(FilterKind::CHB));
}

TEST(Cancellation, RemoveCallbacksCoversHandlerMessages) {
  Scaffold S;
  Clazz *H = S.B.makeClass("Hdl", ClassKind::Handler);
  Field *ActF = S.B.addField(H, "act", S.Act);
  S.B.makeMethod(H, "handleMessage");
  Local *A = S.B.local("a");
  S.B.emitLoad(A, S.B.thisLocal(), ActF);
  Local *U = S.B.local("u");
  S.B.emitLoad(U, A, S.F);
  S.B.emitCall(nullptr, U, "use");

  Field *HandlerF = S.B.addField(S.Act, "h", H);
  S.B.setInsertMethod(S.Act->findOwnMethod("onCreate"));
  Local *HH = S.B.emitNew("hh", H);
  S.B.emitStore(HH, ActF, S.B.thisLocal());
  S.B.emitStore(S.B.thisLocal(), HandlerF, HH);

  S.B.makeMethod(S.Act, "onClick");
  Local *M = S.B.local("m");
  S.B.emitLoad(M, S.B.thisLocal(), HandlerF);
  S.B.emitCall(nullptr, M, "sendMessage");

  // A different callback drains the handler then frees.
  S.B.makeMethod(S.Act, "onLongClick");
  Local *M2 = S.B.local("m2");
  S.B.emitLoad(M2, S.B.thisLocal(), HandlerF);
  S.B.emitCall(nullptr, M2, "removeCallbacksAndMessages");
  S.B.emitStore(S.B.thisLocal(), S.F, nullptr);

  report::NadroidResult R = report::analyzeProgram(S.P);
  const WarningVerdict *V = S.verdictFor(R, "Hdl.handleMessage");
  ASSERT_NE(V, nullptr);
  EXPECT_TRUE(V->FiredFilters.count(FilterKind::CHB));
}

TEST(Cancellation, FinishDoesNotCoverOnDestroy) {
  // finish() triggers onDestroy — a use there can still follow the free.
  Scaffold S;
  S.B.makeMethod(S.Act, "onClick");
  S.B.emitFinish();
  S.B.emitStore(S.B.thisLocal(), S.F, nullptr);
  S.B.makeMethod(S.Act, "onDestroy");
  Local *U = S.B.local("u");
  S.B.emitLoad(U, S.B.thisLocal(), S.F);
  S.B.emitCall(nullptr, U, "use");

  report::NadroidResult R = report::analyzeProgram(S.P);
  const WarningVerdict *V = S.verdictFor(R, "Act.onDestroy");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->StageReached, WarningVerdict::Stage::Remaining)
      << "onDestroy runs after finish(); CHB must not prune it";
}

TEST(Cancellation, FinishInAnotherActivityDoesNotCover) {
  Scaffold S;
  // A second activity finishes itself; the first one's warning must
  // survive.
  Clazz *Other = S.B.makeClass("Other", ClassKind::Activity);
  S.P.addManifestComponent(Other);
  S.B.makeMethod(Other, "onClick");
  S.B.emitFinish();

  S.B.makeMethod(S.Act, "onClick");
  Local *U = S.B.local("u");
  S.B.emitLoad(U, S.B.thisLocal(), S.F);
  S.B.emitCall(nullptr, U, "use");
  S.B.makeMethod(S.Act, "onLongClick");
  S.B.emitStore(S.B.thisLocal(), S.F, nullptr);

  report::NadroidResult R = report::analyzeProgram(S.P);
  const WarningVerdict *V = S.verdictFor(R, "Act.onClick");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->StageReached, WarningVerdict::Stage::Remaining);
}

TEST(Cancellation, PhbIsTransitiveAcrossLooperPosts) {
  // onClick posts A; A posts B; B frees. The whole chain is ordered
  // after onClick, so onClick's use is PHB-protected.
  Scaffold S;
  Clazz *RunB = S.B.makeClass("RunB", ClassKind::Runnable);
  Field *BAct = S.B.addField(RunB, "act", S.Act);
  S.B.makeMethod(RunB, "run");
  Local *A1 = S.B.local("a");
  S.B.emitLoad(A1, S.B.thisLocal(), BAct);
  S.B.emitStore(A1, S.F, nullptr);

  Clazz *RunA = S.B.makeClass("RunA", ClassKind::Runnable);
  Field *AAct = S.B.addField(RunA, "act", S.Act);
  S.B.makeMethod(RunA, "run");
  Local *A2 = S.B.local("a");
  S.B.emitLoad(A2, S.B.thisLocal(), AAct);
  Local *RB = S.B.emitNew("rb", RunB);
  S.B.emitStore(RB, BAct, A2);
  S.B.emitCall(nullptr, A2, "runOnUiThread", {RB});

  S.B.makeMethod(S.Act, "onClick");
  Local *RA = S.B.emitNew("ra", RunA);
  S.B.emitStore(RA, AAct, S.B.thisLocal());
  S.B.emitCall(nullptr, S.B.thisLocal(), "runOnUiThread", {RA});
  Local *U = S.B.local("u");
  S.B.emitLoad(U, S.B.thisLocal(), S.F);
  S.B.emitCall(nullptr, U, "use");

  report::NadroidResult R = report::analyzeProgram(S.P);
  const WarningVerdict *V = S.verdictFor(R, "Act.onClick");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->StageReached, WarningVerdict::Stage::PrunedByUnsound);
  EXPECT_TRUE(V->FiredFilters.count(FilterKind::PHB));
}

TEST(Cancellation, PhbChainBrokenByNativeHop) {
  // onClick starts a THREAD that posts the freeing runnable: the poster
  // hop is not atomic, so PHB must not order onClick's use against it.
  Scaffold S;
  Clazz *RunB = S.B.makeClass("RunB", ClassKind::Runnable);
  Field *BAct = S.B.addField(RunB, "act", S.Act);
  S.B.makeMethod(RunB, "run");
  Local *A1 = S.B.local("a");
  S.B.emitLoad(A1, S.B.thisLocal(), BAct);
  S.B.emitStore(A1, S.F, nullptr);

  Clazz *W = S.B.makeClass("W", ClassKind::ThreadClass);
  Field *WAct = S.B.addField(W, "act", S.Act);
  S.B.makeMethod(W, "run");
  Local *A2 = S.B.local("a");
  S.B.emitLoad(A2, S.B.thisLocal(), WAct);
  Local *RB = S.B.emitNew("rb", RunB);
  S.B.emitStore(RB, BAct, A2);
  S.B.emitCall(nullptr, A2, "runOnUiThread", {RB});

  S.B.makeMethod(S.Act, "onClick");
  Local *T = S.B.emitNew("t", W);
  S.B.emitStore(T, WAct, S.B.thisLocal());
  S.B.emitCall(nullptr, T, "start");
  Local *U = S.B.local("u");
  S.B.emitLoad(U, S.B.thisLocal(), S.F);
  S.B.emitCall(nullptr, U, "use");

  report::NadroidResult R = report::analyzeProgram(S.P);
  const WarningVerdict *V = S.verdictFor(R, "Act.onClick");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->StageReached, WarningVerdict::Stage::Remaining);
}

//===----------------------------------------------------------------------===//
// JSON output
//===----------------------------------------------------------------------===//

TEST(Json, EscapesSpecials) {
  EXPECT_EQ(report::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(report::jsonEscape("plain"), "plain");
}

TEST(Json, StructureCoversWarnings) {
  Scaffold S;
  S.B.makeMethod(S.Act, "onClick");
  Local *U = S.B.local("u");
  S.B.emitLoad(U, S.B.thisLocal(), S.F);
  S.B.emitCall(nullptr, U, "use");
  S.B.makeMethod(S.Act, "onLongClick");
  S.B.emitStore(S.B.thisLocal(), S.F, nullptr);

  report::NadroidResult R = report::analyzeProgram(S.P);
  std::string Json = report::renderJson(R, S.P);
  EXPECT_NE(Json.find("\"app\": \"t\""), std::string::npos);
  EXPECT_NE(Json.find("\"potential\": 1"), std::string::npos);
  EXPECT_NE(Json.find("\"field\": \"Act.f\""), std::string::npos);
  EXPECT_NE(Json.find("\"stage\": \"remaining\""), std::string::npos);
  EXPECT_NE(Json.find("\"type\": \"EC-EC\""), std::string::npos);
  EXPECT_NE(Json.find("\"useThread\""), std::string::npos);
}

} // namespace
