//===- tests/DevaTest.cpp - DEvA baseline tests ---------------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "corpus/Patterns.h"
#include "deva/Deva.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace nadroid;
using namespace nadroid::ir;
using deva::DevaResult;
using deva::runDeva;

namespace {

TEST(Deva, DetectsIntraClassAnomaly) {
  Program P("t");
  IRBuilder B(P);
  Clazz *Payload = B.makeClass("Pl", ClassKind::Plain);
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  Field *F = B.addField(Act, "f", Payload);
  B.makeMethod(Act, "onClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), F);
  B.emitCall(nullptr, U, "use");
  B.makeMethod(Act, "onDestroy");
  B.emitStore(B.thisLocal(), F, nullptr);

  DevaResult R = runDeva(P);
  ASSERT_EQ(R.Warnings.size(), 1u);
  EXPECT_EQ(R.Warnings[0].F, F);
  EXPECT_EQ(R.Warnings[0].UseCallback->name(), "onClick");
  EXPECT_EQ(R.Warnings[0].FreeCallback->name(), "onDestroy");
  EXPECT_TRUE(R.Warnings[0].Harmful);
}

TEST(Deva, MissesInterClassRace) {
  // The ConnectBot shape with NO outer link: the use and free live in
  // unrelated classes, outside DEvA's intra-class scope (§2.3).
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.harmfulEcPc(); // Conn class frees the activity's field
  DevaResult R = runDeva(P);
  EXPECT_TRUE(R.Warnings.empty());
}

TEST(Deva, SeesInnerClassViaOuterLink) {
  Program P("t");
  IRBuilder B(P);
  Clazz *Payload = B.makeClass("Pl", ClassKind::Plain);
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  Field *F = B.addField(Act, "f", Payload);
  Clazz *Inner = B.makeClass("Inner", ClassKind::Handler);
  Inner->setOuterClass(Act);
  Field *ActF = B.addField(Inner, "act", Act);
  B.makeMethod(Inner, "handleMessage");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  B.emitStore(A, F, nullptr);
  B.makeMethod(Act, "onClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), F);
  B.emitCall(nullptr, U, "use");

  DevaResult R = runDeva(P);
  ASSERT_EQ(R.Warnings.size(), 1u);
  EXPECT_EQ(R.Warnings[0].FreeCallback->qualifiedName(),
            "Inner.handleMessage");
}

TEST(Deva, UnsoundIfGuardSuppressesHarmful) {
  // DEvA's if-guard filter fires with no atomicity requirement — even
  // against a thread (which is why it has false negatives).
  Program P("t");
  IRBuilder B(P);
  Clazz *Payload = B.makeClass("Pl", ClassKind::Plain);
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  Field *F = B.addField(Act, "f", Payload);
  B.makeMethod(Act, "onPause");
  Local *G = B.local("g");
  B.emitLoad(G, B.thisLocal(), F);
  B.beginIfNotNull(G);
  B.emitCall(nullptr, G, "use");
  B.endIf();
  B.makeMethod(Act, "onDestroy");
  B.emitStore(B.thisLocal(), F, nullptr);

  DevaResult R = runDeva(P);
  ASSERT_EQ(R.Warnings.size(), 1u);
  EXPECT_FALSE(R.Warnings[0].Harmful) << "guarded → not harmful for DEvA";
}

TEST(Deva, UnsoundIntraAllocationSuppresses) {
  Program P("t");
  IRBuilder B(P);
  Clazz *Payload = B.makeClass("Pl", ClassKind::Plain);
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  Field *F = B.addField(Act, "f", Payload);
  B.makeMethod(Act, "onClick");
  Local *X = B.emitNew("x", Payload);
  B.emitStore(B.thisLocal(), F, X);
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), F);
  B.emitCall(nullptr, U, "use");
  B.makeMethod(Act, "onLongClick");
  B.emitStore(B.thisLocal(), F, nullptr);

  DevaResult R = runDeva(P);
  ASSERT_EQ(R.Warnings.size(), 1u);
  EXPECT_FALSE(R.Warnings[0].Harmful);
}

TEST(Deva, AnalyzesFragments) {
  // Unlike nAdroid (§8.1), DEvA treats Fragment classes like any other.
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.fnFragment();
  DevaResult R = runDeva(P);
  ASSERT_EQ(R.Warnings.size(), 1u);
  EXPECT_TRUE(R.Warnings[0].Harmful);
  EXPECT_EQ(R.Warnings[0].UseCallback->name(), "onResume");
}

TEST(Deva, IgnoresNativeThreadBodies) {
  // Thread.run is not an event handler: DEvA does not pair it.
  Program P("t");
  IRBuilder B(P);
  Clazz *Payload = B.makeClass("Pl", ClassKind::Plain);
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  Field *F = B.addField(Act, "f", Payload);
  Clazz *W = B.makeClass("W", ClassKind::ThreadClass);
  W->setOuterClass(Act); // even inside the class group
  Field *ActF = B.addField(W, "act", Act);
  B.makeMethod(W, "run");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  B.emitStore(A, F, nullptr);
  B.makeMethod(Act, "onClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), F);
  B.emitCall(nullptr, U, "use");

  DevaResult R = runDeva(P);
  EXPECT_TRUE(R.Warnings.empty());
}

TEST(Deva, FollowsIntraGroupHelpers) {
  Program P("t");
  IRBuilder B(P);
  Clazz *Payload = B.makeClass("Pl", ClassKind::Plain);
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  Field *F = B.addField(Act, "f", Payload);
  B.makeMethod(Act, "readIt");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), F);
  B.emitCall(nullptr, U, "use");
  B.makeMethod(Act, "onClick");
  B.emitCall(nullptr, B.thisLocal(), "readIt");
  B.makeMethod(Act, "onLongClick");
  B.emitStore(B.thisLocal(), F, nullptr);

  DevaResult R = runDeva(P);
  ASSERT_EQ(R.Warnings.size(), 1u);
  EXPECT_EQ(R.Warnings[0].UseCallback->name(), "onClick");
}

TEST(Deva, NoSelfPairs) {
  Program P("t");
  IRBuilder B(P);
  Clazz *Payload = B.makeClass("Pl", ClassKind::Plain);
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  Field *F = B.addField(Act, "f", Payload);
  B.makeMethod(Act, "onClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), F);
  B.emitStore(B.thisLocal(), F, nullptr);
  DevaResult R = runDeva(P);
  EXPECT_TRUE(R.Warnings.empty());
}

TEST(Deva, HarmfulAccessorFiltersResults) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.falseMhbLifecycle(1); // DEvA-harmful (no HB reasoning)
  E.falseIg(1);           // DEvA-guarded
  DevaResult R = runDeva(P);
  ASSERT_EQ(R.Warnings.size(), 2u);
  EXPECT_EQ(R.harmful().size(), 1u);
}

} // namespace
