//===- tests/ShardTest.cpp - Distributed batch sharding + merge -----------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The distributed-batch contracts: shard assignment is a deterministic,
// content-addressed partition (complete and disjoint for any N), the
// checkpoint-log header round-trips and gates --resume on the shard
// spec, and merge-shards reassembles per-shard logs into the exact
// report an unsharded run prints — or refuses with a specific
// diagnostic and exit 8 when the logs do not form one complete
// partition.
//
//===----------------------------------------------------------------------===//

#include "corpus/Patterns.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "report/Batch.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

using namespace nadroid;
namespace fs = std::filesystem;

namespace {

//===----------------------------------------------------------------------===//
// Shard assignment + spec grammar
//===----------------------------------------------------------------------===//

TEST(ShardSpecTest, ShardOfAppIsDeterministicAndInRange) {
  for (unsigned N : {1u, 2u, 3u, 7u}) {
    for (const char *Bytes : {"alpha", "beta", "gamma", "", "alpha"}) {
      unsigned S = report::shardOfApp(Bytes, N);
      EXPECT_GE(S, 1u);
      EXPECT_LE(S, N);
      EXPECT_EQ(S, report::shardOfApp(Bytes, N)) << "nondeterministic";
    }
  }
  // ShardCount 0 and 1 both mean "everything is mine".
  EXPECT_EQ(report::shardOfApp("anything", 0), 1u);
  EXPECT_EQ(report::shardOfApp("anything", 1), 1u);
  // Different content can land on different shards (this pair does for
  // the fixed SHA-256 — a regression here means the hash changed).
  bool AnySplit = false;
  for (const char *Bytes : {"a", "b", "c", "d", "e", "f", "g", "h"})
    AnySplit |= report::shardOfApp(Bytes, 2) == 2;
  EXPECT_TRUE(AnySplit);
}

TEST(ShardSpecTest, ParseShardSpecIsStrict) {
  unsigned I = 0, N = 0;
  EXPECT_TRUE(report::parseShardSpec("1/3", I, N));
  EXPECT_EQ(I, 1u);
  EXPECT_EQ(N, 3u);
  EXPECT_TRUE(report::parseShardSpec("3/3", I, N));
  EXPECT_TRUE(report::parseShardSpec("1/1", I, N));

  for (const char *Bad : {"0/3", "4/3", "a/3", "3/a", "1/0", "1/3x", "x1/3",
                          "1/", "/3", "1", "", "-", "1//3", "-1/3", "1/-3"})
    EXPECT_FALSE(report::parseShardSpec(Bad, I, N)) << Bad;
}

TEST(ShardSpecTest, SpecStringRoundTrips) {
  EXPECT_EQ(report::shardSpecString(0, 0), "-");
  EXPECT_EQ(report::shardSpecString(2, 5), "2/5");
  unsigned I = 0, N = 0;
  ASSERT_TRUE(report::parseShardSpec(report::shardSpecString(2, 5), I, N));
  EXPECT_EQ(I, 2u);
  EXPECT_EQ(N, 5u);
}

//===----------------------------------------------------------------------===//
// Checkpoint-log header
//===----------------------------------------------------------------------===//

TEST(BatchLogHeaderTest, RoundTripsAndIsDisjointFromRows) {
  std::string Header = report::renderBatchLogHeader("2/3", "k=2;lint", true);
  std::string Spec, Fp;
  bool Lint = false;
  ASSERT_TRUE(report::parseBatchLogHeader(Header, Spec, Fp, Lint));
  EXPECT_EQ(Spec, "2/3");
  EXPECT_EQ(Fp, "k=2;lint");
  EXPECT_TRUE(Lint);

  // The row parser must skip headers (no "file" key), and the header
  // parser must skip rows and truncated lines — the two grammars
  // partition the log's lines between them.
  report::BatchApp Row;
  EXPECT_FALSE(report::parseBatchLogLine(Header, Row));
  Row.File = "app.air";
  Row.Status = report::BatchStatus::Ok;
  std::string RowLine = report::renderBatchLogLine(Row);
  EXPECT_FALSE(report::parseBatchLogHeader(RowLine, Spec, Fp, Lint));
  EXPECT_FALSE(report::parseBatchLogHeader(
      Header.substr(0, Header.size() / 2), Spec, Fp, Lint));
  EXPECT_FALSE(report::parseBatchLogHeader("", Spec, Fp, Lint));
}

//===----------------------------------------------------------------------===//
// Sharded runs: partition + merge byte-identity
//===----------------------------------------------------------------------===//

/// Writes one analyzable app; \p Variant varies the emitted statements
/// so each app has distinct canonical bytes (and hence its own shard
/// assignment and cache key).
void writeSeededApp(const fs::path &Dir, const std::string &Name,
                    unsigned Variant) {
  ir::Program P(Name.substr(0, Name.find('.')));
  ir::IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.harmfulEcEc();
  E.falseMhbLifecycle(Variant);
  std::ofstream Out(Dir / Name);
  ASSERT_TRUE(Out.good()) << Name;
  ir::printProgram(P, Out);
}

struct TempCorpus {
  fs::path Dir;
  explicit TempCorpus(const std::string &Name)
      : Dir(fs::temp_directory_path() / Name) {
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
    fs::create_directories(Dir);
  }
  ~TempCorpus() {
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
  }
};

/// One 6-app corpus, analyzed unsharded and as a 3-shard fleet, with a
/// checkpoint log per run — the fixture every merge test reads from.
struct ShardedFixture {
  TempCorpus Apps{"nadroid-shard-corpus"};
  std::string UnshardedLog;
  std::vector<std::string> ShardLogs;
  report::BatchResult Unsharded;
  std::vector<report::BatchResult> Shards;

  ShardedFixture() {
    for (unsigned V = 1; V <= 6; ++V)
      writeSeededApp(Apps.Dir, "app" + std::to_string(V) + ".air", V);

    report::BatchOptions Opts;
    Opts.Dir = Apps.Dir.string();
    Opts.Jobs = 2;
    UnshardedLog = (Apps.Dir / "full.jsonl").string();
    Opts.LogPath = UnshardedLog;
    Unsharded = report::runBatch(Opts);

    for (unsigned I = 1; I <= 3; ++I) {
      Opts.ShardIndex = I;
      Opts.ShardCount = 3;
      Opts.LogPath =
          (Apps.Dir / ("shard" + std::to_string(I) + ".jsonl")).string();
      ShardLogs.push_back(Opts.LogPath);
      Shards.push_back(report::runBatch(Opts));
    }
  }
};

TEST(ShardedBatchTest, ShardsPartitionTheCorpusAndMergeByteIdentically) {
  ShardedFixture F;
  ASSERT_EQ(F.Unsharded.Apps.size(), 6u);

  // Complete and disjoint: every app in exactly one shard.
  std::set<std::string> Seen;
  size_t Total = 0;
  for (const report::BatchResult &S : F.Shards) {
    Total += S.Apps.size();
    for (const report::BatchApp &A : S.Apps)
      EXPECT_TRUE(Seen.insert(A.File).second)
          << A.File << " analyzed by two shards";
  }
  EXPECT_EQ(Total, 6u);
  EXPECT_EQ(Seen.size(), 6u);
  EXPECT_EQ(F.Shards[1].ShardIndex, 2u);
  EXPECT_EQ(F.Shards[1].ShardCount, 3u);

  // Each shard log leads with its spec.
  for (unsigned I = 0; I < 3; ++I) {
    std::ifstream In(F.ShardLogs[I]);
    std::string Line, Spec, Fp;
    bool Lint = false;
    ASSERT_TRUE(std::getline(In, Line));
    ASSERT_TRUE(report::parseBatchLogHeader(Line, Spec, Fp, Lint));
    EXPECT_EQ(Spec, report::shardSpecString(I + 1, 3));
  }

  // The tentpole contract: merged shard logs reproduce the unsharded
  // run's text report byte for byte...
  report::MergeShardsResult MR = report::mergeShardLogs(F.ShardLogs);
  ASSERT_TRUE(MR.ok()) << (MR.Diags.empty() ? "" : MR.Diags.front());
  EXPECT_EQ(report::renderBatchReport(MR.Merged),
            report::renderBatchReport(F.Unsharded));
  EXPECT_EQ(MR.exitCode(), F.Unsharded.exitCode());

  // ...and the merged JSON is deterministic: merging the 3 shard logs
  // and merging the single unsharded log yield identical bytes.
  report::MergeShardsResult One = report::mergeShardLogs({F.UnshardedLog});
  ASSERT_TRUE(One.ok()) << (One.Diags.empty() ? "" : One.Diags.front());
  EXPECT_EQ(report::renderBatchJson(MR.Merged),
            report::renderBatchJson(One.Merged));
  EXPECT_EQ(report::renderBatchReport(One.Merged),
            report::renderBatchReport(F.Unsharded));
}

/// True when any diagnostic contains \p Needle.
bool hasDiag(const report::MergeShardsResult &MR, const std::string &Needle) {
  for (const std::string &D : MR.Diags)
    if (D.find(Needle) != std::string::npos)
      return true;
  return false;
}

TEST(MergeShardsTest, DiagnosesIncompleteOrOverlappingInputs) {
  ShardedFixture F;

  // Missing shard: two of three logs.
  report::MergeShardsResult Missing =
      report::mergeShardLogs({F.ShardLogs[0], F.ShardLogs[1]});
  EXPECT_FALSE(Missing.ok());
  EXPECT_TRUE(hasDiag(Missing, "missing shard 3/3"));
  EXPECT_EQ(Missing.exitCode(), report::MergeShardsExitCode);

  // Overlapping shards: the same slice handed in twice.
  report::MergeShardsResult Overlap = report::mergeShardLogs(
      {F.ShardLogs[0], F.ShardLogs[0], F.ShardLogs[1], F.ShardLogs[2]});
  EXPECT_FALSE(Overlap.ok());
  EXPECT_TRUE(hasDiag(Overlap, "overlapping shards"));
  EXPECT_EQ(Overlap.exitCode(), report::MergeShardsExitCode);

  // An unsharded log covers everything; combining it double-counts.
  report::MergeShardsResult Mixed =
      report::mergeShardLogs({F.UnshardedLog, F.ShardLogs[0]});
  EXPECT_FALSE(Mixed.ok());
  EXPECT_TRUE(hasDiag(Mixed, "cannot be combined"));
  EXPECT_EQ(Mixed.exitCode(), report::MergeShardsExitCode);

  // Unreadable input.
  report::MergeShardsResult Gone =
      report::mergeShardLogs({F.Apps.Dir / "no-such.jsonl"});
  EXPECT_FALSE(Gone.ok());
  EXPECT_TRUE(hasDiag(Gone, "cannot read"));
  EXPECT_EQ(Gone.exitCode(), report::MergeShardsExitCode);

  // Nothing at all.
  report::MergeShardsResult Empty = report::mergeShardLogs({});
  EXPECT_FALSE(Empty.ok());
  EXPECT_EQ(Empty.exitCode(), report::MergeShardsExitCode);
}

/// Writes a shard log by hand: a header plus one row per (file, fp).
void writeLog(const fs::path &Path, const std::string &Spec,
              const std::vector<std::pair<std::string, std::string>> &Rows) {
  std::ofstream Out(Path, std::ios::trunc);
  Out << report::renderBatchLogHeader(Spec, Rows.empty() ? "" : Rows[0].second,
                                      false)
      << "\n";
  for (const auto &[File, Fp] : Rows) {
    report::BatchApp A;
    A.File = File;
    A.Name = File.substr(0, File.find('.'));
    A.Status = report::BatchStatus::Ok;
    A.OptionsFp = Fp;
    Out << report::renderBatchLogLine(A) << "\n";
  }
}

TEST(MergeShardsTest, DiagnosesDuplicateRowsAndMismatchedLogs) {
  TempCorpus Dir("nadroid-merge-crafted");
  fs::path L1 = Dir.Dir / "s1.jsonl", L2 = Dir.Dir / "s2.jsonl";

  // The same app row claimed by two different shards.
  writeLog(L1, "1/2", {{"alpha.air", "fp"}, {"beta.air", "fp"}});
  writeLog(L2, "2/2", {{"alpha.air", "fp"}, {"gamma.air", "fp"}});
  report::MergeShardsResult Dup = report::mergeShardLogs({L1, L2});
  EXPECT_FALSE(Dup.ok());
  EXPECT_TRUE(hasDiag(Dup, "duplicate row: 'alpha.air'"));
  EXPECT_EQ(Dup.exitCode(), report::MergeShardsExitCode);

  // Rows analyzed under different options must not share a table.
  writeLog(L2, "2/2", {{"gamma.air", "other-fp"}});
  report::MergeShardsResult Fp = report::mergeShardLogs({L1, L2});
  EXPECT_FALSE(Fp.ok());
  EXPECT_TRUE(hasDiag(Fp, "options-fingerprint mismatch"));

  // Shard-count mismatch: slices of two different fleets.
  writeLog(L2, "2/3", {{"gamma.air", "fp"}});
  report::MergeShardsResult Count = report::mergeShardLogs({L1, L2});
  EXPECT_FALSE(Count.ok());
  EXPECT_TRUE(hasDiag(Count, "shard-count mismatch"));

  // A header whose spec the grammar refuses.
  writeLog(L2, "5/3", {{"gamma.air", "fp"}});
  report::MergeShardsResult Malformed = report::mergeShardLogs({L1, L2});
  EXPECT_FALSE(Malformed.ok());
  EXPECT_TRUE(hasDiag(Malformed, "malformed shard spec"));

  // A clean 2-shard pair merges, and duplicate rows WITHIN one log are
  // the normal resume later-wins case, not an error.
  writeLog(L2, "2/2", {{"gamma.air", "fp"}, {"gamma.air", "fp"}});
  report::MergeShardsResult Ok = report::mergeShardLogs({L1, L2});
  EXPECT_TRUE(Ok.ok()) << (Ok.Diags.empty() ? "" : Ok.Diags.front());
  EXPECT_EQ(Ok.Merged.Apps.size(), 3u);
}

//===----------------------------------------------------------------------===//
// --resume × --shard
//===----------------------------------------------------------------------===//

TEST(ShardedBatchTest, ResumeRefusesALogFromADifferentShardSpec) {
  TempCorpus Apps("nadroid-shard-resume");
  for (unsigned V = 1; V <= 4; ++V)
    writeSeededApp(Apps.Dir, "app" + std::to_string(V) + ".air", V);
  fs::path Log = Apps.Dir / "shard.jsonl";

  report::BatchOptions Opts;
  Opts.Dir = Apps.Dir.string();
  Opts.Jobs = 1;
  Opts.LogPath = Log.string();
  Opts.ShardIndex = 1;
  Opts.ShardCount = 2;
  report::BatchResult First = report::runBatch(Opts);
  const size_t Rows = First.Apps.size();
  ASSERT_GT(Rows, 0u);

  // Same spec: every row restores.
  Opts.Resume = true;
  report::BatchResult Same = report::runBatch(Opts);
  EXPECT_EQ(Same.Resumed, Rows);
  EXPECT_EQ(Same.ResumedStale, 0u);

  // Different spec over the same log: the checkpoint describes another
  // shard's work — all rows refused (counted stale), nothing restored,
  // and the log is restarted under the new spec's header.
  Opts.ShardIndex = 2;
  report::BatchResult Other = report::runBatch(Opts);
  EXPECT_EQ(Other.Resumed, 0u);
  EXPECT_EQ(Other.ResumedStale, Rows);
  EXPECT_EQ(Other.Apps.size() + Rows, 4u);

  std::ifstream In(Log);
  std::string Line, Spec, Fp;
  bool Lint = false;
  ASSERT_TRUE(std::getline(In, Line));
  ASSERT_TRUE(report::parseBatchLogHeader(Line, Spec, Fp, Lint));
  EXPECT_EQ(Spec, "2/2");
}

} // namespace
