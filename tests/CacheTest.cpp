//===- tests/CacheTest.cpp - Result cache contracts -----------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The persistent result cache's contracts: SHA-256 matches FIPS 180-4,
// keys change exactly when (content, options, schema) change, cache
// entries round-trip every BatchStatus and refuse truncation, corruption
// degrades to a miss, concurrent stores of one key race safely, and a
// warm batch run restores every row byte-identically without analyzing.
//
//===----------------------------------------------------------------------===//

#include "cache/HttpBackend.h"
#include "cache/ResultCache.h"
#include "cache/TestCacheServer.h"
#include "corpus/Patterns.h"
#include "frontend/Frontend.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "report/Batch.h"
#include "report/Json.h"
#include "support/Sha256.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace nadroid;
namespace fs = std::filesystem;

namespace {

//===----------------------------------------------------------------------===//
// SHA-256 (FIPS 180-4 test vectors)
//===----------------------------------------------------------------------===//

TEST(Sha256Test, FipsVectors) {
  EXPECT_EQ(
      support::sha256Hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      support::sha256Hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // 56 bytes: forces the padding into a second compression block.
  EXPECT_EQ(
      support::sha256Hex(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  std::string M(1000000, 'a');
  EXPECT_EQ(
      support::sha256Hex(M),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  // Split points straddling the 64-byte block boundary all agree.
  std::string Msg;
  for (int I = 0; I < 200; ++I)
    Msg += static_cast<char>('a' + I % 26);
  std::string Whole = support::sha256Hex(Msg);
  for (size_t Cut : {size_t(1), size_t(63), size_t(64), size_t(65), size_t(128)}) {
    support::Sha256 H;
    H.update(std::string_view(Msg).substr(0, Cut));
    H.update(std::string_view(Msg).substr(Cut));
    EXPECT_EQ(H.finalHex(), Whole) << "cut at " << Cut;
  }
}

//===----------------------------------------------------------------------===//
// Key composition
//===----------------------------------------------------------------------===//

TEST(ResultCacheKeyTest, SensitiveToEveryComponent) {
  std::string Base = cache::resultCacheKey("prog", "opt1;k=2");
  EXPECT_EQ(Base.size(), 64u);
  EXPECT_EQ(Base, cache::resultCacheKey("prog", "opt1;k=2"));

  EXPECT_NE(Base, cache::resultCacheKey("prog2", "opt1;k=2"));
  EXPECT_NE(Base, cache::resultCacheKey("prog", "opt1;k=1"));
  EXPECT_NE(Base, cache::resultCacheKey("prog", "opt1;k=2",
                                        cache::SchemaVersion + 1));
}

TEST(ResultCacheKeyTest, LengthPrefixKeepsBoundariesUnambiguous) {
  // Same concatenated bytes, different split — must not collide.
  EXPECT_NE(cache::resultCacheKey("ab", "c"), cache::resultCacheKey("a", "bc"));
  EXPECT_NE(cache::resultCacheKey("x", ""), cache::resultCacheKey("", "x"));
}

TEST(ResultCacheKeyTest, OptionsFingerprintCoversEveryKnob) {
  pipeline::PipelineOptions Base;
  std::string Fp = Base.fingerprint();

  pipeline::PipelineOptions O = Base;
  O.K = 1;
  EXPECT_NE(O.fingerprint(), Fp);
  O = Base;
  O.ModelFragments = !O.ModelFragments;
  EXPECT_NE(O.fingerprint(), Fp);
  O = Base;
  O.DataflowGuards = !O.DataflowGuards;
  EXPECT_NE(O.fingerprint(), Fp);
  O = Base;
  O.Refute = !O.Refute;
  EXPECT_NE(O.fingerprint(), Fp);
  O = Base;
  O.Lint = !O.Lint;
  EXPECT_NE(O.fingerprint(), Fp);

  // Same options, same fingerprint — the cache depends on stability.
  EXPECT_EQ(pipeline::PipelineOptions().fingerprint(), Fp);
}

//===----------------------------------------------------------------------===//
// Canonical bytes
//===----------------------------------------------------------------------===//

TEST(CanonicalBytesTest, FormattingAndNameInsensitive) {
  ir::Program P("alpha");
  {
    ir::IRBuilder B(P);
    corpus::PatternEmitter E(B);
    E.harmfulEcEc();
  }
  std::string Canon = frontend::canonicalProgramBytes(P);
  ASSERT_FALSE(Canon.empty());

  // Round-tripping through print -> parse reaches a fixpoint.
  std::string Printed = ir::programToString(P);
  frontend::ParseResult Re =
      frontend::parseProgramText(Printed, "reprint", "alpha");
  ASSERT_TRUE(Re.Success);
  EXPECT_EQ(frontend::canonicalProgramBytes(*Re.Prog), Canon);

  // Extra whitespace in the source does not change the canonical bytes.
  frontend::ParseResult Ws = frontend::parseProgramText(
      Printed + "\n\n   \n", "whitespace", "alpha");
  ASSERT_TRUE(Ws.Success);
  EXPECT_EQ(frontend::canonicalProgramBytes(*Ws.Prog), Canon);

  // Neither does the app name (derived from the file name): a renamed
  // but otherwise identical app must keep its cache key.
  frontend::ParseResult Renamed =
      frontend::parseProgramText(Printed, "renamed", "omega");
  ASSERT_TRUE(Renamed.Success);
  EXPECT_EQ(frontend::canonicalProgramBytes(*Renamed.Prog), Canon);

  // A semantic edit does.
  ir::Program Q("alpha");
  {
    ir::IRBuilder B(Q);
    corpus::PatternEmitter E(B);
    E.harmfulEcEc();
    E.harmfulEcPc();
  }
  EXPECT_NE(frontend::canonicalProgramBytes(Q), Canon);
}

//===----------------------------------------------------------------------===//
// Entry serialization
//===----------------------------------------------------------------------===//

report::BatchApp sampleApp(report::BatchStatus S) {
  report::BatchApp A;
  A.File = "sample.air";
  A.Name = "sample";
  A.Status = S;
  A.Error = (S == report::BatchStatus::Ok || S == report::BatchStatus::Degraded)
                ? ""
                : "some \"quoted\" diagnostic";
  A.OptionsFp = "opt1;k=2;fragments=0;dataflowGuards=1;refute=0";
  A.Stmts = 42;
  A.EntryCallbacks = 3;
  A.PostedCallbacks = 2;
  A.Threads = 5;
  A.Potential = 7;
  A.AfterSound = 4;
  A.AfterUnsound = 1;
  A.Timings.ModelingSec = 0.25;
  A.Timings.DetectionSec = 1.5;
  A.Timings.FilteringSec = 0.125;
  A.Timings.FilterSec[3] = 0.0625; // RHB
  A.Analyses.push_back({"threadforest", 0.5, 1, 3, 0, true});
  A.Analyses.push_back({"pointsto", 1.25, 2, 9, 0, true});
  return A;
}

TEST(CacheEntryTest, RoundTripsEveryStatus) {
  for (report::BatchStatus S :
       {report::BatchStatus::Ok, report::BatchStatus::Degraded,
        report::BatchStatus::ParseFailed, report::BatchStatus::Crashed,
        report::BatchStatus::TimedOut}) {
    report::BatchApp A = sampleApp(S);
    std::string Line = report::renderAppResult(A, cache::SchemaVersion);
    EXPECT_EQ(Line.find('\n'), std::string::npos);

    report::BatchApp B;
    ASSERT_TRUE(report::parseAppResult(Line, cache::SchemaVersion, B))
        << report::batchStatusName(S);
    EXPECT_EQ(B.Status, A.Status);
    EXPECT_EQ(B.Error, A.Error);
    EXPECT_EQ(B.OptionsFp, A.OptionsFp);
    EXPECT_EQ(B.Stmts, A.Stmts);
    EXPECT_EQ(B.EntryCallbacks, A.EntryCallbacks);
    EXPECT_EQ(B.PostedCallbacks, A.PostedCallbacks);
    EXPECT_EQ(B.Threads, A.Threads);
    EXPECT_EQ(B.Potential, A.Potential);
    EXPECT_EQ(B.AfterSound, A.AfterSound);
    EXPECT_EQ(B.AfterUnsound, A.AfterUnsound);
    EXPECT_DOUBLE_EQ(B.Timings.ModelingSec, 0.25);
    EXPECT_DOUBLE_EQ(B.Timings.DetectionSec, 1.5);
    EXPECT_DOUBLE_EQ(B.Timings.FilteringSec, 0.125);
    EXPECT_DOUBLE_EQ(B.Timings.FilterSec[3], 0.0625);
    EXPECT_DOUBLE_EQ(B.Timings.FilterSec[0], 0.0);
    ASSERT_EQ(B.Analyses.size(), 2u);
    EXPECT_EQ(B.Analyses[0].Name, "threadforest");
    EXPECT_DOUBLE_EQ(B.Analyses[0].Seconds, 0.5);
    EXPECT_EQ(B.Analyses[0].Builds, 1u);
    EXPECT_EQ(B.Analyses[0].Hits, 3u);
    EXPECT_EQ(B.Analyses[1].Name, "pointsto");
    // Identity is the caller's to fill; RSS is never trusted restored.
    EXPECT_TRUE(B.File.empty());
    EXPECT_TRUE(B.Name.empty());
    EXPECT_FALSE(B.RssTrusted);
  }
}

TEST(CacheEntryTest, RefusesTruncationCorruptionAndAlienSchema) {
  report::BatchApp A = sampleApp(report::BatchStatus::Ok);
  std::string Line = report::renderAppResult(A, cache::SchemaVersion);

  report::BatchApp B;
  // Every strict prefix is refused — a killed writer cannot leave a
  // half-believable entry behind (the rename publish makes this nearly
  // impossible anyway; the parser does not rely on it).
  for (size_t Len = 0; Len < Line.size(); ++Len)
    EXPECT_FALSE(report::parseAppResult(Line.substr(0, Len),
                                        cache::SchemaVersion, B))
        << "prefix of length " << Len << " accepted";

  // A different schema parameter refuses the same bytes.
  EXPECT_FALSE(report::parseAppResult(Line, cache::SchemaVersion + 1, B));

  // Alien but syntactically plausible content is refused too.
  EXPECT_FALSE(report::parseAppResult("{}", cache::SchemaVersion, B));
  EXPECT_FALSE(report::parseAppResult("not json at all", cache::SchemaVersion, B));
  EXPECT_FALSE(report::parseAppResult(
      "{\"schema\": 1, \"status\": \"no-such-status\", \"analyses\": []}",
      cache::SchemaVersion, B));
}

//===----------------------------------------------------------------------===//
// Store semantics
//===----------------------------------------------------------------------===//

struct TempCache {
  fs::path Dir;
  explicit TempCache(const std::string &Name)
      : Dir(fs::temp_directory_path() / Name) {
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
  }
  ~TempCache() {
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
  }
};

TEST(ResultCacheTest, StoreThenLookupRoundTrips) {
  TempCache T("nadroid-cache-roundtrip");
  cache::ResultCache C(T.Dir.string());
  ASSERT_TRUE(C.enabled());

  std::string Key = cache::resultCacheKey("prog", "fp");
  std::string Entry;
  EXPECT_FALSE(C.lookup(Key, Entry));
  ASSERT_TRUE(C.store(Key, "{\"payload\": 1}"));
  ASSERT_TRUE(C.lookup(Key, Entry));
  EXPECT_EQ(Entry, "{\"payload\": 1}");

  // Entries are sharded under the first two hex digits of the key.
  EXPECT_TRUE(fs::exists(C.entryPath(Key)));
  EXPECT_EQ(fs::path(C.entryPath(Key)).parent_path().filename().string(),
            Key.substr(0, 2));
}

TEST(ResultCacheTest, DisabledCacheIsInert) {
  cache::ResultCache C("");
  EXPECT_FALSE(C.enabled());
  std::string Entry;
  EXPECT_FALSE(C.lookup("00", Entry));
  EXPECT_FALSE(C.store("00", "x"));
}

TEST(ResultCacheTest, CorruptedEntryDegradesToMiss) {
  TempCache T("nadroid-cache-corrupt");
  cache::ResultCache C(T.Dir.string());
  report::BatchApp A = sampleApp(report::BatchStatus::Ok);
  std::string Key = cache::resultCacheKey("prog", "fp");
  ASSERT_TRUE(C.store(Key, report::renderAppResult(A, cache::SchemaVersion)));

  // Truncate the published entry on disk, as a torn filesystem might.
  {
    std::ofstream Out(C.entryPath(Key), std::ios::trunc);
    Out << "{\"schema\": 1, \"fp\": \"t";
  }
  std::string Entry;
  ASSERT_TRUE(C.lookup(Key, Entry)); // the raw line still reads back...
  report::BatchApp B;
  EXPECT_FALSE(
      report::parseAppResult(Entry, cache::SchemaVersion, B)); // ...but is refused
}

TEST(ResultCacheTest, ConcurrentStoresOfOneKeyRaceSafely) {
  TempCache T("nadroid-cache-race");
  cache::ResultCache C(T.Dir.string());
  std::string Key = cache::resultCacheKey("prog", "fp");
  const std::string Entry =
      report::renderAppResult(sampleApp(report::BatchStatus::Ok),
                              cache::SchemaVersion);

  std::vector<std::thread> Writers;
  for (int I = 0; I < 8; ++I)
    Writers.emplace_back([&] {
      for (int J = 0; J < 50; ++J)
        C.store(Key, Entry);
    });
  for (std::thread &W : Writers)
    W.join();

  // Whatever interleaving happened, the published entry is whole.
  std::string Read;
  ASSERT_TRUE(C.lookup(Key, Read));
  EXPECT_EQ(Read, Entry);
  report::BatchApp B;
  EXPECT_TRUE(report::parseAppResult(Read, cache::SchemaVersion, B));

  // No temp litter left behind: exactly the entry file exists.
  unsigned Files = 0;
  for (const fs::directory_entry &E : fs::recursive_directory_iterator(T.Dir))
    if (E.is_regular_file()) {
      ++Files;
      EXPECT_EQ(E.path().extension(), ".json") << E.path();
    }
  EXPECT_EQ(Files, 1u);
}

//===----------------------------------------------------------------------===//
// Batch integration: cold/warm runs, invalidation, verify, faults
//===----------------------------------------------------------------------===//

/// Writes one analyzable app. \p Variant varies the emitted statements,
/// because the cache is content-addressed: two seeded apps with equal
/// bytes would share one key, and these tests need per-app entries.
void writeSeededApp(const fs::path &Dir, const std::string &Name,
                    unsigned Variant) {
  ir::Program P(Name.substr(0, Name.find('.')));
  ir::IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.harmfulEcEc();
  E.falseMhbLifecycle(Variant);
  std::ofstream Out(Dir / Name);
  ASSERT_TRUE(Out.good()) << Name;
  ir::printProgram(P, Out);
}

struct TempCorpus {
  fs::path Dir;
  explicit TempCorpus(const std::string &Name)
      : Dir(fs::temp_directory_path() / Name) {
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
    fs::create_directories(Dir);
  }
  ~TempCorpus() {
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
  }
};

TEST(BatchCacheTest, WarmRunHitsEverythingAndMatchesByteForByte) {
  TempCorpus Apps("nadroid-batch-cache-corpus");
  TempCache Cache("nadroid-batch-cache-store");
  writeSeededApp(Apps.Dir, "alpha.air", 1);
  writeSeededApp(Apps.Dir, "beta.air", 2);
  writeSeededApp(Apps.Dir, "gamma.air", 3);

  report::BatchOptions Opts;
  Opts.Dir = Apps.Dir.string();
  Opts.Jobs = 2;
  Opts.CacheDir = Cache.Dir.string();

  report::BatchResult Cold = report::runBatch(Opts);
  EXPECT_TRUE(Cold.CacheEnabled);
  EXPECT_EQ(Cold.CacheHits, 0u);
  EXPECT_EQ(Cold.CacheMisses, 3u);
  EXPECT_EQ(Cold.CacheStores, 3u);

  report::BatchResult Warm = report::runBatch(Opts);
  EXPECT_EQ(Warm.CacheHits, 3u);
  EXPECT_EQ(Warm.CacheMisses, 0u);
  EXPECT_EQ(Warm.CacheStores, 0u);
  EXPECT_EQ(report::renderBatchReport(Warm), report::renderBatchReport(Cold));
  EXPECT_EQ(Warm.exitCode(), Cold.exitCode());

  // Hits restore real rows, not placeholders.
  ASSERT_EQ(Warm.Apps.size(), 3u);
  EXPECT_EQ(Warm.Apps[0].File, "alpha.air");
  EXPECT_EQ(Warm.Apps[0].Name, "alpha");
  EXPECT_GT(Warm.Apps[0].Stmts, 0u);
  EXPECT_FALSE(Warm.Apps[0].RssTrusted);

  // Editing one app's semantics misses exactly that app.
  writeSeededApp(Apps.Dir, "beta.air", 7);
  report::BatchResult Edited = report::runBatch(Opts);
  EXPECT_EQ(Edited.CacheHits, 2u);
  EXPECT_EQ(Edited.CacheMisses, 1u);
  EXPECT_EQ(Edited.CacheStores, 1u);

  // A formatting-only change still hits (canonical bytes absorb it).
  {
    std::ofstream Out(Apps.Dir / "alpha.air", std::ios::app);
    Out << "\n   \n";
  }
  report::BatchResult Reformatted = report::runBatch(Opts);
  EXPECT_EQ(Reformatted.CacheHits, 3u);
  EXPECT_EQ(Reformatted.CacheMisses, 0u);

  // An options change misses everything (different fingerprint).
  report::BatchOptions K1 = Opts;
  K1.Pipeline.K = 1;
  report::BatchResult Requalified = report::runBatch(K1);
  EXPECT_EQ(Requalified.CacheHits, 0u);
  EXPECT_EQ(Requalified.CacheMisses, 3u);
}

TEST(BatchCacheTest, VerifyReanalyzesHitsAndFlagsDivergence) {
  TempCorpus Apps("nadroid-batch-cache-verify");
  TempCache Cache("nadroid-batch-cache-verify-store");
  writeSeededApp(Apps.Dir, "alpha.air", 1);
  writeSeededApp(Apps.Dir, "beta.air", 2);

  report::BatchOptions Opts;
  Opts.Dir = Apps.Dir.string();
  Opts.Jobs = 1;
  Opts.CacheDir = Cache.Dir.string();
  report::BatchResult Cold = report::runBatch(Opts);
  ASSERT_EQ(Cold.CacheStores, 2u);

  // Clean verify: every hit re-analyzed, none divergent, exit unchanged.
  Opts.CacheVerify = true;
  report::BatchResult Clean = report::runBatch(Opts);
  EXPECT_EQ(Clean.CacheHits, 2u);
  EXPECT_EQ(Clean.CacheVerified, 2u);
  EXPECT_EQ(Clean.CacheDivergent, 0u);
  EXPECT_EQ(Clean.exitCode(), Cold.exitCode());

  // Poison one entry with a wrong-but-parseable counter: verify flags
  // it and the batch exit code escalates to 5.
  cache::ResultCache C(Cache.Dir.string());
  frontend::ParseResult P =
      frontend::parseProgramFile((Apps.Dir / "alpha.air").string());
  ASSERT_TRUE(P.Success);
  std::string Key = cache::resultCacheKey(
      frontend::canonicalProgramBytes(*P.Prog), Opts.Pipeline.fingerprint());
  std::string Entry;
  ASSERT_TRUE(C.lookup(Key, Entry));
  report::BatchApp Row;
  ASSERT_TRUE(report::parseAppResult(Entry, cache::SchemaVersion, Row));
  Row.AfterUnsound += 100;
  ASSERT_TRUE(C.store(Key, report::renderAppResult(Row, cache::SchemaVersion)));

  report::BatchResult Poisoned = report::runBatch(Opts);
  EXPECT_EQ(Poisoned.CacheVerified, 2u);
  EXPECT_EQ(Poisoned.CacheDivergent, 1u);
  EXPECT_EQ(Poisoned.exitCode(), 5);
}

TEST(BatchCacheTest, OnlyOkRowsAreCached) {
  TempCorpus Apps("nadroid-batch-cache-faults");
  TempCache Cache("nadroid-batch-cache-faults-store");
  {
    std::ofstream Out(Apps.Dir / "broken.air");
    Out << "this is not an AIR program\n";
  }
  writeSeededApp(Apps.Dir, "crash.air", 1);
  writeSeededApp(Apps.Dir, "expire-always.air", 2);
  writeSeededApp(Apps.Dir, "expire-once.air", 3);
  writeSeededApp(Apps.Dir, "healthy.air", 4);

  report::BatchOptions Opts;
  Opts.Dir = Apps.Dir.string();
  Opts.Jobs = 1;
  Opts.CacheDir = Cache.Dir.string();
  Opts.TestCrashApp = "crash.air";
  Opts.TestExpireApp = "expire-once.air";
  Opts.TestExpireAlwaysApp = "expire-always.air";

  report::BatchResult Cold = report::runBatch(Opts);
  ASSERT_EQ(Cold.Apps.size(), 5u);
  // Four probed (broken.air fails the probe parse and is neither hit
  // nor miss), and of those only the clean `ok` row is stored —
  // degraded, timed-out and crashed rows must be re-attempted next run.
  EXPECT_EQ(Cold.CacheMisses, 4u);
  EXPECT_EQ(Cold.CacheStores, 1u);

  report::BatchResult Warm = report::runBatch(Opts);
  EXPECT_EQ(Warm.CacheHits, 1u);
  EXPECT_EQ(Warm.CacheMisses, 3u);
  EXPECT_EQ(Warm.CacheStores, 0u); // the faulty rows failed again
  EXPECT_EQ(report::renderBatchReport(Warm), report::renderBatchReport(Cold));
}

TEST(BatchCacheTest, ResumeRefusesRowsFromDifferentOptions) {
  TempCorpus Apps("nadroid-batch-cache-stale");
  writeSeededApp(Apps.Dir, "alpha.air", 1);
  writeSeededApp(Apps.Dir, "beta.air", 2);
  fs::path Log = Apps.Dir / "checkpoint.jsonl";

  report::BatchOptions Opts;
  Opts.Dir = Apps.Dir.string();
  Opts.Jobs = 1;
  Opts.LogPath = Log.string();
  report::BatchResult Full = report::runBatch(Opts);
  ASSERT_EQ(Full.Apps.size(), 2u);

  // Same options: every row restores.
  Opts.Resume = true;
  report::BatchResult Same = report::runBatch(Opts);
  EXPECT_EQ(Same.Resumed, 2u);
  EXPECT_EQ(Same.ResumedStale, 0u);

  // Different options: the logged rows were analyzed under another
  // fingerprint and must be refused — re-analyzed, not trusted.
  report::BatchOptions K1 = Opts;
  K1.Pipeline.K = 1;
  K1.LogPath = Log.string();
  report::BatchResult Stale = report::runBatch(K1);
  EXPECT_EQ(Stale.Resumed, 0u);
  EXPECT_EQ(Stale.ResumedStale, 2u);
  ASSERT_EQ(Stale.Apps.size(), 2u);
  EXPECT_EQ(Stale.Apps[0].Status, report::BatchStatus::Ok);
  EXPECT_EQ(Stale.Apps[0].OptionsFp, K1.Pipeline.fingerprint());
}

//===----------------------------------------------------------------------===//
// Backend selection + spec validation
//===----------------------------------------------------------------------===//

TEST(CacheSpecTest, UrlParsingIsStrict) {
  std::string Host, Prefix;
  unsigned Port = 0;
  ASSERT_TRUE(cache::HttpCacheBackend::parseUrl("http://cache.example:9000/n",
                                                Host, Port, Prefix));
  EXPECT_EQ(Host, "cache.example");
  EXPECT_EQ(Port, 9000u);
  EXPECT_EQ(Prefix, "/n");
  ASSERT_TRUE(
      cache::HttpCacheBackend::parseUrl("http://127.0.0.1", Host, Port,
                                        Prefix));
  EXPECT_EQ(Port, 80u); // default
  EXPECT_EQ(Prefix, ""); // trailing slashes stripped
  ASSERT_TRUE(cache::HttpCacheBackend::parseUrl("http://h:1/p///", Host, Port,
                                                Prefix));
  EXPECT_EQ(Prefix, "/p");

  for (const char *Bad :
       {"https://h/p", "http://", "http://:80", "http://h:0",
        "http://h:65536", "http://h:80x", "http://h:abc", "ftp://h", "h:80"})
    EXPECT_FALSE(cache::HttpCacheBackend::parseUrl(Bad, Host, Port, Prefix))
        << Bad;
}

TEST(CacheSpecTest, ValidateCacheSpecMatchesTheBackends) {
  std::string Err;
  EXPECT_TRUE(cache::validateCacheSpec("", Err));
  EXPECT_TRUE(cache::validateCacheSpec("/tmp/some-dir", Err));
  EXPECT_TRUE(cache::validateCacheSpec("dir:///tmp/some-dir", Err));
  EXPECT_TRUE(cache::validateCacheSpec("http://127.0.0.1:9000/nadroid", Err));

  EXPECT_FALSE(cache::validateCacheSpec("http://", Err));
  EXPECT_NE(Err.find("not a valid cache URL"), std::string::npos);
  EXPECT_FALSE(cache::validateCacheSpec("http://host:notaport", Err));
  EXPECT_FALSE(cache::validateCacheSpec("dir://", Err));
}

//===----------------------------------------------------------------------===//
// HTTP backend: Bazel-action-cache semantics over a live loopback server
//===----------------------------------------------------------------------===//

TEST(HttpCacheTest, RoundTripsAndDistinguishesMissFromFailure) {
  cache::TestCacheServer Server;
  ASSERT_TRUE(Server.running());
  cache::HttpCacheBackend B(Server.url());
  EXPECT_EQ(std::string(B.scheme()), "http");

  std::string Key = cache::resultCacheKey("prog", "fp");
  std::string Entry;
  // An absent key is the cache working, not a transport problem.
  EXPECT_FALSE(B.lookup(Key, Entry));
  EXPECT_EQ(B.transportFailures(), 0u);

  ASSERT_TRUE(B.store(Key, "{\"payload\": 1}"));
  ASSERT_TRUE(B.lookup(Key, Entry));
  EXPECT_EQ(Entry, "{\"payload\": 1}");
  EXPECT_EQ(B.transportFailures(), 0u);
  EXPECT_EQ(Server.entryCount(), 1u);
  EXPECT_EQ(Server.getCount(), 2u);
  EXPECT_EQ(Server.putCount(), 1u);
}

TEST(HttpCacheTest, ResultCacheSelectsTheHttpBackend) {
  cache::TestCacheServer Server;
  ASSERT_TRUE(Server.running());
  cache::ResultCache C(Server.url());
  EXPECT_TRUE(C.enabled());
  EXPECT_EQ(std::string(C.backendScheme()), "http");

  std::string Key = cache::resultCacheKey("prog", "fp");
  // Remote entries have no local path.
  EXPECT_EQ(C.entryPath(Key), "");
  std::string Entry;
  EXPECT_FALSE(C.lookup(Key, Entry));
  EXPECT_TRUE(C.store(Key, "{\"x\": 1}"));
  EXPECT_TRUE(C.lookup(Key, Entry));
  EXPECT_EQ(Entry, "{\"x\": 1}");
}

TEST(BatchHttpCacheTest, WarmRunHitsEverythingThroughTheWire) {
  TempCorpus Apps("nadroid-batch-http-warm");
  writeSeededApp(Apps.Dir, "alpha.air", 1);
  writeSeededApp(Apps.Dir, "beta.air", 2);
  cache::TestCacheServer Server;
  ASSERT_TRUE(Server.running());

  report::BatchOptions Opts;
  Opts.Dir = Apps.Dir.string();
  Opts.Jobs = 2;
  Opts.CacheDir = Server.url();

  report::BatchResult Cold = report::runBatch(Opts);
  EXPECT_TRUE(Cold.CacheEnabled);
  EXPECT_EQ(Cold.CacheBackend, "http");
  EXPECT_EQ(Cold.CacheHits, 0u);
  EXPECT_EQ(Cold.CacheMisses, 2u);
  EXPECT_EQ(Cold.CacheStores, 2u);
  EXPECT_EQ(Cold.CacheTransportFailures, 0u);
  EXPECT_EQ(Server.entryCount(), 2u);

  report::BatchResult Warm = report::runBatch(Opts);
  EXPECT_EQ(Warm.CacheHits, 2u);
  EXPECT_EQ(Warm.CacheMisses, 0u);
  EXPECT_EQ(Warm.CacheStores, 0u);
  EXPECT_EQ(Warm.CacheTransportFailures, 0u);
  EXPECT_EQ(report::renderBatchReport(Warm), report::renderBatchReport(Cold));
  EXPECT_NE(report::renderBatchCacheFooter(Warm).find("2 hits, 0 misses"),
            std::string::npos);
}

/// Runs the batch against \p CacheSpec and asserts the degradation
/// contract: no hits, every probed app a miss, at least one counted
/// transport failure, and report bytes identical to \p Reference (the
/// no-cache run) — a broken cache host may cost time, never correctness.
void expectDegradedRun(const fs::path &Dir, const std::string &CacheSpec,
                       const std::string &Reference, unsigned AppCount) {
  report::BatchOptions Opts;
  Opts.Dir = Dir.string();
  Opts.Jobs = 2;
  Opts.CacheDir = CacheSpec;
  report::BatchResult R = report::runBatch(Opts);
  EXPECT_EQ(R.CacheHits, 0u);
  EXPECT_EQ(R.CacheMisses, AppCount);
  EXPECT_GT(R.CacheTransportFailures, 0u);
  EXPECT_EQ(report::renderBatchReport(R), Reference);
  EXPECT_EQ(R.exitCode(), 1); // the corpus's own outcome, never the cache's
  // The failures surface in the footer so a dead host is visible.
  EXPECT_NE(report::renderBatchCacheFooter(R).find("backend failures"),
            std::string::npos);
}

TEST(BatchHttpCacheTest, ConnectionRefusedDegradesToCountedMisses) {
  TempCorpus Apps("nadroid-batch-http-refused");
  writeSeededApp(Apps.Dir, "alpha.air", 1);
  writeSeededApp(Apps.Dir, "beta.air", 2);
  report::BatchOptions Plain;
  Plain.Dir = Apps.Dir.string();
  Plain.Jobs = 2;
  const std::string Reference =
      report::renderBatchReport(report::runBatch(Plain));

  // Bind an ephemeral port, then shut the server down: connects to the
  // now-dead port are refused immediately.
  std::string DeadUrl;
  {
    cache::TestCacheServer Server;
    ASSERT_TRUE(Server.running());
    DeadUrl = Server.url();
  }
  expectDegradedRun(Apps.Dir, DeadUrl, Reference, 2);
}

TEST(BatchHttpCacheTest, ServerErrorsAndTruncationDegradeToCountedMisses) {
  TempCorpus Apps("nadroid-batch-http-faulty");
  writeSeededApp(Apps.Dir, "alpha.air", 1);
  writeSeededApp(Apps.Dir, "beta.air", 2);
  report::BatchOptions Plain;
  Plain.Dir = Apps.Dir.string();
  Plain.Jobs = 2;
  const std::string Reference =
      report::renderBatchReport(report::runBatch(Plain));

  cache::TestCacheServer Server;
  ASSERT_TRUE(Server.running());

  // Every status-5xx answer is a counted failure, not a hang or a crash.
  Server.setFailMode(cache::TestCacheServer::FailMode::Http500);
  expectDegradedRun(Apps.Dir, Server.url(), Reference, 2);

  // Prime real entries, then serve them truncated mid-body: the client
  // must refuse the short body (advertised length unmet), never parse a
  // believable prefix of an entry.
  Server.setFailMode(cache::TestCacheServer::FailMode::None);
  {
    report::BatchOptions Prime;
    Prime.Dir = Apps.Dir.string();
    Prime.Jobs = 2;
    Prime.CacheDir = Server.url();
    report::BatchResult Primed = report::runBatch(Prime);
    ASSERT_EQ(Primed.CacheStores, 2u);
  }
  Server.setFailMode(cache::TestCacheServer::FailMode::TruncateBody);
  expectDegradedRun(Apps.Dir, Server.url(), Reference, 2);
}

TEST(BatchHttpCacheTest, StalledServerTimesOutWithinTheBudget) {
  TempCorpus Apps("nadroid-batch-http-stall");
  writeSeededApp(Apps.Dir, "alpha.air", 1);
  writeSeededApp(Apps.Dir, "beta.air", 2);
  report::BatchOptions Plain;
  Plain.Dir = Apps.Dir.string();
  Plain.Jobs = 2;
  const std::string Reference =
      report::renderBatchReport(report::runBatch(Plain));

  cache::TestCacheServer Server;
  ASSERT_TRUE(Server.running());
  Server.setFailMode(cache::TestCacheServer::FailMode::Stall);

  // A server that accepts and then sends nothing must cost at most the
  // configured deadline per exchange — the batch completes regardless.
  ::setenv("NADROID_CACHE_TIMEOUT_MS", "100", 1);
  expectDegradedRun(Apps.Dir, Server.url(), Reference, 2);
  ::unsetenv("NADROID_CACHE_TIMEOUT_MS");
}

} // namespace
