//===- tests/RefuterTest.cpp - HB refutation engine tests -----------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The --refute contract, cross-checked against the interpreter oracle:
//
//  * every RHB/CHB/PHB suppression carries a Proved or Assumed label,
//  * a Proved pair has NO interpreter crash witness (the proof is sound),
//  * a demoted (Assumed) seeded pair DOES have a witness — the refuter's
//    counterexample history describes a real schedule,
//  * provenance is metadata: pruning outcomes match the engine-off run.
//
//===----------------------------------------------------------------------===//

#include "corpus/Patterns.h"
#include "interp/Interp.h"
#include "ir/IRBuilder.h"
#include "report/Nadroid.h"

#include <gtest/gtest.h>

using namespace nadroid;
using namespace nadroid::ir;
using corpus::PatternEmitter;
using corpus::SeedKind;
using filters::FilterKind;
using filters::PairDecision;
using filters::Provenance;
using filters::WarningVerdict;

namespace {

void emitRefuterPattern(PatternEmitter &E, SeedKind Kind) {
  switch (Kind) {
  case SeedKind::RhbProved:
    E.rhbProved();
    return;
  case SeedKind::RhbRacy:
    E.rhbRacy();
    return;
  case SeedKind::ChbProved:
    E.chbProved();
    return;
  case SeedKind::ChbRacy:
    E.chbRacy();
    return;
  case SeedKind::ChbResumeRacy:
    E.chbResumeRacy();
    return;
  case SeedKind::PhbProved:
    E.phbProved();
    return;
  case SeedKind::PhbRacy:
    E.phbRacy();
    return;
  case SeedKind::RhbRepeatProved:
    E.rhbRepeatProved();
    return;
  case SeedKind::RhbRepeatRacy:
    E.rhbRepeatRacy();
    return;
  case SeedKind::ChbDeepProved:
    E.chbDeepProved();
    return;
  case SeedKind::ChbRepeatProved:
    E.chbRepeatProved();
    return;
  case SeedKind::ChbRepeatRacy:
    E.chbRepeatRacy();
    return;
  case SeedKind::PhbChainProved:
    E.phbChainProved();
    return;
  case SeedKind::PhbChainRacy:
    E.phbChainRacy();
    return;
  default:
    FAIL() << "not a refuter pattern";
  }
}

/// Finds the seeded warning's verdict.
const WarningVerdict *findVerdict(const report::NadroidResult &R,
                                  const corpus::SeededBug &Seed) {
  for (size_t I = 0; I < R.warnings().size(); ++I)
    if (R.warnings()[I].F->qualifiedName() == Seed.FieldName &&
        R.warnings()[I].Use->parentMethod()->qualifiedName() ==
            Seed.UseMethod)
      return &R.Pipeline.Verdicts[I];
  return nullptr;
}

/// The first decision made by a may-HB filter (the refuter's domain).
const PairDecision *mayHbDecision(const WarningVerdict &V) {
  for (const PairDecision &D : V.Decisions)
    for (FilterKind K : filters::mayHbFilterKinds())
      if (D.By == K)
        return &D;
  return nullptr;
}

struct RefuterCase {
  const char *Name;
  SeedKind Kind;
  FilterKind By;
  /// Proved (sound suppression) or Assumed (demoted, counterexample).
  Provenance Prov;
};

class RefuterPatternTest : public ::testing::TestWithParam<RefuterCase> {};

/// One test drives the whole contract per pattern: provenance label,
/// evidence presence, and agreement with the schedule-exploration oracle.
TEST_P(RefuterPatternTest, ProvenanceMatchesOracle) {
  const RefuterCase &Case = GetParam();
  Program P("t");
  IRBuilder B(P);
  PatternEmitter E(B);
  emitRefuterPattern(E, Case.Kind);
  ASSERT_EQ(E.seeds().size(), 1u);
  const corpus::SeededBug &Seed = E.seeds()[0];

  report::NadroidOptions Opts;
  Opts.Refute = true;
  report::NadroidResult R = report::analyzeProgram(P, Opts);
  const WarningVerdict *V = findVerdict(R, Seed);
  ASSERT_NE(V, nullptr) << "seeded warning not detected";
  EXPECT_EQ(V->StageReached, WarningVerdict::Stage::PrunedByUnsound);

  const PairDecision *D = mayHbDecision(*V);
  ASSERT_NE(D, nullptr) << "no may-HB decision recorded";
  EXPECT_EQ(D->By, Case.By);
  EXPECT_EQ(D->Prov, Case.Prov)
      << "expected " << filters::provenanceName(Case.Prov) << ", got "
      << filters::provenanceName(D->Prov);
  EXPECT_FALSE(D->Evidence.empty())
      << "both outcomes must carry evidence (proof chain or history)";

  // Oracle cross-check. A proved pair must have no crash witness under a
  // generous trial budget; a demoted pair's counterexample must be
  // realizable as an actual crashing schedule.
  const race::UafWarning *W = nullptr;
  for (size_t I = 0; I < R.warnings().size(); ++I)
    if (&R.Pipeline.Verdicts[I] == V)
      W = &R.warnings()[I];
  ASSERT_NE(W, nullptr);
  interp::ScheduleExplorer Explorer(P);
  if (Case.Prov == Provenance::Proved)
    EXPECT_FALSE(Explorer.tryWitness(W->Use, W->Free, 200))
        << "refuter proved a pair the interpreter can crash — unsound!";
  else
    EXPECT_TRUE(Explorer.tryWitness(W->Use, W->Free, 200))
        << "demoted pair should have an interpreter witness";
}

INSTANTIATE_TEST_SUITE_P(
    AllRefuterPatterns, RefuterPatternTest,
    ::testing::Values(
        RefuterCase{"RhbProved", SeedKind::RhbProved, FilterKind::RHB,
                    Provenance::Proved},
        RefuterCase{"RhbRacy", SeedKind::RhbRacy, FilterKind::RHB,
                    Provenance::Assumed},
        RefuterCase{"ChbProved", SeedKind::ChbProved, FilterKind::CHB,
                    Provenance::Proved},
        RefuterCase{"ChbRacy", SeedKind::ChbRacy, FilterKind::CHB,
                    Provenance::Assumed},
        // The free is reachable only through the framework onResume that
        // follows onCreate (no onPause override): a lifecycle model that
        // admits onResume solely after onPause would wrongly prove this.
        RefuterCase{"ChbResumeRacy", SeedKind::ChbResumeRacy,
                    FilterKind::CHB, Provenance::Assumed},
        RefuterCase{"PhbProved", SeedKind::PhbProved, FilterKind::PHB,
                    Provenance::Proved},
        RefuterCase{"PhbRacy", SeedKind::PhbRacy, FilterKind::PHB,
                    Provenance::Assumed}),
    [](const ::testing::TestParamInfo<RefuterCase> &Info) {
      return Info.param.Name;
    });

/// Acceptance sweep: with --refute on, every RHB/CHB/PHB suppression in
/// a program mixing all may-HB shapes is labeled Proved or Assumed —
/// Heuristic survives only on filters outside the refuter's domain.
TEST(Refuter, EveryMayHbSuppressionIsLabeled) {
  Program P("t");
  IRBuilder B(P);
  PatternEmitter E(B);
  E.falseRhb();
  E.falseChb();
  E.falsePhb();
  E.rhbProved();
  E.rhbRacy();
  E.chbProved();
  E.chbRacy();
  E.chbResumeRacy();
  E.phbProved();
  E.phbRacy();

  report::NadroidOptions Opts;
  Opts.Refute = true;
  report::NadroidResult R = report::analyzeProgram(P, Opts);

  unsigned MayHbDecisions = 0;
  for (const WarningVerdict &V : R.Pipeline.Verdicts)
    for (const PairDecision &D : V.Decisions) {
      bool MayHb = !filters::isSoundFilter(D.By) &&
                   (D.By == FilterKind::RHB || D.By == FilterKind::CHB ||
                    D.By == FilterKind::PHB);
      if (!MayHb)
        continue;
      ++MayHbDecisions;
      EXPECT_NE(D.Prov, Provenance::Heuristic)
          << filters::filterKindName(D.By)
          << " suppression left unlabeled under --refute";
    }
  EXPECT_GE(MayHbDecisions, 10u);
}

/// Soundness acceptance: across the mixed program, zero pairs the
/// refuter proved have interpreter crash witnesses.
TEST(Refuter, NoProvedPairHasACrashWitness) {
  Program P("t");
  IRBuilder B(P);
  PatternEmitter E(B);
  E.rhbProved();
  E.chbProved();
  E.phbProved();
  E.falseRhb(); // same shape as rhbProved — also proved
  E.falseChb(); // finish dominates — also proved

  report::NadroidOptions Opts;
  Opts.Refute = true;
  report::NadroidResult R = report::analyzeProgram(P, Opts);

  interp::ScheduleExplorer Explorer(P);
  unsigned Proved = 0;
  for (size_t I = 0; I < R.warnings().size(); ++I)
    for (const PairDecision &D : R.Pipeline.Verdicts[I].Decisions) {
      if (filters::isSoundFilter(D.By) || D.Prov != Provenance::Proved)
        continue;
      ++Proved;
      EXPECT_FALSE(Explorer.tryWitness(R.warnings()[I].Use,
                                       R.warnings()[I].Free, 200))
          << "proved pair on " << R.warnings()[I].F->qualifiedName()
          << " has a crash witness";
    }
  EXPECT_GE(Proved, 5u);
}

/// Provenance is metadata: neither --refute nor --refute-v2 may change
/// any pruning outcome.
TEST(Refuter, PruningOutcomesUnchanged) {
  auto Stages = [](bool Refute, bool RefuteHistory) {
    Program P("t");
    IRBuilder B(P);
    PatternEmitter E(B);
    E.rhbProved();
    E.rhbRacy();
    E.chbProved();
    E.chbRacy();
    E.phbProved();
    E.phbRacy();
    E.rhbRepeatProved();
    E.rhbRepeatRacy();
    E.chbDeepProved();
    E.chbRepeatProved();
    E.chbRepeatRacy();
    E.phbChainProved();
    E.phbChainRacy();
    E.harmfulEcEc();
    report::NadroidOptions Opts;
    Opts.Refute = Refute;
    Opts.RefuteHistory = RefuteHistory;
    report::NadroidResult R = report::analyzeProgram(P, Opts);
    std::vector<WarningVerdict::Stage> S;
    for (const WarningVerdict &V : R.Pipeline.Verdicts)
      S.push_back(V.StageReached);
    return S;
  };
  std::vector<WarningVerdict::Stage> Off = Stages(false, false);
  EXPECT_EQ(Off, Stages(true, false));
  EXPECT_EQ(Off, Stages(true, true));
}

//===----------------------------------------------------------------------===//
// Tier-2 history refinement (--refute-v2)
//===----------------------------------------------------------------------===//

struct HistoryCase {
  const char *Name;
  SeedKind Kind;
  FilterKind By;
  /// The tier-2 verdict: ProvedV2 (refinement discharged the pair) or
  /// Assumed (a stable witness survived every refinement).
  Provenance Tier2;
};

class HistoryRefuterTest : public ::testing::TestWithParam<HistoryCase> {};

/// Each tier-2 pattern is demoted by tier 1 (that is what makes it
/// tier-2 work), then either discharged or left assumed by the history
/// refinement — and the interpreter oracle must agree with whichever
/// verdict tier 2 lands on.
TEST_P(HistoryRefuterTest, TierTwoVerdictMatchesOracle) {
  const HistoryCase &Case = GetParam();

  // Tier 1 alone: the pair is suppressed by the expected filter and the
  // refuter demotes it to Assumed.
  {
    Program P("t");
    IRBuilder B(P);
    PatternEmitter E(B);
    emitRefuterPattern(E, Case.Kind);
    ASSERT_EQ(E.seeds().size(), 1u);
    report::NadroidOptions Opts;
    Opts.Refute = true;
    report::NadroidResult R = report::analyzeProgram(P, Opts);
    const WarningVerdict *V = findVerdict(R, E.seeds()[0]);
    ASSERT_NE(V, nullptr) << "seeded warning not detected";
    EXPECT_EQ(V->StageReached, WarningVerdict::Stage::PrunedByUnsound);
    const PairDecision *D = mayHbDecision(*V);
    ASSERT_NE(D, nullptr);
    EXPECT_EQ(D->By, Case.By);
    EXPECT_EQ(D->Prov, Provenance::Assumed)
        << "tier-2 patterns must be beyond tier 1 (got "
        << filters::provenanceName(D->Prov) << ")";
  }

  // Tier 2: the refinement loop settles on the expected verdict, and
  // the interpreter oracle agrees.
  Program P("t");
  IRBuilder B(P);
  PatternEmitter E(B);
  emitRefuterPattern(E, Case.Kind);
  report::NadroidOptions Opts;
  Opts.Refute = true;
  Opts.RefuteHistory = true;
  report::NadroidResult R = report::analyzeProgram(P, Opts);
  const WarningVerdict *V = findVerdict(R, E.seeds()[0]);
  ASSERT_NE(V, nullptr);
  const PairDecision *D = mayHbDecision(*V);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Prov, Case.Tier2)
      << "expected " << filters::provenanceName(Case.Tier2) << ", got "
      << filters::provenanceName(D->Prov);
  EXPECT_FALSE(D->Evidence.empty());

  const race::UafWarning *W = nullptr;
  for (size_t I = 0; I < R.warnings().size(); ++I)
    if (&R.Pipeline.Verdicts[I] == V)
      W = &R.warnings()[I];
  ASSERT_NE(W, nullptr);
  interp::ScheduleExplorer Explorer(P);
  if (Case.Tier2 == Provenance::ProvedV2) {
    EXPECT_FALSE(Explorer.tryWitness(W->Use, W->Free, 200))
        << "tier 2 proved a pair the interpreter can crash — unsound!";
    // The obligation chain must record what discharged the proof.
    bool Discharged = false;
    for (const std::string &L : D->Evidence)
      if (L.find("discharged obligation") != std::string::npos)
        Discharged = true;
    EXPECT_TRUE(Discharged)
        << "proved-v2 evidence must end in a discharged obligation";
  } else {
    EXPECT_TRUE(Explorer.tryWitness(W->Use, W->Free, 200))
        << "tier-2 assumed pair should have an interpreter witness";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllHistoryPatterns, HistoryRefuterTest,
    ::testing::Values(
        // RHB family — the repeating history pause/resume/click cycles
        // unboundedly; only the helper's unconditional re-allocation
        // (inter-procedural revive) discharges the proved variant.
        HistoryCase{"RhbRepeatProved", SeedKind::RhbRepeatProved,
                    FilterKind::RHB, Provenance::ProvedV2},
        HistoryCase{"RhbRepeatRacy", SeedKind::RhbRepeatRacy,
                    FilterKind::RHB, Provenance::Assumed},
        // CHB family — the system-event use repeats unboundedly and even
        // while paused; only the helper's finish() (inter-procedural
        // kill) orders it.
        HistoryCase{"ChbDeepProved", SeedKind::ChbDeepProved,
                    FilterKind::CHB, Provenance::ProvedV2},
        HistoryCase{"ChbRepeatProved", SeedKind::ChbRepeatProved,
                    FilterKind::CHB, Provenance::ProvedV2},
        HistoryCase{"ChbRepeatRacy", SeedKind::ChbRepeatRacy,
                    FilterKind::CHB, Provenance::Assumed},
        // PHB family — the 11-deep relay chain exceeds tier 1's thread
        // capacity; tier 2's budget covers it. The racy sibling's chain
        // re-posts on every click (unboundedly repeating history).
        HistoryCase{"PhbChainProved", SeedKind::PhbChainProved,
                    FilterKind::PHB, Provenance::ProvedV2},
        HistoryCase{"PhbChainRacy", SeedKind::PhbChainRacy,
                    FilterKind::PHB, Provenance::Assumed}),
    [](const ::testing::TestParamInfo<HistoryCase> &Info) {
      return Info.param.Name;
    });

/// Soundness acceptance for tier 2: across a program mixing every
/// refuter pattern, EVERY proved-v2 decision is cross-checked against
/// the interpreter — zero may have a crash witness. Tier-1 Proved pairs
/// stay Proved (tier 2 never touches them).
TEST(HistoryRefuter, EveryProvedV2HasNoCrashWitness) {
  Program P("t");
  IRBuilder B(P);
  PatternEmitter E(B);
  E.rhbProved();
  E.rhbRacy();
  E.chbProved();
  E.chbRacy();
  E.phbProved();
  E.phbRacy();
  E.rhbRepeatProved();
  E.rhbRepeatRacy();
  E.chbDeepProved();
  E.chbRepeatProved();
  E.chbRepeatRacy();
  E.phbChainProved();
  E.phbChainRacy();

  report::NadroidOptions Opts;
  Opts.Refute = true;
  Opts.RefuteHistory = true;
  report::NadroidResult R = report::analyzeProgram(P, Opts);

  interp::ScheduleExplorer Explorer(P);
  unsigned ProvedV2 = 0, Proved = 0;
  for (size_t I = 0; I < R.warnings().size(); ++I)
    for (const PairDecision &D : R.Pipeline.Verdicts[I].Decisions) {
      if (filters::isSoundFilter(D.By))
        continue;
      if (D.Prov == Provenance::Proved)
        ++Proved;
      if (D.Prov != Provenance::ProvedV2)
        continue;
      ++ProvedV2;
      EXPECT_FALSE(Explorer.tryWitness(R.warnings()[I].Use,
                                       R.warnings()[I].Free, 200))
          << "proved-v2 pair on " << R.warnings()[I].F->qualifiedName()
          << " has a crash witness";
    }
  EXPECT_GE(ProvedV2, 4u) << "all four tier-2 proved shapes upgrade";
  EXPECT_GE(Proved, 3u) << "tier-1 proofs are not re-litigated";
}

/// With the engine off, every decision stays Heuristic (or Proved via a
/// sound filter) and carries no evidence — the default path pays nothing.
TEST(Refuter, OffByDefaultLeavesHeuristicLabels) {
  Program P("t");
  IRBuilder B(P);
  PatternEmitter E(B);
  E.rhbProved();
  E.chbRacy();

  report::NadroidResult R = report::analyzeProgram(P);
  for (const WarningVerdict &V : R.Pipeline.Verdicts)
    for (const PairDecision &D : V.Decisions) {
      if (filters::isSoundFilter(D.By)) {
        EXPECT_EQ(D.Prov, Provenance::Proved);
      } else {
        EXPECT_EQ(D.Prov, Provenance::Heuristic);
      }
      EXPECT_TRUE(D.Evidence.empty());
    }
}

} // namespace
