//===- tests/RefuterTest.cpp - HB refutation engine tests -----------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The --refute contract, cross-checked against the interpreter oracle:
//
//  * every RHB/CHB/PHB suppression carries a Proved or Assumed label,
//  * a Proved pair has NO interpreter crash witness (the proof is sound),
//  * a demoted (Assumed) seeded pair DOES have a witness — the refuter's
//    counterexample history describes a real schedule,
//  * provenance is metadata: pruning outcomes match the engine-off run.
//
//===----------------------------------------------------------------------===//

#include "corpus/Patterns.h"
#include "interp/Interp.h"
#include "ir/IRBuilder.h"
#include "report/Nadroid.h"

#include <gtest/gtest.h>

using namespace nadroid;
using namespace nadroid::ir;
using corpus::PatternEmitter;
using corpus::SeedKind;
using filters::FilterKind;
using filters::PairDecision;
using filters::Provenance;
using filters::WarningVerdict;

namespace {

void emitRefuterPattern(PatternEmitter &E, SeedKind Kind) {
  switch (Kind) {
  case SeedKind::RhbProved:
    E.rhbProved();
    return;
  case SeedKind::RhbRacy:
    E.rhbRacy();
    return;
  case SeedKind::ChbProved:
    E.chbProved();
    return;
  case SeedKind::ChbRacy:
    E.chbRacy();
    return;
  case SeedKind::ChbResumeRacy:
    E.chbResumeRacy();
    return;
  case SeedKind::PhbProved:
    E.phbProved();
    return;
  case SeedKind::PhbRacy:
    E.phbRacy();
    return;
  default:
    FAIL() << "not a refuter pattern";
  }
}

/// Finds the seeded warning's verdict.
const WarningVerdict *findVerdict(const report::NadroidResult &R,
                                  const corpus::SeededBug &Seed) {
  for (size_t I = 0; I < R.warnings().size(); ++I)
    if (R.warnings()[I].F->qualifiedName() == Seed.FieldName &&
        R.warnings()[I].Use->parentMethod()->qualifiedName() ==
            Seed.UseMethod)
      return &R.Pipeline.Verdicts[I];
  return nullptr;
}

/// The first decision made by a may-HB filter (the refuter's domain).
const PairDecision *mayHbDecision(const WarningVerdict &V) {
  for (const PairDecision &D : V.Decisions)
    for (FilterKind K : filters::mayHbFilterKinds())
      if (D.By == K)
        return &D;
  return nullptr;
}

struct RefuterCase {
  const char *Name;
  SeedKind Kind;
  FilterKind By;
  /// Proved (sound suppression) or Assumed (demoted, counterexample).
  Provenance Prov;
};

class RefuterPatternTest : public ::testing::TestWithParam<RefuterCase> {};

/// One test drives the whole contract per pattern: provenance label,
/// evidence presence, and agreement with the schedule-exploration oracle.
TEST_P(RefuterPatternTest, ProvenanceMatchesOracle) {
  const RefuterCase &Case = GetParam();
  Program P("t");
  IRBuilder B(P);
  PatternEmitter E(B);
  emitRefuterPattern(E, Case.Kind);
  ASSERT_EQ(E.seeds().size(), 1u);
  const corpus::SeededBug &Seed = E.seeds()[0];

  report::NadroidOptions Opts;
  Opts.Refute = true;
  report::NadroidResult R = report::analyzeProgram(P, Opts);
  const WarningVerdict *V = findVerdict(R, Seed);
  ASSERT_NE(V, nullptr) << "seeded warning not detected";
  EXPECT_EQ(V->StageReached, WarningVerdict::Stage::PrunedByUnsound);

  const PairDecision *D = mayHbDecision(*V);
  ASSERT_NE(D, nullptr) << "no may-HB decision recorded";
  EXPECT_EQ(D->By, Case.By);
  EXPECT_EQ(D->Prov, Case.Prov)
      << "expected " << filters::provenanceName(Case.Prov) << ", got "
      << filters::provenanceName(D->Prov);
  EXPECT_FALSE(D->Evidence.empty())
      << "both outcomes must carry evidence (proof chain or history)";

  // Oracle cross-check. A proved pair must have no crash witness under a
  // generous trial budget; a demoted pair's counterexample must be
  // realizable as an actual crashing schedule.
  const race::UafWarning *W = nullptr;
  for (size_t I = 0; I < R.warnings().size(); ++I)
    if (&R.Pipeline.Verdicts[I] == V)
      W = &R.warnings()[I];
  ASSERT_NE(W, nullptr);
  interp::ScheduleExplorer Explorer(P);
  if (Case.Prov == Provenance::Proved)
    EXPECT_FALSE(Explorer.tryWitness(W->Use, W->Free, 200))
        << "refuter proved a pair the interpreter can crash — unsound!";
  else
    EXPECT_TRUE(Explorer.tryWitness(W->Use, W->Free, 200))
        << "demoted pair should have an interpreter witness";
}

INSTANTIATE_TEST_SUITE_P(
    AllRefuterPatterns, RefuterPatternTest,
    ::testing::Values(
        RefuterCase{"RhbProved", SeedKind::RhbProved, FilterKind::RHB,
                    Provenance::Proved},
        RefuterCase{"RhbRacy", SeedKind::RhbRacy, FilterKind::RHB,
                    Provenance::Assumed},
        RefuterCase{"ChbProved", SeedKind::ChbProved, FilterKind::CHB,
                    Provenance::Proved},
        RefuterCase{"ChbRacy", SeedKind::ChbRacy, FilterKind::CHB,
                    Provenance::Assumed},
        // The free is reachable only through the framework onResume that
        // follows onCreate (no onPause override): a lifecycle model that
        // admits onResume solely after onPause would wrongly prove this.
        RefuterCase{"ChbResumeRacy", SeedKind::ChbResumeRacy,
                    FilterKind::CHB, Provenance::Assumed},
        RefuterCase{"PhbProved", SeedKind::PhbProved, FilterKind::PHB,
                    Provenance::Proved},
        RefuterCase{"PhbRacy", SeedKind::PhbRacy, FilterKind::PHB,
                    Provenance::Assumed}),
    [](const ::testing::TestParamInfo<RefuterCase> &Info) {
      return Info.param.Name;
    });

/// Acceptance sweep: with --refute on, every RHB/CHB/PHB suppression in
/// a program mixing all may-HB shapes is labeled Proved or Assumed —
/// Heuristic survives only on filters outside the refuter's domain.
TEST(Refuter, EveryMayHbSuppressionIsLabeled) {
  Program P("t");
  IRBuilder B(P);
  PatternEmitter E(B);
  E.falseRhb();
  E.falseChb();
  E.falsePhb();
  E.rhbProved();
  E.rhbRacy();
  E.chbProved();
  E.chbRacy();
  E.chbResumeRacy();
  E.phbProved();
  E.phbRacy();

  report::NadroidOptions Opts;
  Opts.Refute = true;
  report::NadroidResult R = report::analyzeProgram(P, Opts);

  unsigned MayHbDecisions = 0;
  for (const WarningVerdict &V : R.Pipeline.Verdicts)
    for (const PairDecision &D : V.Decisions) {
      bool MayHb = !filters::isSoundFilter(D.By) &&
                   (D.By == FilterKind::RHB || D.By == FilterKind::CHB ||
                    D.By == FilterKind::PHB);
      if (!MayHb)
        continue;
      ++MayHbDecisions;
      EXPECT_NE(D.Prov, Provenance::Heuristic)
          << filters::filterKindName(D.By)
          << " suppression left unlabeled under --refute";
    }
  EXPECT_GE(MayHbDecisions, 10u);
}

/// Soundness acceptance: across the mixed program, zero pairs the
/// refuter proved have interpreter crash witnesses.
TEST(Refuter, NoProvedPairHasACrashWitness) {
  Program P("t");
  IRBuilder B(P);
  PatternEmitter E(B);
  E.rhbProved();
  E.chbProved();
  E.phbProved();
  E.falseRhb(); // same shape as rhbProved — also proved
  E.falseChb(); // finish dominates — also proved

  report::NadroidOptions Opts;
  Opts.Refute = true;
  report::NadroidResult R = report::analyzeProgram(P, Opts);

  interp::ScheduleExplorer Explorer(P);
  unsigned Proved = 0;
  for (size_t I = 0; I < R.warnings().size(); ++I)
    for (const PairDecision &D : R.Pipeline.Verdicts[I].Decisions) {
      if (filters::isSoundFilter(D.By) || D.Prov != Provenance::Proved)
        continue;
      ++Proved;
      EXPECT_FALSE(Explorer.tryWitness(R.warnings()[I].Use,
                                       R.warnings()[I].Free, 200))
          << "proved pair on " << R.warnings()[I].F->qualifiedName()
          << " has a crash witness";
    }
  EXPECT_GE(Proved, 5u);
}

/// Provenance is metadata: --refute must not change any pruning outcome.
TEST(Refuter, PruningOutcomesUnchanged) {
  auto Stages = [](bool Refute) {
    Program P("t");
    IRBuilder B(P);
    PatternEmitter E(B);
    E.rhbProved();
    E.rhbRacy();
    E.chbProved();
    E.chbRacy();
    E.phbProved();
    E.phbRacy();
    E.harmfulEcEc();
    report::NadroidOptions Opts;
    Opts.Refute = Refute;
    report::NadroidResult R = report::analyzeProgram(P, Opts);
    std::vector<WarningVerdict::Stage> S;
    for (const WarningVerdict &V : R.Pipeline.Verdicts)
      S.push_back(V.StageReached);
    return S;
  };
  EXPECT_EQ(Stages(false), Stages(true));
}

/// With the engine off, every decision stays Heuristic (or Proved via a
/// sound filter) and carries no evidence — the default path pays nothing.
TEST(Refuter, OffByDefaultLeavesHeuristicLabels) {
  Program P("t");
  IRBuilder B(P);
  PatternEmitter E(B);
  E.rhbProved();
  E.chbRacy();

  report::NadroidResult R = report::analyzeProgram(P);
  for (const WarningVerdict &V : R.Pipeline.Verdicts)
    for (const PairDecision &D : V.Decisions) {
      if (filters::isSoundFilter(D.By)) {
        EXPECT_EQ(D.Prov, Provenance::Proved);
      } else {
        EXPECT_EQ(D.Prov, Provenance::Heuristic);
      }
      EXPECT_TRUE(D.Evidence.empty());
    }
}

} // namespace
