//===- tests/CfgTest.cpp - Cfg construction, RPO, dominance --------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"
#include "analysis/Dataflow.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

#include <set>

using namespace nadroid;
using namespace nadroid::ir;
using analysis::Cfg;
using analysis::CfgEdge;
using analysis::DataflowDirection;

namespace {

struct Scaffold {
  Program P{"t"};
  IRBuilder B{P};
  Clazz *Payload = nullptr;
  Clazz *Act = nullptr;
  Field *F = nullptr;
  Method *M = nullptr;

  Scaffold() {
    Payload = B.makeClass("P", ClassKind::Plain);
    Act = B.makeClass("Act", ClassKind::Activity);
    F = B.addField(Act, "f", Payload);
    M = B.makeMethod(Act, "m");
  }
};

TEST(Cfg, StraightLineIsTwoNodes) {
  Scaffold S;
  LoadStmt *L = S.B.emitLoad(S.B.local("u"), S.B.thisLocal(), S.F);
  CallStmt *C = S.B.emitCall(nullptr, S.B.local("u"), "use");

  Cfg G(*S.M);
  // Entry node with both statements, plus the synthetic exit.
  ASSERT_EQ(G.size(), 2u);
  EXPECT_EQ(G.nodeOf(L), G.entry());
  EXPECT_EQ(G.nodeOf(C), G.entry());
  ASSERT_EQ(G.node(G.entry()).Succs.size(), 1u);
  EXPECT_EQ(G.node(G.entry()).Succs[0].To, G.exit());

  EXPECT_TRUE(G.dominates(L, C));
  EXPECT_FALSE(G.dominates(C, L));
  EXPECT_TRUE(G.dominates(L, L)); // reflexive
}

TEST(Cfg, BranchEdgesCarryRefinements) {
  Scaffold S;
  Local *U = S.B.local("u");
  S.B.emitLoad(U, S.B.thisLocal(), S.F);
  IfStmt *If = S.B.beginIfNotNull(U);
  CallStmt *Then = S.B.emitCall(nullptr, U, "use");
  S.B.beginElse();
  StoreStmt *Else = S.B.emitStore(S.B.thisLocal(), S.F, nullptr);
  S.B.endIf();
  LoadStmt *After = S.B.emitLoad(S.B.local("v"), S.B.thisLocal(), S.F);

  Cfg G(*S.M);
  uint32_t Head = G.nodeOf(If);
  EXPECT_EQ(G.node(Head).Term, If);
  ASSERT_EQ(G.node(Head).Succs.size(), 2u);

  // One successor refines u to non-null (then), one to null (else).
  const CfgEdge &E0 = G.node(Head).Succs[0];
  const CfgEdge &E1 = G.node(Head).Succs[1];
  EXPECT_EQ(E0.TestedLocal, U);
  EXPECT_EQ(E1.TestedLocal, U);
  EXPECT_NE(E0.NonNullOnEdge, E1.NonNullOnEdge);
  EXPECT_EQ(E0.To, G.nodeOf(Then));
  EXPECT_EQ(E1.To, G.nodeOf(Else));

  // Diamond dominance: head dominates all; neither arm dominates the
  // join; the join is dominated by the head.
  uint32_t Join = G.nodeOf(After);
  EXPECT_TRUE(G.dominates(Head, Join));
  EXPECT_FALSE(G.dominates(G.nodeOf(Then), Join));
  EXPECT_FALSE(G.dominates(G.nodeOf(Else), Join));
  EXPECT_EQ(G.idom(Join), Head);
  EXPECT_TRUE(G.dominates(If, After));
  EXPECT_FALSE(G.dominates(Then, After));
}

TEST(Cfg, OpaqueBranchHasNoRefinement) {
  Scaffold S;
  S.B.beginIfUnknown();
  S.B.emitCall(nullptr, S.B.thisLocal(), "helper");
  S.B.endIf();

  Cfg G(*S.M);
  for (uint32_t N = 0; N < G.size(); ++N)
    for (const CfgEdge &E : G.node(N).Succs)
      EXPECT_EQ(E.TestedLocal, nullptr);
}

TEST(Cfg, RpoVisitsPredsFirst) {
  Scaffold S;
  Local *U = S.B.local("u");
  S.B.emitLoad(U, S.B.thisLocal(), S.F);
  S.B.beginIfNotNull(U);
  S.B.beginIfUnknown(); // nested diamond
  S.B.emitCall(nullptr, U, "use");
  S.B.endIf();
  S.B.beginElse();
  S.B.emitStore(S.B.thisLocal(), S.F, nullptr);
  S.B.endIf();

  Cfg G(*S.M);
  std::set<uint32_t> Seen;
  for (uint32_t N : G.rpo()) {
    for (uint32_t P : G.node(N).Preds)
      EXPECT_TRUE(Seen.count(P)) << "node " << N << " before pred " << P;
    Seen.insert(N);
  }
  // Every node of this method is reachable.
  EXPECT_EQ(Seen.size(), G.size());
}

TEST(Cfg, ReturnEdgesReachExitAndSkipTail) {
  Scaffold S;
  Local *U = S.B.local("u");
  LoadStmt *L = S.B.emitLoad(U, S.B.thisLocal(), S.F);
  S.B.beginIfIsNull(U);
  S.B.emitReturn();
  S.B.endIf();
  CallStmt *Tail = S.B.emitCall(nullptr, U, "use");

  Cfg G(*S.M);
  // The return's node flows straight to exit, not into the tail.
  uint32_t Ret = 0;
  bool Found = false;
  for (uint32_t N = 0; N < G.size(); ++N)
    for (const ir::Stmt *St : G.node(N).Stmts)
      if (St->kind() == Stmt::Kind::Return) {
        Ret = N;
        Found = true;
      }
  ASSERT_TRUE(Found);
  ASSERT_EQ(G.node(Ret).Succs.size(), 1u);
  EXPECT_EQ(G.node(Ret).Succs[0].To, G.exit());

  // The load above the branch dominates the tail; the returning arm,
  // which never reaches it, does not.
  EXPECT_TRUE(G.dominates(L, Tail));
  EXPECT_FALSE(G.dominates(G.node(Ret).Stmts.front(), Tail));
}

TEST(Cfg, SyncBodiesAreInlined) {
  Scaffold S;
  Local *Lock = S.B.local("l");
  S.B.emitLoad(Lock, S.B.thisLocal(), S.F);
  SyncStmt *Sync = S.B.beginSync(Lock);
  LoadStmt *Inner = S.B.emitLoad(S.B.local("u"), S.B.thisLocal(), S.F);
  S.B.endSync();
  CallStmt *After = S.B.emitCall(nullptr, S.B.local("u"), "use");

  Cfg G(*S.M);
  // No branching: everything stays in the entry node, with the SyncStmt
  // as an inline leaf marker before its body.
  EXPECT_EQ(G.size(), 2u);
  EXPECT_EQ(G.nodeOf(Sync), G.entry());
  EXPECT_EQ(G.nodeOf(Inner), G.entry());
  EXPECT_TRUE(G.dominates(Sync, Inner));
  EXPECT_TRUE(G.dominates(Inner, After));
}

//===----------------------------------------------------------------------===//
// The generic solver, exercised with a tiny backward liveness domain —
// proving the framework is not nullness-specific.
//===----------------------------------------------------------------------===//

/// Live-locals analysis: a local is live when a later statement reads it.
struct LivenessDomain {
  using State = std::set<const Local *>;

  static constexpr DataflowDirection direction() {
    return DataflowDirection::Backward;
  }
  State boundary() const { return {}; }
  State bottom() const { return {}; }
  bool join(State &Into, const State &From) const {
    size_t Before = Into.size();
    Into.insert(From.begin(), From.end());
    return Into.size() != Before;
  }
  void transferStmt(const Stmt &S, State &St) const {
    // Kill the definition, then gen the uses (backward order).
    if (const auto *L = dyn_cast<LoadStmt>(&S)) {
      St.erase(L->dst());
      St.insert(L->base());
    } else if (const auto *C = dyn_cast<CallStmt>(&S)) {
      if (C->dst())
        St.erase(C->dst());
      if (C->recv())
        St.insert(C->recv());
      for (const Local *A : C->args())
        St.insert(A);
    } else if (const auto *St2 = dyn_cast<StoreStmt>(&S)) {
      St.insert(St2->base());
      if (St2->src())
        St.insert(St2->src());
    }
  }
  void transferEdge(const CfgEdge &, State &) const {}
};

TEST(Dataflow, BackwardLiveness) {
  Scaffold S;
  Local *U = S.B.local("u");
  LoadStmt *L = S.B.emitLoad(U, S.B.thisLocal(), S.F);
  S.B.beginIfNotNull(U);
  S.B.emitCall(nullptr, U, "use");
  S.B.endIf();

  Cfg G(*S.M);
  LivenessDomain D;
  analysis::DataflowSolver<LivenessDomain> Solver(G, D);
  Solver.solve();

  // Before the load, `this` is live (the load reads it) but `u` is not
  // (the load defines it). After it — i.e. the node's backward in-state
  // at the branch — `u` is live on the branch into the call.
  bool SawLoad = false;
  Solver.replayNode(G.nodeOf(L), [&](const Stmt *St, const auto &Live) {
    if (St != L)
      return;
    SawLoad = true;
    // Backward replay: the state *before* visiting L in analysis order
    // is the liveness *after* L in program order.
    EXPECT_TRUE(Live.count(U));
  });
  EXPECT_TRUE(SawLoad);
  // At entry to the method (backward out-state of the entry node),
  // only `this` remains live.
  const std::set<const Local *> &AtEntry = Solver.outState(G.entry());
  EXPECT_FALSE(AtEntry.count(U));
  EXPECT_TRUE(AtEntry.count(S.B.thisLocal()));
}

} // namespace
