//===- tests/PipelineTest.cpp - End-to-end pipeline tests ---------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// Integration tests over the full pipeline (parse → threadify → detect →
// filter), built around the paper's Figure 1 bug exemplars.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "report/Nadroid.h"

#include <gtest/gtest.h>

using namespace nadroid;

namespace {

/// Figure 1(a): ConnectBot's single-threaded UAF. onServiceDisconnected
/// frees `bound`; onCreateContextMenu uses it without a guard.
const char *Fig1aSource = R"(
app "connectbot";
manifest TerminalActivity;

class TerminalBridge : Plain {
  method use() {
    return;
  }
}

class TermConn : ServiceConnection {
  field act : TerminalActivity;
  method onServiceConnected() {
    a = this.act;
    b = new TerminalBridge;
    a.bound = b;
  }
  method onServiceDisconnected() {
    a = this.act;
    a.bound = null;
  }
}

class TerminalActivity : Activity {
  field bound : TerminalBridge;
  method onCreate() {
    c = new TermConn;
    c.act = this;
    this.bindService(c);
  }
  method onCreateContextMenu() {
    u = this.bound;
    u.use();
  }
}
)";

report::NadroidResult analyzeSource(const char *Source) {
  frontend::ParseResult Parsed =
      frontend::parseProgramText(Source, "test.air", "test");
  EXPECT_TRUE(Parsed.Success) << [&] {
    std::string Msgs;
    for (const auto &D : Parsed.Diags)
      Msgs += D.Message + "\n";
    return Msgs;
  }();
  // Keep the program alive for the duration of the test via a static
  // holder — tests inspect results immediately.
  static std::vector<std::unique_ptr<ir::Program>> Keep;
  Keep.push_back(std::move(Parsed.Prog));
  return report::analyzeProgram(*Keep.back());
}

TEST(Pipeline, Fig1aConnectBotUafDetectedAndSurvives) {
  report::NadroidResult R = analyzeSource(Fig1aSource);

  ASSERT_EQ(R.warnings().size(), 1u);
  const race::UafWarning &W = R.warnings()[0];
  EXPECT_EQ(W.F->qualifiedName(), "TerminalActivity.bound");
  EXPECT_EQ(W.Use->parentMethod()->name(), "onCreateContextMenu");
  EXPECT_EQ(W.Free->parentMethod()->name(), "onServiceDisconnected");

  ASSERT_EQ(R.Pipeline.Verdicts.size(), 1u);
  EXPECT_EQ(R.Pipeline.Verdicts[0].StageReached,
            filters::WarningVerdict::Stage::Remaining);
  EXPECT_EQ(R.Pipeline.RemainingAfterUnsound, 1u);

  // Figure 1(a) is an EC-PC violation.
  EXPECT_EQ(report::classifyWarning(*R.Forest,
                                    R.Pipeline.Verdicts[0].PairsRemaining),
            report::PairType::EcPc);
}

TEST(Pipeline, Fig1aThreadForestShape) {
  report::NadroidResult R = analyzeSource(Fig1aSource);
  // ECs: onCreate, onCreateContextMenu. PCs: onServiceConnected,
  // onServiceDisconnected. Threads: dummy main only.
  EXPECT_EQ(R.Forest->entryCallbackCount(), 2u);
  EXPECT_EQ(R.Forest->postedCallbackCount(), 2u);
  EXPECT_EQ(R.Forest->threadCount(), 1u);
}

/// Figure 4(a): the use sits in onServiceConnected itself — MHB-Service
/// proves it precedes the free in onServiceDisconnected.
const char *Fig4aSource = R"(
app "fig4a";
manifest A;

class F : Plain {
  method use() {
    return;
  }
}

class Conn : ServiceConnection {
  field act : A;
  method onServiceConnected() {
    a = this.act;
    u = a.f;
    u.use();
  }
  method onServiceDisconnected() {
    a = this.act;
    a.f = null;
  }
}

class A : Activity {
  field f : F;
  method onCreate() {
    c = new Conn;
    c.act = this;
    this.bindService(c);
  }
}
)";

TEST(Pipeline, Fig4aMhbServicePrunes) {
  report::NadroidResult R = analyzeSource(Fig4aSource);
  ASSERT_EQ(R.warnings().size(), 1u);
  EXPECT_EQ(R.Pipeline.Verdicts[0].StageReached,
            filters::WarningVerdict::Stage::PrunedBySound);
  EXPECT_TRUE(R.Pipeline.Verdicts[0].FiredFilters.count(
      filters::FilterKind::MHB));
  EXPECT_EQ(R.Pipeline.RemainingAfterSound, 0u);
}

} // namespace
