//===- tests/NullnessTest.cpp - Inter-procedural nullness analysis -------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/Nullness.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace nadroid;
using namespace nadroid::ir;
using analysis::LintFinding;
using analysis::LintKind;
using analysis::MethodSummary;
using analysis::NullFact;
using analysis::NullnessAnalysis;
using analysis::NullVal;
using analysis::joinNullVal;

namespace {

struct Scaffold {
  Program P{"t"};
  IRBuilder B{P};
  Clazz *Payload = nullptr;
  Clazz *Act = nullptr;
  Field *F = nullptr;

  Scaffold() {
    Payload = B.makeClass("P", ClassKind::Plain);
    Act = B.makeClass("Act", ClassKind::Activity);
    F = B.addField(Act, "f", Payload);
    P.addManifestComponent(Act);
  }
};

TEST(Nullness, LatticeJoin) {
  using V = NullVal;
  EXPECT_EQ(joinNullVal(V::Bottom, V::Null), V::Null);
  EXPECT_EQ(joinNullVal(V::NonNull, V::Bottom), V::NonNull);
  EXPECT_EQ(joinNullVal(V::Null, V::Null), V::Null);
  EXPECT_EQ(joinNullVal(V::NonNull, V::NonNull), V::NonNull);
  EXPECT_EQ(joinNullVal(V::Null, V::NonNull), V::Maybe);
  EXPECT_EQ(joinNullVal(V::Maybe, V::Null), V::Maybe);
  EXPECT_EQ(joinNullVal(V::Bottom, V::Bottom), V::Bottom);
}

TEST(Nullness, GuardThroughMirroredReload) {
  // Figure 4(b) as compiled: g = this.f; if (g != null) { u = this.f;
  // u.use(); } — the reload u is guarded because g mirrors this.f.
  Scaffold S;
  S.B.makeMethod(S.Act, "onClick");
  Local *G = S.B.local("g");
  S.B.emitLoad(G, S.B.thisLocal(), S.F);
  S.B.beginIfNotNull(G);
  Local *U = S.B.local("u");
  LoadStmt *Reload = S.B.emitLoad(U, S.B.thisLocal(), S.F);
  S.B.emitCall(nullptr, U, "use");
  S.B.endIf();

  NullnessAnalysis NA(S.P);
  EXPECT_TRUE(NA.isGuarded(Reload));
  // Guardedness is not allocation: the alloc plane stays Maybe.
  EXPECT_FALSE(NA.isAllocProtected(Reload));
  auto Fact = NA.factAtLoad(Reload);
  ASSERT_TRUE(Fact.has_value());
  EXPECT_EQ(Fact->Guard, NullVal::NonNull);
  EXPECT_EQ(Fact->Alloc, NullVal::Maybe);
}

TEST(Nullness, CheckThenDerefGuardsTheLoadItself) {
  // u = this.f; if (u != null) { u.use(); } — the load's only
  // dereference is dominated by the check.
  Scaffold S;
  S.B.makeMethod(S.Act, "onClick");
  Local *U = S.B.local("u");
  LoadStmt *L = S.B.emitLoad(U, S.B.thisLocal(), S.F);
  S.B.beginIfNotNull(U);
  S.B.emitCall(nullptr, U, "use");
  S.B.endIf();

  NullnessAnalysis NA(S.P);
  EXPECT_TRUE(NA.isGuarded(L));
}

TEST(Nullness, UncheckedDerefIsNotGuarded) {
  Scaffold S;
  S.B.makeMethod(S.Act, "onClick");
  Local *U = S.B.local("u");
  LoadStmt *L = S.B.emitLoad(U, S.B.thisLocal(), S.F);
  S.B.emitCall(nullptr, U, "use");

  NullnessAnalysis NA(S.P);
  EXPECT_FALSE(NA.isGuarded(L));
  EXPECT_FALSE(NA.isAllocProtected(L));
}

TEST(Nullness, PartiallyCheckedDerefIsNotGuarded) {
  // One dereference checked, a second one bare: not guarded.
  Scaffold S;
  S.B.makeMethod(S.Act, "onClick");
  Local *U = S.B.local("u");
  LoadStmt *L = S.B.emitLoad(U, S.B.thisLocal(), S.F);
  S.B.beginIfNotNull(U);
  S.B.emitCall(nullptr, U, "use");
  S.B.endIf();
  S.B.emitCall(nullptr, U, "use");

  NullnessAnalysis NA(S.P);
  EXPECT_FALSE(NA.isGuarded(L));
}

TEST(Nullness, AllocationDominanceProtects) {
  // Figure 4(c): x = new P; this.f = x; u = this.f; u.use();
  Scaffold S;
  S.B.makeMethod(S.Act, "onClick");
  Local *X = S.B.emitNew("x", S.Payload);
  S.B.emitStore(S.B.thisLocal(), S.F, X);
  Local *U = S.B.local("u");
  LoadStmt *L = S.B.emitLoad(U, S.B.thisLocal(), S.F);
  S.B.emitCall(nullptr, U, "use");

  NullnessAnalysis NA(S.P);
  EXPECT_TRUE(NA.isAllocProtected(L));
  EXPECT_TRUE(NA.isGuarded(L)); // NonNull on the guard plane too
}

TEST(Nullness, AllocOnOneArmOnlyDoesNotProtect) {
  Scaffold S;
  S.B.makeMethod(S.Act, "onClick");
  S.B.beginIfUnknown();
  Local *X = S.B.emitNew("x", S.Payload);
  S.B.emitStore(S.B.thisLocal(), S.F, X);
  S.B.endIf();
  Local *U = S.B.local("u");
  LoadStmt *L = S.B.emitLoad(U, S.B.thisLocal(), S.F);
  S.B.emitCall(nullptr, U, "use");

  NullnessAnalysis NA(S.P);
  EXPECT_FALSE(NA.isAllocProtected(L));
  EXPECT_FALSE(NA.isGuarded(L));
}

TEST(Nullness, CallResultsAreAlwaysTop) {
  // t = this.mk(); this.f = t; u = this.f; u.use(); — mk returns a
  // fresh object, but trusting that is MA's unsound territory, so the
  // sound analysis must keep the load unprotected on both planes.
  Scaffold S;
  S.B.makeMethod(S.Act, "mk");
  Local *R = S.B.emitNew("r", S.Payload);
  S.B.emitReturn(R);

  S.B.makeMethod(S.Act, "onClick");
  Local *T = S.B.local("t");
  S.B.emitCall(T, S.B.thisLocal(), "mk");
  S.B.emitStore(S.B.thisLocal(), S.F, T);
  Local *U = S.B.local("u");
  LoadStmt *L = S.B.emitLoad(U, S.B.thisLocal(), S.F);
  S.B.emitCall(nullptr, U, "use");

  NullnessAnalysis NA(S.P);
  EXPECT_FALSE(NA.isGuarded(L));
  EXPECT_FALSE(NA.isAllocProtected(L));
}

TEST(Nullness, SummaryRecordsEnsuredFields) {
  // init() allocates this.f on every path -> EnsuresGuard/EnsuresAlloc
  // both contain f; a method that frees it ensures nothing.
  Scaffold S;
  Method *Init = S.B.makeMethod(S.Act, "init");
  Local *X = S.B.emitNew("x", S.Payload);
  S.B.emitStore(S.B.thisLocal(), S.F, X);
  Method *Teardown = S.B.makeMethod(S.Act, "teardown");
  S.B.emitStore(S.B.thisLocal(), S.F, nullptr);
  // Reach both from a callback so they get analyzed as callees.
  S.B.makeMethod(S.Act, "onClick");
  S.B.emitCall(nullptr, S.B.thisLocal(), "init");
  S.B.emitCall(nullptr, S.B.thisLocal(), "teardown");

  NullnessAnalysis NA(S.P);
  const MethodSummary *SI = NA.summaryOf(*Init);
  ASSERT_NE(SI, nullptr);
  EXPECT_TRUE(SI->EnsuresGuard.count(S.F));
  EXPECT_TRUE(SI->EnsuresAlloc.count(S.F));
  const MethodSummary *ST = NA.summaryOf(*Teardown);
  ASSERT_NE(ST, nullptr);
  EXPECT_FALSE(ST->EnsuresGuard.count(S.F));
  EXPECT_FALSE(ST->EnsuresAlloc.count(S.F));
}

TEST(Nullness, CalleeSummaryProtectsCallerUse) {
  // this.init(); u = this.f; u.use(); — the callee's ensures-facts
  // flow back to the caller.
  Scaffold S;
  S.B.makeMethod(S.Act, "init");
  Local *X = S.B.emitNew("x", S.Payload);
  S.B.emitStore(S.B.thisLocal(), S.F, X);

  S.B.makeMethod(S.Act, "onClick");
  S.B.emitCall(nullptr, S.B.thisLocal(), "init");
  Local *U = S.B.local("u");
  LoadStmt *L = S.B.emitLoad(U, S.B.thisLocal(), S.F);
  S.B.emitCall(nullptr, U, "use");

  NullnessAnalysis NA(S.P);
  EXPECT_TRUE(NA.isGuarded(L));
  EXPECT_TRUE(NA.isAllocProtected(L));
}

TEST(Nullness, CallerCheckProtectsCalleeDeref) {
  // The §8.7 direction: onClick checks, readIt dereferences.
  Scaffold S;
  S.B.makeMethod(S.Act, "readIt");
  Local *U = S.B.local("u");
  LoadStmt *L = S.B.emitLoad(U, S.B.thisLocal(), S.F);
  S.B.emitCall(nullptr, U, "use");

  Method *OnClick = S.B.makeMethod(S.Act, "onClick");
  Local *G = S.B.local("g");
  S.B.emitLoad(G, S.B.thisLocal(), S.F);
  S.B.beginIfNotNull(G);
  S.B.emitCall(nullptr, S.B.thisLocal(), "readIt");
  S.B.endIf();

  NullnessAnalysis NA(S.P);
  EXPECT_TRUE(NA.isGuarded(L));
  EXPECT_TRUE(NA.isRoot(*OnClick));
  // readIt is only reached through the guarded this-call: not a root.
  EXPECT_FALSE(NA.isRoot(*L->parentMethod()));
}

TEST(Nullness, UncheckedCallerPollutesCalleeEntry) {
  // Two callers, one unchecked: the callee's entry joins to Maybe.
  Scaffold S;
  S.B.makeMethod(S.Act, "readIt");
  Local *U = S.B.local("u");
  LoadStmt *L = S.B.emitLoad(U, S.B.thisLocal(), S.F);
  S.B.emitCall(nullptr, U, "use");

  S.B.makeMethod(S.Act, "onClick");
  Local *G = S.B.local("g");
  S.B.emitLoad(G, S.B.thisLocal(), S.F);
  S.B.beginIfNotNull(G);
  S.B.emitCall(nullptr, S.B.thisLocal(), "readIt");
  S.B.endIf();

  S.B.makeMethod(S.Act, "onLongClick");
  S.B.emitCall(nullptr, S.B.thisLocal(), "readIt"); // no check

  NullnessAnalysis NA(S.P);
  EXPECT_FALSE(NA.isGuarded(L));
}

TEST(Nullness, NonThisCalleeIsRoot) {
  // A method invoked through an object reference (CHA can't bound the
  // caller states we'd have to join) is analyzed with a top entry.
  Scaffold S;
  Method *Use = S.B.makeMethod(S.Payload, "use");
  S.B.emitReturn();
  S.B.makeMethod(S.Act, "onClick");
  Local *X = S.B.emitNew("x", S.Payload);
  S.B.emitCall(nullptr, X, "use");

  NullnessAnalysis NA(S.P);
  EXPECT_TRUE(NA.isRoot(*Use));
}

TEST(Nullness, InfeasiblePathLoadCountsAsGuarded) {
  // x = new P; if (x == null) { u = this.f; u.use(); } — the then-arm
  // is statically dead, so its load must not block the IG filter.
  Scaffold S;
  S.B.makeMethod(S.Act, "onClick");
  Local *X = S.B.emitNew("x", S.Payload);
  S.B.beginIfIsNull(X);
  Local *U = S.B.local("u");
  LoadStmt *Dead = S.B.emitLoad(U, S.B.thisLocal(), S.F);
  S.B.emitCall(nullptr, U, "use");
  S.B.endIf();

  NullnessAnalysis NA(S.P);
  EXPECT_TRUE(NA.isGuarded(Dead));
  EXPECT_TRUE(NA.isAllocProtected(Dead));
  EXPECT_FALSE(NA.factAtLoad(Dead).has_value()); // unreachable
}

//===----------------------------------------------------------------------===//
// Lint findings
//===----------------------------------------------------------------------===//

TEST(NullnessLint, DoubleFree) {
  Scaffold S;
  S.B.makeMethod(S.Act, "onClick");
  StoreStmt *First = S.B.emitStore(S.B.thisLocal(), S.F, nullptr);
  StoreStmt *Second = S.B.emitStore(S.B.thisLocal(), S.F, nullptr);

  NullnessAnalysis NA(S.P);
  ASSERT_EQ(NA.findings().size(), 1u);
  const LintFinding &F = NA.findings()[0];
  EXPECT_EQ(F.Kind, LintKind::DoubleFree);
  EXPECT_EQ(F.At, Second);
  EXPECT_EQ(F.Prior, First);
  EXPECT_EQ(F.F, S.F);
}

TEST(NullnessLint, FreeOnOneArmOnlyIsNotDoubleFree) {
  Scaffold S;
  S.B.makeMethod(S.Act, "onClick");
  S.B.beginIfUnknown();
  S.B.emitStore(S.B.thisLocal(), S.F, nullptr);
  S.B.endIf();
  S.B.emitStore(S.B.thisLocal(), S.F, nullptr);

  NullnessAnalysis NA(S.P);
  EXPECT_TRUE(NA.findings().empty());
}

TEST(NullnessLint, NullDeref) {
  Scaffold S;
  S.B.makeMethod(S.Act, "onClick");
  StoreStmt *Free = S.B.emitStore(S.B.thisLocal(), S.F, nullptr);
  Local *U = S.B.local("u");
  S.B.emitLoad(U, S.B.thisLocal(), S.F);
  CallStmt *Deref = S.B.emitCall(nullptr, U, "use");

  NullnessAnalysis NA(S.P);
  ASSERT_EQ(NA.findings().size(), 1u);
  const LintFinding &F = NA.findings()[0];
  EXPECT_EQ(F.Kind, LintKind::NullDeref);
  EXPECT_EQ(F.At, Deref);
  EXPECT_EQ(F.Prior, Free);
  EXPECT_EQ(F.F, S.F);
}

TEST(NullnessLint, RedundantCheckBothPolarities) {
  Scaffold S;
  S.B.makeMethod(S.Act, "onClick");
  Local *X = S.B.emitNew("x", S.Payload);
  IfStmt *AlwaysTaken = S.B.beginIfNotNull(X);
  S.B.emitCall(nullptr, X, "use");
  S.B.endIf();

  S.B.makeMethod(S.Act, "onLongClick");
  Local *Y = S.B.emitNew("y", S.Payload);
  IfStmt *NeverTaken = S.B.beginIfIsNull(Y);
  S.B.emitCall(nullptr, Y, "use");
  S.B.endIf();

  NullnessAnalysis NA(S.P);
  ASSERT_EQ(NA.findings().size(), 2u);
  EXPECT_EQ(NA.findings()[0].Kind, LintKind::RedundantCheck);
  EXPECT_EQ(NA.findings()[0].At, AlwaysTaken);
  EXPECT_TRUE(NA.findings()[0].AlwaysThen);
  EXPECT_EQ(NA.findings()[1].At, NeverTaken);
  EXPECT_FALSE(NA.findings()[1].AlwaysThen);
}

TEST(NullnessLint, HonestCheckIsNotRedundant) {
  Scaffold S;
  S.B.makeMethod(S.Act, "onClick");
  Local *U = S.B.local("u");
  S.B.emitLoad(U, S.B.thisLocal(), S.F);
  S.B.beginIfNotNull(U);
  S.B.emitCall(nullptr, U, "use");
  S.B.endIf();

  NullnessAnalysis NA(S.P);
  EXPECT_TRUE(NA.findings().empty());
}

} // namespace
