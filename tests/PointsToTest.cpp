//===- tests/PointsToTest.cpp - k-obj points-to tests ---------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/PointsTo.h"
#include "analysis/ThreadReach.h"
#include "ir/IRBuilder.h"
#include "threadify/Threadifier.h"

#include <gtest/gtest.h>

using namespace nadroid;
using namespace nadroid::analysis;
using namespace nadroid::ir;

namespace {

/// Everything a points-to test needs, wired together.
struct Fixture {
  Program P{"t"};
  IRBuilder B{P};
  std::unique_ptr<android::ApiIndex> Apis;
  std::unique_ptr<threadify::ThreadForest> Forest;
  std::unique_ptr<PointsToAnalysis> PTA;

  void solve(unsigned K = 2) {
    Apis = std::make_unique<android::ApiIndex>(P);
    Forest = std::make_unique<threadify::ThreadForest>(
        threadify::threadify(P));
    PointsToAnalysis::Options Opts;
    Opts.K = K;
    PTA = std::make_unique<PointsToAnalysis>(P, *Forest, *Apis, Opts);
    PTA->run();
  }

  MethodCtx ctxOf(Method *M, const Clazz *Component) {
    ObjectId Synth = 0;
    EXPECT_TRUE(PTA->syntheticObjectFor(Component, Synth));
    return {M, Synth};
  }
};

TEST(PointsTo, NewCopyAndFieldFlow) {
  Fixture F;
  Clazz *Payload = F.B.makeClass("P", ClassKind::Plain);
  Clazz *Act = F.B.makeClass("Act", ClassKind::Activity);
  Field *Fld = F.B.addField(Act, "f", Payload);
  F.P.addManifestComponent(Act);
  Method *M = F.B.makeMethod(Act, "onCreate");
  Local *X = F.B.emitNew("x", Payload);
  Local *Y = F.B.local("y");
  F.B.emitCopy(Y, X);
  F.B.emitStore(F.B.thisLocal(), Fld, Y);
  Local *Z = F.B.local("z");
  F.B.emitLoad(Z, F.B.thisLocal(), Fld);
  F.solve();

  MethodCtx Ctx = F.ctxOf(M, Act);
  const auto &PtsX = F.PTA->ptsOf(X, Ctx);
  const auto &PtsZ = F.PTA->ptsOf(Z, Ctx);
  ASSERT_EQ(PtsX.size(), 1u);
  EXPECT_EQ(PtsZ, PtsX); // store-then-load round trip
  EXPECT_EQ(F.PTA->object(*PtsX.begin()).RuntimeClass, Payload);
}

TEST(PointsTo, VirtualCallBindsParamsAndReturn) {
  Fixture F;
  Clazz *Payload = F.B.makeClass("P", ClassKind::Plain);
  Clazz *Act = F.B.makeClass("Act", ClassKind::Activity);
  F.P.addManifestComponent(Act);

  Method *Id = F.B.makeMethod(Act, "identity");
  Local *Param = Id->addParam("p");
  F.B.emitReturn(Param);

  Method *M = F.B.makeMethod(Act, "onCreate");
  Local *X = F.B.emitNew("x", Payload);
  Local *R = F.B.local("r");
  F.B.emitCall(R, F.B.thisLocal(), "identity", {X});
  F.solve();

  MethodCtx Ctx = F.ctxOf(M, Act);
  EXPECT_EQ(F.PTA->ptsOf(R, Ctx), F.PTA->ptsOf(X, Ctx));
  // The call edge was recorded.
  bool FoundEdge = false;
  for (const auto &[From, Tos] : F.PTA->callEdges())
    if (From.M == M)
      for (const MethodCtx &To : Tos)
        FoundEdge |= To.M == Id;
  EXPECT_TRUE(FoundEdge);
}

TEST(PointsTo, UnknownCalleeDropsEdge) {
  Fixture F;
  Clazz *Act = F.B.makeClass("Act", ClassKind::Activity);
  F.P.addManifestComponent(Act);
  Method *M = F.B.makeMethod(Act, "onCreate");
  Local *R = F.B.local("r");
  F.B.emitCall(R, F.B.thisLocal(), "getSystemService");
  F.solve();
  MethodCtx Ctx = F.ctxOf(M, Act);
  EXPECT_TRUE(F.PTA->ptsOf(R, Ctx).empty());
}

TEST(PointsTo, NullStoreAddsNoPointees) {
  Fixture F;
  Clazz *Payload = F.B.makeClass("P", ClassKind::Plain);
  Clazz *Act = F.B.makeClass("Act", ClassKind::Activity);
  Field *Fld = F.B.addField(Act, "f", Payload);
  F.P.addManifestComponent(Act);
  Method *M = F.B.makeMethod(Act, "onCreate");
  F.B.emitStore(F.B.thisLocal(), Fld, nullptr);
  Local *Z = F.B.local("z");
  F.B.emitLoad(Z, F.B.thisLocal(), Fld);
  F.solve();
  EXPECT_TRUE(F.PTA->ptsOf(Z, F.ctxOf(M, Act)).empty());
}

TEST(PointsTo, KTwoSeparatesPerReceiverAllocations) {
  // A factory class allocates a payload per call; with k=2 the payload
  // is named per factory *object*, so two factories stay distinct.
  Fixture F;
  Clazz *Payload = F.B.makeClass("P", ClassKind::Plain);
  Clazz *Factory = F.B.makeClass("Factory", ClassKind::Plain);
  F.B.makeMethod(Factory, "make");
  Local *N = F.B.emitNew("n", Payload);
  F.B.emitReturn(N);

  Clazz *Act = F.B.makeClass("Act", ClassKind::Activity);
  F.P.addManifestComponent(Act);
  Method *M = F.B.makeMethod(Act, "onCreate");
  Local *F1 = F.B.emitNew("f1", Factory);
  Local *F2 = F.B.emitNew("f2", Factory);
  Local *A = F.B.local("a");
  F.B.emitCall(A, F1, "make");
  Local *Bv = F.B.local("b");
  F.B.emitCall(Bv, F2, "make");

  F.solve(/*K=*/2);
  MethodCtx Ctx = F.ctxOf(M, Act);
  const auto &PtsA = F.PTA->ptsOf(A, Ctx);
  const auto &PtsB = F.PTA->ptsOf(Bv, Ctx);
  ASSERT_EQ(PtsA.size(), 1u);
  ASSERT_EQ(PtsB.size(), 1u);
  EXPECT_NE(*PtsA.begin(), *PtsB.begin()) << "k=2 should separate";
}

TEST(PointsTo, KOneMergesPerReceiverAllocations) {
  // The same program under k=1 merges both payloads: the paper's
  // precision/scalability dial (§8.8).
  Fixture F;
  Clazz *Payload = F.B.makeClass("P", ClassKind::Plain);
  Clazz *Factory = F.B.makeClass("Factory", ClassKind::Plain);
  F.B.makeMethod(Factory, "make");
  Local *N = F.B.emitNew("n", Payload);
  F.B.emitReturn(N);
  Clazz *Act = F.B.makeClass("Act", ClassKind::Activity);
  F.P.addManifestComponent(Act);
  Method *M = F.B.makeMethod(Act, "onCreate");
  Local *F1 = F.B.emitNew("f1", Factory);
  Local *F2 = F.B.emitNew("f2", Factory);
  Local *A = F.B.local("a");
  F.B.emitCall(A, F1, "make");
  Local *Bv = F.B.local("b");
  F.B.emitCall(Bv, F2, "make");

  F.solve(/*K=*/1);
  MethodCtx Ctx = F.ctxOf(M, Act);
  const auto &PtsA = F.PTA->ptsOf(A, Ctx);
  const auto &PtsB = F.PTA->ptsOf(Bv, Ctx);
  ASSERT_EQ(PtsA.size(), 1u);
  EXPECT_EQ(PtsA, PtsB) << "k=1 merges heap contexts";
}

TEST(PointsTo, SpawnRecordsCarryReceiverObjects) {
  Fixture F;
  Clazz *Run = F.B.makeClass("R", ClassKind::Runnable);
  Method *RunM = F.B.makeMethod(Run, "run");
  F.B.emitReturn();
  Clazz *Act = F.B.makeClass("Act", ClassKind::Activity);
  F.P.addManifestComponent(Act);
  F.B.makeMethod(Act, "onClick");
  F.B.emitRunOnUiThread(Run);
  F.solve();

  bool Found = false;
  for (const SpawnRecord &S : F.PTA->spawnRecords()) {
    if (S.Target != RunM)
      continue;
    Found = true;
    EXPECT_EQ(F.PTA->object(S.Recv).RuntimeClass, Run);
    EXPECT_EQ(S.Kind, android::ApiKind::RunOnUiThread);
  }
  EXPECT_TRUE(Found);
}

TEST(PointsTo, ThreadReachAttributesHelperToCallingThread) {
  Fixture F;
  Clazz *Act = F.B.makeClass("Act", ClassKind::Activity);
  F.P.addManifestComponent(Act);
  Method *Helper = F.B.makeMethod(Act, "helper");
  F.B.emitReturn();
  Method *Click = F.B.makeMethod(Act, "onClick");
  F.B.emitCall(nullptr, F.B.thisLocal(), "helper");
  Method *Menu = F.B.makeMethod(Act, "onCreateOptionsMenu");
  F.B.emitReturn();
  F.solve();

  ThreadReach Reach(*F.PTA, *F.Forest);
  const threadify::ModeledThread *ClickT = nullptr, *MenuT = nullptr;
  for (const auto &T : F.Forest->threads()) {
    if (T->callback() == Click)
      ClickT = T.get();
    if (T->callback() == Menu)
      MenuT = T.get();
  }
  ASSERT_TRUE(ClickT && MenuT);
  auto Contains = [&](const threadify::ModeledThread *T, Method *M) {
    for (const MethodCtx &Ctx : Reach.contextsOf(T))
      if (Ctx.M == M)
        return true;
    return false;
  };
  EXPECT_TRUE(Contains(ClickT, Helper));
  EXPECT_FALSE(Contains(MenuT, Helper));
  EXPECT_TRUE(Contains(MenuT, Menu));
}

TEST(PointsTo, ThreadsExecutingIsTheInverseOfContextsOf) {
  Fixture F;
  Clazz *Act = F.B.makeClass("Act", ClassKind::Activity);
  F.P.addManifestComponent(Act);
  Method *Shared = F.B.makeMethod(Act, "shared");
  F.B.emitReturn();
  F.B.makeMethod(Act, "onClick");
  F.B.emitCall(nullptr, F.B.thisLocal(), "shared");
  F.B.makeMethod(Act, "onLongClick");
  F.B.emitCall(nullptr, F.B.thisLocal(), "shared");
  F.solve();

  ThreadReach Reach(*F.PTA, *F.Forest);
  MethodCtx SharedCtx = F.ctxOf(Shared, Act);
  auto Threads = Reach.threadsExecuting(SharedCtx);
  // Both UI callbacks execute the shared helper.
  std::set<std::string> Names;
  for (const threadify::ModeledThread *T : Threads)
    Names.insert(T->callback()->name());
  EXPECT_TRUE(Names.count("onClick"));
  EXPECT_TRUE(Names.count("onLongClick"));
  // Consistency with the forward direction.
  for (const threadify::ModeledThread *T : Threads) {
    bool Found = false;
    for (const MethodCtx &Ctx : Reach.contextsOf(T))
      Found |= Ctx == SharedCtx;
    EXPECT_TRUE(Found);
  }
}

TEST(PointsTo, StatsPopulated) {
  Fixture F;
  Clazz *Act = F.B.makeClass("Act", ClassKind::Activity);
  F.P.addManifestComponent(Act);
  F.B.makeMethod(Act, "onCreate");
  F.B.emitNew("x", Act);
  F.solve();
  EXPECT_GE(F.PTA->stats().get("pointsto.sweeps"), 1u);
  EXPECT_GE(F.PTA->stats().get("pointsto.contexts"), 1u);
  EXPECT_GE(F.PTA->stats().get("pointsto.objects"), 1u);
}

} // namespace
