//===- tests/ServeTest.cpp - Serve daemon tests ---------------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The serve layer's contracts: the wire protocol round-trips, daemon
// responses are byte-identical to the one-shot CLI's rendering, edits
// re-run only what they invalidated (whitespace: nothing; one method:
// a strict subset of a cold run, with the per-method caches kept), the
// session table LRU-evicts, the L2 response cache survives a daemon
// restart, and the real-socket transport serves concurrent clients and
// shuts down cleanly.
//
//===----------------------------------------------------------------------===//

#include "corpus/Patterns.h"
#include "frontend/Frontend.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "report/Lint.h"
#include "report/Nadroid.h"
#include "serve/Protocol.h"
#include "serve/Server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

using namespace nadroid;
namespace fs = std::filesystem;

namespace {

/// Scratch directory per fixture, wiped on both ends.
struct ScratchDir {
  explicit ScratchDir(const std::string &Name)
      : Dir(fs::temp_directory_path() / Name) {
    fs::remove_all(Dir);
    fs::create_directories(Dir);
  }
  ~ScratchDir() { fs::remove_all(Dir); }
  std::string path(const std::string &File) const {
    return (Dir / File).string();
  }
  fs::path Dir;
};

/// Prints the seeded harmful-UAF app to \p Path and returns its text.
std::string writeSeedApp(const std::string &Path) {
  ir::Program P("app");
  ir::IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.harmfulEcEc();
  std::string Text = ir::programToString(P);
  std::ofstream(Path) << Text;
  return Text;
}

void rewrite(const std::string &Path, const std::string &Text) {
  std::ofstream(Path) << Text;
}

/// What the one-shot CLI would print for `nadroid [flags] Path` —
/// computed through the same report layer, on a fresh manager, so the
/// daemon's resident-session output can be compared byte-for-byte.
std::string oneShotText(const std::string &Path,
                        pipeline::PipelineOptions PO = {},
                        bool ShowAll = false, bool Explain = false) {
  frontend::ParseResult Parsed = frontend::parseProgramFile(Path);
  EXPECT_TRUE(Parsed.Success);
  auto AM = std::make_shared<pipeline::AnalysisManager>(*Parsed.Prog, PO);
  report::NadroidResult R = report::analyzeProgram(AM);
  std::ostringstream OS;
  report::renderStandardReport(R, *Parsed.Prog, ShowAll, Explain, OS);
  return OS.str();
}

std::string oneShotLint(const std::string &Path) {
  frontend::ParseResult Parsed = frontend::parseProgramFile(Path);
  EXPECT_TRUE(Parsed.Success);
  pipeline::PipelineOptions PO;
  PO.Lint = true;
  auto AM = std::make_shared<pipeline::AnalysisManager>(*Parsed.Prog, PO);
  report::LintResult L = report::runLintChecks(*AM);
  std::ostringstream OS;
  report::renderLintReport(*Parsed.Prog, L, /*Json=*/false,
                           /*Explain=*/false, OS);
  return OS.str();
}

bool built(const serve::Response &R, const std::string &Pass) {
  return std::find(R.Built.begin(), R.Built.end(), Pass) != R.Built.end();
}

//===----------------------------------------------------------------------===//
// Protocol round-trips
//===----------------------------------------------------------------------===//

TEST(ServeProtocol, ParsesAnalyzeWithFlags) {
  serve::Request Q;
  std::string Error;
  ASSERT_TRUE(serve::parseRequest(
      "analyze app.air --all --json --k 3 --refute-v2", Q, Error));
  EXPECT_EQ(Q.V, serve::Verb::Analyze);
  EXPECT_EQ(Q.Path, "app.air");
  EXPECT_TRUE(Q.ShowAll);
  EXPECT_TRUE(Q.Json);
  EXPECT_EQ(Q.Pipeline.K, 3u);
  EXPECT_TRUE(Q.Pipeline.Refute);
  EXPECT_TRUE(Q.Pipeline.RefuteHistory);
}

TEST(ServeProtocol, ExplainIsAnalyzeWithExplainForced) {
  serve::Request A, E;
  std::string Error;
  ASSERT_TRUE(serve::parseRequest("explain app.air", E, Error));
  EXPECT_TRUE(E.Explain);
  ASSERT_TRUE(serve::parseRequest("analyze app.air --explain", A, Error));
  // Same L2 identity: the cache must not store the same answer twice.
  EXPECT_EQ(A.signature(), E.signature());
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  serve::Request Q;
  std::string Error;
  EXPECT_FALSE(serve::parseRequest("", Q, Error));
  EXPECT_EQ(Error, "error: empty request");
  EXPECT_FALSE(serve::parseRequest("frobnicate x", Q, Error));
  EXPECT_EQ(Error, "error: unknown request verb 'frobnicate'");
  EXPECT_FALSE(serve::parseRequest("analyze", Q, Error));
  EXPECT_EQ(Error, "error: analyze needs a file");
  EXPECT_FALSE(serve::parseRequest("analyze a.air b.air", Q, Error));
  EXPECT_EQ(Error, "error: analyze takes one file");
  EXPECT_FALSE(serve::parseRequest("analyze a.air --wat", Q, Error));
  EXPECT_EQ(Error, "error: unknown request flag '--wat'");
  EXPECT_FALSE(serve::parseRequest("lint a.air --k zebra", Q, Error));
  EXPECT_EQ(Error, "error: --k: 'zebra' is not a number");
  EXPECT_FALSE(serve::parseRequest("lint a.air --k 0", Q, Error));
  EXPECT_EQ(Error, "error: --k must be at least 1");
  EXPECT_FALSE(serve::parseRequest("status now", Q, Error));
  EXPECT_EQ(Error, "error: status takes no arguments");
}

TEST(ServeProtocol, ResponseHeaderRoundTrips) {
  serve::Response R;
  R.Exit = 1;
  R.Out = "hello\n";
  R.Err = "warn\n";
  R.L1 = "regraft";
  R.L2 = "store";
  R.Built = {"pointsto", "verdicts"};
  std::string Header = serve::renderResponseHeader(R);
  ASSERT_FALSE(Header.empty());
  EXPECT_EQ(Header.back(), '\n');

  serve::Response Parsed;
  size_t OutLen = 0, ErrLen = 0;
  ASSERT_TRUE(serve::parseResponseHeader(
      Header.substr(0, Header.size() - 1), Parsed, OutLen, ErrLen));
  EXPECT_TRUE(Parsed.Ok);
  EXPECT_EQ(Parsed.Exit, 1);
  EXPECT_EQ(OutLen, R.Out.size());
  EXPECT_EQ(ErrLen, R.Err.size());
  EXPECT_EQ(Parsed.L1, "regraft");
  EXPECT_EQ(Parsed.L2, "store");
  EXPECT_EQ(Parsed.Built, R.Built);

  EXPECT_FALSE(serve::parseResponseHeader("HTTP/1.1 200 OK", Parsed, OutLen,
                                          ErrLen));
  EXPECT_FALSE(
      serve::parseResponseHeader("nadroid-serve/1 ok exit=xx out=0 err=0",
                                 Parsed, OutLen, ErrLen));
}

TEST(ServeProtocol, ResponseEntryRoundTrips) {
  serve::Response R;
  R.Exit = 6;
  R.Out = "a \"quoted\" line\nwith two lines\n";
  R.Err = "";
  std::string Entry = serve::renderResponseEntry(R);
  EXPECT_EQ(Entry.find('\n'), std::string::npos);

  serve::Response Back;
  ASSERT_TRUE(serve::parseResponseEntry(Entry, Back));
  EXPECT_EQ(Back.Exit, 6);
  EXPECT_EQ(Back.Out, R.Out);
  EXPECT_EQ(Back.Err, R.Err);

  EXPECT_FALSE(serve::parseResponseEntry("{\"schema\": 3}", Back));
  EXPECT_FALSE(
      serve::parseResponseEntry(Entry.substr(0, Entry.size() / 2), Back));
}

//===----------------------------------------------------------------------===//
// In-process server: byte identity and incrementality
//===----------------------------------------------------------------------===//

TEST(ServeServer, ResponsesMatchOneShotRendering) {
  ScratchDir Scratch("nadroid-serve-bytes");
  std::string App = Scratch.path("app.air");
  writeSeedApp(App);

  serve::ServerOptions O;
  serve::Server S(O);

  serve::Response R = S.handle("analyze " + App);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Exit, 1); // the seeded UAF survives the filters
  EXPECT_EQ(R.L1, "new");
  EXPECT_EQ(R.Out, oneShotText(App));
  EXPECT_EQ(R.Err, "");

  serve::Response All = S.handle("analyze " + App + " --all --explain");
  EXPECT_EQ(All.Out, oneShotText(App, {}, true, true));

  serve::Response Lint = S.handle("lint " + App);
  EXPECT_EQ(Lint.Out, oneShotLint(App));
  EXPECT_EQ(Lint.Exit, 0) << Lint.Out; // no lint findings in the seed
}

TEST(ServeServer, UnchangedFileRebuildsNothing) {
  ScratchDir Scratch("nadroid-serve-hit");
  std::string App = Scratch.path("app.air");
  writeSeedApp(App);

  serve::ServerOptions O;
  serve::Server S(O);
  serve::Response Cold = S.handle("analyze " + App);
  EXPECT_FALSE(Cold.Built.empty());

  serve::Response Warm = S.handle("analyze " + App);
  EXPECT_EQ(Warm.L1, "hit");
  EXPECT_TRUE(Warm.Built.empty());
  EXPECT_EQ(Warm.Out, Cold.Out);
}

TEST(ServeServer, WhitespaceEditRebuildsNothing) {
  ScratchDir Scratch("nadroid-serve-ws");
  std::string App = Scratch.path("app.air");
  std::string Text = writeSeedApp(App);

  serve::ServerOptions O;
  serve::Server S(O);
  S.handle("analyze " + App);

  // Insert a blank line after the header: every later location shifts,
  // but no analysis result changes — the rebase refreshes locations in
  // place and rebuilds zero passes.
  size_t Eol = Text.find('\n');
  ASSERT_NE(Eol, std::string::npos);
  std::string Shifted = Text.substr(0, Eol + 1) + "\n" + Text.substr(Eol + 1);
  rewrite(App, Shifted);

  serve::Response R = S.handle("analyze " + App);
  EXPECT_EQ(R.L1, "rebase");
  EXPECT_TRUE(R.Built.empty()) << "rebuilt: " << R.Built.size() << " passes";
  // The refreshed locations must still match a from-scratch analysis of
  // the edited file, byte for byte.
  EXPECT_EQ(R.Out, oneShotText(App));
}

TEST(ServeServer, BodyEditRebuildsStrictSubset) {
  ScratchDir Scratch("nadroid-serve-inc");
  std::string App = Scratch.path("app.air");
  std::string Text = writeSeedApp(App);

  serve::ServerOptions O;
  serve::Server S(O);
  serve::Response Cold = S.handle("analyze " + App);

  // One-method body edit: the use() call happens twice now. Same class
  // and method skeleton, so the fresh bodies graft onto the resident
  // program instead of replacing it.
  const std::string UseCall = "u.use();\n";
  size_t At = Text.find(UseCall);
  ASSERT_NE(At, std::string::npos);
  std::string Edited = Text;
  Edited.insert(At, "u.use();\n    ");
  rewrite(App, Edited);

  serve::Response R = S.handle("analyze " + App);
  EXPECT_EQ(R.L1, "regraft");
  EXPECT_FALSE(R.Built.empty());
  // Strictly fewer passes than the cold run: the per-method caches only
  // dropped the edited method's rows and did not rebuild.
  EXPECT_LT(R.Built.size(), Cold.Built.size());
  for (const char *Kept : {"cfg", "guards", "allocflow", "consumers"})
    EXPECT_FALSE(built(R, Kept)) << Kept << " should not rebuild";
  EXPECT_TRUE(built(R, "detection"));
  EXPECT_EQ(R.Out, oneShotText(App));
}

TEST(ServeServer, StructuralEditSwapsTheSession) {
  ScratchDir Scratch("nadroid-serve-swap");
  std::string App = Scratch.path("app.air");
  std::string Text = writeSeedApp(App);

  serve::ServerOptions O;
  serve::Server S(O);
  S.handle("analyze " + App);

  // A new method changes the class skeleton: no graft possible, the
  // session swaps to the fresh program wholesale.
  size_t At = Text.rfind("}\n}\n");
  ASSERT_NE(At, std::string::npos);
  std::string Edited = Text;
  Edited.insert(At + 2, "\n  method onExtra() {\n    return;\n  }\n");
  rewrite(App, Edited);

  serve::Response R = S.handle("analyze " + App);
  EXPECT_EQ(R.L1, "swap");
  EXPECT_EQ(R.Out, oneShotText(App));
}

TEST(ServeServer, OptionChangeRebuildsOptionSensitivePasses) {
  ScratchDir Scratch("nadroid-serve-opts");
  std::string App = Scratch.path("app.air");
  writeSeedApp(App);

  serve::ServerOptions O;
  serve::Server S(O);
  S.handle("analyze " + App);

  pipeline::PipelineOptions K3;
  K3.K = 3;
  serve::Response R = S.handle("analyze " + App + " --k 3");
  EXPECT_EQ(R.L1, "hit"); // same bytes; only the options moved
  EXPECT_TRUE(built(R, "pointsto"));
  EXPECT_EQ(R.Out, oneShotText(App, K3));
}

TEST(ServeServer, ParseErrorKeepsTheSessionServing) {
  ScratchDir Scratch("nadroid-serve-err");
  std::string App = Scratch.path("app.air");
  std::string Text = writeSeedApp(App);

  serve::ServerOptions O;
  serve::Server S(O);
  serve::Response Good = S.handle("analyze " + App);

  rewrite(App, "app \"broken\"; class {");
  serve::Response Bad = S.handle("analyze " + App);
  EXPECT_EQ(Bad.Exit, 2);
  EXPECT_EQ(Bad.L1, "parse-error");
  EXPECT_FALSE(Bad.Err.empty());

  // The resident program survived the broken intermediate state: putting
  // the old bytes back is a plain re-analysis, not a cold start.
  rewrite(App, Text);
  serve::Response Again = S.handle("analyze " + App);
  EXPECT_TRUE(Again.Ok);
  EXPECT_EQ(Again.Out, Good.Out);

  serve::Response Missing = S.handle("analyze " + Scratch.path("no.air"));
  EXPECT_EQ(Missing.Exit, 2);
  EXPECT_NE(Missing.Err.find("cannot open file"), std::string::npos);

  serve::Response Garbage = S.handle("not a request");
  EXPECT_FALSE(Garbage.Ok);
  EXPECT_EQ(Garbage.Exit, 2);
}

TEST(ServeServer, SessionTableEvictsLru) {
  ScratchDir Scratch("nadroid-serve-lru");
  std::string A = Scratch.path("a.air"), B = Scratch.path("b.air"),
              C = Scratch.path("c.air");
  writeSeedApp(A);
  writeSeedApp(B);
  writeSeedApp(C);

  serve::ServerOptions O;
  O.MaxSessions = 2;
  serve::Server S(O);
  S.handle("analyze " + A);
  S.handle("analyze " + B);
  EXPECT_TRUE(S.sessionTable().resident(A));
  S.handle("analyze " + C); // capacity 2: A is the LRU victim
  EXPECT_FALSE(S.sessionTable().resident(A));
  EXPECT_TRUE(S.sessionTable().resident(B));
  EXPECT_TRUE(S.sessionTable().resident(C));
  EXPECT_EQ(S.sessionTable().evictions(), 1u);

  serve::Response R = S.handle("analyze " + A);
  EXPECT_EQ(R.L1, "new"); // back from scratch, not from the table
}

TEST(ServeServer, L2AnswersAcrossRestart) {
  ScratchDir Scratch("nadroid-serve-l2");
  std::string App = Scratch.path("app.air");
  writeSeedApp(App);

  serve::ServerOptions O;
  O.CacheDir = Scratch.path("cache");
  std::string FirstOut;
  {
    serve::Server S(O);
    serve::Response R = S.handle("analyze " + App);
    EXPECT_EQ(R.L2, "store");
    FirstOut = R.Out;
  }
  {
    serve::Server S(O); // a new daemon, same cache directory
    serve::Response R = S.handle("analyze " + App);
    EXPECT_EQ(R.L2, "hit");
    EXPECT_EQ(R.L1, "cold"); // answered without any resident session
    EXPECT_TRUE(R.Built.empty());
    EXPECT_EQ(R.Out, FirstOut);
  }
}

TEST(ServeServer, StatusAndShutdown) {
  ScratchDir Scratch("nadroid-serve-status");
  std::string App = Scratch.path("app.air");
  writeSeedApp(App);

  serve::ServerOptions O;
  serve::Server S(O);
  S.handle("analyze " + App);
  serve::Response Status = S.handle("status");
  EXPECT_NE(Status.Out.find("sessions: 1/8 resident"), std::string::npos)
      << Status.Out;
  EXPECT_NE(Status.Out.find("app.air: requests=1"), std::string::npos);

  EXPECT_FALSE(S.shutdownRequested());
  serve::Response Down = S.handle("shutdown");
  EXPECT_TRUE(Down.Ok);
  EXPECT_TRUE(S.shutdownRequested());
}

//===----------------------------------------------------------------------===//
// Real socket transport
//===----------------------------------------------------------------------===//

TEST(ServeSocket, ConcurrentClientsGetOneShotBytes) {
  ScratchDir Scratch("nadroid-serve-sock");
  // sun_path is ~108 bytes; keep the socket under /tmp directly.
  std::string Sock = Scratch.path("d.sock");
  constexpr int NumClients = 4;
  std::vector<std::string> Apps, Expected;
  for (int I = 0; I < NumClients; ++I) {
    Apps.push_back(Scratch.path("app" + std::to_string(I) + ".air"));
    writeSeedApp(Apps.back());
    // Program names come from the file stem, so each app renders its
    // own summary line.
    Expected.push_back(oneShotText(Apps.back()));
  }

  serve::ServerOptions O;
  O.SocketPath = Sock;
  serve::Server S(O);
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;
  std::thread Daemon([&S] { EXPECT_EQ(S.run(), 0); });

  std::vector<std::thread> Clients;
  std::vector<int> Exits(NumClients, -1);
  std::vector<std::string> Outs(NumClients), Errs(NumClients);
  for (int I = 0; I < NumClients; ++I)
    Clients.emplace_back([&, I] {
      std::ostringstream Out, Err;
      Exits[I] =
          serve::runClient(Sock, "analyze " + Apps[I], Out, Err);
      Outs[I] = Out.str();
      Errs[I] = Err.str();
    });
  for (std::thread &T : Clients)
    T.join();
  for (int I = 0; I < NumClients; ++I) {
    EXPECT_EQ(Exits[I], 1) << Errs[I];
    EXPECT_EQ(Outs[I], Expected[I]);
    EXPECT_EQ(Errs[I], "");
  }

  std::ostringstream Out, Err;
  EXPECT_EQ(serve::runClient(Sock, "shutdown", Out, Err), 0) << Err.str();
  Daemon.join();
  EXPECT_FALSE(fs::exists(Sock)); // a clean shutdown removes the socket

  // With no daemon behind the socket, the client reports exit 7.
  EXPECT_EQ(serve::runClient(Sock, "status", Out, Err), 7);
}

} // namespace
