//===- tests/PipelineManagerTest.cpp - AnalysisManager + batch tests ------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The pipeline layer's contracts: analyses build lazily and cache with
// stable references, option changes invalidate exactly the passes they
// feed (plus observed dependents), the thread pool behaves under nesting
// and exceptions, parallel verdicts match serial ones, and the batch
// driver's text report is byte-identical for any --jobs value.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "corpus/Patterns.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "pipeline/AnalysisManager.h"
#include "report/Batch.h"
#include "report/Json.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

using namespace nadroid;
using pipeline::AnalysisManager;

namespace {

/// A minimal program with one seeded harmful UAF — enough to exercise
/// detection, the filter stage, and (in dataflow mode) nullness.
void seedProgram(ir::Program &P) {
  ir::IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.harmfulEcEc();
}

const pipeline::PassStat *statNamed(const std::vector<pipeline::PassStat> &Stats,
                                    const std::string &Name) {
  for (const pipeline::PassStat &S : Stats)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

/// Strips the perf-tracking accounting from a JSON report so two runs
/// can be compared byte-for-byte: the "analyses" arrays (pool lanes can
/// trigger lazy builds in a different registration order), every
/// fixed-point timing value, the rssKb samples, and the jobs count.
/// Everything semantic — warnings, counts, statuses, key order —
/// survives untouched.
std::string normalizedJson(const std::string &Json) {
  static const std::string Marker = "\"analyses\": [";
  std::string Out;
  Out.reserve(Json.size());
  for (size_t I = 0; I < Json.size();) {
    if (Json.compare(I, Marker.size(), Marker) == 0) {
      I += Marker.size();
      for (size_t Depth = 1; Depth && I < Json.size(); ++I) {
        if (Json[I] == '[')
          ++Depth;
        else if (Json[I] == ']')
          --Depth;
      }
      Out += "\"analyses\": []";
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(Json[I]))) {
      size_t J = I;
      bool Dotted = false;
      while (J < Json.size() &&
             (std::isdigit(static_cast<unsigned char>(Json[J])) ||
              Json[J] == '.')) {
        Dotted |= Json[J] == '.';
        ++J;
      }
      auto after = [&](const char *Key) {
        size_t N = std::strlen(Key);
        return Out.size() >= N && Out.compare(Out.size() - N, N, Key) == 0;
      };
      if (Dotted)
        Out += 'T'; // a timing — jsonFixed always prints a decimal point
      else if (after("\"rssKb\": "))
        Out += 'R';
      else if (after("\"jobs\": "))
        Out += 'J';
      else
        Out.append(Json, I, J - I); // a semantic count: keep it
      I = J;
      continue;
    }
    Out += Json[I++];
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Laziness, caching, accounting
//===----------------------------------------------------------------------===//

TEST(AnalysisManagerTest, BuildsLazilyOnFirstRequest) {
  ir::Program P("t");
  seedProgram(P);
  AnalysisManager AM(P);

  EXPECT_FALSE(AM.isCached<pipeline::ThreadForestPass>());
  EXPECT_FALSE(AM.isCached<pipeline::ApiIndexPass>());

  const threadify::ThreadForest &F = AM.forest();
  EXPECT_TRUE(AM.isCached<pipeline::ThreadForestPass>());
  // Nothing the forest does not need was built.
  EXPECT_FALSE(AM.isCached<pipeline::ApiIndexPass>());
  EXPECT_FALSE(AM.isCached<pipeline::PointsToPass>());
  EXPECT_FALSE(AM.isCached<pipeline::NullnessPass>());
  EXPECT_FALSE(AM.isCached<pipeline::VerdictsPass>());

  // Second request is a cache hit returning the same object.
  EXPECT_EQ(&F, &AM.forest());
  const pipeline::PassStat *S = statNamed(AM.passStats(), "threadforest");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Builds, 1u);
  EXPECT_GE(S->Hits, 1u);
  EXPECT_TRUE(S->Cached);
}

TEST(AnalysisManagerTest, DependenciesAreRequestedThroughTheManager) {
  ir::Program P("t");
  seedProgram(P);
  AnalysisManager AM(P);

  // One request for detection pulls in its whole upstream slice.
  AM.detection();
  EXPECT_TRUE(AM.isCached<pipeline::ApiIndexPass>());
  EXPECT_TRUE(AM.isCached<pipeline::ThreadForestPass>());
  EXPECT_TRUE(AM.isCached<pipeline::PointsToPass>());
  EXPECT_TRUE(AM.isCached<pipeline::ThreadReachPass>());
  // ...and nothing downstream of it.
  EXPECT_FALSE(AM.isCached<pipeline::FilterContextPass>());
  EXPECT_FALSE(AM.isCached<pipeline::VerdictsPass>());
}

//===----------------------------------------------------------------------===//
// Invalidation
//===----------------------------------------------------------------------===//

TEST(AnalysisManagerTest, KChangeDropsPointsToButKeepsModeling) {
  ir::Program P("t");
  seedProgram(P);
  AnalysisManager AM(P);
  AM.detection();

  pipeline::PipelineOptions Opts = AM.options();
  Opts.K = 1;
  AM.setOptions(Opts);

  EXPECT_FALSE(AM.isCached<pipeline::PointsToPass>());
  EXPECT_FALSE(AM.isCached<pipeline::ThreadReachPass>());
  EXPECT_FALSE(AM.isCached<pipeline::DetectionPass>());
  EXPECT_TRUE(AM.isCached<pipeline::ThreadForestPass>());
  EXPECT_TRUE(AM.isCached<pipeline::ApiIndexPass>());

  AM.detection(); // rebuild under the new K
  const pipeline::PassStat *S = statNamed(AM.passStats(), "pointsto");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Builds, 2u);
}

TEST(AnalysisManagerTest, ForestInvalidationCascadesToDependents) {
  ir::Program P("t");
  seedProgram(P);
  AnalysisManager AM(P);
  AM.verdicts();

  AM.invalidate<pipeline::ThreadForestPass>();

  EXPECT_FALSE(AM.isCached<pipeline::ThreadForestPass>());
  EXPECT_FALSE(AM.isCached<pipeline::PointsToPass>());
  EXPECT_FALSE(AM.isCached<pipeline::ThreadReachPass>());
  EXPECT_FALSE(AM.isCached<pipeline::DetectionPass>());
  EXPECT_FALSE(AM.isCached<pipeline::FilterContextPass>());
  EXPECT_FALSE(AM.isCached<pipeline::FilterEnginePass>());
  EXPECT_FALSE(AM.isCached<pipeline::VerdictsPass>());
  // The API index does not depend on the forest.
  EXPECT_TRUE(AM.isCached<pipeline::ApiIndexPass>());
}

TEST(AnalysisManagerTest, GuardModeFlipDropsOnlyTheFilterStage) {
  ir::Program P("t");
  seedProgram(P);
  AnalysisManager AM(P);
  const filters::PipelineResult &Dataflow = AM.verdicts();
  const unsigned AfterUnsound = Dataflow.RemainingAfterUnsound;

  pipeline::PipelineOptions Opts = AM.options();
  Opts.DataflowGuards = false;
  AM.setOptions(Opts);

  EXPECT_FALSE(AM.isCached<pipeline::FilterContextPass>());
  EXPECT_FALSE(AM.isCached<pipeline::FilterEnginePass>());
  EXPECT_FALSE(AM.isCached<pipeline::VerdictsPass>());
  EXPECT_TRUE(AM.isCached<pipeline::DetectionPass>());
  EXPECT_TRUE(AM.isCached<pipeline::PointsToPass>());
  EXPECT_TRUE(AM.isCached<pipeline::ThreadForestPass>());

  // Rebuild in syntactic mode; the seeded harmful warning survives both
  // modes, so the headline count is mode-independent here.
  EXPECT_EQ(AM.verdicts().RemainingAfterUnsound, AfterUnsound);
}

TEST(AnalysisManagerTest, NullnessLazyEdgeDropsTheFilterContext) {
  ir::Program P("t");
  seedProgram(P);
  AnalysisManager AM(P);
  AM.verdicts();
  ASSERT_TRUE(AM.isCached<pipeline::FilterContextPass>());

  // The context consumes nullness lazily (possibly after its own build
  // frame closed); the recorded lazy edge must still cascade.
  AM.invalidate<pipeline::NullnessPass>();
  EXPECT_FALSE(AM.isCached<pipeline::FilterContextPass>());
  EXPECT_FALSE(AM.isCached<pipeline::VerdictsPass>());
  EXPECT_TRUE(AM.isCached<pipeline::DetectionPass>());
}

//===----------------------------------------------------------------------===//
// Thread pool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  support::ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(1000);
  Pool.parallelFor(Hits.size(), [&](size_t I) { ++Hits[I]; });
  for (const std::atomic<int> &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPoolTest, NestedLoopsDoNotDeadlock) {
  support::ThreadPool Pool(4);
  std::atomic<int> Sum{0};
  Pool.parallelFor(8, [&](size_t) {
    Pool.parallelFor(8, [&](size_t) { ++Sum; });
  });
  EXPECT_EQ(Sum.load(), 64);
}

TEST(ThreadPoolTest, PropagatesTheFirstException) {
  support::ThreadPool Pool(2);
  EXPECT_THROW(Pool.parallelFor(64,
                                [](size_t I) {
                                  if (I == 7)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ExplicitConcurrencyOneRunsInline) {
  support::ThreadPool Pool(1);
  EXPECT_EQ(Pool.concurrency(), 1u);
  std::vector<size_t> Order;
  Pool.parallelFor(5, [&](size_t I) { Order.push_back(I); });
  EXPECT_EQ(Order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

//===----------------------------------------------------------------------===//
// Parallel verdicts and the batch driver
//===----------------------------------------------------------------------===//

TEST(AnalysisManagerTest, ParallelVerdictsMatchSerial) {
  corpus::CorpusApp App = corpus::buildAppNamed("ConnectBot");

  AnalysisManager Serial(*App.Prog);
  const filters::PipelineResult &S = Serial.verdicts();

  support::ThreadPool Pool(4);
  AnalysisManager Parallel(*App.Prog);
  Parallel.setThreadPool(&Pool);
  const filters::PipelineResult &Q = Parallel.verdicts();

  EXPECT_EQ(S.RemainingAfterSound, Q.RemainingAfterSound);
  EXPECT_EQ(S.RemainingAfterUnsound, Q.RemainingAfterUnsound);
  ASSERT_EQ(S.Verdicts.size(), Q.Verdicts.size());
  for (size_t I = 0; I < S.Verdicts.size(); ++I) {
    EXPECT_EQ(S.Verdicts[I].StageReached, Q.Verdicts[I].StageReached) << I;
    EXPECT_EQ(S.Verdicts[I].FiredFilters, Q.Verdicts[I].FiredFilters) << I;
    EXPECT_EQ(S.Verdicts[I].PairsAfterSound.size(),
              Q.Verdicts[I].PairsAfterSound.size())
        << I;
    EXPECT_EQ(S.Verdicts[I].PairsRemaining.size(),
              Q.Verdicts[I].PairsRemaining.size())
        << I;
  }
}

TEST(BatchDriverTest, ReportIsByteIdenticalAcrossJobCounts) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "nadroid-batch-determinism";
  fs::create_directories(Dir);

  for (const corpus::Recipe &R : corpus::allRecipes()) {
    corpus::CorpusApp App = corpus::buildApp(R);
    std::ofstream Out(Dir / (R.Name + ".air"));
    ASSERT_TRUE(Out.good()) << R.Name;
    ir::printProgram(*App.Prog, Out);
  }

  report::BatchOptions Opts;
  Opts.Dir = Dir.string();
  Opts.Jobs = 1;
  report::BatchResult Ser = report::runBatch(Opts);
  Opts.Jobs = 8;
  report::BatchResult Par = report::runBatch(Opts);

  EXPECT_EQ(Ser.Apps.size(), corpus::allRecipes().size());
  EXPECT_EQ(Ser.exitCode(), Par.exitCode());
  EXPECT_EQ(report::renderBatchReport(Ser), report::renderBatchReport(Par));
  EXPECT_EQ(normalizedJson(report::renderBatchJson(Ser)),
            normalizedJson(report::renderBatchJson(Par)));

  std::error_code Ec;
  fs::remove_all(Dir, Ec);
}

// With verdicts fanning out over the pool *inside* one app, the rendered
// reports — not just the verdict counts — must come out byte-identical.
// Runs both the plain pipeline and the tier-2 refuter configuration,
// which exercises the shared HbQuery memos (pair verdicts, skeleton
// cache) under concurrent first-touch from multiple lanes.
TEST(AnalysisManagerTest, ParallelReportBytesMatchSerial) {
  corpus::CorpusApp App = corpus::buildAppNamed("ConnectBot");

  report::NadroidOptions Tier2;
  Tier2.Refute = true;
  Tier2.RefuteHistory = true;

  for (const report::NadroidOptions &O :
       {report::NadroidOptions{}, Tier2}) {
    auto Render = [&](support::ThreadPool *Pool) {
      auto AM = std::make_shared<AnalysisManager>(*App.Prog, O);
      AM->setThreadPool(Pool);
      report::NadroidResult R = report::analyzeProgram(AM);
      std::string Text = report::summaryLine(R) + "\n";
      for (size_t I : R.remainingIndices())
        Text += report::renderWarning(R, I, *App.Prog);
      return std::make_pair(std::move(Text),
                            normalizedJson(report::renderJson(R, *App.Prog)));
    };
    auto Serial = Render(nullptr);
    support::ThreadPool Pool(4);
    auto Parallel = Render(&Pool);
    EXPECT_EQ(Serial.first, Parallel.first);
    EXPECT_EQ(Serial.second, Parallel.second);
  }
}

TEST(BatchDriverTest, ParseFailuresBecomeRowsNotCrashes) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "nadroid-batch-badapp";
  fs::create_directories(Dir);
  {
    std::ofstream Out(Dir / "broken.air");
    Out << "this is not an AIR program\n";
  }

  report::BatchOptions Opts;
  Opts.Dir = Dir.string();
  Opts.Jobs = 2;
  report::BatchResult R = report::runBatch(Opts);
  ASSERT_EQ(R.Apps.size(), 1u);
  EXPECT_EQ(R.Apps[0].Status, report::BatchStatus::ParseFailed);
  EXPECT_FALSE(R.Apps[0].analyzed());
  EXPECT_FALSE(R.Apps[0].Error.empty());
  EXPECT_EQ(R.exitCode(), 2);

  std::error_code Ec;
  fs::remove_all(Dir, Ec);
}

//===----------------------------------------------------------------------===//
// Fault tolerance: isolation, deadlines with degradation, resume
//===----------------------------------------------------------------------===//

namespace fault {
namespace fs = std::filesystem;

/// Writes one seeded (valid, analyzable) app into \p Dir as \p Name.
void writeSeededApp(const fs::path &Dir, const std::string &Name) {
  ir::Program P(Name.substr(0, Name.find('.')));
  seedProgram(P);
  std::ofstream Out(Dir / Name);
  ASSERT_TRUE(Out.good()) << Name;
  ir::printProgram(P, Out);
}

/// A poisoned five-app corpus: one unparseable, one that throws, one
/// that expires once (degrades), one that always expires (times out),
/// and one healthy control.
fs::path makePoisonedCorpus(const std::string &DirName) {
  fs::path Dir = fs::temp_directory_path() / DirName;
  std::error_code Ec;
  fs::remove_all(Dir, Ec);
  fs::create_directories(Dir);
  {
    std::ofstream Out(Dir / "broken.air");
    Out << "this is not an AIR program\n";
  }
  writeSeededApp(Dir, "crash.air");
  writeSeededApp(Dir, "expire-always.air");
  writeSeededApp(Dir, "expire-once.air");
  writeSeededApp(Dir, "healthy.air");
  return Dir;
}

report::BatchOptions poisonedOptions(const fs::path &Dir) {
  report::BatchOptions Opts;
  Opts.Dir = Dir.string();
  Opts.TestCrashApp = "crash.air";
  Opts.TestExpireApp = "expire-once.air";
  Opts.TestExpireAlwaysApp = "expire-always.air";
  return Opts;
}

} // namespace fault

TEST(BatchFaultToleranceTest, FaultsBecomeRowsAndLadderDegrades) {
  namespace fs = std::filesystem;
  fs::path Dir = fault::makePoisonedCorpus("nadroid-batch-poisoned");

  report::BatchOptions Opts = fault::poisonedOptions(Dir);
  Opts.Jobs = 1;
  report::BatchResult R = report::runBatch(Opts);

  // Sorted by file: broken, crash, expire-always, expire-once, healthy.
  ASSERT_EQ(R.Apps.size(), 5u);
  EXPECT_EQ(R.Apps[0].Status, report::BatchStatus::ParseFailed);
  EXPECT_EQ(R.Apps[1].Status, report::BatchStatus::Crashed);
  EXPECT_EQ(R.Apps[1].Error, "injected test-hook crash");
  EXPECT_EQ(R.Apps[2].Status, report::BatchStatus::TimedOut);
  EXPECT_EQ(R.Apps[2].Error, "per-app time budget exceeded");
  EXPECT_EQ(R.Apps[3].Status, report::BatchStatus::Degraded);
  EXPECT_TRUE(R.Apps[3].Error.empty());
  EXPECT_EQ(R.Apps[4].Status, report::BatchStatus::Ok);

  // The degraded retry really analyzed the app (k=1, syntactic filters).
  EXPECT_TRUE(R.Apps[3].analyzed());
  EXPECT_GT(R.Apps[3].Stmts, 0u);
  EXPECT_EQ(R.Apps[3].Stmts, R.Apps[4].Stmts);

  // Worst outcome over the corpus: a timed-out app dominates.
  EXPECT_EQ(R.exitCode(), 4);

  std::error_code Ec;
  fs::remove_all(Dir, Ec);
}

TEST(BatchFaultToleranceTest, FaultyReportIsByteIdenticalAcrossJobCounts) {
  namespace fs = std::filesystem;
  fs::path Dir = fault::makePoisonedCorpus("nadroid-batch-poisoned-jobs");

  report::BatchOptions Opts = fault::poisonedOptions(Dir);
  Opts.Jobs = 1;
  report::BatchResult Ser = report::runBatch(Opts);
  Opts.Jobs = 4;
  report::BatchResult Par = report::runBatch(Opts);

  EXPECT_EQ(Ser.exitCode(), Par.exitCode());
  EXPECT_EQ(report::renderBatchReport(Ser), report::renderBatchReport(Par));

  std::error_code Ec;
  fs::remove_all(Dir, Ec);
}

// Same poisoned corpus, but with a real --batch-timeout budget attached
// and the JSON aggregate compared too. The budget is generous, so every
// lane carries a live deadline (the timeout plumbing runs under
// parallelism) while actual expiry stays in the injected hooks — which
// apps time out is therefore deterministic across job counts.
TEST(BatchFaultToleranceTest, PoisonedJsonReportIsByteIdenticalAcrossJobCounts) {
  namespace fs = std::filesystem;
  fs::path Dir = fault::makePoisonedCorpus("nadroid-batch-poisoned-json");

  report::BatchOptions Opts = fault::poisonedOptions(Dir);
  Opts.TimeoutSec = 300;
  Opts.Jobs = 1;
  report::BatchResult Ser = report::runBatch(Opts);
  Opts.Jobs = 4;
  report::BatchResult Par = report::runBatch(Opts);

  EXPECT_EQ(Ser.exitCode(), Par.exitCode());
  EXPECT_EQ(report::renderBatchReport(Ser), report::renderBatchReport(Par));
  EXPECT_EQ(normalizedJson(report::renderBatchJson(Ser)),
            normalizedJson(report::renderBatchJson(Par)));

  std::error_code Ec;
  fs::remove_all(Dir, Ec);
}

TEST(BatchFaultToleranceTest, LogLineRoundTrips) {
  report::BatchApp A;
  A.File = "we\"ird\napp.air";
  A.Name = "weird";
  A.Status = report::BatchStatus::Degraded;
  A.Error = "";
  A.Stmts = 42;
  A.EntryCallbacks = 3;
  A.PostedCallbacks = 2;
  A.Threads = 5;
  A.Potential = 7;
  A.AfterSound = 4;
  A.AfterUnsound = 1;
  A.Timings.ModelingSec = 0.25;
  A.Timings.DetectionSec = 1.5;
  A.Timings.FilteringSec = 0.125;
  A.Timings.FilterSec[0] = 0.0625;                             // MHB
  A.Timings.FilterSec[filters::NumFilterKinds - 1] = 0.03125;  // TT

  std::string Line = report::renderBatchLogLine(A);
  report::BatchApp B;
  ASSERT_TRUE(report::parseBatchLogLine(Line, B));
  EXPECT_EQ(B.File, A.File);
  EXPECT_EQ(B.Name, A.Name);
  EXPECT_EQ(B.Status, A.Status);
  EXPECT_EQ(B.Error, A.Error);
  EXPECT_EQ(B.Stmts, A.Stmts);
  EXPECT_EQ(B.Potential, A.Potential);
  EXPECT_EQ(B.AfterSound, A.AfterSound);
  EXPECT_EQ(B.AfterUnsound, A.AfterUnsound);
  EXPECT_DOUBLE_EQ(B.Timings.ModelingSec, 0.25);
  EXPECT_DOUBLE_EQ(B.Timings.DetectionSec, 1.5);
  EXPECT_DOUBLE_EQ(B.Timings.FilteringSec, 0.125);
  EXPECT_DOUBLE_EQ(B.Timings.FilterSec[0], 0.0625);
  EXPECT_DOUBLE_EQ(B.Timings.FilterSec[filters::NumFilterKinds - 1], 0.03125);
  EXPECT_DOUBLE_EQ(B.Timings.FilterSec[1], 0.0); // unset kinds stay zero

  // A line a killed writer truncated mid-value is refused, not half-read.
  report::BatchApp C;
  EXPECT_FALSE(report::parseBatchLogLine(Line.substr(0, Line.size() / 2), C));
  EXPECT_FALSE(report::parseBatchLogLine("", C));
}

TEST(BatchFaultToleranceTest, ResumeSkipsLoggedAppsAndMatchesFullRun) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "nadroid-batch-resume";
  std::error_code Ec;
  fs::remove_all(Dir, Ec);
  fs::create_directories(Dir);
  fault::writeSeededApp(Dir, "alpha.air");
  fault::writeSeededApp(Dir, "beta.air");
  fs::path Log = Dir / "checkpoint.jsonl";

  report::BatchOptions Opts;
  Opts.Dir = Dir.string();
  Opts.Jobs = 1;
  Opts.LogPath = Log.string();
  report::BatchResult Full = report::runBatch(Opts);
  ASSERT_EQ(Full.Apps.size(), 2u);
  EXPECT_EQ(Full.Resumed, 0u);
  std::string FullReport = report::renderBatchReport(Full);

  // Complete log: a resumed run re-analyzes nothing. The crash hook on
  // alpha proves it — a restored row never reaches the analysis.
  Opts.Resume = true;
  Opts.TestCrashApp = "alpha.air";
  report::BatchResult Resumed = report::runBatch(Opts);
  EXPECT_EQ(Resumed.Resumed, 2u);
  EXPECT_EQ(Resumed.Apps[0].Status, report::BatchStatus::Ok);
  EXPECT_EQ(report::renderBatchReport(Resumed), FullReport);

  // Interrupted log (header + first row only): resume re-runs exactly
  // the missing app and the stitched report matches the uninterrupted
  // one.
  std::string HeaderLine, FirstRow;
  {
    std::ifstream In(Log);
    ASSERT_TRUE(std::getline(In, HeaderLine));
    std::string Spec, HeaderFp;
    bool HeaderLint = false;
    ASSERT_TRUE(
        report::parseBatchLogHeader(HeaderLine, Spec, HeaderFp, HeaderLint));
    EXPECT_EQ(Spec, "-"); // unsharded runs stamp the "-" spec
    ASSERT_TRUE(std::getline(In, FirstRow));
  }
  {
    std::ofstream Out(Log, std::ios::trunc);
    Out << HeaderLine << "\n" << FirstRow << "\n";
  }
  Opts.TestCrashApp.clear();
  report::BatchResult Stitched = report::runBatch(Opts);
  EXPECT_EQ(Stitched.Resumed, 1u);
  EXPECT_EQ(report::renderBatchReport(Stitched), FullReport);

  // The re-run row was appended, so a third resume restores both.
  report::BatchResult Again = report::runBatch(Opts);
  EXPECT_EQ(Again.Resumed, 2u);

  fs::remove_all(Dir, Ec);
}

} // namespace
