//===- tests/PipelineManagerTest.cpp - AnalysisManager + batch tests ------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The pipeline layer's contracts: analyses build lazily and cache with
// stable references, option changes invalidate exactly the passes they
// feed (plus observed dependents), the thread pool behaves under nesting
// and exceptions, parallel verdicts match serial ones, and the batch
// driver's text report is byte-identical for any --jobs value.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "corpus/Patterns.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "pipeline/AnalysisManager.h"
#include "report/Batch.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>

using namespace nadroid;
using pipeline::AnalysisManager;

namespace {

/// A minimal program with one seeded harmful UAF — enough to exercise
/// detection, the filter stage, and (in dataflow mode) nullness.
void seedProgram(ir::Program &P) {
  ir::IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.harmfulEcEc();
}

const pipeline::PassStat *statNamed(const std::vector<pipeline::PassStat> &Stats,
                                    const std::string &Name) {
  for (const pipeline::PassStat &S : Stats)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Laziness, caching, accounting
//===----------------------------------------------------------------------===//

TEST(AnalysisManagerTest, BuildsLazilyOnFirstRequest) {
  ir::Program P("t");
  seedProgram(P);
  AnalysisManager AM(P);

  EXPECT_FALSE(AM.isCached<pipeline::ThreadForestPass>());
  EXPECT_FALSE(AM.isCached<pipeline::ApiIndexPass>());

  const threadify::ThreadForest &F = AM.forest();
  EXPECT_TRUE(AM.isCached<pipeline::ThreadForestPass>());
  // Nothing the forest does not need was built.
  EXPECT_FALSE(AM.isCached<pipeline::ApiIndexPass>());
  EXPECT_FALSE(AM.isCached<pipeline::PointsToPass>());
  EXPECT_FALSE(AM.isCached<pipeline::NullnessPass>());
  EXPECT_FALSE(AM.isCached<pipeline::VerdictsPass>());

  // Second request is a cache hit returning the same object.
  EXPECT_EQ(&F, &AM.forest());
  const pipeline::PassStat *S = statNamed(AM.passStats(), "threadforest");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Builds, 1u);
  EXPECT_GE(S->Hits, 1u);
  EXPECT_TRUE(S->Cached);
}

TEST(AnalysisManagerTest, DependenciesAreRequestedThroughTheManager) {
  ir::Program P("t");
  seedProgram(P);
  AnalysisManager AM(P);

  // One request for detection pulls in its whole upstream slice.
  AM.detection();
  EXPECT_TRUE(AM.isCached<pipeline::ApiIndexPass>());
  EXPECT_TRUE(AM.isCached<pipeline::ThreadForestPass>());
  EXPECT_TRUE(AM.isCached<pipeline::PointsToPass>());
  EXPECT_TRUE(AM.isCached<pipeline::ThreadReachPass>());
  // ...and nothing downstream of it.
  EXPECT_FALSE(AM.isCached<pipeline::FilterContextPass>());
  EXPECT_FALSE(AM.isCached<pipeline::VerdictsPass>());
}

//===----------------------------------------------------------------------===//
// Invalidation
//===----------------------------------------------------------------------===//

TEST(AnalysisManagerTest, KChangeDropsPointsToButKeepsModeling) {
  ir::Program P("t");
  seedProgram(P);
  AnalysisManager AM(P);
  AM.detection();

  pipeline::PipelineOptions Opts = AM.options();
  Opts.K = 1;
  AM.setOptions(Opts);

  EXPECT_FALSE(AM.isCached<pipeline::PointsToPass>());
  EXPECT_FALSE(AM.isCached<pipeline::ThreadReachPass>());
  EXPECT_FALSE(AM.isCached<pipeline::DetectionPass>());
  EXPECT_TRUE(AM.isCached<pipeline::ThreadForestPass>());
  EXPECT_TRUE(AM.isCached<pipeline::ApiIndexPass>());

  AM.detection(); // rebuild under the new K
  const pipeline::PassStat *S = statNamed(AM.passStats(), "pointsto");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Builds, 2u);
}

TEST(AnalysisManagerTest, ForestInvalidationCascadesToDependents) {
  ir::Program P("t");
  seedProgram(P);
  AnalysisManager AM(P);
  AM.verdicts();

  AM.invalidate<pipeline::ThreadForestPass>();

  EXPECT_FALSE(AM.isCached<pipeline::ThreadForestPass>());
  EXPECT_FALSE(AM.isCached<pipeline::PointsToPass>());
  EXPECT_FALSE(AM.isCached<pipeline::ThreadReachPass>());
  EXPECT_FALSE(AM.isCached<pipeline::DetectionPass>());
  EXPECT_FALSE(AM.isCached<pipeline::FilterContextPass>());
  EXPECT_FALSE(AM.isCached<pipeline::FilterEnginePass>());
  EXPECT_FALSE(AM.isCached<pipeline::VerdictsPass>());
  // The API index does not depend on the forest.
  EXPECT_TRUE(AM.isCached<pipeline::ApiIndexPass>());
}

TEST(AnalysisManagerTest, GuardModeFlipDropsOnlyTheFilterStage) {
  ir::Program P("t");
  seedProgram(P);
  AnalysisManager AM(P);
  const filters::PipelineResult &Dataflow = AM.verdicts();
  const unsigned AfterUnsound = Dataflow.RemainingAfterUnsound;

  pipeline::PipelineOptions Opts = AM.options();
  Opts.DataflowGuards = false;
  AM.setOptions(Opts);

  EXPECT_FALSE(AM.isCached<pipeline::FilterContextPass>());
  EXPECT_FALSE(AM.isCached<pipeline::FilterEnginePass>());
  EXPECT_FALSE(AM.isCached<pipeline::VerdictsPass>());
  EXPECT_TRUE(AM.isCached<pipeline::DetectionPass>());
  EXPECT_TRUE(AM.isCached<pipeline::PointsToPass>());
  EXPECT_TRUE(AM.isCached<pipeline::ThreadForestPass>());

  // Rebuild in syntactic mode; the seeded harmful warning survives both
  // modes, so the headline count is mode-independent here.
  EXPECT_EQ(AM.verdicts().RemainingAfterUnsound, AfterUnsound);
}

TEST(AnalysisManagerTest, NullnessLazyEdgeDropsTheFilterContext) {
  ir::Program P("t");
  seedProgram(P);
  AnalysisManager AM(P);
  AM.verdicts();
  ASSERT_TRUE(AM.isCached<pipeline::FilterContextPass>());

  // The context consumes nullness lazily (possibly after its own build
  // frame closed); the recorded lazy edge must still cascade.
  AM.invalidate<pipeline::NullnessPass>();
  EXPECT_FALSE(AM.isCached<pipeline::FilterContextPass>());
  EXPECT_FALSE(AM.isCached<pipeline::VerdictsPass>());
  EXPECT_TRUE(AM.isCached<pipeline::DetectionPass>());
}

//===----------------------------------------------------------------------===//
// Thread pool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  support::ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(1000);
  Pool.parallelFor(Hits.size(), [&](size_t I) { ++Hits[I]; });
  for (const std::atomic<int> &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPoolTest, NestedLoopsDoNotDeadlock) {
  support::ThreadPool Pool(4);
  std::atomic<int> Sum{0};
  Pool.parallelFor(8, [&](size_t) {
    Pool.parallelFor(8, [&](size_t) { ++Sum; });
  });
  EXPECT_EQ(Sum.load(), 64);
}

TEST(ThreadPoolTest, PropagatesTheFirstException) {
  support::ThreadPool Pool(2);
  EXPECT_THROW(Pool.parallelFor(64,
                                [](size_t I) {
                                  if (I == 7)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ExplicitConcurrencyOneRunsInline) {
  support::ThreadPool Pool(1);
  EXPECT_EQ(Pool.concurrency(), 1u);
  std::vector<size_t> Order;
  Pool.parallelFor(5, [&](size_t I) { Order.push_back(I); });
  EXPECT_EQ(Order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

//===----------------------------------------------------------------------===//
// Parallel verdicts and the batch driver
//===----------------------------------------------------------------------===//

TEST(AnalysisManagerTest, ParallelVerdictsMatchSerial) {
  corpus::CorpusApp App = corpus::buildAppNamed("ConnectBot");

  AnalysisManager Serial(*App.Prog);
  const filters::PipelineResult &S = Serial.verdicts();

  support::ThreadPool Pool(4);
  AnalysisManager Parallel(*App.Prog);
  Parallel.setThreadPool(&Pool);
  const filters::PipelineResult &Q = Parallel.verdicts();

  EXPECT_EQ(S.RemainingAfterSound, Q.RemainingAfterSound);
  EXPECT_EQ(S.RemainingAfterUnsound, Q.RemainingAfterUnsound);
  ASSERT_EQ(S.Verdicts.size(), Q.Verdicts.size());
  for (size_t I = 0; I < S.Verdicts.size(); ++I) {
    EXPECT_EQ(S.Verdicts[I].StageReached, Q.Verdicts[I].StageReached) << I;
    EXPECT_EQ(S.Verdicts[I].FiredFilters, Q.Verdicts[I].FiredFilters) << I;
    EXPECT_EQ(S.Verdicts[I].PairsAfterSound.size(),
              Q.Verdicts[I].PairsAfterSound.size())
        << I;
    EXPECT_EQ(S.Verdicts[I].PairsRemaining.size(),
              Q.Verdicts[I].PairsRemaining.size())
        << I;
  }
}

TEST(BatchDriverTest, ReportIsByteIdenticalAcrossJobCounts) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "nadroid-batch-determinism";
  fs::create_directories(Dir);

  for (const corpus::Recipe &R : corpus::allRecipes()) {
    corpus::CorpusApp App = corpus::buildApp(R);
    std::ofstream Out(Dir / (R.Name + ".air"));
    ASSERT_TRUE(Out.good()) << R.Name;
    ir::printProgram(*App.Prog, Out);
  }

  report::BatchOptions Opts;
  Opts.Dir = Dir.string();
  Opts.Jobs = 1;
  report::BatchResult Ser = report::runBatch(Opts);
  Opts.Jobs = 8;
  report::BatchResult Par = report::runBatch(Opts);

  EXPECT_EQ(Ser.Apps.size(), corpus::allRecipes().size());
  EXPECT_EQ(Ser.exitCode(), Par.exitCode());
  EXPECT_EQ(report::renderBatchReport(Ser), report::renderBatchReport(Par));

  std::error_code Ec;
  fs::remove_all(Dir, Ec);
}

TEST(BatchDriverTest, ParseFailuresBecomeRowsNotCrashes) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "nadroid-batch-badapp";
  fs::create_directories(Dir);
  {
    std::ofstream Out(Dir / "broken.air");
    Out << "this is not an AIR program\n";
  }

  report::BatchOptions Opts;
  Opts.Dir = Dir.string();
  Opts.Jobs = 2;
  report::BatchResult R = report::runBatch(Opts);
  ASSERT_EQ(R.Apps.size(), 1u);
  EXPECT_FALSE(R.Apps[0].Ok);
  EXPECT_FALSE(R.Apps[0].Error.empty());
  EXPECT_EQ(R.exitCode(), 2);

  std::error_code Ec;
  fs::remove_all(Dir, Ec);
}

} // namespace
