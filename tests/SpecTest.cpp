//===- tests/SpecTest.cpp - Framework spec parse/validate tests -----------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The declarative FrameworkSpec contract:
//
//  * the builtin spec parses and validates cleanly — the analyses can
//    always trust it,
//  * classify() over the parsed form agrees with the Callbacks.h free
//    functions (which delegate to it),
//  * each class of semantic error produces a specific, line-anchored
//    diagnostic — a malformed spec never silently degrades the filters,
//  * the shipped tests/data/malformed.spec fixture (shared with the
//    --check-spec CLI test) reports every seeded error.
//
//===----------------------------------------------------------------------===//

#include "android/FrameworkSpec.h"

#include <gtest/gtest.h>

using namespace nadroid;
using android::CallbackKind;
using android::FrameworkSpec;
using ir::ClassKind;

namespace {

/// Parses and validates \p Text, returning every diagnostic.
std::vector<std::string> diagnose(const std::string &Text) {
  FrameworkSpec S;
  std::vector<std::string> Diags;
  if (FrameworkSpec::parseText(Text, S, Diags))
    for (const std::string &D : S.validate())
      Diags.push_back(D);
  return Diags;
}

bool anyContains(const std::vector<std::string> &Diags,
                 const std::string &Needle) {
  for (const std::string &D : Diags)
    if (D.find(Needle) != std::string::npos)
      return true;
  return false;
}

/// A minimal valid prologue the error cases extend.
const char *Prologue = R"spec(spec-version 1
kind lifecycle entry looper
kind ui entry looper needs-resumed
callback Activity lifecycle onCreate onPause onResume onDestroy
callback Activity,Listener ui onClick
)spec";

TEST(Spec, BuiltinParsesAndValidatesCleanly) {
  FrameworkSpec S;
  std::vector<std::string> Diags;
  ASSERT_TRUE(
      FrameworkSpec::parseText(FrameworkSpec::builtinText(), S, Diags))
      << (Diags.empty() ? "" : Diags.front());
  EXPECT_TRUE(Diags.empty());
  std::vector<std::string> Semantic = S.validate();
  EXPECT_TRUE(Semantic.empty())
      << (Semantic.empty() ? "" : Semantic.front());
  EXPECT_EQ(S.specVersion(), 1u);
}

TEST(Spec, ClassifyAgreesWithCallbacksTable) {
  const FrameworkSpec &S = FrameworkSpec::builtin();
  // Spot checks across kinds and class-kind lists; each must also agree
  // with the Callbacks.h free function, which delegates to the spec.
  struct Case {
    ClassKind CK;
    const char *Name;
    CallbackKind Expect;
  } Cases[] = {
      {ClassKind::Activity, "onCreate", CallbackKind::Lifecycle},
      {ClassKind::Activity, "onClick", CallbackKind::Ui},
      {ClassKind::Listener, "onClick", CallbackKind::Ui},
      {ClassKind::Activity, "onLocationChanged", CallbackKind::SystemEvent},
      {ClassKind::Runnable, "run", CallbackKind::RunnableRun},
      {ClassKind::ThreadClass, "run", CallbackKind::ThreadRun},
      {ClassKind::AsyncTask, "onPostExecute", CallbackKind::AsyncPost},
      {ClassKind::Receiver, "onReceive", CallbackKind::Receive},
      // Registrations are per class kind: a Plain class's onClick is not
      // a framework callback, and Runnable.run is not Thread.run.
      {ClassKind::Plain, "onClick", CallbackKind::None},
      {ClassKind::Activity, "run", CallbackKind::None},
  };
  for (const Case &C : Cases) {
    EXPECT_EQ(S.classify(C.CK, C.Name), C.Expect) << C.Name;
    EXPECT_EQ(android::classifyCallback(C.CK, C.Name), C.Expect) << C.Name;
  }
}

TEST(Spec, BuiltinOrderAndKillQueries) {
  const FrameworkSpec &S = FrameworkSpec::builtin();
  EXPECT_TRUE(S.mustPrecedeWithinComponent("onCreate", "onClick"));
  EXPECT_TRUE(S.mustPrecedeWithinComponent("onClick", "onDestroy"));
  EXPECT_FALSE(S.mustPrecedeWithinComponent("onPause", "onResume"));
  EXPECT_TRUE(S.mustPrecedeKinds(CallbackKind::AsyncPre,
                                 CallbackKind::AsyncPost));
  EXPECT_FALSE(S.mustPrecedeKinds(CallbackKind::AsyncPost,
                                  CallbackKind::AsyncPre));
  ASSERT_NE(S.killRule(android::ApiKind::Finish), nullptr);
  EXPECT_EQ(S.killRule(android::ApiKind::Finish)->Except,
            std::vector<std::string>{"onDestroy"});
  ASSERT_EQ(S.reviveWindows().size(), 1u);
  EXPECT_EQ(S.reviveWindows()[0].FreeCallback, "onPause");
  EXPECT_EQ(S.reviveWindows()[0].ReviveCallback, "onResume");
  EXPECT_EQ(S.reviveWindows()[0].UseKind, CallbackKind::Ui);
}

TEST(Spec, MissingVersionIsRejected) {
  EXPECT_TRUE(anyContains(diagnose("kind ui entry looper\n"),
                          "missing spec-version directive"));
}

TEST(Spec, UnknownClassKindIsASyntaxError) {
  EXPECT_TRUE(anyContains(
      diagnose(std::string(Prologue) + "callback Widget ui onClick\n"),
      "unknown class kind"));
}

TEST(Spec, UndeclaredCallbackKindIsRejected) {
  // handleMessage is a known kind token but carries no `kind` line here.
  EXPECT_TRUE(anyContains(
      diagnose(std::string(Prologue) +
               "callback Handler handleMessage handleMessage\n"),
      "undeclared kind 'handleMessage'"));
}

TEST(Spec, PhaseRuleErrorsAreSpecific) {
  std::vector<std::string> D = diagnose(
      std::string(Prologue) + "phase onProgressChanged from paused to resumed\n"
                              "phase onCreate from not-created to resumed\n"
                              "phase onCreate from paused to resumed\n");
  EXPECT_TRUE(
      anyContains(D, "phase rule for unknown callback 'onProgressChanged'"));
  EXPECT_TRUE(anyContains(D, "conflicting phase rules for 'onCreate'"));
}

TEST(Spec, CyclicOrderIsRejected) {
  EXPECT_TRUE(anyContains(diagnose(std::string(Prologue) +
                                   "order onCreate before-all\n"
                                   "order onCreate after-all\n"),
                          "cyclic must-order"));
}

TEST(Spec, DanglingKillCoverIsRejected) {
  EXPECT_TRUE(anyContains(
      diagnose(std::string(Prologue) +
               "kill removeCallbacksAndMessages covers handleMessage "
               "scope target-parent\n"),
      "dangling target"));
}

TEST(Spec, DanglingReviveTargetIsRejected) {
  std::vector<std::string> D = diagnose(
      std::string(Prologue) + "revive-window onPause onRefill ui\n");
  EXPECT_TRUE(
      anyContains(D, "revives in unknown callback 'onRefill'"));
}

//===----------------------------------------------------------------------===//
// Protocol directives (typestate machines)
//===----------------------------------------------------------------------===//

TEST(Spec, BuiltinShipsTheDocumentedProtocols) {
  const FrameworkSpec &S = FrameworkSpec::builtin();
  ASSERT_EQ(S.protocols().size(), 5u);
  std::vector<std::string> Names;
  for (const FrameworkSpec::Protocol &P : S.protocols())
    Names.push_back(P.Name);
  EXPECT_EQ(Names, (std::vector<std::string>{
                       "receiver-leak", "unbalanced-unregister",
                       "service-bind-leak", "unbalanced-unbind",
                       "handler-post-leak"}));
  // Every builtin machine can fire: at least one error rule each.
  for (const FrameworkSpec::Protocol &P : S.protocols())
    EXPECT_FALSE(P.Errors.empty()) << P.Name;
}

TEST(Spec, ProtocolStatesMustComeFirst) {
  EXPECT_TRUE(anyContains(
      diagnose(std::string(Prologue) +
               "protocol ghost on post from any to pending\n"),
      "no states declaration (states must come first)"));
}

TEST(Spec, ProtocolStateErrorsAreSpecific) {
  std::vector<std::string> D = diagnose(
      std::string(Prologue) +
      "protocol p states a,b initial a\n"
      "protocol p states a,b initial a\n"
      "protocol q states a,a initial a\n"
      "protocol r states s1,s2,s3,s4,s5,s6,s7,s8,s9 initial s1\n"
      "protocol p on post from c to b\n"
      "protocol p on frobnicate from a to b\n");
  EXPECT_TRUE(anyContains(D, "duplicate protocol 'p'"));
  EXPECT_TRUE(anyContains(D, "duplicate state 'a' in protocol 'q'"));
  EXPECT_TRUE(
      anyContains(D, "protocol 'r' must declare between 1 and 8 states"));
  EXPECT_TRUE(anyContains(D, "protocol 'p' has no state 'c'"));
  EXPECT_TRUE(anyContains(D, "'frobnicate' is not a framework API token"));
}

TEST(Spec, ProtocolValidationCatchesSilentMachines) {
  std::vector<std::string> D = diagnose(
      std::string(Prologue) +
      "protocol p states a,b initial a\n"
      "protocol p on-callback onRefill from a to b\n"
      "protocol q states a,b initial a\n"
      "protocol q error-at onRefill in b stuck\n");
  EXPECT_TRUE(
      anyContains(D, "protocol 'p' transitions on unknown callback 'onRefill'"));
  EXPECT_TRUE(
      anyContains(D, "protocol 'q' error rule at unknown callback 'onRefill'"));
  EXPECT_TRUE(anyContains(D, "protocol 'p' declares no error rule"));
}

/// The protocol fixture (shared with the --check-spec CLI test) reports
/// every seeded protocol error class.
TEST(Spec, MalformedProtocolFixtureReportsEverySeededError) {
  FrameworkSpec S;
  std::vector<std::string> Diags;
  ASSERT_TRUE(FrameworkSpec::loadFile(
      std::string(NADROID_SOURCE_DIR) + "/tests/data/malformed-protocol.spec",
      S, Diags))
      << "fixture must be syntactically well-formed";
  EXPECT_TRUE(Diags.empty());
  Diags = S.validate();
  EXPECT_EQ(Diags.size(), 3u);
  EXPECT_TRUE(anyContains(Diags, "transitions on unknown callback"));
  EXPECT_TRUE(anyContains(Diags, "error rule at unknown callback"));
  EXPECT_TRUE(anyContains(Diags, "declares no error rule"));
}

/// The shipped fixture (also exercised by the --check-spec CLI test and
/// both CI spec-validation steps) reports every seeded error class.
TEST(Spec, MalformedFixtureReportsEverySeededError) {
  FrameworkSpec S;
  std::vector<std::string> Diags;
  ASSERT_TRUE(FrameworkSpec::loadFile(
      std::string(NADROID_SOURCE_DIR) + "/tests/data/malformed.spec", S,
      Diags))
      << "fixture must be syntactically well-formed";
  EXPECT_TRUE(Diags.empty());
  Diags = S.validate();
  EXPECT_EQ(Diags.size(), 6u);
  EXPECT_TRUE(anyContains(Diags, "unknown callback 'onResume'"));
  EXPECT_TRUE(anyContains(Diags, "conflicting phase rules for 'onCreate'"));
  EXPECT_TRUE(anyContains(Diags, "cyclic must-order"));
  EXPECT_TRUE(anyContains(Diags, "covers kind 'handleMessage'"));
  EXPECT_TRUE(anyContains(Diags, "frees in unknown callback 'onPause'"));
  EXPECT_TRUE(anyContains(Diags, "revives in unknown callback 'onResume'"));
}

} // namespace
