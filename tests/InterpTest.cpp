//===- tests/InterpTest.cpp - Schedule-exploration oracle tests ----------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// Validates the concrete interpreter: harmful schedules must be found for
// real UAFs, and must-happens-before orderings the framework enforces must
// make the corresponding patterns unwitnessable.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "interp/Interp.h"
#include "report/Nadroid.h"

#include <gtest/gtest.h>

using namespace nadroid;

namespace {

std::unique_ptr<ir::Program> parse(const char *Source) {
  frontend::ParseResult R =
      frontend::parseProgramText(Source, "test.air", "test");
  EXPECT_TRUE(R.Success);
  return std::move(R.Prog);
}

const char *Fig1aSource = R"(
app "connectbot";
manifest TerminalActivity;

class TerminalBridge : Plain {
  method use() {
    return;
  }
}

class TermConn : ServiceConnection {
  field act : TerminalActivity;
  method onServiceConnected() {
    a = this.act;
    b = new TerminalBridge;
    a.bound = b;
  }
  method onServiceDisconnected() {
    a = this.act;
    a.bound = null;
  }
}

class TerminalActivity : Activity {
  field bound : TerminalBridge;
  method onCreate() {
    c = new TermConn;
    c.act = this;
    this.bindService(c);
  }
  method onCreateContextMenu() {
    u = this.bound;
    u.use();
  }
}
)";

TEST(Interp, Fig1aWitnessFoundByRandomExploration) {
  auto P = parse(Fig1aSource);
  interp::ExploreOptions Opts;
  Opts.Schedules = 300;
  Opts.Seed = 7;
  interp::ScheduleExplorer Explorer(*P, Opts);
  std::set<interp::UafWitness> Witnesses = Explorer.explore();

  // The detector's single warning must be dynamically witnessable.
  report::NadroidResult R = report::analyzeProgram(*P);
  ASSERT_EQ(R.warnings().size(), 1u);
  interp::UafWitness Wanted{R.warnings()[0].Use, R.warnings()[0].Free};
  EXPECT_TRUE(Witnesses.count(Wanted))
      << "random exploration should hit disconnect-before-menu";
}

TEST(Interp, Fig1aDirectedWitness) {
  auto P = parse(Fig1aSource);
  report::NadroidResult R = report::analyzeProgram(*P);
  ASSERT_EQ(R.warnings().size(), 1u);

  interp::ScheduleExplorer Explorer(*P);
  EXPECT_TRUE(
      Explorer.tryWitness(R.warnings()[0].Use, R.warnings()[0].Free, 50));
}

/// Figure 4(a): use inside onServiceConnected. The framework guarantees
/// connect-before-disconnect, so no schedule can crash — the MHB filter's
/// soundness is mirrored dynamically.
const char *Fig4aSource = R"(
app "fig4a";
manifest A;

class F : Plain {
  method use() {
    return;
  }
}

class Conn : ServiceConnection {
  field act : A;
  method onServiceConnected() {
    a = this.act;
    u = a.f;
    u.use();
  }
  method onServiceDisconnected() {
    a = this.act;
    a.f = null;
  }
}

class A : Activity {
  field f : F;
  method onCreate() {
    x = new F;
    this.f = x;
    c = new Conn;
    c.act = this;
    this.bindService(c);
  }
}
)";

TEST(Interp, Fig4aMhbOrderNeverWitnessed) {
  auto P = parse(Fig4aSource);
  interp::ExploreOptions Opts;
  Opts.Schedules = 300;
  Opts.Seed = 11;
  interp::ScheduleExplorer Explorer(*P, Opts);
  EXPECT_TRUE(Explorer.explore().empty());
}

/// A multithreaded UAF in the FireFox style (Figure 1(c)): a background
/// thread frees while a lifecycle callback uses under an if-guard that
/// atomicity does not protect.
const char *Fig1cSource = R"(
app "firefox";
manifest GeckoApp;

class Client : Plain {
  method abort() {
    return;
  }
}

class Killer : Thread {
  field act : GeckoApp;
  method run() {
    a = this.act;
    a.jClient = null;
  }
}

class GeckoApp : Activity {
  field jClient : Client;
  method onCreate() {
    c = new Client;
    this.jClient = c;
  }
  method onResume() {
    t = new Killer;
    t.act = this;
    t.start();
  }
  method onPause() {
    g = this.jClient;
    if (g != null) {
      u = this.jClient;
      u.abort();
    }
  }
}
)";

TEST(Interp, Fig1cThreadUafWitnessed) {
  auto P = parse(Fig1cSource);
  report::NadroidResult R = report::analyzeProgram(*P);
  // Two uses (guard load + guarded re-load) against one free.
  ASSERT_GE(R.warnings().size(), 1u);

  // At least one of the warnings must be dynamically witnessable: the
  // killer thread can interleave between check and use.
  interp::ExploreOptions Opts;
  Opts.Schedules = 500;
  Opts.Seed = 3;
  interp::ScheduleExplorer Explorer(*P, Opts);
  std::set<interp::UafWitness> Witnesses = Explorer.explore();
  EXPECT_FALSE(Witnesses.empty());
}

TEST(Interp, Fig1cSurvivesFiltersAsCNt) {
  auto P = parse(Fig1cSource);
  report::NadroidResult R = report::analyzeProgram(*P);
  std::vector<size_t> Remaining = R.remainingIndices();
  ASSERT_FALSE(Remaining.empty());
  // The guard is unprotected across threads (no common lock): IG must NOT
  // have pruned every warning.
  bool AnyThreadPair = false;
  for (size_t I : Remaining) {
    auto Type = report::classifyWarning(
        *R.Forest, R.Pipeline.Verdicts[I].PairsRemaining);
    if (Type == report::PairType::CRt || Type == report::PairType::CNt)
      AnyThreadPair = true;
  }
  EXPECT_TRUE(AnyThreadPair);
}

} // namespace
