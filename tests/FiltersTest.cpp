//===- tests/FiltersTest.cpp - Filter behavior tests (§6) -----------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// Two layers: a parameterized sweep asserting every corpus pattern is
// disposed of by exactly the filter it targets (the Figure 4 contract),
// and targeted tests for the subtle conditions (atomicity across threads,
// direction of MHB, partial pair pruning).
//
//===----------------------------------------------------------------------===//

#include "corpus/Patterns.h"
#include "ir/IRBuilder.h"
#include "report/Nadroid.h"

#include <gtest/gtest.h>

using namespace nadroid;
using namespace nadroid::ir;
using corpus::PatternEmitter;
using corpus::SeedKind;
using filters::FilterKind;
using filters::WarningVerdict;

namespace {

//===----------------------------------------------------------------------===//
// Parameterized pattern sweep
//===----------------------------------------------------------------------===//

struct PatternCase {
  const char *Name;
  SeedKind Kind;
  /// The filter expected to fire; MHB/IG/IA are sound.
  std::optional<FilterKind> Fires;
  /// Expected final disposition of the seeded warning.
  WarningVerdict::Stage Stage;
};

class PatternFilterTest : public ::testing::TestWithParam<PatternCase> {};

void emitPattern(PatternEmitter &E, SeedKind Kind) {
  switch (Kind) {
  case SeedKind::HarmfulUaf:
    E.harmfulEcEc();
    return;
  case SeedKind::FalseMhb:
    E.falseMhbLifecycle(1);
    return;
  case SeedKind::FalseIg:
    E.falseIg(1);
    return;
  case SeedKind::FalseIgInterproc:
    E.falseIgInterproc();
    return;
  case SeedKind::FalseIa:
    E.falseIa(1);
    return;
  case SeedKind::FalseRhb:
    E.falseRhb();
    return;
  case SeedKind::FalseChb:
    E.falseChb();
    return;
  case SeedKind::FalsePhb:
    E.falsePhb();
    return;
  case SeedKind::RhbProved:
    E.rhbProved();
    return;
  case SeedKind::RhbRacy:
    E.rhbRacy();
    return;
  case SeedKind::ChbProved:
    E.chbProved();
    return;
  case SeedKind::ChbRacy:
    E.chbRacy();
    return;
  case SeedKind::PhbProved:
    E.phbProved();
    return;
  case SeedKind::PhbRacy:
    E.phbRacy();
    return;
  case SeedKind::FalseMa:
    E.falseMa();
    return;
  case SeedKind::FalseUr:
    E.falseUr(1);
    return;
  case SeedKind::FalseTt:
    E.falseTt();
    return;
  case SeedKind::FpPathInsens:
    E.fpPathInsensitive();
    return;
  case SeedKind::FpPointsTo:
    E.fpPointsTo();
    return;
  case SeedKind::FpNotReach:
    E.fpNotReachable();
    return;
  case SeedKind::FpMissingHb:
    E.fpMissingHb();
    return;
  case SeedKind::FnChbErrorPath:
    E.fnChbErrorPath();
    return;
  default:
    FAIL() << "pattern not covered by this sweep";
  }
}

TEST_P(PatternFilterTest, DisposedByExpectedFilter) {
  const PatternCase &Case = GetParam();
  Program P("t");
  IRBuilder B(P);
  PatternEmitter E(B);
  emitPattern(E, Case.Kind);
  ASSERT_EQ(E.seeds().size(), 1u);
  const corpus::SeededBug &Seed = E.seeds()[0];

  report::NadroidResult R = report::analyzeProgram(P);
  // Find the seeded warning: field matches and the use method matches.
  const filters::WarningVerdict *V = nullptr;
  for (size_t I = 0; I < R.warnings().size(); ++I) {
    if (R.warnings()[I].F->qualifiedName() != Seed.FieldName)
      continue;
    if (R.warnings()[I].Use->parentMethod()->qualifiedName() !=
        Seed.UseMethod)
      continue;
    V = &R.Pipeline.Verdicts[I];
    // Prefer the verdict of a warning matching the recorded use; the
    // guarded patterns have exactly one.
    break;
  }
  ASSERT_NE(V, nullptr) << "seeded warning not detected";
  EXPECT_EQ(V->StageReached, Case.Stage);
  if (Case.Fires) {
    EXPECT_TRUE(V->FiredFilters.count(*Case.Fires))
        << filters::filterKindName(*Case.Fires) << " did not fire";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, PatternFilterTest,
    ::testing::Values(
        PatternCase{"Harmful", SeedKind::HarmfulUaf, std::nullopt,
                    WarningVerdict::Stage::Remaining},
        PatternCase{"Mhb", SeedKind::FalseMhb, FilterKind::MHB,
                    WarningVerdict::Stage::PrunedBySound},
        PatternCase{"Ig", SeedKind::FalseIg, FilterKind::IG,
                    WarningVerdict::Stage::PrunedBySound},
        PatternCase{"IgInterproc", SeedKind::FalseIgInterproc, FilterKind::IG,
                    WarningVerdict::Stage::PrunedBySound},
        PatternCase{"Ia", SeedKind::FalseIa, FilterKind::IA,
                    WarningVerdict::Stage::PrunedBySound},
        PatternCase{"Rhb", SeedKind::FalseRhb, FilterKind::RHB,
                    WarningVerdict::Stage::PrunedByUnsound},
        PatternCase{"Chb", SeedKind::FalseChb, FilterKind::CHB,
                    WarningVerdict::Stage::PrunedByUnsound},
        PatternCase{"Phb", SeedKind::FalsePhb, FilterKind::PHB,
                    WarningVerdict::Stage::PrunedByUnsound},
        PatternCase{"RhbProved", SeedKind::RhbProved, FilterKind::RHB,
                    WarningVerdict::Stage::PrunedByUnsound},
        PatternCase{"RhbRacy", SeedKind::RhbRacy, FilterKind::RHB,
                    WarningVerdict::Stage::PrunedByUnsound},
        PatternCase{"ChbProved", SeedKind::ChbProved, FilterKind::CHB,
                    WarningVerdict::Stage::PrunedByUnsound},
        PatternCase{"ChbRacy", SeedKind::ChbRacy, FilterKind::CHB,
                    WarningVerdict::Stage::PrunedByUnsound},
        PatternCase{"PhbProved", SeedKind::PhbProved, FilterKind::PHB,
                    WarningVerdict::Stage::PrunedByUnsound},
        PatternCase{"PhbRacy", SeedKind::PhbRacy, FilterKind::PHB,
                    WarningVerdict::Stage::PrunedByUnsound},
        PatternCase{"Ma", SeedKind::FalseMa, FilterKind::MA,
                    WarningVerdict::Stage::PrunedByUnsound},
        PatternCase{"Ur", SeedKind::FalseUr, FilterKind::UR,
                    WarningVerdict::Stage::PrunedByUnsound},
        PatternCase{"Tt", SeedKind::FalseTt, FilterKind::TT,
                    WarningVerdict::Stage::PrunedByUnsound},
        PatternCase{"FpPath", SeedKind::FpPathInsens, std::nullopt,
                    WarningVerdict::Stage::Remaining},
        PatternCase{"FpPts", SeedKind::FpPointsTo, std::nullopt,
                    WarningVerdict::Stage::Remaining},
        PatternCase{"FpNotReach", SeedKind::FpNotReach, std::nullopt,
                    WarningVerdict::Stage::Remaining},
        PatternCase{"FpMissHb", SeedKind::FpMissingHb, std::nullopt,
                    WarningVerdict::Stage::Remaining},
        PatternCase{"FnChb", SeedKind::FnChbErrorPath, FilterKind::CHB,
                    WarningVerdict::Stage::PrunedByUnsound}),
    [](const ::testing::TestParamInfo<PatternCase> &Info) {
      return Info.param.Name;
    });

//===----------------------------------------------------------------------===//
// Targeted conditions
//===----------------------------------------------------------------------===//

/// An if-guard across a looper/thread pair must NOT be pruned without a
/// common lock (Figure 1(c)), and MUST be pruned with one.
TEST(Filters, IgAcrossThreadsNeedsCommonLock) {
  auto Build = [](bool Locked) {
    auto P = std::make_unique<Program>("t");
    IRBuilder B(*P);
    Clazz *Payload = B.makeClass("P", ClassKind::Plain);
    Clazz *Act = B.makeClass("Act", ClassKind::Activity);
    Field *F = B.addField(Act, "f", Payload);
    Field *LockF = B.addField(Act, "mon", Payload);
    P->addManifestComponent(Act);
    Clazz *Killer = B.makeClass("K", ClassKind::ThreadClass);
    Field *ActF = B.addField(Killer, "act", Act);
    B.makeMethod(Killer, "run");
    Local *A = B.local("a");
    B.emitLoad(A, B.thisLocal(), ActF);
    if (Locked) {
      Local *L = B.local("l");
      B.emitLoad(L, A, LockF);
      B.beginSync(L);
      B.emitStore(A, F, nullptr);
      B.endSync();
    } else {
      B.emitStore(A, F, nullptr);
    }
    B.makeMethod(Act, "onCreate");
    Local *X = B.emitNew("x", Payload);
    B.emitStore(B.thisLocal(), F, X);
    Local *Mon = B.emitNew("m", Payload);
    B.emitStore(B.thisLocal(), LockF, Mon);
    B.makeMethod(Act, "onStart");
    Local *K = B.emitNew("t", Killer);
    B.emitStore(K, ActF, B.thisLocal());
    B.emitCall(nullptr, K, "start");
    B.makeMethod(Act, "onPause");
    if (Locked) {
      Local *L2 = B.local("l2");
      B.emitLoad(L2, B.thisLocal(), LockF);
      B.beginSync(L2);
    }
    Local *G = B.local("g");
    B.emitLoad(G, B.thisLocal(), F);
    B.beginIfNotNull(G);
    B.emitCall(nullptr, G, "use");
    B.endIf();
    if (Locked)
      B.endSync();
    return P;
  };

  // Unlocked: the guarded load's warning against the thread free remains.
  auto Unlocked = Build(false);
  report::NadroidResult R1 = report::analyzeProgram(*Unlocked);
  EXPECT_GE(R1.Pipeline.RemainingAfterUnsound, 1u);

  // Locked: IG prunes everything on field f.
  auto Locked = Build(true);
  report::NadroidResult R2 = report::analyzeProgram(*Locked);
  for (size_t I : R2.remainingIndices())
    EXPECT_NE(R2.warnings()[I].F->name(), "f")
        << "locked guard should have been pruned";
}

/// The §8.7 shape: a caller-side null check protecting a callee-side
/// dereference is seen by the inter-procedural nullness analysis only —
/// the paper-faithful syntactic mode must leave the warning standing.
TEST(Filters, IgInterprocNeedsDataflowGuards) {
  auto Analyze = [](bool Dataflow) {
    Program P("t");
    IRBuilder B(P);
    PatternEmitter E(B);
    E.falseIgInterproc();
    const corpus::SeededBug &Seed = E.seeds()[0];
    report::NadroidOptions Opts;
    Opts.DataflowGuards = Dataflow;
    report::NadroidResult R = report::analyzeProgram(P, Opts);
    for (size_t I = 0; I < R.warnings().size(); ++I)
      if (R.warnings()[I].F->qualifiedName() == Seed.FieldName &&
          R.warnings()[I].Use->parentMethod()->qualifiedName() ==
              Seed.UseMethod)
        return R.Pipeline.Verdicts[I];
    ADD_FAILURE() << "seeded warning not detected";
    return WarningVerdict{};
  };

  WarningVerdict Dataflow = Analyze(true);
  EXPECT_EQ(Dataflow.StageReached, WarningVerdict::Stage::PrunedBySound);
  EXPECT_TRUE(Dataflow.FiredFilters.count(FilterKind::IG));

  WarningVerdict Syntactic = Analyze(false);
  EXPECT_EQ(Syntactic.StageReached, WarningVerdict::Stage::Remaining);
}

/// MHB prunes only the direction "use must precede free".
TEST(Filters, MhbServiceDirectionMatters) {
  // free in onServiceConnected, use in onServiceDisconnected: the free
  // always precedes the use — a guaranteed null read, not prunable.
  Program P("t");
  IRBuilder B(P);
  Clazz *Payload = B.makeClass("P", ClassKind::Plain);
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  Field *F = B.addField(Act, "f", Payload);
  P.addManifestComponent(Act);
  Clazz *Conn = B.makeClass("Conn", ClassKind::ServiceConnection);
  Field *ActF = B.addField(Conn, "act", Act);
  B.makeMethod(Conn, "onServiceConnected");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  B.emitStore(A, F, nullptr); // free FIRST in the MHB order
  B.makeMethod(Conn, "onServiceDisconnected");
  A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  Local *U = B.local("u");
  B.emitLoad(U, A, F);
  B.emitCall(nullptr, U, "use");
  B.makeMethod(Act, "onCreate");
  Local *X = B.emitNew("x", Payload);
  B.emitStore(B.thisLocal(), F, X);
  Local *C = B.emitNew("c", Conn);
  B.emitStore(C, ActF, B.thisLocal());
  B.emitCall(nullptr, B.thisLocal(), "bindService", {C});

  report::NadroidResult R = report::analyzeProgram(P);
  bool AnyRemainingOnF = false;
  for (size_t I : R.remainingIndices())
    AnyRemainingOnF |= R.warnings()[I].F == F;
  EXPECT_TRUE(AnyRemainingOnF)
      << "free-before-use must not be MHB-pruned";
}

/// TT only prunes when EVERY pair of a warning is native-native.
TEST(Filters, TtKeepsWarningsWithLooperPairs) {
  Program P("t");
  IRBuilder B(P);
  Clazz *Payload = B.makeClass("P", ClassKind::Plain);
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  Field *F = B.addField(Act, "f", Payload);
  P.addManifestComponent(Act);
  Clazz *Killer = B.makeClass("K", ClassKind::ThreadClass);
  Field *ActF = B.addField(Killer, "act", Act);
  B.makeMethod(Killer, "run");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  B.emitStore(A, F, nullptr);
  B.makeMethod(Act, "onCreate");
  Local *X = B.emitNew("x", Payload);
  B.emitStore(B.thisLocal(), F, X);
  B.makeMethod(Act, "onStart");
  Local *K = B.emitNew("t", Killer);
  B.emitStore(K, ActF, B.thisLocal());
  B.emitCall(nullptr, K, "start");
  // The use runs on the looper: the (looper, native) pair survives TT.
  B.makeMethod(Act, "onClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), F);
  B.emitCall(nullptr, U, "use");

  report::NadroidResult R = report::analyzeProgram(P);
  EXPECT_GE(R.Pipeline.RemainingAfterUnsound, 1u);
}

/// RHB requires the re-allocation to be in onResume specifically.
TEST(Filters, RhbNeedsOnResumeAllocation) {
  Program P("t");
  IRBuilder B(P);
  PatternEmitter E(B);
  // falseRhb but with the re-allocation removed: build manually.
  Clazz *Payload = B.makeClass("P", ClassKind::Plain);
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  Field *F = B.addField(Act, "f", Payload);
  P.addManifestComponent(Act);
  B.makeMethod(Act, "onCreate");
  Local *X = B.emitNew("x", Payload);
  B.emitStore(B.thisLocal(), F, X);
  B.makeMethod(Act, "onPause");
  B.emitStore(B.thisLocal(), F, nullptr);
  B.makeMethod(Act, "onResume"); // no allocation!
  B.emitReturn();
  B.makeMethod(Act, "onClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), F);
  B.emitCall(nullptr, U, "use");

  report::NadroidResult R = report::analyzeProgram(P);
  EXPECT_GE(R.Pipeline.RemainingAfterUnsound, 1u)
      << "Figure 4(d)'s harmful variant must survive RHB";
}

/// The filter kind helpers partition correctly.
TEST(Filters, KindTaxonomy) {
  EXPECT_TRUE(filters::isSoundFilter(FilterKind::MHB));
  EXPECT_TRUE(filters::isSoundFilter(FilterKind::IG));
  EXPECT_TRUE(filters::isSoundFilter(FilterKind::IA));
  for (FilterKind K : filters::unsoundFilterKinds())
    EXPECT_FALSE(filters::isSoundFilter(K));
  EXPECT_EQ(filters::allFilterKinds().size(), 9u);
  EXPECT_EQ(filters::soundFilterKinds().size(), 3u);
  EXPECT_EQ(filters::unsoundFilterKinds().size(), 6u);
  EXPECT_EQ(filters::mayHbFilterKinds().size(), 3u);
}

} // namespace
