//===- tests/TypestateTest.cpp - Protocol typestate checker tests ---------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The lifecycle-aware typestate checker's contracts: every builtin
// protocol flags its seeded violating pattern (with the callback-order
// chain --explain renders) and stays silent on the clean twin, each
// static verdict agrees with the schedule-exploration oracle (violation
// => a crashing schedule exists on the leaked field, clean => none),
// the TypestatePass is only ever built under --lint and the default
// options fingerprint is untouched, and the lint render/serialization
// layers carry the findings through text, JSON, and batch rows.
//
//===----------------------------------------------------------------------===//

#include "analysis/Typestate.h"
#include "cache/ResultCache.h"
#include "corpus/Patterns.h"
#include "interp/Interp.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "pipeline/AnalysisManager.h"
#include "report/Batch.h"
#include "report/Json.h"
#include "report/Lint.h"
#include "report/Nadroid.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace nadroid;
namespace fs = std::filesystem;

namespace {

using EmitFn = void (corpus::PatternEmitter::*)();

/// One builtin protocol with its seeded violating/clean pattern pair.
struct ProtoCase {
  const char *Protocol;
  EmitFn Violating;
  EmitFn Clean;
};

const ProtoCase Cases[] = {
    {"receiver-leak", &corpus::PatternEmitter::protoReceiverLeak,
     &corpus::PatternEmitter::protoReceiverClean},
    {"service-bind-leak", &corpus::PatternEmitter::protoBindLeak,
     &corpus::PatternEmitter::protoBindClean},
    {"handler-post-leak", &corpus::PatternEmitter::protoPostLeak,
     &corpus::PatternEmitter::protoPostClean},
    {"unbalanced-unregister", &corpus::PatternEmitter::protoUnregNoReg,
     &corpus::PatternEmitter::protoUnregClean},
    {"unbalanced-unbind", &corpus::PatternEmitter::protoUnbindNoBind,
     &corpus::PatternEmitter::protoUnbindClean},
};

corpus::SeededBug emitPattern(ir::Program &P, EmitFn Fn) {
  ir::IRBuilder B(P);
  corpus::PatternEmitter E(B);
  (E.*Fn)();
  EXPECT_EQ(E.seeds().size(), 1u);
  return E.seeds().front();
}

pipeline::PipelineOptions lintOptions() {
  pipeline::PipelineOptions O;
  O.Lint = true;
  return O;
}

const race::UafWarning *findWarning(const report::NadroidResult &R,
                                    const std::string &FieldName) {
  for (const race::UafWarning &W : R.warnings())
    if (W.F->qualifiedName() == FieldName)
      return &W;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Per-protocol verdicts, cross-checked against the oracle
//===----------------------------------------------------------------------===//

TEST(TypestateProtocolTest, ViolatingSeedsAreFlaggedAndWitnessed) {
  for (const ProtoCase &C : Cases) {
    ir::Program P("t");
    corpus::SeededBug Seed = emitPattern(P, C.Violating);

    pipeline::AnalysisManager AM(P, lintOptions());
    const std::vector<analysis::TypestateFinding> &Fs =
        AM.typestate().findings();
    ASSERT_EQ(Fs.size(), 1u) << C.Protocol;
    EXPECT_EQ(Fs[0].Proto->Name, C.Protocol);
    ASSERT_NE(Fs[0].Rule, nullptr) << C.Protocol;
    ASSERT_NE(Fs[0].Component, nullptr) << C.Protocol;
    ASSERT_NE(Fs[0].In, nullptr) << C.Protocol;
    EXPECT_FALSE(Fs[0].State.empty()) << C.Protocol;
    EXPECT_FALSE(Fs[0].Chain.empty()) << C.Protocol;

    // Oracle: the protocol violation's runtime consequence is a real
    // use-after-free schedule on the seeded field.
    report::NadroidResult R = report::analyzeProgram(P);
    const race::UafWarning *W = findWarning(R, Seed.FieldName);
    ASSERT_NE(W, nullptr) << C.Protocol << ": seeded pair not detected";
    interp::ScheduleExplorer Explorer(P);
    EXPECT_TRUE(Explorer.tryWitness(W->Use, W->Free, 200))
        << C.Protocol << ": flagged pattern should have a crash witness";
  }
}

TEST(TypestateProtocolTest, CleanTwinsAreUnflaggedAndUnwitnessable) {
  for (const ProtoCase &C : Cases) {
    ir::Program P("t");
    corpus::SeededBug Seed = emitPattern(P, C.Clean);

    pipeline::AnalysisManager AM(P, lintOptions());
    EXPECT_TRUE(AM.typestate().findings().empty())
        << C.Protocol << ": clean twin flagged";

    // The same use/free pair exists syntactically; no schedule realizes
    // it once the protocol is balanced.
    report::NadroidResult R = report::analyzeProgram(P);
    const race::UafWarning *W = findWarning(R, Seed.FieldName);
    ASSERT_NE(W, nullptr) << C.Protocol;
    interp::ScheduleExplorer Explorer(P);
    EXPECT_FALSE(Explorer.tryWitness(W->Use, W->Free, 200))
        << C.Protocol << ": clean twin has a crash witness — bad twin!";
  }
}

//===----------------------------------------------------------------------===//
// Finding anatomy
//===----------------------------------------------------------------------===//

TEST(TypestateFindingTest, LeakFindingCarriesTheViolatingChain) {
  ir::Program P("t");
  emitPattern(P, &corpus::PatternEmitter::protoReceiverLeak);
  pipeline::AnalysisManager AM(P, lintOptions());
  const std::vector<analysis::TypestateFinding> &Fs =
      AM.typestate().findings();
  ASSERT_EQ(Fs.size(), 1u);
  const analysis::TypestateFinding &F = Fs[0];

  // error-at rule: At is the transition that entered the bad state (the
  // registerReceiver call in onCreate), state is the leaked one, and the
  // chain runs from the first activation to the rule's callback.
  EXPECT_EQ(F.State, "registered");
  EXPECT_EQ(F.Rule->Message, "receiver still registered at destroy");
  ASSERT_NE(F.At, nullptr);
  ASSERT_NE(F.In, nullptr);
  EXPECT_NE(F.In->qualifiedName().find("onCreate"), std::string::npos);
  ASSERT_GE(F.Chain.size(), 2u);
  EXPECT_NE(F.Chain.front().find("onCreate"), std::string::npos);
  EXPECT_NE(F.Chain.back().find("onDestroy"), std::string::npos);
}

TEST(TypestateFindingTest, ErrorCallFiresInTheInitialState) {
  ir::Program P("t");
  emitPattern(P, &corpus::PatternEmitter::protoUnregNoReg);
  pipeline::AnalysisManager AM(P, lintOptions());
  const std::vector<analysis::TypestateFinding> &Fs =
      AM.typestate().findings();
  ASSERT_EQ(Fs.size(), 1u);
  const analysis::TypestateFinding &F = Fs[0];

  // error-call rule: At is the offending API call site itself.
  EXPECT_EQ(F.Proto->Name, "unbalanced-unregister");
  EXPECT_EQ(F.State, "fresh");
  ASSERT_NE(F.At, nullptr);
  ASSERT_NE(F.In, nullptr);
  EXPECT_NE(F.In->qualifiedName().find("onLocationChanged"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Gating: the pass exists only under --lint
//===----------------------------------------------------------------------===//

TEST(TypestateGatingTest, PassIsNeverBuiltWithLintOff) {
  ir::Program P("t");
  emitPattern(P, &corpus::PatternEmitter::protoReceiverLeak);

  pipeline::AnalysisManager Off(P);
  report::LintResult L = report::runLintChecks(Off);
  EXPECT_TRUE(L.Typestate.empty());
  EXPECT_DOUBLE_EQ(L.TypestateSec, 0.0);
  EXPECT_FALSE(Off.isCached<pipeline::TypestatePass>());

  pipeline::AnalysisManager On(P, lintOptions());
  report::LintResult LOn = report::runLintChecks(On);
  EXPECT_EQ(LOn.Typestate.size(), 1u);
  EXPECT_TRUE(On.isCached<pipeline::TypestatePass>());
}

TEST(TypestateGatingTest, FingerprintChangesOnlyWhenLintIsOn) {
  pipeline::PipelineOptions Base;
  std::string Fp = Base.fingerprint();
  // Pre-lint cache keys survive verbatim: the default fingerprint must
  // not even mention the knob.
  EXPECT_EQ(Fp.find("lint"), std::string::npos);

  pipeline::PipelineOptions O = Base;
  O.Lint = true;
  EXPECT_NE(O.fingerprint(), Fp);
  EXPECT_NE(O.fingerprint().find("lint=1"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

TEST(TypestateRenderTest, TextDiagnosticNamesProtocolAndChain) {
  ir::Program P("t");
  emitPattern(P, &corpus::PatternEmitter::protoReceiverLeak);
  pipeline::AnalysisManager AM(P, lintOptions());
  const std::vector<analysis::TypestateFinding> &Fs =
      AM.typestate().findings();
  ASSERT_EQ(Fs.size(), 1u);

  std::string Plain = report::renderTypestateFinding(P, Fs[0], false);
  EXPECT_NE(Plain.find("warning: receiver still registered at destroy"),
            std::string::npos);
  EXPECT_NE(Plain.find("[protocol receiver-leak]"), std::string::npos);
  EXPECT_NE(Plain.find("state registered"), std::string::npos);
  EXPECT_EQ(Plain.find("callback chain:"), std::string::npos);

  std::string Explained = report::renderTypestateFinding(P, Fs[0], true);
  EXPECT_NE(Explained.find("callback chain:"), std::string::npos);
  EXPECT_NE(Explained.find(" > "), std::string::npos);
}

TEST(TypestateRenderTest, JsonReportCarriesBothFamilies) {
  ir::Program P("t");
  emitPattern(P, &corpus::PatternEmitter::protoReceiverLeak);
  pipeline::AnalysisManager AM(P, lintOptions());
  report::LintResult L = report::runLintChecks(AM);
  ASSERT_EQ(L.Typestate.size(), 1u);

  std::string Json = report::renderLintJson(P, L);
  EXPECT_NE(Json.find("\"nullness\": ["), std::string::npos);
  EXPECT_NE(Json.find("\"typestate\": ["), std::string::npos);
  EXPECT_NE(Json.find("\"protocol\": \"receiver-leak\""), std::string::npos);
  EXPECT_NE(Json.find("\"chain\": ["), std::string::npos);
  EXPECT_NE(Json.find("\"counts\""), std::string::npos);
  EXPECT_NE(Json.find("\"typestateSec\": "), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Batch integration
//===----------------------------------------------------------------------===//

struct TempCorpus {
  fs::path Dir;
  explicit TempCorpus(const std::string &Name)
      : Dir(fs::temp_directory_path() / Name) {
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
    fs::create_directories(Dir);
  }
  ~TempCorpus() {
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
  }
};

void writeProtoApp(const fs::path &File, EmitFn Fn) {
  ir::Program P(File.stem().string());
  ir::IRBuilder B(P);
  corpus::PatternEmitter E(B);
  (E.*Fn)();
  std::ofstream Out(File);
  ASSERT_TRUE(Out.good()) << File;
  ir::printProgram(P, Out);
}

TEST(TypestateBatchTest, LintModeAddsRowsExitCodeAndJsonKeys) {
  TempCorpus Apps("nadroid-typestate-batch");
  writeProtoApp(Apps.Dir / "leaky.air",
                &corpus::PatternEmitter::protoReceiverLeak);
  writeProtoApp(Apps.Dir / "tidy.air",
                &corpus::PatternEmitter::protoReceiverClean);

  report::BatchOptions Opts;
  Opts.Dir = Apps.Dir.string();
  Opts.Jobs = 1;
  Opts.Pipeline.Lint = true;
  report::BatchResult R = report::runBatch(Opts);
  ASSERT_EQ(R.Apps.size(), 2u);
  EXPECT_TRUE(R.LintMode);
  EXPECT_EQ(R.Apps[0].Name, "leaky");
  EXPECT_EQ(R.Apps[0].LintTypestate, 1u);
  EXPECT_EQ(R.Apps[1].LintTypestate, 0u);

  std::string Text = report::renderBatchReport(R);
  EXPECT_NE(Text.find("Lint"), std::string::npos);
  EXPECT_NE(Text.find("lint finding"), std::string::npos);
  std::string Json = report::renderBatchJson(R);
  EXPECT_NE(Json.find("\"lintFindings\""), std::string::npos);
  EXPECT_NE(Json.find("\"typestateCpuSec\""), std::string::npos);

  // Findings dominate the exit code only below the fault codes: both
  // rows are ok here, so the batch reports the lint-specific 6.
  EXPECT_EQ(R.exitCode(), 6);

  // The same corpus without --lint: no lint column, no lint keys, no
  // typestate work — pre-lint reports stay byte-identical.
  report::BatchOptions Plain = Opts;
  Plain.Pipeline.Lint = false;
  report::BatchResult R2 = report::runBatch(Plain);
  EXPECT_FALSE(R2.LintMode);
  EXPECT_EQ(report::renderBatchReport(R2).find("Lint"), std::string::npos);
  EXPECT_EQ(report::renderBatchJson(R2).find("\"lintFindings\""),
            std::string::npos);
  EXPECT_EQ(report::renderBatchJson(R2).find("\"typestateCpuSec\""),
            std::string::npos);
  EXPECT_EQ(R2.exitCode(), 1); // the seeded UAF alone
}

TEST(TypestateBatchTest, CacheEntryRoundTripsLintCounts) {
  report::BatchApp A;
  A.Status = report::BatchStatus::Ok;
  A.OptionsFp = "opt1;k=2;lint=1";
  A.LintNullness = 3;
  A.LintTypestate = 5;
  A.Timings.TypestateSec = 0.125;

  std::string Line = report::renderAppResult(A, cache::SchemaVersion);
  report::BatchApp B;
  ASSERT_TRUE(report::parseAppResult(Line, cache::SchemaVersion, B));
  EXPECT_EQ(B.LintNullness, 3u);
  EXPECT_EQ(B.LintTypestate, 5u);
  EXPECT_DOUBLE_EQ(B.Timings.TypestateSec, 0.125);
}

} // namespace
