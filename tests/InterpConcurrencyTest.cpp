//===- tests/InterpConcurrencyTest.cpp - Monitors, caps, cancellation ------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "corpus/Patterns.h"
#include "frontend/Frontend.h"
#include "interp/Interp.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace nadroid;

namespace {

std::unique_ptr<ir::Program> parse(const std::string &Source) {
  frontend::ParseResult R =
      frontend::parseProgramText(Source, "test.air", "test");
  EXPECT_TRUE(R.Success) << [&] {
    std::string S;
    for (const auto &D : R.Diags)
      S += D.Message + "\n";
    return S;
  }();
  return std::move(R.Prog);
}

std::set<interp::UafWitness> explore(const ir::Program &P,
                                     unsigned Schedules = 300) {
  interp::ExploreOptions Opts;
  Opts.Schedules = Schedules;
  Opts.Seed = 13;
  interp::ScheduleExplorer E(P, Opts);
  return E.explore();
}

TEST(InterpConcurrency, ReentrantMonitorDoesNotSelfDeadlock) {
  // A method that re-acquires its own lock via a helper must finish; the
  // free after the nested region still races with the other callback's
  // use — exploration must find it (i.e. no self-deadlock swallowed the
  // schedule).
  auto P = parse(R"(
app "t";
manifest A;
class Obj : Plain {
  method use() {
    return;
  }
}
class A : Activity {
  field f : Obj;
  field mon : Obj;
  method onCreate() {
    x = new Obj;
    this.f = x;
    m = new Obj;
    this.mon = m;
  }
  method nested(l) {
    synchronized (l) {
      this.f = null;
    }
  }
  method onClick() {
    l = this.mon;
    synchronized (l) {
      this.nested(l);
    }
  }
  method onLongClick() {
    u = this.f;
    u.use();
  }
}
)");
  EXPECT_FALSE(explore(*P).empty());
}

TEST(InterpConcurrency, ContendedMonitorSerializesThreads) {
  // Two native threads increment-and-test under one lock; without mutual
  // exclusion the checker thread could observe the intermediate null.
  auto P = parse(R"(
app "t";
manifest A;
class Obj : Plain {
  method use() {
    return;
  }
}
class Writer : Thread {
  field act : A;
  method run() {
    a = this.act;
    l = a.mon;
    synchronized (l) {
      a.f = null;
      x = new Obj;
      a.f = x;
    }
  }
}
class Reader : Thread {
  field act : A;
  method run() {
    a = this.act;
    l = a.mon;
    synchronized (l) {
      u = a.f;
      u.use();
    }
  }
}
class A : Activity {
  field f : Obj;
  field mon : Obj;
  method onCreate() {
    x = new Obj;
    this.f = x;
    m = new Obj;
    this.mon = m;
    w = new Writer;
    w.act = this;
    w.start();
    r = new Reader;
    r.act = this;
    r.start();
  }
}
)");
  // The writer's transient null is invisible under the lock.
  EXPECT_TRUE(explore(*P, 600).empty());
}

TEST(InterpConcurrency, WithoutTheLockTheTransientNullLeaks) {
  auto P = parse(R"(
app "t";
manifest A;
class Obj : Plain {
  method use() {
    return;
  }
}
class Writer : Thread {
  field act : A;
  method run() {
    a = this.act;
    a.f = null;
    x = new Obj;
    a.f = x;
  }
}
class Reader : Thread {
  field act : A;
  method run() {
    a = this.act;
    u = a.f;
    u.use();
  }
}
class A : Activity {
  field f : Obj;
  method onCreate() {
    x = new Obj;
    this.f = x;
    w = new Writer;
    w.act = this;
    w.start();
    r = new Reader;
    r.act = this;
    r.start();
  }
}
)");
  EXPECT_FALSE(explore(*P, 600).empty());
}

TEST(InterpConcurrency, UnbindCancelsPendingConnectionCallbacks) {
  // unbind in onCreate right after bind: neither connection callback may
  // ever run, so the disconnect-free cannot happen.
  auto P = parse(R"(
app "t";
manifest A;
class Obj : Plain {
  method use() {
    return;
  }
}
class Conn : ServiceConnection {
  field act : A;
  method onServiceDisconnected() {
    a = this.act;
    a.f = null;
  }
}
class A : Activity {
  field f : Obj;
  method onCreate() {
    x = new Obj;
    this.f = x;
    c = new Conn;
    c.act = this;
    this.bindService(c);
    this.unbindService(c);
  }
  method onClick() {
    u = this.f;
    u.use();
  }
}
)");
  EXPECT_TRUE(explore(*P).empty());
}

TEST(InterpConcurrency, UnregisterStopsReceiver) {
  auto P = parse(R"(
app "t";
manifest A;
class Obj : Plain {
  method use() {
    return;
  }
}
class R : Receiver {
  field act : A;
  method onReceive() {
    a = this.act;
    a.f = null;
  }
}
class A : Activity {
  field f : Obj;
  method onCreate() {
    x = new Obj;
    this.f = x;
    r = new R;
    r.act = this;
    this.registerReceiver(r);
    this.unregisterReceiver(r);
  }
  method onClick() {
    u = this.f;
    u.use();
  }
}
)");
  EXPECT_TRUE(explore(*P).empty());
}

TEST(InterpConcurrency, RegisteredReceiverDoesFire) {
  // Control for the previous test: without the unregister the receiver
  // frees and the click crashes.
  auto P = parse(R"(
app "t";
manifest A;
class Obj : Plain {
  method use() {
    return;
  }
}
class R : Receiver {
  field act : A;
  method onReceive() {
    a = this.act;
    a.f = null;
  }
}
class A : Activity {
  field f : Obj;
  method onCreate() {
    x = new Obj;
    this.f = x;
    r = new R;
    r.act = this;
    this.registerReceiver(r);
  }
  method onClick() {
    u = this.f;
    u.use();
  }
}
)");
  EXPECT_FALSE(explore(*P).empty());
}

TEST(InterpConcurrency, RepostingLoopIsBounded) {
  // A runnable that re-posts itself forever must not hang exploration.
  auto P = parse(R"(
app "t";
manifest A;
class Loop : Runnable {
  field act : A;
  method run() {
    a = this.act;
    r = new Loop;
    r.act = a;
    a.runOnUiThread(r);
  }
}
class A : Activity {
  field f : Loop;
  method onCreate() {
    r = new Loop;
    r.act = this;
    this.runOnUiThread(r);
  }
}
)");
  interp::ExploreOptions Opts;
  Opts.Schedules = 50;
  Opts.Seed = 3;
  interp::ScheduleExplorer E(*P, Opts);
  EXPECT_TRUE(E.explore().empty()); // terminates, finds nothing
}

TEST(InterpConcurrency, StashRoundTripPreservesIdentity) {
  // The dynamic-only stash/fetchStash APIs return the very object, so a
  // free through one fetch is visible through another. (Built with the
  // IRBuilder: the textual frontend rejects dereferences of opaque call
  // results by design — the same opacity that blinds the detector.)
  ir::Program P("t");
  ir::IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.fnOpaquePath();
  EXPECT_FALSE(explore(P).empty());
}

} // namespace
