//===- tests/FrontendTest.cpp - Lexer and parser tests --------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "frontend/Lexer.h"
#include "ir/Printer.h"
#include "ir/Stmt.h"

#include <gtest/gtest.h>

using namespace nadroid;
using namespace nadroid::frontend;

namespace {

std::vector<Token> lex(const std::string &Source,
                       unsigned *ErrorsOut = nullptr) {
  static SourceManager SM;
  DiagnosticEngine Diags(SM);
  Lexer L(Source, 0, Diags);
  std::vector<Token> Tokens = L.lexAll();
  if (ErrorsOut)
    *ErrorsOut = Diags.errorCount();
  return Tokens;
}

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, KeywordsAndIdentifiers) {
  auto T = lex("class Foo extends if synchronized fieldling");
  ASSERT_EQ(T.size(), 7u); // 6 tokens + EOF
  EXPECT_EQ(T[0].Kind, TokenKind::KwClass);
  EXPECT_EQ(T[1].Kind, TokenKind::Ident);
  EXPECT_EQ(T[1].Text, "Foo");
  EXPECT_EQ(T[2].Kind, TokenKind::KwExtends);
  EXPECT_EQ(T[3].Kind, TokenKind::KwIf);
  EXPECT_EQ(T[4].Kind, TokenKind::KwSynchronized);
  // "fieldling" is an identifier, not the 'field' keyword plus junk.
  EXPECT_EQ(T[5].Kind, TokenKind::Ident);
}

TEST(Lexer, PunctuationAndComparisons) {
  auto T = lex("{ } ( ) ; , : . = == != ?");
  std::vector<TokenKind> Expected = {
      TokenKind::LBrace, TokenKind::RBrace,     TokenKind::LParen,
      TokenKind::RParen, TokenKind::Semi,       TokenKind::Comma,
      TokenKind::Colon,  TokenKind::Dot,        TokenKind::Equal,
      TokenKind::EqualEqual, TokenKind::BangEqual, TokenKind::Question,
      TokenKind::EndOfFile};
  ASSERT_EQ(T.size(), Expected.size());
  for (size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(T[I].Kind, Expected[I]) << "token " << I;
}

TEST(Lexer, LineCommentsSkipped) {
  auto T = lex("a // the rest is ignored = ;\nb");
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[1].Text, "b");
  EXPECT_EQ(T[1].Loc.Line, 2u);
}

TEST(Lexer, StringLiterals) {
  auto T = lex("app \"My App\";");
  ASSERT_GE(T.size(), 3u);
  EXPECT_EQ(T[1].Kind, TokenKind::String);
  EXPECT_EQ(T[1].Text, "My App");
}

TEST(Lexer, UnterminatedStringIsError) {
  unsigned Errors = 0;
  lex("\"oops", &Errors);
  EXPECT_EQ(Errors, 1u);
}

TEST(Lexer, LoneBangIsError) {
  unsigned Errors = 0;
  lex("a ! b", &Errors);
  EXPECT_EQ(Errors, 1u);
}

TEST(Lexer, TracksLineAndColumn) {
  auto T = lex("a\n  b");
  EXPECT_EQ(T[0].Loc.Line, 1u);
  EXPECT_EQ(T[0].Loc.Column, 1u);
  EXPECT_EQ(T[1].Loc.Line, 2u);
  EXPECT_EQ(T[1].Loc.Column, 3u);
}

//===----------------------------------------------------------------------===//
// Parser: statement forms
//===----------------------------------------------------------------------===//

ParseResult parse(const std::string &Source) {
  return parseProgramText(Source, "test.air", "test");
}

std::string wrapBody(const std::string &Body) {
  return "class F : Plain { }\n"
         "class A : Activity {\n  field f : F;\n  field g : F;\n"
         "  method m(p) {\n" +
         Body + "\n  }\n}\n";
}

TEST(Parser, ParsesEveryStatementForm) {
  ParseResult R = parse(wrapBody(R"(
    x = new F;
    y = new F();
    z = x;
    this.f = x;
    this.g = null;
    w = this.f;
    x.use();
    r = x.make(y, z);
    if (w != null) {
      return w;
    } else {
      return null;
    }
    if (w == null) {
    }
    if (?) {
    }
    synchronized (x) {
      return;
    }
  )"));
  ASSERT_TRUE(R.Success) << R.Diags.size();
  ir::Method *M = R.Prog->findClass("A")->findMethod("m");
  ASSERT_NE(M, nullptr);
  // new, new, copy, store, free, load, call, call, if, if, if, sync = 12
  EXPECT_EQ(M->body().size(), 12u);
}

TEST(Parser, ForwardClassReferencesResolve) {
  // B extends and references A before A is declared.
  ParseResult R = parse(R"(
class B : Plain extends A {
  method m() {
    x = new A;
    this.other = x;
  }
}
class A : Plain {
  field other : A;
}
)");
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.Prog->findClass("B")->superClass(),
            R.Prog->findClass("A"));
}

TEST(Parser, FieldResolutionThroughTypedFields) {
  ParseResult R = parse(R"(
class Payload : Plain { }
class Holder : Plain {
  field act : Main;
}
class Main : Activity {
  field data : Payload;
  method m() {
    h = new Holder;
    h.act = this;
    a = h.act;
    a.data = null;
  }
}
)");
  ASSERT_TRUE(R.Success);
}

TEST(Parser, ManifestDirective) {
  ParseResult R = parse(R"(
manifest A;
class A : Activity { }
)");
  ASSERT_TRUE(R.Success);
  EXPECT_TRUE(
      R.Prog->isManifestComponent(R.Prog->findClass("A")));
}

TEST(Parser, OuterClassRelation) {
  ParseResult R = parse(R"(
class Outer : Activity { }
class Inner : Runnable outer Outer {
  method run() {
    return;
  }
}
)");
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.Prog->findClass("Inner")->outerClass(),
            R.Prog->findClass("Outer"));
}

//===----------------------------------------------------------------------===//
// Parser: errors and recovery
//===----------------------------------------------------------------------===//

bool hasError(const ParseResult &R, const std::string &Needle) {
  for (const Diagnostic &D : R.Diags)
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

TEST(Parser, UnknownClassKind) {
  ParseResult R = parse("class A : Widget { }");
  EXPECT_FALSE(R.Success);
  EXPECT_TRUE(hasError(R, "unknown class kind"));
}

TEST(Parser, DuplicateClass) {
  ParseResult R = parse("class A : Plain { }\nclass A : Plain { }");
  EXPECT_FALSE(R.Success);
  EXPECT_TRUE(hasError(R, "duplicate class"));
}

TEST(Parser, DuplicateField) {
  ParseResult R =
      parse("class A : Plain {\n  field f;\n  field f;\n}");
  EXPECT_FALSE(R.Success);
  EXPECT_TRUE(hasError(R, "duplicate field"));
}

TEST(Parser, DuplicateMethod) {
  ParseResult R = parse(
      "class A : Plain {\n  method m() { }\n  method m() { }\n}");
  EXPECT_FALSE(R.Success);
  EXPECT_TRUE(hasError(R, "duplicate method"));
}

TEST(Parser, UnknownFieldOnThis) {
  ParseResult R = parse(wrapBody("this.missing = null;"));
  EXPECT_FALSE(R.Success);
  EXPECT_TRUE(hasError(R, "has no field"));
}

TEST(Parser, UnresolvableBaseLocal) {
  ParseResult R = parse(wrapBody("q = p.f;"));
  EXPECT_FALSE(R.Success);
  EXPECT_TRUE(hasError(R, "cannot resolve field"));
}

TEST(Parser, UnknownManifestClass) {
  ParseResult R = parse("manifest Ghost;\nclass A : Activity { }");
  EXPECT_FALSE(R.Success);
  EXPECT_TRUE(hasError(R, "unknown class"));
}

TEST(Parser, RecoversAndReportsMultipleErrors) {
  ParseResult R = parse(R"(
class A : Activity {
  field f;
  method m() {
    this.missing1 = null;
    this.missing2 = null;
  }
}
)");
  EXPECT_FALSE(R.Success);
  unsigned Errors = 0;
  for (const Diagnostic &D : R.Diags)
    if (D.Severity == DiagSeverity::Error)
      ++Errors;
  EXPECT_GE(Errors, 2u);
}

TEST(Parser, EmptyAndCommentOnlyInputsAreValid) {
  ParseResult R1 = parse("");
  EXPECT_TRUE(R1.Success);
  EXPECT_TRUE(R1.Prog->classes().empty());
  ParseResult R2 = parse("// nothing but commentary\n");
  EXPECT_TRUE(R2.Success);
}

TEST(Parser, MissingFileReportsError) {
  ParseResult R = parseProgramFile("/nonexistent/x.air");
  EXPECT_FALSE(R.Success);
  EXPECT_TRUE(hasError(R, "cannot open"));
  // The placeholder program is named after the file, so downstream
  // reports (batch rows) identify the app rather than saying "invalid".
  ASSERT_TRUE(R.Prog != nullptr);
  EXPECT_EQ(R.Prog->name(), "x");
}

//===----------------------------------------------------------------------===//
// Round trip: print ∘ parse ∘ print is a fixpoint
//===----------------------------------------------------------------------===//

TEST(Parser, PrintParsePrintFixpoint) {
  ParseResult R = parse(R"(
app "roundtrip";
manifest Main;

class Payload : Plain {
  method use() {
    return;
  }
}

class Main : Activity {
  field data : Payload;

  method onCreate() {
    x = new Payload;
    this.data = x;
  }

  method onClick() {
    u = this.data;
    if (u != null) {
      u.use();
    } else {
      this.data = null;
    }
    synchronized (u) {
      r = u.use();
    }
  }
}
)");
  ASSERT_TRUE(R.Success);
  std::string Once = ir::programToString(*R.Prog);
  ParseResult R2 = parseProgramText(Once, "gen.air", "test");
  ASSERT_TRUE(R2.Success);
  std::string Twice = ir::programToString(*R2.Prog);
  EXPECT_EQ(Once, Twice);
}

} // namespace
