//===- tests/IrTest.cpp - IR structure/builder/verifier tests -------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/LocalInfo.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace nadroid;
using namespace nadroid::ir;

namespace {

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

TEST(Ir, ClassLookupAndKinds) {
  Program P("t");
  Clazz *A = P.addClass("A", ClassKind::Activity);
  EXPECT_EQ(P.findClass("A"), A);
  EXPECT_EQ(P.findClass("B"), nullptr);
  EXPECT_EQ(A->kind(), ClassKind::Activity);
  EXPECT_STREQ(classKindName(ClassKind::ServiceConnection),
               "ServiceConnection");
  ClassKind K;
  EXPECT_TRUE(classKindFromName("Handler", K));
  EXPECT_EQ(K, ClassKind::Handler);
  EXPECT_FALSE(classKindFromName("Nonsense", K));
}

TEST(Ir, FieldLookupWalksSuperChain) {
  Program P("t");
  Clazz *Base = P.addClass("Base", ClassKind::Plain);
  Clazz *Derived = P.addClass("Derived", ClassKind::Plain);
  Derived->setSuperClass(Base);
  Field *F = Base->addField("f");
  EXPECT_EQ(Derived->findField("f"), F);
  EXPECT_EQ(Base->findField("g"), nullptr);
  EXPECT_EQ(F->qualifiedName(), "Base.f");
}

TEST(Ir, MethodLookupResolvesOverrides) {
  Program P("t");
  Clazz *Base = P.addClass("Base", ClassKind::Plain);
  Clazz *Derived = P.addClass("Derived", ClassKind::Plain);
  Derived->setSuperClass(Base);
  Method *BaseRun = Base->addMethod("run");
  Method *DerivedRun = Derived->addMethod("run");
  EXPECT_EQ(Derived->findMethod("run"), DerivedRun);
  EXPECT_EQ(Base->findMethod("run"), BaseRun);
  EXPECT_EQ(Derived->findOwnMethod("missing"), nullptr);
}

TEST(Ir, IsSubclassOfIsReflexiveAndTransitive) {
  Program P("t");
  Clazz *A = P.addClass("A", ClassKind::Plain);
  Clazz *B = P.addClass("B", ClassKind::Plain);
  Clazz *C = P.addClass("C", ClassKind::Plain);
  B->setSuperClass(A);
  C->setSuperClass(B);
  EXPECT_TRUE(C->isSubclassOf(A));
  EXPECT_TRUE(A->isSubclassOf(A));
  EXPECT_FALSE(A->isSubclassOf(C));
}

TEST(Ir, MethodHasImplicitThisAndFreshTemps) {
  Program P("t");
  Clazz *A = P.addClass("A", ClassKind::Plain);
  Method *M = A->addMethod("m");
  ASSERT_NE(M->thisLocal(), nullptr);
  EXPECT_TRUE(M->thisLocal()->isThis());
  Local *T1 = M->makeTemp();
  Local *T2 = M->makeTemp();
  EXPECT_NE(T1->name(), T2->name());
  EXPECT_EQ(M->qualifiedName(), "A.m");
}

TEST(Ir, ManifestComponentsDeduplicated) {
  Program P("t");
  Clazz *A = P.addClass("A", ClassKind::Activity);
  P.addManifestComponent(A);
  P.addManifestComponent(A);
  EXPECT_EQ(P.manifestComponents().size(), 1u);
  EXPECT_TRUE(P.isManifestComponent(A));
}

TEST(Ir, StatementCountWalksNestedBlocks) {
  Program P("t");
  IRBuilder B(P);
  Clazz *A = B.makeClass("A", ClassKind::Plain);
  Field *F = B.addField(A, "f");
  B.makeMethod(A, "m");
  Local *X = B.emitNew("x", A);
  B.beginIfNotNull(X);
  B.emitStore(B.thisLocal(), F, X);
  B.endIf();
  // new + if + store = 3 statements.
  EXPECT_EQ(P.statementCount(), 3u);
}

//===----------------------------------------------------------------------===//
// Builder / statement structure
//===----------------------------------------------------------------------===//

TEST(IrBuilder, IfElseBlocksReceiveStatements) {
  Program P("t");
  IRBuilder B(P);
  Clazz *A = B.makeClass("A", ClassKind::Plain);
  Field *F = B.addField(A, "f");
  B.makeMethod(A, "m");
  Local *X = B.emitNew("x", A);
  IfStmt *If = B.beginIfNotNull(X);
  B.emitStore(B.thisLocal(), F, X);
  B.beginElse();
  B.emitStore(B.thisLocal(), F, nullptr);
  B.endIf();
  EXPECT_EQ(If->thenBlock().size(), 1u);
  EXPECT_EQ(If->elseBlock().size(), 1u);
  EXPECT_EQ(If->test(), IfStmt::TestKind::NotNull);
}

TEST(IrBuilder, SyncBodyNesting) {
  Program P("t");
  IRBuilder B(P);
  Clazz *A = B.makeClass("A", ClassKind::Plain);
  B.makeMethod(A, "m");
  Local *L = B.emitNew("l", A);
  SyncStmt *Sync = B.beginSync(L);
  B.emitReturn();
  B.endSync();
  EXPECT_EQ(Sync->body().size(), 1u);
  EXPECT_EQ(Sync->lock(), L);
}

TEST(IrBuilder, UseThisEmitsLoadPlusDeref) {
  Program P("t");
  IRBuilder B(P);
  Clazz *A = B.makeClass("A", ClassKind::Plain);
  B.addField(A, "f");
  Method *M = B.makeMethod(A, "m");
  LoadStmt *Use = B.emitUseThis("f");
  ASSERT_EQ(M->body().size(), 2u);
  EXPECT_EQ(M->body().stmts()[0].get(), Use);
  EXPECT_EQ(M->body().stmts()[1]->kind(), Stmt::Kind::Call);
}

TEST(IrBuilder, NullStoreIsFree) {
  Program P("t");
  IRBuilder B(P);
  Clazz *A = B.makeClass("A", ClassKind::Plain);
  B.addField(A, "f");
  B.makeMethod(A, "m");
  StoreStmt *Free = B.emitFreeThis("f");
  EXPECT_TRUE(Free->isNullStore());
  EXPECT_EQ(Free->src(), nullptr);
}

//===----------------------------------------------------------------------===//
// LocalInfo: class inference
//===----------------------------------------------------------------------===//

TEST(LocalInfo, ThisResolvesToEnclosingClass) {
  Program P("t");
  IRBuilder B(P);
  Clazz *A = B.makeClass("A", ClassKind::Activity);
  Method *M = B.makeMethod(A, "m");
  LocalClassSet S = inferLocalClasses(*M, M->thisLocal());
  EXPECT_EQ(S.uniqueClass(), A);
  EXPECT_FALSE(S.Unknown);
}

TEST(LocalInfo, NewAndCopyChainsResolve) {
  Program P("t");
  IRBuilder B(P);
  Clazz *A = B.makeClass("A", ClassKind::Plain);
  Clazz *C = B.makeClass("C", ClassKind::Runnable);
  Method *M = B.makeMethod(A, "m");
  Local *X = B.emitNew("x", C);
  Local *Y = B.local("y");
  B.emitCopy(Y, X);
  EXPECT_EQ(inferLocalClasses(*M, Y).uniqueClass(), C);
}

TEST(LocalInfo, TypedFieldLoadResolvesUntypedIsOpaque) {
  Program P("t");
  IRBuilder B(P);
  Clazz *A = B.makeClass("A", ClassKind::Plain);
  Clazz *C = B.makeClass("C", ClassKind::Handler);
  Field *Typed = B.addField(A, "typed", C);
  Field *Untyped = B.addField(A, "untyped");
  Method *M = B.makeMethod(A, "m");
  Local *X = B.local("x");
  B.emitLoad(X, B.thisLocal(), Typed);
  Local *Y = B.local("y");
  B.emitLoad(Y, B.thisLocal(), Untyped);
  EXPECT_EQ(inferLocalClasses(*M, X).uniqueClass(), C);
  EXPECT_TRUE(inferLocalClasses(*M, Y).Unknown);
}

TEST(LocalInfo, CallResultAndParamsAreOpaque) {
  Program P("t");
  IRBuilder B(P);
  Clazz *A = B.makeClass("A", ClassKind::Plain);
  Method *M = B.makeMethod(A, "m");
  Local *Param = M->addParam("p");
  Local *R = B.local("r");
  B.emitCall(R, B.thisLocal(), "getF");
  EXPECT_TRUE(inferLocalClasses(*M, Param).Unknown);
  EXPECT_TRUE(inferLocalClasses(*M, R).Unknown);
}

TEST(LocalInfo, CopyCycleTerminates) {
  Program P("t");
  IRBuilder B(P);
  Clazz *A = B.makeClass("A", ClassKind::Plain);
  Method *M = B.makeMethod(A, "m");
  Local *X = B.local("x");
  Local *Y = B.local("y");
  B.emitCopy(X, Y);
  B.emitCopy(Y, X);
  LocalClassSet S = inferLocalClasses(*M, X);
  EXPECT_TRUE(S.Classes.empty());
}

TEST(LocalInfo, AmbiguousDefsHaveNoUniqueClass) {
  Program P("t");
  IRBuilder B(P);
  Clazz *A = B.makeClass("A", ClassKind::Plain);
  Clazz *C1 = B.makeClass("C1", ClassKind::Plain);
  Clazz *C2 = B.makeClass("C2", ClassKind::Plain);
  Method *M = B.makeMethod(A, "m");
  Local *X = B.local("x");
  B.emitNewInto(X, C1);
  B.emitNewInto(X, C2);
  LocalClassSet S = inferLocalClasses(*M, X);
  EXPECT_EQ(S.Classes.size(), 2u);
  EXPECT_EQ(S.uniqueClass(), nullptr);
}

//===----------------------------------------------------------------------===//
// LocalInfo: load consumers and getters
//===----------------------------------------------------------------------===//

TEST(LocalInfo, ConsumerKindsTracked) {
  Program P("t");
  IRBuilder B(P);
  Clazz *A = B.makeClass("A", ClassKind::Plain);
  Field *F = B.addField(A, "f");
  Method *M = B.makeMethod(A, "m");

  Local *Deref = B.local("d");
  LoadStmt *L1 = B.emitLoad(Deref, B.thisLocal(), F);
  B.emitCall(nullptr, Deref, "use");

  Local *Arg = B.local("a");
  LoadStmt *L2 = B.emitLoad(Arg, B.thisLocal(), F);
  B.emitCall(nullptr, B.thisLocal(), "log", {Arg});

  Local *Ret = B.local("r");
  LoadStmt *L3 = B.emitLoad(Ret, B.thisLocal(), F);
  B.emitReturn(Ret);

  auto Consumers = computeLoadConsumers(*M);
  EXPECT_TRUE(Consumers.at(L1).Dereferenced);
  EXPECT_FALSE(Consumers.at(L1).isReturnOrCompareOnly());
  EXPECT_TRUE(Consumers.at(L2).PassedAsArg);
  EXPECT_TRUE(Consumers.at(L2).isReturnOrCompareOnly());
  EXPECT_TRUE(Consumers.at(L3).Returned);
  EXPECT_TRUE(Consumers.at(L3).isReturnOrCompareOnly());
}

TEST(LocalInfo, NullCompareOnlyIsBenign) {
  Program P("t");
  IRBuilder B(P);
  Clazz *A = B.makeClass("A", ClassKind::Plain);
  Field *F = B.addField(A, "f");
  Method *M = B.makeMethod(A, "m");
  Local *G = B.local("g");
  LoadStmt *L = B.emitLoad(G, B.thisLocal(), F);
  B.beginIfNotNull(G);
  B.endIf();
  auto Consumers = computeLoadConsumers(*M);
  EXPECT_TRUE(Consumers.at(L).NullCompared);
  EXPECT_TRUE(Consumers.at(L).isReturnOrCompareOnly());
}

TEST(LocalInfo, LoadWithNoConsumersIsNotBenign) {
  Program P("t");
  IRBuilder B(P);
  Clazz *A = B.makeClass("A", ClassKind::Plain);
  Field *F = B.addField(A, "f");
  Method *M = B.makeMethod(A, "m");
  Local *X = B.local("x");
  LoadStmt *L = B.emitLoad(X, B.thisLocal(), F);
  auto Consumers = computeLoadConsumers(*M);
  EXPECT_FALSE(Consumers.at(L).isReturnOrCompareOnly());
}

TEST(LocalInfo, GetterRecognized) {
  Program P("t");
  IRBuilder B(P);
  Clazz *A = B.makeClass("A", ClassKind::Plain);
  Field *F = B.addField(A, "f");
  Method *M = B.makeMethod(A, "getF");
  Local *R = B.local("r");
  B.emitLoad(R, B.thisLocal(), F);
  B.emitReturn(R);
  Field *Got = nullptr;
  EXPECT_TRUE(isGetterMethod(*M, &Got));
  EXPECT_EQ(Got, F);
}

TEST(LocalInfo, NonGetterRejected) {
  Program P("t");
  IRBuilder B(P);
  Clazz *A = B.makeClass("A", ClassKind::Plain);
  Field *F = B.addField(A, "f");
  // A setter-ish method is not a getter.
  Method *M = B.makeMethod(A, "setF");
  B.emitFreeThis("f");
  B.emitReturn();
  EXPECT_FALSE(isGetterMethod(*M));
  // A method returning a fresh object is not a getter either.
  Method *M2 = B.makeMethod(A, "mk");
  Local *R = B.emitNew("r", A);
  B.emitReturn(R);
  EXPECT_FALSE(isGetterMethod(*M2));
  (void)F;
}

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

TEST(Printer, RendersStatements) {
  Program P("t");
  IRBuilder B(P);
  Clazz *A = B.makeClass("A", ClassKind::Plain);
  Field *F = B.addField(A, "f", A);
  B.makeMethod(A, "m");
  Local *X = B.emitNew("x", A);
  StoreStmt *St = B.emitStore(B.thisLocal(), F, X);
  StoreStmt *Free = B.emitFreeThis("f");
  EXPECT_EQ(stmtToString(*St), "this.f = x;");
  EXPECT_EQ(stmtToString(*Free), "this.f = null;");
  std::string Text = programToString(P);
  EXPECT_NE(Text.find("class A : Plain {"), std::string::npos);
  EXPECT_NE(Text.find("field f : A;"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

TEST(Verifier, AcceptsWellFormedProgram) {
  Program P("t");
  IRBuilder B(P);
  Clazz *A = B.makeClass("A", ClassKind::Activity);
  B.addField(A, "f");
  P.addManifestComponent(A);
  B.makeMethod(A, "onCreate");
  Local *X = B.emitNew("x", A);
  B.emitStoreThis("f", X);
  DiagnosticEngine D(P.sourceManager());
  EXPECT_TRUE(verifyProgram(P, D));
}

TEST(Verifier, RejectsForeignLocal) {
  Program P("t");
  IRBuilder B(P);
  Clazz *A = B.makeClass("A", ClassKind::Plain);
  Field *F = B.addField(A, "f");
  Method *M1 = B.makeMethod(A, "m1");
  Local *Foreign = B.emitNew("x", A);
  (void)M1;
  B.makeMethod(A, "m2");
  B.emitStore(B.thisLocal(), F, Foreign); // local from m1 used in m2
  DiagnosticEngine D(P.sourceManager());
  EXPECT_FALSE(verifyProgram(P, D));
  EXPECT_TRUE(D.containsMessage("different method"));
}

TEST(Verifier, RejectsUndefinedLocal) {
  Program P("t");
  IRBuilder B(P);
  Clazz *A = B.makeClass("A", ClassKind::Plain);
  Field *F = B.addField(A, "f");
  B.makeMethod(A, "m");
  Local *Never = B.local("never"); // declared, never assigned
  B.emitStore(B.thisLocal(), F, Never);
  DiagnosticEngine D(P.sourceManager());
  EXPECT_FALSE(verifyProgram(P, D));
  EXPECT_TRUE(D.containsMessage("no definition"));
}

TEST(Verifier, RejectsNonComponentManifestEntry) {
  Program P("t");
  Clazz *R = P.addClass("R", ClassKind::Runnable);
  P.addManifestComponent(R);
  DiagnosticEngine D(P.sourceManager());
  EXPECT_FALSE(verifyProgram(P, D));
  EXPECT_TRUE(D.containsMessage("not an Activity"));
}

TEST(Verifier, RejectsCyclicSuperChain) {
  Program P("t");
  Clazz *A = P.addClass("A", ClassKind::Plain);
  Clazz *B2 = P.addClass("B", ClassKind::Plain);
  A->setSuperClass(B2);
  B2->setSuperClass(A);
  DiagnosticEngine D(P.sourceManager());
  EXPECT_FALSE(verifyProgram(P, D));
  EXPECT_TRUE(D.containsMessage("cyclic"));
}

} // namespace
