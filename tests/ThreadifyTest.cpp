//===- tests/ThreadifyTest.cpp - Threadification tests (§4 / Figure 3) ----------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "threadify/Threadifier.h"

#include <gtest/gtest.h>

using namespace nadroid;
using namespace nadroid::ir;
using namespace nadroid::threadify;
using android::CallbackKind;

namespace {

/// Builds a small multi-construct app (used by the determinism test).
void corpusLike(IRBuilder &B) {
  Program &P = B.program();
  Clazz *Run = B.makeClass("R", ClassKind::Runnable);
  B.makeMethod(Run, "run");
  B.emitReturn();
  Clazz *Conn = B.makeClass("C", ClassKind::ServiceConnection);
  B.makeMethod(Conn, "onServiceConnected");
  B.emitReturn();
  Clazz *Task = B.makeClass("T", ClassKind::AsyncTask);
  B.makeMethod(Task, "doInBackground");
  B.emitReturn();
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  P.addManifestComponent(Act);
  B.makeMethod(Act, "onCreate");
  B.emitBindService(Conn);
  B.emitRunOnUiThread(Run);
  B.makeMethod(Act, "onClick");
  B.emitExecuteAsyncTask(Task);
}

const ModeledThread *findThread(const ThreadForest &F,
                                const std::string &MethodName,
                                const std::string &ClassName = "") {
  for (const auto &T : F.threads()) {
    if (!T->callback())
      continue;
    if (T->callback()->name() != MethodName)
      continue;
    if (!ClassName.empty() &&
        T->callback()->parent()->name() != ClassName)
      continue;
    return T.get();
  }
  return nullptr;
}

TEST(Threadify, LifecycleCallbacksAreEcChildrenOfDummyMain) {
  // Figure 3(a).
  Program P("t");
  IRBuilder B(P);
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  P.addManifestComponent(Act);
  for (const char *Name : {"onCreate", "onStart", "onResume"}) {
    B.makeMethod(Act, Name);
    B.emitReturn();
  }
  ThreadForest F = threadify::threadify(P);
  EXPECT_EQ(F.entryCallbackCount(), 3u);
  EXPECT_EQ(F.threadCount(), 1u); // the dummy main only
  const ModeledThread *Create = findThread(F, "onCreate");
  ASSERT_NE(Create, nullptr);
  EXPECT_EQ(Create->parent(), F.root());
  EXPECT_EQ(Create->origin(), ThreadOrigin::EntryCallback);
  EXPECT_EQ(Create->component(), Act);
  EXPECT_TRUE(Create->onLooper());
}

TEST(Threadify, RegisteredListenersAreEcChildrenOfDummyMain) {
  // Figure 3(b): imperative registration still yields entry callbacks.
  Program P("t");
  IRBuilder B(P);
  Clazz *Listener = B.makeClass("L", ClassKind::Listener);
  B.makeMethod(Listener, "onClick");
  B.emitReturn();
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  P.addManifestComponent(Act);
  B.makeMethod(Act, "onCreate");
  B.emitSetOnClickListener(Listener);

  ThreadForest F = threadify::threadify(P);
  const ModeledThread *Click = findThread(F, "onClick", "L");
  ASSERT_NE(Click, nullptr);
  EXPECT_EQ(Click->origin(), ThreadOrigin::EntryCallback);
  EXPECT_EQ(Click->parent(), F.root()); // NOT a child of onCreate
  EXPECT_EQ(Click->component(), Act);
  ASSERT_NE(Click->spawnSite(), nullptr);
}

TEST(Threadify, HandlerPostAndSendArePcChildrenOfPoster) {
  // Figure 3(c).
  Program P("t");
  IRBuilder B(P);
  Clazz *Run = B.makeClass("R", ClassKind::Runnable);
  B.makeMethod(Run, "run");
  B.emitReturn();
  Clazz *H = B.makeClass("H", ClassKind::Handler);
  B.makeMethod(H, "handleMessage");
  B.emitReturn();
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  P.addManifestComponent(Act);
  B.makeMethod(Act, "onClick");
  Local *HL = B.emitNew("h", H);
  B.emitPost(HL, Run);
  B.emitSendMessage(HL);

  ThreadForest F = threadify::threadify(P);
  const ModeledThread *Click = findThread(F, "onClick");
  const ModeledThread *RunT = findThread(F, "run", "R");
  const ModeledThread *Msg = findThread(F, "handleMessage", "H");
  ASSERT_NE(RunT, nullptr);
  ASSERT_NE(Msg, nullptr);
  EXPECT_EQ(RunT->parent(), Click);
  EXPECT_EQ(Msg->parent(), Click);
  EXPECT_EQ(RunT->origin(), ThreadOrigin::PostedCallback);
  EXPECT_EQ(F.postedCallbackCount(), 2u);
}

TEST(Threadify, ServiceAndReceiverPcsShareConnectionInstance) {
  // Figure 3(d).
  Program P("t");
  IRBuilder B(P);
  Clazz *Conn = B.makeClass("Conn", ClassKind::ServiceConnection);
  B.makeMethod(Conn, "onServiceConnected");
  B.emitReturn();
  B.makeMethod(Conn, "onServiceDisconnected");
  B.emitReturn();
  Clazz *Recv = B.makeClass("Recv", ClassKind::Receiver);
  B.makeMethod(Recv, "onReceive");
  B.emitReturn();
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  P.addManifestComponent(Act);
  B.makeMethod(Act, "onStart");
  B.emitBindService(Conn);
  B.makeMethod(Act, "onResume");
  B.emitRegisterReceiver(Recv);

  ThreadForest F = threadify::threadify(P);
  const ModeledThread *C = findThread(F, "onServiceConnected");
  const ModeledThread *D = findThread(F, "onServiceDisconnected");
  const ModeledThread *R = findThread(F, "onReceive");
  ASSERT_TRUE(C && D && R);
  EXPECT_EQ(C->parent(), findThread(F, "onStart"));
  EXPECT_EQ(R->parent(), findThread(F, "onResume"));
  EXPECT_NE(C->connectionInstance(), 0u);
  EXPECT_EQ(C->connectionInstance(), D->connectionInstance());
  EXPECT_EQ(R->origin(), ThreadOrigin::PostedCallback);
}

TEST(Threadify, AsyncTaskShapeMatchesFigure3e) {
  Program P("t");
  IRBuilder B(P);
  Clazz *Task = B.makeClass("T", ClassKind::AsyncTask);
  for (const char *Name : {"onPreExecute", "doInBackground",
                           "onProgressUpdate", "onPostExecute"}) {
    B.makeMethod(Task, Name);
    B.emitReturn();
  }
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  P.addManifestComponent(Act);
  B.makeMethod(Act, "onLocationChanged");
  B.emitExecuteAsyncTask(Task);

  ThreadForest F = threadify::threadify(P);
  const ModeledThread *Bg = findThread(F, "doInBackground");
  const ModeledThread *Pre = findThread(F, "onPreExecute");
  const ModeledThread *Prog = findThread(F, "onProgressUpdate");
  const ModeledThread *Post = findThread(F, "onPostExecute");
  ASSERT_TRUE(Bg && Pre && Prog && Post);
  EXPECT_EQ(Bg->origin(), ThreadOrigin::NativeThread);
  EXPECT_FALSE(Bg->onLooper());
  // The looper-side callbacks hang off the doInBackground thread.
  EXPECT_EQ(Pre->parent(), Bg);
  EXPECT_EQ(Prog->parent(), Bg);
  EXPECT_EQ(Post->parent(), Bg);
  // All four share the AsyncTask instance id.
  EXPECT_NE(Bg->asyncInstance(), 0u);
  EXPECT_EQ(Bg->asyncInstance(), Pre->asyncInstance());
  EXPECT_EQ(Bg->asyncInstance(), Post->asyncInstance());
  // EC onLocationChanged + 3 PCs + bg native thread + dummy main.
  EXPECT_EQ(F.threadCount(), 2u);
}

TEST(Threadify, ThreadStartIsNativeChild) {
  Program P("t");
  IRBuilder B(P);
  Clazz *W = B.makeClass("W", ClassKind::ThreadClass);
  B.makeMethod(W, "run");
  B.emitReturn();
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  P.addManifestComponent(Act);
  B.makeMethod(Act, "onCreate");
  B.emitStartThread(W);

  ThreadForest F = threadify::threadify(P);
  const ModeledThread *Run = findThread(F, "run", "W");
  ASSERT_NE(Run, nullptr);
  EXPECT_EQ(Run->origin(), ThreadOrigin::NativeThread);
  EXPECT_EQ(Run->parent(), findThread(F, "onCreate"));
  EXPECT_TRUE(F.isReachableThreadOf(Run, findThread(F, "onCreate")));
}

TEST(Threadify, ReachabilityIsRelativeToTheCallback) {
  // §7: the same native thread is RT to its creator and NT to others.
  Program P("t");
  IRBuilder B(P);
  Clazz *W = B.makeClass("W", ClassKind::ThreadClass);
  B.makeMethod(W, "run");
  B.emitReturn();
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  P.addManifestComponent(Act);
  B.makeMethod(Act, "onResume");
  B.emitStartThread(W);
  B.makeMethod(Act, "onPause");
  B.emitReturn();

  ThreadForest F = threadify::threadify(P);
  const ModeledThread *Run = findThread(F, "run", "W");
  EXPECT_TRUE(F.isReachableThreadOf(Run, findThread(F, "onResume")));
  EXPECT_FALSE(F.isReachableThreadOf(Run, findThread(F, "onPause")));
}

TEST(Threadify, RecursivePostingTerminates) {
  // A runnable that re-posts itself must not blow up the forest.
  Program P("t");
  IRBuilder B(P);
  Clazz *Run = B.makeClass("R", ClassKind::Runnable);
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  P.addManifestComponent(Act);
  Field *ActF = B.addField(Run, "act", Act);
  B.makeMethod(Run, "run");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  Local *Self = B.emitNew("r2", Run);
  B.emitCall(nullptr, A, "runOnUiThread", {Self});
  B.makeMethod(Act, "onClick");
  Local *R = B.emitNew("r", Run);
  B.emitStore(R, ActF, B.thisLocal());
  B.emitCall(nullptr, B.thisLocal(), "runOnUiThread", {R});

  ThreadForest F = threadify::threadify(P);
  EXPECT_LT(F.threads().size(), 10u);
  EXPECT_GE(F.postedCallbackCount(), 1u);
}

TEST(Threadify, NonManifestComponentsFlaggedUnreachable) {
  Program P("t");
  IRBuilder B(P);
  Clazz *Ghost = B.makeClass("Ghost", ClassKind::Activity);
  B.makeMethod(Ghost, "onClick");
  B.emitReturn();
  ThreadForest F = threadify::threadify(P);
  const ModeledThread *Click = findThread(F, "onClick");
  ASSERT_NE(Click, nullptr);
  EXPECT_FALSE(Click->componentReachable());
}

TEST(Threadify, FragmentsAreSkipped) {
  // §8.1 limitation reproduced: no threads for Fragment callbacks.
  Program P("t");
  IRBuilder B(P);
  Clazz *Frag = B.makeClass("Frag", ClassKind::Fragment);
  B.makeMethod(Frag, "onResume");
  B.emitReturn();
  ThreadForest F = threadify::threadify(P);
  EXPECT_EQ(findThread(F, "onResume"), nullptr);
  EXPECT_EQ(F.entryCallbackCount(), 0u);
}

TEST(Threadify, RegistrationsInsideHelpersAreFound) {
  // The walk follows ordinary calls before looking for spawn sites.
  Program P("t");
  IRBuilder B(P);
  Clazz *Run = B.makeClass("R", ClassKind::Runnable);
  B.makeMethod(Run, "run");
  B.emitReturn();
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  P.addManifestComponent(Act);
  Method *Helper = B.makeMethod(Act, "setup");
  B.emitRunOnUiThread(Run);
  (void)Helper;
  B.makeMethod(Act, "onCreate");
  B.emitCall(nullptr, B.thisLocal(), "setup");

  ThreadForest F = threadify::threadify(P);
  const ModeledThread *RunT = findThread(F, "run", "R");
  ASSERT_NE(RunT, nullptr);
  EXPECT_EQ(RunT->parent(), findThread(F, "onCreate"));
}

TEST(Threadify, LineageRendersPosterChain) {
  Program P("t");
  IRBuilder B(P);
  Clazz *Run = B.makeClass("R", ClassKind::Runnable);
  B.makeMethod(Run, "run");
  B.emitReturn();
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  P.addManifestComponent(Act);
  B.makeMethod(Act, "onClick");
  B.emitRunOnUiThread(Run);

  ThreadForest F = threadify::threadify(P);
  const ModeledThread *RunT = findThread(F, "run", "R");
  EXPECT_EQ(F.lineage(RunT), "main > EC onClick@Act > PC run@R");
}

TEST(Threadify, DeterministicAcrossRuns) {
  auto Build = [] {
    auto P = std::make_unique<Program>("t");
    IRBuilder B(*P);
    corpusLike(B);
    return P;
  };
  // Two independent builds + threadifications produce identical lineages.
  auto P1 = Build();
  auto P2 = Build();
  ThreadForest F1 = threadify::threadify(*P1);
  ThreadForest F2 = threadify::threadify(*P2);
  ASSERT_EQ(F1.threads().size(), F2.threads().size());
  for (size_t I = 0; I < F1.threads().size(); ++I)
    EXPECT_EQ(F1.lineage(F1.threads()[I].get()),
              F2.lineage(F2.threads()[I].get()));
}

} // namespace
