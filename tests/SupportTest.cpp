//===- tests/SupportTest.cpp - Support library unit tests ----------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "support/Deadline.h"
#include "support/Diagnostics.h"
#include "support/Rng.h"
#include "support/SourceLoc.h"
#include "support/Statistic.h"
#include "support/StringUtils.h"
#include "support/TableWriter.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace nadroid;

namespace {

//===----------------------------------------------------------------------===//
// StringUtils
//===----------------------------------------------------------------------===//

TEST(StringUtils, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringUtils, SplitKeepsEmptyPieces) {
  auto Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
}

TEST(StringUtils, SplitWithoutSeparatorYieldsWhole) {
  auto Parts = split("abc", ',');
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0], "abc");
}

TEST(StringUtils, JoinConcatenatesWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(StringUtils, StartsEndsWith) {
  EXPECT_TRUE(startsWith("onCreate", "on"));
  EXPECT_FALSE(startsWith("on", "onCreate"));
  EXPECT_TRUE(endsWith("MainActivity", "Activity"));
  EXPECT_FALSE(endsWith("Activity", "MainActivity"));
}

TEST(StringUtils, IdentCharacterClasses) {
  EXPECT_TRUE(isIdentStart('a'));
  EXPECT_TRUE(isIdentStart('_'));
  EXPECT_TRUE(isIdentStart('$'));
  EXPECT_FALSE(isIdentStart('1'));
  EXPECT_TRUE(isIdentCont('1'));
  EXPECT_FALSE(isIdentCont('.'));
  EXPECT_FALSE(isIdentCont('-'));
}

TEST(StringUtils, CsvEscapeQuotesOnlyWhenNeeded) {
  EXPECT_EQ(csvEscape("plain"), "plain");
  EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(StringUtils, PercentFormatting) {
  EXPECT_EQ(percent(1, 2), "50.0%");
  EXPECT_EQ(percent(0, 5), "0.0%");
  EXPECT_EQ(percent(1, 0), "n/a");
}

TEST(StringUtils, ParseUnsignedIsStrict) {
  unsigned long long N = 99;
  EXPECT_TRUE(parseUnsigned("0", N));
  EXPECT_EQ(N, 0u);
  EXPECT_TRUE(parseUnsigned("18446744073709551615", N)); // ULLONG_MAX
  EXPECT_EQ(N, ~0ull);
  // Everything std::atoi silently mangles must be refused outright.
  EXPECT_FALSE(parseUnsigned("", N));
  EXPECT_FALSE(parseUnsigned("abc", N));
  EXPECT_FALSE(parseUnsigned("4x", N));  // atoi: 4
  EXPECT_FALSE(parseUnsigned(" 3", N));  // atoi: 3
  EXPECT_FALSE(parseUnsigned("-1", N));  // atoi: -1
  EXPECT_FALSE(parseUnsigned("+2", N));
  EXPECT_FALSE(parseUnsigned("18446744073709551616", N)); // overflow
}

TEST(StringUtils, ParseDoubleIsStrict) {
  double D = -1;
  EXPECT_TRUE(parseDouble("2.5", D));
  EXPECT_DOUBLE_EQ(D, 2.5);
  EXPECT_TRUE(parseDouble("10", D));
  EXPECT_DOUBLE_EQ(D, 10.0);
  EXPECT_FALSE(parseDouble("", D));
  EXPECT_FALSE(parseDouble("2.5x", D)); // atof: 2.5
  EXPECT_FALSE(parseDouble("1e9", D));  // exponents are not CLI seconds
  EXPECT_FALSE(parseDouble("-1", D));
  EXPECT_FALSE(parseDouble("1.2.3", D));
  EXPECT_FALSE(parseDouble(".", D));
}

//===----------------------------------------------------------------------===//
// TableWriter
//===----------------------------------------------------------------------===//

TEST(TableWriter, AlignsColumns) {
  TableWriter T({"A", "Name"});
  T.addRow({"1", "x"});
  T.addRow({"22", "longer"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("A   Name"), std::string::npos);
  EXPECT_NE(Out.find("22  longer"), std::string::npos);
}

TEST(TableWriter, PadsShortRows) {
  TableWriter T({"A", "B", "C"});
  T.addRow({"1"});
  std::ostringstream OS;
  T.printCsv(OS);
  EXPECT_EQ(OS.str(), "A,B,C\n1,,\n");
}

TEST(TableWriter, CsvEscapesCells) {
  TableWriter T({"x"});
  T.addRow({"a,b"});
  std::ostringstream OS;
  T.printCsv(OS);
  EXPECT_EQ(OS.str(), "x\n\"a,b\"\n");
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(Rng, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I < 10; ++I)
    AnyDifferent |= A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(Rng, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(13), 13u);
}

TEST(Rng, RangeInclusive) {
  Rng R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    uint64_t V = R.range(3, 5);
    EXPECT_GE(V, 3u);
    EXPECT_LE(V, 5u);
    SawLo |= V == 3;
    SawHi |= V == 5;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, ChanceExtremes) {
  Rng R(11);
  for (int I = 0; I < 50; ++I) {
    EXPECT_TRUE(R.chance(1, 1));
    EXPECT_FALSE(R.chance(0, 1));
  }
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng A(5);
  Rng Child = A.fork();
  // The child stream differs from the parent's continuation.
  Rng B(5);
  (void)B.fork();
  EXPECT_EQ(A.next(), B.next()); // parents stay in sync
  bool Diff = false;
  Rng A2(5);
  Rng Child2 = A2.fork();
  for (int I = 0; I < 5; ++I)
    Diff |= Child.next() != A.next();
  (void)Child2;
  EXPECT_TRUE(Diff);
}

//===----------------------------------------------------------------------===//
// SourceLoc / Diagnostics
//===----------------------------------------------------------------------===//

TEST(SourceLoc, RenderAndValidity) {
  SourceManager SM;
  uint32_t Id = SM.addFile("app.air");
  EXPECT_EQ(SM.render(SourceLoc(Id, 3, 7)), "app.air:3:7");
  EXPECT_EQ(SM.render(SourceLoc()), "<builtin>");
  EXPECT_FALSE(SourceLoc().isValid());
  EXPECT_TRUE(SourceLoc(Id, 1, 1).isValid());
}

TEST(Diagnostics, CountsErrorsOnly) {
  SourceManager SM;
  DiagnosticEngine D(SM);
  D.warning(SourceLoc(), "a warning");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc(), "an error");
  D.note(SourceLoc(), "a note");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.diagnostics().size(), 3u);
}

TEST(Diagnostics, PrintIncludesSeverityAndLocation) {
  SourceManager SM;
  uint32_t Id = SM.addFile("x.air");
  DiagnosticEngine D(SM);
  D.error(SourceLoc(Id, 2, 4), "bad things");
  std::ostringstream OS;
  D.print(OS);
  EXPECT_EQ(OS.str(), "x.air:2:4: error: bad things\n");
  EXPECT_TRUE(D.containsMessage("bad"));
  EXPECT_FALSE(D.containsMessage("good"));
}

//===----------------------------------------------------------------------===//
// Statistic
//===----------------------------------------------------------------------===//

TEST(Statistic, AddSetGet) {
  StatRegistry S;
  EXPECT_EQ(S.get("x"), 0u);
  S.add("x");
  S.add("x", 4);
  EXPECT_EQ(S.get("x"), 5u);
  S.set("x", 2);
  EXPECT_EQ(S.get("x"), 2u);
  S.clear();
  EXPECT_EQ(S.get("x"), 0u);
}

//===----------------------------------------------------------------------===//
// Casting
//===----------------------------------------------------------------------===//

namespace casting {
struct Base {
  int Kind;
  explicit Base(int K) : Kind(K) {}
};
struct DerivedA : Base {
  DerivedA() : Base(0) {}
  static bool classof(const Base *B) { return B->Kind == 0; }
};
struct DerivedB : Base {
  DerivedB() : Base(1) {}
  static bool classof(const Base *B) { return B->Kind == 1; }
};
} // namespace casting

TEST(Casting, IsaCastDynCast) {
  casting::DerivedA A;
  casting::Base *B = &A;
  EXPECT_TRUE(isa<casting::DerivedA>(B));
  EXPECT_FALSE(isa<casting::DerivedB>(B));
  EXPECT_EQ(cast<casting::DerivedA>(B), &A);
  EXPECT_EQ(dyn_cast<casting::DerivedB>(B), nullptr);
  EXPECT_EQ(dyn_cast<casting::DerivedA>(B), &A);
}

//===----------------------------------------------------------------------===//
// Deadline
//===----------------------------------------------------------------------===//

TEST(Deadline, NoBudgetNeverExpiresOnItsOwn) {
  support::Deadline D;
  // Drive past the 64-poll clock amortization window several times.
  for (int I = 0; I < 1000; ++I)
    EXPECT_FALSE(D.expired());
  EXPECT_NO_THROW(D.check("test"));
}

TEST(Deadline, CancelLatchesAndCheckThrows) {
  support::Deadline D;
  EXPECT_FALSE(D.expired());
  D.cancel();
  EXPECT_TRUE(D.expired());
  EXPECT_TRUE(D.expired()); // latches
  try {
    D.check("pointsto");
    FAIL() << "check() did not throw";
  } catch (const support::DeadlineExceeded &E) {
    EXPECT_EQ(E.where(), "pointsto");
    EXPECT_NE(std::string(E.what()).find("pointsto"), std::string::npos);
  }
}

TEST(Deadline, ElapsedBudgetExpiresWithinThePollWindow) {
  // A budget already in the past: expiry must surface within one
  // 64-poll amortization window.
  support::Deadline D(1e-9);
  bool Expired = false;
  for (int I = 0; I < 128 && !Expired; ++I)
    Expired = D.expired();
  EXPECT_TRUE(Expired);
  EXPECT_TRUE(D.expired()); // latches
}

TEST(Deadline, DeadlineExceededIsNotARuntimeError) {
  // The batch boundary tells timed-out from crashed by type; a refactor
  // that derives DeadlineExceeded from runtime_error would silently
  // reclassify every timeout as a crash.
  support::DeadlineExceeded E("x");
  EXPECT_EQ(dynamic_cast<std::runtime_error *>(
                static_cast<std::exception *>(&E)),
            nullptr);
}

} // namespace
