//===- tests/FuzzTest.cpp - Random-program properties ----------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// Adversarial counterpart to PropertyTest: the same whole-pipeline
// properties, but over seeded *random* programs whose bug structure
// nobody curated. Anything that holds here holds by construction of the
// analyses, not of the corpus.
//
//===----------------------------------------------------------------------===//

#include "analysis/AllocFlow.h"
#include "analysis/Guards.h"
#include "analysis/Nullness.h"
#include "corpus/RandomApp.h"
#include "frontend/Frontend.h"
#include "interp/Interp.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "report/Nadroid.h"

#include <gtest/gtest.h>

using namespace nadroid;

namespace {

class FuzzTest : public ::testing::TestWithParam<uint64_t> {
protected:
  std::unique_ptr<ir::Program> generate() {
    corpus::RandomAppOptions O;
    O.Seed = GetParam();
    O.Activities = 2 + GetParam() % 2;
    O.FieldsPerActivity = 2;
    O.CallbacksPerActivity = 4 + GetParam() % 3;
    return corpus::generateRandomApp(O);
  }
};

TEST_P(FuzzTest, GeneratedProgramsAreVerifierClean) {
  auto P = generate();
  DiagnosticEngine Diags(P->sourceManager());
  EXPECT_TRUE(ir::verifyProgram(*P, Diags)) << [&] {
    std::ostringstream OS;
    Diags.print(OS);
    return OS.str();
  }();
}

TEST_P(FuzzTest, PrintParseRoundTripPreservesAnalysis) {
  auto P = generate();
  std::string Text = ir::programToString(*P);
  frontend::ParseResult Reparsed =
      frontend::parseProgramText(Text, "fuzz.air", P->name());
  ASSERT_TRUE(Reparsed.Success) << Text.substr(0, 2000);
  report::NadroidResult R1 = report::analyzeProgram(*P);
  report::NadroidResult R2 = report::analyzeProgram(*Reparsed.Prog);
  EXPECT_EQ(R1.warnings().size(), R2.warnings().size());
  EXPECT_EQ(R1.Pipeline.RemainingAfterUnsound,
            R2.Pipeline.RemainingAfterUnsound);
}

TEST_P(FuzzTest, PipelineIsDeterministic) {
  auto P = generate();
  report::NadroidResult R1 = report::analyzeProgram(*P);
  report::NadroidResult R2 = report::analyzeProgram(*P);
  ASSERT_EQ(R1.warnings().size(), R2.warnings().size());
  for (size_t I = 0; I < R1.warnings().size(); ++I)
    EXPECT_EQ(R1.warnings()[I].key(), R2.warnings()[I].key());
}

TEST_P(FuzzTest, WitnessesAreDetectedAndNeverSoundPruned) {
  auto P = generate();
  report::NadroidResult R = report::analyzeProgram(*P);

  interp::ExploreOptions Opts;
  Opts.Schedules = 120;
  Opts.Seed = GetParam() * 7919 + 1;
  interp::ScheduleExplorer Explorer(*P, Opts);

  for (const interp::UafWitness &W : Explorer.explore()) {
    // Sequential same-callback bugs are excluded by construction, so
    // every witness must be a detected racy pair...
    const filters::WarningVerdict *V = nullptr;
    for (size_t I = 0; I < R.warnings().size(); ++I)
      if (R.warnings()[I].Use == W.Use && R.warnings()[I].Free == W.Free)
        V = &R.Pipeline.Verdicts[I];
    ASSERT_NE(V, nullptr)
        << "witnessed but undetected: "
        << W.Use->field()->qualifiedName() << " use in "
        << W.Use->parentMethod()->qualifiedName() << ", free in "
        << W.Free->parentMethod()->qualifiedName();
    // ...and the sound filters must not have pruned it.
    EXPECT_NE(V->StageReached,
              filters::WarningVerdict::Stage::PrunedBySound)
        << "sound-pruned a witnessed pair: "
        << W.Use->field()->qualifiedName();
  }
}

TEST_P(FuzzTest, DataflowGuardsSubsumeSyntactic) {
  // The nullness analysis must prove everything the paper-faithful
  // syntactic guard/alloc analyses prove (it may prove strictly more —
  // the §8.7 inter-procedural shapes). Per load:
  //   syntactically guarded        => dataflow guarded
  //   syntactically alloc-protected => dataflow alloc-protected
  auto P = generate();
  analysis::NullnessAnalysis NA(*P);
  for (const auto &C : P->classes()) {
    for (const auto &M : C->methods()) {
      analysis::GuardAnalysis GA(*M);
      analysis::AllocFlowResult AF =
          analysis::analyzeAllocFlow(*M, /*TreatCallResultAsAlloc=*/false);
      ir::forEachStmt(*M, [&](const ir::Stmt &S) {
        const auto *L = dyn_cast<ir::LoadStmt>(&S);
        if (!L)
          return;
        if (GA.isGuarded(L))
          EXPECT_TRUE(NA.isGuarded(L))
              << "syntactically guarded load lost in "
              << M->qualifiedName();
        if (AF.ProtectedLoads.count(L))
          EXPECT_TRUE(NA.isAllocProtected(L))
              << "syntactically alloc-protected load lost in "
              << M->qualifiedName();
      });
    }
  }

  // Pipeline-level corollary: every warning the sound stage prunes in
  // syntactic mode is also sound-pruned in (default) dataflow mode.
  report::NadroidOptions Syn;
  Syn.DataflowGuards = false;
  report::NadroidResult RSyn = report::analyzeProgram(*P, Syn);
  report::NadroidResult RDf = report::analyzeProgram(*P);
  ASSERT_EQ(RSyn.warnings().size(), RDf.warnings().size());
  for (size_t I = 0; I < RSyn.warnings().size(); ++I) {
    ASSERT_EQ(RSyn.warnings()[I].key(), RDf.warnings()[I].key());
    if (RSyn.Pipeline.Verdicts[I].StageReached ==
        filters::WarningVerdict::Stage::PrunedBySound)
      EXPECT_EQ(RDf.Pipeline.Verdicts[I].StageReached,
                filters::WarningVerdict::Stage::PrunedBySound)
          << RSyn.warnings()[I].key();
  }
}

TEST_P(FuzzTest, CoarserContextsNeverLoseWarnings) {
  auto P = generate();
  report::NadroidOptions K1;
  K1.K = 1;
  report::NadroidResult R1 = report::analyzeProgram(*P, K1);
  report::NadroidResult R2 = report::analyzeProgram(*P);
  std::set<std::string> Coarse;
  for (const race::UafWarning &W : R1.warnings())
    Coarse.insert(W.key());
  for (const race::UafWarning &W : R2.warnings())
    EXPECT_TRUE(Coarse.count(W.key())) << W.key();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range<uint64_t>(1, 21));

} // namespace
