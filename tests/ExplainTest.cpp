//===- tests/ExplainTest.cpp - Verdict explanation tests --------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "corpus/Patterns.h"
#include "ir/IRBuilder.h"
#include "report/Explain.h"

#include <functional>

#include <gtest/gtest.h>

using namespace nadroid;
using namespace nadroid::ir;

namespace {

/// Emits one pattern, analyzes, and returns the explanation lines of the
/// warning whose use sits in the seed's use method.
std::vector<std::string> explainPattern(
    const std::function<void(corpus::PatternEmitter &)> &Emit,
    report::NadroidOptions Opts = {}) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  Emit(E);
  report::NadroidResult R = report::analyzeProgram(P, Opts);
  EXPECT_FALSE(E.seeds().empty());
  for (size_t I = 0; I < R.warnings().size(); ++I)
    if (R.warnings()[I].Use->parentMethod()->qualifiedName() ==
        E.seeds()[0].UseMethod)
      return report::explainVerdict(R, I);
  ADD_FAILURE() << "seeded warning not found";
  return {};
}

bool anyLineContains(const std::vector<std::string> &Lines,
                     const std::string &Needle) {
  for (const std::string &L : Lines)
    if (L.find(Needle) != std::string::npos)
      return true;
  return false;
}

TEST(Explain, MhbServiceMentionsTheBindingOrder) {
  auto Lines = explainPattern(
      [](corpus::PatternEmitter &E) { E.falseMhbService(1); });
  EXPECT_TRUE(anyLineContains(Lines, "MHB-Service"));
  EXPECT_TRUE(anyLineContains(Lines, "same binding"));
}

TEST(Explain, MhbLifecycleMentionsOnDestroy) {
  auto Lines = explainPattern(
      [](corpus::PatternEmitter &E) { E.falseMhbLifecycle(1); });
  EXPECT_TRUE(anyLineContains(Lines, "MHB-Lifecycle"));
  EXPECT_TRUE(anyLineContains(Lines, "onDestroy"));
}

TEST(Explain, MhbAsyncMentionsTaskOrder) {
  auto Lines = explainPattern(
      [](corpus::PatternEmitter &E) { E.falseMhbAsync(); });
  EXPECT_TRUE(anyLineContains(Lines, "MHB-AsyncTask"));
}

TEST(Explain, IgMentionsLooperAtomicity) {
  auto Lines =
      explainPattern([](corpus::PatternEmitter &E) { E.falseIg(1); });
  EXPECT_TRUE(anyLineContains(Lines, "IG:"));
  EXPECT_TRUE(anyLineContains(Lines, "atomically on the UI looper"));
}

TEST(Explain, ChbMentionsCancellation) {
  auto Lines =
      explainPattern([](corpus::PatternEmitter &E) { E.falseChb(); });
  EXPECT_TRUE(anyLineContains(Lines, "CHB"));
  EXPECT_TRUE(anyLineContains(Lines, "cancels"));
}

TEST(Explain, RefuteAnnotatesProvedSuppressions) {
  report::NadroidOptions Opts;
  Opts.Refute = true;
  auto Lines = explainPattern(
      [](corpus::PatternEmitter &E) { E.rhbProved(); }, Opts);
  EXPECT_TRUE(anyLineContains(Lines, "RHB"));
  EXPECT_TRUE(anyLineContains(Lines, "[provenance: proved"));
  EXPECT_TRUE(anyLineContains(Lines, "revive"));
}

TEST(Explain, RefuteAnnotatesDemotedSuppressionsWithAHistory) {
  report::NadroidOptions Opts;
  Opts.Refute = true;
  auto Lines = explainPattern(
      [](corpus::PatternEmitter &E) { E.chbRacy(); }, Opts);
  EXPECT_TRUE(anyLineContains(Lines, "CHB"));
  EXPECT_TRUE(anyLineContains(Lines, "[provenance: assumed"));
  EXPECT_TRUE(anyLineContains(Lines, "counterexample history"));
  // The history runs the use after the free and ends at the crash.
  EXPECT_TRUE(anyLineContains(Lines, "crash"));
}

TEST(Explain, WithoutRefuteNoProvenanceSuffixAppears) {
  auto Lines =
      explainPattern([](corpus::PatternEmitter &E) { E.rhbProved(); });
  EXPECT_TRUE(anyLineContains(Lines, "RHB"));
  EXPECT_FALSE(anyLineContains(Lines, "[provenance:"));
}

TEST(Explain, RemainingWarningSaysWhyNothingApplied) {
  auto Lines =
      explainPattern([](corpus::PatternEmitter &E) { E.harmfulEcEc(); });
  EXPECT_TRUE(anyLineContains(Lines, "no happens-before order"));
}

TEST(Explain, OneLinePerThreadPair) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.harmfulEcEc();
  report::NadroidResult R = report::analyzeProgram(P);
  ASSERT_EQ(R.warnings().size(), 1u);
  auto Lines = report::explainVerdict(R, 0);
  EXPECT_EQ(Lines.size(), R.warnings()[0].Pairs.size());
  std::string Rendered = report::renderExplanation(R, 0);
  EXPECT_NE(Rendered.find("  why: "), std::string::npos);
}

} // namespace
