//===- tests/AidsTest.cpp - Escape, DOT, call paths, engine masks -----------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/Escape.h"
#include "threadify/Threadifier.h"
#include "corpus/Evaluate.h"
#include "corpus/Patterns.h"
#include "ir/IRBuilder.h"
#include "report/Dot.h"
#include "report/Nadroid.h"

#include <gtest/gtest.h>

using namespace nadroid;
using namespace nadroid::ir;

namespace {

//===----------------------------------------------------------------------===//
// Thread-escape analysis
//===----------------------------------------------------------------------===//

TEST(Escape, SharedComponentEscapesCallbackLocalDoesNot) {
  Program P("t");
  IRBuilder B(P);
  Clazz *Payload = B.makeClass("Pl", ClassKind::Plain);
  B.makeMethod(Payload, "use");
  B.emitReturn();
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  Field *F = B.addField(Act, "f", Payload);
  P.addManifestComponent(Act);
  B.makeMethod(Act, "onCreate");
  Local *Shared = B.emitNew("s", Payload);
  B.emitStore(B.thisLocal(), F, Shared);
  // A callback-local allocation nobody else sees.
  B.makeMethod(Act, "onClick");
  Local *LocalOnly = B.emitNew("l", Payload);
  B.emitStore(LocalOnly, F, nullptr); // field write keeps it "accessed"
  // Another callback touching the component's field.
  B.makeMethod(Act, "onLongClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), F);

  android::ApiIndex Apis(P);
  threadify::ThreadForest Forest = threadify::threadify(P);
  analysis::PointsToAnalysis PTA(P, Forest, Apis);
  PTA.run();
  analysis::ThreadReach Reach(PTA, Forest);
  analysis::EscapeAnalysis Escape(PTA, Reach, Forest);

  // The synthetic activity object is touched by all three callbacks.
  analysis::ObjectId ActObj = 0;
  ASSERT_TRUE(PTA.syntheticObjectFor(Act, ActObj));
  EXPECT_TRUE(Escape.escapes(ActObj));
  EXPECT_GE(Escape.accessors(ActObj).size(), 2u);

  // The onClick-local payload is touched by one thread only.
  bool FoundLocal = false;
  for (analysis::ObjectId Obj = 0; Obj < PTA.objectCount(); ++Obj) {
    const analysis::AbstractObject &AO = PTA.object(Obj);
    if (!AO.Site || AO.Site->parentMethod()->name() != "onClick")
      continue;
    FoundLocal = true;
    EXPECT_FALSE(Escape.escapes(Obj));
  }
  EXPECT_TRUE(FoundLocal);
}

TEST(Escape, EventCallbacksAloneMakeObjectsEscape) {
  // The crux of threadification: two *callbacks* (no native threads)
  // suffice for an escape — a conventional thread-based analysis would
  // have called this object thread-local.
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.harmfulEcEc();

  android::ApiIndex Apis(P);
  threadify::ThreadForest Forest = threadify::threadify(P);
  analysis::PointsToAnalysis PTA(P, Forest, Apis);
  PTA.run();
  analysis::ThreadReach Reach(PTA, Forest);
  analysis::EscapeAnalysis Escape(PTA, Reach, Forest);
  EXPECT_FALSE(Escape.escapingObjects().empty());
}

TEST(Escape, PostedCallbackCaptureSharesTheActivity) {
  // A runnable capturing the activity (the refuter's phb shapes): the
  // activity object must be accessed by both the posting UI callback and
  // the posted-callback thread, and therefore escape.
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.phbRacy();

  android::ApiIndex Apis(P);
  threadify::ThreadForest Forest = threadify::threadify(P);
  analysis::PointsToAnalysis PTA(P, Forest, Apis);
  PTA.run();
  analysis::ThreadReach Reach(PTA, Forest);
  analysis::EscapeAnalysis Escape(PTA, Reach, Forest);

  const Clazz *Act = P.findClass("Act0");
  ASSERT_NE(Act, nullptr);
  analysis::ObjectId ActObj = 0;
  ASSERT_TRUE(PTA.syntheticObjectFor(Act, ActObj));
  EXPECT_TRUE(Escape.escapes(ActObj));
  bool PosterSeen = false, PosteeSeen = false;
  for (const threadify::ModeledThread *T : Escape.accessors(ActObj)) {
    PosterSeen |= T->origin() == threadify::ThreadOrigin::EntryCallback;
    PosteeSeen |= T->origin() == threadify::ThreadOrigin::PostedCallback;
  }
  EXPECT_TRUE(PosterSeen) << "posting callback must access the activity";
  EXPECT_TRUE(PosteeSeen) << "posted runnable must access the activity";

  // The capturing runnable itself escapes: the poster writes its act
  // field, the postee reads it back.
  bool RunnableEscapes = false;
  for (analysis::ObjectId Obj = 0; Obj < PTA.objectCount(); ++Obj) {
    const analysis::AbstractObject &AO = PTA.object(Obj);
    if (AO.Site && AO.RuntimeClass &&
        AO.RuntimeClass->kind() == ClassKind::Runnable)
      RunnableEscapes |= Escape.escapes(Obj);
  }
  EXPECT_TRUE(RunnableEscapes);
}

TEST(Escape, ReallocatingCallbackIsAnAccessorOfTheActivity) {
  // The rhbProved shape re-allocates the field in onResume. The
  // re-allocating store makes the onResume thread an accessor of the
  // activity object — the fact the refuter's escape gate relies on when
  // it checks that no native accessor can reach the field.
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.rhbProved();

  android::ApiIndex Apis(P);
  threadify::ThreadForest Forest = threadify::threadify(P);
  analysis::PointsToAnalysis PTA(P, Forest, Apis);
  PTA.run();
  analysis::ThreadReach Reach(PTA, Forest);
  analysis::EscapeAnalysis Escape(PTA, Reach, Forest);

  const Clazz *Act = P.findClass("Act0");
  ASSERT_NE(Act, nullptr);
  analysis::ObjectId ActObj = 0;
  ASSERT_TRUE(PTA.syntheticObjectFor(Act, ActObj));
  EXPECT_TRUE(Escape.escapes(ActObj));

  std::set<std::string> Callbacks;
  bool AllOnLooper = true;
  for (const threadify::ModeledThread *T : Escape.accessors(ActObj)) {
    if (T->callback())
      Callbacks.insert(T->callback()->name());
    AllOnLooper &= T->onLooper();
  }
  // Writer generations (onCreate, onResume), the freeing onPause, and
  // the reading onClick all access the one activity object.
  EXPECT_TRUE(Callbacks.count("onCreate"));
  EXPECT_TRUE(Callbacks.count("onResume"));
  EXPECT_TRUE(Callbacks.count("onPause"));
  EXPECT_TRUE(Callbacks.count("onClick"));
  EXPECT_TRUE(AllOnLooper) << "no native accessor — the refuter may prove";
}

//===----------------------------------------------------------------------===//
// DOT export
//===----------------------------------------------------------------------===//

TEST(Dot, ForestStructureAndStyles) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.harmfulCNt();
  report::NadroidResult R = report::analyzeProgram(P);

  std::string Dot = report::threadForestToDot(*R.Forest);
  EXPECT_NE(Dot.find("digraph nadroid"), std::string::npos);
  EXPECT_NE(Dot.find("label=\"main\""), std::string::npos);
  EXPECT_NE(Dot.find("doublecircle"), std::string::npos); // native thread
  // One edge per non-root thread.
  size_t Edges = 0, Pos = 0;
  while ((Pos = Dot.find(" -> ", Pos)) != std::string::npos) {
    ++Edges;
    Pos += 4;
  }
  EXPECT_EQ(Edges, R.Forest->threads().size() - 1);
}

TEST(Dot, AnalysisOverlayAddsRaceEdges) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.harmfulEcEc();
  report::NadroidResult R = report::analyzeProgram(P);
  std::string Dot = report::analysisToDot(R);
  EXPECT_NE(Dot.find("label=\"UAF\""), std::string::npos);
  EXPECT_NE(Dot.find("color=red"), std::string::npos);
}

TEST(Dot, CleanAppHasNoRaceEdges) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.falseIa(1);
  report::NadroidResult R = report::analyzeProgram(P);
  std::string Dot = report::analysisToDot(R);
  EXPECT_EQ(Dot.find("label=\"UAF\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Call paths (§7)
//===----------------------------------------------------------------------===//

TEST(CallPath, ReconstructsHelperChain) {
  Program P("t");
  IRBuilder B(P);
  Clazz *Payload = B.makeClass("Pl", ClassKind::Plain);
  B.makeMethod(Payload, "use");
  B.emitReturn();
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  Field *F = B.addField(Act, "f", Payload);
  P.addManifestComponent(Act);
  B.makeMethod(Act, "onCreate");
  Local *X = B.emitNew("x", Payload);
  B.emitStore(B.thisLocal(), F, X);
  // onClick -> outer -> inner -> use
  B.makeMethod(Act, "inner");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), F);
  B.emitCall(nullptr, U, "use");
  B.makeMethod(Act, "outer");
  B.emitCall(nullptr, B.thisLocal(), "inner");
  B.makeMethod(Act, "onClick");
  B.emitCall(nullptr, B.thisLocal(), "outer");
  B.makeMethod(Act, "onCreateOptionsMenu");
  B.emitStore(B.thisLocal(), F, nullptr);

  report::NadroidResult R = report::analyzeProgram(P);
  ASSERT_FALSE(R.remainingIndices().empty());
  size_t I = R.remainingIndices()[0];
  const race::ThreadPair &TP = R.Pipeline.Verdicts[I].PairsRemaining[0];
  std::vector<const Method *> Path =
      report::callPathTo(R, TP.UseThread, R.warnings()[I].Use);
  EXPECT_EQ(report::renderCallPath(Path),
            "Act.onClick > Act.outer > Act.inner");

  // And the rendered warning shows it.
  std::string Text = report::renderWarning(R, I, P);
  EXPECT_NE(Text.find("use path"), std::string::npos);
}

TEST(CallPath, DirectSiteIsSingleHop) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.harmfulEcEc();
  report::NadroidResult R = report::analyzeProgram(P);
  ASSERT_FALSE(R.remainingIndices().empty());
  size_t I = R.remainingIndices()[0];
  const race::ThreadPair &TP = R.Pipeline.Verdicts[I].PairsRemaining[0];
  std::vector<const Method *> Path =
      report::callPathTo(R, TP.UseThread, R.warnings()[I].Use);
  ASSERT_EQ(Path.size(), 1u);
  EXPECT_EQ(Path[0], TP.UseThread->callback());
}

//===----------------------------------------------------------------------===//
// FilterEngine masks
//===----------------------------------------------------------------------===//

TEST(Engine, PruneMaskRespectsSubsets) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.falseMhbLifecycle(1); // MHB target
  E.falseIa(1);           // IA target

  report::NadroidResult R = report::analyzeProgram(P);
  filters::FilterEngine Engine(*R.FilterCtx);
  auto MaskMhb =
      Engine.pruneMask(R.warnings(), {filters::FilterKind::MHB});
  auto MaskIa = Engine.pruneMask(R.warnings(), {filters::FilterKind::IA});
  auto MaskBoth = Engine.pruneMask(
      R.warnings(), {filters::FilterKind::MHB, filters::FilterKind::IA});

  unsigned Mhb = 0, Ia = 0, Both = 0;
  for (size_t I = 0; I < R.warnings().size(); ++I) {
    Mhb += MaskMhb[I];
    Ia += MaskIa[I];
    Both += MaskBoth[I];
    // Union semantics: anything a single filter prunes, the pair does.
    EXPECT_TRUE(!MaskMhb[I] || MaskBoth[I]);
    EXPECT_TRUE(!MaskIa[I] || MaskBoth[I]);
  }
  EXPECT_EQ(Mhb, 1u);
  EXPECT_EQ(Ia, 1u);
  EXPECT_EQ(Both, 2u);
}

//===----------------------------------------------------------------------===//
// Evaluate harness
//===----------------------------------------------------------------------===//

TEST(Evaluate, InterpreterModeMatchesSeededModeOnCleanApp) {
  corpus::CorpusApp App = corpus::buildAppNamed("ToDoList");
  corpus::EvaluateOptions Fast;
  Fast.RunInterpreter = false;
  corpus::AppEvaluation E1 = corpus::evaluateApp(App, Fast);
  corpus::CorpusApp App2 = corpus::buildAppNamed("ToDoList");
  corpus::AppEvaluation E2 = corpus::evaluateApp(App2);
  EXPECT_EQ(E1.TrueHarmful, E2.TrueHarmful);
  EXPECT_EQ(E1.Potential, E2.Potential);
  EXPECT_EQ(E1.AfterUnsound, E2.AfterUnsound);
}

TEST(Evaluate, FindSeedByField) {
  corpus::CorpusApp App = corpus::buildAppNamed("ConnectBot");
  ASSERT_FALSE(App.Seeds.empty());
  const corpus::SeededBug *Seed =
      corpus::findSeed(App, App.Seeds[0].FieldName);
  ASSERT_NE(Seed, nullptr);
  EXPECT_EQ(Seed->FieldName, App.Seeds[0].FieldName);
  EXPECT_EQ(corpus::findSeed(App, "No.SuchField"), nullptr);
}

} // namespace
