//===- tests/ReportTest.cpp - Classification and reporting tests ----------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "corpus/Patterns.h"
#include "ir/IRBuilder.h"
#include "report/Json.h"
#include "report/Nadroid.h"

#include <gtest/gtest.h>

#include <clocale>

using namespace nadroid;
using namespace nadroid::ir;
using report::PairType;

namespace {

TEST(Json, FixedIsLocaleIndependent) {
  EXPECT_EQ(report::jsonFixed(0.5, 6), "0.500000");
  EXPECT_EQ(report::jsonFixed(-1.25, 2), "-1.25");
  EXPECT_EQ(report::jsonFixed(3.0, 1), "3.0");
  EXPECT_EQ(report::jsonFixed(0.0, 6), "0.000000");

  // Under a comma-decimal locale, printf("%f") emits "0,5" — invalid
  // JSON. jsonFixed must still emit a '.'; skip quietly when the image
  // carries no such locale.
  std::string Old = std::setlocale(LC_NUMERIC, nullptr);
  bool HaveLocale = std::setlocale(LC_NUMERIC, "de_DE.UTF-8") != nullptr ||
                    std::setlocale(LC_NUMERIC, "de_DE.utf8") != nullptr;
  if (HaveLocale) {
    EXPECT_EQ(report::jsonFixed(0.5, 6), "0.500000");
    EXPECT_EQ(report::jsonFixed(-12.75, 2), "-12.75");
  }
  std::setlocale(LC_NUMERIC, Old.c_str());
}

TEST(Json, UnescapeInvertsEscape) {
  const std::string Raw = "a\"b\\c\nd\te\rf";
  EXPECT_EQ(report::jsonUnescape(report::jsonEscape(Raw)), Raw);
  EXPECT_EQ(report::jsonUnescape("plain"), "plain");
  EXPECT_EQ(report::jsonUnescape("\\u0041"), "A");
}

TEST(Report, PairTypeNames) {
  EXPECT_STREQ(report::pairTypeName(PairType::EcEc), "EC-EC");
  EXPECT_STREQ(report::pairTypeName(PairType::EcPc), "EC-PC");
  EXPECT_STREQ(report::pairTypeName(PairType::PcPc), "PC-PC");
  EXPECT_STREQ(report::pairTypeName(PairType::CRt), "C-RT");
  EXPECT_STREQ(report::pairTypeName(PairType::CNt), "C-NT");
}

/// Each harmful pattern classifies as the pair type it was seeded as.
struct TypeCase {
  const char *Name;
  PairType Type;
};

class ClassifyTest : public ::testing::TestWithParam<TypeCase> {};

TEST_P(ClassifyTest, HarmfulPatternClassifiesAsSeeded) {
  const TypeCase &Case = GetParam();
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.harmfulOfType(Case.Type);
  ASSERT_EQ(E.seeds().size(), 1u);

  report::NadroidResult R = report::analyzeProgram(P);
  std::vector<size_t> Remaining = R.remainingIndices();
  ASSERT_FALSE(Remaining.empty());
  bool Found = false;
  for (size_t I : Remaining) {
    if (R.warnings()[I].Use->parentMethod()->qualifiedName() !=
        E.seeds()[0].UseMethod)
      continue;
    Found = true;
    EXPECT_EQ(report::classifyWarning(
                  *R.Forest, R.Pipeline.Verdicts[I].PairsRemaining),
              Case.Type);
  }
  EXPECT_TRUE(Found);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, ClassifyTest,
    ::testing::Values(TypeCase{"EcEc", PairType::EcEc},
                      TypeCase{"EcPc", PairType::EcPc},
                      TypeCase{"PcPc", PairType::PcPc},
                      TypeCase{"CRt", PairType::CRt},
                      TypeCase{"CNt", PairType::CNt}),
    [](const ::testing::TestParamInfo<TypeCase> &Info) {
      return Info.param.Name;
    });

TEST(Report, RenderWarningContainsTheEssentials) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.harmfulEcPc();
  report::NadroidResult R = report::analyzeProgram(P);
  ASSERT_FALSE(R.remainingIndices().empty());
  std::string Text =
      report::renderWarning(R, R.remainingIndices()[0], P);
  EXPECT_NE(Text.find("potential UAF"), std::string::npos);
  EXPECT_NE(Text.find("use "), std::string::npos);
  EXPECT_NE(Text.find("free"), std::string::npos);
  EXPECT_NE(Text.find("EC-PC"), std::string::npos);
  EXPECT_NE(Text.find("main > "), std::string::npos);
}

TEST(Report, SummaryLineCounts) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.falseMhbLifecycle(2);
  E.harmfulEcEc();
  report::NadroidResult R = report::analyzeProgram(P);
  EXPECT_EQ(report::summaryLine(R),
            "3 potential UAFs, 1 after sound filters, 1 after unsound "
            "filters");
}

/// --refute surfaces per-pair provenance in both renderers: the text
/// report's "suppression:" line and the JSON "decisions" array.
TEST(Report, RefuteProvenanceInTextAndJson) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.chbProved();
  E.phbRacy();
  report::NadroidOptions Opts;
  Opts.Refute = true;
  report::NadroidResult R = report::analyzeProgram(P, Opts);

  std::string Proved, Assumed;
  for (size_t I = 0; I < R.warnings().size(); ++I) {
    std::string Text = report::renderWarning(R, I, P);
    if (Text.find("CHB proved") != std::string::npos)
      Proved = Text;
    if (Text.find("PHB assumed") != std::string::npos)
      Assumed = Text;
  }
  ASSERT_FALSE(Proved.empty()) << "no CHB proved suppression rendered";
  ASSERT_FALSE(Assumed.empty()) << "no PHB assumed suppression rendered";
  EXPECT_NE(Proved.find("suppression: CHB proved"), std::string::npos);
  EXPECT_NE(Assumed.find("suppression: PHB assumed"), std::string::npos);

  // JSON round-trip: the decisions array names the filter, the label,
  // and carries the evidence strings.
  std::string Json = report::renderJson(R, P);
  EXPECT_NE(Json.find("\"decisions\": [{"), std::string::npos);
  EXPECT_NE(Json.find("\"filter\": \"CHB\", \"provenance\": \"proved\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"filter\": \"PHB\", \"provenance\": \"assumed\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"evidence\": [\""), std::string::npos);
}

/// Without --refute the text report has no suppression lines and every
/// JSON decision is heuristic with empty evidence — the default output
/// shape is unchanged.
TEST(Report, NoRefuteKeepsDefaultShape) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.chbProved();
  report::NadroidResult R = report::analyzeProgram(P);
  for (size_t I = 0; I < R.warnings().size(); ++I)
    EXPECT_EQ(report::renderWarning(R, I, P).find("suppression:"),
              std::string::npos);
  std::string Json = report::renderJson(R, P);
  EXPECT_EQ(Json.find("\"provenance\": \"assumed\""), std::string::npos);
  EXPECT_NE(Json.find("\"provenance\": \"heuristic\", \"evidence\": []"),
            std::string::npos);
}

TEST(Report, TimingsPopulated) {
  Program P("t");
  IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.harmfulEcEc();
  report::NadroidResult R = report::analyzeProgram(P);
  EXPECT_GE(R.Timings.ModelingSec, 0.0);
  EXPECT_GE(R.Timings.DetectionSec, 0.0);
  EXPECT_GE(R.Timings.FilteringSec, 0.0);
}

} // namespace
