//===- tests/AndroidTest.cpp - Android model unit tests --------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "android/Api.h"
#include "android/Callbacks.h"
#include "android/SyntacticReach.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace nadroid;
using namespace nadroid::android;
using namespace nadroid::ir;

namespace {

//===----------------------------------------------------------------------===//
// Callback classification
//===----------------------------------------------------------------------===//

TEST(Callbacks, ActivityLifecycleAndUi) {
  EXPECT_EQ(classifyCallback(ClassKind::Activity, "onCreate"),
            CallbackKind::Lifecycle);
  EXPECT_EQ(classifyCallback(ClassKind::Activity, "onDestroy"),
            CallbackKind::Lifecycle);
  EXPECT_EQ(classifyCallback(ClassKind::Activity, "onClick"),
            CallbackKind::Ui);
  EXPECT_EQ(classifyCallback(ClassKind::Activity, "onLocationChanged"),
            CallbackKind::SystemEvent);
  EXPECT_EQ(classifyCallback(ClassKind::Activity, "helper"),
            CallbackKind::None);
}

TEST(Callbacks, ComponentSpecificTables) {
  EXPECT_EQ(classifyCallback(ClassKind::Service, "onStartCommand"),
            CallbackKind::Lifecycle);
  EXPECT_EQ(classifyCallback(ClassKind::Service, "onClick"),
            CallbackKind::None);
  EXPECT_EQ(classifyCallback(ClassKind::Receiver, "onReceive"),
            CallbackKind::Receive);
  EXPECT_EQ(classifyCallback(ClassKind::Handler, "handleMessage"),
            CallbackKind::HandleMessage);
  EXPECT_EQ(classifyCallback(ClassKind::Runnable, "run"),
            CallbackKind::RunnableRun);
  EXPECT_EQ(classifyCallback(ClassKind::ThreadClass, "run"),
            CallbackKind::ThreadRun);
  EXPECT_EQ(
      classifyCallback(ClassKind::ServiceConnection, "onServiceConnected"),
      CallbackKind::ServiceConnect);
  EXPECT_EQ(classifyCallback(ClassKind::Listener, "onClick"),
            CallbackKind::Ui);
}

TEST(Callbacks, AsyncTaskQuartet) {
  EXPECT_EQ(classifyCallback(ClassKind::AsyncTask, "onPreExecute"),
            CallbackKind::AsyncPre);
  EXPECT_EQ(classifyCallback(ClassKind::AsyncTask, "doInBackground"),
            CallbackKind::AsyncBackground);
  EXPECT_EQ(classifyCallback(ClassKind::AsyncTask, "onProgressUpdate"),
            CallbackKind::AsyncProgress);
  EXPECT_EQ(classifyCallback(ClassKind::AsyncTask, "onPostExecute"),
            CallbackKind::AsyncPost);
}

TEST(Callbacks, FragmentCallbacksInvisible) {
  // §8.1: the prototype does not model Fragment.
  EXPECT_EQ(classifyCallback(ClassKind::Fragment, "onResume"),
            CallbackKind::None);
  EXPECT_EQ(classifyCallback(ClassKind::Fragment, "onClick"),
            CallbackKind::None);
}

TEST(Callbacks, EntryVsPostedKinds) {
  EXPECT_TRUE(isEntryCallbackKind(CallbackKind::Lifecycle));
  EXPECT_TRUE(isEntryCallbackKind(CallbackKind::Ui));
  EXPECT_FALSE(isEntryCallbackKind(CallbackKind::HandleMessage));
  EXPECT_TRUE(isPostedCallbackKind(CallbackKind::HandleMessage));
  EXPECT_TRUE(isPostedCallbackKind(CallbackKind::ServiceDisconn));
  EXPECT_FALSE(isPostedCallbackKind(CallbackKind::ThreadRun));
}

TEST(Callbacks, LooperMembership) {
  EXPECT_TRUE(runsOnLooper(CallbackKind::Ui));
  EXPECT_TRUE(runsOnLooper(CallbackKind::AsyncPost));
  EXPECT_FALSE(runsOnLooper(CallbackKind::AsyncBackground));
  EXPECT_FALSE(runsOnLooper(CallbackKind::ThreadRun));
}

//===----------------------------------------------------------------------===//
// Must-happens-before relations (§6.1.1)
//===----------------------------------------------------------------------===//

TEST(Callbacks, LifecycleMhbOnlyCreateAndDestroy) {
  EXPECT_TRUE(lifecycleMustPrecede("onCreate", "onClick"));
  EXPECT_TRUE(lifecycleMustPrecede("onCreate", "onDestroy"));
  EXPECT_TRUE(lifecycleMustPrecede("onClick", "onDestroy"));
  // The back edge makes pause/resume cyclic: no static order.
  EXPECT_FALSE(lifecycleMustPrecede("onResume", "onPause"));
  EXPECT_FALSE(lifecycleMustPrecede("onPause", "onResume"));
  EXPECT_FALSE(lifecycleMustPrecede("onStart", "onStop"));
  EXPECT_FALSE(lifecycleMustPrecede("onCreate", "onCreate"));
  EXPECT_FALSE(lifecycleMustPrecede("onDestroy", "onClick"));
}

TEST(Callbacks, AsyncTaskMhbOrder) {
  using CK = CallbackKind;
  EXPECT_TRUE(asyncTaskMustPrecede(CK::AsyncPre, CK::AsyncBackground));
  EXPECT_TRUE(asyncTaskMustPrecede(CK::AsyncPre, CK::AsyncProgress));
  EXPECT_TRUE(asyncTaskMustPrecede(CK::AsyncPre, CK::AsyncPost));
  EXPECT_TRUE(asyncTaskMustPrecede(CK::AsyncBackground, CK::AsyncPost));
  EXPECT_TRUE(asyncTaskMustPrecede(CK::AsyncProgress, CK::AsyncPost));
  EXPECT_FALSE(asyncTaskMustPrecede(CK::AsyncBackground, CK::AsyncProgress));
  EXPECT_FALSE(asyncTaskMustPrecede(CK::AsyncPost, CK::AsyncPre));
  EXPECT_FALSE(asyncTaskMustPrecede(CK::Ui, CK::AsyncPost));
}

//===----------------------------------------------------------------------===//
// API classification
//===----------------------------------------------------------------------===//

struct ApiFixture {
  Program P{"t"};
  IRBuilder B{P};
  Clazz *Act = nullptr;
  Method *M = nullptr;

  ApiFixture() {
    Act = B.makeClass("Act", ClassKind::Activity);
    M = B.makeMethod(Act, "onCreate");
  }
};

TEST(Api, BindServiceResolvesConnectionArg) {
  ApiFixture F;
  Clazz *Conn =
      F.B.makeClass("Conn", ClassKind::ServiceConnection);
  F.B.setInsertMethod(F.M);
  CallStmt *Call = F.B.emitBindService(Conn);
  ApiCallInfo Info = classifyApiCall(*Call);
  EXPECT_EQ(Info.Kind, ApiKind::BindService);
  EXPECT_EQ(Info.Target, Conn);
}

TEST(Api, BindServiceWithWrongArgKindIsOrdinary) {
  ApiFixture F;
  Clazz *NotConn = F.B.makeClass("NotConn", ClassKind::Plain);
  F.B.setInsertMethod(F.M);
  Local *X = F.B.emitNew("x", NotConn);
  CallStmt *Call =
      F.B.emitCall(nullptr, F.B.thisLocal(), "bindService", {X});
  EXPECT_EQ(classifyApiCall(*Call).Kind, ApiKind::None);
}

TEST(Api, PostRequiresRunnableArgRegardlessOfReceiver) {
  ApiFixture F;
  Clazz *Run = F.B.makeClass("Run", ClassKind::Runnable);
  F.B.setInsertMethod(F.M);
  Local *R = F.B.emitNew("r", Run);
  // Receiver is the activity (a View in real code) — still a post.
  CallStmt *Call = F.B.emitCall(nullptr, F.B.thisLocal(), "post", {R});
  EXPECT_EQ(classifyApiCall(*Call).Kind, ApiKind::HandlerPost);
  EXPECT_EQ(classifyApiCall(*Call).Target, Run);
}

TEST(Api, SendMessageNeedsHandlerReceiver) {
  ApiFixture F;
  Clazz *H = F.B.makeClass("H", ClassKind::Handler);
  F.B.setInsertMethod(F.M);
  Local *HL = F.B.emitNew("h", H);
  CallStmt *Good = F.B.emitCall(nullptr, HL, "sendMessage");
  EXPECT_EQ(classifyApiCall(*Good).Kind, ApiKind::HandlerSend);
  CallStmt *Bad = F.B.emitCall(nullptr, F.B.thisLocal(), "sendMessage");
  EXPECT_EQ(classifyApiCall(*Bad).Kind, ApiKind::None);
}

TEST(Api, ExecuteAndStartDependOnReceiverKind) {
  ApiFixture F;
  Clazz *Task = F.B.makeClass("T", ClassKind::AsyncTask);
  Clazz *Th = F.B.makeClass("W", ClassKind::ThreadClass);
  F.B.setInsertMethod(F.M);
  Local *TL = F.B.emitNew("t", Task);
  Local *WL = F.B.emitNew("w", Th);
  EXPECT_EQ(classifyApiCall(*F.B.emitCall(nullptr, TL, "execute")).Kind,
            ApiKind::AsyncExecute);
  EXPECT_EQ(classifyApiCall(*F.B.emitCall(nullptr, WL, "start")).Kind,
            ApiKind::ThreadStart);
  // "start" on a non-thread receiver is an ordinary call.
  EXPECT_EQ(classifyApiCall(*F.B.emitCall(nullptr, TL, "start")).Kind,
            ApiKind::None);
}

TEST(Api, CancellationApis) {
  ApiFixture F;
  CallStmt *Finish = F.B.emitFinish();
  ApiCallInfo Info = classifyApiCall(*Finish);
  EXPECT_EQ(Info.Kind, ApiKind::Finish);
  EXPECT_EQ(Info.Target, F.Act);
  EXPECT_TRUE(isCancellationApi(ApiKind::Finish));
  EXPECT_TRUE(isCancellationApi(ApiKind::UnbindService));
  EXPECT_TRUE(isCancellationApi(ApiKind::RemoveCallbacks));
  EXPECT_FALSE(isCancellationApi(ApiKind::HandlerPost));

  CallStmt *Unbind = F.B.emitUnbindService();
  ApiCallInfo UInfo = classifyApiCall(*Unbind);
  EXPECT_EQ(UInfo.Kind, ApiKind::UnbindService);
  EXPECT_EQ(UInfo.Target, nullptr); // "all of this component's"
}

TEST(Api, OpaqueArgumentDropsClassification) {
  ApiFixture F;
  // The runnable comes from an unresolved call: static analysis cannot
  // classify the post — the Table 2 imprecision.
  Local *R = F.B.local("r");
  F.B.emitCall(R, F.B.thisLocal(), "somethingOpaque");
  CallStmt *Post = F.B.emitCall(nullptr, F.B.thisLocal(), "post", {R});
  EXPECT_EQ(classifyApiCall(*Post).Kind, ApiKind::None);
}

TEST(Api, IndexMatchesDirectClassification) {
  ApiFixture F;
  Clazz *Run = F.B.makeClass("Run", ClassKind::Runnable);
  F.B.setInsertMethod(F.M);
  CallStmt *Post = F.B.emitRunOnUiThread(Run);
  ApiIndex Index(F.P);
  EXPECT_EQ(Index.lookup(*Post).Kind, ApiKind::RunOnUiThread);
  EXPECT_EQ(Index.lookup(*Post).Target, Run);
}

//===----------------------------------------------------------------------===//
// Syntactic reachability
//===----------------------------------------------------------------------===//

TEST(SyntacticReach, FollowsOrdinaryCallsNotSpawns) {
  Program P("t");
  IRBuilder B(P);
  Clazz *Run = B.makeClass("Run", ClassKind::Runnable);
  Method *RunM = B.makeMethod(Run, "run");
  B.emitReturn();

  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  Method *Helper = B.makeMethod(Act, "helper");
  B.emitReturn();
  Method *Root = B.makeMethod(Act, "onCreate");
  B.emitCall(nullptr, B.thisLocal(), "helper");
  B.emitRunOnUiThread(Run); // spawn edge: must NOT be followed

  ApiIndex Apis(P);
  std::vector<Method *> Reach = collectReachableMethods(Root, Apis);
  EXPECT_NE(std::find(Reach.begin(), Reach.end(), Helper), Reach.end());
  EXPECT_EQ(std::find(Reach.begin(), Reach.end(), RunM), Reach.end());
}

TEST(SyntacticReach, TerminatesOnRecursion) {
  Program P("t");
  IRBuilder B(P);
  Clazz *Act = B.makeClass("Act", ClassKind::Activity);
  Method *M = B.makeMethod(Act, "m");
  B.emitCall(nullptr, B.thisLocal(), "m"); // self-recursive
  ApiIndex Apis(P);
  std::vector<Method *> Reach = collectReachableMethods(M, Apis);
  EXPECT_EQ(Reach.size(), 1u);
}

} // namespace
