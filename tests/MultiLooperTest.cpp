//===- tests/MultiLooperTest.cpp - BackgroundHandler loopers (§8.1 ext) ----------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The paper assumes one looper per component and notes that user-created
// looper threads would force the IG/IA filters to downgrade (§8.1). The
// BackgroundHandler extension models exactly that: its callbacks run on
// their own looper, so atomicity holds only *within* a looper. These
// tests check the static filters and the interpreter agree on every
// combination.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "interp/Interp.h"
#include "report/Nadroid.h"

#include <gtest/gtest.h>

using namespace nadroid;

namespace {

std::unique_ptr<ir::Program> parse(const std::string &Source) {
  frontend::ParseResult R =
      frontend::parseProgramText(Source, "test.air", "test");
  EXPECT_TRUE(R.Success) << [&] {
    std::string S;
    for (const auto &D : R.Diags)
      S += D.Message + "\n";
    return S;
  }();
  return std::move(R.Prog);
}

std::set<interp::UafWitness> explore(const ir::Program &P) {
  interp::ExploreOptions Opts;
  Opts.Schedules = 500;
  Opts.Seed = 37;
  interp::ScheduleExplorer E(P, Opts);
  return E.explore();
}

/// Guarded use in a UI callback, free in a background handler: the check
/// and use are NOT atomic against the other looper.
const char *CrossLooperGuard = R"(
app "t";
manifest A;
class Obj : Plain {
  method use() {
    return;
  }
}
class BgWorker : BackgroundHandler {
  field act : A;
  method handleMessage() {
    a = this.act;
    a.f = null;
  }
}
class A : Activity {
  field f : Obj;
  field bg : BgWorker;
  method onCreate() {
    x = new Obj;
    this.f = x;
    h = new BgWorker;
    h.act = this;
    this.bg = h;
  }
  method onClick() {
    m = this.bg;
    m.sendMessage();
  }
  method onLongClick() {
    g = this.f;
    if (g != null) {
      u = this.f;
      u.use();
    }
  }
}
)";

TEST(MultiLooper, GuardAcrossLoopersIsNotAtomic) {
  auto P = parse(CrossLooperGuard);
  report::NadroidResult R = report::analyzeProgram(*P);
  // The guarded use must survive: IG's atomicity does not span loopers.
  bool GuardedUseRemains = false;
  for (size_t I : R.remainingIndices())
    if (R.warnings()[I].Use->parentMethod()->name() == "onLongClick")
      GuardedUseRemains = true;
  EXPECT_TRUE(GuardedUseRemains);

  // And the interpreter can interleave the background free between the
  // check and the use.
  EXPECT_FALSE(explore(*P).empty());
}

TEST(MultiLooper, GuardOnUiLooperStillAtomic) {
  // The same app with an ordinary (UI) Handler: IG prunes everything and
  // no schedule crashes.
  std::string Source = CrossLooperGuard;
  size_t Pos = Source.find("BackgroundHandler");
  ASSERT_NE(Pos, std::string::npos);
  Source.replace(Pos, std::string("BackgroundHandler").size(), "Handler");
  auto P = parse(Source);
  report::NadroidResult R = report::analyzeProgram(*P);
  for (size_t I : R.remainingIndices())
    EXPECT_NE(R.warnings()[I].Use->parentMethod()->name(), "onLongClick")
        << "same-looper guarded use must be IG-pruned";
  EXPECT_TRUE(explore(*P).empty());
}

TEST(MultiLooper, SameBackgroundLooperIsAtomic) {
  // Two runnables posted through ONE background handler serialize: a
  // guarded use in one cannot be split by the free in the other.
  auto P = parse(R"(
app "t";
manifest A;
class Obj : Plain {
  method use() {
    return;
  }
}
class Bg : BackgroundHandler { }
class UserJob : Runnable {
  field act : A;
  method run() {
    a = this.act;
    g = a.f;
    if (g != null) {
      u = a.f;
      u.use();
    }
  }
}
class FreeJob : Runnable {
  field act : A;
  method run() {
    a = this.act;
    a.f = null;
  }
}
class A : Activity {
  field f : Obj;
  field bg : Bg;
  method onCreate() {
    x = new Obj;
    this.f = x;
    h = new Bg;
    this.bg = h;
  }
  method onClick() {
    m = this.bg;
    r1 = new UserJob;
    r1.act = this;
    m.post(r1);
    r2 = new FreeJob;
    r2.act = this;
    m.post(r2);
  }
}
)");
  report::NadroidResult R = report::analyzeProgram(*P);
  // The guarded use in UserJob.run is IG-pruned: both jobs run on the
  // same background looper.
  for (size_t I : R.remainingIndices())
    EXPECT_NE(R.warnings()[I].Use->parentMethod()->qualifiedName(),
              "UserJob.run");
  EXPECT_TRUE(explore(*P).empty());
}

TEST(MultiLooper, PhbDoesNotSpanLoopers) {
  // onClick sends to a background handler and THEN uses: cross-looper,
  // so the poster's remaining statements race with the postee.
  auto P = parse(R"(
app "t";
manifest A;
class Obj : Plain {
  method use() {
    return;
  }
}
class Bg : BackgroundHandler {
  field act : A;
  method handleMessage() {
    a = this.act;
    a.f = null;
  }
}
class A : Activity {
  field f : Obj;
  field bg : Bg;
  method onCreate() {
    x = new Obj;
    this.f = x;
    h = new Bg;
    h.act = this;
    this.bg = h;
  }
  method onClick() {
    m = this.bg;
    m.sendMessage();
    u = this.f;
    u.use();
  }
}
)");
  report::NadroidResult R = report::analyzeProgram(*P);
  ASSERT_FALSE(R.remainingIndices().empty())
      << "PHB must not order across loopers";
  EXPECT_FALSE(explore(*P).empty());
}

TEST(MultiLooper, PhbStillOrdersWithinUiLooper) {
  // Control: the identical shape through a UI handler is PHB-pruned and
  // unwitnessable (modulo the repeated-onClick caveat, avoided here by
  // re-allocating at the top).
  auto P = parse(R"(
app "t";
manifest A;
class Obj : Plain {
  method use() {
    return;
  }
}
class H : Handler {
  field act : A;
  method handleMessage() {
    a = this.act;
    a.f = null;
  }
}
class A : Activity {
  field f : Obj;
  field h : H;
  method onCreate() {
    x = new Obj;
    this.f = x;
    hh = new H;
    hh.act = this;
    this.h = hh;
  }
  method onClick() {
    y = new Obj;
    this.f = y;
    m = this.h;
    m.sendMessage();
    u = this.f;
    u.use();
  }
}
)");
  report::NadroidResult R = report::analyzeProgram(*P);
  EXPECT_TRUE(R.remainingIndices().empty());
  EXPECT_TRUE(explore(*P).empty());
}

} // namespace
