//===- tests/ExamplesTest.cpp - Shipped .air example apps --------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The example .air files double as end-to-end fixtures: each one's
// analysis outcome is part of the repository's contract (the README and
// the file headers promise specific warnings).
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "interp/Interp.h"
#include "report/Nadroid.h"

#include <gtest/gtest.h>

using namespace nadroid;

namespace {

std::string appPath(const std::string &Name) {
  return std::string(NADROID_SOURCE_DIR) + "/examples/apps/" + Name;
}

report::NadroidResult analyzeExample(const std::string &Name,
                                     std::unique_ptr<ir::Program> &Keep) {
  frontend::ParseResult R = frontend::parseProgramFile(appPath(Name));
  EXPECT_TRUE(R.Success) << Name;
  Keep = std::move(R.Prog);
  return report::analyzeProgram(*Keep);
}

TEST(Examples, ConnectBotHasTheTwoFigure1Bugs) {
  std::unique_ptr<ir::Program> P;
  report::NadroidResult R = analyzeExample("connectbot.air", P);
  ASSERT_EQ(R.Pipeline.RemainingAfterUnsound, 2u);
  std::set<std::string> Fields;
  for (size_t I : R.remainingIndices())
    Fields.insert(R.warnings()[I].F->qualifiedName());
  EXPECT_TRUE(Fields.count("ConsoleActivity.bound"));
  EXPECT_TRUE(Fields.count("ConsoleActivity.hostBridge"));

  interp::ScheduleExplorer Explorer(*P);
  for (size_t I : R.remainingIndices())
    EXPECT_TRUE(Explorer.tryWitness(R.warnings()[I].Use,
                                    R.warnings()[I].Free, 60));
}

TEST(Examples, FireFoxHasTheFigure1cBug) {
  std::unique_ptr<ir::Program> P;
  report::NadroidResult R = analyzeExample("firefox.air", P);
  ASSERT_EQ(R.Pipeline.RemainingAfterUnsound, 1u);
  size_t I = R.remainingIndices()[0];
  EXPECT_EQ(R.warnings()[I].F->qualifiedName(), "GeckoApp.jClient");
  EXPECT_EQ(report::classifyWarning(*R.Forest,
                                    R.Pipeline.Verdicts[I].PairsRemaining),
            report::PairType::CNt);
}

TEST(Examples, MyTracksAsyncDestroyBugConfirmed) {
  std::unique_ptr<ir::Program> P;
  report::NadroidResult R = analyzeExample("mytracks.air", P);
  ASSERT_EQ(R.Pipeline.RemainingAfterUnsound, 1u);
  size_t I = R.remainingIndices()[0];
  EXPECT_EQ(R.warnings()[I].Free->parentMethod()->name(), "onDestroy");
  interp::ScheduleExplorer Explorer(*P);
  EXPECT_TRUE(
      Explorer.tryWitness(R.warnings()[I].Use, R.warnings()[I].Free, 60));
}

TEST(Examples, MessengerIsFullyFiltered) {
  std::unique_ptr<ir::Program> P;
  report::NadroidResult R = analyzeExample("messenger.air", P);
  EXPECT_EQ(R.Pipeline.RemainingAfterUnsound, 0u);
  // Its header promises each of these filters fires somewhere.
  std::set<filters::FilterKind> Fired;
  for (const filters::WarningVerdict &V : R.Pipeline.Verdicts)
    Fired.insert(V.FiredFilters.begin(), V.FiredFilters.end());
  for (filters::FilterKind Kind :
       {filters::FilterKind::IG, filters::FilterKind::IA,
        filters::FilterKind::MHB, filters::FilterKind::CHB,
        filters::FilterKind::PHB})
    EXPECT_TRUE(Fired.count(Kind)) << filters::filterKindName(Kind);

  // And dynamically nothing crashes.
  interp::ExploreOptions Opts;
  Opts.Schedules = 400;
  Opts.Seed = 19;
  interp::ScheduleExplorer Explorer(*P, Opts);
  EXPECT_TRUE(Explorer.explore().empty());
}

} // namespace
