//===- ir/Verifier.h - AIR structural invariants ----------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks structural invariants of an AIR program: locals belong to their
/// enclosing method, fields belong to (a superclass of) a class in the
/// program, superclass chains are acyclic, every used local has at least
/// one definition, and manifest components are component-kind classes.
/// The frontend runs this after parsing; the builder-based corpus runs it
/// in tests.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_IR_VERIFIER_H
#define NADROID_IR_VERIFIER_H

#include "ir/Ir.h"
#include "support/Diagnostics.h"

namespace nadroid::ir {

/// Verifies \p P, reporting problems to \p Diags. Returns true when no
/// errors were found.
bool verifyProgram(const Program &P, DiagnosticEngine &Diags);

} // namespace nadroid::ir

#endif // NADROID_IR_VERIFIER_H
