//===- ir/LocalInfo.h - Intra-method local/use summaries --------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two cheap intra-procedural summaries used throughout the pipeline:
///
///  * inferLocalClasses — the set of classes a local may hold, derived by a
///    flow-insensitive walk over New/Copy defs. This is how the frontend
///    resolves fields on non-this bases, how the android module classifies
///    framework API calls (receiver kind), and how threadification resolves
///    which callback class a registration installs. When a def is opaque
///    (field load, call result, parameter), the summary is marked Unknown —
///    reproducing the static imprecision the paper observes when objects
///    round-trip through the framework (Table 2's detection misses).
///
///  * LoadConsumers — for each LoadStmt, how its destination local is
///    consumed within the method (dereference, call argument, return,
///    null-comparison, stored onward). The UR filter (§6.2.3) prunes uses
///    whose value only flows to returns/arguments/comparisons.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_IR_LOCALINFO_H
#define NADROID_IR_LOCALINFO_H

#include "ir/Stmt.h"

#include <map>
#include <set>

namespace nadroid::ir {

/// Result of inferLocalClasses.
struct LocalClassSet {
  /// Classes from New defs (and `this`).
  std::set<Clazz *> Classes;
  /// True when some def is opaque (load/call/param): the set is a lower
  /// bound on the possible runtime classes.
  bool Unknown = false;

  /// The single inferred class, or nullptr when empty or ambiguous.
  Clazz *uniqueClass() const {
    return (Classes.size() == 1 && !Unknown) ? *Classes.begin() : nullptr;
  }
};

/// Reusable per-method inference: builds the def index once, then answers
/// queries in O(defs of the queried chain). Prefer this over repeated
/// inferLocalClasses calls when classifying many statements of one method.
class LocalTypeInference {
public:
  explicit LocalTypeInference(const Method &M);

  /// The may-class set of \p L.
  LocalClassSet query(const Local *L) const;

private:
  const Method &M;
  std::map<const Local *, std::set<Clazz *>> NewDefs;
  std::map<const Local *, std::set<const Local *>> CopyDefs;
  std::set<const Local *> Opaque;

  void walk(const Local *L, LocalClassSet &Result,
            std::set<const Local *> &Visited) const;
};

/// Computes the may-class set of \p L within \p M (flow-insensitive).
/// One-shot convenience over LocalTypeInference.
LocalClassSet inferLocalClasses(const Method &M, const Local *L);

/// How a loaded value is consumed downstream (flow-insensitive, within the
/// defining method).
struct LoadConsumers {
  bool Dereferenced = false;  ///< used as a call receiver
  bool PassedAsArg = false;   ///< used as a call argument
  bool Returned = false;      ///< used as a return operand
  bool NullCompared = false;  ///< used as an if-null condition
  bool StoredToField = false; ///< stored into some field
  bool CopiedOut = false;     ///< copied to another local
  bool SyncedOn = false;      ///< used as a synchronized lock

  /// The UR-filter notion of a benign use: the value flows only into
  /// returns, call arguments, and null comparisons (§6.2.3).
  bool isReturnOrCompareOnly() const {
    return !Dereferenced && !StoredToField && !CopiedOut && !SyncedOn &&
           (Returned || PassedAsArg || NullCompared);
  }
};

/// Computes consumer summaries for every LoadStmt in \p M.
std::map<const LoadStmt *, LoadConsumers> computeLoadConsumers(const Method &M);

/// True when \p M is a "getter": its body (ignoring guards) just returns
/// the value of a field of `this`. Used by the MA and UR filters.
/// \p FieldOut receives the returned field when the result is true.
bool isGetterMethod(const Method &M, Field **FieldOut = nullptr);

} // namespace nadroid::ir

#endif // NADROID_IR_LOCALINFO_H
