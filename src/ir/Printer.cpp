//===- ir/Printer.cpp - AIR textual output ---------------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include <sstream>

using namespace nadroid;
using namespace nadroid::ir;

namespace {

class PrinterImpl {
public:
  explicit PrinterImpl(std::ostream &OS) : OS(OS) {}

  void printProgram(const Program &P) {
    OS << "app \"" << P.name() << "\";\n";
    for (const Clazz *C : P.manifestComponents())
      OS << "manifest " << C->name() << ";\n";
    for (const auto &C : P.classes()) {
      OS << "\n";
      printClass(*C);
    }
  }

  void printClass(const Clazz &C) {
    OS << "class " << C.name() << " : " << classKindName(C.kind());
    if (C.superClass())
      OS << " extends " << C.superClass()->name();
    if (C.outerClass())
      OS << " outer " << C.outerClass()->name();
    OS << " {\n";
    for (const auto &F : C.fields()) {
      OS << "  field " << F->name();
      if (F->declaredType())
        OS << " : " << F->declaredType()->name();
      OS << ";\n";
    }
    for (const auto &M : C.methods()) {
      OS << "\n";
      printMethod(*M);
    }
    OS << "}\n";
  }

  void printMethod(const Method &M) {
    OS << "  method " << M.name() << "(";
    for (size_t I = 0; I < M.params().size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << M.params()[I]->name();
    }
    OS << ") {\n";
    printBlock(M.body(), 2);
    OS << "  }\n";
  }

  void printBlock(const Block &B, unsigned Depth) {
    for (const auto &S : B.stmts()) {
      indent(Depth);
      printStmt(*S, Depth);
      OS << "\n";
    }
  }

  void printStmt(const Stmt &S, unsigned Depth) {
    switch (S.kind()) {
    case Stmt::Kind::New: {
      const auto *New = cast<NewStmt>(&S);
      OS << New->dst()->name() << " = new " << New->allocClass()->name()
         << ";";
      return;
    }
    case Stmt::Kind::Load: {
      const auto *Load = cast<LoadStmt>(&S);
      OS << Load->dst()->name() << " = " << Load->base()->name() << "."
         << Load->field()->name() << ";";
      return;
    }
    case Stmt::Kind::Store: {
      const auto *Store = cast<StoreStmt>(&S);
      OS << Store->base()->name() << "." << Store->field()->name() << " = "
         << (Store->src() ? Store->src()->name() : "null") << ";";
      return;
    }
    case Stmt::Kind::Copy: {
      const auto *Copy = cast<CopyStmt>(&S);
      OS << Copy->dst()->name() << " = " << Copy->src()->name() << ";";
      return;
    }
    case Stmt::Kind::Call: {
      const auto *Call = cast<CallStmt>(&S);
      if (Call->dst())
        OS << Call->dst()->name() << " = ";
      OS << Call->recv()->name() << "." << Call->callee() << "(";
      for (size_t I = 0; I < Call->args().size(); ++I) {
        if (I != 0)
          OS << ", ";
        OS << Call->args()[I]->name();
      }
      OS << ");";
      return;
    }
    case Stmt::Kind::Return: {
      const auto *Ret = cast<ReturnStmt>(&S);
      if (Ret->src())
        OS << "return " << Ret->src()->name() << ";";
      else
        OS << "return;";
      return;
    }
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(&S);
      switch (If->test()) {
      case IfStmt::TestKind::NotNull:
        OS << "if (" << If->cond()->name() << " != null) {\n";
        break;
      case IfStmt::TestKind::IsNull:
        OS << "if (" << If->cond()->name() << " == null) {\n";
        break;
      case IfStmt::TestKind::Unknown:
        OS << "if (?) {\n";
        break;
      }
      printBlock(If->thenBlock(), Depth + 1);
      if (!If->elseBlock().empty()) {
        indent(Depth);
        OS << "} else {\n";
        printBlock(If->elseBlock(), Depth + 1);
      }
      indent(Depth);
      OS << "}";
      return;
    }
    case Stmt::Kind::Sync: {
      const auto *Sync = cast<SyncStmt>(&S);
      OS << "synchronized (" << Sync->lock()->name() << ") {\n";
      printBlock(Sync->body(), Depth + 1);
      indent(Depth);
      OS << "}";
      return;
    }
    }
  }

private:
  std::ostream &OS;

  void indent(unsigned Depth) {
    for (unsigned I = 0; I < Depth; ++I)
      OS << "  ";
  }
};

} // namespace

void ir::printProgram(const Program &P, std::ostream &OS) {
  PrinterImpl(OS).printProgram(P);
}

std::string ir::programToString(const Program &P) {
  std::ostringstream OS;
  printProgram(P, OS);
  return OS.str();
}

void ir::printStmt(const Stmt &S, std::ostream &OS) {
  PrinterImpl(OS).printStmt(S, 0);
}

void ir::printMethod(const Method &M, std::ostream &OS) {
  PrinterImpl(OS).printMethod(M);
}

std::string ir::methodToString(const Method &M) {
  std::ostringstream OS;
  printMethod(M, OS);
  return OS.str();
}

std::string ir::stmtToString(const Stmt &S) {
  std::ostringstream OS;
  printStmt(S, OS);
  return OS.str();
}
