//===- ir/Stmt.cpp - AIR statement AST implementation ----------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "ir/Stmt.h"

#include <cassert>

using namespace nadroid;
using namespace nadroid::ir;

Block::~Block() = default;

Stmt *Block::append(std::unique_ptr<Stmt> S) {
  assert(S && "appending null statement");
  Stmts.push_back(std::move(S));
  return Stmts.back().get();
}

template <typename BlockT, typename Fn>
static void walkBlock(BlockT &B, const Fn &Callback) {
  for (auto &S : B.stmts()) {
    Callback(*S);
    if (auto *If = dyn_cast<IfStmt>(S.get())) {
      walkBlock(If->thenBlock(), Callback);
      walkBlock(If->elseBlock(), Callback);
    } else if (auto *Sync = dyn_cast<SyncStmt>(S.get())) {
      walkBlock(Sync->body(), Callback);
    }
  }
}

void ir::forEachStmt(const Block &B,
                     const std::function<void(const Stmt &)> &Fn) {
  walkBlock(B, Fn);
}

void ir::forEachStmt(Block &B, const std::function<void(Stmt &)> &Fn) {
  walkBlock(B, Fn);
}

void ir::forEachStmt(const Method &M,
                     const std::function<void(const Stmt &)> &Fn) {
  walkBlock(M.body(), Fn);
}
