//===- ir/Stmt.h - AIR statement AST ----------------------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured statement AST of AIR. Statements are deliberately close
/// to the Jimple subset nAdroid's analyses consume:
///
///   NewStmt      Dst = new C()            — allocation site
///   LoadStmt     Dst = Base.F             — getfield: the "use" of §5
///   StoreStmt    Base.F = Src | null      — putfield: null is the "free"
///   CopyStmt     Dst = Src | this
///   CallStmt     [Dst =] Recv.name(Args)  — virtual invoke (incl. Android
///                                           framework APIs)
///   ReturnStmt   return [Src]
///   IfStmt       if (Cond ==/!= null) Then [else Else]
///   SyncStmt     synchronized (Lock) Body — monitorenter/exit region
///
/// Structured control flow (rather than a CFG) is sufficient: the paper's
/// intra-procedural analyses (if-guard dominance, intra-allocation
/// dataflow) are defined on exactly this nesting structure, and the
/// detector itself is flow-insensitive.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_IR_STMT_H
#define NADROID_IR_STMT_H

#include "ir/Ir.h"
#include "support/Casting.h"

#include <functional>
#include <memory>
#include <vector>

namespace nadroid::ir {

class Stmt;

/// An ordered, owning sequence of statements.
class Block {
public:
  Block() = default;
  Block(const Block &) = delete;
  Block &operator=(const Block &) = delete;
  ~Block();

  Stmt *append(std::unique_ptr<Stmt> S);
  const std::vector<std::unique_ptr<Stmt>> &stmts() const { return Stmts; }
  bool empty() const { return Stmts.empty(); }
  size_t size() const { return Stmts.size(); }

private:
  std::vector<std::unique_ptr<Stmt>> Stmts;
};

/// Base statement. Subclasses carry operands; identity (for "site" keys in
/// the analyses) is the program-unique Id.
class Stmt {
public:
  enum class Kind : uint8_t {
    New,
    Load,
    Store,
    Copy,
    Call,
    Return,
    If,
    Sync,
  };

  Kind kind() const { return K; }
  unsigned id() const { return Id; }
  SourceLoc loc() const { return Loc; }
  /// The method whose body (transitively) contains this statement.
  Method *parentMethod() const { return Parent; }

  /// Rebase hooks for frontend::applyIncrementalEdit, which realigns a
  /// resident program with a fresh parse of the edited file: locations
  /// shift on any formatting edit, and ids shift program-wide when a
  /// body edit changes statement counts (analyses key and sort on them).
  /// Nothing else may mutate a statement after construction.
  void setId(unsigned NewId) { Id = NewId; }
  void setLoc(SourceLoc L) { Loc = L; }

  virtual ~Stmt() = default;

protected:
  Stmt(Kind K, Method *Parent, unsigned Id, SourceLoc Loc)
      : K(K), Parent(Parent), Id(Id), Loc(Loc) {}

private:
  Kind K;
  Method *Parent;
  unsigned Id;
  SourceLoc Loc;
};

/// Dst = new C()
class NewStmt : public Stmt {
public:
  NewStmt(Method *Parent, unsigned Id, SourceLoc Loc, Local *Dst,
          Clazz *AllocClass)
      : Stmt(Kind::New, Parent, Id, Loc), Dst(Dst), AllocClass(AllocClass) {}

  Local *dst() const { return Dst; }
  Clazz *allocClass() const { return AllocClass; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::New; }

private:
  Local *Dst;
  Clazz *AllocClass;
};

/// Dst = Base.F — a getfield, i.e. a potential "use".
class LoadStmt : public Stmt {
public:
  LoadStmt(Method *Parent, unsigned Id, SourceLoc Loc, Local *Dst,
           Local *Base, Field *F)
      : Stmt(Kind::Load, Parent, Id, Loc), Dst(Dst), Base(Base), F(F) {}

  Local *dst() const { return Dst; }
  Local *base() const { return Base; }
  Field *field() const { return F; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Load; }

private:
  Local *Dst;
  Local *Base;
  Field *F;
};

/// Base.F = Src, or Base.F = null when Src is nullptr — a putfield; the
/// null form is the "free" of §5.
class StoreStmt : public Stmt {
public:
  StoreStmt(Method *Parent, unsigned Id, SourceLoc Loc, Local *Base, Field *F,
            Local *Src)
      : Stmt(Kind::Store, Parent, Id, Loc), Base(Base), F(F), Src(Src) {}

  Local *base() const { return Base; }
  Field *field() const { return F; }
  /// nullptr encodes the null constant.
  Local *src() const { return Src; }
  bool isNullStore() const { return Src == nullptr; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Store; }

private:
  Local *Base;
  Field *F;
  Local *Src;
};

/// Dst = Src (Src may be the `this` local).
class CopyStmt : public Stmt {
public:
  CopyStmt(Method *Parent, unsigned Id, SourceLoc Loc, Local *Dst, Local *Src)
      : Stmt(Kind::Copy, Parent, Id, Loc), Dst(Dst), Src(Src) {}

  Local *dst() const { return Dst; }
  Local *src() const { return Src; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Copy; }

private:
  Local *Dst;
  Local *Src;
};

/// [Dst =] Recv.Callee(Args...). All calls are virtual invokes on a
/// receiver local; Android framework APIs are calls whose (receiver kind,
/// name) pair the android module classifies specially.
class CallStmt : public Stmt {
public:
  CallStmt(Method *Parent, unsigned Id, SourceLoc Loc, Local *Dst,
           Local *Recv, std::string Callee, std::vector<Local *> Args)
      : Stmt(Kind::Call, Parent, Id, Loc), Dst(Dst), Recv(Recv),
        Callee(std::move(Callee)), Args(std::move(Args)) {}

  /// nullptr when the result is discarded.
  Local *dst() const { return Dst; }
  Local *recv() const { return Recv; }
  const std::string &callee() const { return Callee; }
  const std::vector<Local *> &args() const { return Args; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Call; }

private:
  Local *Dst;
  Local *Recv;
  std::string Callee;
  std::vector<Local *> Args;
};

/// return [Src]; Src may be nullptr for `return;` / `return null;`.
class ReturnStmt : public Stmt {
public:
  ReturnStmt(Method *Parent, unsigned Id, SourceLoc Loc, Local *Src)
      : Stmt(Kind::Return, Parent, Id, Loc), Src(Src) {}

  Local *src() const { return Src; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }

private:
  Local *Src;
};

/// if (Cond ==/!= null) Then [else Else]. This is the only branch form in
/// AIR — null tests are the only predicates the paper's filters reason
/// about; anything else is abstracted as nondeterministic choice, which we
/// encode by an IfStmt whose Cond carries TestKind::Unknown.
class IfStmt : public Stmt {
public:
  enum class TestKind : uint8_t {
    NotNull, ///< then-branch taken when Cond != null
    IsNull,  ///< then-branch taken when Cond == null
    Unknown, ///< opaque predicate (e.g. a boolean flag) — both reachable
  };

  IfStmt(Method *Parent, unsigned Id, SourceLoc Loc, Local *Cond,
         TestKind Test)
      : Stmt(Kind::If, Parent, Id, Loc), Cond(Cond), Test(Test),
        Then(std::make_unique<Block>()), Else(std::make_unique<Block>()) {}

  /// nullptr when Test is Unknown.
  Local *cond() const { return Cond; }
  TestKind test() const { return Test; }
  Block &thenBlock() { return *Then; }
  const Block &thenBlock() const { return *Then; }
  Block &elseBlock() { return *Else; }
  const Block &elseBlock() const { return *Else; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  Local *Cond;
  TestKind Test;
  std::unique_ptr<Block> Then;
  std::unique_ptr<Block> Else;
};

/// synchronized (Lock) Body.
class SyncStmt : public Stmt {
public:
  SyncStmt(Method *Parent, unsigned Id, SourceLoc Loc, Local *Lock)
      : Stmt(Kind::Sync, Parent, Id, Loc), Lock(Lock),
        Body(std::make_unique<Block>()) {}

  Local *lock() const { return Lock; }
  Block &body() { return *Body; }
  const Block &body() const { return *Body; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Sync; }

private:
  Local *Lock;
  std::unique_ptr<Block> Body;
};

/// Walks \p B recursively (into If/Sync bodies), calling \p Fn on every
/// statement in lexical order.
void forEachStmt(const Block &B, const std::function<void(const Stmt &)> &Fn);
void forEachStmt(Block &B, const std::function<void(Stmt &)> &Fn);

/// Walks every statement of \p M's body.
void forEachStmt(const Method &M,
                 const std::function<void(const Stmt &)> &Fn);

} // namespace nadroid::ir

#endif // NADROID_IR_STMT_H
