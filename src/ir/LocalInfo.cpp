//===- ir/LocalInfo.cpp - Intra-method local/use summaries -----------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "ir/LocalInfo.h"

using namespace nadroid;
using namespace nadroid::ir;

LocalTypeInference::LocalTypeInference(const Method &M) : M(M) {
  forEachStmt(M, [&](const Stmt &S) {
    if (const auto *New = dyn_cast<NewStmt>(&S))
      NewDefs[New->dst()].insert(New->allocClass());
    else if (const auto *Copy = dyn_cast<CopyStmt>(&S))
      CopyDefs[Copy->dst()].insert(Copy->src());
    else if (const auto *Load = dyn_cast<LoadStmt>(&S)) {
      // A typed field contributes its declared class (CHA-style: a
      // subclass instance is approximated by the declared class).
      if (Clazz *T = Load->field()->declaredType())
        NewDefs[Load->dst()].insert(T);
      else
        Opaque.insert(Load->dst());
    } else if (const auto *Call = dyn_cast<CallStmt>(&S)) {
      if (Call->dst())
        Opaque.insert(Call->dst());
    }
  });
  for (const Local *Param : M.params())
    Opaque.insert(Param);
}

void LocalTypeInference::walk(const Local *L, LocalClassSet &Result,
                              std::set<const Local *> &Visited) const {
  if (!Visited.insert(L).second)
    return;
  if (L->isThis()) {
    Result.Classes.insert(M.parent());
    return;
  }
  if (Opaque.count(L))
    Result.Unknown = true;
  if (auto It = NewDefs.find(L); It != NewDefs.end())
    Result.Classes.insert(It->second.begin(), It->second.end());
  if (auto It = CopyDefs.find(L); It != CopyDefs.end())
    for (const Local *Src : It->second)
      walk(Src, Result, Visited);
  // A local with no defs at all (e.g. never assigned) is treated as
  // opaque: the verifier flags it, but analyses must stay total.
  if (!Opaque.count(L) && !NewDefs.count(L) && !CopyDefs.count(L) &&
      !L->isThis())
    Result.Unknown = true;
}

LocalClassSet LocalTypeInference::query(const Local *L) const {
  LocalClassSet Result;
  std::set<const Local *> Visited;
  walk(L, Result, Visited);
  return Result;
}

LocalClassSet ir::inferLocalClasses(const Method &M, const Local *L) {
  return LocalTypeInference(M).query(L);
}

std::map<const LoadStmt *, LoadConsumers>
ir::computeLoadConsumers(const Method &M) {
  // Map each local to the loads that define it, then attribute consumers.
  std::map<const Local *, std::vector<const LoadStmt *>> LoadsOf;
  forEachStmt(M, [&](const Stmt &S) {
    if (const auto *Load = dyn_cast<LoadStmt>(&S))
      LoadsOf[Load->dst()].push_back(Load);
  });

  std::map<const LoadStmt *, LoadConsumers> Result;
  for (const auto &[L, Loads] : LoadsOf)
    for (const LoadStmt *Load : Loads)
      Result[Load]; // ensure every load has an entry

  auto Mark = [&](const Local *L, auto Setter) {
    auto It = LoadsOf.find(L);
    if (It == LoadsOf.end())
      return;
    for (const LoadStmt *Load : It->second)
      Setter(Result[Load]);
  };

  forEachStmt(M, [&](const Stmt &S) {
    switch (S.kind()) {
    case Stmt::Kind::Call: {
      const auto *Call = cast<CallStmt>(&S);
      Mark(Call->recv(), [](LoadConsumers &C) { C.Dereferenced = true; });
      for (const Local *Arg : Call->args())
        Mark(Arg, [](LoadConsumers &C) { C.PassedAsArg = true; });
      break;
    }
    case Stmt::Kind::Return: {
      const auto *Ret = cast<ReturnStmt>(&S);
      if (Ret->src())
        Mark(Ret->src(), [](LoadConsumers &C) { C.Returned = true; });
      break;
    }
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(&S);
      if (If->cond())
        Mark(If->cond(), [](LoadConsumers &C) { C.NullCompared = true; });
      break;
    }
    case Stmt::Kind::Store: {
      const auto *Store = cast<StoreStmt>(&S);
      if (Store->src())
        Mark(Store->src(), [](LoadConsumers &C) { C.StoredToField = true; });
      break;
    }
    case Stmt::Kind::Copy: {
      const auto *Copy = cast<CopyStmt>(&S);
      Mark(Copy->src(), [](LoadConsumers &C) { C.CopiedOut = true; });
      break;
    }
    case Stmt::Kind::Sync: {
      const auto *Sync = cast<SyncStmt>(&S);
      Mark(Sync->lock(), [](LoadConsumers &C) { C.SyncedOn = true; });
      break;
    }
    case Stmt::Kind::New:
    case Stmt::Kind::Load:
      break;
    }
  });
  return Result;
}

bool ir::isGetterMethod(const Method &M, Field **FieldOut) {
  // Pattern: the body contains exactly one load of this.F and every return
  // returns that loaded local (guards around it are permitted).
  const LoadStmt *TheLoad = nullptr;
  bool Disqualified = false;
  unsigned Returns = 0;
  forEachStmt(M, [&](const Stmt &S) {
    switch (S.kind()) {
    case Stmt::Kind::Load: {
      const auto *Load = cast<LoadStmt>(&S);
      if (TheLoad || !Load->base()->isThis())
        Disqualified = true;
      else
        TheLoad = Load;
      break;
    }
    case Stmt::Kind::Return: {
      const auto *Ret = cast<ReturnStmt>(&S);
      ++Returns;
      if (!Ret->src() || !TheLoad || Ret->src() != TheLoad->dst())
        Disqualified = true;
      break;
    }
    case Stmt::Kind::If:
      break; // guards permitted
    default:
      Disqualified = true;
      break;
    }
  });
  if (Disqualified || !TheLoad || Returns == 0)
    return false;
  if (FieldOut)
    *FieldOut = TheLoad->field();
  return true;
}
