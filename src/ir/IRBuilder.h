//===- ir/IRBuilder.h - Programmatic AIR construction -----------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder constructs AIR programs programmatically; the corpus, the
/// examples, and most tests use it instead of parsing text. It tracks an
/// insertion point (a stack of blocks, so If/Sync nesting is a matter of
/// begin/end calls) and offers sugar for the Android framework APIs the
/// paper's modeling recognizes (§4).
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_IR_IRBUILDER_H
#define NADROID_IR_IRBUILDER_H

#include "ir/Stmt.h"

#include <string>
#include <vector>

namespace nadroid::ir {

/// Builds statements into a method body with RAII-free begin/end nesting.
class IRBuilder {
public:
  explicit IRBuilder(Program &P) : P(P) {}

  Program &program() { return P; }

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  /// Creates a class. \p SuperName, when nonempty, must already exist.
  Clazz *makeClass(const std::string &Name, ClassKind Kind,
                   const std::string &SuperName = "");

  /// Creates a method on \p C and makes it the insertion point.
  Method *makeMethod(Clazz *C, const std::string &Name);

  /// Declares a field, optionally typed (typed fields keep loaded values
  /// resolvable by the syntactic analyses).
  Field *addField(Clazz *C, const std::string &Name, Clazz *Type = nullptr);

  /// Moves the insertion point to the end of \p M's body.
  void setInsertMethod(Method *M);

  /// The method currently being built.
  Method *currentMethod() const { return CurMethod; }
  /// The class of the method currently being built.
  Clazz *currentClass() const;
  /// The `this` local of the current method.
  Local *thisLocal() const;
  /// Gets or creates a named local in the current method.
  Local *local(const std::string &Name);

  //===--------------------------------------------------------------------===//
  // Core statements (each returns the created statement)
  //===--------------------------------------------------------------------===//

  /// Dst = new C(); returns Dst for chaining.
  Local *emitNew(const std::string &DstName, Clazz *C);
  NewStmt *emitNewInto(Local *Dst, Clazz *C);

  /// Dst = Base.F.
  LoadStmt *emitLoad(Local *Dst, Local *Base, Field *F);
  /// Dst = this.FieldName (field resolved on the current class).
  Local *emitLoadThis(const std::string &DstName,
                      const std::string &FieldName);

  /// Base.F = Src (Src == nullptr encodes null).
  StoreStmt *emitStore(Local *Base, Field *F, Local *Src);
  /// this.FieldName = Src.
  StoreStmt *emitStoreThis(const std::string &FieldName, Local *Src);
  /// this.FieldName = null — a "free".
  StoreStmt *emitFreeThis(const std::string &FieldName);

  CopyStmt *emitCopy(Local *Dst, Local *Src);
  CallStmt *emitCall(Local *Dst, Local *Recv, const std::string &Callee,
                     std::vector<Local *> Args = {});
  ReturnStmt *emitReturn(Local *Src = nullptr);

  /// Sugar: t = this.FieldName; t.use(); — the canonical dereference-use.
  /// Returns the LoadStmt (the use site the detector reports).
  LoadStmt *emitUseThis(const std::string &FieldName);

  //===--------------------------------------------------------------------===//
  // Structured control flow
  //===--------------------------------------------------------------------===//

  /// Opens `if (Cond != null) {`.
  IfStmt *beginIfNotNull(Local *Cond);
  /// Opens `if (Cond == null) {`.
  IfStmt *beginIfIsNull(Local *Cond);
  /// Opens an opaque-predicate if (both branches reachable).
  IfStmt *beginIfUnknown();
  /// Switches insertion to the else-block of the innermost open if.
  void beginElse();
  /// Closes the innermost open if.
  void endIf();

  /// Opens `synchronized (Lock) {`.
  SyncStmt *beginSync(Local *Lock);
  /// Closes the innermost open synchronized.
  void endSync();

  //===--------------------------------------------------------------------===//
  // Android framework API sugar (§4's recognized registration/post calls)
  //===--------------------------------------------------------------------===//

  /// this.bindService(Conn) — Conn freshly allocated from \p ConnClass.
  CallStmt *emitBindService(Clazz *ConnClass);
  CallStmt *emitUnbindService();
  /// this.registerReceiver(R) — R freshly allocated from \p ReceiverClass.
  CallStmt *emitRegisterReceiver(Clazz *ReceiverClass);
  CallStmt *emitUnregisterReceiver();
  /// this.setOnClickListener(L) — L freshly allocated from
  /// \p ListenerClass.
  CallStmt *emitSetOnClickListener(Clazz *ListenerClass);
  /// this.requestLocationUpdates(L).
  CallStmt *emitRequestLocationUpdates(Clazz *ListenerClass);
  /// Handler.post: \p HandlerLocal.post(R), R allocated from
  /// \p RunnableClass.
  CallStmt *emitPost(Local *HandlerLocal, Clazz *RunnableClass);
  /// Handler.sendMessage: \p HandlerLocal.sendMessage().
  CallStmt *emitSendMessage(Local *HandlerLocal);
  CallStmt *emitRemoveCallbacksAndMessages(Local *HandlerLocal);
  /// this.runOnUiThread(R), R allocated from \p RunnableClass.
  CallStmt *emitRunOnUiThread(Clazz *RunnableClass);
  /// T = new TaskClass(); T.execute();
  CallStmt *emitExecuteAsyncTask(Clazz *TaskClass);
  /// T = new ThreadClass(); T.start();
  CallStmt *emitStartThread(Clazz *ThreadClass);
  /// this.publishProgress() — inside doInBackground.
  CallStmt *emitPublishProgress();
  /// this.finish().
  CallStmt *emitFinish();

private:
  Program &P;
  Method *CurMethod = nullptr;
  std::vector<Block *> BlockStack;
  std::vector<IfStmt *> IfStack;

  Block &insertBlock();
  Field *resolveThisField(const std::string &FieldName);
  template <typename T, typename... ArgTs> T *create(ArgTs &&...Args);
  Local *freshNew(Clazz *C);
};

} // namespace nadroid::ir

#endif // NADROID_IR_IRBUILDER_H
