//===- ir/Ir.cpp - AIR program structure implementation -------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "ir/Ir.h"

#include "ir/Stmt.h"

#include <algorithm>
#include <cassert>

using namespace nadroid;
using namespace nadroid::ir;

const char *ir::classKindName(ClassKind Kind) {
  switch (Kind) {
  case ClassKind::Plain:
    return "Plain";
  case ClassKind::Activity:
    return "Activity";
  case ClassKind::Service:
    return "Service";
  case ClassKind::Receiver:
    return "Receiver";
  case ClassKind::Handler:
    return "Handler";
  case ClassKind::BackgroundHandler:
    return "BackgroundHandler";
  case ClassKind::AsyncTask:
    return "AsyncTask";
  case ClassKind::Runnable:
    return "Runnable";
  case ClassKind::ThreadClass:
    return "Thread";
  case ClassKind::ServiceConnection:
    return "ServiceConnection";
  case ClassKind::Listener:
    return "Listener";
  case ClassKind::Fragment:
    return "Fragment";
  }
  return "Plain";
}

bool ir::classKindFromName(const std::string &Name, ClassKind &KindOut) {
  static const std::pair<const char *, ClassKind> Table[] = {
      {"Plain", ClassKind::Plain},
      {"Activity", ClassKind::Activity},
      {"Service", ClassKind::Service},
      {"Receiver", ClassKind::Receiver},
      {"Handler", ClassKind::Handler},
      {"BackgroundHandler", ClassKind::BackgroundHandler},
      {"AsyncTask", ClassKind::AsyncTask},
      {"Runnable", ClassKind::Runnable},
      {"Thread", ClassKind::ThreadClass},
      {"ServiceConnection", ClassKind::ServiceConnection},
      {"Listener", ClassKind::Listener},
      {"Fragment", ClassKind::Fragment},
  };
  for (const auto &[N, K] : Table) {
    if (Name == N) {
      KindOut = K;
      return true;
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Field
//===----------------------------------------------------------------------===//

std::string Field::qualifiedName() const {
  return Parent->name() + "." + Name;
}

//===----------------------------------------------------------------------===//
// Method
//===----------------------------------------------------------------------===//

Method::Method(Clazz *Parent, std::string Name, unsigned Id, SourceLoc Loc)
    : Parent(Parent), Name(std::move(Name)), Id(Id), Loc(Loc),
      Body(std::make_unique<Block>()) {
  This = createLocal("this");
}

Method::~Method() = default;

std::string Method::qualifiedName() const {
  return Parent->name() + "." + Name;
}

Local *Method::createLocal(std::string LocalName) {
  Locals.push_back(std::make_unique<Local>(
      this, std::move(LocalName), Parent->program()->nextLocalId()));
  return Locals.back().get();
}

Local *Method::addParam(std::string ParamName) {
  assert(!findLocal(ParamName) && "parameter shadows an existing local");
  Local *L = createLocal(std::move(ParamName));
  Params.push_back(L);
  return L;
}

Local *Method::getOrCreateLocal(std::string LocalName) {
  if (Local *L = findLocal(LocalName))
    return L;
  return createLocal(std::move(LocalName));
}

Local *Method::makeTemp() {
  return createLocal("$t" + std::to_string(NextTemp++));
}

void Method::resetBodyForReparse() {
  Body = std::make_unique<Block>();
  std::vector<std::unique_ptr<Local>> Kept;
  for (auto &L : Locals) {
    bool IsParam =
        std::find(Params.begin(), Params.end(), L.get()) != Params.end();
    if (L.get() == This || IsParam)
      Kept.push_back(std::move(L));
  }
  Locals = std::move(Kept);
  NextTemp = 0;
}

Local *Method::findLocal(const std::string &LocalName) const {
  for (const auto &L : Locals)
    if (L->name() == LocalName)
      return L.get();
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Clazz
//===----------------------------------------------------------------------===//

Field *Clazz::addField(std::string FieldName, SourceLoc Loc) {
  assert(!findField(FieldName) && "duplicate field");
  Fields.push_back(std::make_unique<Field>(this, std::move(FieldName),
                                           Parent->nextFieldId(), Loc));
  return Fields.back().get();
}

Field *Clazz::findField(const std::string &FieldName) const {
  for (const Clazz *C = this; C; C = C->Super)
    for (const auto &F : C->Fields)
      if (F->name() == FieldName)
        return F.get();
  return nullptr;
}

Method *Clazz::addMethod(std::string MethodName, SourceLoc Loc) {
  assert(!findOwnMethod(MethodName) && "duplicate method");
  Methods.push_back(std::make_unique<Method>(this, std::move(MethodName),
                                             Parent->nextDeclId(), Loc));
  return Methods.back().get();
}

Method *Clazz::findOwnMethod(const std::string &MethodName) const {
  for (const auto &M : Methods)
    if (M->name() == MethodName)
      return M.get();
  return nullptr;
}

Method *Clazz::findMethod(const std::string &MethodName) const {
  for (const Clazz *C = this; C; C = C->Super)
    if (Method *M = C->findOwnMethod(MethodName))
      return M;
  return nullptr;
}

bool Clazz::isSubclassOf(const Clazz *Other) const {
  for (const Clazz *C = this; C; C = C->Super)
    if (C == Other)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

Clazz *Program::addClass(std::string ClassName, ClassKind Kind,
                         SourceLoc Loc) {
  assert(!findClass(ClassName) && "duplicate class");
  Classes.push_back(std::make_unique<Clazz>(this, ClassName, Kind,
                                            nextDeclId(), Loc));
  Clazz *C = Classes.back().get();
  ClassByName.emplace(std::move(ClassName), C);
  return C;
}

Clazz *Program::findClass(const std::string &ClassName) const {
  auto It = ClassByName.find(ClassName);
  return It == ClassByName.end() ? nullptr : It->second;
}

void Program::addManifestComponent(Clazz *C) {
  assert(C && "null manifest component");
  if (!isManifestComponent(C))
    Manifest.push_back(C);
}

bool Program::isManifestComponent(const Clazz *C) const {
  return std::find(Manifest.begin(), Manifest.end(), C) != Manifest.end();
}

unsigned Program::statementCount() const {
  unsigned Count = 0;
  for (const auto &C : Classes)
    for (const auto &M : C->methods())
      forEachStmt(*M, [&](const Stmt &) { ++Count; });
  return Count;
}
