//===- ir/IRBuilder.cpp - Programmatic AIR construction --------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

#include <cassert>

using namespace nadroid;
using namespace nadroid::ir;

Clazz *IRBuilder::makeClass(const std::string &Name, ClassKind Kind,
                            const std::string &SuperName) {
  Clazz *C = P.addClass(Name, Kind);
  if (!SuperName.empty()) {
    Clazz *Super = P.findClass(SuperName);
    assert(Super && "superclass must be declared first");
    C->setSuperClass(Super);
  }
  return C;
}

Method *IRBuilder::makeMethod(Clazz *C, const std::string &Name) {
  Method *M = C->addMethod(Name);
  setInsertMethod(M);
  return M;
}

Field *IRBuilder::addField(Clazz *C, const std::string &Name, Clazz *Type) {
  Field *F = C->addField(Name);
  F->setDeclaredType(Type);
  return F;
}

void IRBuilder::setInsertMethod(Method *M) {
  assert(IfStack.empty() && "switching methods with open control flow");
  CurMethod = M;
  BlockStack.clear();
  if (M)
    BlockStack.push_back(&M->body());
}

Clazz *IRBuilder::currentClass() const {
  assert(CurMethod && "no insertion point");
  return CurMethod->parent();
}

Local *IRBuilder::thisLocal() const {
  assert(CurMethod && "no insertion point");
  return CurMethod->thisLocal();
}

Local *IRBuilder::local(const std::string &Name) {
  assert(CurMethod && "no insertion point");
  return CurMethod->getOrCreateLocal(Name);
}

Block &IRBuilder::insertBlock() {
  assert(!BlockStack.empty() && "no insertion point");
  return *BlockStack.back();
}

Field *IRBuilder::resolveThisField(const std::string &FieldName) {
  Field *F = currentClass()->findField(FieldName);
  assert(F && "unknown field on current class");
  return F;
}

template <typename T, typename... ArgTs> T *IRBuilder::create(ArgTs &&...Args) {
  auto S = std::make_unique<T>(CurMethod, P.nextStmtId(), SourceLoc(),
                               std::forward<ArgTs>(Args)...);
  T *Raw = S.get();
  insertBlock().append(std::move(S));
  return Raw;
}

//===----------------------------------------------------------------------===//
// Core statements
//===----------------------------------------------------------------------===//

Local *IRBuilder::emitNew(const std::string &DstName, Clazz *C) {
  Local *Dst = local(DstName);
  emitNewInto(Dst, C);
  return Dst;
}

NewStmt *IRBuilder::emitNewInto(Local *Dst, Clazz *C) {
  assert(C && "allocating an unknown class");
  return create<NewStmt>(Dst, C);
}

LoadStmt *IRBuilder::emitLoad(Local *Dst, Local *Base, Field *F) {
  return create<LoadStmt>(Dst, Base, F);
}

Local *IRBuilder::emitLoadThis(const std::string &DstName,
                               const std::string &FieldName) {
  Local *Dst = local(DstName);
  emitLoad(Dst, thisLocal(), resolveThisField(FieldName));
  return Dst;
}

StoreStmt *IRBuilder::emitStore(Local *Base, Field *F, Local *Src) {
  return create<StoreStmt>(Base, F, Src);
}

StoreStmt *IRBuilder::emitStoreThis(const std::string &FieldName,
                                    Local *Src) {
  return emitStore(thisLocal(), resolveThisField(FieldName), Src);
}

StoreStmt *IRBuilder::emitFreeThis(const std::string &FieldName) {
  return emitStore(thisLocal(), resolveThisField(FieldName), nullptr);
}

CopyStmt *IRBuilder::emitCopy(Local *Dst, Local *Src) {
  return create<CopyStmt>(Dst, Src);
}

CallStmt *IRBuilder::emitCall(Local *Dst, Local *Recv,
                              const std::string &Callee,
                              std::vector<Local *> Args) {
  assert(Recv && "calls require a receiver");
  return create<CallStmt>(Dst, Recv, Callee, std::move(Args));
}

ReturnStmt *IRBuilder::emitReturn(Local *Src) {
  return create<ReturnStmt>(Src);
}

LoadStmt *IRBuilder::emitUseThis(const std::string &FieldName) {
  Local *Tmp = CurMethod->makeTemp();
  LoadStmt *Use = emitLoad(Tmp, thisLocal(), resolveThisField(FieldName));
  emitCall(nullptr, Tmp, "use");
  return Use;
}

//===----------------------------------------------------------------------===//
// Structured control flow
//===----------------------------------------------------------------------===//

IfStmt *IRBuilder::beginIfNotNull(Local *Cond) {
  IfStmt *If = create<IfStmt>(Cond, IfStmt::TestKind::NotNull);
  IfStack.push_back(If);
  BlockStack.push_back(&If->thenBlock());
  return If;
}

IfStmt *IRBuilder::beginIfIsNull(Local *Cond) {
  IfStmt *If = create<IfStmt>(Cond, IfStmt::TestKind::IsNull);
  IfStack.push_back(If);
  BlockStack.push_back(&If->thenBlock());
  return If;
}

IfStmt *IRBuilder::beginIfUnknown() {
  IfStmt *If =
      create<IfStmt>(static_cast<Local *>(nullptr), IfStmt::TestKind::Unknown);
  IfStack.push_back(If);
  BlockStack.push_back(&If->thenBlock());
  return If;
}

void IRBuilder::beginElse() {
  assert(!IfStack.empty() && "else without an open if");
  BlockStack.pop_back();
  BlockStack.push_back(&IfStack.back()->elseBlock());
}

void IRBuilder::endIf() {
  assert(!IfStack.empty() && "endIf without an open if");
  IfStack.pop_back();
  BlockStack.pop_back();
}

SyncStmt *IRBuilder::beginSync(Local *Lock) {
  SyncStmt *Sync = create<SyncStmt>(Lock);
  BlockStack.push_back(&Sync->body());
  return Sync;
}

void IRBuilder::endSync() {
  assert(BlockStack.size() > 1 && "endSync without an open synchronized");
  BlockStack.pop_back();
}

//===----------------------------------------------------------------------===//
// Android framework API sugar
//===----------------------------------------------------------------------===//

Local *IRBuilder::freshNew(Clazz *C) {
  Local *Tmp = CurMethod->makeTemp();
  emitNewInto(Tmp, C);
  return Tmp;
}

CallStmt *IRBuilder::emitBindService(Clazz *ConnClass) {
  return emitCall(nullptr, thisLocal(), "bindService",
                  {freshNew(ConnClass)});
}

CallStmt *IRBuilder::emitUnbindService() {
  return emitCall(nullptr, thisLocal(), "unbindService");
}

CallStmt *IRBuilder::emitRegisterReceiver(Clazz *ReceiverClass) {
  return emitCall(nullptr, thisLocal(), "registerReceiver",
                  {freshNew(ReceiverClass)});
}

CallStmt *IRBuilder::emitUnregisterReceiver() {
  return emitCall(nullptr, thisLocal(), "unregisterReceiver");
}

CallStmt *IRBuilder::emitSetOnClickListener(Clazz *ListenerClass) {
  return emitCall(nullptr, thisLocal(), "setOnClickListener",
                  {freshNew(ListenerClass)});
}

CallStmt *IRBuilder::emitRequestLocationUpdates(Clazz *ListenerClass) {
  return emitCall(nullptr, thisLocal(), "requestLocationUpdates",
                  {freshNew(ListenerClass)});
}

CallStmt *IRBuilder::emitPost(Local *HandlerLocal, Clazz *RunnableClass) {
  return emitCall(nullptr, HandlerLocal, "post", {freshNew(RunnableClass)});
}

CallStmt *IRBuilder::emitSendMessage(Local *HandlerLocal) {
  return emitCall(nullptr, HandlerLocal, "sendMessage");
}

CallStmt *IRBuilder::emitRemoveCallbacksAndMessages(Local *HandlerLocal) {
  return emitCall(nullptr, HandlerLocal, "removeCallbacksAndMessages");
}

CallStmt *IRBuilder::emitRunOnUiThread(Clazz *RunnableClass) {
  return emitCall(nullptr, thisLocal(), "runOnUiThread",
                  {freshNew(RunnableClass)});
}

CallStmt *IRBuilder::emitExecuteAsyncTask(Clazz *TaskClass) {
  return emitCall(nullptr, freshNew(TaskClass), "execute");
}

CallStmt *IRBuilder::emitStartThread(Clazz *ThreadClass) {
  return emitCall(nullptr, freshNew(ThreadClass), "start");
}

CallStmt *IRBuilder::emitPublishProgress() {
  return emitCall(nullptr, thisLocal(), "publishProgress");
}

CallStmt *IRBuilder::emitFinish() {
  return emitCall(nullptr, thisLocal(), "finish");
}
