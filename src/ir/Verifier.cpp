//===- ir/Verifier.cpp - AIR structural invariants --------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Stmt.h"

#include <set>

using namespace nadroid;
using namespace nadroid::ir;

namespace {

class VerifierImpl {
public:
  VerifierImpl(const Program &P, DiagnosticEngine &Diags)
      : P(P), Diags(Diags) {}

  bool run() {
    for (const auto &C : P.classes())
      verifyClass(*C);
    for (const Clazz *C : P.manifestComponents())
      verifyManifestComponent(*C);
    return !Failed;
  }

private:
  const Program &P;
  DiagnosticEngine &Diags;
  bool Failed = false;

  void error(SourceLoc Loc, std::string Message) {
    Diags.error(Loc, std::move(Message));
    Failed = true;
  }

  void verifyManifestComponent(const Clazz &C) {
    switch (C.kind()) {
    case ClassKind::Activity:
    case ClassKind::Service:
    case ClassKind::Receiver:
      return;
    default:
      error(C.loc(), "manifest component '" + C.name() +
                         "' is not an Activity, Service, or Receiver");
    }
  }

  void verifyClass(const Clazz &C) {
    // Acyclic superclass chain.
    std::set<const Clazz *> Seen;
    for (const Clazz *S = &C; S; S = S->superClass()) {
      if (!Seen.insert(S).second) {
        error(C.loc(), "class '" + C.name() + "' has a cyclic super chain");
        break;
      }
    }
    for (const auto &M : C.methods())
      verifyMethod(*M);
  }

  void verifyMethod(const Method &M) {
    // Gather defined locals: params, this, and all statement dsts.
    std::set<const Local *> Defined;
    Defined.insert(M.thisLocal());
    for (const Local *Param : M.params())
      Defined.insert(Param);
    forEachStmt(M, [&](const Stmt &S) {
      if (const auto *New = dyn_cast<NewStmt>(&S))
        Defined.insert(New->dst());
      else if (const auto *Load = dyn_cast<LoadStmt>(&S))
        Defined.insert(Load->dst());
      else if (const auto *Copy = dyn_cast<CopyStmt>(&S))
        Defined.insert(Copy->dst());
      else if (const auto *Call = dyn_cast<CallStmt>(&S)) {
        if (Call->dst())
          Defined.insert(Call->dst());
      }
    });

    auto CheckLocal = [&](const Stmt &S, const Local *L, const char *Role) {
      if (!L)
        return;
      if (L->parent() != &M)
        error(S.loc(), "local '" + L->name() + "' used as " + Role + " in '" +
                           M.qualifiedName() +
                           "' belongs to a different method");
      else if (!Defined.count(L))
        error(S.loc(), "local '" + L->name() + "' used as " + Role + " in '" +
                           M.qualifiedName() + "' has no definition");
    };
    auto CheckField = [&](const Stmt &S, const Field *F) {
      if (!P.findClass(F->parent()->name()))
        error(S.loc(), "field '" + F->qualifiedName() +
                           "' belongs to a class outside the program");
    };

    forEachStmt(M, [&](const Stmt &S) {
      if (S.parentMethod() != &M)
        error(S.loc(), "statement in '" + M.qualifiedName() +
                           "' claims a different parent method");
      switch (S.kind()) {
      case Stmt::Kind::New:
        break;
      case Stmt::Kind::Load: {
        const auto *Load = cast<LoadStmt>(&S);
        CheckLocal(S, Load->base(), "load base");
        CheckField(S, Load->field());
        break;
      }
      case Stmt::Kind::Store: {
        const auto *Store = cast<StoreStmt>(&S);
        CheckLocal(S, Store->base(), "store base");
        CheckLocal(S, Store->src(), "store source");
        CheckField(S, Store->field());
        break;
      }
      case Stmt::Kind::Copy:
        CheckLocal(S, cast<CopyStmt>(&S)->src(), "copy source");
        break;
      case Stmt::Kind::Call: {
        const auto *Call = cast<CallStmt>(&S);
        CheckLocal(S, Call->recv(), "call receiver");
        for (const Local *Arg : Call->args())
          CheckLocal(S, Arg, "call argument");
        break;
      }
      case Stmt::Kind::Return:
        CheckLocal(S, cast<ReturnStmt>(&S)->src(), "return value");
        break;
      case Stmt::Kind::If: {
        const auto *If = cast<IfStmt>(&S);
        if (If->test() != IfStmt::TestKind::Unknown) {
          if (!If->cond())
            error(S.loc(), "null-test if without a condition local");
          else
            CheckLocal(S, If->cond(), "if condition");
        }
        break;
      }
      case Stmt::Kind::Sync:
        CheckLocal(S, cast<SyncStmt>(&S)->lock(), "lock");
        break;
      }
    });
  }
};

} // namespace

bool ir::verifyProgram(const Program &P, DiagnosticEngine &Diags) {
  return VerifierImpl(P, Diags).run();
}
