//===- ir/Printer.h - AIR textual output ------------------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints AIR programs in the concrete syntax the frontend parses; the
/// printer and parser round-trip (print ∘ parse ∘ print is a fixpoint),
/// which the property tests rely on.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_IR_PRINTER_H
#define NADROID_IR_PRINTER_H

#include "ir/Stmt.h"

#include <ostream>
#include <string>

namespace nadroid::ir {

/// Prints \p P as AIR source text.
void printProgram(const Program &P, std::ostream &OS);

/// Renders \p P to a string (convenience for tests).
std::string programToString(const Program &P);

/// Prints a single statement (no trailing newline) — used in reports.
void printStmt(const Stmt &S, std::ostream &OS);

/// Renders one statement to a string.
std::string stmtToString(const Stmt &S);

/// Prints one method exactly as printProgram renders it inside its class
/// ("  method name(params) { ... }"). The incremental frontend compares
/// these renderings to find which bodies an edit touched.
void printMethod(const Method &M, std::ostream &OS);

/// Renders one method to a string.
std::string methodToString(const Method &M);

} // namespace nadroid::ir

#endif // NADROID_IR_PRINTER_H
