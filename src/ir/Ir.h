//===- ir/Ir.h - AIR program structure declarations -------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AIR (Android mini-IR) program structure: Program, Clazz, Field,
/// Method, and Local. AIR plays the role Jimple plays for the original
/// nAdroid: a three-address, statement-oriented view of an Android app that
/// exposes exactly the surface the analyses consume — field loads/stores,
/// allocations, calls (including Android framework APIs), null-guards,
/// monitors, and returns. Statements live in ir/Stmt.h.
///
/// Ownership: a Program owns its classes; a Clazz owns its fields and
/// methods; a Method owns its locals and its body. Everything else refers
/// by raw pointer, LLVM-style.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_IR_IR_H
#define NADROID_IR_IR_H

#include "support/SourceLoc.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace nadroid::ir {

class Program;
class Clazz;
class Field;
class Method;
class Block;

/// The Android-relevant role of a class. Mirrors the component and
/// concurrency-construct taxonomy of §2.1/§4 of the paper.
enum class ClassKind {
  Plain,             ///< Ordinary Java class.
  Activity,          ///< android.app.Activity subclass.
  Service,           ///< android.app.Service subclass.
  Receiver,          ///< android.content.BroadcastReceiver subclass.
  Handler,           ///< android.os.Handler subclass (UI looper).
  BackgroundHandler, ///< Handler bound to its own HandlerThread looper —
                     ///< the multi-looper case of §8.1, where callbacks
                     ///< are atomic only against callbacks of the *same*
                     ///< looper.
  AsyncTask,         ///< android.os.AsyncTask subclass.
  Runnable,          ///< java.lang.Runnable implementation.
  ThreadClass,       ///< java.lang.Thread subclass.
  ServiceConnection, ///< android.content.ServiceConnection implementation.
  Listener,          ///< UI/system listener (OnClickListener, ...).
  Fragment,          ///< android.app.Fragment — unsupported by nAdroid's
                     ///< modeling (paper §8.1); kept so the DEvA baseline
                     ///< can still analyze it (Table 3 Browser row).
};

/// Returns a stable printable name ("Activity", "Runnable", ...).
const char *classKindName(ClassKind Kind);

/// Parses \p Name back to a kind; returns false if unknown.
bool classKindFromName(const std::string &Name, ClassKind &KindOut);

/// A named reference-typed instance field.
class Field {
public:
  Field(Clazz *Parent, std::string Name, unsigned Id, SourceLoc Loc)
      : Parent(Parent), Name(std::move(Name)), Id(Id), Loc(Loc) {}

  Clazz *parent() const { return Parent; }
  const std::string &name() const { return Name; }
  /// Program-unique field id.
  unsigned id() const { return Id; }
  SourceLoc loc() const { return Loc; }
  /// Rebases the declaration onto a fresh parse of an edited file
  /// (frontend::applyIncrementalEdit) — the only sanctioned mutation.
  void setLoc(SourceLoc L) { Loc = L; }

  /// Optional declared (static) type. Loads from a typed field let the
  /// frontend and the syntactic analyses resolve members on the loaded
  /// value; untyped fields are opaque, like erased framework references.
  Clazz *declaredType() const { return DeclaredType; }
  void setDeclaredType(Clazz *T) { DeclaredType = T; }

  /// "Owner.field" for reports.
  std::string qualifiedName() const;

private:
  Clazz *Parent;
  std::string Name;
  unsigned Id;
  SourceLoc Loc;
  Clazz *DeclaredType = nullptr;
};

/// A method-scoped SSA-less local variable (three-address temporaries and
/// named source locals alike). Each method has an implicit `this` local.
class Local {
public:
  Local(Method *Parent, std::string Name, unsigned Id)
      : Parent(Parent), Name(std::move(Name)), Id(Id) {}

  Method *parent() const { return Parent; }
  const std::string &name() const { return Name; }
  /// Program-unique local id.
  unsigned id() const { return Id; }
  bool isThis() const { return Name == "this"; }
  /// Realigns the id with the one a fresh one-shot parse assigns — ids
  /// shift program-wide when an edit adds or removes locals, and report
  /// ordering is id-driven (frontend::applyIncrementalEdit only).
  void setId(unsigned NewId) { Id = NewId; }

private:
  Method *Parent;
  std::string Name;
  unsigned Id;
};

/// An instance method with a structured statement body.
class Method {
public:
  Method(Clazz *Parent, std::string Name, unsigned Id, SourceLoc Loc);
  ~Method();

  Clazz *parent() const { return Parent; }
  const std::string &name() const { return Name; }
  unsigned id() const { return Id; }
  SourceLoc loc() const { return Loc; }
  /// See Field::setLoc.
  void setLoc(SourceLoc L) { Loc = L; }

  /// "Owner.method" for reports.
  std::string qualifiedName() const;

  /// The implicit receiver local.
  Local *thisLocal() const { return This; }

  /// Declares a parameter local (after `this`).
  Local *addParam(std::string Name);
  const std::vector<Local *> &params() const { return Params; }

  /// Gets or creates a body local named \p Name.
  Local *getOrCreateLocal(std::string Name);
  /// Creates a fresh compiler temporary (named "$tN").
  Local *makeTemp();
  /// Returns the local named \p Name or nullptr.
  Local *findLocal(const std::string &Name) const;
  const std::vector<std::unique_ptr<Local>> &locals() const { return Locals; }

  Block &body() { return *Body; }
  const Block &body() const { return *Body; }

  /// Discards the body, every body-only local and the temp counter,
  /// keeping `this` and the parameters (other code holds no pointers
  /// into a method the incremental frontend is about to regraft — it
  /// invalidates every statement-derived analysis first). Afterwards the
  /// method accepts a fresh body exactly as if just declared.
  void resetBodyForReparse();

private:
  Clazz *Parent;
  std::string Name;
  unsigned Id;
  SourceLoc Loc;
  Local *This = nullptr;
  std::vector<Local *> Params;
  std::vector<std::unique_ptr<Local>> Locals;
  std::unique_ptr<Block> Body;
  unsigned NextTemp = 0;

  Local *createLocal(std::string Name);
};

/// A class: kind + optional superclass + optional lexical outer class
/// (inner classes matter only to the DEvA baseline's intra-class scope).
class Clazz {
public:
  Clazz(Program *Parent, std::string Name, ClassKind Kind, unsigned Id,
        SourceLoc Loc)
      : Parent(Parent), Name(std::move(Name)), Kind(Kind), Id(Id), Loc(Loc) {}

  Program *program() const { return Parent; }
  const std::string &name() const { return Name; }
  ClassKind kind() const { return Kind; }
  unsigned id() const { return Id; }
  SourceLoc loc() const { return Loc; }
  /// See Field::setLoc.
  void setLoc(SourceLoc L) { Loc = L; }

  Clazz *superClass() const { return Super; }
  void setSuperClass(Clazz *S) { Super = S; }

  Clazz *outerClass() const { return Outer; }
  void setOuterClass(Clazz *O) { Outer = O; }

  /// Adds a field; name must be unique within this class.
  Field *addField(std::string Name, SourceLoc Loc = SourceLoc());
  /// Looks a field up in this class and its superclasses.
  Field *findField(const std::string &Name) const;
  const std::vector<std::unique_ptr<Field>> &fields() const { return Fields; }

  /// Adds a method; name must be unique within this class.
  Method *addMethod(std::string Name, SourceLoc Loc = SourceLoc());
  /// Looks a method up in this class and its superclasses (virtual
  /// dispatch resolution for a receiver of this runtime class).
  Method *findMethod(const std::string &Name) const;
  /// Looks only in this class.
  Method *findOwnMethod(const std::string &Name) const;
  const std::vector<std::unique_ptr<Method>> &methods() const {
    return Methods;
  }

  /// True if this class equals \p Other or transitively extends it.
  bool isSubclassOf(const Clazz *Other) const;

private:
  Program *Parent;
  std::string Name;
  ClassKind Kind;
  unsigned Id;
  SourceLoc Loc;
  Clazz *Super = nullptr;
  Clazz *Outer = nullptr;
  std::vector<std::unique_ptr<Field>> Fields;
  std::vector<std::unique_ptr<Method>> Methods;
};

/// A whole application: classes plus the "manifest" list of component
/// classes the Android runtime instantiates directly (nAdroid reads this
/// from the APK manifest; AIR declares it with `manifest C;`).
class Program {
public:
  explicit Program(std::string Name = "app") : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  SourceManager &sourceManager() { return SM; }
  const SourceManager &sourceManager() const { return SM; }

  /// Creates a class; the name must be unused.
  Clazz *addClass(std::string ClassName, ClassKind Kind,
                  SourceLoc Loc = SourceLoc());
  /// Returns the class named \p ClassName or nullptr.
  Clazz *findClass(const std::string &ClassName) const;
  const std::vector<std::unique_ptr<Clazz>> &classes() const {
    return Classes;
  }

  /// Declares \p C as a manifest-launched component.
  void addManifestComponent(Clazz *C);
  const std::vector<Clazz *> &manifestComponents() const {
    return Manifest;
  }
  bool isManifestComponent(const Clazz *C) const;

  /// Id allocators shared program-wide so sites are globally unique.
  unsigned nextStmtId() { return NextStmtId++; }
  unsigned nextLocalId() { return NextLocalId++; }
  unsigned nextFieldId() { return NextFieldId++; }
  unsigned nextDeclId() { return NextDeclId++; }

  /// The next ids the allocators would hand out — together with
  /// setIdBounds this lets the incremental frontend leave a regrafted
  /// program's allocators exactly where a fresh one-shot parse would,
  /// so ids stay dense and report ordering stays id-faithful.
  unsigned stmtIdBound() const { return NextStmtId; }
  unsigned localIdBound() const { return NextLocalId; }
  unsigned fieldIdBound() const { return NextFieldId; }
  unsigned declIdBound() const { return NextDeclId; }
  void setIdBounds(unsigned StmtB, unsigned LocalB, unsigned FieldB,
                   unsigned DeclB) {
    NextStmtId = StmtB;
    NextLocalId = LocalB;
    NextFieldId = FieldB;
    NextDeclId = DeclB;
  }

  /// Total number of statements (recursive); AIR's "LOC" proxy in Table 1.
  unsigned statementCount() const;

private:
  std::string Name;
  SourceManager SM;
  std::vector<std::unique_ptr<Clazz>> Classes;
  std::unordered_map<std::string, Clazz *> ClassByName;
  std::vector<Clazz *> Manifest;
  unsigned NextStmtId = 0;
  unsigned NextLocalId = 0;
  unsigned NextFieldId = 0;
  unsigned NextDeclId = 0;
};

} // namespace nadroid::ir

#endif // NADROID_IR_IR_H
