//===- pipeline/AnalysisManager.cpp - Lazy analysis registry --------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "pipeline/AnalysisManager.h"

#include "threadify/Threadifier.h"

#include <algorithm>
#include <cassert>

using namespace nadroid;
using namespace nadroid::pipeline;
using Clock = std::chrono::steady_clock;

//===----------------------------------------------------------------------===//
// Pass bodies
//===----------------------------------------------------------------------===//

std::unique_ptr<android::ApiIndex> ApiIndexPass::run(AnalysisManager &AM) {
  return std::make_unique<android::ApiIndex>(AM.program());
}

std::unique_ptr<threadify::ThreadForest>
ThreadForestPass::run(AnalysisManager &AM) {
  threadify::ThreadifyOptions TOpts;
  TOpts.ModelFragments = AM.options().ModelFragments;
  return std::make_unique<threadify::ThreadForest>(
      threadify::threadify(AM.program(), TOpts));
}

std::unique_ptr<analysis::PointsToAnalysis>
PointsToPass::run(AnalysisManager &AM) {
  analysis::PointsToAnalysis::Options PtaOpts;
  PtaOpts.K = AM.options().K;
  PtaOpts.Deadline = AM.deadline();
  auto PTA = std::make_unique<analysis::PointsToAnalysis>(
      AM.program(), AM.forest(), AM.apis(), PtaOpts);
  PTA->run();
  return PTA;
}

std::unique_ptr<analysis::ThreadReach>
ThreadReachPass::run(AnalysisManager &AM) {
  return std::make_unique<analysis::ThreadReach>(AM.pointsTo(), AM.forest());
}

std::unique_ptr<race::DetectorResult> DetectionPass::run(AnalysisManager &AM) {
  return std::make_unique<race::DetectorResult>(
      race::detectUafWarnings(AM.forest(), AM.pointsTo(), AM.reach()));
}

std::unique_ptr<analysis::NullnessAnalysis>
NullnessPass::run(AnalysisManager &AM) {
  return std::make_unique<analysis::NullnessAnalysis>(AM.program(),
                                                      AM.deadline());
}

std::unique_ptr<analysis::LocksetAnalysis>
LocksetPass::run(AnalysisManager &AM) {
  return std::make_unique<analysis::LocksetAnalysis>(AM.pointsTo());
}

std::unique_ptr<analysis::CancelReach>
CancelReachPass::run(AnalysisManager &AM) {
  return std::make_unique<analysis::CancelReach>(AM.program(), AM.apis(),
                                                 &AM.hbQuery());
}

std::unique_ptr<analysis::HbQuery> HbQueryPass::run(AnalysisManager &AM) {
  return std::make_unique<analysis::HbQuery>(AM.program(), AM.apis(),
                                             AM.forest());
}

std::unique_ptr<analysis::EscapeAnalysis>
EscapePass::run(AnalysisManager &AM) {
  return std::make_unique<analysis::EscapeAnalysis>(AM.pointsTo(), AM.reach(),
                                                    AM.forest());
}

std::unique_ptr<analysis::HbRefuter> HbRefuterPass::run(AnalysisManager &AM) {
  return std::make_unique<analysis::HbRefuter>(
      AM.program(), AM.forest(), AM.pointsTo(), AM.reach(), AM.cancelReach(),
      AM.escape(), AM.getMutable<CfgCachePass>(),
      AM.getMutable<AllocFlowCachePass>(), AM.deadline(), &AM.hbQuery());
}

std::unique_ptr<analysis::HistoryRefuter>
HistoryRefuterPass::run(AnalysisManager &AM) {
  return std::make_unique<analysis::HistoryRefuter>(
      AM.program(), AM.forest(), AM.pointsTo(), AM.reach(), AM.cancelReach(),
      AM.escape(), AM.getMutable<CfgCachePass>(),
      AM.getMutable<AllocFlowCachePass>(), AM.deadline(), &AM.hbQuery());
}

std::unique_ptr<analysis::TypestateAnalysis>
TypestatePass::run(AnalysisManager &AM) {
  return std::make_unique<analysis::TypestateAnalysis>(
      AM.program(), android::FrameworkSpec::builtin(), AM.apis(), AM.forest(),
      AM.hbQuery(), AM.getMutable<CfgCachePass>(), AM.deadline());
}

std::unique_ptr<analysis::MethodCfgCache>
CfgCachePass::run(AnalysisManager &) {
  return std::make_unique<analysis::MethodCfgCache>();
}

std::unique_ptr<analysis::MethodGuardCache>
GuardCachePass::run(AnalysisManager &) {
  return std::make_unique<analysis::MethodGuardCache>();
}

std::unique_ptr<analysis::MethodAllocFlowCache>
AllocFlowCachePass::run(AnalysisManager &) {
  return std::make_unique<analysis::MethodAllocFlowCache>();
}

std::unique_ptr<analysis::MethodConsumersCache>
ConsumersCachePass::run(AnalysisManager &) {
  return std::make_unique<analysis::MethodConsumersCache>();
}

std::unique_ptr<filters::FilterContext>
FilterContextPass::run(AnalysisManager &AM) {
  filters::FilterOptions FOpts;
  FOpts.DataflowGuards = AM.options().DataflowGuards;
  FOpts.Refute = AM.options().Refute;
  FOpts.RefuteHistory = AM.options().RefuteHistory;
  filters::SharedAnalyses Shared;
  Shared.Locks = &AM.lockset();
  Shared.Cancel = &AM.cancelReach();
  Shared.Hb = &AM.hbQuery();
  Shared.Cfgs = &AM.getMutable<CfgCachePass>();
  Shared.Guards = &AM.getMutable<GuardCachePass>();
  Shared.Alloc = &AM.getMutable<AllocFlowCachePass>();
  Shared.Consumers = &AM.getMutable<ConsumersCachePass>();
  // The context pulls nullness (and the refuter) through the manager
  // only if a filter ever asks, keeping --syntactic-filters runs free of
  // the dataflow cost and default runs free of the refutation cost. The
  // edges below make the deferred dependencies visible to invalidation:
  // dropping NullnessPass/HbRefuterPass must drop the context (which
  // caches the references) even though no build-time request ties them.
  Shared.Nullness = [&AM]() -> const analysis::NullnessAnalysis & {
    return AM.nullness();
  };
  Shared.Refuter = [&AM]() -> const analysis::HbRefuter & {
    return AM.hbRefuter();
  };
  Shared.HistoryRefuter = [&AM]() -> const analysis::HistoryRefuter & {
    return AM.historyRefuter();
  };
  AM.addLazyEdge<NullnessPass, FilterContextPass>();
  AM.addLazyEdge<HbRefuterPass, FilterContextPass>();
  AM.addLazyEdge<HistoryRefuterPass, FilterContextPass>();
  return std::make_unique<filters::FilterContext>(
      AM.program(), AM.forest(), AM.pointsTo(), AM.reach(), AM.apis(), FOpts,
      std::move(Shared));
}

std::unique_ptr<filters::FilterEngine>
FilterEnginePass::run(AnalysisManager &AM) {
  return std::make_unique<filters::FilterEngine>(AM.filterContext());
}

std::unique_ptr<filters::PipelineResult>
VerdictsPass::run(AnalysisManager &AM) {
  filters::FilterEngine &Engine = AM.engine();
  const std::vector<race::UafWarning> &Warnings = AM.detection().Warnings;
  return std::make_unique<filters::PipelineResult>(
      Engine.run(Warnings, AM.threadPool(), AM.deadline()));
}

//===----------------------------------------------------------------------===//
// The manager
//===----------------------------------------------------------------------===//

AnalysisManager::AnalysisManager(const ir::Program &P, PipelineOptions Opts)
    : P(P), Opts(Opts) {}

AnalysisManager::~AnalysisManager() {
  // Entries reference each other (the filter context borrows manager-
  // owned analyses); tear down dependents before their dependencies.
  std::vector<std::type_index> Keys;
  for (const auto &[Key, E] : Cache)
    if (E.Data)
      Keys.push_back(Key);
  for (std::type_index Key : Keys)
    invalidateKey(Key);
}

AnalysisManager::CacheEntry &AnalysisManager::slot(std::type_index Key,
                                                   const char *Name) {
  CacheEntry &E = Cache[Key]; // std::map: nodes stay put across inserts
  E.Name = Name;
  // A request issued while another pass builds is a dependency edge:
  // the building pass must be dropped whenever this one is.
  if (!BuildStack.empty() && BuildStack.back().Key != Key)
    E.Dependents.insert(BuildStack.back().Key);
  return E;
}

void AnalysisManager::noteHit(CacheEntry &E) {
  ++E.Hits;
  Stats.add(std::string("pipeline.") + E.Name + ".hits");
}

void AnalysisManager::beginBuild(std::type_index Key) {
  BuildStack.push_back(
      {Key, Clock::now(), TrackRss_ ? currentRssKb() : 0, 0.0});
}

void AnalysisManager::endBuild(std::type_index Key,
                               std::unique_ptr<SlotBase> Data) {
  assert(!BuildStack.empty() && BuildStack.back().Key == Key &&
         "mismatched beginBuild/endBuild");
  BuildFrame Frame = BuildStack.back();
  BuildStack.pop_back();

  const double Total =
      std::chrono::duration<double>(Clock::now() - Frame.Start).count();
  const double Self = std::max(0.0, Total - Frame.ChildSeconds);
  // The parent's exclusive time must not include this whole build.
  if (!BuildStack.empty())
    BuildStack.back().ChildSeconds += Total;

  CacheEntry &E = Cache[Key];
  E.Data = std::move(Data);
  E.Seconds += Self;
  ++E.Builds;
  // RSS is process-global: with concurrent batch lanes every lane would
  // be charged everyone's allocations, so attribution is suppressed
  // when tracking is off (the delta stays 0 rather than lying).
  if (TrackRss_)
    E.RssKb += std::max(0L, currentRssKb() - Frame.RssStartKb);

  const std::string Prefix = std::string("pipeline.") + E.Name;
  Stats.add(Prefix + ".builds");
  Stats.set(Prefix + ".ms", static_cast<uint64_t>(E.Seconds * 1000.0));
  Stats.set(Prefix + ".rsskb", static_cast<uint64_t>(E.RssKb));
}

void AnalysisManager::abortBuild(std::type_index Key) {
  assert(!BuildStack.empty() && BuildStack.back().Key == Key &&
         "mismatched beginBuild/abortBuild");
  (void)Key;
  BuildFrame Frame = BuildStack.back();
  BuildStack.pop_back();
  // Keep the parent's exclusive-time subtraction honest even though this
  // build produced nothing.
  const double Total =
      std::chrono::duration<double>(Clock::now() - Frame.Start).count();
  if (!BuildStack.empty())
    BuildStack.back().ChildSeconds += Total;
}

void AnalysisManager::invalidateKey(std::type_index Key) {
  auto It = Cache.find(Key);
  if (It == Cache.end() || !It->second.Data)
    return;
  // Empty the slot up front so re-entrant edges terminate, but destroy
  // the result only after every dependent — dependents hold references
  // into it. The set is copied because nested calls may touch the map.
  std::unique_ptr<SlotBase> Doomed = std::move(It->second.Data);
  const std::set<std::type_index> Deps = It->second.Dependents;
  for (std::type_index Dep : Deps)
    invalidateKey(Dep);
}

std::string PipelineOptions::fingerprint() const {
  // Deliberately not a hash: stamped verbatim into checkpoint rows and
  // cache entries, where a human debugging a surprising miss can read
  // exactly which knob moved.
  std::string F = "opt1;k=" + std::to_string(K);
  F += ";fragments=";
  F += ModelFragments ? '1' : '0';
  F += ";dataflowGuards=";
  F += DataflowGuards ? '1' : '0';
  F += ";refute=";
  F += Refute ? '1' : '0';
  F += ";refuteHistory=";
  F += RefuteHistory ? '1' : '0';
  // Appended only when set so that every pre-lint fingerprint — stamped
  // into existing checkpoint logs and cache keys — stays byte-identical.
  if (Lint)
    F += ";lint=1";
  return F;
}

void AnalysisManager::setOptions(const PipelineOptions &New) {
  assert(BuildStack.empty() && "cannot change options mid-build");
  if (New.ModelFragments != Opts.ModelFragments)
    invalidate<ThreadForestPass>();
  if (New.K != Opts.K)
    invalidate<PointsToPass>();
  if (New.DataflowGuards != Opts.DataflowGuards)
    invalidate<FilterContextPass>();
  if (New.Refute != Opts.Refute)
    invalidate<FilterContextPass>();
  if (New.RefuteHistory != Opts.RefuteHistory)
    invalidate<FilterContextPass>();
  Opts = New;
}

void AnalysisManager::invalidateBodyEdit(
    const std::vector<const ir::Method *> &ChangedMethods) {
  assert(BuildStack.empty() && "cannot invalidate mid-build");
  // Every whole-program analysis reads statements, so every one goes.
  // Observed dependency edges would cascade most of these from the first
  // few, but an edge only exists where some build actually exercised it;
  // the explicit list cannot be defeated by an unusually lazy request
  // history.
  invalidate<ApiIndexPass>(); // classifies the bodies' CallStmts
  invalidate<ThreadForestPass>();
  invalidate<HbQueryPass>();
  invalidate<PointsToPass>();
  invalidate<ThreadReachPass>();
  invalidate<DetectionPass>();
  invalidate<NullnessPass>();
  invalidate<LocksetPass>();
  invalidate<CancelReachPass>();
  invalidate<EscapePass>();
  invalidate<HbRefuterPass>();
  invalidate<HistoryRefuterPass>();
  invalidate<TypestatePass>();
  invalidate<FilterContextPass>();
  invalidate<FilterEnginePass>();
  invalidate<VerdictsPass>();
  // What survives: the per-method caches. Unchanged methods kept their
  // statement objects across the regraft, so only the changed methods'
  // entries describe dead statements — evict exactly those.
  for (const ir::Method *M : ChangedMethods) {
    if (auto *C = peek<CfgCachePass>())
      C->evict(*M);
    if (auto *G = peek<GuardCachePass>())
      G->evict(*M);
    if (auto *A = peek<AllocFlowCachePass>())
      A->evict(*M);
    if (auto *U = peek<ConsumersCachePass>())
      U->evict(*M);
  }
}

std::vector<PassStat> AnalysisManager::passStats() const {
  std::vector<PassStat> Rows;
  for (const auto &[Key, E] : Cache) {
    if (E.Builds == 0 && E.Hits == 0)
      continue;
    PassStat S;
    S.Name = E.Name;
    S.Seconds = E.Seconds;
    S.Builds = E.Builds;
    S.Hits = E.Hits;
    S.RssKb = E.RssKb;
    S.Cached = E.Data != nullptr;
    Rows.push_back(std::move(S));
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const PassStat &A, const PassStat &B) { return A.Name < B.Name; });
  return Rows;
}
