//===- pipeline/AnalysisManager.h - Lazy analysis registry ------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The composition root of the whole pipeline. Every analysis the system
/// knows — ApiIndex, ThreadForest, PointsTo, ThreadReach, detection,
/// Nullness, Lockset, CancelReach, Escape, the per-method Cfg / Guards /
/// AllocFlow / consumers caches, the filter context/engine and the final
/// verdicts — is registered behind a typed key and computed lazily on
/// first request, then cached for the lifetime of the manager (one
/// manager per ir::Program).
///
/// Before this layer existed, report::analyzeProgram, --lint, --deva and
/// every bench binary each hand-wired the same stages in slightly
/// different orders. Now they all ask one manager, which buys three
/// things:
///
///  * Demand-driven construction — `--lint` builds exactly the nullness
///    analysis and nothing else; `--deva` shares the guard/alloc caches
///    with the filters instead of recomputing them.
///
///  * Accounting — each build is timed (exclusive self-time: time spent
///    inside dependencies requested mid-build is subtracted) and its
///    resident-set growth sampled, recorded both in a StatRegistry
///    (`pipeline.<name>.*`) and as passStats() rows for --stats/--json.
///
///  * Invalidation — setOptions() drops exactly the analyses the changed
///    option feeds (K → points-to, ModelFragments → thread forest,
///    DataflowGuards → filter stage) plus, transitively, everything
///    recorded as depending on them. Dependency edges are observed, not
///    declared: a get<B>() issued while A is building makes A a
///    dependent of B.
///
/// The manager itself is single-threaded — callers must not request
/// analyses from two threads at once. Parallelism lives elsewhere: the
/// batch driver runs one manager per app on a support::ThreadPool, and
/// the filter engine's verdict loop fans out over the same pool while
/// every analysis it touches is already built or internally
/// synchronized (see FilterContext).
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_PIPELINE_ANALYSISMANAGER_H
#define NADROID_PIPELINE_ANALYSISMANAGER_H

#include "analysis/Escape.h"
#include "analysis/HbQuery.h"
#include "analysis/MethodCaches.h"
#include "analysis/Typestate.h"
#include "filters/Engine.h"
#include "race/Detector.h"
#include "support/Deadline.h"
#include "support/Statistic.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <typeindex>
#include <vector>

namespace nadroid::pipeline {

class AnalysisManager;

/// Options the analyses consume. Field-compatible with the pre-pipeline
/// report::NadroidOptions (now an alias of this struct).
struct PipelineOptions {
  /// Context depth of the points-to analysis (§8.5; the paper's default).
  unsigned K = 2;
  /// Model Fragment callbacks (off by default, like the paper — the
  /// Table 3 Browser miss depends on this being off).
  bool ModelFragments = false;
  /// Inter-procedural nullness behind IG/IA instead of the paper's
  /// syntactic guard analyses.
  bool DataflowGuards = true;
  /// Run the happens-before refutation engine over every may-HB-pruned
  /// pair, labeling each RHB/CHB/PHB suppression proved or assumed
  /// (--refute). Off by default: provenance is metadata and the default
  /// pipeline stays heuristic-labeled and cheap.
  bool Refute = false;
  /// Run the tier-2 history refuter over every pair tier 1 left assumed
  /// (--refute-v2; implies Refute). Discharged pairs are labeled
  /// proved-v2 with their obligation chain. Off by default.
  bool RefuteHistory = false;
  /// Run the lint checkers (nullness lints + the typestate protocol
  /// engine) alongside the pipeline (--lint). Off by default; when off
  /// the TypestatePass is never built and every report is byte-identical
  /// to a pre-lint build.
  bool Lint = false;

  /// A stable, human-readable digest of every field that can change an
  /// analysis result — the identity half of the batch result cache's
  /// key and the staleness check on `--batch-log` rows. Two option
  /// structs produce the same fingerprint iff the pipeline would
  /// produce the same results (the §8.8 degraded ladder, for instance,
  /// rewrites K/DataflowGuards/Refute and therefore fingerprints
  /// differently). Any new result-bearing field MUST be folded in here;
  /// the "opt1" prefix is this encoding's own version tag.
  std::string fingerprint() const;
};

/// One row of per-analysis accounting, as rendered by --stats and --json.
struct PassStat {
  std::string Name;
  double Seconds = 0;   ///< exclusive build self-time, summed over rebuilds
  uint64_t Builds = 0;  ///< times constructed (>1 after invalidation)
  uint64_t Hits = 0;    ///< cache hits after construction
  long RssKb = 0;       ///< resident-set growth sampled around the builds
  bool Cached = false;  ///< currently materialized
};

// Pass keys. Each names one analysis: `Result` is the cached type and
// `run` builds it, requesting dependencies back through the manager so
// that dependency edges and timings are recorded. Definitions live in
// AnalysisManager.cpp; a pass is a key, not an object — it carries no
// state of its own.

/// Android API classification tables. Immutable once built, so the batch
/// driver's concurrent per-app analyses can share the underlying static
/// framework model freely.
struct ApiIndexPass {
  static constexpr const char *Name = "apiindex";
  using Result = android::ApiIndex;
  static std::unique_ptr<Result> run(AnalysisManager &AM);
};

/// §4 threadification. Depends on: options().ModelFragments.
struct ThreadForestPass {
  static constexpr const char *Name = "threadforest";
  using Result = threadify::ThreadForest;
  static std::unique_ptr<Result> run(AnalysisManager &AM);
};

/// §5 k-object-sensitive points-to, solved to fixpoint. Depends on:
/// apis, forest, options().K.
struct PointsToPass {
  static constexpr const char *Name = "pointsto";
  using Result = analysis::PointsToAnalysis;
  static std::unique_ptr<Result> run(AnalysisManager &AM);
};

/// Thread-to-context reachability. Depends on: pointsto, forest.
struct ThreadReachPass {
  static constexpr const char *Name = "threadreach";
  using Result = analysis::ThreadReach;
  static std::unique_ptr<Result> run(AnalysisManager &AM);
};

/// §5 racy-pair enumeration (the potential-UAF warning list).
struct DetectionPass {
  static constexpr const char *Name = "detection";
  using Result = race::DetectorResult;
  static std::unique_ptr<Result> run(AnalysisManager &AM);
};

/// Whole-program inter-procedural nullness (backs IG/IA and --lint).
struct NullnessPass {
  static constexpr const char *Name = "nullness";
  using Result = analysis::NullnessAnalysis;
  static std::unique_ptr<Result> run(AnalysisManager &AM);
};

/// Lock nesting / locks-held-at queries. Depends on: pointsto.
struct LocksetPass {
  static constexpr const char *Name = "lockset";
  using Result = analysis::LocksetAnalysis;
  static std::unique_ptr<Result> run(AnalysisManager &AM);
};

/// Cancellation reachability (CHB's substrate). Depends on: apis,
/// hbquery (the shared syntactic-reach memo).
struct CancelReachPass {
  static constexpr const char *Name = "cancelreach";
  using Result = analysis::CancelReach;
  static std::unique_ptr<Result> run(AnalysisManager &AM);
};

/// The shared happens-before/reachability query layer: the forest's
/// transitive post matrix, the program-wide syntactic-reach memo and the
/// refuter pair-skeleton cache. Depends on: apis, forest — so a
/// ModelFragments flip cascades here and on to every consumer.
struct HbQueryPass {
  static constexpr const char *Name = "hbquery";
  using Result = analysis::HbQuery;
  static std::unique_ptr<Result> run(AnalysisManager &AM);
};

/// Thread-escape facts. Depends on: pointsto, threadreach, forest.
struct EscapePass {
  static constexpr const char *Name = "escape";
  using Result = analysis::EscapeAnalysis;
  static std::unique_ptr<Result> run(AnalysisManager &AM);
};

/// The may-HB refutation engine (--refute). Depends on: forest (so
/// ModelFragments invalidation cascades here), pointsto, threadreach,
/// cancelreach, escape, and the cfg/allocflow caches.
struct HbRefuterPass {
  static constexpr const char *Name = "hbrefuter";
  using Result = analysis::HbRefuter;
  static std::unique_ptr<Result> run(AnalysisManager &AM);
};

/// The tier-2 history-predicate refinement engine (--refute-v2). Same
/// dependency set as HbRefuterPass — both search the shared RefuterModel.
struct HistoryRefuterPass {
  static constexpr const char *Name = "historyrefuter";
  using Result = analysis::HistoryRefuter;
  static std::unique_ptr<Result> run(AnalysisManager &AM);
};

/// The declarative-protocol typestate engine (--lint). Depends on: apis,
/// forest, hbquery, the cfg cache, and the builtin FrameworkSpec's
/// protocol machines.
struct TypestatePass {
  static constexpr const char *Name = "typestate";
  using Result = analysis::TypestateAnalysis;
  static std::unique_ptr<Result> run(AnalysisManager &AM);
};

/// Per-method control-flow graphs, built on demand per method.
struct CfgCachePass {
  static constexpr const char *Name = "cfg";
  using Result = analysis::MethodCfgCache;
  static std::unique_ptr<Result> run(AnalysisManager &AM);
};

/// Per-method syntactic guard facts, shared by filters and DEvA.
struct GuardCachePass {
  static constexpr const char *Name = "guards";
  using Result = analysis::MethodGuardCache;
  static std::unique_ptr<Result> run(AnalysisManager &AM);
};

/// Per-method must-allocation facts (both IA and MA modes).
struct AllocFlowCachePass {
  static constexpr const char *Name = "allocflow";
  using Result = analysis::MethodAllocFlowCache;
  static std::unique_ptr<Result> run(AnalysisManager &AM);
};

/// Per-method load-consumer summaries (UR's substrate).
struct ConsumersCachePass {
  static constexpr const char *Name = "consumers";
  using Result = analysis::MethodConsumersCache;
  static std::unique_ptr<Result> run(AnalysisManager &AM);
};

/// The §6 filter context, borrowing every shared analysis from the
/// manager. Depends on: forest, pointsto, threadreach, apis, lockset,
/// cancelreach, the per-method caches, lazily nullness, and
/// options().DataflowGuards.
struct FilterContextPass {
  static constexpr const char *Name = "filterctx";
  using Result = filters::FilterContext;
  static std::unique_ptr<Result> run(AnalysisManager &AM);
};

/// The filter engine over the shared context.
struct FilterEnginePass {
  static constexpr const char *Name = "filterengine";
  using Result = filters::FilterEngine;
  static std::unique_ptr<Result> run(AnalysisManager &AM);
};

/// The full sound-then-unsound verdict sweep over every detected
/// warning — Table 1's "after sound/unsound" columns. Runs on the
/// manager's thread pool when one is attached.
struct VerdictsPass {
  static constexpr const char *Name = "verdicts";
  using Result = filters::PipelineResult;
  static std::unique_ptr<Result> run(AnalysisManager &AM);
};

/// The lazy analysis registry for one program. See the file comment.
class AnalysisManager {
public:
  explicit AnalysisManager(const ir::Program &P,
                           PipelineOptions Opts = PipelineOptions{});
  ~AnalysisManager();

  AnalysisManager(const AnalysisManager &) = delete;
  AnalysisManager &operator=(const AnalysisManager &) = delete;

  const ir::Program &program() const { return P; }
  const PipelineOptions &options() const { return Opts; }

  /// Changes options, invalidating exactly the analyses (and their
  /// transitive dependents) each changed field feeds.
  void setOptions(const PipelineOptions &New);

  /// The invalidation entry point for the incremental frontend: the
  /// program's statements changed — \p ChangedMethods were regrafted,
  /// everything else kept its statement objects. Drops every whole-
  /// program analysis (they all read statements), but keeps the four
  /// per-method caches, evicting only the regrafted methods' entries —
  /// this is what makes a one-method edit rebuild strictly fewer passes
  /// than a cold analyze. Accounting survives, so passStats() deltas
  /// show exactly which passes the re-analysis then rebuilds.
  void invalidateBodyEdit(const std::vector<const ir::Method *> &ChangedMethods);

  /// Attaches a pool the VerdictsPass fans its per-warning loop over.
  /// Not owned; pass nullptr to detach. Results are identical either way.
  void setThreadPool(support::ThreadPool *Pool) { Pool_ = Pool; }
  support::ThreadPool *threadPool() const { return Pool_; }

  /// Attaches a cooperative deadline (not owned; nullptr to detach).
  /// Every pass build checks it first, and the expensive analyses poll
  /// it at their safe points; expiry surfaces as DeadlineExceeded from
  /// whatever get<>() was running. A completed result is never damaged:
  /// cancellation only prevents builds, it does not evict.
  void setDeadline(const support::Deadline *D) { Deadline_ = D; }
  const support::Deadline *deadline() const { return Deadline_; }

  /// Per-pass RSS deltas sample process-global residency, which is only
  /// attributable when nothing else allocates concurrently. The batch
  /// driver turns sampling off for its parallel lanes so they don't
  /// cross-charge each other; single-app --stats keeps the default.
  void setRssTracking(bool Track) { TrackRss_ = Track; }
  bool rssTracking() const { return TrackRss_; }

  /// The analysis keyed by \p PassT, built on first request. References
  /// stay valid until the pass is invalidated or the manager dies.
  template <typename PassT> const typename PassT::Result &get() {
    return getMutable<PassT>();
  }

  /// Mutable access, for results that are themselves demand-filled
  /// caches (the per-method caches, the filter context/engine).
  template <typename PassT> typename PassT::Result &getMutable() {
    const std::type_index Key(typeid(PassT));
    CacheEntry &E = slot(Key, PassT::Name);
    if (E.Data) {
      noteHit(E);
      return *static_cast<Slot<typename PassT::Result> *>(E.Data.get())->Value;
    }
    // The inter-pass safe point: nothing is half-built between builds,
    // so an expired deadline may abort the whole request chain here.
    if (Deadline_)
      Deadline_->check(PassT::Name);
    beginBuild(Key);
    std::unique_ptr<typename PassT::Result> Value;
    try {
      Value = PassT::run(*this);
    } catch (...) {
      // A throwing build (deadline expiry, a pathological input) must
      // not leave its frame behind: the manager stays usable and the
      // batch driver's per-app boundary sees a clean unwind.
      abortBuild(Key);
      throw;
    }
    auto S = std::make_unique<Slot<typename PassT::Result>>();
    typename PassT::Result &Ref = *Value;
    S->Value = std::move(Value);
    endBuild(Key, std::move(S));
    return Ref;
  }

  /// True when the analysis is currently materialized. Never triggers a
  /// build — this is how tests pin laziness.
  template <typename PassT> bool isCached() const {
    auto It = Cache.find(std::type_index(typeid(PassT)));
    return It != Cache.end() && It->second.Data != nullptr;
  }

  /// Drops the analysis and, transitively, everything recorded as
  /// depending on it. Accounting (build counts, times) survives.
  template <typename PassT> void invalidate() {
    invalidateKey(std::type_index(typeid(PassT)));
  }

  /// Records that \p DependentT must be dropped whenever \p DepT is,
  /// without building either — for dependencies consumed lazily, where
  /// the consuming build may finish before the dependency is requested.
  template <typename DepT, typename DependentT> void addLazyEdge() {
    slot(std::type_index(typeid(DepT)), DepT::Name)
        .Dependents.insert(std::type_index(typeid(DependentT)));
  }

  // Named accessors — the vocabulary the rest of the system uses.
  const android::ApiIndex &apis() { return get<ApiIndexPass>(); }
  const threadify::ThreadForest &forest() { return get<ThreadForestPass>(); }
  const analysis::PointsToAnalysis &pointsTo() { return get<PointsToPass>(); }
  const analysis::ThreadReach &reach() { return get<ThreadReachPass>(); }
  const race::DetectorResult &detection() { return get<DetectionPass>(); }
  const analysis::NullnessAnalysis &nullness() { return get<NullnessPass>(); }
  const analysis::LocksetAnalysis &lockset() { return get<LocksetPass>(); }
  const analysis::CancelReach &cancelReach() { return get<CancelReachPass>(); }
  const analysis::HbQuery &hbQuery() { return get<HbQueryPass>(); }
  const analysis::EscapeAnalysis &escape() { return get<EscapePass>(); }
  const analysis::HbRefuter &hbRefuter() { return get<HbRefuterPass>(); }
  const analysis::HistoryRefuter &historyRefuter() {
    return get<HistoryRefuterPass>();
  }
  const analysis::TypestateAnalysis &typestate() {
    return get<TypestatePass>();
  }
  const analysis::Cfg &cfg(const ir::Method &M) {
    return getMutable<CfgCachePass>().get(M);
  }
  const analysis::GuardAnalysis &guards(const ir::Method &M) {
    return getMutable<GuardCachePass>().get(M);
  }
  const analysis::AllocFlowResult &
  allocFlow(const ir::Method &M, bool TreatCallResultAsAlloc = false) {
    return getMutable<AllocFlowCachePass>().get(M, TreatCallResultAsAlloc);
  }
  const std::map<const ir::LoadStmt *, ir::LoadConsumers> &
  consumers(const ir::Method &M) {
    return getMutable<ConsumersCachePass>().get(M);
  }
  filters::FilterContext &filterContext() {
    return getMutable<FilterContextPass>();
  }
  filters::FilterEngine &engine() { return getMutable<FilterEnginePass>(); }
  const filters::PipelineResult &verdicts() { return get<VerdictsPass>(); }

  /// The `pipeline.<name>.{ms,builds,hits,rsskb}` counters.
  const StatRegistry &stats() const { return Stats; }

  /// Accounting rows for every analysis touched so far, sorted by name.
  std::vector<PassStat> passStats() const;

private:
  struct SlotBase {
    virtual ~SlotBase() = default;
  };
  template <typename R> struct Slot : SlotBase {
    std::unique_ptr<R> Value;
  };

  struct CacheEntry {
    std::unique_ptr<SlotBase> Data;
    const char *Name = "?";
    double Seconds = 0;
    uint64_t Builds = 0;
    uint64_t Hits = 0;
    long RssKb = 0;
    /// Passes that requested this one while building — dropped when this
    /// pass is invalidated. Edges persist across rebuilds.
    std::set<std::type_index> Dependents;
  };

  struct BuildFrame {
    std::type_index Key;
    std::chrono::steady_clock::time_point Start;
    long RssStartKb = 0;
    /// Accumulated total time of dependencies built inside this frame,
    /// subtracted to get exclusive self-time.
    double ChildSeconds = 0;
  };

  /// The materialized result for \p PassT, or nullptr — never builds and
  /// never counts as a hit (eviction plumbing, not a request).
  template <typename PassT> typename PassT::Result *peek() {
    auto It = Cache.find(std::type_index(typeid(PassT)));
    if (It == Cache.end() || !It->second.Data)
      return nullptr;
    return static_cast<Slot<typename PassT::Result> *>(It->second.Data.get())
        ->Value.get();
  }

  CacheEntry &slot(std::type_index Key, const char *Name);
  void noteHit(CacheEntry &E);
  void beginBuild(std::type_index Key);
  void endBuild(std::type_index Key, std::unique_ptr<SlotBase> Data);
  void abortBuild(std::type_index Key);
  void invalidateKey(std::type_index Key);

  const ir::Program &P;
  PipelineOptions Opts;
  support::ThreadPool *Pool_ = nullptr;
  const support::Deadline *Deadline_ = nullptr;
  bool TrackRss_ = true;
  std::map<std::type_index, CacheEntry> Cache;
  std::vector<BuildFrame> BuildStack;
  StatRegistry Stats;
};

} // namespace nadroid::pipeline

#endif // NADROID_PIPELINE_ANALYSISMANAGER_H
