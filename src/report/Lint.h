//===- report/Lint.h - AIR lint pass over nullness facts --------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `nadroid --lint`: three AIR-level checkers built on the same
/// inter-procedural nullness analysis the IG/IA filters consume
/// (analysis/Nullness.h):
///
///  * double-free         — a field nulled when it is already definitely
///                          null (two frees with no intervening store);
///  * null-deref          — a call through a receiver that is definitely
///                          null on every path;
///  * redundant-null-check — a null test whose outcome is statically
///                          known.
///
/// The nullness checkers are per-method facts (strengthened by
/// caller/callee summaries) rendered with file:line:col diagnostics.
/// A fourth family — the typestate protocol checkers (analysis/
/// Typestate.h) — DOES use the thread model: it runs the declarative
/// `protocol` machines of the FrameworkSpec over the threadification
/// forest, so its findings carry the violating callback-order chain.
/// runLintChecks bundles both families with per-family timings; the
/// driver and the batch runner consume that bundle.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_REPORT_LINT_H
#define NADROID_REPORT_LINT_H

#include "analysis/Nullness.h"
#include "analysis/Typestate.h"
#include "ir/Ir.h"
#include "pipeline/AnalysisManager.h"

#include <ostream>
#include <string>
#include <vector>

namespace nadroid::report {

/// Everything `--lint` produced: both checker families plus their
/// wall-clock cost (the batch JSON reports TypestateSec; CI bounds it
/// against the filtering phase).
struct LintResult {
  std::vector<analysis::LintFinding> Nullness;
  std::vector<analysis::TypestateFinding> Typestate;
  double NullnessSec = 0;
  double TypestateSec = 0;
  bool empty() const { return Nullness.empty() && Typestate.empty(); }
};

/// Runs the lint checkers over \p P; findings come back in deterministic
/// (method, statement) order.
std::vector<analysis::LintFinding> runLint(const ir::Program &P);

/// Same through a caller's manager — builds exactly the nullness
/// analysis (reusing it if already cached) and nothing else.
std::vector<analysis::LintFinding> runLint(pipeline::AnalysisManager &AM);

/// Runs both lint families through \p AM. The typestate engine is built
/// only when AM.options().Lint is set — with it off this degenerates to
/// runLint plus timing, and the TypestatePass is never constructed.
LintResult runLintChecks(pipeline::AnalysisManager &AM);

/// Renders one finding as a "file:line:col: warning: ..." diagnostic
/// (plus a "note:" line when the prior free site is known).
std::string renderLintFinding(const ir::Program &P,
                              const analysis::LintFinding &F);

/// Renders one typestate violation as a "file:line:col: warning:
/// <message> [protocol <name>]" diagnostic plus the containing method
/// and component; with \p Explain, appends the violating callback-order
/// chain ("callback chain: EC onCreate@Act > EC onDestroy@Act").
std::string renderTypestateFinding(const ir::Program &P,
                                   const analysis::TypestateFinding &F,
                                   bool Explain);

/// Machine-readable `--lint --json` report: one pretty-printed object
/// with "nullness" and "typestate" finding arrays, counts, and
/// per-family timings.
std::string renderLintJson(const ir::Program &P, const LintResult &L);

/// The complete `--lint` stdout: the JSON object with \p Json, else one
/// diagnostic per finding plus the count line. The one-shot CLI and the
/// serve daemon both render through this, which is what makes their
/// lint responses byte-identical.
void renderLintReport(const ir::Program &P, const LintResult &L, bool Json,
                      bool Explain, std::ostream &OS);

} // namespace nadroid::report

#endif // NADROID_REPORT_LINT_H
