//===- report/Lint.h - AIR lint pass over nullness facts --------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `nadroid --lint`: three AIR-level checkers built on the same
/// inter-procedural nullness analysis the IG/IA filters consume
/// (analysis/Nullness.h):
///
///  * double-free         — a field nulled when it is already definitely
///                          null (two frees with no intervening store);
///  * null-deref          — a call through a receiver that is definitely
///                          null on every path;
///  * redundant-null-check — a null test whose outcome is statically
///                          known.
///
/// Unlike the UAF pipeline, lint has no thread model: findings are
/// per-method facts (strengthened by caller/callee summaries) rendered
/// with file:line:col diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_REPORT_LINT_H
#define NADROID_REPORT_LINT_H

#include "analysis/Nullness.h"
#include "ir/Ir.h"
#include "pipeline/AnalysisManager.h"

#include <string>
#include <vector>

namespace nadroid::report {

/// Runs the lint checkers over \p P; findings come back in deterministic
/// (method, statement) order.
std::vector<analysis::LintFinding> runLint(const ir::Program &P);

/// Same through a caller's manager — builds exactly the nullness
/// analysis (reusing it if already cached) and nothing else.
std::vector<analysis::LintFinding> runLint(pipeline::AnalysisManager &AM);

/// Renders one finding as a "file:line:col: warning: ..." diagnostic
/// (plus a "note:" line when the prior free site is known).
std::string renderLintFinding(const ir::Program &P,
                              const analysis::LintFinding &F);

} // namespace nadroid::report

#endif // NADROID_REPORT_LINT_H
