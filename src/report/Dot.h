//===- report/Dot.h - Graphviz export of the thread forest ------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the threadified program (Figure 3) as Graphviz DOT: the dummy
/// main at the root, entry callbacks as children, posted callbacks under
/// their posters, native threads double-circled. When a pipeline result
/// is supplied, the threads of remaining warnings are highlighted and
/// use/free edges drawn between them.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_REPORT_DOT_H
#define NADROID_REPORT_DOT_H

#include "report/Nadroid.h"

#include <string>

namespace nadroid::report {

/// Renders \p Forest alone.
std::string threadForestToDot(const threadify::ThreadForest &Forest);

/// Renders the forest plus the remaining warnings of \p R as red
/// use→free edges.
std::string analysisToDot(const NadroidResult &R);

} // namespace nadroid::report

#endif // NADROID_REPORT_DOT_H
