//===- report/Dot.cpp - Graphviz export of the thread forest -------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "report/Dot.h"

#include <sstream>

using namespace nadroid;
using namespace nadroid::report;
using threadify::ModeledThread;
using threadify::ThreadForest;
using threadify::ThreadOrigin;

namespace {

std::string nodeId(const ModeledThread *T) {
  return "t" + std::to_string(T->id());
}

std::string escaped(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

void emitNodes(const ThreadForest &Forest, std::ostringstream &OS,
               const std::set<const ModeledThread *> &Highlight) {
  for (const auto &T : Forest.threads()) {
    OS << "  " << nodeId(T.get()) << " [label=\""
       << escaped(T->label()) << "\"";
    switch (T->origin()) {
    case ThreadOrigin::DummyMain:
      OS << ", shape=box, style=bold";
      break;
    case ThreadOrigin::EntryCallback:
      OS << ", shape=ellipse";
      break;
    case ThreadOrigin::PostedCallback:
      OS << ", shape=ellipse, style=dashed";
      break;
    case ThreadOrigin::NativeThread:
      OS << ", shape=doublecircle";
      break;
    }
    if (Highlight.count(T.get()))
      OS << ", color=red, fontcolor=red";
    if (!T->componentReachable())
      OS << ", style=dotted";
    OS << "];\n";
  }
  for (const auto &T : Forest.threads())
    if (T->parent())
      OS << "  " << nodeId(T->parent()) << " -> " << nodeId(T.get())
         << ";\n";
}

} // namespace

std::string report::threadForestToDot(const ThreadForest &Forest) {
  std::ostringstream OS;
  OS << "digraph nadroid {\n  rankdir=TB;\n";
  emitNodes(Forest, OS, {});
  OS << "}\n";
  return OS.str();
}

std::string report::analysisToDot(const NadroidResult &R) {
  std::set<const ModeledThread *> Highlight;
  std::vector<std::pair<const ModeledThread *, const ModeledThread *>>
      RaceEdges;
  for (size_t I : R.remainingIndices()) {
    for (const race::ThreadPair &TP :
         R.Pipeline.Verdicts[I].PairsRemaining) {
      Highlight.insert(TP.UseThread);
      Highlight.insert(TP.FreeThread);
      RaceEdges.emplace_back(TP.UseThread, TP.FreeThread);
    }
  }

  std::ostringstream OS;
  OS << "digraph nadroid {\n  rankdir=TB;\n";
  emitNodes(*R.Forest, OS, Highlight);
  for (const auto &[Use, Free] : RaceEdges)
    OS << "  " << nodeId(Use) << " -> " << nodeId(Free)
       << " [color=red, style=bold, dir=both, constraint=false, "
          "label=\"UAF\"];\n";
  OS << "}\n";
  return OS.str();
}
