//===- report/Explain.h - Natural-language verdict explanations -*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a warning's verdict into prose a developer can act on: which
/// filter disposed of each thread pair and the concrete happens-before
/// or idiom fact it relied on ("onServiceConnected always precedes
/// onServiceDisconnected of the same binding", "the check and the use
/// are atomic on the UI looper", ...). False-positive reports are only
/// useful when the tool can say *why* it believed them false — the §6
/// filters each encode one such reason.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_REPORT_EXPLAIN_H
#define NADROID_REPORT_EXPLAIN_H

#include "report/Nadroid.h"

namespace nadroid::report {

/// One explanation line per (thread pair, firing filter) of warning
/// \p Index; for remaining warnings, one line per surviving pair saying
/// why nothing applied.
std::vector<std::string> explainVerdict(const NadroidResult &R,
                                        size_t Index);

/// Convenience: the lines joined with newlines and indentation.
std::string renderExplanation(const NadroidResult &R, size_t Index);

} // namespace nadroid::report

#endif // NADROID_REPORT_EXPLAIN_H
