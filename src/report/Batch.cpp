//===- report/Batch.cpp - Parallel corpus-scale batch driver --------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "report/Batch.h"

#include "frontend/Frontend.h"
#include "report/Json.h"
#include "support/TableWriter.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>

using namespace nadroid;
using namespace nadroid::report;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

/// Parse + analyze one app, keeping only aggregate numbers. The Program
/// and the manager die with this frame — a batch run's live memory is
/// one app per pool lane, not the whole corpus.
void analyzeOne(const fs::path &Path, const BatchOptions &Opts,
                support::ThreadPool &Pool, BatchApp &Out) {
  Out.File = Path.filename().string();
  frontend::ParseResult Parsed = frontend::parseProgramFile(Path.string());
  Out.Name = Parsed.Prog ? Parsed.Prog->name() : Path.stem().string();
  if (!Parsed.Success) {
    Out.Ok = false;
    std::ostringstream OS;
    for (const Diagnostic &D : Parsed.Diags) {
      OS << Parsed.Prog->sourceManager().render(D.Loc) << ": " << D.Message;
      break; // first diagnostic is enough for the aggregate row
    }
    Out.Error = OS.str();
    return;
  }

  auto AM = std::make_shared<pipeline::AnalysisManager>(*Parsed.Prog,
                                                        Opts.Pipeline);
  AM->setThreadPool(&Pool); // nested: verdicts fan out over the same pool
  NadroidResult R = analyzeProgram(AM);

  Out.Ok = true;
  Out.Stmts = Parsed.Prog->statementCount();
  Out.EntryCallbacks = R.Forest->entryCallbackCount();
  Out.PostedCallbacks = R.Forest->postedCallbackCount();
  Out.Threads = R.Forest->threadCount();
  Out.Potential = static_cast<unsigned>(R.warnings().size());
  Out.AfterSound = R.Pipeline.RemainingAfterSound;
  Out.AfterUnsound = R.Pipeline.RemainingAfterUnsound;
  Out.Timings = R.Timings;
  Out.Analyses = AM->passStats();
}

std::string fixed1(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", V);
  return Buf;
}

std::string fixed6(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

} // namespace

int BatchResult::exitCode() const {
  int Code = 0;
  for (const BatchApp &A : Apps) {
    if (!A.Ok)
      return 2;
    if (A.AfterUnsound > 0)
      Code = 1;
  }
  return Code;
}

BatchResult report::runBatch(const BatchOptions &Opts) {
  BatchResult R;

  std::vector<fs::path> Files;
  std::error_code Ec;
  for (const fs::directory_entry &E : fs::directory_iterator(Opts.Dir, Ec))
    if (E.is_regular_file() && E.path().extension() == ".air")
      Files.push_back(E.path());
  // directory_iterator order is unspecified; the sort is what makes the
  // report independent of the filesystem and of --jobs.
  std::sort(Files.begin(), Files.end(), [](const fs::path &A,
                                           const fs::path &B) {
    return A.filename().string() < B.filename().string();
  });

  support::ThreadPool Pool(Opts.Jobs);
  R.Jobs = Pool.concurrency();
  R.Apps.resize(Files.size());

  auto T0 = Clock::now();
  Pool.parallelFor(Files.size(), [&](size_t I) {
    analyzeOne(Files[I], Opts, Pool, R.Apps[I]);
  });
  R.WallSec = std::chrono::duration<double>(Clock::now() - T0).count();
  return R;
}

std::string report::renderBatchReport(const BatchResult &R) {
  std::ostringstream OS;
  TableWriter T({"App", "Stmts", "EC", "PC", "T", "Potential", "Sound",
                 "Unsound"});
  unsigned Apps = 0, Failed = 0;
  unsigned long long Stmts = 0, Potential = 0, Sound = 0, Unsound = 0;
  for (const BatchApp &A : R.Apps) {
    if (!A.Ok) {
      T.addRow({A.Name, "-", "-", "-", "-", "-", "-", "-"});
      ++Failed;
      continue;
    }
    T.addRow({A.Name, TableWriter::cell(A.Stmts),
              TableWriter::cell(A.EntryCallbacks),
              TableWriter::cell(A.PostedCallbacks),
              TableWriter::cell(A.Threads), TableWriter::cell(A.Potential),
              TableWriter::cell(A.AfterSound),
              TableWriter::cell(A.AfterUnsound)});
    ++Apps;
    Stmts += A.Stmts;
    Potential += A.Potential;
    Sound += A.AfterSound;
    Unsound += A.AfterUnsound;
  }
  T.addRow({"TOTAL", TableWriter::cell((long long)Stmts), "", "", "",
            TableWriter::cell((long long)Potential),
            TableWriter::cell((long long)Sound),
            TableWriter::cell((long long)Unsound)});
  T.print(OS);
  OS << "\n" << Apps << " apps: " << Potential << " potential UAFs, " << Sound
     << " after sound filters, " << Unsound << " after unsound filters\n";
  if (Failed) {
    OS << Failed << " app(s) failed to parse:\n";
    for (const BatchApp &A : R.Apps)
      if (!A.Ok)
        OS << "  " << A.File << ": " << A.Error << "\n";
  }
  return OS.str();
}

std::string report::renderBatchJson(const BatchResult &R) {
  std::ostringstream OS;
  OS << "{\n  \"jobs\": " << R.Jobs << ",\n  \"wallSec\": " << fixed6(R.WallSec)
     << ",\n  \"apps\": [";
  bool FirstApp = true;
  unsigned long long Potential = 0, Sound = 0, Unsound = 0;
  for (const BatchApp &A : R.Apps) {
    OS << (FirstApp ? "" : ",") << "\n    {\"file\": \"" << jsonEscape(A.File)
       << "\", \"app\": \"" << jsonEscape(A.Name) << "\", \"ok\": "
       << (A.Ok ? "true" : "false");
    FirstApp = false;
    if (!A.Ok) {
      OS << ", \"error\": \"" << jsonEscape(A.Error) << "\"}";
      continue;
    }
    Potential += A.Potential;
    Sound += A.AfterSound;
    Unsound += A.AfterUnsound;
    OS << ",\n     \"summary\": {\"stmts\": " << A.Stmts
       << ", \"potential\": " << A.Potential
       << ", \"afterSound\": " << A.AfterSound
       << ", \"afterUnsound\": " << A.AfterUnsound << "},\n"
       << "     \"timings\": {\"modelingSec\": " << fixed6(A.Timings.ModelingSec)
       << ", \"detectionSec\": " << fixed6(A.Timings.DetectionSec)
       << ", \"filteringSec\": " << fixed6(A.Timings.FilteringSec) << "},\n"
       << "     \"analyses\": [";
    bool FirstPass = true;
    for (const pipeline::PassStat &S : A.Analyses) {
      OS << (FirstPass ? "" : ", ") << "{\"name\": \"" << jsonEscape(S.Name)
         << "\", \"ms\": " << fixed1(S.Seconds * 1000.0)
         << ", \"builds\": " << S.Builds << ", \"hits\": " << S.Hits
         << ", \"rssKb\": " << S.RssKb << "}";
      FirstPass = false;
    }
    OS << "]}";
  }
  OS << "\n  ],\n  \"totals\": {\"apps\": " << R.Apps.size()
     << ", \"potential\": " << Potential << ", \"afterSound\": " << Sound
     << ", \"afterUnsound\": " << Unsound << "}\n}\n";
  return OS.str();
}
