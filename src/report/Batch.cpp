//===- report/Batch.cpp - Parallel corpus-scale batch driver --------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "report/Batch.h"

#include "frontend/Frontend.h"
#include "report/Json.h"
#include "support/Deadline.h"
#include "support/TableWriter.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

using namespace nadroid;
using namespace nadroid::report;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

/// The §8.8 degradation ladder, applied all at once: shallower contexts,
/// the syntactic filter analyses, no refutation engine.
pipeline::PipelineOptions degradedOptions(pipeline::PipelineOptions Opts) {
  Opts.K = 1;
  Opts.DataflowGuards = false;
  Opts.Refute = false;
  return Opts;
}

/// Parse + analyze one app, keeping only aggregate numbers. The Program
/// and the manager die with this frame — a batch run's live memory is
/// one app per pool lane, not the whole corpus. Throws on crashes and
/// test-hook injections; analyzeOne's boundary turns those into rows.
void analyzeOneImpl(const fs::path &Path, const BatchOptions &Opts,
                    support::ThreadPool &Pool, BatchApp &Out) {
  frontend::ParseResult Parsed = frontend::parseProgramFile(Path.string());
  if (Parsed.Prog)
    Out.Name = Parsed.Prog->name();
  if (!Parsed.Success) {
    Out.Status = BatchStatus::ParseFailed;
    for (const Diagnostic &D : Parsed.Diags) {
      std::ostringstream OS;
      // An unreadable file carries the invalid location; the "<builtin>"
      // it would render as only obscures the message.
      if (D.Loc.isValid())
        OS << Parsed.Prog->sourceManager().render(D.Loc) << ": ";
      OS << D.Message;
      Out.Error = OS.str();
      break; // first diagnostic is enough for the aggregate row
    }
    return;
  }

  if (!Opts.TestCrashApp.empty() && Out.File == Opts.TestCrashApp)
    throw std::runtime_error("injected test-hook crash");

  pipeline::PipelineOptions Pipe = Opts.Pipeline;
  for (unsigned Attempt = 0;; ++Attempt) {
    support::Deadline D(Opts.TimeoutSec);
    if ((!Opts.TestExpireAlwaysApp.empty() &&
         Out.File == Opts.TestExpireAlwaysApp) ||
        (Attempt == 0 && !Opts.TestExpireApp.empty() &&
         Out.File == Opts.TestExpireApp))
      D.cancel();
    try {
      auto AM = std::make_shared<pipeline::AnalysisManager>(*Parsed.Prog,
                                                            Pipe);
      AM->setThreadPool(&Pool); // nested: verdicts fan out over the pool
      AM->setDeadline(&D);
      // Concurrent lanes share one process RSS, so per-pass deltas would
      // charge one app's allocations to whichever pass another lane
      // happens to be timing; only a serial batch can trust them.
      bool TrustRss = Pool.concurrency() == 1;
      AM->setRssTracking(TrustRss);
      NadroidResult R = analyzeProgram(AM);

      Out.Status = Attempt == 0 ? BatchStatus::Ok : BatchStatus::Degraded;
      Out.RssTrusted = TrustRss;
      Out.Stmts = Parsed.Prog->statementCount();
      Out.EntryCallbacks = R.Forest->entryCallbackCount();
      Out.PostedCallbacks = R.Forest->postedCallbackCount();
      Out.Threads = R.Forest->threadCount();
      Out.Potential = static_cast<unsigned>(R.warnings().size());
      Out.AfterSound = R.Pipeline.RemainingAfterSound;
      Out.AfterUnsound = R.Pipeline.RemainingAfterUnsound;
      Out.Timings = R.Timings;
      Out.Analyses = AM->passStats();
      return;
    } catch (const support::DeadlineExceeded &) {
      pipeline::PipelineOptions Next = degradedOptions(Pipe);
      bool CanDegrade = Attempt == 0 &&
                        (Next.K != Pipe.K ||
                         Next.DataflowGuards != Pipe.DataflowGuards ||
                         Next.Refute != Pipe.Refute);
      if (!CanDegrade) {
        Out.Status = BatchStatus::TimedOut;
        // Deliberately stable text (no site, no elapsed time): timed-out
        // rows must not perturb the byte-identical report contract.
        Out.Error = "per-app time budget exceeded";
        return;
      }
      Pipe = Next; // retry once, degraded
    }
  }
}

/// The per-app exception boundary: one misbehaving app becomes a failed
/// row, never a dead batch.
void analyzeOne(const fs::path &Path, const BatchOptions &Opts,
                support::ThreadPool &Pool, BatchApp &Out) {
  Out.File = Path.filename().string();
  Out.Name = Path.stem().string();
  try {
    analyzeOneImpl(Path, Opts, Pool, Out);
  } catch (const std::exception &E) {
    Out.Status = BatchStatus::Crashed;
    Out.Error = E.what();
  } catch (...) {
    Out.Status = BatchStatus::Crashed;
    Out.Error = "unrecognized exception";
  }
}

/// Extracts the raw text of `"Key": value` from one log line: the body
/// of a quoted string (still escaped), or the token up to the next
/// delimiter for numbers. Returns false when the key is absent — which
/// includes any line truncated by a killed writer mid-value.
bool findRawValue(const std::string &Line, const std::string &Key,
                  std::string &Out) {
  std::string Needle = "\"" + Key + "\": ";
  size_t At = Line.find(Needle);
  if (At == std::string::npos)
    return false;
  At += Needle.size();
  if (At >= Line.size())
    return false;
  if (Line[At] != '"') {
    size_t End = Line.find_first_of(",}", At);
    if (End == std::string::npos)
      return false;
    Out = Line.substr(At, End - At);
    return true;
  }
  std::string Raw;
  for (size_t I = At + 1; I < Line.size(); ++I) {
    if (Line[I] == '\\' && I + 1 < Line.size()) {
      Raw += Line[I];
      Raw += Line[I + 1];
      ++I;
      continue;
    }
    if (Line[I] == '"') {
      Out = std::move(Raw);
      return true;
    }
    Raw += Line[I];
  }
  return false; // unterminated string: truncated line
}

std::string findString(const std::string &Line, const std::string &Key) {
  std::string Raw;
  return findRawValue(Line, Key, Raw) ? jsonUnescape(Raw) : std::string();
}

unsigned findUnsigned(const std::string &Line, const std::string &Key) {
  std::string Raw;
  if (!findRawValue(Line, Key, Raw))
    return 0;
  return static_cast<unsigned>(std::strtoul(Raw.c_str(), nullptr, 10));
}

/// Locale-independent inverse of jsonFixed: strtod would read the
/// fraction through the *locale's* decimal point, not ".".
double findFixed(const std::string &Line, const std::string &Key) {
  std::string Raw;
  if (!findRawValue(Line, Key, Raw))
    return 0;
  double Sign = 1;
  size_t I = 0;
  if (I < Raw.size() && Raw[I] == '-') {
    Sign = -1;
    ++I;
  }
  double V = 0;
  for (; I < Raw.size() && std::isdigit(static_cast<unsigned char>(Raw[I]));
       ++I)
    V = V * 10 + (Raw[I] - '0');
  if (I < Raw.size() && Raw[I] == '.') {
    double Place = 0.1;
    for (++I;
         I < Raw.size() && std::isdigit(static_cast<unsigned char>(Raw[I]));
         ++I, Place *= 0.1)
      V += (Raw[I] - '0') * Place;
  }
  return Sign * V;
}

bool batchStatusFromName(const std::string &Name, BatchStatus &Out) {
  for (BatchStatus S :
       {BatchStatus::Ok, BatchStatus::Degraded, BatchStatus::ParseFailed,
        BatchStatus::Crashed, BatchStatus::TimedOut})
    if (Name == batchStatusName(S)) {
      Out = S;
      return true;
    }
  return false;
}

} // namespace

const char *report::batchStatusName(BatchStatus S) {
  switch (S) {
  case BatchStatus::Ok:
    return "ok";
  case BatchStatus::Degraded:
    return "degraded";
  case BatchStatus::ParseFailed:
    return "parse-failed";
  case BatchStatus::Crashed:
    return "crashed";
  case BatchStatus::TimedOut:
    return "timed-out";
  }
  return "unknown";
}

int BatchResult::exitCode() const {
  int Code = 0;
  for (const BatchApp &A : Apps) {
    int Severity = 0;
    switch (A.Status) {
    case BatchStatus::Ok:
    case BatchStatus::Degraded:
      Severity = A.AfterUnsound > 0 ? 1 : 0;
      break;
    case BatchStatus::ParseFailed:
      Severity = 2;
      break;
    case BatchStatus::Crashed:
      Severity = 3;
      break;
    case BatchStatus::TimedOut:
      Severity = 4;
      break;
    }
    Code = std::max(Code, Severity);
  }
  return Code;
}

std::string report::renderBatchLogLine(const BatchApp &A) {
  std::ostringstream OS;
  OS << "{\"file\": \"" << jsonEscape(A.File) << "\", \"name\": \""
     << jsonEscape(A.Name) << "\", \"status\": \"" << batchStatusName(A.Status)
     << "\", \"error\": \"" << jsonEscape(A.Error) << "\", \"stmts\": "
     << A.Stmts << ", \"entryCallbacks\": " << A.EntryCallbacks
     << ", \"postedCallbacks\": " << A.PostedCallbacks
     << ", \"threads\": " << A.Threads << ", \"potential\": " << A.Potential
     << ", \"afterSound\": " << A.AfterSound
     << ", \"afterUnsound\": " << A.AfterUnsound
     << ", \"modelingSec\": " << jsonFixed(A.Timings.ModelingSec, 6)
     << ", \"detectionSec\": " << jsonFixed(A.Timings.DetectionSec, 6)
     << ", \"filteringSec\": " << jsonFixed(A.Timings.FilteringSec, 6) << "}";
  return OS.str();
}

bool report::parseBatchLogLine(const std::string &Line, BatchApp &Out) {
  // A line a killed writer truncated cannot end in '}'; refusing it here
  // makes resume re-run that app instead of trusting half a row.
  if (Line.empty() || Line.back() != '}')
    return false;
  std::string File = findString(Line, "file");
  if (File.empty())
    return false;
  BatchStatus Status;
  if (!batchStatusFromName(findString(Line, "status"), Status))
    return false;
  Out = BatchApp();
  Out.File = std::move(File);
  Out.Name = findString(Line, "name");
  Out.Status = Status;
  Out.Error = findString(Line, "error");
  Out.Stmts = findUnsigned(Line, "stmts");
  Out.EntryCallbacks = findUnsigned(Line, "entryCallbacks");
  Out.PostedCallbacks = findUnsigned(Line, "postedCallbacks");
  Out.Threads = findUnsigned(Line, "threads");
  Out.Potential = findUnsigned(Line, "potential");
  Out.AfterSound = findUnsigned(Line, "afterSound");
  Out.AfterUnsound = findUnsigned(Line, "afterUnsound");
  Out.Timings.ModelingSec = findFixed(Line, "modelingSec");
  Out.Timings.DetectionSec = findFixed(Line, "detectionSec");
  Out.Timings.FilteringSec = findFixed(Line, "filteringSec");
  // Per-pass accounting is not checkpointed; a restored row renders an
  // empty analyses list and an untrusted RSS.
  return true;
}

BatchResult report::runBatch(const BatchOptions &OptsIn) {
  BatchOptions Opts = OptsIn;
  // CLI tests reach the fault-injection hooks through the environment;
  // explicit fields win when both are set.
  if (Opts.TestCrashApp.empty())
    if (const char *E = std::getenv("NADROID_TEST_CRASH_APP"))
      Opts.TestCrashApp = E;
  if (Opts.TestExpireApp.empty())
    if (const char *E = std::getenv("NADROID_TEST_EXPIRE_APP"))
      Opts.TestExpireApp = E;
  if (Opts.TestExpireAlwaysApp.empty())
    if (const char *E = std::getenv("NADROID_TEST_EXPIRE_ALWAYS_APP"))
      Opts.TestExpireAlwaysApp = E;

  BatchResult R;

  std::vector<fs::path> Files;
  std::error_code Ec;
  for (const fs::directory_entry &E : fs::directory_iterator(Opts.Dir, Ec))
    if (E.is_regular_file() && E.path().extension() == ".air")
      Files.push_back(E.path());
  // directory_iterator order is unspecified; the sort is what makes the
  // report independent of the filesystem and of --jobs.
  std::sort(Files.begin(), Files.end(), [](const fs::path &A,
                                           const fs::path &B) {
    return A.filename().string() < B.filename().string();
  });

  support::ThreadPool Pool(Opts.Jobs);
  R.Jobs = Pool.concurrency();
  R.Apps.resize(Files.size());

  // Restore checkpointed rows, then analyze only what is missing. Rows
  // are keyed by file name, so a resumed run tolerates a grown corpus.
  std::map<std::string, BatchApp> Logged;
  if (Opts.Resume && !Opts.LogPath.empty()) {
    std::ifstream In(Opts.LogPath);
    std::string Line;
    while (std::getline(In, Line)) {
      BatchApp A;
      if (parseBatchLogLine(Line, A))
        Logged[A.File] = std::move(A);
    }
  }
  std::vector<size_t> Pending;
  for (size_t I = 0; I < Files.size(); ++I) {
    auto It = Logged.find(Files[I].filename().string());
    if (It != Logged.end()) {
      R.Apps[I] = It->second;
      ++R.Resumed;
    } else {
      Pending.push_back(I);
    }
  }

  std::ofstream Log;
  std::mutex LogMu;
  if (!Opts.LogPath.empty())
    Log.open(Opts.LogPath, Opts.Resume ? std::ios::app : std::ios::trunc);

  auto T0 = Clock::now();
  Pool.parallelFor(Pending.size(), [&](size_t I) {
    BatchApp &Out = R.Apps[Pending[I]];
    analyzeOne(Files[Pending[I]], Opts, Pool, Out);
    if (Log.is_open()) {
      // Completion order, one line per app, flushed: a killed run loses
      // at most the apps that were still in flight.
      std::lock_guard<std::mutex> Lock(LogMu);
      Log << renderBatchLogLine(Out) << "\n" << std::flush;
    }
  });
  R.WallSec = std::chrono::duration<double>(Clock::now() - T0).count();
  return R;
}

std::string report::renderBatchReport(const BatchResult &R) {
  std::ostringstream OS;
  TableWriter T({"App", "Status", "Stmts", "EC", "PC", "T", "Potential",
                 "Sound", "Unsound"});
  unsigned Apps = 0, Degraded = 0, Failed = 0;
  unsigned long long Stmts = 0, Potential = 0, Sound = 0, Unsound = 0;
  for (const BatchApp &A : R.Apps) {
    if (!A.analyzed()) {
      T.addRow({A.File, batchStatusName(A.Status), "-", "-", "-", "-", "-",
                "-", "-"});
      ++Failed;
      continue;
    }
    T.addRow({A.Name, batchStatusName(A.Status), TableWriter::cell(A.Stmts),
              TableWriter::cell(A.EntryCallbacks),
              TableWriter::cell(A.PostedCallbacks),
              TableWriter::cell(A.Threads), TableWriter::cell(A.Potential),
              TableWriter::cell(A.AfterSound),
              TableWriter::cell(A.AfterUnsound)});
    ++Apps;
    if (A.Status == BatchStatus::Degraded)
      ++Degraded;
    Stmts += A.Stmts;
    Potential += A.Potential;
    Sound += A.AfterSound;
    Unsound += A.AfterUnsound;
  }
  T.addRow({"TOTAL", "", TableWriter::cell((long long)Stmts), "", "", "",
            TableWriter::cell((long long)Potential),
            TableWriter::cell((long long)Sound),
            TableWriter::cell((long long)Unsound)});
  T.print(OS);
  OS << "\n" << Apps << " apps: " << Potential << " potential UAFs, " << Sound
     << " after sound filters, " << Unsound << " after unsound filters\n";
  if (Degraded) {
    OS << Degraded << " app(s) analyzed with degraded options:\n";
    for (const BatchApp &A : R.Apps)
      if (A.Status == BatchStatus::Degraded)
        OS << "  " << A.File << "\n";
  }
  if (Failed) {
    OS << Failed << " app(s) did not complete:\n";
    for (const BatchApp &A : R.Apps)
      if (!A.analyzed())
        OS << "  " << A.File << " [" << batchStatusName(A.Status)
           << "]: " << A.Error << "\n";
  }
  return OS.str();
}

std::string report::renderBatchJson(const BatchResult &R) {
  std::ostringstream OS;
  OS << "{\n  \"jobs\": " << R.Jobs
     << ",\n  \"wallSec\": " << jsonFixed(R.WallSec, 6)
     << ",\n  \"resumed\": " << R.Resumed << ",\n  \"apps\": [";
  bool FirstApp = true;
  unsigned long long Potential = 0, Sound = 0, Unsound = 0;
  for (const BatchApp &A : R.Apps) {
    OS << (FirstApp ? "" : ",") << "\n    {\"file\": \"" << jsonEscape(A.File)
       << "\", \"app\": \"" << jsonEscape(A.Name) << "\", \"status\": \""
       << batchStatusName(A.Status) << "\", \"ok\": "
       << (A.analyzed() ? "true" : "false");
    FirstApp = false;
    if (!A.Error.empty())
      OS << ", \"error\": \"" << jsonEscape(A.Error) << "\"";
    if (!A.analyzed()) {
      OS << "}";
      continue;
    }
    Potential += A.Potential;
    Sound += A.AfterSound;
    Unsound += A.AfterUnsound;
    OS << ",\n     \"summary\": {\"stmts\": " << A.Stmts
       << ", \"potential\": " << A.Potential
       << ", \"afterSound\": " << A.AfterSound
       << ", \"afterUnsound\": " << A.AfterUnsound << "},\n"
       << "     \"timings\": {\"modelingSec\": "
       << jsonFixed(A.Timings.ModelingSec, 6)
       << ", \"detectionSec\": " << jsonFixed(A.Timings.DetectionSec, 6)
       << ", \"filteringSec\": " << jsonFixed(A.Timings.FilteringSec, 6)
       << "},\n"
       << "     \"analyses\": [";
    bool FirstPass = true;
    for (const pipeline::PassStat &S : A.Analyses) {
      OS << (FirstPass ? "" : ", ") << "{\"name\": \"" << jsonEscape(S.Name)
         << "\", \"ms\": " << jsonFixed(S.Seconds * 1000.0, 1)
         << ", \"builds\": " << S.Builds << ", \"hits\": " << S.Hits
         << ", \"rssKb\": ";
      // Suppressed samples are not zeros; null keeps consumers from
      // averaging cross-charged garbage into real measurements.
      if (A.RssTrusted)
        OS << S.RssKb;
      else
        OS << "null";
      OS << "}";
      FirstPass = false;
    }
    OS << "]}";
  }
  OS << "\n  ],\n  \"totals\": {\"apps\": " << R.Apps.size()
     << ", \"potential\": " << Potential << ", \"afterSound\": " << Sound
     << ", \"afterUnsound\": " << Unsound << "}\n}\n";
  return OS.str();
}
