//===- report/Batch.cpp - Parallel corpus-scale batch driver --------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "report/Batch.h"

#include "cache/ResultCache.h"
#include "frontend/Frontend.h"
#include "report/Json.h"
#include "report/Lint.h"
#include "support/Deadline.h"
#include "support/Sha256.h"
#include "support/StringUtils.h"
#include "support/TableWriter.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

using namespace nadroid;
using namespace nadroid::report;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

/// The §8.8 degradation ladder, applied all at once: shallower contexts,
/// the syntactic filter analyses, no refutation engine.
pipeline::PipelineOptions degradedOptions(pipeline::PipelineOptions Opts) {
  Opts.K = 1;
  Opts.DataflowGuards = false;
  Opts.Refute = false;
  return Opts;
}

/// Parse + analyze one app, keeping only aggregate numbers. The Program
/// and the manager die with this frame — a batch run's live memory is
/// one app per pool lane, not the whole corpus. Throws on crashes and
/// test-hook injections; analyzeOne's boundary turns those into rows.
void analyzeOneImpl(const fs::path &Path, const BatchOptions &Opts,
                    support::ThreadPool &Pool, BatchApp &Out) {
  frontend::ParseResult Parsed = frontend::parseProgramFile(Path.string());
  if (Parsed.Prog)
    Out.Name = Parsed.Prog->name();
  if (!Parsed.Success) {
    Out.Status = BatchStatus::ParseFailed;
    for (const Diagnostic &D : Parsed.Diags) {
      std::ostringstream OS;
      // An unreadable file carries the invalid location; the "<builtin>"
      // it would render as only obscures the message.
      if (D.Loc.isValid())
        OS << Parsed.Prog->sourceManager().render(D.Loc) << ": ";
      OS << D.Message;
      Out.Error = OS.str();
      break; // first diagnostic is enough for the aggregate row
    }
    return;
  }

  if (!Opts.TestCrashApp.empty() && Out.File == Opts.TestCrashApp)
    throw std::runtime_error("injected test-hook crash");

  pipeline::PipelineOptions Pipe = Opts.Pipeline;
  for (unsigned Attempt = 0;; ++Attempt) {
    support::Deadline D(Opts.TimeoutSec);
    if ((!Opts.TestExpireAlwaysApp.empty() &&
         Out.File == Opts.TestExpireAlwaysApp) ||
        (Attempt == 0 && !Opts.TestExpireApp.empty() &&
         Out.File == Opts.TestExpireApp))
      D.cancel();
    try {
      auto AM = std::make_shared<pipeline::AnalysisManager>(*Parsed.Prog,
                                                            Pipe);
      AM->setThreadPool(&Pool); // nested: verdicts fan out over the pool
      AM->setDeadline(&D);
      // Concurrent lanes share one process RSS, so per-pass deltas would
      // charge one app's allocations to whichever pass another lane
      // happens to be timing; only a serial batch can trust them.
      bool TrustRss = Pool.concurrency() == 1;
      AM->setRssTracking(TrustRss);
      NadroidResult R = analyzeProgram(AM);

      if (Pipe.Lint) {
        // Same deadline as the pipeline proper: a typestate blow-up on
        // one app degrades or times out that row, never the batch.
        LintResult L = runLintChecks(*AM);
        Out.LintNullness = static_cast<unsigned>(L.Nullness.size());
        Out.LintTypestate = static_cast<unsigned>(L.Typestate.size());
        R.Timings.TypestateSec = L.TypestateSec;
      }

      Out.Status = Attempt == 0 ? BatchStatus::Ok : BatchStatus::Degraded;
      Out.RssTrusted = TrustRss;
      Out.Stmts = Parsed.Prog->statementCount();
      Out.EntryCallbacks = R.Forest->entryCallbackCount();
      Out.PostedCallbacks = R.Forest->postedCallbackCount();
      Out.Threads = R.Forest->threadCount();
      Out.Potential = static_cast<unsigned>(R.warnings().size());
      Out.AfterSound = R.Pipeline.RemainingAfterSound;
      Out.AfterUnsound = R.Pipeline.RemainingAfterUnsound;
      Out.Timings = R.Timings;
      Out.Analyses = AM->passStats();
      return;
    } catch (const support::DeadlineExceeded &) {
      pipeline::PipelineOptions Next = degradedOptions(Pipe);
      bool CanDegrade = Attempt == 0 &&
                        (Next.K != Pipe.K ||
                         Next.DataflowGuards != Pipe.DataflowGuards ||
                         Next.Refute != Pipe.Refute);
      if (!CanDegrade) {
        Out.Status = BatchStatus::TimedOut;
        // Deliberately stable text (no site, no elapsed time): timed-out
        // rows must not perturb the byte-identical report contract.
        Out.Error = "per-app time budget exceeded";
        return;
      }
      Pipe = Next; // retry once, degraded
    }
  }
}

/// The per-app exception boundary: one misbehaving app becomes a failed
/// row, never a dead batch.
void analyzeOne(const fs::path &Path, const BatchOptions &Opts,
                support::ThreadPool &Pool, BatchApp &Out) {
  Out.File = Path.filename().string();
  Out.Name = Path.stem().string();
  try {
    analyzeOneImpl(Path, Opts, Pool, Out);
  } catch (const std::exception &E) {
    Out.Status = BatchStatus::Crashed;
    Out.Error = E.what();
  } catch (...) {
    Out.Status = BatchStatus::Crashed;
    Out.Error = "unrecognized exception";
  }
}

/// The bytes shardOfApp hashes for \p Path: the canonical printed
/// program when the file parses (rename- and formatting-stable, the
/// same invariances the result-cache key has), the raw file bytes
/// otherwise — an unparseable app still belongs to exactly one shard,
/// so exactly one shard reports its parse failure.
std::string shardBytesOf(const fs::path &Path) {
  frontend::ParseResult Parsed = frontend::parseProgramFile(Path.string());
  if (Parsed.Success)
    return frontend::canonicalProgramBytes(*Parsed.Prog);
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// The report-visible fields of two rows agree — what --cache-verify
/// compares between a cached entry and the fresh re-analysis. Timings
/// and per-analysis accounting are measurements, not results, and are
/// deliberately excluded.
bool sameObservableResult(const BatchApp &A, const BatchApp &B) {
  return A.Status == B.Status && A.Error == B.Error && A.Stmts == B.Stmts &&
         A.EntryCallbacks == B.EntryCallbacks &&
         A.PostedCallbacks == B.PostedCallbacks && A.Threads == B.Threads &&
         A.Potential == B.Potential && A.AfterSound == B.AfterSound &&
         A.AfterUnsound == B.AfterUnsound &&
         A.LintNullness == B.LintNullness &&
         A.LintTypestate == B.LintTypestate;
}

} // namespace

bool report::batchStatusFromName(const std::string &Name, BatchStatus &Out) {
  for (BatchStatus S :
       {BatchStatus::Ok, BatchStatus::Degraded, BatchStatus::ParseFailed,
        BatchStatus::Crashed, BatchStatus::TimedOut})
    if (Name == batchStatusName(S)) {
      Out = S;
      return true;
    }
  return false;
}

const char *report::batchStatusName(BatchStatus S) {
  switch (S) {
  case BatchStatus::Ok:
    return "ok";
  case BatchStatus::Degraded:
    return "degraded";
  case BatchStatus::ParseFailed:
    return "parse-failed";
  case BatchStatus::Crashed:
    return "crashed";
  case BatchStatus::TimedOut:
    return "timed-out";
  }
  return "unknown";
}

int BatchResult::exitCode() const {
  // A divergent cache entry means the backstop caught either stale cache
  // contents or a nondeterministic analysis — worse than any single-app
  // failure, because it taints trust in every warm result.
  if (CacheDivergent > 0)
    return 5;
  int Code = 0;
  bool AnyLint = false;
  for (const BatchApp &A : Apps) {
    int Severity = 0;
    switch (A.Status) {
    case BatchStatus::Ok:
    case BatchStatus::Degraded:
      Severity = A.AfterUnsound > 0 ? 1 : 0;
      AnyLint |= A.LintNullness + A.LintTypestate > 0;
      break;
    case BatchStatus::ParseFailed:
      Severity = 2;
      break;
    case BatchStatus::Crashed:
      Severity = 3;
      break;
    case BatchStatus::TimedOut:
      Severity = 4;
      break;
    }
    Code = std::max(Code, Severity);
  }
  // Lint findings (6, matching the single-file driver) slot between the
  // infrastructure failures above and a plain warnings-remaining 1.
  if (Code < 2 && AnyLint)
    return 6;
  return Code;
}

std::string report::renderBatchLogLine(const BatchApp &A) {
  std::ostringstream OS;
  OS << "{\"file\": \"" << jsonEscape(A.File) << "\", \"name\": \""
     << jsonEscape(A.Name) << "\", \"fp\": \"" << jsonEscape(A.OptionsFp)
     << "\", \"status\": \"" << batchStatusName(A.Status)
     << "\", \"error\": \"" << jsonEscape(A.Error) << "\", \"stmts\": "
     << A.Stmts << ", \"entryCallbacks\": " << A.EntryCallbacks
     << ", \"postedCallbacks\": " << A.PostedCallbacks
     << ", \"threads\": " << A.Threads << ", \"potential\": " << A.Potential
     << ", \"afterSound\": " << A.AfterSound
     << ", \"afterUnsound\": " << A.AfterUnsound
     << ", \"lintNullness\": " << A.LintNullness
     << ", \"lintTypestate\": " << A.LintTypestate
     << ", \"modelingSec\": " << jsonFixed(A.Timings.ModelingSec, 6)
     << ", \"detectionSec\": " << jsonFixed(A.Timings.DetectionSec, 6)
     << ", \"filteringSec\": " << jsonFixed(A.Timings.FilteringSec, 6)
     << ", \"typestateSec\": " << jsonFixed(A.Timings.TypestateSec, 6);
  for (size_t I = 0; I < filters::NumFilterKinds; ++I)
    OS << ", \"filter"
       << filters::filterKindName(static_cast<filters::FilterKind>(I))
       << "Sec\": " << jsonFixed(A.Timings.FilterSec[I], 6);
  OS << "}";
  return OS.str();
}

bool report::parseBatchLogLine(const std::string &Line, BatchApp &Out) {
  // A line a killed writer truncated cannot end in '}'; refusing it here
  // makes resume re-run that app instead of trusting half a row.
  if (Line.empty() || Line.back() != '}')
    return false;
  std::string File = jsonFindString(Line, "file");
  if (File.empty())
    return false;
  BatchStatus Status;
  if (!batchStatusFromName(jsonFindString(Line, "status"), Status))
    return false;
  Out = BatchApp();
  Out.File = std::move(File);
  Out.Name = jsonFindString(Line, "name");
  Out.OptionsFp = jsonFindString(Line, "fp");
  Out.Status = Status;
  Out.Error = jsonFindString(Line, "error");
  Out.Stmts = static_cast<unsigned>(jsonFindUnsigned(Line, "stmts"));
  Out.EntryCallbacks =
      static_cast<unsigned>(jsonFindUnsigned(Line, "entryCallbacks"));
  Out.PostedCallbacks =
      static_cast<unsigned>(jsonFindUnsigned(Line, "postedCallbacks"));
  Out.Threads = static_cast<unsigned>(jsonFindUnsigned(Line, "threads"));
  Out.Potential = static_cast<unsigned>(jsonFindUnsigned(Line, "potential"));
  Out.AfterSound = static_cast<unsigned>(jsonFindUnsigned(Line, "afterSound"));
  Out.AfterUnsound =
      static_cast<unsigned>(jsonFindUnsigned(Line, "afterUnsound"));
  // Absent on pre-lint checkpoint lines; the scanner's 0 default keeps
  // them parseable.
  Out.LintNullness =
      static_cast<unsigned>(jsonFindUnsigned(Line, "lintNullness"));
  Out.LintTypestate =
      static_cast<unsigned>(jsonFindUnsigned(Line, "lintTypestate"));
  Out.Timings.ModelingSec = jsonFindFixed(Line, "modelingSec");
  Out.Timings.DetectionSec = jsonFindFixed(Line, "detectionSec");
  Out.Timings.FilteringSec = jsonFindFixed(Line, "filteringSec");
  Out.Timings.TypestateSec = jsonFindFixed(Line, "typestateSec");
  // Older checkpoint lines lack the per-filter keys; the scanner's 0
  // default keeps them parseable (the breakdown just reads as zero).
  for (size_t I = 0; I < filters::NumFilterKinds; ++I)
    Out.Timings.FilterSec[I] = jsonFindFixed(
        Line, std::string("filter") +
                  filters::filterKindName(static_cast<filters::FilterKind>(I)) +
                  "Sec");
  // Per-pass accounting is not checkpointed; a restored row renders an
  // empty analyses list and an untrusted RSS.
  return true;
}

BatchResult report::runBatch(const BatchOptions &OptsIn) {
  BatchOptions Opts = OptsIn;
  // CLI tests reach the fault-injection hooks through the environment;
  // explicit fields win when both are set.
  if (Opts.TestCrashApp.empty())
    if (const char *E = std::getenv("NADROID_TEST_CRASH_APP"))
      Opts.TestCrashApp = E;
  if (Opts.TestExpireApp.empty())
    if (const char *E = std::getenv("NADROID_TEST_EXPIRE_APP"))
      Opts.TestExpireApp = E;
  if (Opts.TestExpireAlwaysApp.empty())
    if (const char *E = std::getenv("NADROID_TEST_EXPIRE_ALWAYS_APP"))
      Opts.TestExpireAlwaysApp = E;

  BatchResult R;
  R.LintMode = Opts.Pipeline.Lint;

  std::vector<fs::path> Files;
  std::error_code Ec;
  for (const fs::directory_entry &E : fs::directory_iterator(Opts.Dir, Ec))
    if (E.is_regular_file() && E.path().extension() == ".air")
      Files.push_back(E.path());
  // directory_iterator order is unspecified; the sort is what makes the
  // report independent of the filesystem and of --jobs.
  std::sort(Files.begin(), Files.end(), [](const fs::path &A,
                                           const fs::path &B) {
    return A.filename().string() < B.filename().string();
  });

  R.ShardIndex = Opts.ShardIndex;
  R.ShardCount = Opts.ShardCount;
  if (Opts.ShardCount > 0) {
    // Partition before anything is scheduled: from here on, this shard's
    // slice *is* the corpus — the checkpoint log, the cache probes and
    // the report all agree on its extent, and merge-shards reassembles
    // the full picture from the logs.
    std::vector<fs::path> Mine;
    for (const fs::path &P : Files)
      if (shardOfApp(shardBytesOf(P), Opts.ShardCount) == Opts.ShardIndex)
        Mine.push_back(P);
    Files = std::move(Mine);
  }

  support::ThreadPool Pool(Opts.Jobs);
  R.Jobs = Pool.concurrency();
  R.Apps.resize(Files.size());

  const std::string Fp = Opts.Pipeline.fingerprint();
  const cache::ResultCache Cache(Opts.CacheDir);
  R.CacheEnabled = Cache.enabled();

  auto T0 = Clock::now();

  // Restore checkpointed rows, then analyze only what is missing. Rows
  // are keyed by file name, so a resumed run tolerates a grown corpus.
  // A row stamped with a different options fingerprint was produced by
  // a different analysis and is refused — trusting it would stitch,
  // say, k=1 numbers into a k=2 report.
  const std::string ShardSpec =
      shardSpecString(Opts.ShardIndex, Opts.ShardCount);
  std::map<std::string, BatchApp> Logged;
  bool LogHasContent = false;
  bool LogShardStale = false;
  if (Opts.Resume && !Opts.LogPath.empty()) {
    std::ifstream In(Opts.LogPath);
    std::string Line;
    std::string LogSpec = "-"; // pre-header-era logs are unsharded
    bool First = true;
    while (std::getline(In, Line)) {
      LogHasContent = true;
      if (First) {
        First = false;
        std::string HeaderFp;
        bool HeaderLint = false;
        if (parseBatchLogHeader(Line, LogSpec, HeaderFp, HeaderLint))
          continue;
      }
      BatchApp A;
      if (!parseBatchLogLine(Line, A))
        continue;
      // A log stamped with a different shard spec checkpoints different
      // work — resuming it would stitch another shard's rows into this
      // one's report and poison a later merge. Every row is refused
      // (counted like fingerprint-stale rows) and the log starts over.
      if (LogSpec != ShardSpec) {
        LogShardStale = true;
        ++R.ResumedStale;
        continue;
      }
      if (A.OptionsFp != Fp) {
        ++R.ResumedStale;
        continue;
      }
      Logged[A.File] = std::move(A);
    }
  }

  /// One not-yet-restored app: its sorted slot, its cache key when the
  /// probe could compute one, and — under --cache-verify — the hit row
  /// the fresh analysis must reproduce.
  struct PendingApp {
    size_t Index = 0;
    std::string Key;
    bool VerifyHit = false;
    BatchApp Cached;
  };

  std::ofstream Log;
  std::mutex LogMu;
  if (!Opts.LogPath.empty()) {
    // Every fresh log leads with the header row. --resume appends —
    // unless the existing log belongs to a different shard spec (start
    // over) or is empty/missing (nothing to append under).
    bool Fresh = !Opts.Resume || LogShardStale || !LogHasContent;
    Log.open(Opts.LogPath, Fresh ? std::ios::trunc : std::ios::app);
    if (Log.is_open() && Fresh)
      Log << renderBatchLogHeader(ShardSpec, Fp, Opts.Pipeline.Lint) << "\n"
          << std::flush;
  }
  auto AppendLog = [&](const BatchApp &A) {
    if (!Log.is_open())
      return;
    // Completion order, one line per app, flushed: a killed run loses
    // at most the apps that were still in flight.
    std::lock_guard<std::mutex> Lock(LogMu);
    Log << renderBatchLogLine(A) << "\n" << std::flush;
  };

  std::vector<PendingApp> Pending;
  for (size_t I = 0; I < Files.size(); ++I) {
    auto It = Logged.find(Files[I].filename().string());
    if (It != Logged.end()) {
      R.Apps[I] = It->second;
      ++R.Resumed;
      continue;
    }
    PendingApp P;
    P.Index = I;
    if (Cache.enabled()) {
      // The probe: parse, canonicalize, hash, look up — all before the
      // app ever occupies a pool lane. The probe parse is redundant
      // work on a miss (analyzeOne parses again), but it is a small
      // fraction of an analysis and it keeps hit handling allocation-
      // light: a fully warm run never builds a single AnalysisManager.
      frontend::ParseResult Probe =
          frontend::parseProgramFile(Files[I].string());
      if (Probe.Success) {
        P.Key = cache::resultCacheKey(
            frontend::canonicalProgramBytes(*Probe.Prog), Fp);
        std::string Entry;
        BatchApp Hit;
        if (Cache.lookup(P.Key, Entry) &&
            parseAppResult(Entry, cache::SchemaVersion, Hit) &&
            Hit.OptionsFp == Fp && Hit.Status == BatchStatus::Ok) {
          ++R.CacheHits;
          // Identity comes from the current file, not the entry: the
          // same content under a new name hits and reports as the new
          // name.
          Hit.File = Files[I].filename().string();
          Hit.Name = Probe.Prog->name();
          if (!Opts.CacheVerify) {
            R.Apps[I] = Hit;
            AppendLog(Hit);
            continue; // never scheduled
          }
          P.VerifyHit = true;
          P.Cached = std::move(Hit);
        } else {
          ++R.CacheMisses;
        }
      }
      // Probe parse failures carry no key: the app still runs (and
      // fails) through the normal per-app boundary, and nothing
      // uncacheable is counted as a miss.
    }
    Pending.push_back(std::move(P));
  }

  std::atomic<unsigned> Stores{0}, Verified{0}, Divergent{0};
  Pool.parallelFor(Pending.size(), [&](size_t I) {
    const PendingApp &P = Pending[I];
    BatchApp &Out = R.Apps[P.Index];
    analyzeOne(Files[P.Index], Opts, Pool, Out);
    Out.OptionsFp = Fp;
    // Anchor this row's phase timings on the batch clock so the phase
    // aggregation can distinguish wall time from summed lane time.
    Out.PhaseEndSec = std::chrono::duration<double>(Clock::now() - T0).count();
    if (P.VerifyHit) {
      Verified.fetch_add(1, std::memory_order_relaxed);
      if (!sameObservableResult(P.Cached, Out))
        Divergent.fetch_add(1, std::memory_order_relaxed);
    } else if (!P.Key.empty() && Out.Status == BatchStatus::Ok) {
      // Only rows analyzed cleanly under the requested options are
      // cacheable. Degraded and timed-out rows encode a wall-clock
      // accident, crashed rows a bug — all must be re-attempted next
      // run, not replayed.
      if (Cache.store(P.Key, renderAppResult(Out, cache::SchemaVersion)))
        Stores.fetch_add(1, std::memory_order_relaxed);
    }
    AppendLog(Out);
  });
  R.CacheStores = Stores.load();
  R.CacheVerified = Verified.load();
  R.CacheDivergent = Divergent.load();
  R.CacheBackend = Cache.backendScheme();
  R.CacheTransportFailures = Cache.transportFailures();
  R.WallSec = std::chrono::duration<double>(Clock::now() - T0).count();
  return R;
}

std::string report::renderBatchReport(const BatchResult &R) {
  std::ostringstream OS;
  // The Lint column exists only in --lint batches; the default header
  // and rows keep their pre-lint bytes exactly (CI cmp's the report).
  std::vector<std::string> Header = {"App", "Status", "Stmts", "EC", "PC",
                                     "T", "Potential", "Sound", "Unsound"};
  if (R.LintMode)
    Header.push_back("Lint");
  TableWriter T(Header);
  unsigned Apps = 0, Degraded = 0, Failed = 0;
  unsigned long long Stmts = 0, Potential = 0, Sound = 0, Unsound = 0;
  unsigned long long Lint = 0;
  auto AddRow = [&](std::vector<std::string> Row, const std::string &Tail) {
    if (R.LintMode)
      Row.push_back(Tail);
    T.addRow(Row);
  };
  for (const BatchApp &A : R.Apps) {
    if (!A.analyzed()) {
      AddRow({A.File, batchStatusName(A.Status), "-", "-", "-", "-", "-",
              "-", "-"},
             "-");
      ++Failed;
      continue;
    }
    AddRow({A.Name, batchStatusName(A.Status), TableWriter::cell(A.Stmts),
            TableWriter::cell(A.EntryCallbacks),
            TableWriter::cell(A.PostedCallbacks),
            TableWriter::cell(A.Threads), TableWriter::cell(A.Potential),
            TableWriter::cell(A.AfterSound),
            TableWriter::cell(A.AfterUnsound)},
           TableWriter::cell(A.LintNullness + A.LintTypestate));
    ++Apps;
    if (A.Status == BatchStatus::Degraded)
      ++Degraded;
    Stmts += A.Stmts;
    Potential += A.Potential;
    Sound += A.AfterSound;
    Unsound += A.AfterUnsound;
    Lint += A.LintNullness + A.LintTypestate;
  }
  AddRow({"TOTAL", "", TableWriter::cell((long long)Stmts), "", "", "",
          TableWriter::cell((long long)Potential),
          TableWriter::cell((long long)Sound),
          TableWriter::cell((long long)Unsound)},
         TableWriter::cell((long long)Lint));
  T.print(OS);
  OS << "\n" << Apps << " apps: " << Potential << " potential UAFs, " << Sound
     << " after sound filters, " << Unsound << " after unsound filters";
  if (R.LintMode)
    OS << ", " << Lint << " lint findings";
  OS << "\n";
  if (Degraded) {
    OS << Degraded << " app(s) analyzed with degraded options:\n";
    for (const BatchApp &A : R.Apps)
      if (A.Status == BatchStatus::Degraded)
        OS << "  " << A.File << "\n";
  }
  if (Failed) {
    OS << Failed << " app(s) did not complete:\n";
    for (const BatchApp &A : R.Apps)
      if (!A.analyzed())
        OS << "  " << A.File << " [" << batchStatusName(A.Status)
           << "]: " << A.Error << "\n";
  }
  return OS.str();
}

namespace {

/// Length of the union of \p Intervals (merged after sorting by start).
double unionLength(std::vector<std::pair<double, double>> &Intervals) {
  std::sort(Intervals.begin(), Intervals.end());
  double Total = 0, CurStart = 0, CurEnd = -1;
  for (const auto &[S, E] : Intervals) {
    if (E <= S)
      continue;
    if (CurEnd < CurStart || S > CurEnd) {
      if (CurEnd > CurStart)
        Total += CurEnd - CurStart;
      CurStart = S;
      CurEnd = E;
    } else {
      CurEnd = std::max(CurEnd, E);
    }
  }
  if (CurEnd > CurStart)
    Total += CurEnd - CurStart;
  return Total;
}

} // namespace

BatchPhaseTotals report::batchPhaseTotals(const BatchResult &R) {
  BatchPhaseTotals T;
  std::vector<std::pair<double, double>> Modeling, Detection, Filtering,
      Typestate;
  for (const BatchApp &A : R.Apps) {
    if (!A.analyzed())
      continue;
    T.ModelingCpuSec += A.Timings.ModelingSec;
    T.DetectionCpuSec += A.Timings.DetectionSec;
    T.FilteringCpuSec += A.Timings.FilteringSec;
    T.TypestateCpuSec += A.Timings.TypestateSec;
    for (size_t I = 0; I < filters::NumFilterKinds; ++I)
      T.FilterCpuSec[I] += A.Timings.FilterSec[I];
    if (A.PhaseEndSec < 0)
      continue; // restored row: CPU from an earlier run, no clock anchor
    // The phases ran back-to-back and ended (up to the parse and report
    // epilogue, which no phase claims) at the row's completion stamp —
    // lay them out backwards from it. The typestate lint pass runs after
    // the pipeline proper, so it is the last interval before the stamp.
    double TEnd = A.PhaseEndSec;
    double TStart = TEnd - A.Timings.TypestateSec;
    double FStart = TStart - A.Timings.FilteringSec;
    double DStart = FStart - A.Timings.DetectionSec;
    double MStart = DStart - A.Timings.ModelingSec;
    Modeling.emplace_back(MStart, DStart);
    Detection.emplace_back(DStart, FStart);
    Filtering.emplace_back(FStart, TStart);
    Typestate.emplace_back(TStart, TEnd);
  }
  T.ModelingWallSec = unionLength(Modeling);
  T.DetectionWallSec = unionLength(Detection);
  T.FilteringWallSec = unionLength(Filtering);
  T.TypestateWallSec = unionLength(Typestate);
  return T;
}

std::string report::renderBatchCacheFooter(const BatchResult &R) {
  if (!R.CacheEnabled)
    return "";
  std::ostringstream OS;
  OS << "cache: " << R.CacheHits << " hits, " << R.CacheMisses
     << " misses, " << R.CacheStores << " stores";
  if (R.CacheVerified || R.CacheDivergent)
    OS << ", " << R.CacheVerified << " verified, " << R.CacheDivergent
       << " divergent";
  // Appended only when nonzero, so the established footer bytes (which
  // CI greps) are untouched on a healthy cache.
  if (R.CacheTransportFailures)
    OS << ", " << R.CacheTransportFailures << " backend failures";
  OS << "\n";
  return OS.str();
}

std::string report::renderBatchJson(const BatchResult &R) {
  std::ostringstream OS;
  OS << "{\n  \"jobs\": " << R.Jobs
     << ",\n  \"wallSec\": " << jsonFixed(R.WallSec, 6)
     << ",\n  \"resumed\": " << R.Resumed
     << ",\n  \"resumedStale\": " << R.ResumedStale;
  // Sharded runs only: an unsharded aggregate keeps its exact pre-shard
  // bytes (and a merged result, whose ShardCount is 0, stays free of
  // per-shard keys by the same test).
  if (R.ShardCount > 0)
    OS << ",\n  \"shard\": \"" << shardSpecString(R.ShardIndex, R.ShardCount)
       << "\"";
  OS << ",\n  \"cache\": {\"enabled\": "
     << (R.CacheEnabled ? "true" : "false") << ", \"hits\": " << R.CacheHits
     << ", \"misses\": " << R.CacheMisses << ", \"stores\": " << R.CacheStores
     << ", \"verified\": " << R.CacheVerified
     << ", \"divergent\": " << R.CacheDivergent;
  if (R.CacheEnabled)
    OS << ", \"backend\": \"" << jsonEscape(R.CacheBackend)
       << "\", \"transportFailures\": " << R.CacheTransportFailures;
  OS << "},\n  \"phases\": {";
  const BatchPhaseTotals PT = batchPhaseTotals(R);
  OS << "\"modelingCpuSec\": " << jsonFixed(PT.ModelingCpuSec, 6)
     << ", \"modelingWallSec\": " << jsonFixed(PT.ModelingWallSec, 6)
     << ", \"detectionCpuSec\": " << jsonFixed(PT.DetectionCpuSec, 6)
     << ", \"detectionWallSec\": " << jsonFixed(PT.DetectionWallSec, 6)
     << ", \"filteringCpuSec\": " << jsonFixed(PT.FilteringCpuSec, 6)
     << ", \"filteringWallSec\": " << jsonFixed(PT.FilteringWallSec, 6);
  // Lint-mode keys appear only in --lint batches, so a default batch
  // JSON is byte-identical to a pre-lint build's.
  if (R.LintMode)
    OS << ", \"typestateCpuSec\": " << jsonFixed(PT.TypestateCpuSec, 6)
       << ", \"typestateWallSec\": " << jsonFixed(PT.TypestateWallSec, 6);
  OS << ", \"filtering\": {";
  for (size_t I = 0; I < filters::NumFilterKinds; ++I)
    OS << (I ? ", " : "") << "\""
       << filters::filterKindName(static_cast<filters::FilterKind>(I))
       << "Sec\": " << jsonFixed(PT.FilterCpuSec[I], 6);
  OS << "}},\n  \"apps\": [";
  bool FirstApp = true;
  unsigned long long Potential = 0, Sound = 0, Unsound = 0, LintTotal = 0;
  for (const BatchApp &A : R.Apps) {
    OS << (FirstApp ? "" : ",") << "\n    {\"file\": \"" << jsonEscape(A.File)
       << "\", \"app\": \"" << jsonEscape(A.Name) << "\", \"status\": \""
       << batchStatusName(A.Status) << "\", \"ok\": "
       << (A.analyzed() ? "true" : "false");
    FirstApp = false;
    if (!A.Error.empty())
      OS << ", \"error\": \"" << jsonEscape(A.Error) << "\"";
    if (!A.analyzed()) {
      OS << "}";
      continue;
    }
    Potential += A.Potential;
    Sound += A.AfterSound;
    Unsound += A.AfterUnsound;
    LintTotal += A.LintNullness + A.LintTypestate;
    OS << ",\n     \"summary\": {\"stmts\": " << A.Stmts
       << ", \"potential\": " << A.Potential
       << ", \"afterSound\": " << A.AfterSound
       << ", \"afterUnsound\": " << A.AfterUnsound << "},\n";
    if (R.LintMode)
      OS << "     \"lintFindings\": {\"nullness\": " << A.LintNullness
         << ", \"typestate\": " << A.LintTypestate << "},\n";
    OS << "     \"timings\": {\"modelingSec\": "
       << jsonFixed(A.Timings.ModelingSec, 6)
       << ", \"detectionSec\": " << jsonFixed(A.Timings.DetectionSec, 6)
       << ", \"filteringSec\": " << jsonFixed(A.Timings.FilteringSec, 6);
    if (R.LintMode)
      OS << ", \"typestateSec\": " << jsonFixed(A.Timings.TypestateSec, 6);
    OS << "},\n"
       << "     \"analyses\": [";
    bool FirstPass = true;
    for (const pipeline::PassStat &S : A.Analyses) {
      OS << (FirstPass ? "" : ", ") << "{\"name\": \"" << jsonEscape(S.Name)
         << "\", \"ms\": " << jsonFixed(S.Seconds * 1000.0, 1)
         << ", \"builds\": " << S.Builds << ", \"hits\": " << S.Hits
         << ", \"rssKb\": ";
      // Suppressed samples are not zeros; null keeps consumers from
      // averaging cross-charged garbage into real measurements.
      if (A.RssTrusted)
        OS << S.RssKb;
      else
        OS << "null";
      OS << "}";
      FirstPass = false;
    }
    OS << "]}";
  }
  OS << "\n  ],\n  \"totals\": {\"apps\": " << R.Apps.size()
     << ", \"potential\": " << Potential << ", \"afterSound\": " << Sound
     << ", \"afterUnsound\": " << Unsound;
  if (R.LintMode)
    OS << ", \"lintFindings\": " << LintTotal;
  OS << "}\n}\n";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Distributed batch: deterministic sharding + shard-merge
//===----------------------------------------------------------------------===//

unsigned report::shardOfApp(std::string_view CanonicalBytes,
                            unsigned ShardCount) {
  if (ShardCount <= 1)
    return 1;
  support::Sha256 H;
  H.update(CanonicalBytes);
  const std::string Hex = H.finalHex();
  // First 64 digest bits, big-endian — the same prefix a human sees at
  // the front of the hex key, so "which shard owns this entry" can be
  // recomputed from a cache listing by eye.
  uint64_t V = 0;
  for (int I = 0; I < 16; ++I) {
    char C = Hex[static_cast<size_t>(I)];
    V = V * 16 + static_cast<uint64_t>(C <= '9' ? C - '0' : C - 'a' + 10);
  }
  return static_cast<unsigned>(V % ShardCount) + 1;
}

std::string report::shardSpecString(unsigned ShardIndex, unsigned ShardCount) {
  if (ShardCount == 0)
    return "-";
  return std::to_string(ShardIndex) + "/" + std::to_string(ShardCount);
}

bool report::parseShardSpec(const std::string &Spec, unsigned &ShardIndex,
                            unsigned &ShardCount) {
  size_t Slash = Spec.find('/');
  if (Slash == std::string::npos)
    return false;
  unsigned long long I = 0, N = 0;
  if (!parseUnsigned(Spec.substr(0, Slash), I) ||
      !parseUnsigned(Spec.substr(Slash + 1), N))
    return false;
  // The upper bound only rejects nonsense (a million-way shard of a
  // 27-app corpus); any real fleet is far below it.
  if (N < 1 || I < 1 || I > N || N > (1u << 20))
    return false;
  ShardIndex = static_cast<unsigned>(I);
  ShardCount = static_cast<unsigned>(N);
  return true;
}

std::string report::renderBatchLogHeader(const std::string &ShardSpec,
                                         const std::string &OptionsFp,
                                         bool Lint) {
  std::ostringstream OS;
  OS << "{\"nadroidBatchLog\": 1, \"shard\": \"" << jsonEscape(ShardSpec)
     << "\", \"fp\": \"" << jsonEscape(OptionsFp)
     << "\", \"lint\": " << (Lint ? 1 : 0) << "}";
  return OS.str();
}

bool report::parseBatchLogHeader(const std::string &Line,
                                 std::string &ShardSpec, std::string &OptionsFp,
                                 bool &Lint) {
  if (Line.empty() || Line.back() != '}')
    return false;
  if (jsonFindUnsigned(Line, "nadroidBatchLog") != 1)
    return false;
  std::string Spec = jsonFindString(Line, "shard");
  if (Spec.empty())
    return false;
  ShardSpec = std::move(Spec);
  OptionsFp = jsonFindString(Line, "fp");
  Lint = jsonFindUnsigned(Line, "lint") != 0;
  return true;
}

MergeShardsResult
report::mergeShardLogs(const std::vector<std::string> &LogPaths) {
  MergeShardsResult MR;
  auto Diag = [&MR](std::string S) { MR.Diags.push_back(std::move(S)); };

  /// One input log, decoded: the partition slice its header claims and
  /// its surviving rows (later-wins within one log, exactly as --resume
  /// reads it — a re-run row supersedes the one it replaced).
  struct LogInfo {
    std::string Path;
    std::string Spec = "-"; ///< header-less logs are unsharded
    unsigned Index = 0, Count = 0; ///< 0/0 when Spec is "-"
    bool HasHeader = false;
    bool Lint = false;
    std::map<std::string, BatchApp> Rows;
  };

  if (LogPaths.empty()) {
    Diag("no shard logs to merge");
    return MR;
  }

  std::vector<LogInfo> Logs;
  for (const std::string &Path : LogPaths) {
    LogInfo L;
    L.Path = Path;
    std::ifstream In(Path);
    if (!In) {
      Diag("cannot read shard log '" + Path + "'");
      continue;
    }
    std::string Line;
    bool First = true;
    while (std::getline(In, Line)) {
      if (First) {
        First = false;
        std::string HeaderFp;
        if (parseBatchLogHeader(Line, L.Spec, HeaderFp, L.Lint)) {
          L.HasHeader = true;
          continue;
        }
      }
      BatchApp A;
      if (!parseBatchLogLine(Line, A))
        continue; // interrupted-write tail or blank line, as on --resume
      L.Rows[A.File] = std::move(A);
    }
    if (L.Spec != "-" && !parseShardSpec(L.Spec, L.Index, L.Count)) {
      Diag("log '" + Path + "' carries malformed shard spec '" + L.Spec +
           "'");
      continue;
    }
    Logs.push_back(std::move(L));
  }
  if (!MR.Diags.empty())
    return MR; // unreadable inputs leave nothing worth cross-validating

  // The logs must form exactly one complete partition. An unsharded log
  // ("-") is a partition of one — which is how an unsharded run's log
  // round-trips through this renderer — but mixing it with anything
  // else double-covers the corpus.
  bool AnyUnsharded = false;
  for (const LogInfo &L : Logs)
    AnyUnsharded |= L.Count == 0;
  if (AnyUnsharded && Logs.size() > 1) {
    for (const LogInfo &L : Logs)
      if (L.Count == 0)
        Diag("unsharded log '" + L.Path +
             "' cannot be combined with other logs");
    return MR;
  }
  const unsigned Count = Logs.front().Count;
  for (const LogInfo &L : Logs)
    if (L.Count != Count) {
      Diag("shard-count mismatch: '" + Logs.front().Path + "' claims " +
           shardSpecString(Logs.front().Index, Logs.front().Count) + ", '" +
           L.Path + "' claims " + L.Spec);
      return MR;
    }
  if (Count > 0) {
    std::map<unsigned, const LogInfo *> ByIndex;
    for (const LogInfo &L : Logs) {
      auto [It, Inserted] = ByIndex.emplace(L.Index, &L);
      if (!Inserted)
        Diag("overlapping shards: '" + It->second->Path + "' and '" + L.Path +
             "' both claim shard " + L.Spec);
    }
    for (unsigned I = 1; I <= Count; ++I)
      if (!ByIndex.count(I))
        Diag("missing shard " + shardSpecString(I, Count));
  }

  // shardOfApp assigns each app to exactly one shard, so the same file
  // in two logs means someone analyzed the wrong slice (or merged the
  // same shard's log twice under different names). One fingerprint and
  // one lint mode across all rows, for the same reason --resume refuses
  // stale rows: numbers from different options must not share a table.
  std::map<std::string, const LogInfo *> Owner;
  const LogInfo *FpLog = nullptr;
  const BatchApp *FpRow = nullptr;
  bool FpDiagged = false;
  for (const LogInfo &L : Logs)
    for (const auto &[File, Row] : L.Rows) {
      auto [It, Inserted] = Owner.emplace(File, &L);
      if (!Inserted)
        Diag("duplicate row: '" + File + "' appears in both '" +
             It->second->Path + "' and '" + L.Path + "'");
      if (!FpRow) {
        FpLog = &L;
        FpRow = &Row;
      } else if (!FpDiagged && Row.OptionsFp != FpRow->OptionsFp) {
        FpDiagged = true;
        Diag("options-fingerprint mismatch: '" + File + "' (" + L.Path +
             ") was analyzed under different options than '" + FpRow->File +
             "' (" + FpLog->Path + ")");
      }
    }
  const LogInfo *LintRef = nullptr;
  for (const LogInfo &L : Logs) {
    if (!L.HasHeader)
      continue;
    if (!LintRef) {
      LintRef = &L;
    } else if (L.Lint != LintRef->Lint) {
      Diag("lint-mode mismatch between '" + LintRef->Path + "' and '" +
           L.Path + "'");
      break;
    }
  }
  if (!MR.Diags.empty())
    return MR;

  // Assemble. Timings are per-shard measurement artifacts: zeroing them
  // (with the parse defaults already clearing PhaseEndSec, Analyses and
  // RssTrusted) is what makes a merged JSON byte-deterministic — and
  // equal whether it came from N shard logs or one unsharded log.
  BatchResult &R = MR.Merged;
  for (const LogInfo &L : Logs) {
    R.LintMode |= L.Lint;
    for (const auto &[File, Row] : L.Rows) {
      BatchApp A = Row;
      A.Timings = PhaseTimings();
      R.Apps.push_back(std::move(A));
    }
  }
  std::sort(R.Apps.begin(), R.Apps.end(),
            [](const BatchApp &A, const BatchApp &B) {
              return A.File < B.File;
            });
  return MR;
}
