//===- report/Batch.cpp - Parallel corpus-scale batch driver --------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "report/Batch.h"

#include "cache/ResultCache.h"
#include "frontend/Frontend.h"
#include "report/Json.h"
#include "report/Lint.h"
#include "support/Deadline.h"
#include "support/TableWriter.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

using namespace nadroid;
using namespace nadroid::report;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

/// The §8.8 degradation ladder, applied all at once: shallower contexts,
/// the syntactic filter analyses, no refutation engine.
pipeline::PipelineOptions degradedOptions(pipeline::PipelineOptions Opts) {
  Opts.K = 1;
  Opts.DataflowGuards = false;
  Opts.Refute = false;
  return Opts;
}

/// Parse + analyze one app, keeping only aggregate numbers. The Program
/// and the manager die with this frame — a batch run's live memory is
/// one app per pool lane, not the whole corpus. Throws on crashes and
/// test-hook injections; analyzeOne's boundary turns those into rows.
void analyzeOneImpl(const fs::path &Path, const BatchOptions &Opts,
                    support::ThreadPool &Pool, BatchApp &Out) {
  frontend::ParseResult Parsed = frontend::parseProgramFile(Path.string());
  if (Parsed.Prog)
    Out.Name = Parsed.Prog->name();
  if (!Parsed.Success) {
    Out.Status = BatchStatus::ParseFailed;
    for (const Diagnostic &D : Parsed.Diags) {
      std::ostringstream OS;
      // An unreadable file carries the invalid location; the "<builtin>"
      // it would render as only obscures the message.
      if (D.Loc.isValid())
        OS << Parsed.Prog->sourceManager().render(D.Loc) << ": ";
      OS << D.Message;
      Out.Error = OS.str();
      break; // first diagnostic is enough for the aggregate row
    }
    return;
  }

  if (!Opts.TestCrashApp.empty() && Out.File == Opts.TestCrashApp)
    throw std::runtime_error("injected test-hook crash");

  pipeline::PipelineOptions Pipe = Opts.Pipeline;
  for (unsigned Attempt = 0;; ++Attempt) {
    support::Deadline D(Opts.TimeoutSec);
    if ((!Opts.TestExpireAlwaysApp.empty() &&
         Out.File == Opts.TestExpireAlwaysApp) ||
        (Attempt == 0 && !Opts.TestExpireApp.empty() &&
         Out.File == Opts.TestExpireApp))
      D.cancel();
    try {
      auto AM = std::make_shared<pipeline::AnalysisManager>(*Parsed.Prog,
                                                            Pipe);
      AM->setThreadPool(&Pool); // nested: verdicts fan out over the pool
      AM->setDeadline(&D);
      // Concurrent lanes share one process RSS, so per-pass deltas would
      // charge one app's allocations to whichever pass another lane
      // happens to be timing; only a serial batch can trust them.
      bool TrustRss = Pool.concurrency() == 1;
      AM->setRssTracking(TrustRss);
      NadroidResult R = analyzeProgram(AM);

      if (Pipe.Lint) {
        // Same deadline as the pipeline proper: a typestate blow-up on
        // one app degrades or times out that row, never the batch.
        LintResult L = runLintChecks(*AM);
        Out.LintNullness = static_cast<unsigned>(L.Nullness.size());
        Out.LintTypestate = static_cast<unsigned>(L.Typestate.size());
        R.Timings.TypestateSec = L.TypestateSec;
      }

      Out.Status = Attempt == 0 ? BatchStatus::Ok : BatchStatus::Degraded;
      Out.RssTrusted = TrustRss;
      Out.Stmts = Parsed.Prog->statementCount();
      Out.EntryCallbacks = R.Forest->entryCallbackCount();
      Out.PostedCallbacks = R.Forest->postedCallbackCount();
      Out.Threads = R.Forest->threadCount();
      Out.Potential = static_cast<unsigned>(R.warnings().size());
      Out.AfterSound = R.Pipeline.RemainingAfterSound;
      Out.AfterUnsound = R.Pipeline.RemainingAfterUnsound;
      Out.Timings = R.Timings;
      Out.Analyses = AM->passStats();
      return;
    } catch (const support::DeadlineExceeded &) {
      pipeline::PipelineOptions Next = degradedOptions(Pipe);
      bool CanDegrade = Attempt == 0 &&
                        (Next.K != Pipe.K ||
                         Next.DataflowGuards != Pipe.DataflowGuards ||
                         Next.Refute != Pipe.Refute);
      if (!CanDegrade) {
        Out.Status = BatchStatus::TimedOut;
        // Deliberately stable text (no site, no elapsed time): timed-out
        // rows must not perturb the byte-identical report contract.
        Out.Error = "per-app time budget exceeded";
        return;
      }
      Pipe = Next; // retry once, degraded
    }
  }
}

/// The per-app exception boundary: one misbehaving app becomes a failed
/// row, never a dead batch.
void analyzeOne(const fs::path &Path, const BatchOptions &Opts,
                support::ThreadPool &Pool, BatchApp &Out) {
  Out.File = Path.filename().string();
  Out.Name = Path.stem().string();
  try {
    analyzeOneImpl(Path, Opts, Pool, Out);
  } catch (const std::exception &E) {
    Out.Status = BatchStatus::Crashed;
    Out.Error = E.what();
  } catch (...) {
    Out.Status = BatchStatus::Crashed;
    Out.Error = "unrecognized exception";
  }
}

/// The report-visible fields of two rows agree — what --cache-verify
/// compares between a cached entry and the fresh re-analysis. Timings
/// and per-analysis accounting are measurements, not results, and are
/// deliberately excluded.
bool sameObservableResult(const BatchApp &A, const BatchApp &B) {
  return A.Status == B.Status && A.Error == B.Error && A.Stmts == B.Stmts &&
         A.EntryCallbacks == B.EntryCallbacks &&
         A.PostedCallbacks == B.PostedCallbacks && A.Threads == B.Threads &&
         A.Potential == B.Potential && A.AfterSound == B.AfterSound &&
         A.AfterUnsound == B.AfterUnsound &&
         A.LintNullness == B.LintNullness &&
         A.LintTypestate == B.LintTypestate;
}

} // namespace

bool report::batchStatusFromName(const std::string &Name, BatchStatus &Out) {
  for (BatchStatus S :
       {BatchStatus::Ok, BatchStatus::Degraded, BatchStatus::ParseFailed,
        BatchStatus::Crashed, BatchStatus::TimedOut})
    if (Name == batchStatusName(S)) {
      Out = S;
      return true;
    }
  return false;
}

const char *report::batchStatusName(BatchStatus S) {
  switch (S) {
  case BatchStatus::Ok:
    return "ok";
  case BatchStatus::Degraded:
    return "degraded";
  case BatchStatus::ParseFailed:
    return "parse-failed";
  case BatchStatus::Crashed:
    return "crashed";
  case BatchStatus::TimedOut:
    return "timed-out";
  }
  return "unknown";
}

int BatchResult::exitCode() const {
  // A divergent cache entry means the backstop caught either stale cache
  // contents or a nondeterministic analysis — worse than any single-app
  // failure, because it taints trust in every warm result.
  if (CacheDivergent > 0)
    return 5;
  int Code = 0;
  bool AnyLint = false;
  for (const BatchApp &A : Apps) {
    int Severity = 0;
    switch (A.Status) {
    case BatchStatus::Ok:
    case BatchStatus::Degraded:
      Severity = A.AfterUnsound > 0 ? 1 : 0;
      AnyLint |= A.LintNullness + A.LintTypestate > 0;
      break;
    case BatchStatus::ParseFailed:
      Severity = 2;
      break;
    case BatchStatus::Crashed:
      Severity = 3;
      break;
    case BatchStatus::TimedOut:
      Severity = 4;
      break;
    }
    Code = std::max(Code, Severity);
  }
  // Lint findings (6, matching the single-file driver) slot between the
  // infrastructure failures above and a plain warnings-remaining 1.
  if (Code < 2 && AnyLint)
    return 6;
  return Code;
}

std::string report::renderBatchLogLine(const BatchApp &A) {
  std::ostringstream OS;
  OS << "{\"file\": \"" << jsonEscape(A.File) << "\", \"name\": \""
     << jsonEscape(A.Name) << "\", \"fp\": \"" << jsonEscape(A.OptionsFp)
     << "\", \"status\": \"" << batchStatusName(A.Status)
     << "\", \"error\": \"" << jsonEscape(A.Error) << "\", \"stmts\": "
     << A.Stmts << ", \"entryCallbacks\": " << A.EntryCallbacks
     << ", \"postedCallbacks\": " << A.PostedCallbacks
     << ", \"threads\": " << A.Threads << ", \"potential\": " << A.Potential
     << ", \"afterSound\": " << A.AfterSound
     << ", \"afterUnsound\": " << A.AfterUnsound
     << ", \"lintNullness\": " << A.LintNullness
     << ", \"lintTypestate\": " << A.LintTypestate
     << ", \"modelingSec\": " << jsonFixed(A.Timings.ModelingSec, 6)
     << ", \"detectionSec\": " << jsonFixed(A.Timings.DetectionSec, 6)
     << ", \"filteringSec\": " << jsonFixed(A.Timings.FilteringSec, 6)
     << ", \"typestateSec\": " << jsonFixed(A.Timings.TypestateSec, 6);
  for (size_t I = 0; I < filters::NumFilterKinds; ++I)
    OS << ", \"filter"
       << filters::filterKindName(static_cast<filters::FilterKind>(I))
       << "Sec\": " << jsonFixed(A.Timings.FilterSec[I], 6);
  OS << "}";
  return OS.str();
}

bool report::parseBatchLogLine(const std::string &Line, BatchApp &Out) {
  // A line a killed writer truncated cannot end in '}'; refusing it here
  // makes resume re-run that app instead of trusting half a row.
  if (Line.empty() || Line.back() != '}')
    return false;
  std::string File = jsonFindString(Line, "file");
  if (File.empty())
    return false;
  BatchStatus Status;
  if (!batchStatusFromName(jsonFindString(Line, "status"), Status))
    return false;
  Out = BatchApp();
  Out.File = std::move(File);
  Out.Name = jsonFindString(Line, "name");
  Out.OptionsFp = jsonFindString(Line, "fp");
  Out.Status = Status;
  Out.Error = jsonFindString(Line, "error");
  Out.Stmts = static_cast<unsigned>(jsonFindUnsigned(Line, "stmts"));
  Out.EntryCallbacks =
      static_cast<unsigned>(jsonFindUnsigned(Line, "entryCallbacks"));
  Out.PostedCallbacks =
      static_cast<unsigned>(jsonFindUnsigned(Line, "postedCallbacks"));
  Out.Threads = static_cast<unsigned>(jsonFindUnsigned(Line, "threads"));
  Out.Potential = static_cast<unsigned>(jsonFindUnsigned(Line, "potential"));
  Out.AfterSound = static_cast<unsigned>(jsonFindUnsigned(Line, "afterSound"));
  Out.AfterUnsound =
      static_cast<unsigned>(jsonFindUnsigned(Line, "afterUnsound"));
  // Absent on pre-lint checkpoint lines; the scanner's 0 default keeps
  // them parseable.
  Out.LintNullness =
      static_cast<unsigned>(jsonFindUnsigned(Line, "lintNullness"));
  Out.LintTypestate =
      static_cast<unsigned>(jsonFindUnsigned(Line, "lintTypestate"));
  Out.Timings.ModelingSec = jsonFindFixed(Line, "modelingSec");
  Out.Timings.DetectionSec = jsonFindFixed(Line, "detectionSec");
  Out.Timings.FilteringSec = jsonFindFixed(Line, "filteringSec");
  Out.Timings.TypestateSec = jsonFindFixed(Line, "typestateSec");
  // Older checkpoint lines lack the per-filter keys; the scanner's 0
  // default keeps them parseable (the breakdown just reads as zero).
  for (size_t I = 0; I < filters::NumFilterKinds; ++I)
    Out.Timings.FilterSec[I] = jsonFindFixed(
        Line, std::string("filter") +
                  filters::filterKindName(static_cast<filters::FilterKind>(I)) +
                  "Sec");
  // Per-pass accounting is not checkpointed; a restored row renders an
  // empty analyses list and an untrusted RSS.
  return true;
}

BatchResult report::runBatch(const BatchOptions &OptsIn) {
  BatchOptions Opts = OptsIn;
  // CLI tests reach the fault-injection hooks through the environment;
  // explicit fields win when both are set.
  if (Opts.TestCrashApp.empty())
    if (const char *E = std::getenv("NADROID_TEST_CRASH_APP"))
      Opts.TestCrashApp = E;
  if (Opts.TestExpireApp.empty())
    if (const char *E = std::getenv("NADROID_TEST_EXPIRE_APP"))
      Opts.TestExpireApp = E;
  if (Opts.TestExpireAlwaysApp.empty())
    if (const char *E = std::getenv("NADROID_TEST_EXPIRE_ALWAYS_APP"))
      Opts.TestExpireAlwaysApp = E;

  BatchResult R;
  R.LintMode = Opts.Pipeline.Lint;

  std::vector<fs::path> Files;
  std::error_code Ec;
  for (const fs::directory_entry &E : fs::directory_iterator(Opts.Dir, Ec))
    if (E.is_regular_file() && E.path().extension() == ".air")
      Files.push_back(E.path());
  // directory_iterator order is unspecified; the sort is what makes the
  // report independent of the filesystem and of --jobs.
  std::sort(Files.begin(), Files.end(), [](const fs::path &A,
                                           const fs::path &B) {
    return A.filename().string() < B.filename().string();
  });

  support::ThreadPool Pool(Opts.Jobs);
  R.Jobs = Pool.concurrency();
  R.Apps.resize(Files.size());

  const std::string Fp = Opts.Pipeline.fingerprint();
  const cache::ResultCache Cache(Opts.CacheDir);
  R.CacheEnabled = Cache.enabled();

  auto T0 = Clock::now();

  // Restore checkpointed rows, then analyze only what is missing. Rows
  // are keyed by file name, so a resumed run tolerates a grown corpus.
  // A row stamped with a different options fingerprint was produced by
  // a different analysis and is refused — trusting it would stitch,
  // say, k=1 numbers into a k=2 report.
  std::map<std::string, BatchApp> Logged;
  if (Opts.Resume && !Opts.LogPath.empty()) {
    std::ifstream In(Opts.LogPath);
    std::string Line;
    while (std::getline(In, Line)) {
      BatchApp A;
      if (!parseBatchLogLine(Line, A))
        continue;
      if (A.OptionsFp != Fp) {
        ++R.ResumedStale;
        continue;
      }
      Logged[A.File] = std::move(A);
    }
  }

  /// One not-yet-restored app: its sorted slot, its cache key when the
  /// probe could compute one, and — under --cache-verify — the hit row
  /// the fresh analysis must reproduce.
  struct PendingApp {
    size_t Index = 0;
    std::string Key;
    bool VerifyHit = false;
    BatchApp Cached;
  };

  std::ofstream Log;
  std::mutex LogMu;
  if (!Opts.LogPath.empty())
    Log.open(Opts.LogPath, Opts.Resume ? std::ios::app : std::ios::trunc);
  auto AppendLog = [&](const BatchApp &A) {
    if (!Log.is_open())
      return;
    // Completion order, one line per app, flushed: a killed run loses
    // at most the apps that were still in flight.
    std::lock_guard<std::mutex> Lock(LogMu);
    Log << renderBatchLogLine(A) << "\n" << std::flush;
  };

  std::vector<PendingApp> Pending;
  for (size_t I = 0; I < Files.size(); ++I) {
    auto It = Logged.find(Files[I].filename().string());
    if (It != Logged.end()) {
      R.Apps[I] = It->second;
      ++R.Resumed;
      continue;
    }
    PendingApp P;
    P.Index = I;
    if (Cache.enabled()) {
      // The probe: parse, canonicalize, hash, look up — all before the
      // app ever occupies a pool lane. The probe parse is redundant
      // work on a miss (analyzeOne parses again), but it is a small
      // fraction of an analysis and it keeps hit handling allocation-
      // light: a fully warm run never builds a single AnalysisManager.
      frontend::ParseResult Probe =
          frontend::parseProgramFile(Files[I].string());
      if (Probe.Success) {
        P.Key = cache::resultCacheKey(
            frontend::canonicalProgramBytes(*Probe.Prog), Fp);
        std::string Entry;
        BatchApp Hit;
        if (Cache.lookup(P.Key, Entry) &&
            parseAppResult(Entry, cache::SchemaVersion, Hit) &&
            Hit.OptionsFp == Fp && Hit.Status == BatchStatus::Ok) {
          ++R.CacheHits;
          // Identity comes from the current file, not the entry: the
          // same content under a new name hits and reports as the new
          // name.
          Hit.File = Files[I].filename().string();
          Hit.Name = Probe.Prog->name();
          if (!Opts.CacheVerify) {
            R.Apps[I] = Hit;
            AppendLog(Hit);
            continue; // never scheduled
          }
          P.VerifyHit = true;
          P.Cached = std::move(Hit);
        } else {
          ++R.CacheMisses;
        }
      }
      // Probe parse failures carry no key: the app still runs (and
      // fails) through the normal per-app boundary, and nothing
      // uncacheable is counted as a miss.
    }
    Pending.push_back(std::move(P));
  }

  std::atomic<unsigned> Stores{0}, Verified{0}, Divergent{0};
  Pool.parallelFor(Pending.size(), [&](size_t I) {
    const PendingApp &P = Pending[I];
    BatchApp &Out = R.Apps[P.Index];
    analyzeOne(Files[P.Index], Opts, Pool, Out);
    Out.OptionsFp = Fp;
    // Anchor this row's phase timings on the batch clock so the phase
    // aggregation can distinguish wall time from summed lane time.
    Out.PhaseEndSec = std::chrono::duration<double>(Clock::now() - T0).count();
    if (P.VerifyHit) {
      Verified.fetch_add(1, std::memory_order_relaxed);
      if (!sameObservableResult(P.Cached, Out))
        Divergent.fetch_add(1, std::memory_order_relaxed);
    } else if (!P.Key.empty() && Out.Status == BatchStatus::Ok) {
      // Only rows analyzed cleanly under the requested options are
      // cacheable. Degraded and timed-out rows encode a wall-clock
      // accident, crashed rows a bug — all must be re-attempted next
      // run, not replayed.
      if (Cache.store(P.Key, renderAppResult(Out, cache::SchemaVersion)))
        Stores.fetch_add(1, std::memory_order_relaxed);
    }
    AppendLog(Out);
  });
  R.CacheStores = Stores.load();
  R.CacheVerified = Verified.load();
  R.CacheDivergent = Divergent.load();
  R.WallSec = std::chrono::duration<double>(Clock::now() - T0).count();
  return R;
}

std::string report::renderBatchReport(const BatchResult &R) {
  std::ostringstream OS;
  // The Lint column exists only in --lint batches; the default header
  // and rows keep their pre-lint bytes exactly (CI cmp's the report).
  std::vector<std::string> Header = {"App", "Status", "Stmts", "EC", "PC",
                                     "T", "Potential", "Sound", "Unsound"};
  if (R.LintMode)
    Header.push_back("Lint");
  TableWriter T(Header);
  unsigned Apps = 0, Degraded = 0, Failed = 0;
  unsigned long long Stmts = 0, Potential = 0, Sound = 0, Unsound = 0;
  unsigned long long Lint = 0;
  auto AddRow = [&](std::vector<std::string> Row, const std::string &Tail) {
    if (R.LintMode)
      Row.push_back(Tail);
    T.addRow(Row);
  };
  for (const BatchApp &A : R.Apps) {
    if (!A.analyzed()) {
      AddRow({A.File, batchStatusName(A.Status), "-", "-", "-", "-", "-",
              "-", "-"},
             "-");
      ++Failed;
      continue;
    }
    AddRow({A.Name, batchStatusName(A.Status), TableWriter::cell(A.Stmts),
            TableWriter::cell(A.EntryCallbacks),
            TableWriter::cell(A.PostedCallbacks),
            TableWriter::cell(A.Threads), TableWriter::cell(A.Potential),
            TableWriter::cell(A.AfterSound),
            TableWriter::cell(A.AfterUnsound)},
           TableWriter::cell(A.LintNullness + A.LintTypestate));
    ++Apps;
    if (A.Status == BatchStatus::Degraded)
      ++Degraded;
    Stmts += A.Stmts;
    Potential += A.Potential;
    Sound += A.AfterSound;
    Unsound += A.AfterUnsound;
    Lint += A.LintNullness + A.LintTypestate;
  }
  AddRow({"TOTAL", "", TableWriter::cell((long long)Stmts), "", "", "",
          TableWriter::cell((long long)Potential),
          TableWriter::cell((long long)Sound),
          TableWriter::cell((long long)Unsound)},
         TableWriter::cell((long long)Lint));
  T.print(OS);
  OS << "\n" << Apps << " apps: " << Potential << " potential UAFs, " << Sound
     << " after sound filters, " << Unsound << " after unsound filters";
  if (R.LintMode)
    OS << ", " << Lint << " lint findings";
  OS << "\n";
  if (Degraded) {
    OS << Degraded << " app(s) analyzed with degraded options:\n";
    for (const BatchApp &A : R.Apps)
      if (A.Status == BatchStatus::Degraded)
        OS << "  " << A.File << "\n";
  }
  if (Failed) {
    OS << Failed << " app(s) did not complete:\n";
    for (const BatchApp &A : R.Apps)
      if (!A.analyzed())
        OS << "  " << A.File << " [" << batchStatusName(A.Status)
           << "]: " << A.Error << "\n";
  }
  return OS.str();
}

namespace {

/// Length of the union of \p Intervals (merged after sorting by start).
double unionLength(std::vector<std::pair<double, double>> &Intervals) {
  std::sort(Intervals.begin(), Intervals.end());
  double Total = 0, CurStart = 0, CurEnd = -1;
  for (const auto &[S, E] : Intervals) {
    if (E <= S)
      continue;
    if (CurEnd < CurStart || S > CurEnd) {
      if (CurEnd > CurStart)
        Total += CurEnd - CurStart;
      CurStart = S;
      CurEnd = E;
    } else {
      CurEnd = std::max(CurEnd, E);
    }
  }
  if (CurEnd > CurStart)
    Total += CurEnd - CurStart;
  return Total;
}

} // namespace

BatchPhaseTotals report::batchPhaseTotals(const BatchResult &R) {
  BatchPhaseTotals T;
  std::vector<std::pair<double, double>> Modeling, Detection, Filtering,
      Typestate;
  for (const BatchApp &A : R.Apps) {
    if (!A.analyzed())
      continue;
    T.ModelingCpuSec += A.Timings.ModelingSec;
    T.DetectionCpuSec += A.Timings.DetectionSec;
    T.FilteringCpuSec += A.Timings.FilteringSec;
    T.TypestateCpuSec += A.Timings.TypestateSec;
    for (size_t I = 0; I < filters::NumFilterKinds; ++I)
      T.FilterCpuSec[I] += A.Timings.FilterSec[I];
    if (A.PhaseEndSec < 0)
      continue; // restored row: CPU from an earlier run, no clock anchor
    // The phases ran back-to-back and ended (up to the parse and report
    // epilogue, which no phase claims) at the row's completion stamp —
    // lay them out backwards from it. The typestate lint pass runs after
    // the pipeline proper, so it is the last interval before the stamp.
    double TEnd = A.PhaseEndSec;
    double TStart = TEnd - A.Timings.TypestateSec;
    double FStart = TStart - A.Timings.FilteringSec;
    double DStart = FStart - A.Timings.DetectionSec;
    double MStart = DStart - A.Timings.ModelingSec;
    Modeling.emplace_back(MStart, DStart);
    Detection.emplace_back(DStart, FStart);
    Filtering.emplace_back(FStart, TStart);
    Typestate.emplace_back(TStart, TEnd);
  }
  T.ModelingWallSec = unionLength(Modeling);
  T.DetectionWallSec = unionLength(Detection);
  T.FilteringWallSec = unionLength(Filtering);
  T.TypestateWallSec = unionLength(Typestate);
  return T;
}

std::string report::renderBatchCacheFooter(const BatchResult &R) {
  if (!R.CacheEnabled)
    return "";
  std::ostringstream OS;
  OS << "cache: " << R.CacheHits << " hits, " << R.CacheMisses
     << " misses, " << R.CacheStores << " stores";
  if (R.CacheVerified || R.CacheDivergent)
    OS << ", " << R.CacheVerified << " verified, " << R.CacheDivergent
       << " divergent";
  OS << "\n";
  return OS.str();
}

std::string report::renderBatchJson(const BatchResult &R) {
  std::ostringstream OS;
  OS << "{\n  \"jobs\": " << R.Jobs
     << ",\n  \"wallSec\": " << jsonFixed(R.WallSec, 6)
     << ",\n  \"resumed\": " << R.Resumed
     << ",\n  \"resumedStale\": " << R.ResumedStale
     << ",\n  \"cache\": {\"enabled\": "
     << (R.CacheEnabled ? "true" : "false") << ", \"hits\": " << R.CacheHits
     << ", \"misses\": " << R.CacheMisses << ", \"stores\": " << R.CacheStores
     << ", \"verified\": " << R.CacheVerified
     << ", \"divergent\": " << R.CacheDivergent << "},\n  \"phases\": {";
  const BatchPhaseTotals PT = batchPhaseTotals(R);
  OS << "\"modelingCpuSec\": " << jsonFixed(PT.ModelingCpuSec, 6)
     << ", \"modelingWallSec\": " << jsonFixed(PT.ModelingWallSec, 6)
     << ", \"detectionCpuSec\": " << jsonFixed(PT.DetectionCpuSec, 6)
     << ", \"detectionWallSec\": " << jsonFixed(PT.DetectionWallSec, 6)
     << ", \"filteringCpuSec\": " << jsonFixed(PT.FilteringCpuSec, 6)
     << ", \"filteringWallSec\": " << jsonFixed(PT.FilteringWallSec, 6);
  // Lint-mode keys appear only in --lint batches, so a default batch
  // JSON is byte-identical to a pre-lint build's.
  if (R.LintMode)
    OS << ", \"typestateCpuSec\": " << jsonFixed(PT.TypestateCpuSec, 6)
       << ", \"typestateWallSec\": " << jsonFixed(PT.TypestateWallSec, 6);
  OS << ", \"filtering\": {";
  for (size_t I = 0; I < filters::NumFilterKinds; ++I)
    OS << (I ? ", " : "") << "\""
       << filters::filterKindName(static_cast<filters::FilterKind>(I))
       << "Sec\": " << jsonFixed(PT.FilterCpuSec[I], 6);
  OS << "}},\n  \"apps\": [";
  bool FirstApp = true;
  unsigned long long Potential = 0, Sound = 0, Unsound = 0, LintTotal = 0;
  for (const BatchApp &A : R.Apps) {
    OS << (FirstApp ? "" : ",") << "\n    {\"file\": \"" << jsonEscape(A.File)
       << "\", \"app\": \"" << jsonEscape(A.Name) << "\", \"status\": \""
       << batchStatusName(A.Status) << "\", \"ok\": "
       << (A.analyzed() ? "true" : "false");
    FirstApp = false;
    if (!A.Error.empty())
      OS << ", \"error\": \"" << jsonEscape(A.Error) << "\"";
    if (!A.analyzed()) {
      OS << "}";
      continue;
    }
    Potential += A.Potential;
    Sound += A.AfterSound;
    Unsound += A.AfterUnsound;
    LintTotal += A.LintNullness + A.LintTypestate;
    OS << ",\n     \"summary\": {\"stmts\": " << A.Stmts
       << ", \"potential\": " << A.Potential
       << ", \"afterSound\": " << A.AfterSound
       << ", \"afterUnsound\": " << A.AfterUnsound << "},\n";
    if (R.LintMode)
      OS << "     \"lintFindings\": {\"nullness\": " << A.LintNullness
         << ", \"typestate\": " << A.LintTypestate << "},\n";
    OS << "     \"timings\": {\"modelingSec\": "
       << jsonFixed(A.Timings.ModelingSec, 6)
       << ", \"detectionSec\": " << jsonFixed(A.Timings.DetectionSec, 6)
       << ", \"filteringSec\": " << jsonFixed(A.Timings.FilteringSec, 6);
    if (R.LintMode)
      OS << ", \"typestateSec\": " << jsonFixed(A.Timings.TypestateSec, 6);
    OS << "},\n"
       << "     \"analyses\": [";
    bool FirstPass = true;
    for (const pipeline::PassStat &S : A.Analyses) {
      OS << (FirstPass ? "" : ", ") << "{\"name\": \"" << jsonEscape(S.Name)
         << "\", \"ms\": " << jsonFixed(S.Seconds * 1000.0, 1)
         << ", \"builds\": " << S.Builds << ", \"hits\": " << S.Hits
         << ", \"rssKb\": ";
      // Suppressed samples are not zeros; null keeps consumers from
      // averaging cross-charged garbage into real measurements.
      if (A.RssTrusted)
        OS << S.RssKb;
      else
        OS << "null";
      OS << "}";
      FirstPass = false;
    }
    OS << "]}";
  }
  OS << "\n  ],\n  \"totals\": {\"apps\": " << R.Apps.size()
     << ", \"potential\": " << Potential << ", \"afterSound\": " << Sound
     << ", \"afterUnsound\": " << Unsound;
  if (R.LintMode)
    OS << ", \"lintFindings\": " << LintTotal;
  OS << "}\n}\n";
  return OS.str();
}
