//===- report/Lint.cpp - AIR lint pass over nullness facts ----------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "report/Lint.h"

#include <sstream>

using namespace nadroid;
using namespace nadroid::report;
using analysis::LintFinding;
using analysis::LintKind;

std::vector<LintFinding> report::runLint(const ir::Program &P) {
  pipeline::AnalysisManager AM(P);
  return runLint(AM);
}

std::vector<LintFinding> report::runLint(pipeline::AnalysisManager &AM) {
  return AM.nullness().findings();
}

std::string report::renderLintFinding(const ir::Program &P,
                                      const LintFinding &F) {
  const SourceManager &SM = P.sourceManager();
  std::ostringstream OS;
  OS << SM.render(F.At->loc()) << ": warning: ";
  switch (F.Kind) {
  case LintKind::DoubleFree:
    OS << "double free of field " << F.F->qualifiedName()
       << " (already null here) [double-free]";
    break;
  case LintKind::NullDeref:
    OS << "method call on ";
    if (F.F)
      OS << "field " << F.F->qualifiedName() << ", which is";
    else
      OS << "a receiver that is";
    OS << " always null here [null-deref]";
    break;
  case LintKind::RedundantCheck:
    OS << "redundant null check: condition is always "
       << (F.AlwaysThen ? "taken" : "not taken") << " [redundant-check]";
    break;
  }
  OS << "\n  in " << F.At->parentMethod()->qualifiedName();
  if (F.Prior)
    OS << "\n" << SM.render(F.Prior->loc()) << ": note: value set to null here";
  return OS.str();
}
