//===- report/Lint.cpp - AIR lint pass over nullness facts ----------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "report/Lint.h"

#include "report/Json.h"

#include <chrono>
#include <sstream>

using namespace nadroid;
using namespace nadroid::report;
using analysis::LintFinding;
using analysis::LintKind;
using analysis::TypestateFinding;

std::vector<LintFinding> report::runLint(const ir::Program &P) {
  pipeline::AnalysisManager AM(P);
  return runLint(AM);
}

std::vector<LintFinding> report::runLint(pipeline::AnalysisManager &AM) {
  return AM.nullness().findings();
}

LintResult report::runLintChecks(pipeline::AnalysisManager &AM) {
  using Clock = std::chrono::steady_clock;
  LintResult L;
  auto T0 = Clock::now();
  L.Nullness = AM.nullness().findings();
  auto T1 = Clock::now();
  L.NullnessSec = std::chrono::duration<double>(T1 - T0).count();
  if (AM.options().Lint) {
    L.Typestate = AM.typestate().findings();
    L.TypestateSec = std::chrono::duration<double>(Clock::now() - T1).count();
  }
  return L;
}

std::string report::renderLintFinding(const ir::Program &P,
                                      const LintFinding &F) {
  const SourceManager &SM = P.sourceManager();
  std::ostringstream OS;
  OS << SM.render(F.At->loc()) << ": warning: ";
  switch (F.Kind) {
  case LintKind::DoubleFree:
    OS << "double free of field " << F.F->qualifiedName()
       << " (already null here) [double-free]";
    break;
  case LintKind::NullDeref:
    OS << "method call on ";
    if (F.F)
      OS << "field " << F.F->qualifiedName() << ", which is";
    else
      OS << "a receiver that is";
    OS << " always null here [null-deref]";
    break;
  case LintKind::RedundantCheck:
    OS << "redundant null check: condition is always "
       << (F.AlwaysThen ? "taken" : "not taken") << " [redundant-check]";
    break;
  }
  OS << "\n  in " << F.At->parentMethod()->qualifiedName();
  if (F.Prior)
    OS << "\n" << SM.render(F.Prior->loc()) << ": note: value set to null here";
  return OS.str();
}

std::string report::renderTypestateFinding(const ir::Program &P,
                                           const TypestateFinding &F,
                                           bool Explain) {
  const SourceManager &SM = P.sourceManager();
  std::ostringstream OS;
  // error-at findings whose bad state is the initial one have no
  // transition site to point at; anchor on the component instead.
  if (F.At)
    OS << SM.render(F.At->loc());
  else
    OS << F.Component->name();
  OS << ": warning: " << F.Rule->Message << " [protocol " << F.Proto->Name
     << "]";
  if (F.In)
    OS << "\n  in " << F.In->qualifiedName();
  else
    OS << "\n  in " << F.Component->name();
  OS << " of component " << F.Component->name() << " (state " << F.State
     << ")";
  if (Explain && !F.Chain.empty()) {
    OS << "\n  callback chain:";
    for (size_t I = 0; I < F.Chain.size(); ++I)
      OS << (I ? " > " : " ") << F.Chain[I];
  }
  return OS.str();
}

std::string report::renderLintJson(const ir::Program &P, const LintResult &L) {
  const SourceManager &SM = P.sourceManager();
  std::ostringstream OS;
  OS << "{\n";
  OS << "  \"app\": \"" << jsonEscape(P.name()) << "\",\n";
  OS << "  \"nullness\": [";
  for (size_t I = 0; I < L.Nullness.size(); ++I) {
    const LintFinding &F = L.Nullness[I];
    OS << (I ? ",\n    " : "\n    ");
    OS << "{\"kind\": \"" << analysis::lintKindName(F.Kind) << "\", \"loc\": \""
       << jsonEscape(SM.render(F.At->loc())) << "\", \"method\": \""
       << jsonEscape(F.At->parentMethod()->qualifiedName()) << "\"";
    if (F.F)
      OS << ", \"field\": \"" << jsonEscape(F.F->qualifiedName()) << "\"";
    OS << "}";
  }
  OS << (L.Nullness.empty() ? "],\n" : "\n  ],\n");
  OS << "  \"typestate\": [";
  for (size_t I = 0; I < L.Typestate.size(); ++I) {
    const TypestateFinding &F = L.Typestate[I];
    OS << (I ? ",\n    " : "\n    ");
    OS << "{\"protocol\": \"" << jsonEscape(F.Proto->Name)
       << "\", \"message\": \"" << jsonEscape(F.Rule->Message)
       << "\", \"component\": \"" << jsonEscape(F.Component->name())
       << "\", \"state\": \"" << jsonEscape(F.State) << "\"";
    if (F.At)
      OS << ", \"loc\": \"" << jsonEscape(SM.render(F.At->loc())) << "\"";
    if (F.In)
      OS << ", \"method\": \"" << jsonEscape(F.In->qualifiedName()) << "\"";
    OS << ", \"chain\": [";
    for (size_t J = 0; J < F.Chain.size(); ++J)
      OS << (J ? ", " : "") << "\"" << jsonEscape(F.Chain[J]) << "\"";
    OS << "]}";
  }
  OS << (L.Typestate.empty() ? "],\n" : "\n  ],\n");
  OS << "  \"counts\": {\"nullness\": " << L.Nullness.size()
     << ", \"typestate\": " << L.Typestate.size() << "},\n";
  OS << "  \"timings\": {\"nullnessSec\": " << jsonFixed(L.NullnessSec, 3)
     << ", \"typestateSec\": " << jsonFixed(L.TypestateSec, 3) << "}\n";
  OS << "}\n";
  return OS.str();
}

void report::renderLintReport(const ir::Program &P, const LintResult &L,
                              bool Json, bool Explain, std::ostream &OS) {
  if (Json) {
    OS << renderLintJson(P, L);
    return;
  }
  for (const analysis::LintFinding &F : L.Nullness)
    OS << renderLintFinding(P, F) << "\n";
  for (const analysis::TypestateFinding &F : L.Typestate)
    OS << renderTypestateFinding(P, F, Explain) << "\n";
  OS << P.name() << ": " << (L.Nullness.size() + L.Typestate.size())
     << " lint finding(s) (" << L.Nullness.size() << " nullness, "
     << L.Typestate.size() << " typestate)\n";
}
