//===- report/Classify.h - Warning classification (§7) ----------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies warnings by the origins of their use/free operations, the
/// §7 programmer aid: callbacks split into Entry (EC) and Posted (PC)
/// callbacks; native threads split into Reachable (RT) and Non-Reachable
/// (NT) threads relative to the callback they race with. The paper's
/// hypotheses: PC-involved and NT-involved warnings are the likeliest to
/// be harmful.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_REPORT_CLASSIFY_H
#define NADROID_REPORT_CLASSIFY_H

#include "race/Warning.h"

namespace nadroid::report {

/// Table 1's "Type of Remaining UAFs" categories.
enum class PairType : uint8_t {
  EcEc, ///< two entry callbacks
  EcPc, ///< entry vs posted callback
  PcPc, ///< two posted callbacks
  CRt,  ///< callback vs a native thread it (transitively) created
  CNt,  ///< callback vs an unrelated native thread
};

const char *pairTypeName(PairType Type);

/// Classifies one (use-thread, free-thread) pair.
PairType classifyPair(const threadify::ThreadForest &Forest,
                      const race::ThreadPair &TP);

/// Classifies a warning by its surviving pairs, reporting the
/// highest-suspicion category present (C-NT > C-RT > PC-PC > EC-PC >
/// EC-EC, per the paper's hypotheses about harmfulness).
PairType classifyWarning(const threadify::ThreadForest &Forest,
                         const std::vector<race::ThreadPair> &Pairs);

} // namespace nadroid::report

#endif // NADROID_REPORT_CLASSIFY_H
