//===- report/Rank.h - Warning ranking (§6.2 / §7) --------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// For users who demand soundness, the unsound filters "serve as a
/// ranking system that allows programmers to focus on the still-unpruned
/// remaining races first" (§6.2); and within a tier, §7's hypotheses say
/// PC-involved and NT-involved warnings are the likeliest harmful. This
/// module combines both into one review order:
///
///   tier 0 — remaining warnings, ordered C-NT > C-RT > PC-PC > EC-PC >
///            EC-EC (§7's suspicion order);
///   tier 1 — unsound-pruned warnings, the fewer distinct unsound filters
///            fired the higher (one weak reason to dismiss ranks above
///            three independent reasons);
///   (sound-pruned warnings are proven false and excluded.)
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_REPORT_RANK_H
#define NADROID_REPORT_RANK_H

#include "report/Nadroid.h"

namespace nadroid::report {

/// One entry of the review order.
struct RankedWarning {
  /// Index into NadroidResult::warnings().
  size_t Index = 0;
  /// 0 = remaining, 1 = unsound-pruned.
  unsigned Tier = 0;
  /// The §7 classification used for ordering within tier 0.
  PairType Type = PairType::EcEc;
  /// Distinct unsound filters that fired (tier 1 ordering key).
  unsigned UnsoundReasons = 0;
};

/// Builds the review order for \p R (most suspicious first).
std::vector<RankedWarning> rankWarnings(const NadroidResult &R);

/// Renders one ranked entry as a single line, e.g.
/// "#3 [remaining C-NT] Act.f use@12 free@7".
std::string renderRankedLine(const NadroidResult &R,
                             const RankedWarning &Entry, size_t Position);

} // namespace nadroid::report

#endif // NADROID_REPORT_RANK_H
