//===- report/Nadroid.h - End-to-end pipeline facade ------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-call public API: run the whole nAdroid pipeline (Figure 2) over
/// an AIR program — threadify, detect, filter — and keep every
/// intermediate product alive for inspection. Phase wall-clock timings are
/// recorded for the §8.8 experiment.
///
/// Typical use:
/// \code
///   ir::Program P = ...;
///   report::NadroidResult R = report::analyzeProgram(P);
///   for (size_t I = 0; I < R.warnings().size(); ++I)
///     if (R.Pipeline.Verdicts[I].StageReached ==
///         filters::WarningVerdict::Stage::Remaining)
///       std::cout << report::renderWarning(R, I, P);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_REPORT_NADROID_H
#define NADROID_REPORT_NADROID_H

#include "filters/Engine.h"
#include "pipeline/AnalysisManager.h"
#include "race/Detector.h"
#include "report/Classify.h"
#include "support/Diagnostics.h"

#include <array>
#include <functional>
#include <memory>
#include <ostream>

namespace nadroid::report {

/// Pipeline knobs. An alias of the pipeline layer's options — the facade
/// adds nothing of its own; see PipelineOptions for the field docs.
using NadroidOptions = pipeline::PipelineOptions;

/// Wall-clock seconds per phase (§8.8's breakdown).
struct PhaseTimings {
  double ModelingSec = 0;  ///< threadification
  double DetectionSec = 0; ///< points-to + racy-pair enumeration
  double FilteringSec = 0; ///< both filter stages
  /// FilteringSec split by filter kind: the self-time each filter spent
  /// deciding pairs during this run's verdict sweep, indexed by
  /// filters::FilterKind value (MHB..TT). Lazy analyses a filter
  /// materializes on first touch are charged to that filter, and the
  /// refuter's time belongs to no kind — so the entries sum to less than
  /// FilteringSec, not to it.
  std::array<double, filters::NumFilterKinds> FilterSec{};
  /// Typestate protocol engine (--lint only; 0 on default runs, and the
  /// default JSON report omits it so pre-lint output is byte-identical).
  double TypestateSec = 0;
};

/// Everything the pipeline produced. The analyses live in (and are owned
/// by) the AnalysisManager; the stage fields are non-owning views into it
/// kept for source compatibility, so `R.Forest->...` keeps working.
/// Movable and copyable — copies share the manager.
struct NadroidResult {
  /// Owns every analysis below and answers further on-demand requests
  /// (--stats reads its per-analysis accounting; benches re-query it).
  std::shared_ptr<pipeline::AnalysisManager> Manager;

  const android::ApiIndex *Apis = nullptr;
  const threadify::ThreadForest *Forest = nullptr;
  const analysis::PointsToAnalysis *PTA = nullptr;
  const analysis::ThreadReach *Reach = nullptr;
  race::DetectorResult Detection;
  filters::FilterContext *FilterCtx = nullptr;
  filters::PipelineResult Pipeline;
  PhaseTimings Timings;

  const std::vector<race::UafWarning> &warnings() const {
    return Detection.Warnings;
  }

  /// Indices of warnings that survived every filter.
  std::vector<size_t> remainingIndices() const;
};

/// Runs the full pipeline over \p P through a fresh AnalysisManager.
NadroidResult analyzeProgram(const ir::Program &P,
                             NadroidOptions Options = NadroidOptions{});

/// Same, over a caller-provided manager — how the batch driver attaches
/// its thread pool and how callers retain the manager for further
/// on-demand queries after the facade run.
NadroidResult analyzeProgram(std::shared_ptr<pipeline::AnalysisManager> AM);

/// Renders warning \p Index as a multi-line §7-style report: racy field,
/// use/free sites, classification, and the callback/thread lineage of a
/// surviving pair.
std::string renderWarning(const NadroidResult &R, size_t Index,
                          const ir::Program &P);

/// §7's "call path" aid: the helper-call chain from \p T's callback to
/// the method containing \p Site, reconstructed over the points-to call
/// graph. Empty when the thread does not reach the site.
std::vector<const ir::Method *>
callPathTo(const NadroidResult &R, const threadify::ModeledThread *T,
           const ir::Stmt *Site);

/// Renders a call path as "onClick > helper > readIt".
std::string renderCallPath(const std::vector<const ir::Method *> &Path);

/// One-line summary: "N potential, S after sound, U after unsound".
std::string summaryLine(const NadroidResult &R);

/// Injection points for the CLI's extra flags, so the one-shot driver
/// and the serve daemon render through one function and their default
/// output is byte-identical by construction. AfterSummary runs after
/// the summary line (--rank's review order); PerWarning after each
/// warning block (--validate's schedule exploration). Both are
/// optional.
struct StandardReportHooks {
  std::function<void(std::ostream &OS)> AfterSummary;
  std::function<void(std::ostream &OS, size_t Index, bool Remaining)>
      PerWarning;
};

/// The standard `nadroid [--all] [--explain] app.air` text report:
/// summary line, then a block per (surviving, or with \p ShowAll every)
/// warning, each optionally followed by its prose explanation.
void renderStandardReport(const NadroidResult &R, const ir::Program &P,
                          bool ShowAll, bool Explain, std::ostream &OS,
                          const StandardReportHooks *Hooks = nullptr);

/// Renders parse diagnostics exactly as the one-shot CLI prints them to
/// stderr ("file:line:col: message" per line) — shared with the serve
/// daemon, whose error payloads must match the CLI byte-for-byte.
std::string renderParseDiagnostics(const ir::Program &P,
                                   const std::vector<Diagnostic> &Diags);

} // namespace nadroid::report

#endif // NADROID_REPORT_NADROID_H
