//===- report/Nadroid.h - End-to-end pipeline facade ------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-call public API: run the whole nAdroid pipeline (Figure 2) over
/// an AIR program — threadify, detect, filter — and keep every
/// intermediate product alive for inspection. Phase wall-clock timings are
/// recorded for the §8.8 experiment.
///
/// Typical use:
/// \code
///   ir::Program P = ...;
///   report::NadroidResult R = report::analyzeProgram(P);
///   for (size_t I = 0; I < R.warnings().size(); ++I)
///     if (R.Pipeline.Verdicts[I].StageReached ==
///         filters::WarningVerdict::Stage::Remaining)
///       std::cout << report::renderWarning(R, I);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_REPORT_NADROID_H
#define NADROID_REPORT_NADROID_H

#include "filters/Engine.h"
#include "race/Detector.h"
#include "report/Classify.h"

#include <memory>

namespace nadroid::report {

/// Pipeline knobs.
struct NadroidOptions {
  /// Points-to context depth (§8.5's precision/scalability dial).
  unsigned K = 2;
  /// Future-work extension: model Fragment callbacks as entry callbacks
  /// (recovers Table 3's Browser miss). Off by default, like the paper's
  /// prototype (§8.1).
  bool ModelFragments = false;
  /// IG/IA consume the inter-procedural nullness analysis (default); set
  /// false for the paper-faithful syntactic guard/alloc analyses
  /// (`--syntactic-filters` on the CLI).
  bool DataflowGuards = true;
};

/// Wall-clock seconds per phase (§8.8's breakdown).
struct PhaseTimings {
  double ModelingSec = 0;  ///< threadification
  double DetectionSec = 0; ///< points-to + racy-pair enumeration
  double FilteringSec = 0; ///< both filter stages
};

/// Everything the pipeline produced. Movable; all internal references stay
/// valid because each stage lives behind a unique_ptr.
struct NadroidResult {
  std::unique_ptr<android::ApiIndex> Apis;
  std::unique_ptr<threadify::ThreadForest> Forest;
  std::unique_ptr<analysis::PointsToAnalysis> PTA;
  std::unique_ptr<analysis::ThreadReach> Reach;
  race::DetectorResult Detection;
  std::unique_ptr<filters::FilterContext> FilterCtx;
  filters::PipelineResult Pipeline;
  PhaseTimings Timings;

  const std::vector<race::UafWarning> &warnings() const {
    return Detection.Warnings;
  }

  /// Indices of warnings that survived every filter.
  std::vector<size_t> remainingIndices() const;
};

/// Runs the full pipeline over \p P.
NadroidResult analyzeProgram(const ir::Program &P,
                             NadroidOptions Options = NadroidOptions{});

/// Renders warning \p Index as a multi-line §7-style report: racy field,
/// use/free sites, classification, and the callback/thread lineage of a
/// surviving pair.
std::string renderWarning(const NadroidResult &R, size_t Index,
                          const ir::Program &P);

/// §7's "call path" aid: the helper-call chain from \p T's callback to
/// the method containing \p Site, reconstructed over the points-to call
/// graph. Empty when the thread does not reach the site.
std::vector<const ir::Method *>
callPathTo(const NadroidResult &R, const threadify::ModeledThread *T,
           const ir::Stmt *Site);

/// Renders a call path as "onClick > helper > readIt".
std::string renderCallPath(const std::vector<const ir::Method *> &Path);

/// One-line summary: "N potential, S after sound, U after unsound".
std::string summaryLine(const NadroidResult &R);

} // namespace nadroid::report

#endif // NADROID_REPORT_NADROID_H
