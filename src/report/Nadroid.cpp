//===- report/Nadroid.cpp - End-to-end pipeline facade -------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "report/Nadroid.h"

#include "ir/Printer.h"
#include "report/Explain.h"
#include "threadify/Threadifier.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <sstream>

using namespace nadroid;
using namespace nadroid::report;
using Clock = std::chrono::steady_clock;

static double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

std::vector<size_t> NadroidResult::remainingIndices() const {
  std::vector<size_t> Result;
  for (size_t I = 0; I < Pipeline.Verdicts.size(); ++I)
    if (Pipeline.Verdicts[I].StageReached ==
        filters::WarningVerdict::Stage::Remaining)
      Result.push_back(I);
  return Result;
}

NadroidResult report::analyzeProgram(const ir::Program &P,
                                     NadroidOptions Options) {
  return analyzeProgram(
      std::make_shared<pipeline::AnalysisManager>(P, Options));
}

NadroidResult report::analyzeProgram(
    std::shared_ptr<pipeline::AnalysisManager> AM) {
  NadroidResult R;
  R.Manager = std::move(AM);
  pipeline::AnalysisManager &M = *R.Manager;

  // The facade drives the manager in the paper's Figure 2 phase order,
  // wall-clocking each request group so PhaseTimings keeps its meaning.
  // Analyses the manager already has are free cache hits.

  // Phase 1 — modeling (§4): API classification + threadification.
  auto T0 = Clock::now();
  R.Apis = &M.apis();
  R.Forest = &M.forest();
  R.Timings.ModelingSec = secondsSince(T0);

  // Phase 2 — detection (§5): points-to + racy-pair enumeration.
  auto T1 = Clock::now();
  R.PTA = &M.pointsTo();
  R.Reach = &M.reach();
  R.Detection = M.detection();
  R.Timings.DetectionSec = secondsSince(T1);

  // Phase 3 — filtering (§6). The snapshot copy keeps verdicts readable
  // even after the manager invalidates its own (e.g. on setOptions).
  auto T2 = Clock::now();
  R.FilterCtx = &M.filterContext();
  // The engine's per-kind counters span its whole lifetime (a reused
  // manager sweeps many times); the delta around this verdicts request
  // is the share belonging to this run's filtering phase.
  std::array<double, filters::NumFilterKinds> Before{};
  if (M.isCached<pipeline::FilterEnginePass>())
    Before = M.engine().filterSecondsAll();
  R.Pipeline = M.verdicts();
  const std::array<double, filters::NumFilterKinds> After =
      M.engine().filterSecondsAll();
  for (size_t I = 0; I < filters::NumFilterKinds; ++I)
    R.Timings.FilterSec[I] = After[I] - Before[I];
  R.Timings.FilteringSec = secondsSince(T2);

  return R;
}

std::vector<const ir::Method *>
report::callPathTo(const NadroidResult &R,
                   const threadify::ModeledThread *T,
                   const ir::Stmt *Site) {
  const ir::Method *Target = Site->parentMethod();
  const auto &Edges = R.PTA->callEdges();

  // BFS from the thread's root contexts over ordinary call edges,
  // tracking predecessors until the target method appears.
  const std::vector<analysis::MethodCtx> &All = R.Reach->contextsOf(T);
  if (All.empty())
    return {};
  // Root contexts are the entries whose method is the thread's callback.
  std::deque<analysis::MethodCtx> Pending;
  std::map<analysis::MethodCtx, analysis::MethodCtx> Pred;
  for (const analysis::MethodCtx &Ctx : All)
    if (Ctx.M == T->callback()) {
      Pending.push_back(Ctx);
      Pred.emplace(Ctx, Ctx); // self-pred marks a root
    }
  while (!Pending.empty()) {
    analysis::MethodCtx Ctx = Pending.front();
    Pending.pop_front();
    if (Ctx.M == Target) {
      std::vector<const ir::Method *> Path;
      analysis::MethodCtx Cur = Ctx;
      while (true) {
        Path.push_back(Cur.M);
        analysis::MethodCtx P2 = Pred.at(Cur);
        if (P2 == Cur)
          break;
        Cur = P2;
      }
      std::reverse(Path.begin(), Path.end());
      return Path;
    }
    auto It = Edges.find(Ctx);
    if (It == Edges.end())
      continue;
    for (const analysis::MethodCtx &Next : It->second)
      if (Pred.emplace(Next, Ctx).second)
        Pending.push_back(Next);
  }
  return {};
}

std::string report::renderCallPath(
    const std::vector<const ir::Method *> &Path) {
  std::string Result;
  for (const ir::Method *M : Path) {
    if (!Result.empty())
      Result += " > ";
    Result += M->qualifiedName();
  }
  return Result;
}

std::string report::renderWarning(const NadroidResult &R, size_t Index,
                                  const ir::Program &P) {
  const race::UafWarning &W = R.warnings()[Index];
  const filters::WarningVerdict &V = R.Pipeline.Verdicts[Index];
  const SourceManager &SM = P.sourceManager();

  std::ostringstream OS;
  OS << "potential UAF on field " << W.F->qualifiedName() << "\n";
  OS << "  use : " << ir::stmtToString(*W.Use) << "  in "
     << W.Use->parentMethod()->qualifiedName() << " ("
     << SM.render(W.Use->loc()) << ")\n";
  OS << "  free: " << ir::stmtToString(*W.Free) << "  in "
     << W.Free->parentMethod()->qualifiedName() << " ("
     << SM.render(W.Free->loc()) << ")\n";

  const std::vector<race::ThreadPair> &Pairs =
      !V.PairsRemaining.empty()
          ? V.PairsRemaining
          : (!V.PairsAfterSound.empty() ? V.PairsAfterSound : W.Pairs);
  OS << "  type: " << pairTypeName(classifyWarning(*R.Forest, Pairs))
     << "\n";
  const race::ThreadPair &TP = Pairs.front();
  OS << "  use thread : " << R.Forest->lineage(TP.UseThread) << "\n";
  OS << "  free thread: " << R.Forest->lineage(TP.FreeThread) << "\n";
  // §7's call-path aid, shown when the site sits in a helper rather than
  // directly in the callback.
  std::vector<const ir::Method *> UsePath =
      callPathTo(R, TP.UseThread, W.Use);
  if (UsePath.size() > 1)
    OS << "  use path   : " << renderCallPath(UsePath) << "\n";
  std::vector<const ir::Method *> FreePath =
      callPathTo(R, TP.FreeThread, W.Free);
  if (FreePath.size() > 1)
    OS << "  free path  : " << renderCallPath(FreePath) << "\n";
  if (!V.FiredFilters.empty()) {
    OS << "  filters fired:";
    for (filters::FilterKind Kind : V.FiredFilters)
      OS << " " << filterKindName(Kind);
    OS << "\n";
  }
  // Refutation provenance (--refute): one line per may-HB decision the
  // refuter upgraded to a sound proof or demoted to an assumption. With
  // the engine off every decision is Heuristic and nothing is printed,
  // keeping default output byte-identical.
  for (const filters::PairDecision &D : V.Decisions) {
    if (D.Prov == filters::Provenance::Heuristic ||
        filters::isSoundFilter(D.By))
      continue;
    OS << "  suppression: " << filterKindName(D.By) << " "
       << provenanceName(D.Prov) << " (" << D.Pair.UseThread->label()
       << " vs " << D.Pair.FreeThread->label() << ")";
    if (!D.Evidence.empty())
      OS << " — " << D.Evidence.back();
    OS << "\n";
  }
  return OS.str();
}

std::string report::summaryLine(const NadroidResult &R) {
  std::ostringstream OS;
  OS << R.warnings().size() << " potential UAFs, "
     << R.Pipeline.RemainingAfterSound << " after sound filters, "
     << R.Pipeline.RemainingAfterUnsound << " after unsound filters";
  return OS.str();
}

void report::renderStandardReport(const NadroidResult &R,
                                  const ir::Program &P, bool ShowAll,
                                  bool Explain, std::ostream &OS,
                                  const StandardReportHooks *Hooks) {
  OS << P.name() << ": " << summaryLine(R) << "\n";
  if (Hooks && Hooks->AfterSummary)
    Hooks->AfterSummary(OS);
  for (size_t I = 0; I < R.warnings().size(); ++I) {
    bool Remaining = R.Pipeline.Verdicts[I].StageReached ==
                     filters::WarningVerdict::Stage::Remaining;
    if (!Remaining && !ShowAll)
      continue;
    OS << "\n" << (Remaining ? "[remaining] " : "[filtered]  ")
       << renderWarning(R, I, P);
    if (Explain)
      OS << renderExplanation(R, I);
    if (Hooks && Hooks->PerWarning)
      Hooks->PerWarning(OS, I, Remaining);
  }
}

std::string report::renderParseDiagnostics(const ir::Program &P,
                                           const std::vector<Diagnostic> &Diags) {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags)
    OS << P.sourceManager().render(D.Loc) << ": " << D.Message << "\n";
  return OS.str();
}
