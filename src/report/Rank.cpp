//===- report/Rank.cpp - Warning ranking (§6.2 / §7) ---------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "report/Rank.h"

#include <algorithm>
#include <sstream>

using namespace nadroid;
using namespace nadroid::report;
using filters::FilterKind;
using filters::WarningVerdict;

static int suspicionRank(PairType T) {
  switch (T) {
  case PairType::CNt:
    return 0;
  case PairType::CRt:
    return 1;
  case PairType::PcPc:
    return 2;
  case PairType::EcPc:
    return 3;
  case PairType::EcEc:
    return 4;
  }
  return 4;
}

std::vector<RankedWarning> report::rankWarnings(const NadroidResult &R) {
  std::vector<RankedWarning> Ranked;
  for (size_t I = 0; I < R.warnings().size(); ++I) {
    const WarningVerdict &V = R.Pipeline.Verdicts[I];
    RankedWarning Entry;
    Entry.Index = I;
    switch (V.StageReached) {
    case WarningVerdict::Stage::PrunedBySound:
      continue; // proven false — not part of the review order
    case WarningVerdict::Stage::Remaining:
      Entry.Tier = 0;
      Entry.Type = classifyWarning(*R.Forest, V.PairsRemaining);
      break;
    case WarningVerdict::Stage::PrunedByUnsound: {
      Entry.Tier = 1;
      Entry.Type = classifyWarning(*R.Forest, V.PairsAfterSound);
      for (FilterKind Kind : V.FiredFilters)
        if (!filters::isSoundFilter(Kind))
          ++Entry.UnsoundReasons;
      break;
    }
    }
    Ranked.push_back(Entry);
  }

  std::stable_sort(Ranked.begin(), Ranked.end(),
                   [](const RankedWarning &A, const RankedWarning &B) {
                     if (A.Tier != B.Tier)
                       return A.Tier < B.Tier;
                     if (A.Tier == 0)
                       return suspicionRank(A.Type) <
                              suspicionRank(B.Type);
                     return A.UnsoundReasons < B.UnsoundReasons;
                   });
  return Ranked;
}

std::string report::renderRankedLine(const NadroidResult &R,
                                     const RankedWarning &Entry,
                                     size_t Position) {
  const race::UafWarning &W = R.warnings()[Entry.Index];
  std::ostringstream OS;
  OS << "#" << Position << " ["
     << (Entry.Tier == 0 ? "remaining" : "unsound-pruned") << " "
     << pairTypeName(Entry.Type);
  if (Entry.Tier == 1)
    OS << ", " << Entry.UnsoundReasons
       << (Entry.UnsoundReasons == 1 ? " reason" : " reasons");
  OS << "] " << W.key();
  return OS.str();
}
