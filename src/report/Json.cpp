//===- report/Json.cpp - Machine-readable report output -------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "report/Json.h"

#include "ir/Printer.h"
#include "report/Batch.h"

#include <cctype>
#include <clocale>
#include <cstdlib>
#include <sstream>

using namespace nadroid;
using namespace nadroid::report;
using filters::WarningVerdict;

std::string report::jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string report::jsonUnescape(const std::string &S) {
  std::string Out;
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] != '\\' || I + 1 >= S.size()) {
      Out += S[I];
      continue;
    }
    switch (S[++I]) {
    case 'n':
      Out += '\n';
      break;
    case 't':
      Out += '\t';
      break;
    case 'u': {
      if (I + 4 < S.size()) {
        unsigned Code = std::strtoul(S.substr(I + 1, 4).c_str(), nullptr, 16);
        // jsonEscape only emits \u00xx for control bytes; decode those
        // and keep anything wider as-is (never produced by our writer).
        Out += static_cast<char>(Code & 0xff);
        I += 4;
      }
      break;
    }
    default:
      Out += S[I]; // covers \" and \\ and tolerates unknown escapes
    }
  }
  return Out;
}

std::string report::jsonFixed(double V, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, V);
  std::string Out(Buf);
  // printf renders the decimal separator per LC_NUMERIC; JSON demands
  // '.'. The separator can be multi-byte (e.g. U+066B), so replace the
  // whole localeconv() string, not just a ',' character.
  if (const lconv *Lc = std::localeconv()) {
    const std::string Dp = Lc->decimal_point ? Lc->decimal_point : ".";
    if (Dp != ".") {
      if (size_t Pos = Out.find(Dp); Pos != std::string::npos)
        Out.replace(Pos, Dp.size(), ".");
    }
  }
  return Out;
}

bool report::jsonFindRaw(const std::string &Line, const std::string &Key,
                         std::string &Out) {
  std::string Needle = "\"" + Key + "\": ";
  size_t At = Line.find(Needle);
  if (At == std::string::npos)
    return false;
  At += Needle.size();
  if (At >= Line.size())
    return false;
  if (Line[At] != '"') {
    size_t End = Line.find_first_of(",}", At);
    if (End == std::string::npos)
      return false;
    Out = Line.substr(At, End - At);
    return true;
  }
  std::string Raw;
  for (size_t I = At + 1; I < Line.size(); ++I) {
    if (Line[I] == '\\' && I + 1 < Line.size()) {
      Raw += Line[I];
      Raw += Line[I + 1];
      ++I;
      continue;
    }
    if (Line[I] == '"') {
      Out = std::move(Raw);
      return true;
    }
    Raw += Line[I];
  }
  return false; // unterminated string: truncated line
}

std::string report::jsonFindString(const std::string &Line,
                                   const std::string &Key) {
  std::string Raw;
  return jsonFindRaw(Line, Key, Raw) ? jsonUnescape(Raw) : std::string();
}

unsigned long long report::jsonFindUnsigned(const std::string &Line,
                                            const std::string &Key) {
  std::string Raw;
  if (!jsonFindRaw(Line, Key, Raw))
    return 0;
  return std::strtoull(Raw.c_str(), nullptr, 10);
}

double report::jsonFindFixed(const std::string &Line, const std::string &Key) {
  std::string Raw;
  if (!jsonFindRaw(Line, Key, Raw))
    return 0;
  double Sign = 1;
  size_t I = 0;
  if (I < Raw.size() && Raw[I] == '-') {
    Sign = -1;
    ++I;
  }
  double V = 0;
  for (; I < Raw.size() && std::isdigit(static_cast<unsigned char>(Raw[I]));
       ++I)
    V = V * 10 + (Raw[I] - '0');
  if (I < Raw.size() && Raw[I] == '.') {
    double Place = 0.1;
    for (++I;
         I < Raw.size() && std::isdigit(static_cast<unsigned char>(Raw[I]));
         ++I, Place *= 0.1)
      V += (Raw[I] - '0') * Place;
  }
  return Sign * V;
}

std::string report::renderAppResult(const BatchApp &A, unsigned Schema) {
  std::ostringstream OS;
  OS << "{\"schema\": " << Schema << ", \"fp\": \"" << jsonEscape(A.OptionsFp)
     << "\", \"status\": \"" << batchStatusName(A.Status) << "\", \"error\": \""
     << jsonEscape(A.Error) << "\", \"stmts\": " << A.Stmts
     << ", \"entryCallbacks\": " << A.EntryCallbacks
     << ", \"postedCallbacks\": " << A.PostedCallbacks
     << ", \"threads\": " << A.Threads << ", \"potential\": " << A.Potential
     << ", \"afterSound\": " << A.AfterSound
     << ", \"afterUnsound\": " << A.AfterUnsound
     << ", \"lintNullness\": " << A.LintNullness
     << ", \"lintTypestate\": " << A.LintTypestate
     << ", \"modelingSec\": " << jsonFixed(A.Timings.ModelingSec, 6)
     << ", \"detectionSec\": " << jsonFixed(A.Timings.DetectionSec, 6)
     << ", \"filteringSec\": " << jsonFixed(A.Timings.FilteringSec, 6)
     << ", \"typestateSec\": " << jsonFixed(A.Timings.TypestateSec, 6);
  for (size_t I = 0; I < filters::NumFilterKinds; ++I)
    OS << ", \"filter"
       << filters::filterKindName(static_cast<filters::FilterKind>(I))
       << "Sec\": " << jsonFixed(A.Timings.FilterSec[I], 6);
  // Last on purpose: the scalar scanners above search the whole line,
  // so keys that also occur per-analysis ("builds", "hits") must only
  // appear after every top-level key a reader will look for.
  OS << ", \"analyses\": [";
  bool First = true;
  for (const pipeline::PassStat &S : A.Analyses) {
    OS << (First ? "" : ", ") << "{\"analysis\": \"" << jsonEscape(S.Name)
       << "\", \"ms\": " << jsonFixed(S.Seconds * 1000.0, 3)
       << ", \"builds\": " << S.Builds << ", \"hits\": " << S.Hits << "}";
    First = false;
  }
  OS << "]}";
  return OS.str();
}

bool report::parseAppResult(const std::string &Line, unsigned Schema,
                            BatchApp &Out) {
  // An entry a killed writer truncated cannot end in "]}"; refusing it
  // here turns corruption into a plain miss.
  if (Line.size() < 2 || Line.compare(Line.size() - 2, 2, "]}") != 0)
    return false;
  static const std::string Marker = "\"analyses\": [";
  size_t Split = Line.find(Marker);
  if (Split == std::string::npos)
    return false;
  // Scalars live strictly before the array: per-analysis objects reuse
  // key names ("builds", "hits") that must not shadow them.
  const std::string Head = Line.substr(0, Split);
  const std::string Tail =
      Line.substr(Split + Marker.size(),
                  Line.size() - (Split + Marker.size()) - 2);

  if (jsonFindUnsigned(Head, "schema") != Schema)
    return false;
  BatchStatus Status;
  if (!batchStatusFromName(jsonFindString(Head, "status"), Status))
    return false;
  std::string Raw;
  if (!jsonFindRaw(Head, "fp", Raw) || !jsonFindRaw(Head, "afterUnsound", Raw))
    return false;

  Out = BatchApp();
  Out.Status = Status;
  Out.OptionsFp = jsonFindString(Head, "fp");
  Out.Error = jsonFindString(Head, "error");
  Out.Stmts = static_cast<unsigned>(jsonFindUnsigned(Head, "stmts"));
  Out.EntryCallbacks =
      static_cast<unsigned>(jsonFindUnsigned(Head, "entryCallbacks"));
  Out.PostedCallbacks =
      static_cast<unsigned>(jsonFindUnsigned(Head, "postedCallbacks"));
  Out.Threads = static_cast<unsigned>(jsonFindUnsigned(Head, "threads"));
  Out.Potential = static_cast<unsigned>(jsonFindUnsigned(Head, "potential"));
  Out.AfterSound = static_cast<unsigned>(jsonFindUnsigned(Head, "afterSound"));
  Out.AfterUnsound =
      static_cast<unsigned>(jsonFindUnsigned(Head, "afterUnsound"));
  Out.LintNullness =
      static_cast<unsigned>(jsonFindUnsigned(Head, "lintNullness"));
  Out.LintTypestate =
      static_cast<unsigned>(jsonFindUnsigned(Head, "lintTypestate"));
  Out.Timings.ModelingSec = jsonFindFixed(Head, "modelingSec");
  Out.Timings.DetectionSec = jsonFindFixed(Head, "detectionSec");
  Out.Timings.FilteringSec = jsonFindFixed(Head, "filteringSec");
  Out.Timings.TypestateSec = jsonFindFixed(Head, "typestateSec");
  for (size_t I = 0; I < filters::NumFilterKinds; ++I)
    Out.Timings.FilterSec[I] = jsonFindFixed(
        Head, std::string("filter") +
                  filters::filterKindName(static_cast<filters::FilterKind>(I)) +
                  "Sec");
  Out.RssTrusted = false; // restored rows never carry attributable RSS

  // The array elements hold only scalars, so a brace scan suffices.
  for (size_t I = 0; I < Tail.size();) {
    size_t Open = Tail.find('{', I);
    if (Open == std::string::npos)
      break;
    size_t Close = Tail.find('}', Open);
    if (Close == std::string::npos)
      return false; // truncated element
    const std::string Elem = Tail.substr(Open, Close - Open + 1);
    pipeline::PassStat S;
    S.Name = jsonFindString(Elem, "analysis");
    if (S.Name.empty())
      return false;
    S.Seconds = jsonFindFixed(Elem, "ms") / 1000.0;
    S.Builds = jsonFindUnsigned(Elem, "builds");
    S.Hits = jsonFindUnsigned(Elem, "hits");
    Out.Analyses.push_back(std::move(S));
    I = Close + 1;
  }
  return true;
}

namespace {

const char *stageName(WarningVerdict::Stage Stage) {
  switch (Stage) {
  case WarningVerdict::Stage::PrunedBySound:
    return "sound";
  case WarningVerdict::Stage::PrunedByUnsound:
    return "unsound";
  case WarningVerdict::Stage::Remaining:
    return "remaining";
  }
  return "?";
}

void emitSite(std::ostringstream &OS, const char *Key, const ir::Stmt &S,
              const SourceManager &SM) {
  OS << "\"" << Key << "\": {\"method\": \""
     << jsonEscape(S.parentMethod()->qualifiedName()) << "\", \"stmt\": \""
     << jsonEscape(ir::stmtToString(S)) << "\", \"loc\": \""
     << jsonEscape(SM.render(S.loc())) << "\"}";
}

} // namespace

std::string report::renderJson(const NadroidResult &R,
                               const ir::Program &P) {
  const SourceManager &SM = P.sourceManager();
  std::ostringstream OS;
  OS << "{\n  \"app\": \"" << jsonEscape(P.name()) << "\",\n";
  OS << "  \"summary\": {\"potential\": " << R.warnings().size()
     << ", \"afterSound\": " << R.Pipeline.RemainingAfterSound
     << ", \"afterUnsound\": " << R.Pipeline.RemainingAfterUnsound
     << "},\n";
  // Perf-tracking sections (CI diffs these run to run): the §8.8 phase
  // split plus the manager's per-analysis accounting. All doubles go
  // through jsonFixed — LC_NUMERIC must not leak into the output.
  OS << "  \"timings\": {\"modelingSec\": " << jsonFixed(R.Timings.ModelingSec, 6)
     << ", \"detectionSec\": " << jsonFixed(R.Timings.DetectionSec, 6)
     << ", \"filteringSec\": " << jsonFixed(R.Timings.FilteringSec, 6)
     << ", \"filters\": {";
  for (size_t I = 0; I < filters::NumFilterKinds; ++I)
    OS << (I ? ", " : "") << "\""
       << filters::filterKindName(static_cast<filters::FilterKind>(I))
       << "\": " << jsonFixed(R.Timings.FilterSec[I], 6);
  OS << "}},\n";
  OS << "  \"analyses\": [";
  if (R.Manager) {
    bool FirstPass = true;
    for (const pipeline::PassStat &S : R.Manager->passStats()) {
      OS << (FirstPass ? "" : ", ") << "{\"name\": \"" << jsonEscape(S.Name)
         << "\", \"ms\": " << jsonFixed(S.Seconds * 1000.0, 1)
         << ", \"builds\": " << S.Builds << ", \"hits\": " << S.Hits
         << ", \"rssKb\": " << S.RssKb << "}";
      FirstPass = false;
    }
  }
  OS << "],\n";
  OS << "  \"warnings\": [";
  for (size_t I = 0; I < R.warnings().size(); ++I) {
    const race::UafWarning &W = R.warnings()[I];
    const WarningVerdict &V = R.Pipeline.Verdicts[I];
    OS << (I ? ",\n    " : "\n    ") << "{";
    OS << "\"field\": \"" << jsonEscape(W.F->qualifiedName()) << "\", ";
    OS << "\"stage\": \"" << stageName(V.StageReached) << "\", ";
    const std::vector<race::ThreadPair> &Pairs =
        !V.PairsRemaining.empty()
            ? V.PairsRemaining
            : (!V.PairsAfterSound.empty() ? V.PairsAfterSound : W.Pairs);
    OS << "\"type\": \""
       << pairTypeName(classifyWarning(*R.Forest, Pairs)) << "\", ";
    OS << "\"filters\": [";
    bool First = true;
    for (filters::FilterKind Kind : V.FiredFilters) {
      OS << (First ? "" : ", ") << "\""
         << filters::filterKindName(Kind) << "\"";
      First = false;
    }
    OS << "], ";
    // Per-pruned-pair provenance: which filter decided, how much evidence
    // stands behind it, and the proof chain / counterexample history the
    // refutation engine recorded (empty when it did not run).
    OS << "\"decisions\": [";
    bool FirstDecision = true;
    for (const filters::PairDecision &D : V.Decisions) {
      OS << (FirstDecision ? "" : ", ") << "{\"useThread\": \""
         << jsonEscape(D.Pair.UseThread->label()) << "\", \"freeThread\": \""
         << jsonEscape(D.Pair.FreeThread->label()) << "\", \"filter\": \""
         << filters::filterKindName(D.By) << "\", \"provenance\": \""
         << filters::provenanceName(D.Prov) << "\", \"evidence\": [";
      bool FirstFact = true;
      for (const std::string &Fact : D.Evidence) {
        OS << (FirstFact ? "" : ", ") << "\"" << jsonEscape(Fact) << "\"";
        FirstFact = false;
      }
      OS << "]}";
      FirstDecision = false;
    }
    OS << "], ";
    emitSite(OS, "use", *W.Use, SM);
    OS << ", ";
    emitSite(OS, "free", *W.Free, SM);
    OS << ", \"useThread\": \""
       << jsonEscape(R.Forest->lineage(Pairs.front().UseThread))
       << "\", \"freeThread\": \""
       << jsonEscape(R.Forest->lineage(Pairs.front().FreeThread)) << "\"";
    OS << "}";
  }
  OS << "\n  ]\n}\n";
  return OS.str();
}
