//===- report/Json.cpp - Machine-readable report output -------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "report/Json.h"

#include "ir/Printer.h"

#include <clocale>
#include <cstdlib>
#include <sstream>

using namespace nadroid;
using namespace nadroid::report;
using filters::WarningVerdict;

std::string report::jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string report::jsonUnescape(const std::string &S) {
  std::string Out;
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] != '\\' || I + 1 >= S.size()) {
      Out += S[I];
      continue;
    }
    switch (S[++I]) {
    case 'n':
      Out += '\n';
      break;
    case 't':
      Out += '\t';
      break;
    case 'u': {
      if (I + 4 < S.size()) {
        unsigned Code = std::strtoul(S.substr(I + 1, 4).c_str(), nullptr, 16);
        // jsonEscape only emits \u00xx for control bytes; decode those
        // and keep anything wider as-is (never produced by our writer).
        Out += static_cast<char>(Code & 0xff);
        I += 4;
      }
      break;
    }
    default:
      Out += S[I]; // covers \" and \\ and tolerates unknown escapes
    }
  }
  return Out;
}

std::string report::jsonFixed(double V, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, V);
  std::string Out(Buf);
  // printf renders the decimal separator per LC_NUMERIC; JSON demands
  // '.'. The separator can be multi-byte (e.g. U+066B), so replace the
  // whole localeconv() string, not just a ',' character.
  if (const lconv *Lc = std::localeconv()) {
    const std::string Dp = Lc->decimal_point ? Lc->decimal_point : ".";
    if (Dp != ".") {
      if (size_t Pos = Out.find(Dp); Pos != std::string::npos)
        Out.replace(Pos, Dp.size(), ".");
    }
  }
  return Out;
}

namespace {

const char *stageName(WarningVerdict::Stage Stage) {
  switch (Stage) {
  case WarningVerdict::Stage::PrunedBySound:
    return "sound";
  case WarningVerdict::Stage::PrunedByUnsound:
    return "unsound";
  case WarningVerdict::Stage::Remaining:
    return "remaining";
  }
  return "?";
}

void emitSite(std::ostringstream &OS, const char *Key, const ir::Stmt &S,
              const SourceManager &SM) {
  OS << "\"" << Key << "\": {\"method\": \""
     << jsonEscape(S.parentMethod()->qualifiedName()) << "\", \"stmt\": \""
     << jsonEscape(ir::stmtToString(S)) << "\", \"loc\": \""
     << jsonEscape(SM.render(S.loc())) << "\"}";
}

} // namespace

std::string report::renderJson(const NadroidResult &R,
                               const ir::Program &P) {
  const SourceManager &SM = P.sourceManager();
  std::ostringstream OS;
  OS << "{\n  \"app\": \"" << jsonEscape(P.name()) << "\",\n";
  OS << "  \"summary\": {\"potential\": " << R.warnings().size()
     << ", \"afterSound\": " << R.Pipeline.RemainingAfterSound
     << ", \"afterUnsound\": " << R.Pipeline.RemainingAfterUnsound
     << "},\n";
  // Perf-tracking sections (CI diffs these run to run): the §8.8 phase
  // split plus the manager's per-analysis accounting. All doubles go
  // through jsonFixed — LC_NUMERIC must not leak into the output.
  OS << "  \"timings\": {\"modelingSec\": " << jsonFixed(R.Timings.ModelingSec, 6)
     << ", \"detectionSec\": " << jsonFixed(R.Timings.DetectionSec, 6)
     << ", \"filteringSec\": " << jsonFixed(R.Timings.FilteringSec, 6) << "},\n";
  OS << "  \"analyses\": [";
  if (R.Manager) {
    bool FirstPass = true;
    for (const pipeline::PassStat &S : R.Manager->passStats()) {
      OS << (FirstPass ? "" : ", ") << "{\"name\": \"" << jsonEscape(S.Name)
         << "\", \"ms\": " << jsonFixed(S.Seconds * 1000.0, 1)
         << ", \"builds\": " << S.Builds << ", \"hits\": " << S.Hits
         << ", \"rssKb\": " << S.RssKb << "}";
      FirstPass = false;
    }
  }
  OS << "],\n";
  OS << "  \"warnings\": [";
  for (size_t I = 0; I < R.warnings().size(); ++I) {
    const race::UafWarning &W = R.warnings()[I];
    const WarningVerdict &V = R.Pipeline.Verdicts[I];
    OS << (I ? ",\n    " : "\n    ") << "{";
    OS << "\"field\": \"" << jsonEscape(W.F->qualifiedName()) << "\", ";
    OS << "\"stage\": \"" << stageName(V.StageReached) << "\", ";
    const std::vector<race::ThreadPair> &Pairs =
        !V.PairsRemaining.empty()
            ? V.PairsRemaining
            : (!V.PairsAfterSound.empty() ? V.PairsAfterSound : W.Pairs);
    OS << "\"type\": \""
       << pairTypeName(classifyWarning(*R.Forest, Pairs)) << "\", ";
    OS << "\"filters\": [";
    bool First = true;
    for (filters::FilterKind Kind : V.FiredFilters) {
      OS << (First ? "" : ", ") << "\""
         << filters::filterKindName(Kind) << "\"";
      First = false;
    }
    OS << "], ";
    // Per-pruned-pair provenance: which filter decided, how much evidence
    // stands behind it, and the proof chain / counterexample history the
    // refutation engine recorded (empty when it did not run).
    OS << "\"decisions\": [";
    bool FirstDecision = true;
    for (const filters::PairDecision &D : V.Decisions) {
      OS << (FirstDecision ? "" : ", ") << "{\"useThread\": \""
         << jsonEscape(D.Pair.UseThread->label()) << "\", \"freeThread\": \""
         << jsonEscape(D.Pair.FreeThread->label()) << "\", \"filter\": \""
         << filters::filterKindName(D.By) << "\", \"provenance\": \""
         << filters::provenanceName(D.Prov) << "\", \"evidence\": [";
      bool FirstFact = true;
      for (const std::string &Fact : D.Evidence) {
        OS << (FirstFact ? "" : ", ") << "\"" << jsonEscape(Fact) << "\"";
        FirstFact = false;
      }
      OS << "]}";
      FirstDecision = false;
    }
    OS << "], ";
    emitSite(OS, "use", *W.Use, SM);
    OS << ", ";
    emitSite(OS, "free", *W.Free, SM);
    OS << ", \"useThread\": \""
       << jsonEscape(R.Forest->lineage(Pairs.front().UseThread))
       << "\", \"freeThread\": \""
       << jsonEscape(R.Forest->lineage(Pairs.front().FreeThread)) << "\"";
    OS << "}";
  }
  OS << "\n  ]\n}\n";
  return OS.str();
}
