//===- report/Json.cpp - Machine-readable report output -------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "report/Json.h"

#include "ir/Printer.h"

#include <sstream>

using namespace nadroid;
using namespace nadroid::report;
using filters::WarningVerdict;

std::string report::jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

namespace {

const char *stageName(WarningVerdict::Stage Stage) {
  switch (Stage) {
  case WarningVerdict::Stage::PrunedBySound:
    return "sound";
  case WarningVerdict::Stage::PrunedByUnsound:
    return "unsound";
  case WarningVerdict::Stage::Remaining:
    return "remaining";
  }
  return "?";
}

void emitSite(std::ostringstream &OS, const char *Key, const ir::Stmt &S,
              const SourceManager &SM) {
  OS << "\"" << Key << "\": {\"method\": \""
     << jsonEscape(S.parentMethod()->qualifiedName()) << "\", \"stmt\": \""
     << jsonEscape(ir::stmtToString(S)) << "\", \"loc\": \""
     << jsonEscape(SM.render(S.loc())) << "\"}";
}

} // namespace

std::string report::renderJson(const NadroidResult &R,
                               const ir::Program &P) {
  const SourceManager &SM = P.sourceManager();
  std::ostringstream OS;
  OS << "{\n  \"app\": \"" << jsonEscape(P.name()) << "\",\n";
  OS << "  \"summary\": {\"potential\": " << R.warnings().size()
     << ", \"afterSound\": " << R.Pipeline.RemainingAfterSound
     << ", \"afterUnsound\": " << R.Pipeline.RemainingAfterUnsound
     << "},\n";
  // Perf-tracking sections (CI diffs these run to run): the §8.8 phase
  // split plus the manager's per-analysis accounting.
  char Buf[32];
  auto Sec = [&Buf](double V) {
    std::snprintf(Buf, sizeof(Buf), "%.6f", V);
    return std::string(Buf);
  };
  OS << "  \"timings\": {\"modelingSec\": " << Sec(R.Timings.ModelingSec)
     << ", \"detectionSec\": " << Sec(R.Timings.DetectionSec)
     << ", \"filteringSec\": " << Sec(R.Timings.FilteringSec) << "},\n";
  OS << "  \"analyses\": [";
  if (R.Manager) {
    bool FirstPass = true;
    for (const pipeline::PassStat &S : R.Manager->passStats()) {
      std::snprintf(Buf, sizeof(Buf), "%.1f", S.Seconds * 1000.0);
      OS << (FirstPass ? "" : ", ") << "{\"name\": \"" << jsonEscape(S.Name)
         << "\", \"ms\": " << Buf << ", \"builds\": " << S.Builds
         << ", \"hits\": " << S.Hits << ", \"rssKb\": " << S.RssKb << "}";
      FirstPass = false;
    }
  }
  OS << "],\n";
  OS << "  \"warnings\": [";
  for (size_t I = 0; I < R.warnings().size(); ++I) {
    const race::UafWarning &W = R.warnings()[I];
    const WarningVerdict &V = R.Pipeline.Verdicts[I];
    OS << (I ? ",\n    " : "\n    ") << "{";
    OS << "\"field\": \"" << jsonEscape(W.F->qualifiedName()) << "\", ";
    OS << "\"stage\": \"" << stageName(V.StageReached) << "\", ";
    const std::vector<race::ThreadPair> &Pairs =
        !V.PairsRemaining.empty()
            ? V.PairsRemaining
            : (!V.PairsAfterSound.empty() ? V.PairsAfterSound : W.Pairs);
    OS << "\"type\": \""
       << pairTypeName(classifyWarning(*R.Forest, Pairs)) << "\", ";
    OS << "\"filters\": [";
    bool First = true;
    for (filters::FilterKind Kind : V.FiredFilters) {
      OS << (First ? "" : ", ") << "\""
         << filters::filterKindName(Kind) << "\"";
      First = false;
    }
    OS << "], ";
    // Per-pruned-pair provenance: which filter decided, how much evidence
    // stands behind it, and the proof chain / counterexample history the
    // refutation engine recorded (empty when it did not run).
    OS << "\"decisions\": [";
    bool FirstDecision = true;
    for (const filters::PairDecision &D : V.Decisions) {
      OS << (FirstDecision ? "" : ", ") << "{\"useThread\": \""
         << jsonEscape(D.Pair.UseThread->label()) << "\", \"freeThread\": \""
         << jsonEscape(D.Pair.FreeThread->label()) << "\", \"filter\": \""
         << filters::filterKindName(D.By) << "\", \"provenance\": \""
         << filters::provenanceName(D.Prov) << "\", \"evidence\": [";
      bool FirstFact = true;
      for (const std::string &Fact : D.Evidence) {
        OS << (FirstFact ? "" : ", ") << "\"" << jsonEscape(Fact) << "\"";
        FirstFact = false;
      }
      OS << "]}";
      FirstDecision = false;
    }
    OS << "], ";
    emitSite(OS, "use", *W.Use, SM);
    OS << ", ";
    emitSite(OS, "free", *W.Free, SM);
    OS << ", \"useThread\": \""
       << jsonEscape(R.Forest->lineage(Pairs.front().UseThread))
       << "\", \"freeThread\": \""
       << jsonEscape(R.Forest->lineage(Pairs.front().FreeThread)) << "\"";
    OS << "}";
  }
  OS << "\n  ]\n}\n";
  return OS.str();
}
