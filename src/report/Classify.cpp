//===- report/Classify.cpp - Warning classification (§7) -----------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "report/Classify.h"

#include <cassert>

using namespace nadroid;
using namespace nadroid::report;
using threadify::ModeledThread;
using threadify::ThreadOrigin;

const char *report::pairTypeName(PairType Type) {
  switch (Type) {
  case PairType::EcEc:
    return "EC-EC";
  case PairType::EcPc:
    return "EC-PC";
  case PairType::PcPc:
    return "PC-PC";
  case PairType::CRt:
    return "C-RT";
  case PairType::CNt:
    return "C-NT";
  }
  return "?";
}

PairType report::classifyPair(const threadify::ThreadForest &Forest,
                              const race::ThreadPair &TP) {
  const ModeledThread *U = TP.UseThread;
  const ModeledThread *F = TP.FreeThread;
  bool UNative = U->isNative();
  bool FNative = F->isNative();

  if (UNative || FNative) {
    // Both native would normally be TT-filtered; classify as C-NT to keep
    // the function total.
    if (UNative && FNative)
      return PairType::CNt;
    const ModeledThread *Callback = UNative ? F : U;
    const ModeledThread *Native = UNative ? U : F;
    return Forest.isReachableThreadOf(Native, Callback) ? PairType::CRt
                                                        : PairType::CNt;
  }

  bool UEntry = U->origin() == ThreadOrigin::EntryCallback;
  bool FEntry = F->origin() == ThreadOrigin::EntryCallback;
  if (UEntry && FEntry)
    return PairType::EcEc;
  if (!UEntry && !FEntry)
    return PairType::PcPc;
  return PairType::EcPc;
}

PairType report::classifyWarning(const threadify::ThreadForest &Forest,
                                 const std::vector<race::ThreadPair> &Pairs) {
  assert(!Pairs.empty() && "classifying a warning with no pairs");
  auto Rank = [](PairType T) {
    switch (T) {
    case PairType::CNt:
      return 4;
    case PairType::CRt:
      return 3;
    case PairType::PcPc:
      return 2;
    case PairType::EcPc:
      return 1;
    case PairType::EcEc:
      return 0;
    }
    return 0;
  };
  PairType Best = classifyPair(Forest, Pairs.front());
  for (size_t I = 1; I < Pairs.size(); ++I) {
    PairType T = classifyPair(Forest, Pairs[I]);
    if (Rank(T) > Rank(Best))
      Best = T;
  }
  return Best;
}
