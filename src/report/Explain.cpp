//===- report/Explain.cpp - Natural-language verdict explanations ---------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "report/Explain.h"

#include "filters/Filter.h"

#include <sstream>

using namespace nadroid;
using namespace nadroid::report;
using filters::FilterKind;
using race::ThreadPair;
using race::UafWarning;
using threadify::ModeledThread;

namespace {

std::string threadName(const ModeledThread *T) { return T->label(); }

/// The per-filter prose. Mirrors each filter's §6 rationale, specialized
/// with the pair's details.
std::string proseFor(FilterKind Kind, const UafWarning &W,
                     const ThreadPair &TP) {
  const ModeledThread *Tu = TP.UseThread;
  const ModeledThread *Tf = TP.FreeThread;
  std::ostringstream OS;
  switch (Kind) {
  case FilterKind::MHB:
    if (Tu->connectionInstance() != 0 &&
        Tu->connectionInstance() == Tf->connectionInstance())
      OS << "MHB-Service: onServiceConnected always precedes "
            "onServiceDisconnected of the same binding, so the use "
            "cannot follow the free";
    else if (Tu->asyncInstance() != 0 &&
             Tu->asyncInstance() == Tf->asyncInstance())
      OS << "MHB-AsyncTask: the framework orders this task's callbacks "
            "(onPreExecute < doInBackground/onProgressUpdate < "
            "onPostExecute), so the use cannot follow the free";
    else if (Tu->callback() && Tu->callback()->name() == "onCreate")
      OS << "MHB-Lifecycle: onCreate precedes every other callback of "
         << (Tu->component() ? Tu->component()->name() : "the component")
         << ", so the use cannot follow the free";
    else
      OS << "MHB-Lifecycle: every entry callback of "
         << (Tf->component() ? Tf->component()->name() : "the component")
         << " precedes its onDestroy, so the use cannot follow the free";
    break;
  case FilterKind::IG:
    OS << "IG: the use is null-checked, and "
       << (Tu->onLooper() && Tf->onLooper()
               ? "both callbacks run atomically on the UI looper, so the "
                 "free cannot interleave between check and use"
               : "both sides hold a common lock, so the free cannot "
                 "interleave between check and use");
    break;
  case FilterKind::IA:
    OS << "IA: the callback installs a fresh allocation before the use, "
          "and the free cannot interleave (same-looper atomicity or a "
          "common lock)";
    break;
  case FilterKind::RHB:
    OS << "RHB (unsound): the free sits in onPause; while paused the UI "
          "takes no input, and onResume may re-allocate the field before "
          "the next "
       << (Tu->callback() ? Tu->callback()->name() : "UI event");
    break;
  case FilterKind::CHB:
    OS << "CHB (unsound): some path of " << threadName(Tf)
       << " cancels " << threadName(Tu)
       << " (finish/unbind/unregister/removeCallbacks), so on that "
          "reasoning the use must precede the free";
    break;
  case FilterKind::PHB:
    OS << "PHB (unsound): one of the callbacks posted the other on the "
          "same looper; the poster completes before the postee runs, "
          "ordering the two operations";
    break;
  case FilterKind::MA:
    OS << "MA (unsound): the use follows a getter-provided assignment, "
          "assumed non-null";
    break;
  case FilterKind::UR:
    OS << "UR (unsound): the loaded value only flows into returns, call "
          "arguments, or null comparisons — a benign use";
    break;
  case FilterKind::TT:
    OS << "TT (unsound): both sides are native threads; conventional "
          "thread races are outside nAdroid's Android-specific scope";
    break;
  }
  return OS.str();
}

} // namespace

std::vector<std::string> report::explainVerdict(const NadroidResult &R,
                                                size_t Index) {
  const UafWarning &W = R.warnings()[Index];
  const filters::WarningVerdict &V = R.Pipeline.Verdicts[Index];
  std::vector<std::string> Lines;

  // Rebuild the per-pair picture: which filters prune which pair.
  filters::FilterEngine &Engine = R.Manager->engine();
  for (const ThreadPair &TP : W.Pairs) {
    bool Survived = std::find(V.PairsRemaining.begin(),
                              V.PairsRemaining.end(),
                              TP) != V.PairsRemaining.end();
    std::string PairName =
        threadName(TP.UseThread) + " vs " + threadName(TP.FreeThread);
    if (Survived) {
      Lines.push_back(PairName +
                      ": no happens-before order and no protecting "
                      "idiom — a real schedule may order the free first");
      continue;
    }
    // Prefer the verdict's recorded decision: it carries the refuter's
    // provenance and evidence, which a fresh pairPrunedBy re-derivation
    // would not.
    if (const filters::PairDecision *D = V.decisionFor(TP)) {
      std::string Line = PairName + ": " + proseFor(D->By, W, TP);
      if (D->Prov == filters::Provenance::Proved &&
          !filters::isSoundFilter(D->By)) {
        Line += " [provenance: proved — ";
        for (size_t I = 0; I < D->Evidence.size(); ++I)
          Line += (I ? "; " : "") + D->Evidence[I];
        Line += "]";
      } else if (D->Prov == filters::Provenance::ProvedV2) {
        Line += " [provenance: proved-v2 — ";
        for (size_t I = 0; I < D->Evidence.size(); ++I)
          Line += (I ? "; " : "") + D->Evidence[I];
        Line += "]";
      } else if (D->Prov == filters::Provenance::Assumed) {
        Line += " [provenance: assumed — counterexample history: ";
        for (size_t I = 0; I < D->Evidence.size(); ++I)
          Line += (I ? " -> " : "") + D->Evidence[I];
        Line += "]";
      }
      Lines.push_back(std::move(Line));
      continue;
    }
    for (FilterKind Kind : filters::allFilterKinds()) {
      if (!Engine.pairPrunedBy(W, TP, {Kind}))
        continue;
      Lines.push_back(PairName + ": " + proseFor(Kind, W, TP));
      break; // the first (soundest) reason suffices
    }
  }
  return Lines;
}

std::string report::renderExplanation(const NadroidResult &R,
                                      size_t Index) {
  std::string Result;
  for (const std::string &Line : explainVerdict(R, Index))
    Result += "  why: " + Line + "\n";
  return Result;
}
