//===- report/Batch.h - Parallel corpus-scale batch driver ------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `nadroid --batch DIR [--jobs N]`: analyze every `.air` application in
/// a directory — the paper's workflow over its 27-app corpus, but
/// concurrent. Apps are discovered and ordered by file name, each gets
/// its own AnalysisManager (the Android framework tables underneath the
/// per-app ApiIndex are immutable statics, shared read-only), and the
/// per-app tasks fan out over one support::ThreadPool, which the
/// per-warning verdict loops inside each app reuse.
///
/// Determinism: results land in the slot of the app's sorted index, and
/// the text report carries no timing, so its bytes are identical for any
/// --jobs value. The JSON aggregate adds wall-clock and per-analysis
/// accounting and is therefore not byte-stable across runs.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_REPORT_BATCH_H
#define NADROID_REPORT_BATCH_H

#include "report/Nadroid.h"

#include <string>
#include <vector>

namespace nadroid::report {

struct BatchOptions {
  /// Directory scanned (non-recursively) for `.air` files.
  std::string Dir;
  /// Pool lanes; 0 = one per hardware thread, 1 = fully serial.
  unsigned Jobs = 0;
  /// Per-app analysis options (K, ModelFragments, DataflowGuards).
  pipeline::PipelineOptions Pipeline;
};

/// Outcome for one app, reduced to what the aggregate report needs —
/// the per-app manager and IR are torn down as soon as the app is done,
/// keeping a corpus-scale run's footprint at O(largest app).
struct BatchApp {
  std::string File; ///< file name within the directory, e.g. "K9Mail.air"
  std::string Name; ///< program name (the file stem)
  bool Ok = false;
  std::string Error; ///< first parse diagnostic when !Ok

  unsigned Stmts = 0;
  unsigned EntryCallbacks = 0;
  unsigned PostedCallbacks = 0;
  unsigned Threads = 0;
  unsigned Potential = 0;
  unsigned AfterSound = 0;
  unsigned AfterUnsound = 0;

  PhaseTimings Timings;
  std::vector<pipeline::PassStat> Analyses;
};

struct BatchResult {
  std::vector<BatchApp> Apps; ///< sorted by File
  unsigned Jobs = 1;          ///< lanes actually used
  double WallSec = 0;

  /// 2 when any app failed to parse, else 1 when any warning remained
  /// after all filters, else 0 — the single-file CLI convention, folded.
  int exitCode() const;
};

/// Scans Opts.Dir and analyzes every app. Never throws on per-app
/// failures; they come back as !Ok rows.
BatchResult runBatch(const BatchOptions &Opts);

/// The aggregate Table-1-style text report (byte-identical across job
/// counts): one row per app plus a totals row and a summary line.
std::string renderBatchReport(const BatchResult &R);

/// The JSON aggregate: per-app summaries plus phase timings and
/// per-analysis accounting rows.
std::string renderBatchJson(const BatchResult &R);

} // namespace nadroid::report

#endif // NADROID_REPORT_BATCH_H
