//===- report/Batch.h - Parallel corpus-scale batch driver ------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `nadroid --batch DIR [--jobs N]`: analyze every `.air` application in
/// a directory — the paper's workflow over its 27-app corpus, but
/// concurrent. Apps are discovered and ordered by file name, each gets
/// its own AnalysisManager (the Android framework tables underneath the
/// per-app ApiIndex are immutable statics, shared read-only), and the
/// per-app tasks fan out over one support::ThreadPool, which the
/// per-warning verdict loops inside each app reuse.
///
/// Fault tolerance: each app runs inside an exception boundary, so a
/// crashing or unparseable app becomes a failed row instead of taking
/// the whole batch down. With --batch-timeout, every app gets a
/// cooperative support::Deadline; an app that exceeds it is retried once
/// with the §8.8 degraded options (k=1, syntactic filters, no refuter)
/// and its row is labeled `degraded` — or `timed-out` when even the
/// retry expires. With --batch-log, every completed row is appended to a
/// JSONL checkpoint as it finishes, and --resume skips the apps already
/// logged there.
///
/// Caching: with --cache-dir, every app is first looked up in a
/// persistent content-addressed result cache (src/cache) keyed by
/// SHA-256 of (canonical .air bytes, options fingerprint, cache schema
/// version); hits restore the complete row without touching the pool,
/// misses analyze and store atomically, so a warm run is O(changed
/// apps). --cache-verify re-analyzes hits and flags divergence.
///
/// Determinism: results land in the slot of the app's sorted index, and
/// the text report carries no timing, so its bytes are identical for any
/// --jobs value — and between cold and warm cache runs, which CI
/// byte-compares. The JSON aggregate adds wall-clock, per-analysis and
/// cache accounting and is therefore not byte-stable across runs.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_REPORT_BATCH_H
#define NADROID_REPORT_BATCH_H

#include "report/Nadroid.h"

#include <string>
#include <vector>

namespace nadroid::report {

struct BatchOptions {
  /// Directory scanned (non-recursively) for `.air` files.
  std::string Dir;
  /// Pool lanes; 0 = one per hardware thread, 1 = fully serial.
  unsigned Jobs = 0;
  /// Deterministic corpus partition (`--shard i/n`): with ShardCount
  /// N > 0, only the apps whose shardOfApp() value equals ShardIndex
  /// (1-based) are analyzed. Assignment hashes the app's *canonical*
  /// bytes — not its name, not directory order — so renaming a file or
  /// adding an unrelated app never reshuffles the other shards'
  /// workloads (and their caches stay warm). 0/0 = unsharded.
  unsigned ShardIndex = 0;
  unsigned ShardCount = 0;
  /// Per-app analysis options (K, ModelFragments, DataflowGuards).
  pipeline::PipelineOptions Pipeline;
  /// Per-app soft time budget in seconds; 0 = none. Expiry degrades the
  /// app's options once (§8.8 ladder), then gives up.
  double TimeoutSec = 0;
  /// JSONL checkpoint path; empty = no checkpoint. Each completed app
  /// appends one line as it finishes, flushed, so a killed run loses at
  /// most the in-flight apps.
  std::string LogPath;
  /// Skip apps already present in LogPath, reusing their logged rows.
  /// Rows whose stamped options fingerprint differs from this
  /// invocation's are refused (re-analyzed), never trusted.
  bool Resume = false;

  /// Persistent content-addressed result cache directory (`--cache-dir`);
  /// empty = no cache. Each app is keyed by SHA-256 of (canonical .air
  /// bytes, options fingerprint, cache schema version) and consulted
  /// before the app is scheduled on the pool; only `ok` rows are ever
  /// stored — degraded, timed-out, crashed and parse-failed rows are
  /// re-attempted every run. The text report is byte-identical between
  /// cold and warm runs; hit/miss/store counts live in the JSON
  /// aggregate and the stderr footer (renderBatchCacheFooter).
  std::string CacheDir;
  /// Correctness backstop (`--cache-verify`): re-analyze every cache hit
  /// anyway and compare the fresh row against the entry. A divergence
  /// (a stale or corrupt-but-parseable entry, a nondeterministic
  /// analysis) makes the batch exit code 5.
  bool CacheVerify = false;

  /// Deterministic fault-injection hooks for tests (file names within
  /// Dir; empty = off). Also settable via NADROID_TEST_CRASH_APP,
  /// NADROID_TEST_EXPIRE_APP and NADROID_TEST_EXPIRE_ALWAYS_APP so CLI
  /// tests can reach them.
  std::string TestCrashApp;        ///< throws before analysis → crashed
  std::string TestExpireApp;       ///< expires attempt 0 only → degraded
  std::string TestExpireAlwaysApp; ///< expires every attempt → timed-out
};

/// How one app's analysis ended.
enum class BatchStatus : uint8_t {
  Ok,         ///< analyzed with the requested options
  Degraded,   ///< analyzed, but only after the §8.8 degradation ladder
  ParseFailed, ///< the frontend rejected the file
  Crashed,    ///< the analysis threw; Error carries the exception text
  TimedOut,   ///< exceeded the budget even with degraded options
};

/// Stable lower-case label, e.g. "parse-failed" — used by both reports
/// and the checkpoint log.
const char *batchStatusName(BatchStatus S);

/// Inverse of batchStatusName; false on unknown labels (the checkpoint
/// log and cache-entry parsers refuse such rows).
bool batchStatusFromName(const std::string &Name, BatchStatus &Out);

/// Outcome for one app, reduced to what the aggregate report needs —
/// the per-app manager and IR are torn down as soon as the app is done,
/// keeping a corpus-scale run's footprint at O(largest app).
struct BatchApp {
  std::string File; ///< file name within the directory, e.g. "K9Mail.air"
  std::string Name; ///< program name (the file stem)
  BatchStatus Status = BatchStatus::ParseFailed;
  std::string Error; ///< first diagnostic / exception text when failed
  /// The invocation's PipelineOptions::fingerprint(), stamped on every
  /// row. The checkpoint log persists it so --resume can refuse rows
  /// analyzed under different options, and cache entries carry it for
  /// human-debuggable misses.
  std::string OptionsFp;

  /// True for the rows that carry analysis results (Ok or Degraded).
  bool analyzed() const {
    return Status == BatchStatus::Ok || Status == BatchStatus::Degraded;
  }

  unsigned Stmts = 0;
  unsigned EntryCallbacks = 0;
  unsigned PostedCallbacks = 0;
  unsigned Threads = 0;
  unsigned Potential = 0;
  unsigned AfterSound = 0;
  unsigned AfterUnsound = 0;
  /// Lint finding counts (`--batch --lint` only; always 0 otherwise, so
  /// non-lint rows, reports and cache entries are unchanged).
  unsigned LintNullness = 0;
  unsigned LintTypestate = 0;

  PhaseTimings Timings;
  /// Seconds since the batch started at which this row's analysis
  /// finished — the anchor that places the per-phase CPU timings on the
  /// shared batch clock (phases are laid out backwards from it).
  /// Transient: -1 for rows restored from the checkpoint log or the
  /// result cache, which carry no position on this run's clock; such
  /// rows are excluded from the wall-clock phase aggregation.
  double PhaseEndSec = -1;
  std::vector<pipeline::PassStat> Analyses;
  /// False when per-pass RSS deltas were suppressed (concurrent lanes
  /// share one process RSS and would cross-charge each other) or the row
  /// was restored from a checkpoint; the JSON renders rssKb as null.
  bool RssTrusted = false;
};

struct BatchResult {
  std::vector<BatchApp> Apps; ///< sorted by File
  unsigned Jobs = 1;          ///< lanes actually used
  /// True when the batch ran with --lint: the text report gains a Lint
  /// column and the JSON gains lint counts and the typestate phase.
  /// With it false both outputs are byte-identical to a pre-lint build.
  bool LintMode = false;
  double WallSec = 0;
  unsigned Resumed = 0; ///< rows restored from the checkpoint log
  /// Checkpoint rows refused because their stamped options fingerprint
  /// differed from this invocation's, or because the whole log carried
  /// a different shard spec (the apps were re-analyzed).
  unsigned ResumedStale = 0;
  /// The partition this run covered (0/0 = unsharded). Stamped into the
  /// checkpoint-log header and the JSON aggregate so merge-shards can
  /// prove coverage.
  unsigned ShardIndex = 0;
  unsigned ShardCount = 0;

  // Result-cache accounting (all zero when no --cache-dir). Hits and
  // misses count only apps that were actually probed — an app whose
  // probe parse fails is neither.
  bool CacheEnabled = false;
  std::string CacheBackend; ///< backend scheme: "dir", "http", "" = off
  unsigned CacheHits = 0;
  unsigned CacheMisses = 0;
  unsigned CacheStores = 0;
  unsigned CacheVerified = 0;  ///< hits re-analyzed under --cache-verify
  unsigned CacheDivergent = 0; ///< verified hits whose entry disagreed
  /// Transport/status failures the backend degraded to misses
  /// (CacheBackend contract): a dead cache host shows up here, not as
  /// a hang or a wrong report.
  unsigned CacheTransportFailures = 0;

  /// Worst outcome over the corpus: 5 when --cache-verify found a
  /// divergent entry, else 4 when any app timed out, else 3 when any
  /// crashed, else 2 when any failed to parse, else 6 when any lint
  /// finding fired (--lint batches only), else 1 when any warning
  /// remained after all filters, else 0. Lint findings outrank plain
  /// warnings but never mask an infrastructure failure.
  int exitCode() const;
};

/// Scans Opts.Dir and analyzes every app. Never throws on per-app
/// failures; they come back as failed rows.
BatchResult runBatch(const BatchOptions &Opts);

/// Per-phase accounting over a whole batch. The two units answer
/// different questions and diverge as soon as --jobs > 1:
///  * CpuSec — the sum of the apps' per-phase timings: how much work the
///    phase did. Summing lanes made the old "phase seconds" exceed the
///    batch wall time on any parallel run.
///  * WallSec — the measure of the union of the apps' phase intervals on
///    the batch clock: how long the batch actually spent with that phase
///    running somewhere. Never exceeds the batch wall time.
/// Rows restored from the checkpoint log or the result cache carry CPU
/// timings from some earlier run but no position on this run's clock;
/// they are excluded from both sums.
struct BatchPhaseTotals {
  double ModelingCpuSec = 0, ModelingWallSec = 0;
  double DetectionCpuSec = 0, DetectionWallSec = 0;
  double FilteringCpuSec = 0, FilteringWallSec = 0;
  /// The typestate lint phase (zero unless the batch ran with --lint).
  double TypestateCpuSec = 0, TypestateWallSec = 0;
  /// FilteringCpuSec split by filter kind (summed per-app self-times,
  /// indexed by filters::FilterKind value). Like the per-app breakdown,
  /// the entries undercount the total: refuter time and sweep overhead
  /// belong to no single filter.
  std::array<double, filters::NumFilterKinds> FilterCpuSec{};
};
BatchPhaseTotals batchPhaseTotals(const BatchResult &R);

/// The aggregate Table-1-style text report (byte-identical across job
/// counts): one row per app plus a totals row and a summary line.
std::string renderBatchReport(const BatchResult &R);

/// The JSON aggregate: per-app summaries plus phase timings,
/// per-analysis accounting rows and the cache counters.
std::string renderBatchJson(const BatchResult &R);

/// One line of cache accounting ("cache: 27 hits, 0 misses, ...\n"), or
/// the empty string when no cache was configured. The driver prints it
/// to stderr — never into the text report, whose bytes must not differ
/// between cold and warm runs.
std::string renderBatchCacheFooter(const BatchResult &R);

/// One checkpoint-log line for \p A (no trailing newline) and its
/// inverse. parseBatchLogLine returns false on lines it cannot
/// understand (corrupt tail of an interrupted write, blank lines,
/// the header line).
std::string renderBatchLogLine(const BatchApp &A);
bool parseBatchLogLine(const std::string &Line, BatchApp &Out);

//===----------------------------------------------------------------------===//
// Distributed batch: deterministic sharding + shard-merge
//
// `--shard i/n` makes N machines each analyze a disjoint 1/N of the
// corpus; `--merge-shards` folds their checkpoint logs back into the
// aggregate report an unsharded run would have printed — byte-identical
// text, and JSON that is deterministic by construction (measurement
// fields are per-shard artifacts and render as zero in a merge).
//===----------------------------------------------------------------------===//

/// The shard (1-based, in [1, ShardCount]) that owns an app with these
/// canonical bytes: the first 64 bits of the SHA-256, mod ShardCount.
/// Content-addressed on purpose — stable under file renames, corpus
/// reordering and formatting-only edits (the same invariances the
/// result-cache key has), so growing the corpus only moves the new
/// app. ShardCount <= 1 returns 1.
unsigned shardOfApp(std::string_view CanonicalBytes, unsigned ShardCount);

/// "i/n" for a sharded run, "-" for an unsharded one — the spec string
/// stamped into checkpoint-log headers and compared on --resume.
std::string shardSpecString(unsigned ShardIndex, unsigned ShardCount);

/// Decodes "i/n" with 1 <= i <= n (strictly — "0/3", "4/3", "a/3" and
/// trailing junk are all refused). One grammar serves both the driver's
/// --shard flag and the checkpoint-log headers merge-shards reads.
bool parseShardSpec(const std::string &Spec, unsigned &ShardIndex,
                    unsigned &ShardCount);

/// The checkpoint log's first line: `{"nadroidBatchLog": 1, "shard":
/// "i/n", "fp": "...", "lint": 0|1}` (no trailing newline). Written
/// whenever a log is created fresh; --resume refuses a log whose shard
/// spec differs from the invocation's instead of silently analyzing
/// the wrong partition, and merge-shards uses it to prove coverage.
std::string renderBatchLogHeader(const std::string &ShardSpec,
                                 const std::string &OptionsFp, bool Lint);

/// Recognizes and decodes a header line. False when \p Line is not a
/// header (ordinary rows and corrupt tails fall through to the row
/// parser). Logs from before the header era have none; readers treat
/// them as shard "-".
bool parseBatchLogHeader(const std::string &Line, std::string &ShardSpec,
                         std::string &OptionsFp, bool &Lint);

/// Exit code for merge-shards input problems (missing / overlapping /
/// duplicate shards, unreadable or mismatched logs) — distinct from
/// every per-app severity so CI can tell "the fleet's output is
/// incomplete" from "the fleet found problems".
inline constexpr int MergeShardsExitCode = 8;

struct MergeShardsResult {
  /// The reassembled batch (valid only when Diags is empty). Volatile
  /// measurement fields (timings, wall clock, cache counters) are
  /// zeroed: they describe the shard runs, not the merged corpus, and
  /// zeroing them makes the merged JSON byte-deterministic.
  BatchResult Merged;
  /// Input diagnostics, one human-readable line each; empty = merged.
  std::vector<std::string> Diags;

  bool ok() const { return Diags.empty(); }
  /// MergeShardsExitCode on any diagnostic, else the merged rows' own
  /// worst-row ladder (the same exitCode() an unsharded run computes).
  int exitCode() const {
    return Diags.empty() ? Merged.exitCode() : MergeShardsExitCode;
  }
};

/// Combines per-shard checkpoint logs into one BatchResult, validating
/// that the logs form exactly one complete partition: every shard
/// 1..n present once (missing/duplicate shards diagnosed), no app row
/// in two logs (overlap diagnosed), one options fingerprint and lint
/// mode across all rows. Within one log the --resume semantics apply:
/// a later row for the same file supersedes an earlier one. A single
/// unsharded log ("-") is a complete partition by itself, which is how
/// an unsharded run's log round-trips through the same renderer.
MergeShardsResult mergeShardLogs(const std::vector<std::string> &LogPaths);

} // namespace nadroid::report

#endif // NADROID_REPORT_BATCH_H
