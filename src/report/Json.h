//===- report/Json.h - Machine-readable report output -----------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a pipeline result as JSON for CI integration: one object
/// per warning with its sites, verdict, fired filters, classification,
/// and thread lineages, plus the summary counters. The emitter is
/// self-contained (no external JSON dependency) and deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_REPORT_JSON_H
#define NADROID_REPORT_JSON_H

#include "report/Nadroid.h"

#include <string>

namespace nadroid::report {

/// Renders the whole result. Shape:
/// \code
/// {
///   "app": "...",
///   "summary": {"potential": N, "afterSound": N, "afterUnsound": N},
///   "warnings": [
///     {"field": "...", "stage": "remaining|sound|unsound",
///      "type": "EC-PC", "filters": ["MHB", ...],
///      "use":  {"method": "...", "stmt": "...", "loc": "..."},
///      "free": {"method": "...", "stmt": "...", "loc": "..."},
///      "useThread": "...", "freeThread": "..."}]
/// }
/// \endcode
std::string renderJson(const NadroidResult &R, const ir::Program &P);

/// Escapes \p S for inclusion in a JSON string literal.
std::string jsonEscape(const std::string &S);

} // namespace nadroid::report

#endif // NADROID_REPORT_JSON_H
