//===- report/Json.h - Machine-readable report output -----------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a pipeline result as JSON for CI integration: one object
/// per warning with its sites, verdict, fired filters, classification,
/// and thread lineages, plus the summary counters. The emitter is
/// self-contained (no external JSON dependency) and deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_REPORT_JSON_H
#define NADROID_REPORT_JSON_H

#include "report/Nadroid.h"

#include <string>

namespace nadroid::report {

struct BatchApp; // report/Batch.h

/// Renders the whole result. Shape:
/// \code
/// {
///   "app": "...",
///   "summary": {"potential": N, "afterSound": N, "afterUnsound": N},
///   "warnings": [
///     {"field": "...", "stage": "remaining|sound|unsound",
///      "type": "EC-PC", "filters": ["MHB", ...],
///      "use":  {"method": "...", "stmt": "...", "loc": "..."},
///      "free": {"method": "...", "stmt": "...", "loc": "..."},
///      "useThread": "...", "freeThread": "..."}]
/// }
/// \endcode
std::string renderJson(const NadroidResult &R, const ir::Program &P);

/// Escapes \p S for inclusion in a JSON string literal.
std::string jsonEscape(const std::string &S);

/// Undoes jsonEscape: decodes \", \\, \n, \t, \uXXXX (and tolerates any
/// other \X by keeping X). The batch driver's --resume path uses it to
/// read its own checkpoint log back.
std::string jsonUnescape(const std::string &S);

/// Formats \p V with \p Precision digits after a '.' decimal point
/// regardless of LC_NUMERIC. Every JSON number the reports emit goes
/// through here: printf("%f") follows the host locale and can produce
/// "0,5" — invalid JSON — when a locale-setting host embeds the library.
std::string jsonFixed(double V, int Precision);

//===----------------------------------------------------------------------===//
// Single-line JSON object scanning
//
// The checkpoint log (--batch-log) and the result cache both persist one
// BatchApp per *line* and read it back with these key scanners instead
// of a full JSON parser. The discipline is deliberate: a line truncated
// by a killed writer (or a corrupted cache entry) makes the scanners
// report the key as absent, so the whole row is refused and the app is
// simply re-analyzed — never half-read.
//===----------------------------------------------------------------------===//

/// Extracts the raw text of `"Key": value` from \p Line: the body of a
/// quoted string (still escaped) or the token up to the next `,`/`}` for
/// numbers. Returns false when the key is absent — which includes any
/// line truncated mid-value.
bool jsonFindRaw(const std::string &Line, const std::string &Key,
                 std::string &Out);

/// `jsonFindRaw` + `jsonUnescape`; empty string when absent.
std::string jsonFindString(const std::string &Line, const std::string &Key);

/// Unsigned integer value of `"Key"`; 0 when absent.
unsigned long long jsonFindUnsigned(const std::string &Line,
                                    const std::string &Key);

/// Locale-independent inverse of jsonFixed (strtod would read the
/// fraction through the *locale's* decimal point, not "."); 0 when
/// absent.
double jsonFindFixed(const std::string &Line, const std::string &Key);

//===----------------------------------------------------------------------===//
// Cache-entry serialization (the batch result cache's value format)
//===----------------------------------------------------------------------===//

/// Serializes one completed batch row as a single-line, self-describing
/// cache entry (no trailing newline): the schema tag, the options
/// fingerprint, the status/summary/timing scalars, and the per-analysis
/// accounting rows — a strict superset of the checkpoint-log line minus
/// the file identity, which a content-addressed entry must not carry
/// (the same bytes under a new name must still hit).
std::string renderAppResult(const BatchApp &A, unsigned Schema);

/// Inverse of renderAppResult. Returns false — a cache miss, never an
/// error — on truncated lines, alien content, a schema tag different
/// from \p Schema, or any missing required field. On success every
/// field except File/Name (the caller's identity to fill in) and
/// RssTrusted (always false for restored rows) is populated.
bool parseAppResult(const std::string &Line, unsigned Schema, BatchApp &Out);

} // namespace nadroid::report

#endif // NADROID_REPORT_JSON_H
