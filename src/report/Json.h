//===- report/Json.h - Machine-readable report output -----------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a pipeline result as JSON for CI integration: one object
/// per warning with its sites, verdict, fired filters, classification,
/// and thread lineages, plus the summary counters. The emitter is
/// self-contained (no external JSON dependency) and deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_REPORT_JSON_H
#define NADROID_REPORT_JSON_H

#include "report/Nadroid.h"

#include <string>

namespace nadroid::report {

/// Renders the whole result. Shape:
/// \code
/// {
///   "app": "...",
///   "summary": {"potential": N, "afterSound": N, "afterUnsound": N},
///   "warnings": [
///     {"field": "...", "stage": "remaining|sound|unsound",
///      "type": "EC-PC", "filters": ["MHB", ...],
///      "use":  {"method": "...", "stmt": "...", "loc": "..."},
///      "free": {"method": "...", "stmt": "...", "loc": "..."},
///      "useThread": "...", "freeThread": "..."}]
/// }
/// \endcode
std::string renderJson(const NadroidResult &R, const ir::Program &P);

/// Escapes \p S for inclusion in a JSON string literal.
std::string jsonEscape(const std::string &S);

/// Undoes jsonEscape: decodes \", \\, \n, \t, \uXXXX (and tolerates any
/// other \X by keeping X). The batch driver's --resume path uses it to
/// read its own checkpoint log back.
std::string jsonUnescape(const std::string &S);

/// Formats \p V with \p Precision digits after a '.' decimal point
/// regardless of LC_NUMERIC. Every JSON number the reports emit goes
/// through here: printf("%f") follows the host locale and can produce
/// "0,5" — invalid JSON — when a locale-setting host embeds the library.
std::string jsonFixed(double V, int Precision);

} // namespace nadroid::report

#endif // NADROID_REPORT_JSON_H
