//===- driver/Main.cpp - The nadroid command-line tool -------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The `nadroid` tool: parse an AIR application and report potential UAF
// ordering violations, Figure 2 end to end.
//
//   nadroid app.air                  report remaining warnings
//   nadroid --all app.air            also show filtered warnings
//   nadroid --validate app.air       confirm remaining warnings by
//                                    directed schedule exploration
//   nadroid --deva app.air           run the DEvA baseline instead
//   nadroid --dump-threads app.air   print the threadified forest
//   nadroid --print-ir app.air       echo the parsed program
//   nadroid --stats app.air          print analysis statistics
//   nadroid --k N app.air            points-to context depth (default 2)
//   nadroid --rank app.air           ranked review order (§6.2/§7)
//   nadroid --fragments app.air      model Fragment callbacks (extension)
//   nadroid --export-corpus DIR      write the 27 evaluation apps as .air
//   nadroid --dot app.air            emit the thread forest + warnings
//                                    as Graphviz DOT
//   nadroid --explain app.air        add per-pair prose explaining each
//                                    verdict
//   nadroid --json app.air           machine-readable report (CI)
//   nadroid --lint app.air           run the AIR lint checkers instead
//                                    of the UAF pipeline: the nullness
//                                    checkers plus the typestate
//                                    protocol engine over the spec's
//                                    `protocol` machines (exit 6 on
//                                    findings; combine with --json or
//                                    --explain, or with --batch)
//   nadroid --syntactic-filters a.air paper-faithful intra-procedural
//                                    IG/IA guard analyses
//   nadroid --refute app.air         prove or demote each RHB/CHB/PHB
//                                    suppression (provenance column)
//   nadroid --refute-v2 app.air      re-attack each assumed pair with the
//                                    tier-2 history refuter (implies
//                                    --refute)
//   nadroid --check-spec             validate the framework spec and exit
//   nadroid --spec-file FILE         check FILE instead of the builtin
//                                    spec (with --check-spec)
//   nadroid --batch DIR              analyze every .air app in DIR and
//                                    print an aggregate Table-1 summary
//   nadroid --batch-timeout SEC      per-app soft budget; over-budget apps
//                                    retry once with degraded options
//                                    (§8.8), then report timed-out
//   nadroid --batch-log FILE         append a JSONL row per finished app
//   nadroid --resume                 skip apps already in --batch-log
//                                    (rows from other options refused)
//   nadroid --shard I/N              analyze only this run's slice of the
//                                    --batch corpus (deterministic,
//                                    content-addressed partition)
//   nadroid --merge-shards LOG...    fold per-shard --batch-log files back
//                                    into the aggregate report an
//                                    unsharded run would have printed
//                                    (exit 8 on missing/overlapping/
//                                    duplicated shard inputs)
//   nadroid --cache-dir SPEC         persistent content-addressed result
//                                    cache for --batch: unchanged apps
//                                    hit and skip analysis entirely.
//                                    SPEC is a directory, dir://DIR, or
//                                    http://host:port/prefix (a remote
//                                    action cache shared by shard fleets)
//   nadroid --cache-verify           re-analyze cache hits and fail
//                                    (exit 5) on any divergence
//   nadroid --jobs N                 worker threads for --batch and the
//                                    per-warning filter sweep (default:
//                                    one per hardware thread)
//   nadroid --serve SOCK             long-lived analyzer daemon on a unix
//                                    socket; apps stay resident so edits
//                                    re-run only what they invalidated
//   nadroid --serve-sessions N       resident-session capacity (default 8)
//   nadroid --connect SOCK REQ...    send one request to a --serve daemon
//                                    and exit with the code the one-shot
//                                    CLI would have used (7 = no daemon)
//
//===----------------------------------------------------------------------===//

#include "android/FrameworkSpec.h"
#include "cache/ResultCache.h"
#include "corpus/Corpus.h"
#include "deva/Deva.h"
#include "frontend/Frontend.h"
#include "interp/Interp.h"
#include "ir/Printer.h"
#include "report/Batch.h"
#include "report/Nadroid.h"
#include "report/Dot.h"
#include "report/Lint.h"
#include "report/Explain.h"
#include "report/Json.h"
#include "report/Rank.h"
#include "serve/Server.h"
#include "support/StringUtils.h"
#include "support/TableWriter.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

using namespace nadroid;

namespace {

struct CliOptions {
  bool ShowAll = false;
  bool Validate = false;
  bool RunDeva = false;
  bool DumpThreads = false;
  bool PrintIr = false;
  bool Stats = false;
  bool Rank = false;
  bool Fragments = false;
  bool Dot = false;
  bool Explain = false;
  bool Json = false;
  bool Lint = false;
  bool SyntacticFilters = false;
  bool Refute = false;
  bool RefuteHistory = false;
  bool CheckSpec = false;
  std::string SpecFile;
  unsigned K = 2;
  unsigned Jobs = 0;
  std::string ExportCorpusDir;
  std::string BatchDir;
  double BatchTimeoutSec = 0;
  std::string BatchLogPath;
  bool Resume = false;
  unsigned ShardIndex = 0; ///< --shard i/n; 0/0 = unsharded
  unsigned ShardCount = 0;
  bool MergeShards = false; ///< positional args become shard logs
  std::string CacheDir;
  bool CacheVerify = false;
  std::string ServePath;
  unsigned ServeSessions = 8;
  std::string ConnectPath;
  std::vector<std::string> ConnectWords;
  std::vector<std::string> Files;
};

/// Strict numeric flag parsing (no atoi: "abc" must not silently become
/// 0). Distinguishes "not a number" from "out of range" so the user
/// learns which rule they broke.
bool parseCount(const char *Flag, const char *Value, unsigned &Out) {
  unsigned long long N = 0;
  if (!nadroid::parseUnsigned(Value, N)) {
    std::cerr << "error: " << Flag << ": '" << Value
              << "' is not a number\n";
    return false;
  }
  if (N < 1 || N > (1ull << 31)) {
    std::cerr << "error: " << Flag << " must be at least 1\n";
    return false;
  }
  Out = static_cast<unsigned>(N);
  return true;
}

void printUsage() {
  std::cerr
      << "usage: nadroid [--all] [--validate] [--deva] [--dump-threads]\n"
      << "               [--print-ir] [--stats] [--rank] [--fragments]\n"
      << "               [--dot] [--explain] [--json]\n"
      << "               [--lint] [--syntactic-filters] [--refute]\n"
      << "               [--refute-v2] [--check-spec] [--spec-file FILE]\n"
      << "               [--k N] [--jobs N] [--export-corpus DIR]\n"
      << "               [--batch DIR] [--batch-timeout SEC]\n"
      << "               [--batch-log FILE] [--resume] [--shard I/N]\n"
      << "               [--cache-dir SPEC] [--cache-verify] file.air...\n"
      << "       nadroid --merge-shards [--json] shard.log...\n"
      << "       nadroid --serve SOCK [--serve-sessions N] [--jobs N]\n"
      << "               [--cache-dir SPEC]\n"
      << "       nadroid --connect SOCK <verb> [file.air] [flags...]\n";
}

bool parseArgs(int argc, char **argv, CliOptions &Opts) {
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (!std::strcmp(Arg, "--all"))
      Opts.ShowAll = true;
    else if (!std::strcmp(Arg, "--validate"))
      Opts.Validate = true;
    else if (!std::strcmp(Arg, "--deva"))
      Opts.RunDeva = true;
    else if (!std::strcmp(Arg, "--dump-threads"))
      Opts.DumpThreads = true;
    else if (!std::strcmp(Arg, "--print-ir"))
      Opts.PrintIr = true;
    else if (!std::strcmp(Arg, "--stats"))
      Opts.Stats = true;
    else if (!std::strcmp(Arg, "--rank"))
      Opts.Rank = true;
    else if (!std::strcmp(Arg, "--dot"))
      Opts.Dot = true;
    else if (!std::strcmp(Arg, "--explain"))
      Opts.Explain = true;
    else if (!std::strcmp(Arg, "--json"))
      Opts.Json = true;
    else if (!std::strcmp(Arg, "--fragments"))
      Opts.Fragments = true;
    else if (!std::strcmp(Arg, "--lint"))
      Opts.Lint = true;
    else if (!std::strcmp(Arg, "--syntactic-filters"))
      Opts.SyntacticFilters = true;
    else if (!std::strcmp(Arg, "--refute"))
      Opts.Refute = true;
    else if (!std::strcmp(Arg, "--refute-v2"))
      Opts.Refute = Opts.RefuteHistory = true;
    else if (!std::strcmp(Arg, "--check-spec"))
      Opts.CheckSpec = true;
    else if (!std::strcmp(Arg, "--spec-file")) {
      if (++I >= argc) {
        std::cerr << "error: --spec-file needs a file\n";
        return false;
      }
      Opts.SpecFile = argv[I];
    }
    else if (!std::strcmp(Arg, "--export-corpus")) {
      if (++I >= argc) {
        std::cerr << "error: --export-corpus needs a directory\n";
        return false;
      }
      Opts.ExportCorpusDir = argv[I];
    }
    else if (!std::strcmp(Arg, "--batch")) {
      if (++I >= argc) {
        std::cerr << "error: --batch needs a directory\n";
        return false;
      }
      Opts.BatchDir = argv[I];
    }
    else if (!std::strcmp(Arg, "--batch-timeout")) {
      if (++I >= argc) {
        std::cerr << "error: --batch-timeout needs seconds\n";
        return false;
      }
      if (!parseDouble(argv[I], Opts.BatchTimeoutSec)) {
        std::cerr << "error: --batch-timeout: '" << argv[I]
                  << "' is not a number\n";
        return false;
      }
      if (Opts.BatchTimeoutSec <= 0) {
        std::cerr << "error: --batch-timeout must be positive\n";
        return false;
      }
    }
    else if (!std::strcmp(Arg, "--batch-log")) {
      if (++I >= argc) {
        std::cerr << "error: --batch-log needs a file\n";
        return false;
      }
      Opts.BatchLogPath = argv[I];
    }
    else if (!std::strcmp(Arg, "--resume")) {
      Opts.Resume = true;
    }
    else if (!std::strcmp(Arg, "--shard")) {
      if (++I >= argc) {
        std::cerr << "error: --shard needs a spec (I/N)\n";
        return false;
      }
      if (!report::parseShardSpec(argv[I], Opts.ShardIndex,
                                  Opts.ShardCount)) {
        std::cerr << "error: --shard: '" << argv[I]
                  << "' is not a shard spec I/N with 1 <= I <= N\n";
        return false;
      }
    }
    else if (!std::strcmp(Arg, "--merge-shards")) {
      Opts.MergeShards = true;
    }
    else if (!std::strcmp(Arg, "--cache-dir")) {
      if (++I >= argc) {
        std::cerr << "error: --cache-dir needs a directory or URL\n";
        return false;
      }
      Opts.CacheDir = argv[I];
    }
    else if (!std::strcmp(Arg, "--cache-verify")) {
      Opts.CacheVerify = true;
    }
    else if (!std::strcmp(Arg, "--jobs")) {
      if (++I >= argc) {
        std::cerr << "error: --jobs needs a value\n";
        return false;
      }
      if (!parseCount("--jobs", argv[I], Opts.Jobs))
        return false;
    }
    else if (!std::strcmp(Arg, "--k")) {
      if (++I >= argc) {
        std::cerr << "error: --k needs a value\n";
        return false;
      }
      if (!parseCount("--k", argv[I], Opts.K))
        return false;
    }
    else if (!std::strcmp(Arg, "--serve")) {
      if (++I >= argc) {
        std::cerr << "error: --serve needs a socket path\n";
        return false;
      }
      Opts.ServePath = argv[I];
    }
    else if (!std::strcmp(Arg, "--serve-sessions")) {
      if (++I >= argc) {
        std::cerr << "error: --serve-sessions needs a value\n";
        return false;
      }
      if (!parseCount("--serve-sessions", argv[I], Opts.ServeSessions))
        return false;
    }
    else if (!std::strcmp(Arg, "--connect")) {
      if (++I >= argc) {
        std::cerr << "error: --connect needs a socket path\n";
        return false;
      }
      Opts.ConnectPath = argv[I];
      // Everything after the socket is the request line, verbatim — the
      // daemon parses it, so its diagnostics and the CLI's agree.
      while (++I < argc)
        Opts.ConnectWords.push_back(argv[I]);
    } else if (!std::strcmp(Arg, "--help") || !std::strcmp(Arg, "-h")) {
      printUsage();
      std::exit(0);
    } else if (Arg[0] == '-') {
      std::cerr << "error: unknown option '" << Arg << "'\n";
      return false;
    } else {
      Opts.Files.push_back(Arg);
    }
  }
  // --serve is a resident mode: the one-shot sweeps cannot ride along,
  // and each has its own story (mirroring the --spec-file/--check-spec
  // pairing diagnostics).
  if (!Opts.ServePath.empty()) {
    if (!Opts.BatchDir.empty()) {
      std::cerr << "error: --serve cannot run a --batch sweep; point "
                   "clients at the daemon instead\n";
      return false;
    }
    if (Opts.Resume) {
      std::cerr << "error: --resume resumes a --batch-log; a --serve "
                   "daemon keeps no batch log\n";
      return false;
    }
    if (!Opts.ExportCorpusDir.empty()) {
      std::cerr << "error: --export-corpus is a one-shot mode; run it "
                   "without --serve\n";
      return false;
    }
    if (!Opts.ConnectPath.empty()) {
      std::cerr << "error: --serve and --connect are different ends of "
                   "the socket; pick one\n";
      return false;
    }
    if (!Opts.Files.empty()) {
      std::cerr << "error: --serve takes no input files; clients name "
                   "them per request\n";
      return false;
    }
  }
  // --merge-shards is a pure log-reader: it runs no analysis, so every
  // flag that shapes one is a confusion worth naming.
  if (Opts.MergeShards) {
    if (!Opts.BatchDir.empty()) {
      std::cerr << "error: --merge-shards merges finished logs; it cannot "
                   "also run a --batch\n";
      return false;
    }
    if (Opts.ShardCount) {
      std::cerr << "error: --shard belongs to the producing --batch runs, "
                   "not to --merge-shards\n";
      return false;
    }
    if (Opts.Resume || !Opts.BatchLogPath.empty()) {
      std::cerr << "error: --merge-shards takes its logs as positional "
                   "arguments, not via --batch-log/--resume\n";
      return false;
    }
    if (!Opts.CacheDir.empty()) {
      std::cerr << "error: --merge-shards runs no analysis; there is "
                   "nothing for --cache-dir to cache\n";
      return false;
    }
    if (Opts.Files.empty()) {
      std::cerr << "error: --merge-shards needs at least one shard log\n";
      return false;
    }
  }
  if (Opts.ShardCount && Opts.BatchDir.empty()) {
    std::cerr << "error: --shard partitions a --batch corpus; add "
                 "--batch DIR\n";
    return false;
  }
  if (Opts.Files.empty() && Opts.ExportCorpusDir.empty() &&
      Opts.BatchDir.empty() && !Opts.CheckSpec && Opts.ServePath.empty() &&
      Opts.ConnectPath.empty()) {
    printUsage();
    return false;
  }
  if (!Opts.SpecFile.empty() && !Opts.CheckSpec) {
    std::cerr << "error: --spec-file needs --check-spec\n";
    return false;
  }
  if (Opts.Resume && Opts.BatchLogPath.empty()) {
    std::cerr << "error: --resume needs --batch-log\n";
    return false;
  }
  if (Opts.CacheVerify && Opts.CacheDir.empty()) {
    std::cerr << "error: --cache-verify needs --cache-dir\n";
    return false;
  }
  // Validate the cache spec at the CLI boundary: a typo'd URL must be a
  // diagnostic here, not a silently-counted transport failure on every
  // probe of the batch.
  if (!Opts.CacheDir.empty()) {
    std::string Err;
    if (!cache::validateCacheSpec(Opts.CacheDir, Err)) {
      std::cerr << "error: --cache-dir: " << Err << "\n";
      return false;
    }
  }
  return true;
}

/// The --check-spec mode: parse and validate the framework spec (the
/// builtin one, or --spec-file's), printing every diagnostic. Exit 0 on
/// a clean spec, 2 otherwise — CI runs this so a spec edit that breaks
/// an invariant (unknown callback name, cyclic must-order, dangling
/// kill/revive target) fails the build with a readable message.
int checkSpec(const std::string &SpecFile) {
  android::FrameworkSpec Spec;
  std::vector<std::string> Diags;
  bool Ok;
  const std::string Source =
      SpecFile.empty() ? std::string("builtin spec") : SpecFile;
  if (SpecFile.empty())
    Ok = android::FrameworkSpec::parseText(
        android::FrameworkSpec::builtinText(), Spec, Diags);
  else
    Ok = android::FrameworkSpec::loadFile(SpecFile, Spec, Diags);
  if (Ok)
    for (const std::string &D : Spec.validate())
      Diags.push_back(D);
  if (!Diags.empty()) {
    for (const std::string &D : Diags)
      std::cerr << Source << ": " << D << "\n";
    std::cerr << Source << ": " << Diags.size() << " error(s)\n";
    return 2;
  }
  std::cout << Source << ": framework spec OK — " << Spec.summary() << "\n";
  return 0;
}

/// Writes all 27 evaluation apps as .air files into \p Dir.
int exportCorpus(const std::string &Dir) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  unsigned Written = 0;
  for (const corpus::Recipe &R : corpus::allRecipes()) {
    corpus::CorpusApp App = corpus::buildApp(R);
    std::string Path = Dir + "/" + R.Name + ".air";
    std::ofstream Out(Path);
    if (!Out) {
      std::cerr << "error: cannot write '" << Path << "'\n";
      return 2;
    }
    ir::printProgram(*App.Prog, Out);
    ++Written;
  }
  std::cout << "wrote " << Written << " apps to " << Dir << "\n";
  return 0;
}

int runDevaBaseline(pipeline::AnalysisManager &AM) {
  deva::DevaResult Result = deva::runDeva(AM);
  const ir::Program &P = AM.program();
  std::cout << P.name() << ": DEvA found " << Result.Warnings.size()
            << " event anomalies, " << Result.harmful().size()
            << " marked harmful\n";
  for (const deva::DevaWarning &W : Result.Warnings)
    std::cout << "  " << (W.Harmful ? "harmful " : "guarded ")
              << W.F->qualifiedName() << ": use in "
              << W.UseCallback->qualifiedName() << ", free in "
              << W.FreeCallback->qualifiedName() << "\n";
  return Result.harmful().empty() ? 0 : 1;
}

int analyzeFile(const std::string &Path, const CliOptions &Opts) {
  frontend::ParseResult Parsed = frontend::parseProgramFile(Path);
  if (!Parsed.Success) {
    std::cerr << report::renderParseDiagnostics(*Parsed.Prog, Parsed.Diags);
    return 2;
  }
  const ir::Program &P = *Parsed.Prog;

  if (Opts.PrintIr)
    ir::printProgram(P, std::cout);

  // One manager per file is the composition root for every mode below;
  // --deva and --lint pull just the analyses they need from it. The pool
  // (declared first, so it outlives the manager) parallelizes the
  // per-warning filter sweep.
  report::NadroidOptions NOpts;
  NOpts.K = Opts.K;
  NOpts.ModelFragments = Opts.Fragments;
  NOpts.DataflowGuards = !Opts.SyntacticFilters;
  NOpts.Refute = Opts.Refute;
  NOpts.RefuteHistory = Opts.RefuteHistory;
  NOpts.Lint = Opts.Lint;
  support::ThreadPool Pool(Opts.Jobs);
  auto AM = std::make_shared<pipeline::AnalysisManager>(P, NOpts);
  AM->setThreadPool(&Pool);

  if (Opts.RunDeva)
    return runDevaBaseline(*AM);
  if (Opts.Lint) {
    report::LintResult L = report::runLintChecks(*AM);
    report::renderLintReport(P, L, Opts.Json, Opts.Explain, std::cout);
    // Exit 6 is reserved for lint findings so CI can tell "the linters
    // fired" from "the UAF pipeline found warnings" (1) or "bad input"
    // (2); see the exit-code table in README.md.
    return L.empty() ? 0 : 6;
  }

  report::NadroidResult R = report::analyzeProgram(AM);

  if (Opts.Dot) {
    std::cout << report::analysisToDot(R);
    return R.Pipeline.RemainingAfterUnsound == 0 ? 0 : 1;
  }
  if (Opts.Json) {
    std::cout << report::renderJson(R, P);
    return R.Pipeline.RemainingAfterUnsound == 0 ? 0 : 1;
  }
  if (Opts.DumpThreads) {
    std::cout << "thread forest (" << R.Forest->threads().size()
              << " modeled threads):\n";
    for (const auto &T : R.Forest->threads())
      std::cout << "  " << R.Forest->lineage(T.get()) << "\n";
    std::cout << "\n";
  }
  if (Opts.Stats) {
    std::cout << "per-analysis profile:\n";
    TableWriter PassTable({"Analysis", "Self(ms)", "Builds", "Hits",
                           "RSS(KB)"});
    for (const pipeline::PassStat &S : R.Manager->passStats()) {
      char Ms[32];
      std::snprintf(Ms, sizeof(Ms), "%.1f", S.Seconds * 1000.0);
      PassTable.addRow({S.Name, Ms, TableWriter::cell((long long)S.Builds),
                        TableWriter::cell((long long)S.Hits),
                        TableWriter::cell(S.RssKb)});
    }
    PassTable.print(std::cout);
    std::cout << "\nfilter self-time (share of the filtering phase; lazy "
                 "analyses are charged to the first filter that touches "
                 "them):\n";
    TableWriter FilterTable({"Filter", "Self(ms)"});
    for (size_t I = 0; I < filters::NumFilterKinds; ++I) {
      char Ms[32];
      std::snprintf(Ms, sizeof(Ms), "%.3f", R.Timings.FilterSec[I] * 1000.0);
      FilterTable.addRow(
          {filters::filterKindName(static_cast<filters::FilterKind>(I)), Ms});
    }
    FilterTable.print(std::cout);
    std::cout << "\nanalysis counters:\n";
    TableWriter Counters({"Counter", "Value"});
    auto AddAll = [&Counters](const StatRegistry &Stats) {
      for (const auto &[Key, Value] : Stats.all())
        Counters.addRow({Key, TableWriter::cell((long long)Value)});
    };
    AddAll(R.PTA->stats());
    AddAll(R.Detection.Stats);
    Counters.print(std::cout);
    std::cout << "\n";
  }

  // The standard text report flows through the shared renderer — the
  // serve daemon calls the same function, so CLI and daemon bytes agree
  // by construction. The driver-only flags (--rank's review order,
  // --validate's schedule exploration — interp stays out of the report
  // layer) ride along as hooks.
  interp::ScheduleExplorer Explorer(P);
  unsigned Confirmed = 0;
  report::StandardReportHooks Hooks;
  if (Opts.Rank)
    Hooks.AfterSummary = [&R](std::ostream &OS) {
      std::vector<report::RankedWarning> Ranked = report::rankWarnings(R);
      OS << "\nreview order (most suspicious first):\n";
      for (size_t I = 0; I < Ranked.size(); ++I)
        OS << "  " << report::renderRankedLine(R, Ranked[I], I + 1) << "\n";
    };
  if (Opts.Validate)
    Hooks.PerWarning = [&](std::ostream &OS, size_t I, bool Remaining) {
      if (!Remaining)
        return;
      const race::UafWarning &W = R.warnings()[I];
      interp::WitnessSchedule Schedule;
      if (Explorer.tryWitness(W.Use, W.Free, 60, &Schedule)) {
        OS << "  validation: CONFIRMED harmful — crashing "
              "schedule:\n";
        for (const std::string &Step : Schedule.Activations)
          OS << "    " << Step << "\n";
        OS << "    *** NullPointerException at: " << Schedule.CrashSite
           << "\n";
        ++Confirmed;
      } else {
        OS << "  validation: no crashing schedule found\n";
      }
    };
  report::renderStandardReport(R, P, Opts.ShowAll, Opts.Explain, std::cout,
                               &Hooks);
  if (Opts.Validate)
    std::cout << "\n" << Confirmed << " warning(s) confirmed harmful\n";
  return R.Pipeline.RemainingAfterUnsound == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  CliOptions Opts;
  if (!parseArgs(argc, argv, Opts))
    return 2;
  if (Opts.CheckSpec)
    return checkSpec(Opts.SpecFile);
  if (!Opts.ConnectPath.empty())
    return serve::runClient(Opts.ConnectPath,
                            join(Opts.ConnectWords, " "), std::cout,
                            std::cerr);
  if (!Opts.ServePath.empty()) {
    serve::ServerOptions SOpts;
    SOpts.SocketPath = Opts.ServePath;
    SOpts.Jobs = Opts.Jobs;
    SOpts.MaxSessions = Opts.ServeSessions;
    SOpts.CacheDir = Opts.CacheDir;
    SOpts.Log = &std::cerr;
    return serve::runServe(SOpts);
  }
  if (!Opts.ExportCorpusDir.empty())
    return exportCorpus(Opts.ExportCorpusDir);
  if (Opts.MergeShards) {
    report::MergeShardsResult MR = report::mergeShardLogs(Opts.Files);
    for (const std::string &D : MR.Diags)
      std::cerr << "merge-shards: " << D << "\n";
    if (!MR.ok())
      return report::MergeShardsExitCode;
    std::cout << (Opts.Json ? report::renderBatchJson(MR.Merged)
                            : report::renderBatchReport(MR.Merged));
    return MR.exitCode();
  }
  if (!Opts.BatchDir.empty()) {
    if (!std::filesystem::is_directory(Opts.BatchDir)) {
      std::cerr << "error: '" << Opts.BatchDir << "' is not a directory\n";
      return 2;
    }
    report::BatchOptions BOpts;
    BOpts.Dir = Opts.BatchDir;
    BOpts.Jobs = Opts.Jobs;
    BOpts.Pipeline.K = Opts.K;
    BOpts.Pipeline.ModelFragments = Opts.Fragments;
    BOpts.Pipeline.DataflowGuards = !Opts.SyntacticFilters;
    BOpts.Pipeline.Refute = Opts.Refute;
    BOpts.Pipeline.RefuteHistory = Opts.RefuteHistory;
    BOpts.Pipeline.Lint = Opts.Lint;
    BOpts.TimeoutSec = Opts.BatchTimeoutSec;
    BOpts.LogPath = Opts.BatchLogPath;
    BOpts.Resume = Opts.Resume;
    BOpts.ShardIndex = Opts.ShardIndex;
    BOpts.ShardCount = Opts.ShardCount;
    BOpts.CacheDir = Opts.CacheDir;
    BOpts.CacheVerify = Opts.CacheVerify;
    report::BatchResult BR = report::runBatch(BOpts);
    std::cout << (Opts.Json ? report::renderBatchJson(BR)
                            : report::renderBatchReport(BR));
    // Cache accounting goes to stderr, never into the report: cold and
    // warm text reports must stay byte-identical (CI cmp's them).
    std::cerr << report::renderBatchCacheFooter(BR);
    return BR.exitCode();
  }
  int Status = 0;
  for (const std::string &File : Opts.Files)
    Status = std::max(Status, analyzeFile(File, Opts));
  return Status;
}
