//===- support/ThreadPool.cpp - Data-parallel worker pool -----------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <memory>

using namespace nadroid;
using namespace nadroid::support;

unsigned ThreadPool::defaultConcurrency() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned Concurrency) {
  unsigned Lanes = Concurrency ? Concurrency : defaultConcurrency();
  Workers.reserve(Lanes - 1);
  for (unsigned I = 1; I < Lanes; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(QueueMu);
    Stopping = true;
  }
  QueueCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> L(QueueMu);
      QueueCv.wait(L, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping, nothing left to drain.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}

void ThreadPool::submit(std::function<void()> Task) {
  if (Workers.empty()) {
    Task();
    return;
  }
  {
    std::lock_guard<std::mutex> L(QueueMu);
    Queue.emplace_back(std::move(Task));
  }
  QueueCv.notify_one();
}

void ThreadPool::parallelFor(size_t N, const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (Workers.empty() || N == 1) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }

  auto St = std::make_shared<LoopState>();
  St->N = N;
  St->Fn = &Fn; // Valid until Done == N, and only read while Next < N.

  auto Work = [St] {
    while (true) {
      size_t I = St->Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= St->N)
        return;
      try {
        (*St->Fn)(I);
      } catch (...) {
        std::lock_guard<std::mutex> L(St->Mu);
        if (!St->Error)
          St->Error = std::current_exception();
      }
      if (St->Done.fetch_add(1, std::memory_order_acq_rel) + 1 == St->N) {
        // Lock before notifying so the wakeup cannot slip between the
        // waiter's predicate check and its wait.
        std::lock_guard<std::mutex> L(St->Mu);
        St->Cv.notify_all();
      }
    }
  };

  // At most N - 1 helpers are useful; the caller is the Nth lane.
  size_t Helpers = std::min(Workers.size(), N - 1);
  {
    std::lock_guard<std::mutex> L(QueueMu);
    for (size_t I = 0; I < Helpers; ++I)
      Queue.emplace_back(Work);
  }
  QueueCv.notify_all();

  Work(); // The calling thread participates — see the nesting note in the
          // header: this is what makes parallelFor-inside-parallelFor safe.

  std::unique_lock<std::mutex> L(St->Mu);
  St->Cv.wait(L, [&] { return St->Done.load(std::memory_order_acquire) == N; });
  if (St->Error)
    std::rethrow_exception(St->Error);
}
