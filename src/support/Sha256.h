//===- support/Sha256.h - FIPS 180-4 SHA-256 ---------------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free SHA-256 — the content hash behind the batch
/// result cache (`src/cache`). Streaming interface so callers can fold
/// several length-prefixed components into one digest without
/// concatenating them first:
///
/// \code
///   support::Sha256 H;
///   H.update(CanonicalAir);
///   H.update(OptionsFingerprint);
///   std::string Key = H.finalHex(); // 64 lowercase hex chars
/// \endcode
///
/// Not a performance or security component: the cache only needs a hash
/// whose collisions are never going to happen by accident, and whose
/// value for given bytes is stable across platforms, compilers and
/// endianness (the test suite pins the FIPS 180-4 vectors).
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_SUPPORT_SHA256_H
#define NADROID_SUPPORT_SHA256_H

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace nadroid::support {

class Sha256 {
public:
  Sha256() { reset(); }

  void reset() {
    State = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
             0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};
    BufLen = 0;
    TotalBits = 0;
  }

  /// Absorbs \p N bytes. May be called any number of times.
  void update(const void *Data, size_t N) {
    const auto *P = static_cast<const uint8_t *>(Data);
    TotalBits += static_cast<uint64_t>(N) * 8;
    while (N > 0) {
      size_t Take = std::min(N, sizeof(Buf) - BufLen);
      std::memcpy(Buf.data() + BufLen, P, Take);
      BufLen += Take;
      P += Take;
      N -= Take;
      if (BufLen == sizeof(Buf)) {
        compress(Buf.data());
        BufLen = 0;
      }
    }
  }

  void update(std::string_view S) { update(S.data(), S.size()); }

  /// Pads, finalizes and renders the digest as 64 lowercase hex chars.
  /// The object is reset afterwards and may be reused.
  std::string finalHex() {
    // FIPS 180-4 §5.1.1 padding: 0x80, zeros, 64-bit big-endian length.
    uint64_t Bits = TotalBits;
    uint8_t Pad = 0x80;
    update(&Pad, 1);
    uint8_t Zero = 0;
    while (BufLen != 56)
      update(&Zero, 1);
    // The two length updates above inflated TotalBits; the message
    // length was latched in Bits before padding began.
    uint8_t Len[8];
    for (int I = 0; I < 8; ++I)
      Len[I] = static_cast<uint8_t>(Bits >> (56 - 8 * I));
    update(Len, 8);

    static const char *Hex = "0123456789abcdef";
    std::string Out;
    Out.reserve(64);
    for (uint32_t Word : State) {
      for (int Shift = 28; Shift >= 0; Shift -= 4)
        Out += Hex[(Word >> Shift) & 0xf];
    }
    reset();
    return Out;
  }

private:
  static uint32_t rotr(uint32_t X, unsigned N) {
    return (X >> N) | (X << (32 - N));
  }

  void compress(const uint8_t *Block) {
    static constexpr std::array<uint32_t, 64> K = {
        0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
        0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
        0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
        0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
        0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
        0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
        0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
        0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
        0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
        0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
        0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
        0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
        0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};

    uint32_t W[64];
    for (int I = 0; I < 16; ++I)
      W[I] = (uint32_t(Block[4 * I]) << 24) | (uint32_t(Block[4 * I + 1]) << 16) |
             (uint32_t(Block[4 * I + 2]) << 8) | uint32_t(Block[4 * I + 3]);
    for (int I = 16; I < 64; ++I) {
      uint32_t S0 = rotr(W[I - 15], 7) ^ rotr(W[I - 15], 18) ^ (W[I - 15] >> 3);
      uint32_t S1 = rotr(W[I - 2], 17) ^ rotr(W[I - 2], 19) ^ (W[I - 2] >> 10);
      W[I] = W[I - 16] + S0 + W[I - 7] + S1;
    }

    uint32_t A = State[0], B = State[1], C = State[2], D = State[3];
    uint32_t E = State[4], F = State[5], G = State[6], H = State[7];
    for (int I = 0; I < 64; ++I) {
      uint32_t S1 = rotr(E, 6) ^ rotr(E, 11) ^ rotr(E, 25);
      uint32_t Ch = (E & F) ^ (~E & G);
      uint32_t T1 = H + S1 + Ch + K[I] + W[I];
      uint32_t S0 = rotr(A, 2) ^ rotr(A, 13) ^ rotr(A, 22);
      uint32_t Maj = (A & B) ^ (A & C) ^ (B & C);
      uint32_t T2 = S0 + Maj;
      H = G;
      G = F;
      F = E;
      E = D + T1;
      D = C;
      C = B;
      B = A;
      A = T1 + T2;
    }
    State[0] += A;
    State[1] += B;
    State[2] += C;
    State[3] += D;
    State[4] += E;
    State[5] += F;
    State[6] += G;
    State[7] += H;
  }

  std::array<uint32_t, 8> State;
  std::array<uint8_t, 64> Buf;
  size_t BufLen = 0;
  uint64_t TotalBits = 0;
};

/// One-shot convenience: the hex digest of \p S.
inline std::string sha256Hex(std::string_view S) {
  Sha256 H;
  H.update(S);
  return H.finalHex();
}

} // namespace nadroid::support

#endif // NADROID_SUPPORT_SHA256_H
