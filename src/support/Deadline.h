//===- support/Deadline.h - Cooperative cancellation + time budget -*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cooperative cancel token with an optional soft wall-clock budget,
/// the substrate of the batch driver's per-app deadlines (§8.8: "if the
/// execution time or scalability becomes an issue, the k-value can be
/// adjusted at the cost of precision" — to adjust anything, a runaway
/// analysis first has to stop).
///
/// The expensive fixpoint loops (points-to sweeps, nullness rounds, the
/// refuter's DFS, the verdict sweep, the interpreter's schedule loop)
/// poll an optional `const Deadline *` at their safe points — places
/// where no partially-updated shared state is live — and bail by
/// throwing DeadlineExceeded. The exception unwinds to the batch
/// driver's per-app boundary, which retries once with degraded options
/// or labels the row timed-out; nothing below the boundary needs to
/// know about either policy.
///
/// Polling is cheap by construction: one relaxed atomic load on the
/// fast path, with the steady_clock read amortized over every 64th
/// poll. Expiry latches — once expired() has returned true it never
/// returns false again — and cancel() forces expiry immediately, which
/// is how tests inject deterministic timeouts without depending on
/// wall time.
///
/// Thread-safety: expired()/check() may race freely with each other and
/// with cancel() from any thread.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_SUPPORT_DEADLINE_H
#define NADROID_SUPPORT_DEADLINE_H

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

namespace nadroid::support {

/// Thrown by Deadline::check. A distinct type (not std::runtime_error)
/// so the batch driver can tell a timed-out app from a crashed one at
/// its catch boundary.
class DeadlineExceeded : public std::exception {
public:
  explicit DeadlineExceeded(const char *Where)
      : Where_(Where ? Where : "?"),
        Msg("analysis deadline exceeded in " + Where_) {}

  const char *what() const noexcept override { return Msg.c_str(); }

  /// The safe point that observed the expiry (an analysis name).
  const std::string &where() const { return Where_; }

private:
  std::string Where_;
  std::string Msg;
};

/// See the file comment. Not copyable: one token per attempt, shared by
/// pointer with everything running under it.
class Deadline {
public:
  /// \p BudgetSeconds <= 0 means no time budget: the token only expires
  /// via cancel().
  explicit Deadline(double BudgetSeconds = 0) {
    if (BudgetSeconds > 0) {
      HasLimit = true;
      Limit = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(BudgetSeconds));
    }
  }

  Deadline(const Deadline &) = delete;
  Deadline &operator=(const Deadline &) = delete;

  /// Forces expiry now (thread-safe). The deterministic path: fault-
  /// injection tests cancel the token instead of waiting out a budget.
  void cancel() const { Expired_.store(true, std::memory_order_relaxed); }

  /// True once the budget ran out or cancel() was called; latches.
  bool expired() const {
    if (Expired_.load(std::memory_order_relaxed))
      return true;
    if (!HasLimit)
      return false;
    // Amortize the clock read: only every 64th poll pays for it.
    if ((Polls_.fetch_add(1, std::memory_order_relaxed) & 63) != 0)
      return false;
    if (Clock::now() >= Limit) {
      Expired_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// The safe-point idiom: `if (D) D->check("pointsto");`.
  void check(const char *Where) const {
    if (expired())
      throw DeadlineExceeded(Where);
  }

private:
  using Clock = std::chrono::steady_clock;

  Clock::time_point Limit{};
  bool HasLimit = false;
  mutable std::atomic<bool> Expired_{false};
  mutable std::atomic<unsigned> Polls_{0};
};

} // namespace nadroid::support

#endif // NADROID_SUPPORT_DEADLINE_H
