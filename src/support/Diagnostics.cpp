//===- support/Diagnostics.cpp --------------------------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace nadroid;

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

void DiagnosticEngine::print(std::ostream &OS) const {
  for (const Diagnostic &D : Diags)
    OS << SM.render(D.Loc) << ": " << severityName(D.Severity) << ": "
       << D.Message << "\n";
}

bool DiagnosticEngine::containsMessage(const std::string &Needle) const {
  for (const Diagnostic &D : Diags)
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}
