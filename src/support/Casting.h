//===- support/Casting.h - isa/cast/dyn_cast helpers ------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal LLVM-style RTTI replacement. A class hierarchy opts in by
/// providing `static bool classof(const Base *)` on each derived class;
/// isa<>, cast<>, and dyn_cast<> then work without compiler RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_SUPPORT_CASTING_H
#define NADROID_SUPPORT_CASTING_H

#include <cassert>

namespace nadroid {

/// Returns true if \p Val is an instance of \p To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts on kind mismatch.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> to incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> to incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns nullptr on kind mismatch.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace nadroid

#endif // NADROID_SUPPORT_CASTING_H
