//===- support/StringUtils.h - Small string helpers -------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared across the project. These intentionally operate on
/// std::string_view so callers avoid copies.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_SUPPORT_STRINGUTILS_H
#define NADROID_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace nadroid {

/// Returns \p S with leading/trailing ASCII whitespace removed.
std::string_view trim(std::string_view S);

/// Splits \p S on \p Sep; empty pieces are kept.
std::vector<std::string_view> split(std::string_view S, char Sep);

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts,
                 std::string_view Sep);

bool startsWith(std::string_view S, std::string_view Prefix);
bool endsWith(std::string_view S, std::string_view Suffix);

/// True for [A-Za-z_$], the identifier start set of the AIR language.
bool isIdentStart(char C);
/// True for [A-Za-z0-9_$], identifier continuation characters.
bool isIdentCont(char C);

/// Strict numeric parses for values arriving as text — CLI flags and
/// serve-protocol fields. Unlike std::atoi/atof (whose silent failure
/// modes these replace: "abc" → 0, "4x" → 4), the whole string must be
/// a number: no leading whitespace or sign, no trailing junk, no
/// overflow. False means "not a number" — range policy ("must be at
/// least 1") stays with the caller so its diagnostic can say which.
bool parseUnsigned(std::string_view S, unsigned long long &Out);

/// Same contract for non-negative decimals ("2.5", "10"); rejects
/// inf/nan/hex and exponents of the locale-dependent kind by requiring
/// [0-9.] characters only.
bool parseDouble(std::string_view S, double &Out);

/// Escapes \p S for inclusion in a CSV field (RFC 4180 quoting).
std::string csvEscape(std::string_view S);

/// Renders a ratio as a percentage with one decimal, e.g. "87.5%".
std::string percent(double Numerator, double Denominator);

} // namespace nadroid

#endif // NADROID_SUPPORT_STRINGUTILS_H
