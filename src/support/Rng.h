//===- support/Rng.h - Deterministic random numbers -------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A splitmix64-based deterministic RNG. The corpus generator and the
/// schedule-exploring interpreter must be reproducible across runs and
/// platforms, so we avoid std::mt19937's distribution portability issues
/// and own the whole pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_SUPPORT_RNG_H
#define NADROID_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace nadroid {

/// Deterministic 64-bit RNG (splitmix64).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "empty range");
    // Rejection sampling to avoid modulo bias for large bounds.
    uint64_t Threshold = (0 - Bound) % Bound;
    while (true) {
      uint64_t V = next();
      if (V >= Threshold)
        return V % Bound;
    }
  }

  /// Uniform value in [Lo, Hi] inclusive.
  uint64_t range(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + below(Hi - Lo + 1);
  }

  /// True with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) {
    assert(Den != 0 && "zero denominator");
    return below(Den) < Num;
  }

  /// Derives an independent child RNG; used to keep per-app corpus streams
  /// stable when one app's recipe changes.
  Rng fork() { return Rng(next() ^ 0xa5a5a5a55a5a5a5aULL); }

private:
  uint64_t State;
};

} // namespace nadroid

#endif // NADROID_SUPPORT_RNG_H
