//===- support/TableWriter.h - Aligned text tables & CSV --------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TableWriter renders rows both as an aligned monospace table (for the
/// bench binaries that regenerate the paper's tables) and as CSV (mirroring
/// the artifact's ResultAnalysis.csv output).
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_SUPPORT_TABLEWRITER_H
#define NADROID_SUPPORT_TABLEWRITER_H

#include <ostream>
#include <string>
#include <vector>

namespace nadroid {

/// Accumulates a header plus rows of string cells and prints them aligned.
class TableWriter {
public:
  explicit TableWriter(std::vector<std::string> Header)
      : Header(std::move(Header)) {}

  /// Appends a row; short rows are padded with empty cells, long rows are
  /// a programming error.
  void addRow(std::vector<std::string> Row);

  /// Convenience: renders integral cells.
  static std::string cell(long long V) { return std::to_string(V); }

  /// Prints an aligned table with a separator under the header.
  void print(std::ostream &OS) const;

  /// Prints RFC 4180 CSV (header first).
  void printCsv(std::ostream &OS) const;

  size_t rowCount() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace nadroid

#endif // NADROID_SUPPORT_TABLEWRITER_H
