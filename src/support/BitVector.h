//===- support/BitVector.h - Dense fixed-width bit vector -------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal dense bit vector over 64-bit words. The analyses use it for
/// set-of-entities state where the universe is known up front and indices
/// are dense: nullness method summaries (fields ensured non-null), the
/// HbQuery reachability matrices (methods reachable from a root, threads
/// ordered after a thread). Unlike std::set<T*>, copies are O(words),
/// intersection is a word-wise AND, and iteration order is index order —
/// never pointer order, so nothing downstream can accidentally depend on
/// allocation addresses.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_SUPPORT_BITVECTOR_H
#define NADROID_SUPPORT_BITVECTOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nadroid::support {

class BitVector {
public:
  BitVector() = default;
  explicit BitVector(size_t N, bool Ones = false)
      : N(N), W((N + 63) / 64, Ones ? ~uint64_t(0) : 0) {
    trimTail();
  }

  size_t size() const { return N; }
  bool empty() const { return N == 0; }

  void set(size_t I) { W[I / 64] |= uint64_t(1) << (I % 64); }
  void reset(size_t I) { W[I / 64] &= ~(uint64_t(1) << (I % 64)); }
  bool test(size_t I) const {
    return (W[I / 64] >> (I % 64)) & 1;
  }

  void clearAll() {
    for (uint64_t &X : W)
      X = 0;
  }

  bool none() const {
    for (uint64_t X : W)
      if (X)
        return false;
    return true;
  }

  size_t count() const {
    size_t C = 0;
    for (uint64_t X : W)
      C += static_cast<size_t>(__builtin_popcountll(X));
    return C;
  }

  /// Destructive intersection; returns true when any bit was dropped.
  bool intersectWith(const BitVector &O) {
    bool Changed = false;
    for (size_t I = 0; I < W.size(); ++I) {
      uint64_t New = W[I] & O.W[I];
      Changed |= New != W[I];
      W[I] = New;
    }
    return Changed;
  }

  /// Destructive union; returns true when any bit was added.
  bool uniteWith(const BitVector &O) {
    bool Changed = false;
    for (size_t I = 0; I < W.size(); ++I) {
      uint64_t New = W[I] | O.W[I];
      Changed |= New != W[I];
      W[I] = New;
    }
    return Changed;
  }

  /// Copies \p O's bits into this vector (same universe).
  void assignFrom(const BitVector &O) {
    N = O.N;
    W = O.W;
  }

  friend bool operator==(const BitVector &A, const BitVector &B) {
    return A.N == B.N && A.W == B.W;
  }

  /// Calls \p Fn(index) for every set bit, in ascending index order.
  template <typename FnT> void forEachSet(FnT &&Fn) const {
    for (size_t WI = 0; WI < W.size(); ++WI) {
      uint64_t X = W[WI];
      while (X) {
        unsigned B = static_cast<unsigned>(__builtin_ctzll(X));
        Fn(WI * 64 + B);
        X &= X - 1;
      }
    }
  }

private:
  /// Bits past N must stay zero so none()/count()/== stay exact.
  void trimTail() {
    if (N % 64 != 0 && !W.empty())
      W.back() &= (uint64_t(1) << (N % 64)) - 1;
  }

  size_t N = 0;
  std::vector<uint64_t> W;
};

} // namespace nadroid::support

#endif // NADROID_SUPPORT_BITVECTOR_H
