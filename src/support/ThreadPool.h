//===- support/ThreadPool.h - Data-parallel worker pool ---------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool for data-parallel loops. The one entry point,
/// parallelFor, distributes indices [0, N) over the workers plus the
/// calling thread via a shared atomic cursor.
///
/// Caller participation makes nesting safe: a pool task may itself call
/// parallelFor on the same pool (the batch driver does — each per-app task
/// fans the per-warning verdict loop back out). The inner call drains its
/// own iteration space on the calling thread even when every worker is
/// busy with outer tasks, so no cycle of waits can form.
///
/// Determinism contract: parallelFor only changes *when* Fn(I) runs, never
/// *whether* or *with which I*. Callers that write Fn's result into slot I
/// of a pre-sized vector get output identical to the serial loop.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_SUPPORT_THREADPOOL_H
#define NADROID_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nadroid::support {

class ThreadPool {
public:
  /// Spawns \p Concurrency - 1 workers; the calling thread is the final
  /// lane. 0 means one lane per hardware thread; 1 means no workers at
  /// all, making every parallelFor run inline and strictly serial.
  explicit ThreadPool(unsigned Concurrency = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total lanes, counting the caller.
  unsigned concurrency() const {
    return static_cast<unsigned>(Workers.size()) + 1;
  }

  /// One lane per hardware thread (at least one).
  static unsigned defaultConcurrency();

  /// Runs Fn(0) .. Fn(N-1), each exactly once, distributed over the
  /// workers and the calling thread. Returns once all N calls finished.
  /// If any call throws, the first exception is rethrown here after the
  /// loop drains; the remaining indices still run.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

  /// Hands one free-standing task to the workers and returns immediately
  /// — the serve daemon's connection handlers ride on this. With no
  /// workers (Concurrency 1) the task runs inline before returning, so a
  /// single-lane pool degrades to a serial but still-correct server. A
  /// submitted task may itself call parallelFor on this pool (caller
  /// participation keeps that deadlock-free); it must not throw —
  /// escaping exceptions terminate the process, as from any detached
  /// task.
  void submit(std::function<void()> Task);

private:
  /// Shared state of one parallelFor invocation. Kept alive by
  /// shared_ptr because helper tasks may be dequeued after the loop
  /// already completed (they find Next >= N and return immediately).
  struct LoopState {
    std::atomic<size_t> Next{0};
    std::atomic<size_t> Done{0};
    size_t N = 0;
    const std::function<void(size_t)> *Fn = nullptr;
    std::mutex Mu;
    std::condition_variable Cv;
    std::exception_ptr Error;
  };

  void workerLoop();

  std::vector<std::thread> Workers;
  std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::deque<std::function<void()>> Queue;
  bool Stopping = false;
};

} // namespace nadroid::support

#endif // NADROID_SUPPORT_THREADPOOL_H
