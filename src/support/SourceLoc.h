//===- support/SourceLoc.h - Source positions for AIR inputs ---*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source locations used by the AIR frontend and carried on IR
/// statements so that warnings can point back at the offending input line.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_SUPPORT_SOURCELOC_H
#define NADROID_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>
#include <vector>

namespace nadroid {

/// A (file, line, column) position in an AIR source file.
///
/// Programmatically-built IR uses the invalid location (line 0), which
/// renders as "<builtin>".
struct SourceLoc {
  /// Index into the owning SourceManager's file table; 0 for builtin IR.
  uint32_t FileId = 0;
  uint32_t Line = 0;
  uint32_t Column = 0;

  constexpr SourceLoc() = default;
  constexpr SourceLoc(uint32_t FileId, uint32_t Line, uint32_t Column)
      : FileId(FileId), Line(Line), Column(Column) {}

  bool isValid() const { return Line != 0; }

  friend bool operator==(const SourceLoc &A, const SourceLoc &B) {
    return A.FileId == B.FileId && A.Line == B.Line && A.Column == B.Column;
  }
  friend bool operator!=(const SourceLoc &A, const SourceLoc &B) {
    return !(A == B);
  }
};

/// A half-open [Begin, End) span of source positions.
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  constexpr SourceRange() = default;
  constexpr SourceRange(SourceLoc Begin, SourceLoc End)
      : Begin(Begin), End(End) {}
  explicit constexpr SourceRange(SourceLoc Loc) : Begin(Loc), End(Loc) {}

  bool isValid() const { return Begin.isValid(); }
};

/// Maps FileIds to file names so diagnostics can render locations.
class SourceManager {
public:
  SourceManager();

  /// Registers \p Name and returns its FileId (stable for the manager's
  /// lifetime). Registering the same name twice yields distinct ids; the
  /// frontend registers each buffer once.
  uint32_t addFile(std::string Name);

  /// Returns the name registered for \p FileId ("<builtin>" for id 0).
  const std::string &fileName(uint32_t FileId) const;

  /// Renders \p Loc as "file:line:col" (or "<builtin>").
  std::string render(SourceLoc Loc) const;

private:
  std::vector<std::string> Files;
};

} // namespace nadroid

#endif // NADROID_SUPPORT_SOURCELOC_H
