//===- support/SourceLoc.cpp ----------------------------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "support/SourceLoc.h"

#include <cassert>

using namespace nadroid;

SourceManager::SourceManager() { Files.push_back("<builtin>"); }

uint32_t SourceManager::addFile(std::string Name) {
  Files.push_back(std::move(Name));
  return static_cast<uint32_t>(Files.size() - 1);
}

const std::string &SourceManager::fileName(uint32_t FileId) const {
  assert(FileId < Files.size() && "unknown file id");
  // A location whose FileId was never registered here (e.g. a default
  // SourceLoc rendered against the wrong manager) degrades to the
  // builtin name instead of reading out of bounds in release builds.
  if (FileId >= Files.size())
    return Files[0];
  return Files[FileId];
}

std::string SourceManager::render(SourceLoc Loc) const {
  if (!Loc.isValid())
    return "<builtin>";
  return fileName(Loc.FileId) + ":" + std::to_string(Loc.Line) + ":" +
         std::to_string(Loc.Column);
}
