//===- support/TableWriter.cpp --------------------------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "support/TableWriter.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace nadroid;

void TableWriter::addRow(std::vector<std::string> Row) {
  assert(Row.size() <= Header.size() && "row wider than header");
  Row.resize(Header.size());
  Rows.push_back(std::move(Row));
}

void TableWriter::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Header.size());
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      OS << Row[I];
      if (I + 1 == Row.size())
        break;
      OS << std::string(Widths[I] - Row[I].size() + 2, ' ');
    }
    OS << "\n";
  };

  PrintRow(Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  OS << std::string(Total > 2 ? Total - 2 : Total, '-') << "\n";
  for (const auto &Row : Rows)
    PrintRow(Row);
}

void TableWriter::printCsv(std::ostream &OS) const {
  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I != 0)
        OS << ",";
      OS << csvEscape(Row[I]);
    }
    OS << "\n";
  };
  PrintRow(Header);
  for (const auto &Row : Rows)
    PrintRow(Row);
}
