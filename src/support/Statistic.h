//===- support/Statistic.h - Named analysis counters ------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named counters, in the spirit of LLVM's Statistic class,
/// used by analyses to report work done (constraints solved, pairs
/// enumerated, warnings pruned per filter). Unlike LLVM's, the registry is
/// an explicit object — no static constructors — so tests can isolate runs.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_SUPPORT_STATISTIC_H
#define NADROID_SUPPORT_STATISTIC_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#if defined(__linux__)
#include <cstdio>
#include <unistd.h>
#endif

namespace nadroid {

/// Holds counters keyed by "group.name".
class StatRegistry {
public:
  /// Adds \p Delta to the counter \p Key, creating it at zero first.
  void add(const std::string &Key, uint64_t Delta = 1) {
    Counters[Key] += Delta;
  }

  /// Sets \p Key to \p Value outright.
  void set(const std::string &Key, uint64_t Value) { Counters[Key] = Value; }

  /// Returns the counter value, zero when absent.
  uint64_t get(const std::string &Key) const {
    auto It = Counters.find(Key);
    return It == Counters.end() ? 0 : It->second;
  }

  const std::map<std::string, uint64_t> &all() const { return Counters; }

  /// Prints "value  key" lines sorted by key.
  void print(std::ostream &OS) const {
    for (const auto &[Key, Value] : Counters)
      OS << Value << "\t" << Key << "\n";
  }

  void clear() { Counters.clear(); }

private:
  std::map<std::string, uint64_t> Counters;
};

/// Current resident-set size in KiB, or 0 where /proc is unavailable.
/// The pipeline AnalysisManager samples this around each analysis build
/// to attribute memory growth per analysis.
inline long currentRssKb() {
#if defined(__linux__)
  if (std::FILE *F = std::fopen("/proc/self/statm", "r")) {
    long Size = 0, Resident = 0;
    int Got = std::fscanf(F, "%ld %ld", &Size, &Resident);
    std::fclose(F);
    if (Got == 2)
      return Resident * (sysconf(_SC_PAGESIZE) / 1024);
  }
#endif
  return 0;
}

} // namespace nadroid

#endif // NADROID_SUPPORT_STATISTIC_H
