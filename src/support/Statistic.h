//===- support/Statistic.h - Named analysis counters ------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named counters, in the spirit of LLVM's Statistic class,
/// used by analyses to report work done (constraints solved, pairs
/// enumerated, warnings pruned per filter). Unlike LLVM's, the registry is
/// an explicit object — no static constructors — so tests can isolate runs.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_SUPPORT_STATISTIC_H
#define NADROID_SUPPORT_STATISTIC_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace nadroid {

/// Holds counters keyed by "group.name".
class StatRegistry {
public:
  /// Adds \p Delta to the counter \p Key, creating it at zero first.
  void add(const std::string &Key, uint64_t Delta = 1) {
    Counters[Key] += Delta;
  }

  /// Sets \p Key to \p Value outright.
  void set(const std::string &Key, uint64_t Value) { Counters[Key] = Value; }

  /// Returns the counter value, zero when absent.
  uint64_t get(const std::string &Key) const {
    auto It = Counters.find(Key);
    return It == Counters.end() ? 0 : It->second;
  }

  const std::map<std::string, uint64_t> &all() const { return Counters; }

  /// Prints "value  key" lines sorted by key.
  void print(std::ostream &OS) const {
    for (const auto &[Key, Value] : Counters)
      OS << Value << "\t" << Key << "\n";
  }

  void clear() { Counters.clear(); }

private:
  std::map<std::string, uint64_t> Counters;
};

} // namespace nadroid

#endif // NADROID_SUPPORT_STATISTIC_H
