//===- support/Diagnostics.h - Diagnostic reporting -------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine used by the frontend and the IR verifier.
/// Diagnostics are collected (not printed eagerly) so tests can assert on
/// them; callers render them to a stream at the end.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_SUPPORT_DIAGNOSTICS_H
#define NADROID_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <ostream>
#include <string>
#include <vector>

namespace nadroid {

enum class DiagSeverity { Note, Warning, Error };

/// One reported diagnostic.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics emitted by a frontend pass or the verifier.
class DiagnosticEngine {
public:
  explicit DiagnosticEngine(const SourceManager &SM) : SM(SM) {}

  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every collected diagnostic as "loc: severity: message".
  void print(std::ostream &OS) const;

  /// Returns true if any collected message contains \p Needle (test aid).
  bool containsMessage(const std::string &Needle) const;

private:
  const SourceManager &SM;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace nadroid

#endif // NADROID_SUPPORT_DIAGNOSTICS_H
