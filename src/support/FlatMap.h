//===- support/FlatMap.h - Sorted-vector map ---------------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sorted std::vector with a std::map-shaped interface, for the small
/// hot maps dataflow states carry (a handful of entries, copied on every
/// join). One contiguous allocation per map instead of one node per
/// entry makes state copies cheap; the std::map subset implemented here
/// is exactly what the analyses use. Iteration order is key order (for
/// pointer keys: address order) — callers must not let it leak into
/// output, the same contract std::map with pointer keys already had.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_SUPPORT_FLATMAP_H
#define NADROID_SUPPORT_FLATMAP_H

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace nadroid::support {

template <typename K, typename V> class FlatMap {
  using Storage = std::vector<std::pair<K, V>>;
  Storage Es;

  typename Storage::iterator lowerBound(const K &Key) {
    return std::lower_bound(
        Es.begin(), Es.end(), Key,
        [](const std::pair<K, V> &E, const K &Ky) { return E.first < Ky; });
  }
  typename Storage::const_iterator lowerBound(const K &Key) const {
    return std::lower_bound(
        Es.begin(), Es.end(), Key,
        [](const std::pair<K, V> &E, const K &Ky) { return E.first < Ky; });
  }

public:
  using iterator = typename Storage::iterator;
  using const_iterator = typename Storage::const_iterator;

  iterator begin() { return Es.begin(); }
  iterator end() { return Es.end(); }
  const_iterator begin() const { return Es.begin(); }
  const_iterator end() const { return Es.end(); }

  bool empty() const { return Es.empty(); }
  size_t size() const { return Es.size(); }

  iterator find(const K &Key) {
    auto It = lowerBound(Key);
    return It != Es.end() && It->first == Key ? It : Es.end();
  }
  const_iterator find(const K &Key) const {
    auto It = lowerBound(Key);
    return It != Es.end() && It->first == Key ? It : Es.end();
  }
  size_t count(const K &Key) const { return find(Key) != end() ? 1 : 0; }

  V &operator[](const K &Key) {
    auto It = lowerBound(Key);
    if (It == Es.end() || It->first != Key)
      It = Es.emplace(It, Key, V());
    return It->second;
  }

  template <typename VV> std::pair<iterator, bool> emplace(const K &Key, VV &&Val) {
    auto It = lowerBound(Key);
    if (It != Es.end() && It->first == Key)
      return {It, false};
    return {Es.emplace(It, Key, std::forward<VV>(Val)), true};
  }

  iterator erase(iterator It) { return Es.erase(It); }
  size_t erase(const K &Key) {
    auto It = find(Key);
    if (It == end())
      return 0;
    Es.erase(It);
    return 1;
  }

  friend bool operator==(const FlatMap &A, const FlatMap &B) {
    return A.Es == B.Es;
  }
};

} // namespace nadroid::support

#endif // NADROID_SUPPORT_FLATMAP_H
