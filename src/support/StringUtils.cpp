//===- support/StringUtils.cpp --------------------------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace nadroid;

std::string_view nadroid::trim(std::string_view S) {
  size_t Begin = 0;
  while (Begin < S.size() && std::isspace(static_cast<unsigned char>(S[Begin])))
    ++Begin;
  size_t End = S.size();
  while (End > Begin && std::isspace(static_cast<unsigned char>(S[End - 1])))
    --End;
  return S.substr(Begin, End - Begin);
}

std::vector<std::string_view> nadroid::split(std::string_view S, char Sep) {
  std::vector<std::string_view> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Parts.push_back(S.substr(Start));
      return Parts;
    }
    Parts.push_back(S.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string nadroid::join(const std::vector<std::string> &Parts,
                          std::string_view Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

bool nadroid::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

bool nadroid::endsWith(std::string_view S, std::string_view Suffix) {
  return S.size() >= Suffix.size() &&
         S.substr(S.size() - Suffix.size()) == Suffix;
}

bool nadroid::isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$';
}

bool nadroid::isIdentCont(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '$';
}

bool nadroid::parseUnsigned(std::string_view S, unsigned long long &Out) {
  if (S.empty())
    return false;
  unsigned long long Value = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    unsigned Digit = static_cast<unsigned>(C - '0');
    if (Value > (~0ull - Digit) / 10)
      return false; // overflow
    Value = Value * 10 + Digit;
  }
  Out = Value;
  return true;
}

bool nadroid::parseDouble(std::string_view S, double &Out) {
  if (S.empty())
    return false;
  // Digits and at most one dot: strict enough to refuse "2.5x", "1e9",
  // " 3" and "-1" alike, while the subsequent strtod never fails on what
  // survives.
  bool SawDigit = false, SawDot = false;
  for (char C : S) {
    if (C >= '0' && C <= '9') {
      SawDigit = true;
    } else if (C == '.') {
      if (SawDot)
        return false;
      SawDot = true;
    } else {
      return false;
    }
  }
  if (!SawDigit)
    return false;
  Out = std::strtod(std::string(S).c_str(), nullptr);
  return true;
}

std::string nadroid::csvEscape(std::string_view S) {
  bool NeedsQuotes = S.find_first_of(",\"\n") != std::string_view::npos;
  if (!NeedsQuotes)
    return std::string(S);
  std::string Result = "\"";
  for (char C : S) {
    if (C == '"')
      Result += '"';
    Result += C;
  }
  Result += '"';
  return Result;
}

std::string nadroid::percent(double Numerator, double Denominator) {
  if (Denominator == 0.0)
    return "n/a";
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "%.1f%%",
                100.0 * Numerator / Denominator);
  return Buffer;
}
