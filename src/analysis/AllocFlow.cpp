//===- analysis/AllocFlow.cpp - Allocation dataflow (IA/MA/RHB) ---------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/AllocFlow.h"

#include <map>
#include <optional>

using namespace nadroid;
using namespace nadroid::analysis;
using namespace nadroid::ir;

namespace {

class AllocFlowWalker {
public:
  AllocFlowWalker(const Method &M, bool TreatCallResultAsAlloc,
                  const analysis::CallAllocResolver *Resolver)
      : M(M), CallCountsAsAlloc(TreatCallResultAsAlloc),
        Resolver(Resolver) {
    // Flow-insensitive freshness of locals: every def is an allocation
    // (or, for MA, a call result).
    forEachStmt(M, [&](const Stmt &S) {
      if (const auto *New = dyn_cast<NewStmt>(&S)) {
        noteDef(New->dst(), /*Fresh=*/true);
      } else if (const auto *Call = dyn_cast<CallStmt>(&S)) {
        if (Call->dst())
          noteDef(Call->dst(), CallCountsAsAlloc);
      } else if (const auto *Copy = dyn_cast<CopyStmt>(&S)) {
        noteDef(Copy->dst(), /*Fresh=*/false);
      } else if (const auto *Load = dyn_cast<LoadStmt>(&S)) {
        noteDef(Load->dst(), /*Fresh=*/false);
      }
    });
  }

  AllocFlowResult run() {
    std::set<const Field *> Must;
    if (walk(M.body(), Must))
      mergeExit(Must); // the implicit return at the end of the body
    if (ExitMust)
      Result.MustAllocAtExitFields = std::move(*ExitMust);
    return std::move(Result);
  }

private:
  const Method &M;
  bool CallCountsAsAlloc;
  const analysis::CallAllocResolver *Resolver;
  AllocFlowResult Result;
  std::map<const Local *, bool> FreshLocal; // false once any def is opaque
  /// Intersection of the Must sets observed at every exit reached so far;
  /// disengaged until the first exit.
  std::optional<std::set<const Field *>> ExitMust;

  /// Folds the Must set at one method exit into the at-exit accumulator.
  void mergeExit(const std::set<const Field *> &Must) {
    if (!ExitMust) {
      ExitMust = Must;
      return;
    }
    for (auto It = ExitMust->begin(); It != ExitMust->end();)
      It = Must.count(*It) ? std::next(It) : ExitMust->erase(It);
  }

  void noteDef(const Local *L, bool Fresh) {
    auto [It, Inserted] = FreshLocal.emplace(L, Fresh);
    if (!Inserted)
      It->second &= Fresh;
  }

  bool isFresh(const Local *L) const {
    auto It = FreshLocal.find(L);
    return It != FreshLocal.end() && It->second;
  }

  /// Walks \p B updating the must-allocated field set in place. Returns
  /// false when the end of the block is unreachable (every path through
  /// it returned); statements after that point are dead and ignored.
  bool walk(const Block &B, std::set<const Field *> &Must) {
    for (const auto &SPtr : B.stmts()) {
      const Stmt &S = *SPtr;
      switch (S.kind()) {
      case Stmt::Kind::Store: {
        const auto *Store = cast<StoreStmt>(&S);
        if (!Store->base()->isThis())
          break; // only receiver fields participate
        if (Store->src() && isFresh(Store->src())) {
          Must.insert(Store->field());
          Result.MayAllocFields.insert(Store->field());
        } else {
          // Free, or a value of unknown nullness.
          Must.erase(Store->field());
        }
        break;
      }
      case Stmt::Kind::Load: {
        const auto *Load = cast<LoadStmt>(&S);
        if (Load->base()->isThis() && Must.count(Load->field()))
          Result.ProtectedLoads.insert(Load);
        break;
      }
      case Stmt::Kind::If: {
        const auto *If = cast<IfStmt>(&S);
        std::set<const Field *> ThenMust = Must;
        std::set<const Field *> ElseMust = Must;
        bool ThenLive = walk(If->thenBlock(), ThenMust);
        bool ElseLive = walk(If->elseBlock(), ElseMust);
        if (ThenLive && ElseLive) {
          // Join: a field is must-allocated only when both branches agree.
          std::set<const Field *> Joined;
          for (const Field *F : ThenMust)
            if (ElseMust.count(F))
              Joined.insert(F);
          Must = std::move(Joined);
        } else if (ThenLive) {
          Must = std::move(ThenMust);
        } else if (ElseLive) {
          Must = std::move(ElseMust);
        } else {
          return false; // both branches returned
        }
        break;
      }
      case Stmt::Kind::Sync:
        if (!walk(cast<SyncStmt>(&S)->body(), Must))
          return false;
        break;
      case Stmt::Kind::Return:
        mergeExit(Must);
        return false;
      case Stmt::Kind::Call:
        // Calls are assumed field-preserving intra-procedurally (§6.1.3).
        // The interprocedural resolver, when present, contributes the
        // callee's must-alloc-at-exit fields instead.
        if (Resolver && *Resolver)
          if (const std::set<const Field *> *Callee =
                  (*Resolver)(*cast<CallStmt>(&S)))
            for (const Field *F : *Callee) {
              Must.insert(F);
              Result.MayAllocFields.insert(F);
            }
        break;
      case Stmt::Kind::New:
      case Stmt::Kind::Copy:
        break;
      }
    }
    return true;
  }
};

} // namespace

AllocFlowResult
analysis::analyzeAllocFlow(const Method &M, bool TreatCallResultAsAlloc,
                           const CallAllocResolver *Resolver) {
  return AllocFlowWalker(M, TreatCallResultAsAlloc, Resolver).run();
}
