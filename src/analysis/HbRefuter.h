//===- analysis/HbRefuter.h - May-HB refutation engine ----------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A happens-before refutation engine for the §6.2.1 may-HB filters (RHB,
/// CHB, PHB). Those filters suppress warnings on heuristics the paper
/// admits are unsound (§8.5); this pass re-examines each suppressed
/// (use-thread, free-thread) pair with a small event-order automaton over
/// the threadification forest and either
///
///  * **proves** the pair ordered — no abstract message history runs the
///    use after the free, so the suppression is sound and the proof chain
///    is recorded — or
///  * **demotes** the heuristic to "assumed", attaching the abstract
///    history (a callback activation sequence) that ends with the use
///    observing the freed field.
///
/// The automaton's events are atomic callback activations on one looper.
/// Its edges come from the facts the rest of the system already computes:
///
///  * lifecycle legality (onCreate first, onDestroy last, UI events only
///    while resumed, onPause/onResume alternate — with one framework
///    onResume owed after every launch/onCreate, so an activity that
///    never overrides onPause still runs its onResume) over a
///    per-component phase machine;
///  * post edges — a posted callback activates only after its poster, at
///    most once per poster activation for Runnable/Message postees — and
///    per-looper FIFO serialization between sibling postees whose spawn
///    sites are ordered by dominance;
///  * kill edges from *must*-cancellations: a CancelReach site in the
///    free's own method that dominates the free (finish / unbindService /
///    unregisterReceiver / removeCallbacksAndMessages) forbids future
///    activations of the covered callbacks once the free has executed;
///  * revive edges from AllocFlow's must-alloc-at-exit facts: a callback
///    that re-allocates the field on every path leaves it non-null.
///
/// States are memoized, so the exhaustive search is a reachability check
/// over a finite graph: saturating activation counters keep it finite
/// while still over-approximating unbounded histories.
///
/// The abstraction refuses to prove (returns a demotion) whenever its
/// atomicity premise fails: a native thread in the pair, callbacks on
/// different loopers, or — via the escape analysis — a native thread
/// among the accessors of the warning's base objects.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_ANALYSIS_HBREFUTER_H
#define NADROID_ANALYSIS_HBREFUTER_H

#include "analysis/CancelReach.h"
#include "analysis/Escape.h"
#include "analysis/MethodCaches.h"
#include "analysis/PointsTo.h"
#include "analysis/RefuterModel.h"
#include "analysis/ThreadReach.h"

#include <string>
#include <vector>

namespace nadroid::analysis {

/// The outcome of one refutation query.
struct HbRefutation {
  /// True when every abstract history orders the use before the free —
  /// the suppression is sound.
  bool Ordered = false;
  /// When Ordered: the happens-before facts the proof rests on.
  std::vector<std::string> ProofChain;
  /// When !Ordered: the abstract message history that runs the use after
  /// the free (or the reason the abstraction is inapplicable).
  std::vector<std::string> Counterexample;
  /// Abstract states the search visited (0 when it never ran).
  unsigned StatesExplored = 0;
};

/// Stateless-per-query refutation engine; thread-safe — all lazily built
/// tables it consults (CFGs, alloc facts, cancellations) are internally
/// synchronized, so the filter engine's parallel verdict sweep can query
/// one instance concurrently.
class HbRefuter {
public:
  /// \p D (not owned, may be null) is polled once per DFS step of every
  /// refutation search; expiry throws DeadlineExceeded out of refute().
  /// \p HQ (not owned, may be null) lets the model builder serve the
  /// statement-independent pair skeleton from the shared HbQuery cache.
  HbRefuter(const ir::Program &P, const threadify::ThreadForest &Forest,
            const PointsToAnalysis &PTA, const ThreadReach &Reach,
            const CancelReach &Cancel, const EscapeAnalysis &Escape,
            MethodCfgCache &Cfgs, MethodAllocFlowCache &Alloc,
            const support::Deadline *D = nullptr,
            const HbQuery *HQ = nullptr);

  /// Attempts to prove that, for the (use-thread, free-thread) pair
  /// (\p UseT, \p FreeT), the load \p Use of field \p F can never observe
  /// the store \p Free.
  HbRefutation refute(const ir::LoadStmt *Use, const ir::StoreStmt *Free,
                      const ir::Field *F,
                      const threadify::ModeledThread *UseT,
                      const threadify::ModeledThread *FreeT) const;

private:
  ModelBuilder Builder;
  const support::Deadline *D = nullptr;
};

} // namespace nadroid::analysis

#endif // NADROID_ANALYSIS_HBREFUTER_H
