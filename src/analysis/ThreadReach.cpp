//===- analysis/ThreadReach.cpp - Thread-to-code attribution ------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/ThreadReach.h"

#include <deque>

using namespace nadroid;
using namespace nadroid::analysis;
using threadify::ModeledThread;
using threadify::ThreadOrigin;

ThreadReach::ThreadReach(const PointsToAnalysis &PTA,
                         const threadify::ThreadForest &Forest) {
  const auto &Edges = PTA.callEdges();

  auto Closure = [&](std::vector<MethodCtx> Roots) {
    std::vector<MethodCtx> Result;
    std::set<MethodCtx> Visited;
    std::deque<MethodCtx> Pending(Roots.begin(), Roots.end());
    while (!Pending.empty()) {
      MethodCtx Ctx = Pending.front();
      Pending.pop_front();
      if (!Visited.insert(Ctx).second)
        continue;
      Result.push_back(Ctx);
      auto It = Edges.find(Ctx);
      if (It == Edges.end())
        continue;
      for (const MethodCtx &Next : It->second)
        Pending.push_back(Next);
    }
    return Result;
  };

  for (const auto &T : Forest.threads()) {
    std::vector<MethodCtx> Roots;
    if (T->origin() == ThreadOrigin::DummyMain) {
      // The dummy main owns no code.
    } else if (T->origin() == ThreadOrigin::EntryCallback &&
               !T->spawnSite()) {
      ObjectId Synth;
      if (PTA.syntheticObjectFor(T->component(), Synth))
        Roots.push_back({T->callback(), Synth});
    } else {
      // Posted/listener/native threads: every spawn record installing this
      // callback contributes its receiver object as a root context. The
      // threadifier memoizes identical (poster, target, kind) spawns into
      // one modeled thread, so matching by target callback slightly
      // over-approximates root contexts — a union, never a miss.
      for (const SpawnRecord &R : PTA.spawnRecords())
        if (R.Target == T->callback())
          Roots.push_back({R.Target, R.Recv});
    }
    Reach.emplace(T.get(), Closure(std::move(Roots)));
  }

  // Invert once, walking Reach in its own (map) order so each context's
  // executor list is ordered exactly like the per-query scan it replaces.
  for (const auto &[T, Ctxs] : Reach)
    for (const MethodCtx &C : Ctxs)
      Executors[C].push_back(T);
}

const std::vector<MethodCtx> &
ThreadReach::contextsOf(const ModeledThread *T) const {
  static const std::vector<MethodCtx> Empty;
  auto It = Reach.find(T);
  return It == Reach.end() ? Empty : It->second;
}

std::vector<const ModeledThread *>
ThreadReach::threadsExecuting(const MethodCtx &Ctx) const {
  auto It = Executors.find(Ctx);
  return It == Executors.end()
             ? std::vector<const ModeledThread *>{}
             : It->second;
}
