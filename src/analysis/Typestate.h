//===- analysis/Typestate.h - Protocol typestate checking -------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flow- and lifecycle-sensitive typestate engine over the declarative
/// `protocol` machines in the FrameworkSpec (see FrameworkSpec.h for the
/// DSL grammar). The same insight that powers the UAF detector — model
/// callbacks as threads, then reason about orderings between them —
/// generalizes to any object protocol: register/unregister balance,
/// listeners leaked at destroy, handler messages left pending.
///
/// The engine runs per (component, protocol):
///
///  * Intra-callback: one flow-sensitive pass over each callback's CFG
///    (analysis/Cfg.h — the graphs are DAGs, so a single RPO sweep is a
///    fixpoint) computes a transfer summary per possible entry state:
///    the exit state set, the transition statement that produced each
///    exit state, and every `error-call` rule hit. Framework API calls
///    are recognized through the shared ApiIndex; ordinary calls are
///    over-approximated by saturating the state set under the API events
///    of methods reachable from the callback (HbQuery's program-wide
///    syntactic-reach memo), so a register hidden in a helper makes the
///    registered state *possible* rather than being missed. `error-call`
///    rules are checked only at call sites directly in callback bodies.
///
///  * Inter-callback: an explicit-state exploration over configurations
///    (lifecycle phase, pending-resume flag, protocol state) — at most
///    4 x 2 x 8 per component — where a callback thread of the component
///    may activate when the spec's phase machine admits it (the same
///    rules the refuter tiers interpret), applies its `on-callback`
///    transitions and its transfer summary, and yields successor
///    configurations. Every configuration remembers the (thread, config)
///    that produced it, so a finding carries the violating
///    callback-order chain for --explain.
///
/// `error-at` rules are evaluated against the *exit* states of the named
/// callback: unregistering inside onDestroy is the canonical fix, not a
/// leak. Findings are deduplicated and deterministically ordered by
/// (component, protocol, rule, site).
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_ANALYSIS_TYPESTATE_H
#define NADROID_ANALYSIS_TYPESTATE_H

#include "analysis/HbQuery.h"
#include "analysis/MethodCaches.h"
#include "android/Api.h"
#include "android/FrameworkSpec.h"
#include "ir/Ir.h"
#include "support/Deadline.h"
#include "threadify/ThreadForest.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace nadroid::analysis {

/// One protocol violation.
struct TypestateFinding {
  const android::FrameworkSpec::Protocol *Proto = nullptr;
  const android::FrameworkSpec::Protocol::ErrorRule *Rule = nullptr;
  /// The component whose callback schedule violates the protocol.
  ir::Clazz *Component = nullptr;
  /// For error-call rules: the offending API call. For error-at rules:
  /// the transition statement that entered the bad state (e.g. the
  /// registerReceiver call that is never balanced). May be null when the
  /// bad state is the protocol's initial state.
  const ir::Stmt *At = nullptr;
  /// The method containing At, or the error callback when At is null.
  const ir::Method *In = nullptr;
  /// Name of the protocol state the rule fired in.
  std::string State;
  /// The violating callback-order chain: thread labels from the first
  /// activation to the one that triggered the rule.
  std::vector<std::string> Chain;
};

/// See the file comment. Built once per program by TypestatePass.
class TypestateAnalysis {
public:
  TypestateAnalysis(const ir::Program &P,
                    const android::FrameworkSpec &Spec,
                    const android::ApiIndex &Apis,
                    const threadify::ThreadForest &Forest,
                    const HbQuery &Hb, MethodCfgCache &Cfgs,
                    const support::Deadline *D);
  ~TypestateAnalysis(); // out of line: Transfer is incomplete here

  /// All violations, deterministically ordered.
  const std::vector<TypestateFinding> &findings() const { return Findings; }

private:
  struct Transfer;
  struct Explorer;

  const Transfer &transferOf(ir::Method *M,
                             const android::FrameworkSpec::Protocol &Proto);
  void checkComponent(ir::Clazz *C,
                      const std::vector<const threadify::ModeledThread *> &Ts);

  /// Bitmask over android::ApiKind of the framework calls directly in \p M.
  uint32_t ownEventMask(const ir::Method *M);
  /// Union of ownEventMask over the methods reachable from \p M, minus M
  /// itself — protocol-independent, so it is computed once per callback
  /// and shared by all protocol machines.
  uint32_t helperEventMask(ir::Method *M);

  const ir::Program &P;
  const android::FrameworkSpec &Spec;
  const android::ApiIndex &Apis;
  const threadify::ThreadForest &Forest;
  const HbQuery &Hb;
  MethodCfgCache &Cfgs;
  const support::Deadline *D;

  std::map<std::pair<const ir::Method *,
                     const android::FrameworkSpec::Protocol *>,
           std::unique_ptr<Transfer>>
      Transfers;
  std::map<const ir::Method *, uint32_t> OwnEvents;
  std::map<const ir::Method *, uint32_t> HelperEvents;
  std::vector<TypestateFinding> Findings;
};

} // namespace nadroid::analysis

#endif // NADROID_ANALYSIS_TYPESTATE_H
