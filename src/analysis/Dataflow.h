//===- analysis/Dataflow.h - Generic worklist dataflow solver ---*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, header-only worklist solver over Cfg. A client supplies a
/// *domain* type modelling a join-semilattice and its transfer
/// functions:
///
///   struct MyDomain {
///     using State = ...;                 // copyable lattice element
///     static constexpr DataflowDirection direction();
///     State boundary() const;            // entry (fwd) / exit (bwd) state
///     State bottom() const;              // identity of join; "unreachable"
///     bool join(State &Into, const State &From) const; // true if changed
///     void transferStmt(const ir::Stmt &S, State &St) const;
///     void transferEdge(const CfgEdge &E, State &St) const;
///   };
///
/// transferStmt sees only leaf statements (never IfStmt — branches are
/// node terminators and act through transferEdge, which receives the
/// per-edge null-test refinement). In a backward problem the solver
/// walks statements in reverse and propagates across edges from
/// successor to predecessor; transferEdge still receives the same edge.
///
/// The solver iterates nodes in (reverse-)RPO until a fixpoint. AIR
/// method bodies are loop-free, so the first sweep already converges;
/// the loop is kept so the solver stays correct for general graphs.
///
/// After solve(), inState/outState give per-node facts and replayNode
/// re-runs the node-local transfers invoking a callback with the state
/// *before* each leaf statement — the way clients read per-statement
/// facts without the solver storing one state per statement.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_ANALYSIS_DATAFLOW_H
#define NADROID_ANALYSIS_DATAFLOW_H

#include "analysis/Cfg.h"

#include <vector>

namespace nadroid::analysis {

enum class DataflowDirection { Forward, Backward };

template <typename Domain> class DataflowSolver {
public:
  using State = typename Domain::State;

  DataflowSolver(const Cfg &G, Domain &D) : G(G), D(D) {}

  void solve() {
    const uint32_t N = G.size();
    In.assign(N, D.bottom());
    Out.assign(N, D.bottom());

    constexpr bool Fwd = Domain::direction() == DataflowDirection::Forward;
    const std::vector<uint32_t> &Order = G.rpo();

    // On an acyclic graph one forced (reverse-)RPO sweep is already the
    // fixpoint: every node's inputs are final before the node is
    // stepped. AIR bodies are loop-free, so this is the common case;
    // graphs with back edges iterate until quiescent as before.
    const bool Acyclic = isAcyclicInOrder(Order, Fwd);

    bool Changed = true;
    bool First = true;
    while (Changed) {
      Changed = false;
      if (Fwd) {
        for (uint32_t Node : Order)
          Changed |= step</*IsFwd=*/true>(Node, First);
      } else {
        for (auto It = Order.rbegin(); It != Order.rend(); ++It)
          Changed |= step</*IsFwd=*/false>(*It, First);
      }
      if (Acyclic)
        break;
      First = false;
    }
  }

  /// Facts at node entry (forward) resp. node exit (backward): the join
  /// over incoming edges in the direction of analysis.
  const State &inState(uint32_t Node) const { return In[Node]; }
  /// Facts after the node's transfers in the direction of analysis.
  const State &outState(uint32_t Node) const { return Out[Node]; }

  /// Re-runs the node-local transfer chain of \p Node, calling
  /// `Visit(const ir::Stmt *, const State &)` with the state *before*
  /// each leaf statement (in analysis order). Returns the state after
  /// the last statement — the out-state minus any terminator effects
  /// (terminators act only on edges, so it equals outState today).
  template <typename VisitT> State replayNode(uint32_t Node, VisitT &&Visit) const {
    State St = In[Node];
    const CfgNode &CN = G.node(Node);
    if constexpr (Domain::direction() == DataflowDirection::Forward) {
      for (const ir::Stmt *S : CN.Stmts) {
        Visit(S, St);
        D.transferStmt(*S, St);
      }
    } else {
      for (auto It = CN.Stmts.rbegin(); It != CN.Stmts.rend(); ++It) {
        Visit(*It, St);
        D.transferStmt(**It, St);
      }
    }
    return St;
  }

private:
  template <bool IsFwd> bool step(uint32_t Node, bool Force) {
    // Join over incoming edges (preds forward, succs backward), applying
    // each edge's refinement to the source state first.
    State NewIn = D.bottom();
    if (Node == (IsFwd ? G.entry() : G.exit())) {
      D.join(NewIn, D.boundary());
    }
    if constexpr (IsFwd) {
      for (uint32_t P : G.node(Node).Preds) {
        for (const CfgEdge &E : G.node(P).Succs) {
          if (E.To != Node)
            continue;
          State Tmp = Out[P];
          D.transferEdge(E, Tmp);
          D.join(NewIn, Tmp);
        }
      }
    } else {
      for (const CfgEdge &E : G.node(Node).Succs) {
        State Tmp = Out[E.To];
        D.transferEdge(E, Tmp);
        D.join(NewIn, Tmp);
      }
    }

    bool InChanged = D.join(In[Node], NewIn);
    if (!InChanged && !Force)
      return false;

    State NewOut = In[Node];
    const CfgNode &CN = G.node(Node);
    if constexpr (IsFwd) {
      for (const ir::Stmt *S : CN.Stmts)
        D.transferStmt(*S, NewOut);
    } else {
      for (auto It = CN.Stmts.rbegin(); It != CN.Stmts.rend(); ++It)
        D.transferStmt(**It, NewOut);
    }
    // Out only ever moves up the lattice; join detects the change.
    bool OutChanged = D.join(Out[Node], NewOut);
    return InChanged || OutChanged;
  }

  /// True when every edge strictly increases RPO position. Then each
  /// node's inputs are stepped before it in a forward sweep, and after
  /// it in the reversed sweep a backward analysis uses — either way one
  /// forced sweep settles. A back edge (loop) breaks both, so the
  /// direction does not matter here.
  bool isAcyclicInOrder(const std::vector<uint32_t> &Order, bool) const {
    std::vector<uint32_t> Pos(G.size(), 0);
    for (uint32_t I = 0; I < Order.size(); ++I)
      Pos[Order[I]] = I;
    for (uint32_t Node = 0; Node < G.size(); ++Node)
      for (const CfgEdge &E : G.node(Node).Succs)
        if (Pos[E.To] <= Pos[Node])
          return false;
    return true;
  }

  const Cfg &G;
  Domain &D;
  std::vector<State> In, Out;
};

} // namespace nadroid::analysis

#endif // NADROID_ANALYSIS_DATAFLOW_H
