//===- analysis/Guards.h - If-guard detection (IG, §6.1.2) ------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detects if-guarded uses for the IG filter. A field load is guarded in
/// two (bytecode-level) shapes:
///
///   (a) re-load under guard:            (b) check-then-deref of one load:
///       g = this.f;                         x = this.f;
///       if (g != null) {                    if (x != null) {
///         u = this.f;   // guarded              x.use();
///         u.use();                          }
///       }                                  // the load x is guarded when
///                                          // every deref of x sits inside
///                                          // the guarded region
///
/// The analysis is intra-procedural and conservative: an intervening free
/// of the same field invalidates the tracked null-check, and assignments
/// through branches discard tracking. Whether a guard actually *prunes* a
/// warning (atomicity / common lock) is the filter's job, not this one's.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_ANALYSIS_GUARDS_H
#define NADROID_ANALYSIS_GUARDS_H

#include "ir/Stmt.h"

#include <set>

namespace nadroid::analysis {

/// Per-method guard facts.
class GuardAnalysis {
public:
  explicit GuardAnalysis(const ir::Method &M);

  /// True when the use at \p Load executes only under a null-check of the
  /// same field (shapes (a)/(b) above).
  bool isGuarded(const ir::LoadStmt *Load) const {
    return Guarded.count(Load) != 0;
  }

  const std::set<const ir::LoadStmt *> &guardedLoads() const {
    return Guarded;
  }

private:
  std::set<const ir::LoadStmt *> Guarded;
};

} // namespace nadroid::analysis

#endif // NADROID_ANALYSIS_GUARDS_H
