//===- analysis/Guards.cpp - If-guard detection (IG, §6.1.2) ------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/Guards.h"

#include <map>
#include <vector>

using namespace nadroid;
using namespace nadroid::analysis;
using namespace nadroid::ir;

namespace {

/// A (base local, field) pair a guard has null-checked.
using FieldRef = std::pair<const Local *, const Field *>;

/// Collects every statement lexically inside \p B (recursively).
void collectSubtree(const Block &B, std::set<const Stmt *> &Out) {
  forEachStmt(B, [&](const Stmt &S) { Out.insert(&S); });
}

class GuardWalker {
public:
  explicit GuardWalker(const Method &M) : M(M) {}

  std::set<const LoadStmt *> run() {
    std::map<const Local *, FieldRef> FieldOf;
    std::map<const Local *, const LoadStmt *> DefLoad;
    std::set<FieldRef> Active;
    walk(M.body(), FieldOf, DefLoad, Active);
    resolveCheckThenDeref();
    return std::move(Guarded);
  }

private:
  const Method &M;
  std::set<const LoadStmt *> Guarded;
  /// Shape (b) candidates: the load feeding the check, and the region its
  /// dereferences must stay inside.
  struct Candidate {
    const LoadStmt *Def;
    const Block *Region;
  };
  std::vector<Candidate> Candidates;

  void invalidateField(std::map<const Local *, FieldRef> &FieldOf,
                       std::set<FieldRef> &Active, const Field *F) {
    for (auto It = FieldOf.begin(); It != FieldOf.end();) {
      if (It->second.second == F)
        It = FieldOf.erase(It);
      else
        ++It;
    }
    for (auto It = Active.begin(); It != Active.end();) {
      if (It->second == F)
        It = Active.erase(It);
      else
        ++It;
    }
  }

  void walk(const Block &B, std::map<const Local *, FieldRef> &FieldOf,
            std::map<const Local *, const LoadStmt *> &DefLoad,
            std::set<FieldRef> &Active) {
    for (const auto &SPtr : B.stmts()) {
      const Stmt &S = *SPtr;
      switch (S.kind()) {
      case Stmt::Kind::Load: {
        const auto *Load = cast<LoadStmt>(&S);
        FieldRef Ref{Load->base(), Load->field()};
        if (Active.count(Ref))
          Guarded.insert(Load);
        FieldOf[Load->dst()] = Ref;
        DefLoad[Load->dst()] = Load;
        break;
      }
      case Stmt::Kind::New:
        FieldOf.erase(cast<NewStmt>(&S)->dst());
        DefLoad.erase(cast<NewStmt>(&S)->dst());
        break;
      case Stmt::Kind::Copy:
        FieldOf.erase(cast<CopyStmt>(&S)->dst());
        DefLoad.erase(cast<CopyStmt>(&S)->dst());
        break;
      case Stmt::Kind::Call: {
        const auto *Call = cast<CallStmt>(&S);
        if (Call->dst()) {
          FieldOf.erase(Call->dst());
          DefLoad.erase(Call->dst());
        }
        break;
      }
      case Stmt::Kind::Store: {
        // Any store to (b, f) invalidates null-knowledge about f — a
        // free may have installed null, a fresh store is fine either
        // way; conservatively drop both mappings and active guards.
        invalidateField(FieldOf, Active, cast<StoreStmt>(&S)->field());
        break;
      }
      case Stmt::Kind::Return:
        break;
      case Stmt::Kind::Sync: {
        const auto *Sync = cast<SyncStmt>(&S);
        walk(Sync->body(), FieldOf, DefLoad, Active);
        break;
      }
      case Stmt::Kind::If: {
        const auto *If = cast<IfStmt>(&S);
        const Block *Protected = nullptr;
        const Block *Other = nullptr;
        if (If->test() == IfStmt::TestKind::NotNull) {
          Protected = &If->thenBlock();
          Other = &If->elseBlock();
        } else if (If->test() == IfStmt::TestKind::IsNull) {
          Protected = &If->elseBlock();
          Other = &If->thenBlock();
        }

        if (Protected && If->cond()) {
          auto RefIt = FieldOf.find(If->cond());
          std::set<FieldRef> BranchActive = Active;
          if (RefIt != FieldOf.end()) {
            BranchActive.insert(RefIt->second);
            if (auto DefIt = DefLoad.find(If->cond());
                DefIt != DefLoad.end())
              Candidates.push_back({DefIt->second, Protected});
          }
          // Branch-local copies: mutations inside a branch must not leak.
          auto FieldOfCopy = FieldOf;
          auto DefLoadCopy = DefLoad;
          walk(*Protected, FieldOfCopy, DefLoadCopy, BranchActive);
          if (Other) {
            auto FieldOfCopy2 = FieldOf;
            auto DefLoadCopy2 = DefLoad;
            std::set<FieldRef> OtherActive = Active;
            walk(*Other, FieldOfCopy2, DefLoadCopy2, OtherActive);
          }
        } else {
          // Unknown predicate: both branches, no new guards.
          auto FieldOfCopy = FieldOf;
          auto DefLoadCopy = DefLoad;
          std::set<FieldRef> BranchActive = Active;
          walk(If->thenBlock(), FieldOfCopy, DefLoadCopy, BranchActive);
          auto FieldOfCopy2 = FieldOf;
          auto DefLoadCopy2 = DefLoad;
          std::set<FieldRef> BranchActive2 = Active;
          walk(If->elseBlock(), FieldOfCopy2, DefLoadCopy2, BranchActive2);
        }
        // After a branch join the tracked null-facts are unreliable:
        // conservatively forget everything defined so far.
        FieldOf.clear();
        DefLoad.clear();
        break;
      }
      }
    }
  }

  /// Shape (b): the load feeding a null check is guarded when every
  /// dereference of its destination stays inside the guarded region.
  void resolveCheckThenDeref() {
    for (const Candidate &C : Candidates) {
      std::set<const Stmt *> Region;
      collectSubtree(*C.Region, Region);
      const Local *Val = C.Def->dst();
      bool AllInside = true;
      bool AnyDeref = false;
      forEachStmt(M, [&](const Stmt &S) {
        const auto *Call = dyn_cast<CallStmt>(&S);
        if (!Call || Call->recv() != Val)
          return;
        AnyDeref = true;
        if (!Region.count(&S))
          AllInside = false;
      });
      // A check whose value is never dereferenced is the UR filter's
      // business; IG guards only check-then-deref.
      if (AnyDeref && AllInside)
        Guarded.insert(C.Def);
    }
  }
};

} // namespace

GuardAnalysis::GuardAnalysis(const Method &M) {
  Guarded = GuardWalker(M).run();
}
