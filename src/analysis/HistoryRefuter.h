//===- analysis/HistoryRefuter.h - History-predicate refinement -*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second refutation tier: a counterexample-guided refinement loop
/// over the same event-system model HbRefuter searches, re-examining
/// every pair tier 1 left *Assumed*. The pruning obligation — "no
/// history runs the use after the free" — is checked against a history
/// predicate (per-thread saturating activation caps plus the exact
/// phase/kill/revive machine) that starts coarse and is strengthened
/// from each concrete counterexample:
///
///  * a counterexample history that fails exact replay (unbounded
///    counters, strict one-run-per-post and FIFO arithmetic) is
///    *spurious*: the caps of the threads involved in the failing step
///    are raised and the search repeats;
///  * a counterexample that replays feasibly is attacked with staged
///    fact refinements — inter-procedural revive facts first
///    (must-alloc-at-exit through this-calls), then inter-procedural
///    kill facts (must-cancel through this-calls dominating the free);
///  * when no refinement changes anything, the witness is *stable* and
///    the pair stays Assumed with a concrete history attached;
///  * when some predicate admits no counterexample, the obligation is
///    discharged — the pair is proved (Proved-v2) and the obligation
///    chain (abstraction, refinement rounds, revive/kill facts) is the
///    recorded provenance.
///
/// Soundness: saturating counters over-approximate at *any* cap, the
/// phase/kill/freed machine is exact, and the fact refinements only add
/// facts derived by must-analyses — so "no counterexample" is sound for
/// every predicate the loop visits, and exact replay is a complete
/// feasibility check for individual histories.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_ANALYSIS_HISTORYREFUTER_H
#define NADROID_ANALYSIS_HISTORYREFUTER_H

#include "analysis/RefuterModel.h"

#include <string>
#include <vector>

namespace nadroid::analysis {

/// The outcome of one tier-2 refinement run.
struct HistoryRefutation {
  /// True when some refined predicate admits no counterexample — the
  /// pair is proved ordered (Proved-v2).
  bool Ordered = false;
  /// When Ordered: the obligation chain — abstraction, refinement
  /// rounds, the facts the discharge rests on.
  std::vector<std::string> ObligationChain;
  /// When !Ordered and a counterexample survived exact replay under the
  /// final predicate: the stable concrete history (empty when tier 2
  /// could not run or exhausted its budget — tier-1 evidence stands).
  std::vector<std::string> Witness;
  /// Refinement rounds executed (1 = the initial search sufficed).
  unsigned Rounds = 0;
  /// Abstract states explored, summed across rounds.
  unsigned StatesExplored = 0;
};

/// Stateless-per-query tier-2 engine; thread-safe for the same reason
/// HbRefuter is — every shared table is internally synchronized.
class HistoryRefuter {
public:
  /// \p D (not owned, may be null) is polled once per DFS step of every
  /// search round; expiry throws DeadlineExceeded out of refine().
  /// \p HQ (not owned, may be null) lets the model builder serve the
  /// statement-independent pair skeleton from the shared HbQuery cache —
  /// keyed on the tier-2 capacities, so tier-1 skeletons are never reused.
  HistoryRefuter(const ir::Program &P, const threadify::ThreadForest &Forest,
                 const PointsToAnalysis &PTA, const ThreadReach &Reach,
                 const CancelReach &Cancel, const EscapeAnalysis &Escape,
                 MethodCfgCache &Cfgs, MethodAllocFlowCache &Alloc,
                 const support::Deadline *D = nullptr,
                 const HbQuery *HQ = nullptr);

  /// Runs the refinement loop for one pair tier 1 left Assumed.
  HistoryRefutation refine(const ir::LoadStmt *Use, const ir::StoreStmt *Free,
                           const ir::Field *F,
                           const threadify::ModeledThread *UseT,
                           const threadify::ModeledThread *FreeT) const;

private:
  ModelBuilder Builder;
  const support::Deadline *D = nullptr;
};

} // namespace nadroid::analysis

#endif // NADROID_ANALYSIS_HISTORYREFUTER_H
