//===- analysis/ThreadReach.h - Thread-to-code attribution ------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Attributes analyzed code to modeled threads: a (method, context) pair
/// belongs to thread T when it is reachable from T's root contexts over
/// ordinary call edges (spawn edges belong to the spawned thread). Root
/// contexts come from the points-to solve: synthetic component objects for
/// component entry callbacks, and SpawnRecords matched by target callback
/// for posted/listener/native threads.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_ANALYSIS_THREADREACH_H
#define NADROID_ANALYSIS_THREADREACH_H

#include "analysis/PointsTo.h"

namespace nadroid::analysis {

/// Per-thread reachable contexts.
class ThreadReach {
public:
  ThreadReach(const PointsToAnalysis &PTA,
              const threadify::ThreadForest &Forest);

  /// Contexts thread \p T may execute (deterministic order).
  const std::vector<MethodCtx> &
  contextsOf(const threadify::ModeledThread *T) const;

  /// All threads that may execute \p Ctx. Served from an eager reverse
  /// index built at construction; the per-context thread order matches
  /// the forward map's iteration order, exactly as the former linear
  /// scan produced it.
  std::vector<const threadify::ModeledThread *>
  threadsExecuting(const MethodCtx &Ctx) const;

private:
  std::map<const threadify::ModeledThread *, std::vector<MethodCtx>> Reach;
  std::map<MethodCtx, std::vector<const threadify::ModeledThread *>> Executors;
};

} // namespace nadroid::analysis

#endif // NADROID_ANALYSIS_THREADREACH_H
