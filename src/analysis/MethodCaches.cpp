//===- analysis/MethodCaches.cpp - Thread-safe per-method caches ----------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/MethodCaches.h"

using namespace nadroid;
using namespace nadroid::analysis;

const Cfg &MethodCfgCache::get(const ir::Method &M) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Map.find(&M);
  if (It != Map.end())
    return It->second;
  return Map.try_emplace(&M, M).first->second;
}

const GuardAnalysis &MethodGuardCache::get(const ir::Method &M) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Map.find(&M);
  if (It != Map.end())
    return It->second;
  return Map.emplace(&M, GuardAnalysis(M)).first->second;
}

const AllocFlowResult &MethodAllocFlowCache::get(const ir::Method &M,
                                                 bool TreatCallResultAsAlloc) {
  std::lock_guard<std::mutex> L(Mu);
  auto &Table = TreatCallResultAsAlloc ? Ma : Ia;
  auto It = Table.find(&M);
  if (It != Table.end())
    return It->second;
  return Table.emplace(&M, analyzeAllocFlow(M, TreatCallResultAsAlloc))
      .first->second;
}

const std::map<const ir::LoadStmt *, ir::LoadConsumers> &
MethodConsumersCache::get(const ir::Method &M) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Map.find(&M);
  if (It != Map.end())
    return It->second;
  return Map.emplace(&M, ir::computeLoadConsumers(M)).first->second;
}

void MethodCfgCache::evict(const ir::Method &M) {
  std::lock_guard<std::mutex> L(Mu);
  Map.erase(&M);
}

void MethodGuardCache::evict(const ir::Method &M) {
  std::lock_guard<std::mutex> L(Mu);
  Map.erase(&M);
}

void MethodAllocFlowCache::evict(const ir::Method &M) {
  std::lock_guard<std::mutex> L(Mu);
  Ia.erase(&M);
  Ma.erase(&M);
}

void MethodConsumersCache::evict(const ir::Method &M) {
  std::lock_guard<std::mutex> L(Mu);
  Map.erase(&M);
}
