//===- analysis/AllocFlow.h - Allocation dataflow (IA/MA/RHB) ---*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intra-procedural allocation dataflow behind three filters:
///
///  * IA (§6.1.3, sound): a load of this.f is *must-alloc protected* when
///    every path from the method entry to the load stores a freshly
///    allocated object into this.f with no intervening free.
///  * MA (§6.2.2, unsound): same, but values returned from calls (custom
///    getters) also count as allocations.
///  * RHB (§6.2.1, unsound): needs only may-allocation facts — does any
///    path in onResume allocate this.f at all.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_ANALYSIS_ALLOCFLOW_H
#define NADROID_ANALYSIS_ALLOCFLOW_H

#include "ir/Stmt.h"

#include <functional>
#include <set>

namespace nadroid::analysis {

/// The per-method result of the allocation dataflow.
struct AllocFlowResult {
  /// Loads of this.f dominated by a fresh allocation of this.f (must).
  std::set<const ir::LoadStmt *> ProtectedLoads;
  /// Fields some path stores a fresh allocation into (may).
  std::set<const ir::Field *> MayAllocFields;
  /// Fields every path through the method leaves freshly allocated (must,
  /// at exit). Every exit counts: explicit returns — including early
  /// returns inside branches, which the parser accepts anywhere — and the
  /// implicit fall-through at the end of the body.
  std::set<const ir::Field *> MustAllocAtExitFields;
};

/// Optional interprocedural extension point: given a call, returns the
/// fields the callee must leave freshly allocated at exit (or nullptr /
/// empty when the callee is unresolved). Used by the history refuter's
/// revive refinement; the intra-procedural analyses pass nullptr and keep
/// the §6.1.3 calls-are-field-preserving assumption.
using CallAllocResolver =
    std::function<const std::set<const ir::Field *> *(const ir::CallStmt &)>;

/// Runs the dataflow over \p M. \p TreatCallResultAsAlloc enables the MA
/// filter's getter assumption. \p Resolver, when non-null, folds callee
/// must-alloc-at-exit facts into the walk at each call site.
AllocFlowResult analyzeAllocFlow(const ir::Method &M,
                                 bool TreatCallResultAsAlloc,
                                 const CallAllocResolver *Resolver = nullptr);

} // namespace nadroid::analysis

#endif // NADROID_ANALYSIS_ALLOCFLOW_H
