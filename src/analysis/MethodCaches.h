//===- analysis/MethodCaches.h - Thread-safe per-method caches --*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoization tables for the per-method analyses (Cfg, GuardAnalysis,
/// AllocFlow, load-consumer summaries). Each cache builds the result for
/// a method on first request and returns a stable reference afterwards —
/// std::map nodes never move, so references stay valid across later
/// insertions.
///
/// All caches are internally synchronized: the filter engine's parallel
/// per-warning verdict loop hits them from several threads at once, and
/// the pipeline AnalysisManager shares one instance between the filter
/// stage and the DEvA baseline. The lock is held across the build — the
/// analyses are cheap and per-method, and holding it guarantees each
/// method is analyzed exactly once.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_ANALYSIS_METHODCACHES_H
#define NADROID_ANALYSIS_METHODCACHES_H

#include "analysis/AllocFlow.h"
#include "analysis/Cfg.h"
#include "analysis/Guards.h"
#include "ir/LocalInfo.h"

#include <map>
#include <mutex>

namespace nadroid::analysis {

/// Control-flow graphs, one per method.
class MethodCfgCache {
public:
  const Cfg &get(const ir::Method &M);
  /// Drops the entry for \p M (no-op when absent) — the incremental
  /// frontend regrafted its body, so the cached result describes
  /// statements that no longer exist. Outstanding references to the
  /// evicted entry become dangling; the AnalysisManager only evicts
  /// after invalidating every analysis that could hold one.
  void evict(const ir::Method &M);

private:
  std::mutex Mu;
  std::map<const ir::Method *, Cfg> Map;
};

/// Syntactic guard facts (Guards.h), one per method.
class MethodGuardCache {
public:
  const GuardAnalysis &get(const ir::Method &M);
  /// See MethodCfgCache::evict.
  void evict(const ir::Method &M);

private:
  std::mutex Mu;
  std::map<const ir::Method *, GuardAnalysis> Map;
};

/// Must-allocation facts (AllocFlow.h) in both modes: the IA mode and
/// the MA mode where call results count as allocations.
class MethodAllocFlowCache {
public:
  const AllocFlowResult &get(const ir::Method &M, bool TreatCallResultAsAlloc);
  /// See MethodCfgCache::evict (drops both the IA and MA entries).
  void evict(const ir::Method &M);

private:
  std::mutex Mu;
  std::map<const ir::Method *, AllocFlowResult> Ia;
  std::map<const ir::Method *, AllocFlowResult> Ma;
};

/// Load-consumer summaries (ir/LocalInfo.h), one map per method.
class MethodConsumersCache {
public:
  const std::map<const ir::LoadStmt *, ir::LoadConsumers> &
  get(const ir::Method &M);
  /// See MethodCfgCache::evict.
  void evict(const ir::Method &M);

private:
  std::mutex Mu;
  std::map<const ir::Method *, std::map<const ir::LoadStmt *, ir::LoadConsumers>>
      Map;
};

} // namespace nadroid::analysis

#endif // NADROID_ANALYSIS_METHODCACHES_H
