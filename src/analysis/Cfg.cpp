//===- analysis/Cfg.cpp - Per-method control-flow graphs ------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"

#include "support/Casting.h"

#include <algorithm>
#include <cassert>

using namespace nadroid;
using namespace nadroid::analysis;
using namespace nadroid::ir;

uint32_t Cfg::newNode() {
  Nodes.emplace_back();
  return static_cast<uint32_t>(Nodes.size() - 1);
}

void Cfg::addEdge(uint32_t From, uint32_t To, const Local *Tested,
                  bool NonNull) {
  Nodes[From].Succs.push_back({To, Tested, NonNull});
  Nodes[To].Preds.push_back(From);
}

uint32_t Cfg::lowerBlock(const Block &Blk, uint32_t Cur) {
  for (const std::unique_ptr<Stmt> &SP : Blk.stmts()) {
    const Stmt *S = SP.get();
    switch (S->kind()) {
    case Stmt::Kind::New:
    case Stmt::Kind::Load:
    case Stmt::Kind::Store:
    case Stmt::Kind::Copy:
    case Stmt::Kind::Call:
      Nodes[Cur].Stmts.push_back(S);
      StmtNode[S] = Cur;
      break;

    case Stmt::Kind::Return:
      Nodes[Cur].Stmts.push_back(S);
      StmtNode[S] = Cur;
      addEdge(Cur, ExitNode, nullptr, false);
      // Anything after a return in the same block is unreachable; park
      // it in a fresh predecessor-less node so nodeOf still works.
      Cur = newNode();
      break;

    case Stmt::Kind::Sync: {
      // Locking is invisible to control flow: record the statement as a
      // leaf (domains that care about atomicity can see it) and flatten
      // the body into the current node sequence.
      const auto *Sync = cast<SyncStmt>(S);
      Nodes[Cur].Stmts.push_back(S);
      StmtNode[S] = Cur;
      Cur = lowerBlock(Sync->body(), Cur);
      break;
    }

    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(S);
      Nodes[Cur].Term = If;
      StmtNode[S] = Cur;

      const Local *Tested = nullptr;
      bool ThenNonNull = false;
      if (If->test() == IfStmt::TestKind::NotNull) {
        Tested = If->cond();
        ThenNonNull = true;
      } else if (If->test() == IfStmt::TestKind::IsNull) {
        Tested = If->cond();
        ThenNonNull = false;
      }

      uint32_t ThenEntry = newNode();
      uint32_t ElseEntry = newNode();
      addEdge(Cur, ThenEntry, Tested, ThenNonNull);
      addEdge(Cur, ElseEntry, Tested, !ThenNonNull);

      uint32_t ThenEnd = lowerBlock(If->thenBlock(), ThenEntry);
      uint32_t ElseEnd = lowerBlock(If->elseBlock(), ElseEntry);

      uint32_t Join = newNode();
      addEdge(ThenEnd, Join, nullptr, false);
      addEdge(ElseEnd, Join, nullptr, false);
      Cur = Join;
      break;
    }
    }
  }
  return Cur;
}

Cfg::Cfg(const Method &M) : M(&M) {
  uint32_t Entry = newNode();
  (void)Entry;
  ExitNode = newNode();
  uint32_t End = lowerBlock(M.body(), 0);
  // Fall off the end of the body.
  addEdge(End, ExitNode, nullptr, false);
  computeRpo();
  computeDominators();
}

uint32_t Cfg::nodeOf(const Stmt *S) const {
  auto It = StmtNode.find(S);
  assert(It != StmtNode.end() && "statement not from this method");
  return It->second;
}

void Cfg::computeRpo() {
  std::vector<uint8_t> State(Nodes.size(), 0); // 0 unvisited, 1 open, 2 done
  std::vector<uint32_t> Post;
  Post.reserve(Nodes.size());
  // Iterative DFS; AIR graphs are DAGs but keep the visited check anyway.
  std::vector<std::pair<uint32_t, size_t>> Stack;
  Stack.push_back({0, 0});
  State[0] = 1;
  while (!Stack.empty()) {
    auto &[N, NextSucc] = Stack.back();
    if (NextSucc < Nodes[N].Succs.size()) {
      uint32_t S = Nodes[N].Succs[NextSucc++].To;
      if (State[S] == 0) {
        State[S] = 1;
        Stack.push_back({S, 0});
      }
    } else {
      State[N] = 2;
      Post.push_back(N);
      Stack.pop_back();
    }
  }
  Rpo.assign(Post.rbegin(), Post.rend());
  RpoIndex.assign(Nodes.size(), UINT32_MAX);
  for (uint32_t I = 0; I < Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = I;
}

void Cfg::computeDominators() {
  // Cooper-Harvey-Kennedy iterative dominators over the RPO.
  Idom.assign(Nodes.size(), UINT32_MAX);
  Idom[0] = 0;

  auto Intersect = [&](uint32_t A, uint32_t B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = Idom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = Idom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t N : Rpo) {
      if (N == 0)
        continue;
      uint32_t NewIdom = UINT32_MAX;
      for (uint32_t P : Nodes[N].Preds) {
        if (Idom[P] == UINT32_MAX)
          continue; // unreachable or not yet processed
        NewIdom = NewIdom == UINT32_MAX ? P : Intersect(P, NewIdom);
      }
      if (NewIdom != UINT32_MAX && Idom[N] != NewIdom) {
        Idom[N] = NewIdom;
        Changed = true;
      }
    }
  }
}

bool Cfg::dominates(uint32_t A, uint32_t B) const {
  if (Idom[A] == UINT32_MAX || Idom[B] == UINT32_MAX)
    return false;
  // Walk B's dominator chain toward the entry; RPO indices strictly
  // decrease along it, so stop once we pass A.
  while (RpoIndex[B] > RpoIndex[A])
    B = Idom[B];
  return A == B;
}

bool Cfg::dominates(const Stmt *A, const Stmt *B) const {
  uint32_t NA = nodeOf(A), NB = nodeOf(B);
  if (NA != NB)
    return dominates(NA, NB);
  const CfgNode &Node = Nodes[NA];
  if (A == B)
    return true;
  // A branch terminator comes after every leaf in its node.
  if (Node.Term == A)
    return false;
  if (Node.Term == B)
    return true;
  auto Pos = [&](const Stmt *S) {
    return std::find(Node.Stmts.begin(), Node.Stmts.end(), S) -
           Node.Stmts.begin();
  };
  return Pos(A) < Pos(B);
}
