//===- analysis/HbQuery.cpp - Shared HB/reachability query layer --------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/HbQuery.h"

#include "ir/LocalInfo.h"

#include <deque>
#include <set>

using namespace nadroid;
using namespace nadroid::analysis;
using namespace nadroid::ir;
using threadify::ModeledThread;
using threadify::ThreadOrigin;

HbQuery::HbQuery(const Program &P, const android::ApiIndex &Apis,
                 const threadify::ThreadForest &Forest)
    : Apis(Apis) {
  (void)P;
  const auto &Threads = Forest.threads();
  for (const auto &T : Threads)
    Index.emplace(T.get(), static_cast<unsigned>(Index.size()));

  // The transitive same-looper post relation: for each postee, walk its
  // poster chain exactly as PhbFilter did per pair, recording every
  // poster the walk legally reaches. One walk per thread instead of one
  // per (pair, query).
  PostedAfter.assign(Threads.size(), support::BitVector(Threads.size()));
  for (const auto &TPtr : Threads) {
    const ModeledThread *T = TPtr.get();
    support::BitVector &Row = PostedAfter[Index.at(T)];
    const ModeledThread *Cur = T;
    while (Cur->origin() == ThreadOrigin::PostedCallback && Cur->onLooper()) {
      const ModeledThread *Par = Cur->parent();
      if (!Par || !Par->onLooper() || Par->looperId() != Cur->looperId())
        break; // a cross-looper hop loses the atomic ordering
      Row.set(Index.at(Par));
      Cur = Par;
    }
  }

  const size_t Cells = NumPairSlots * Threads.size() * Threads.size();
  if (Cells != 0) {
    PairBits = std::make_unique<std::atomic<uint8_t>[]>(Cells);
    for (size_t I = 0; I < Cells; ++I)
      PairBits[I].store(0, std::memory_order_relaxed);
  }
}

const std::vector<Method *> &HbQuery::adjacencyOf(Method *M) const {
  {
    std::lock_guard<std::mutex> Lock(AdjMu);
    auto It = Adjacency.find(M);
    if (It != Adjacency.end())
      return It->second;
  }
  // The expensive part of the old per-root BFS: local type inference per
  // visited method. It now runs once per method for the whole program.
  std::vector<Method *> Targets;
  LocalTypeInference Types(*M);
  forEachStmt(*M, [&](const Stmt &S) {
    const auto *Call = dyn_cast<CallStmt>(&S);
    if (!Call)
      return;
    if (Apis.lookup(*Call).isApi())
      return;
    LocalClassSet Recv = Types.query(Call->recv());
    for (Clazz *C : Recv.Classes)
      if (Method *Target = C->findMethod(Call->callee()))
        Targets.push_back(Target);
  });
  std::lock_guard<std::mutex> Lock(AdjMu);
  return Adjacency.emplace(M, std::move(Targets)).first->second;
}

const std::vector<Method *> &HbQuery::reachableFrom(Method *Root) const {
  {
    std::lock_guard<std::mutex> Lock(ReachMu);
    auto It = ReachMemo.find(Root);
    if (It != ReachMemo.end())
      return It->second;
  }
  // The same FIFO discovery as android::collectReachableMethods — the
  // adjacency preserves per-method push order (duplicates included), so
  // the result vector is byte-for-byte the order consumers saw before.
  std::vector<Method *> Result;
  std::set<Method *> Visited;
  std::deque<Method *> Pending{Root};
  while (!Pending.empty()) {
    Method *M = Pending.front();
    Pending.pop_front();
    if (!Visited.insert(M).second)
      continue;
    Result.push_back(M);
    for (Method *Target : adjacencyOf(M))
      Pending.push_back(Target);
  }
  std::lock_guard<std::mutex> Lock(ReachMu);
  return ReachMemo.emplace(Root, std::move(Result)).first->second;
}
