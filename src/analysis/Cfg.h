//===- analysis/Cfg.h - Per-method control-flow graphs ----------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An explicit control-flow graph over AIR's structured statement AST.
///
/// AIR bodies are trees of blocks (if/else, sync) rather than basic-block
/// lists, which is convenient for the frontend and the interpreter but
/// awkward for dataflow: the syntactic analyses in Guards.cpp and
/// AllocFlow.cpp each re-derive their own ad-hoc notion of "region" from
/// the tree. The Cfg class flattens one method into numbered nodes of
/// leaf statements connected by edges, so that a single worklist solver
/// (Dataflow.h) can serve every client.
///
/// Two properties of AIR keep the graphs simple:
///
///  * The only predicates are null tests (IfStmt::TestKind), so a branch
///    edge can carry at most one refinement: "local L is (non)null on
///    this edge". Edges record that refinement and flow-sensitive
///    domains (Nullness.h) apply it in their edge transfer.
///
///  * There are no loop statements. Intra-procedural graphs are DAGs and
///    every dataflow problem converges in one reverse-post-order sweep;
///    the solver still iterates to a fixpoint so that future front ends
///    with loops keep working.
///
/// Dominance: the paper's IA filter (§6.1.3) asks whether an allocation
/// dominates a use. The Cfg computes immediate dominators with the
/// standard iterative RPO algorithm (Cooper-Harvey-Kennedy) and exposes
/// `dominates(a, b)` for clients and tests.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_ANALYSIS_CFG_H
#define NADROID_ANALYSIS_CFG_H

#include "ir/Ir.h"
#include "ir/Stmt.h"

#include <cstdint>
#include <map>
#include <vector>

namespace nadroid::analysis {

/// One control-flow edge. Branch edges out of a null test carry the
/// refinement the test establishes on that edge; fall-through, join and
/// return edges carry none.
struct CfgEdge {
  uint32_t To = 0;
  /// The local the branch tested, or nullptr for unrefined edges (plain
  /// fall-through, joins, and both edges of an opaque `if (?)`).
  const ir::Local *TestedLocal = nullptr;
  /// True when TestedLocal is known non-null on this edge, false when it
  /// is known null. Meaningless if TestedLocal is nullptr.
  bool NonNullOnEdge = false;
};

/// A CFG node: a maximal run of leaf statements, optionally ended by a
/// branch terminator. SyncStmts appear in-line as leaves (their bodies
/// are flattened into the surrounding node sequence); IfStmts appear
/// only as terminators.
struct CfgNode {
  std::vector<const ir::Stmt *> Stmts;
  /// The branch that ends this node, if any. Nodes ending in a return,
  /// a fall-through, or the exit node itself have no terminator.
  const ir::IfStmt *Term = nullptr;
  std::vector<CfgEdge> Succs;
  std::vector<uint32_t> Preds;
};

/// The control-flow graph of one method. Node 0 is the entry; a single
/// synthetic exit node receives every return edge and the fall-off-end
/// edge.
class Cfg {
public:
  explicit Cfg(const ir::Method &M);

  const ir::Method &method() const { return *M; }
  uint32_t entry() const { return 0; }
  uint32_t exit() const { return ExitNode; }
  uint32_t size() const { return static_cast<uint32_t>(Nodes.size()); }
  const CfgNode &node(uint32_t N) const { return Nodes[N]; }

  /// Reverse post-order over nodes reachable from the entry. Iterating
  /// a forward dataflow problem in this order visits every predecessor
  /// of a node before the node itself (the graphs are DAGs).
  const std::vector<uint32_t> &rpo() const { return Rpo; }

  /// The node that contains \p S as a leaf statement, or the node whose
  /// terminator \p S is. Aborts on statements from other methods.
  uint32_t nodeOf(const ir::Stmt *S) const;

  /// Immediate dominator of \p N; the entry node is its own idom.
  /// Returns UINT32_MAX for nodes unreachable from the entry.
  uint32_t idom(uint32_t N) const { return Idom[N]; }

  /// True when every entry-to-\p B path passes through \p A. Reflexive.
  /// False whenever either node is unreachable.
  bool dominates(uint32_t A, uint32_t B) const;

  /// Statement-level dominance: both statements mapped through nodeOf,
  /// with intra-node ordering used when they share a node.
  bool dominates(const ir::Stmt *A, const ir::Stmt *B) const;

private:
  uint32_t newNode();
  /// Lowers \p Blk into the graph starting at node \p Cur; returns the
  /// node where control continues after the block.
  uint32_t lowerBlock(const ir::Block &Blk, uint32_t Cur);
  void addEdge(uint32_t From, uint32_t To, const ir::Local *Tested,
               bool NonNull);
  void computeRpo();
  void computeDominators();

  const ir::Method *M;
  std::vector<CfgNode> Nodes;
  uint32_t ExitNode = 0;
  std::vector<uint32_t> Rpo;
  std::vector<uint32_t> RpoIndex; // node -> position in Rpo, UINT32_MAX if unreachable
  std::vector<uint32_t> Idom;
  std::map<const ir::Stmt *, uint32_t> StmtNode;
};

} // namespace nadroid::analysis

#endif // NADROID_ANALYSIS_CFG_H
