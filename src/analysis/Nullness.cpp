//===- analysis/Nullness.cpp - Inter-procedural nullness analysis ---------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/Nullness.h"

#include "analysis/Cfg.h"
#include "analysis/Dataflow.h"
#include "android/Callbacks.h"
#include "support/BitVector.h"
#include "support/Casting.h"
#include "support/FlatMap.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <string>
#include <unordered_map>

using namespace nadroid;
using namespace nadroid::analysis;
using namespace nadroid::ir;

NullVal analysis::joinNullVal(NullVal A, NullVal B) {
  if (A == NullVal::Bottom)
    return B;
  if (B == NullVal::Bottom)
    return A;
  if (A == B)
    return A;
  return NullVal::Maybe;
}

const char *analysis::nullValName(NullVal V) {
  switch (V) {
  case NullVal::Bottom:
    return "bottom";
  case NullVal::Null:
    return "null";
  case NullVal::NonNull:
    return "nonnull";
  case NullVal::Maybe:
    return "maybe";
  }
  return "?";
}

const char *analysis::lintKindName(LintKind Kind) {
  switch (Kind) {
  case LintKind::DoubleFree:
    return "double-free";
  case LintKind::NullDeref:
    return "null-deref";
  case LintKind::RedundantCheck:
    return "redundant-null-check";
  }
  return "?";
}

namespace {

NullFact joinFact(NullFact A, NullFact B) {
  return {joinNullVal(A.Guard, B.Guard), joinNullVal(A.Alloc, B.Alloc)};
}

constexpr NullFact topFact() { return {NullVal::Maybe, NullVal::Maybe}; }

/// Per-local state: the value's fact, which field reference the value
/// mirrors (if loaded from one and not invalidated since), whether the
/// value is the receiver, and the loads that may have defined it.
struct LocalInfo {
  NullFact F = topFact();
  const Local *MirrorBase = nullptr;
  const Field *MirrorField = nullptr;
  bool ThisAlias = false;
  std::set<const LoadStmt *> Defs;

  bool trivial() const {
    return F == topFact() && !MirrorBase && !ThisAlias && Defs.empty();
  }
  friend bool operator==(const LocalInfo &A, const LocalInfo &B) {
    return A.F == B.F && A.MirrorBase == B.MirrorBase &&
           A.MirrorField == B.MirrorField && A.ThisAlias == B.ThisAlias &&
           A.Defs == B.Defs;
  }
};

/// Per-field-reference state. FreeSite is provenance for lint: the store
/// that made the fact Null, when unique.
struct FieldInfo {
  NullFact F = topFact();
  const StoreStmt *FreeSite = nullptr;

  friend bool operator==(const FieldInfo &A, const FieldInfo &B) {
    return A.F == B.F && A.FreeSite == B.FreeSite;
  }
};

using FieldKey = std::pair<const Local *, const Field *>;

struct NState {
  bool Reachable = false;
  // Flat sorted maps: states are copied on every join, and the entry
  // counts are small, so contiguous storage beats node-based maps by a
  // wide margin. Iteration order (pointer order) never reaches output.
  support::FlatMap<const Local *, LocalInfo> Locals; // absent key = ⊤
  support::FlatMap<FieldKey, FieldInfo> Fields;      // absent key = ⊤
};

/// Entry facts for a method: per-`this`-field facts (absent = ⊤).
using EntryFields = std::map<const Field *, NullFact>;

struct MethodState {
  const Method *M = nullptr;
  std::unique_ptr<Cfg> G;
  bool IsRoot = false;
  /// Set for roots and for the no-caller safety net: entry is ⊤.
  bool EntryTop = false;
  bool HasContribution = false;
  EntryFields Entry;
  /// Public-facing summary, materialized from the bit planes once the
  /// whole analysis settles (the sets are what summaryOf exposes).
  MethodSummary Sum;
  /// The live summary during solving: one bit per program field, indexed
  /// by Impl::FieldsByIdx. Starts all-ones (optimistic) and only shrinks.
  support::BitVector SumG, SumA;
  /// RPO nodes containing at least one CallStmt — the only nodes the
  /// non-recording replay has to visit (contributions and summary
  /// shrinking are the only observable effects while solving).
  std::vector<uint32_t> CallNodes;
};

//===----------------------------------------------------------------------===//
// The dataflow domain
//===----------------------------------------------------------------------===//

class NullnessImplRef;

class NullDomain {
public:
  using State = NState;

  NullDomain(const MethodState &MS, NullnessImplRef &Ctx)
      : MS(MS), Ctx(Ctx) {}

  static constexpr DataflowDirection direction() {
    return DataflowDirection::Forward;
  }

  State bottom() const { return {}; }

  State boundary() const {
    State St;
    St.Reachable = true;
    if (!MS.EntryTop) {
      const Local *This = MS.M->thisLocal();
      for (const auto &[F, Fact] : MS.Entry)
        if (Fact != topFact())
          St.Fields[{This, F}] = {Fact, nullptr};
    }
    return St;
  }

  bool join(State &Into, const State &From) const;
  void transferStmt(const Stmt &S, State &St) const;
  void transferEdge(const CfgEdge &E, State &St) const;

  /// `base` normalized so every alias of `this` uses the same key.
  static const Local *normBase(const State &St, const Local *B,
                               const Method &M) {
    if (B->isThis())
      return M.thisLocal();
    auto It = St.Locals.find(B);
    if (It != St.Locals.end() && It->second.ThisAlias)
      return M.thisLocal();
    return B;
  }

  static LocalInfo localInfo(const State &St, const Local *L) {
    if (L->isThis()) {
      LocalInfo LI;
      LI.F = {NullVal::NonNull, NullVal::Maybe};
      LI.ThisAlias = true;
      return LI;
    }
    auto It = St.Locals.find(L);
    return It == St.Locals.end() ? LocalInfo() : It->second;
  }

  static FieldInfo fieldInfo(const State &St, FieldKey K) {
    auto It = St.Fields.find(K);
    return It == St.Fields.end() ? FieldInfo() : It->second;
  }

private:
  void killLocal(State &St, const Local *Dst) const {
    St.Locals.erase(Dst);
    for (auto It = St.Fields.begin(); It != St.Fields.end();) {
      if (It->first.first == Dst)
        It = St.Fields.erase(It);
      else
        ++It;
    }
    for (auto &[L, LI] : St.Locals)
      if (LI.MirrorBase == Dst) {
        LI.MirrorBase = nullptr;
        LI.MirrorField = nullptr;
      }
  }

  const MethodState &MS;
  NullnessImplRef &Ctx;
  /// Scratch for the call-summary intersection — reused across transfers
  /// so applying a summary allocates nothing.
  mutable support::BitVector GuardScratch, AllocScratch;
};

} // namespace

//===----------------------------------------------------------------------===//
// Whole-program implementation
//===----------------------------------------------------------------------===//

namespace {

/// Gives the domain access to summaries and CHA without a dependency
/// cycle; implemented by NullnessAnalysis::Impl below.
class NullnessImplRef {
public:
  virtual ~NullnessImplRef() = default;
  /// CHA targets of call statement \p CS — resolved once during setup,
  /// never re-derived in a transfer.
  virtual const std::vector<const Method *> &
  callTargets(const CallStmt *CS) = 0;
  /// The live summary bit planes of \p M.
  virtual const support::BitVector &sumGuard(const Method *M) const = 0;
  virtual const support::BitVector &sumAlloc(const Method *M) const = 0;
  /// The field with dense index \p I.
  virtual const Field *fieldAt(size_t I) const = 0;
};

} // namespace

bool NullDomain::join(NState &Into, const NState &From) const {
  if (!From.Reachable)
    return false;
  if (!Into.Reachable) {
    Into = From;
    return true;
  }
  bool Changed = false;

  // Locals: pointwise join; a key absent on one side is ⊤ there except
  // for reaching defs, which union (over-approximating defs only ever
  // adds dereference sites a guard must cover — the safe direction).
  for (auto It = Into.Locals.begin(); It != Into.Locals.end();) {
    auto FIt = From.Locals.find(It->first);
    LocalInfo Merged;
    if (FIt == From.Locals.end()) {
      Merged.Defs = It->second.Defs;
    } else {
      const LocalInfo &A = It->second, &B = FIt->second;
      Merged.F = joinFact(A.F, B.F);
      if (A.MirrorBase == B.MirrorBase && A.MirrorField == B.MirrorField) {
        Merged.MirrorBase = A.MirrorBase;
        Merged.MirrorField = A.MirrorField;
      }
      Merged.ThisAlias = A.ThisAlias && B.ThisAlias;
      Merged.Defs = A.Defs;
      Merged.Defs.insert(B.Defs.begin(), B.Defs.end());
    }
    if (!(Merged == It->second)) {
      Changed = true;
      if (Merged.trivial()) {
        It = Into.Locals.erase(It);
        continue;
      }
      It->second = Merged;
    }
    ++It;
  }
  for (const auto &[L, LI] : From.Locals) {
    if (Into.Locals.count(L))
      continue;
    LocalInfo Merged;
    Merged.Defs = LI.Defs; // fact/mirror/alias are ⊤-joined away
    if (!Merged.trivial()) {
      Into.Locals.emplace(L, std::move(Merged));
      Changed = true;
    }
  }

  // Fields: absent = ⊤, so keys missing on either side disappear.
  for (auto It = Into.Fields.begin(); It != Into.Fields.end();) {
    auto FIt = From.Fields.find(It->first);
    if (FIt == From.Fields.end()) {
      It = Into.Fields.erase(It);
      Changed = true;
      continue;
    }
    FieldInfo Merged;
    Merged.F = joinFact(It->second.F, FIt->second.F);
    Merged.FreeSite = It->second.FreeSite == FIt->second.FreeSite
                          ? It->second.FreeSite
                          : nullptr;
    if (Merged.F == topFact() && !Merged.FreeSite) {
      It = Into.Fields.erase(It);
      Changed = true;
      continue;
    }
    if (!(Merged == It->second)) {
      It->second = Merged;
      Changed = true;
    }
    ++It;
  }
  return Changed;
}

void NullDomain::transferStmt(const Stmt &S, NState &St) const {
  if (!St.Reachable)
    return;
  const Method &M = *MS.M;

  switch (S.kind()) {
  case Stmt::Kind::New: {
    const auto *NS = cast<NewStmt>(&S);
    killLocal(St, NS->dst());
    LocalInfo LI;
    LI.F = {NullVal::NonNull, NullVal::NonNull};
    St.Locals[NS->dst()] = LI;
    return;
  }

  case Stmt::Kind::Load: {
    const auto *LS = cast<LoadStmt>(&S);
    const Local *NB = normBase(St, LS->base(), M);
    FieldInfo FI = fieldInfo(St, {NB, LS->field()});
    killLocal(St, LS->dst());
    LocalInfo LI;
    LI.F = FI.F;
    LI.MirrorBase = NB;
    LI.MirrorField = LS->field();
    LI.Defs = {LS};
    St.Locals[LS->dst()] = LI;
    return;
  }

  case Stmt::Kind::Store: {
    const auto *SS = cast<StoreStmt>(&S);
    const Local *NB = normBase(St, SS->base(), M);
    NullFact V{NullVal::Null, NullVal::Null};
    const StoreStmt *Free = SS;
    if (const Local *Src = SS->src()) {
      Free = nullptr;
      if (Src->isThis())
        V = {NullVal::NonNull, NullVal::Maybe};
      else
        V = localInfo(St, Src).F;
    }
    // May-alias bases: any other reference to the same field joins with
    // the stored value (the syntactic analyses invalidate outright).
    for (auto &[K, FI] : St.Fields) {
      if (K.second != SS->field() || K.first == NB)
        continue;
      FI.F = joinFact(FI.F, V);
      if (FI.FreeSite != Free)
        FI.FreeSite = nullptr;
    }
    St.Fields[{NB, SS->field()}] = {V, Free};
    // Locals that mirrored this field no longer do.
    for (auto &[L, LI] : St.Locals)
      if (LI.MirrorField == SS->field()) {
        LI.MirrorBase = nullptr;
        LI.MirrorField = nullptr;
      }
    return;
  }

  case Stmt::Kind::Copy: {
    const auto *CS = cast<CopyStmt>(&S);
    LocalInfo LI = localInfo(St, CS->src());
    killLocal(St, CS->dst());
    if (!LI.trivial())
      St.Locals[CS->dst()] = LI;
    return;
  }

  case Stmt::Kind::Call: {
    const auto *CS = cast<CallStmt>(&S);
    const Local *Recv = CS->recv();
    bool RecvIsThis = Recv->isThis() || localInfo(St, Recv).ThisAlias;

    if (!RecvIsThis) {
      // The dereference succeeded, so the receiver was non-null. Only
      // the local's own guard fact is refined — not any mirrored field,
      // which keeps this exactly as strong as the syntactic analysis on
      // repeated-load shapes.
      LocalInfo &LI = St.Locals[Recv];
      LI.F.Guard = NullVal::NonNull;
    } else {
      // Apply callee summaries: fields every CHA target leaves NonNull.
      const std::vector<const Method *> &Targets = Ctx.callTargets(CS);
      if (!Targets.empty()) {
        const Local *This = M.thisLocal();
        GuardScratch.assignFrom(Ctx.sumGuard(Targets.front()));
        AllocScratch.assignFrom(Ctx.sumAlloc(Targets.front()));
        for (size_t I = 1; I < Targets.size(); ++I) {
          GuardScratch.intersectWith(Ctx.sumGuard(Targets[I]));
          AllocScratch.intersectWith(Ctx.sumAlloc(Targets[I]));
        }
        GuardScratch.forEachSet([&](size_t I) {
          FieldInfo &FI = St.Fields[{This, Ctx.fieldAt(I)}];
          FI.F.Guard = NullVal::NonNull;
          FI.FreeSite = nullptr;
        });
        AllocScratch.forEachSet([&](size_t I) {
          St.Fields[{This, Ctx.fieldAt(I)}].F.Alloc = NullVal::NonNull;
        });
      }
    }
    // Call results are always ⊤ — trusting getters for allocation or
    // guarding is the unsound MA filter's territory, not IG/IA's.
    if (CS->dst())
      killLocal(St, CS->dst());
    return;
  }

  case Stmt::Kind::Return:
  case Stmt::Kind::Sync:
    return; // control flow / atomicity only; no value effects

  case Stmt::Kind::If:
    assert(false && "IfStmt is a terminator, not a leaf");
    return;
  }
}

void NullDomain::transferEdge(const CfgEdge &E, NState &St) const {
  if (!St.Reachable || !E.TestedLocal)
    return;
  const Local *L = E.TestedLocal;
  LocalInfo LI = localInfo(St, L);
  NullVal Refined = E.NonNullOnEdge ? NullVal::NonNull : NullVal::Null;
  NullVal Opposite = E.NonNullOnEdge ? NullVal::Null : NullVal::NonNull;
  if (LI.F.Guard == Opposite) {
    // The branch contradicts an established fact: this edge is
    // infeasible and everything beyond it (until a join with a feasible
    // path) is unreachable.
    St = {};
    return;
  }
  LI.F.Guard = Refined;
  // The alloc plane is untouched: refinements are guards, not
  // allocations.
  St.Locals[L] = LI;
  if (LI.MirrorBase) {
    FieldInfo &FI = St.Fields[{LI.MirrorBase, LI.MirrorField}];
    FI.F.Guard = Refined;
    if (E.NonNullOnEdge)
      FI.FreeSite = nullptr;
  }
}

//===----------------------------------------------------------------------===//
// NullnessAnalysis::Impl
//===----------------------------------------------------------------------===//

namespace nadroid::analysis {

struct NullnessAnalysis::Impl final : NullnessImplRef {
  const Program &P;
  const support::Deadline *D = nullptr;

  std::vector<const Method *> Methods; // deterministic program order
  std::map<const Method *, MethodState> MS;
  /// Class -> (itself + transitive subclasses), for CHA.
  std::map<const Clazz *, std::vector<const Clazz *>> SubTree;
  std::map<std::pair<const Clazz *, std::string>,
           std::vector<const Method *>>
      ChaCache;
  MethodSummary EmptySummary;
  support::BitVector EmptyBits;

  /// Dense field numbering (program order) backing the summary planes.
  std::vector<const Field *> FieldsByIdx;
  std::map<const Field *, unsigned> FieldIdxOf;
  /// Fields of each class-hierarchy family (keyed by the topmost
  /// superclass). A method's summary can only ever mention this-fields,
  /// and `this`, its CHA targets, and its callers all live in one
  /// family — so the family set is a superset of the greatest fixpoint
  /// and seeding from it converges to the same summaries as seeding
  /// from all program fields, without the transient state blowup.
  std::map<const Clazz *, support::BitVector> FamilyBits;

  const Clazz *familyRoot(const Clazz *C) const {
    while (C->superClass())
      C = C->superClass();
    return C;
  }
  /// Per-call-site CHA targets, resolved once in setup — the transfer
  /// functions never touch the string-keyed ChaCache.
  std::unordered_map<const Stmt *, const std::vector<const Method *> *>
      CallTargets;
  /// Worklist plumbing: each method's dense index and, per method, the
  /// (deduplicated) indices of methods with a call site targeting it.
  std::map<const Method *, unsigned> IdxOf;
  std::vector<std::vector<unsigned>> Callers;

  // Recorded results (filled by the final sweep).
  std::map<const LoadStmt *, NullFact> AtLoad;
  std::map<const LoadStmt *, unsigned> DerefCount;
  std::set<const LoadStmt *> UnsafeDeref;
  std::set<const LoadStmt *> SeenLoads; // loads in reachable nodes

  Impl(const Program &P, const support::Deadline *D) : P(P), D(D) {}

  const std::vector<const Method *> &
  chaTargets(const Clazz *C, const std::string &Name) {
    auto Key = std::make_pair(C, Name);
    auto It = ChaCache.find(Key);
    if (It != ChaCache.end())
      return It->second;
    std::vector<const Method *> Targets;
    for (const Clazz *Sub : SubTree[C]) {
      const Method *T = Sub->findMethod(Name);
      if (T && std::find(Targets.begin(), Targets.end(), T) == Targets.end())
        Targets.push_back(T);
    }
    return ChaCache.emplace(Key, std::move(Targets)).first->second;
  }

  const std::vector<const Method *> &
  callTargets(const CallStmt *CS) override {
    auto It = CallTargets.find(CS);
    assert(It != CallTargets.end() && "call site missed by setup");
    return *It->second;
  }

  const support::BitVector &sumGuard(const Method *M) const override {
    auto It = MS.find(M);
    return It == MS.end() ? EmptyBits : It->second.SumG;
  }

  const support::BitVector &sumAlloc(const Method *M) const override {
    auto It = MS.find(M);
    return It == MS.end() ? EmptyBits : It->second.SumA;
  }

  const Field *fieldAt(size_t I) const override { return FieldsByIdx[I]; }

  /// What one analyzeOnce changed, for worklist scheduling: whether this
  /// method's own summary shrank, and which callees' entry states rose.
  struct SolveDelta {
    bool SumChanged = false;
    std::vector<const Method *> DirtyEntries;
  };

  void setup();
  void analyzeOnce(MethodState &State, bool Record,
                   std::vector<LintFinding> *Lints,
                   SolveDelta *Delta = nullptr);
  void run(std::vector<LintFinding> &Findings);
};

} // namespace nadroid::analysis

void NullnessAnalysis::Impl::setup() {
  // Program order + subclass closure + dense field numbering.
  for (const auto &C : P.classes()) {
    for (const Clazz *A = C.get(); A; A = A->superClass())
      SubTree[A].push_back(C.get());
    for (const auto &M : C->methods())
      Methods.push_back(M.get());
    for (const auto &F : C->fields())
      FieldsByIdx.push_back(F.get());
  }
  for (unsigned I = 0; I < FieldsByIdx.size(); ++I)
    FieldIdxOf[FieldsByIdx[I]] = I;
  EmptyBits = support::BitVector(FieldsByIdx.size());
  for (const auto &C : P.classes()) {
    auto [It, New] = FamilyBits.try_emplace(familyRoot(C.get()),
                                            FieldsByIdx.size());
    for (const auto &F : C->fields())
      It->second.set(FieldIdxOf[F.get()]);
    (void)New;
  }

  // Root detection: framework callbacks, plus any method name invoked
  // through a receiver that is not (a syntactic copy of) `this` —
  // over-approximate on purpose; extra roots only weaken entry states.
  std::set<std::string> NonThisCallees;
  for (const Method *M : Methods) {
    std::set<const Local *> ThisCopies;
    ThisCopies.insert(M->thisLocal());
    // Transitive closure of `x = this` / `y = x` copies.
    bool Grew = true;
    while (Grew) {
      Grew = false;
      forEachStmt(*M, [&](const Stmt &S) {
        if (const auto *CS = dyn_cast<CopyStmt>(&S))
          if (ThisCopies.count(CS->src()) && !ThisCopies.count(CS->dst())) {
            ThisCopies.insert(CS->dst());
            Grew = true;
          }
      });
    }
    forEachStmt(*M, [&](const Stmt &S) {
      if (const auto *CS = dyn_cast<CallStmt>(&S))
        if (!ThisCopies.count(CS->recv()))
          NonThisCallees.insert(CS->callee());
    });
  }

  for (unsigned I = 0; I < Methods.size(); ++I)
    IdxOf[Methods[I]] = I;
  Callers.resize(Methods.size());

  for (const Method *M : Methods) {
    MethodState &State = MS[M];
    State.M = M;
    State.G = std::make_unique<Cfg>(*M);
    bool Callback = android::classifyCallback(M->parent()->kind(),
                                              M->name()) !=
                    android::CallbackKind::None;
    State.IsRoot = Callback || NonThisCallees.count(M->name());
    State.EntryTop = State.IsRoot;
  }

  // Resolve every call site's CHA target set once, record the reverse
  // call graph, and note which CFG nodes the non-recording replay needs.
  for (const Method *M : Methods) {
    MethodState &State = MS[M];
    const unsigned MIdx = IdxOf[M];
    forEachStmt(*M, [&](const Stmt &S) {
      const auto *CS = dyn_cast<CallStmt>(&S);
      if (!CS)
        return;
      const std::vector<const Method *> &Targets =
          chaTargets(M->parent(), CS->callee());
      CallTargets.emplace(CS, &Targets);
      for (const Method *T : Targets)
        Callers[IdxOf[T]].push_back(MIdx);
    });
    for (uint32_t N : State.G->rpo()) {
      const CfgNode &Node = State.G->node(N);
      if (std::any_of(Node.Stmts.begin(), Node.Stmts.end(),
                      [](const Stmt *S) { return isa<CallStmt>(S); }))
        State.CallNodes.push_back(N);
    }
  }
  for (std::vector<unsigned> &C : Callers) {
    std::sort(C.begin(), C.end());
    C.erase(std::unique(C.begin(), C.end()), C.end());
  }
}

/// Runs one method to its intra-procedural fixpoint under the current
/// entry/summaries; shrinks its summary and raises callee entries. When
/// \p Record is set, also fills the per-load/per-deref tables and lint
/// findings. When \p Delta is set, reports what changed so the caller
/// can schedule exactly the affected methods.
void NullnessAnalysis::Impl::analyzeOnce(MethodState &State, bool Record,
                                         std::vector<LintFinding> *Lints,
                                         SolveDelta *Delta) {
  const Method &M = *State.M;
  NullDomain D(State, *this);
  DataflowSolver<NullDomain> Solver(*State.G, D);
  Solver.solve();

  // Walk nodes, replaying facts per statement. Only call statements have
  // observable effects while solving (callee-entry contributions), so
  // the non-recording pass visits just the nodes that contain one.
  auto VisitNode = [&](uint32_t N) {
    if (!Solver.inState(N).Reachable)
      return;
    NState End = Solver.replayNode(N, [&](const Stmt *S, const NState &St) {
      if (!St.Reachable)
        return;
      switch (S->kind()) {
      case Stmt::Kind::Load: {
        const auto *LS = cast<LoadStmt>(S);
        if (Record) {
          const Local *NB = NullDomain::normBase(St, LS->base(), M);
          AtLoad[LS] = NullDomain::fieldInfo(St, {NB, LS->field()}).F;
          SeenLoads.insert(LS);
        }
        break;
      }
      case Stmt::Kind::Store: {
        const auto *SS = cast<StoreStmt>(S);
        if (Record && Lints && SS->isNullStore()) {
          const Local *NB = NullDomain::normBase(St, SS->base(), M);
          FieldInfo FI = NullDomain::fieldInfo(St, {NB, SS->field()});
          if (FI.F.Guard == NullVal::Null)
            Lints->push_back({LintKind::DoubleFree, SS, FI.FreeSite,
                              SS->field(), false});
        }
        break;
      }
      case Stmt::Kind::Call: {
        const auto *CS = cast<CallStmt>(S);
        const Local *Recv = CS->recv();
        LocalInfo RLI = NullDomain::localInfo(St, Recv);
        bool RecvIsThis = Recv->isThis() || RLI.ThisAlias;
        if (RecvIsThis) {
          // A this-call: contribute the caller's `this`-field state to
          // every CHA target's entry.
          for (const Method *T : callTargets(CS)) {
            MethodState &TS = MS[T];
            if (TS.EntryTop)
              continue;
            bool EntryChanged = false;
            EntryFields Contribution;
            for (const auto &[K, FI] : St.Fields)
              if (K.first == M.thisLocal())
                Contribution[K.second] = FI.F;
            if (!TS.HasContribution) {
              TS.HasContribution = true;
              TS.Entry = std::move(Contribution);
              EntryChanged = true;
            } else {
              // Join: a key missing from the contribution is ⊤ there.
              for (auto It = TS.Entry.begin(); It != TS.Entry.end();) {
                auto CIt = Contribution.find(It->first);
                NullFact Merged = CIt == Contribution.end()
                                      ? topFact()
                                      : joinFact(It->second, CIt->second);
                if (Merged == topFact()) {
                  It = TS.Entry.erase(It);
                  EntryChanged = true;
                  continue;
                }
                if (Merged != It->second) {
                  It->second = Merged;
                  EntryChanged = true;
                }
                ++It;
              }
            }
            if (EntryChanged && Delta)
              Delta->DirtyEntries.push_back(T);
          }
        } else if (Record) {
          // A dereference: tally it against the loads that defined the
          // receiver (the dataflow replacement for the syntactic
          // check-then-dereference pattern).
          for (const LoadStmt *DefL : RLI.Defs) {
            ++DerefCount[DefL];
            if (RLI.F.Guard != NullVal::NonNull)
              UnsafeDeref.insert(DefL);
          }
          if (Lints && RLI.F.Guard == NullVal::Null) {
            const Stmt *Prior = nullptr;
            if (RLI.MirrorBase)
              Prior = NullDomain::fieldInfo(
                          St, {RLI.MirrorBase, RLI.MirrorField})
                          .FreeSite;
            Lints->push_back(
                {LintKind::NullDeref, CS, Prior, RLI.MirrorField, false});
          }
        }
        break;
      }
      default:
        break;
      }
    });

    // The branch terminator, for the redundant-check lint.
    const CfgNode &Node = State.G->node(N);
    if (Record && Lints && Node.Term && End.Reachable &&
        Node.Term->test() != IfStmt::TestKind::Unknown) {
      NullVal CondV = NullDomain::localInfo(End, Node.Term->cond()).F.Guard;
      if (CondV == NullVal::NonNull || CondV == NullVal::Null) {
        bool TestIsNotNull = Node.Term->test() == IfStmt::TestKind::NotNull;
        bool AlwaysThen = (CondV == NullVal::NonNull) == TestIsNotNull;
        Lints->push_back(
            {LintKind::RedundantCheck, Node.Term, nullptr, nullptr,
             AlwaysThen});
      }
    }
  };

  if (Record) {
    for (uint32_t N : State.G->rpo())
      VisitNode(N);
  } else {
    for (uint32_t N : State.CallNodes)
      VisitNode(N);
  }

  // Shrink the summary toward the exit state: a field stays ensured only
  // when its fact at the (always reachable) exit is NonNull — i.e. the
  // plane intersects with the exit's NonNull field set. An unreachable
  // exit clears everything, exactly as the per-field erase did.
  const NState &Exit = Solver.inState(State.G->exit());
  support::BitVector ExitG(FieldsByIdx.size()), ExitA(FieldsByIdx.size());
  if (Exit.Reachable) {
    const Local *This = M.thisLocal();
    for (const auto &[K, FI] : Exit.Fields) {
      if (K.first != This)
        continue;
      auto It = FieldIdxOf.find(K.second);
      if (It == FieldIdxOf.end())
        continue;
      size_t Idx = It->second;
      if (FI.F.Guard == NullVal::NonNull)
        ExitG.set(Idx);
      if (FI.F.Alloc == NullVal::NonNull)
        ExitA.set(Idx);
    }
  }
  bool SumChanged = State.SumG.intersectWith(ExitG);
  SumChanged |= State.SumA.intersectWith(ExitA);
  if (SumChanged && Delta)
    Delta->SumChanged = true;
}

void NullnessAnalysis::Impl::run(std::vector<LintFinding> &Findings) {
  setup();

  // Optimistic summaries: every field "ensured" until an analysis
  // disproves it. Summaries only shrink and entries only rise, so the
  // whole system is monotone with a unique fixpoint independent of the
  // order methods are solved in; the cap is a safety valve, after which
  // summaries are dropped wholesale (sound, just imprecise).
  for (const Method *M : Methods) {
    const support::BitVector &Fam = FamilyBits[familyRoot(M->parent())];
    MS[M].SumG = Fam;
    MS[M].SumA = Fam;
  }

  // Worklist fixpoint, seeded with the roots: a method re-solves only
  // when its entry rose or a callee's summary shrank. The set keeps
  // program order — cheap determinism, though any order converges to
  // the same fixpoint.
  std::set<unsigned> Worklist;
  for (unsigned I = 0; I < Methods.size(); ++I)
    if (MS[Methods[I]].EntryTop)
      Worklist.insert(I);

  const size_t MaxSolves = 64 * Methods.size();
  size_t Solves = 0;
  bool CapHit = false;
  while (!Worklist.empty()) {
    if (Solves >= MaxSolves) {
      CapHit = true;
      break;
    }
    // Safe point: between methods the fixpoint is just unfinished.
    if (D)
      D->check("nullness");
    const unsigned Idx = *Worklist.begin();
    Worklist.erase(Worklist.begin());
    MethodState &State = MS[Methods[Idx]];
    if (!State.EntryTop && !State.HasContribution)
      continue; // nothing reaches it yet
    ++Solves;
    SolveDelta Delta;
    analyzeOnce(State, /*Record=*/false, nullptr, &Delta);
    if (Delta.SumChanged)
      for (unsigned Caller : Callers[Idx]) {
        const MethodState &CS = MS[Methods[Caller]];
        if (CS.EntryTop || CS.HasContribution)
          Worklist.insert(Caller);
      }
    for (const Method *T : Delta.DirtyEntries)
      Worklist.insert(IdxOf[T]);
  }
  if (CapHit) {
    // Cap hit (possible only with pathological recursion): fall back to
    // no inter-procedural facts at all.
    for (const Method *M : Methods) {
      MS[M].SumG.clearAll();
      MS[M].SumA.clearAll();
      MS[M].EntryTop = true;
    }
    for (const Method *M : Methods)
      analyzeOnce(MS[M], /*Record=*/false, nullptr);
  }

  // Safety net: methods nothing reached are analyzed intra-procedurally
  // with a ⊤ entry, so every reachable statement gets facts.
  for (const Method *M : Methods) {
    MethodState &State = MS[M];
    if (!State.EntryTop && !State.HasContribution) {
      State.EntryTop = true;
      // Its summary was never shrunk; reset it rather than trusting the
      // optimistic initial value.
      State.SumG.clearAll();
      State.SumA.clearAll();
      analyzeOnce(State, /*Record=*/false, nullptr);
    }
  }

  // Final recording sweep with the fixpoint facts.
  for (const Method *M : Methods) {
    if (D)
      D->check("nullness");
    analyzeOnce(MS[M], /*Record=*/true, &Findings);
  }

  // Materialize the public summaries from the settled bit planes.
  for (const Method *M : Methods) {
    MethodState &State = MS[M];
    State.Sum.EnsuresGuard.clear();
    State.Sum.EnsuresAlloc.clear();
    State.SumG.forEachSet(
        [&](size_t I) { State.Sum.EnsuresGuard.insert(FieldsByIdx[I]); });
    State.SumA.forEachSet(
        [&](size_t I) { State.Sum.EnsuresAlloc.insert(FieldsByIdx[I]); });
  }

  std::sort(Findings.begin(), Findings.end(),
            [](const LintFinding &A, const LintFinding &B) {
              const Method *MA = A.At->parentMethod();
              const Method *MB = B.At->parentMethod();
              if (MA->id() != MB->id())
                return MA->id() < MB->id();
              return A.At->id() < B.At->id();
            });
}

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

NullnessAnalysis::NullnessAnalysis(const Program &P,
                                   const support::Deadline *D)
    : I(std::make_unique<Impl>(P, D)) {
  I->run(Findings);
}

NullnessAnalysis::~NullnessAnalysis() = default;

bool NullnessAnalysis::isGuarded(const LoadStmt *L) const {
  if (!I->SeenLoads.count(L))
    return true; // statically unreachable: no execution reaches the use
  auto It = I->AtLoad.find(L);
  if (It != I->AtLoad.end() && It->second.Guard == NullVal::NonNull)
    return true;
  auto DIt = I->DerefCount.find(L);
  return DIt != I->DerefCount.end() && DIt->second > 0 &&
         !I->UnsafeDeref.count(L);
}

bool NullnessAnalysis::isAllocProtected(const LoadStmt *L) const {
  if (!I->SeenLoads.count(L))
    return true;
  auto It = I->AtLoad.find(L);
  return It != I->AtLoad.end() && It->second.Alloc == NullVal::NonNull;
}

std::optional<NullFact> NullnessAnalysis::factAtLoad(const LoadStmt *L) const {
  auto It = I->AtLoad.find(L);
  if (It == I->AtLoad.end())
    return std::nullopt;
  return It->second;
}

const MethodSummary *NullnessAnalysis::summaryOf(const Method &M) const {
  auto It = I->MS.find(&M);
  return It == I->MS.end() ? nullptr : &It->second.Sum;
}

bool NullnessAnalysis::isRoot(const Method &M) const {
  auto It = I->MS.find(&M);
  return It != I->MS.end() && It->second.IsRoot;
}
