//===- analysis/PointsTo.h - k-object-sensitive points-to -------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Chord-equivalent substrate (§5): an inclusion-based (Andersen)
/// points-to analysis with k-object-sensitive heap naming and an
/// on-the-fly call graph, run over the threadified program.
///
/// Abstract objects are (allocation site, heap context) pairs, where the
/// heap context is the allocator's receiver-object site chain truncated to
/// k-1 entries (k = 2 by default, matching the paper). Components the
/// Android runtime instantiates get synthetic allocation sites. Method
/// analysis contexts are receiver objects, so virtual dispatch, parameter
/// binding, and field flow are all context-sensitive.
///
/// Framework-API calls contribute *spawn edges* instead of call edges:
/// post/sendMessage/bindService/registerReceiver/set*Listener/execute/
/// start make their target callback reachable with the posted object as
/// receiver; SpawnRecords preserve which site installed which context so
/// ThreadReach can attribute code to modeled threads.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_ANALYSIS_POINTSTO_H
#define NADROID_ANALYSIS_POINTSTO_H

#include "android/Api.h"
#include "ir/Stmt.h"
#include "support/Deadline.h"
#include "support/Statistic.h"
#include "threadify/ThreadForest.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace nadroid::analysis {

/// Index into PointsToAnalysis::objects().
using ObjectId = uint32_t;

/// An abstract heap object: a real NewStmt or a synthetic component
/// allocation, qualified by a truncated allocator-site chain.
struct AbstractObject {
  /// The allocation statement; nullptr for synthetic component objects.
  const ir::NewStmt *Site = nullptr;
  /// The component class for synthetic objects.
  const ir::Clazz *Synthetic = nullptr;
  /// Heap context: allocator receiver's site chain, length ≤ k-1. Keys are
  /// NewStmt* or Clazz* pointers (identity only).
  std::vector<const void *> HeapCtx;
  /// The object's runtime class (drives virtual dispatch).
  ir::Clazz *RuntimeClass = nullptr;

  const void *siteKey() const {
    return Site ? static_cast<const void *>(Site)
                : static_cast<const void *>(Synthetic);
  }

  /// Human-readable name for reports, e.g. "new Binder@12 [MainActivity]".
  std::string describe() const;
};

/// A context-qualified method: analyzed once per receiver object.
struct MethodCtx {
  ir::Method *M = nullptr;
  ObjectId Recv = 0;

  friend bool operator<(const MethodCtx &A, const MethodCtx &B) {
    if (A.M != B.M)
      return A.M < B.M;
    return A.Recv < B.Recv;
  }
  friend bool operator==(const MethodCtx &A, const MethodCtx &B) {
    return A.M == B.M && A.Recv == B.Recv;
  }
};

/// One spawn edge: an API call installed callback \p Target with receiver
/// \p Recv, from poster context \p Poster.
struct SpawnRecord {
  const ir::CallStmt *Site = nullptr;
  android::ApiKind Kind = android::ApiKind::None;
  ir::Method *Target = nullptr;
  ObjectId Recv = 0;
  MethodCtx Poster;

  friend bool operator<(const SpawnRecord &A, const SpawnRecord &B) {
    return std::tie(A.Site, A.Kind, A.Target, A.Recv, A.Poster) <
           std::tie(B.Site, B.Kind, B.Target, B.Recv, B.Poster);
  }
};

/// Runs the analysis over a threadified program and answers queries.
class PointsToAnalysis {
public:
  struct Options {
    /// Context depth. k=1 is context-insensitive heap naming; k=2 is the
    /// paper's default balance of precision and scalability (§8.5).
    unsigned K = 2;
    /// Optional cooperative deadline (not owned), polled once per
    /// context in the fixpoint sweep; expiry throws DeadlineExceeded
    /// out of run().
    const support::Deadline *Deadline = nullptr;
  };

  PointsToAnalysis(const ir::Program &P,
                   const threadify::ThreadForest &Forest,
                   const android::ApiIndex &Apis, Options Opts);
  /// Convenience: the paper's default k=2.
  PointsToAnalysis(const ir::Program &P,
                   const threadify::ThreadForest &Forest,
                   const android::ApiIndex &Apis);

  /// Solves to fixpoint. Must be called exactly once before any query.
  void run();

  //===--------------------------------------------------------------------===//
  // Queries
  //===--------------------------------------------------------------------===//

  const AbstractObject &object(ObjectId Id) const { return Objects[Id]; }
  size_t objectCount() const { return Objects.size(); }

  /// Points-to set of \p L when its method runs in context \p Ctx; empty
  /// set when unknown.
  const std::set<ObjectId> &ptsOf(const ir::Local *L,
                                  const MethodCtx &Ctx) const;

  /// Field points-to set of (\p Obj, \p F).
  const std::set<ObjectId> &fieldPts(ObjectId Obj, const ir::Field *F) const;

  /// Every (method, receiver) pair the solver reached.
  const std::set<MethodCtx> &reachableContexts() const { return Reachable; }

  /// Ordinary call edges (caller ctx → callee ctx), excluding spawns.
  const std::map<MethodCtx, std::set<MethodCtx>> &callEdges() const {
    return CallEdges;
  }

  /// All spawn edges recorded during the solve.
  const std::set<SpawnRecord> &spawnRecords() const { return Spawns; }

  /// The synthetic object for component \p C, creating it if the solve
  /// seeded one; returns false when \p C was never seeded.
  bool syntheticObjectFor(const ir::Clazz *C, ObjectId &IdOut) const;

  /// Counters: "pointsto.sweeps", "pointsto.contexts", "pointsto.objects",
  /// "pointsto.calledges", "pointsto.spawns".
  const StatRegistry &stats() const { return Stats; }

private:
  const ir::Program &P;
  const threadify::ThreadForest &Forest;
  const android::ApiIndex &Apis;
  Options Opts;

  std::vector<AbstractObject> Objects;
  std::map<std::pair<const void *, std::vector<const void *>>, ObjectId>
      ObjectIntern;
  std::map<const ir::Clazz *, ObjectId> SyntheticByClass;

  using VarKey = std::pair<const ir::Local *, ObjectId>;
  std::map<VarKey, std::set<ObjectId>> VarPts;
  using FieldKey = std::pair<ObjectId, const ir::Field *>;
  std::map<FieldKey, std::set<ObjectId>> FieldPtsMap;
  using RetKey = std::pair<const ir::Method *, ObjectId>;
  std::map<RetKey, std::set<ObjectId>> RetPts;

  std::set<MethodCtx> Reachable;
  std::vector<MethodCtx> ReachableList;
  std::map<MethodCtx, std::set<MethodCtx>> CallEdges;
  std::set<SpawnRecord> Spawns;

  StatRegistry Stats;
  bool Changed = false;
  bool HasRun = false;

  ObjectId internObject(const void *SiteKey, const ir::NewStmt *Site,
                        const ir::Clazz *Synthetic,
                        std::vector<const void *> HeapCtx,
                        ir::Clazz *RuntimeClass);
  ObjectId syntheticObject(ir::Clazz *C);
  /// Heap context for an allocation inside receiver object \p Recv.
  std::vector<const void *> heapCtxFor(ObjectId Recv) const;

  void addReachable(ir::Method *M, ObjectId Recv);
  void seedRoots();
  void sweep();
  void processContext(const MethodCtx &Ctx);
  void processStmt(const ir::Stmt &S, const MethodCtx &Ctx);
  void processOrdinaryCall(const ir::CallStmt &Call, const MethodCtx &Ctx);
  void processApiCall(const ir::CallStmt &Call,
                      const android::ApiCallInfo &Info,
                      const MethodCtx &Ctx);
  void spawn(const ir::CallStmt &Call, android::ApiKind Kind,
             ir::Method *Target, ObjectId Recv, const MethodCtx &Poster);

  std::set<ObjectId> &varSet(const ir::Local *L, ObjectId Recv) {
    return VarPts[{L, Recv}];
  }
  bool addAll(std::set<ObjectId> &Dst, const std::set<ObjectId> &Src);
  bool addOne(std::set<ObjectId> &Dst, ObjectId Id);
};

} // namespace nadroid::analysis

#endif // NADROID_ANALYSIS_POINTSTO_H
