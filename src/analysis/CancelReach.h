//===- analysis/CancelReach.h - Cancellation reachability (CHB) -*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// May-reachability of cancellation APIs for the CHB filter (§6.2.1): for
/// a callback method, which of finish / unbindService /
/// unregisterReceiver / removeCallbacksAndMessages it may invoke
/// (transitively, path-insensitively). The deliberate path-insensitivity
/// — one error-handling path through finish() counts — is what produces
/// the paper's three injected-bug false negatives (§8.6).
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_ANALYSIS_CANCELREACH_H
#define NADROID_ANALYSIS_CANCELREACH_H

#include "android/Api.h"

#include <map>
#include <mutex>
#include <vector>

namespace nadroid::analysis {

class HbQuery;

/// One reachable cancellation call.
struct CancelInfo {
  android::ApiKind Kind = android::ApiKind::None;
  /// What the cancellation targets: the activity class for finish, the
  /// connection/receiver class for unbind/unregister when resolvable
  /// (nullptr = "all of this component's"), the handler class for
  /// removeCallbacksAndMessages.
  ir::Clazz *Target = nullptr;
  const ir::CallStmt *Site = nullptr;
};

/// Lazily computes and caches cancellations reachable from methods.
/// With an HbQuery attached, the per-root reachability walk reads the
/// shared program-wide memo instead of re-running the syntactic BFS —
/// same discovery order, computed once per program.
class CancelReach {
public:
  CancelReach(const ir::Program &P, const android::ApiIndex &Apis,
              const HbQuery *HQ = nullptr)
      : Apis(Apis), HQ(HQ) {
    (void)P;
  }

  /// Cancellation APIs \p M may reach over ordinary calls.
  const std::vector<CancelInfo> &cancelsFrom(ir::Method *M) const;

private:
  const android::ApiIndex &Apis;
  const HbQuery *HQ = nullptr;
  /// Guards Cache against the filter engine's parallel verdict loop;
  /// map node stability keeps returned references valid.
  mutable std::mutex CacheMu;
  mutable std::map<const ir::Method *, std::vector<CancelInfo>> Cache;
};

} // namespace nadroid::analysis

#endif // NADROID_ANALYSIS_CANCELREACH_H
