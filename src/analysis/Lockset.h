//===- analysis/Lockset.h - Lockset analysis --------------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locks held at a statement. Per §5, nAdroid ignores locksets for the
/// detection itself (locks provide atomicity, not ordering) and consults
/// them only inside the IG/IA filters: an if-guard or intra-allocation is
/// safe across *threads* only when both sides hold a common lock (§6.1.2).
/// The lockset is the statically-enclosing synchronized regions' lock
/// objects under the queried context (intra-procedural nesting, like
/// Chord's per-method monitor regions).
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_ANALYSIS_LOCKSET_H
#define NADROID_ANALYSIS_LOCKSET_H

#include "analysis/PointsTo.h"

#include <mutex>

namespace nadroid::analysis {

/// Answers "which abstract lock objects are held at statement S in context
/// Ctx". Nesting maps are built lazily per method and cached.
class LocksetAnalysis {
public:
  explicit LocksetAnalysis(const PointsToAnalysis &PTA) : PTA(PTA) {}

  /// Lock objects held at \p S when its method runs in \p Ctx.
  std::set<ObjectId> locksHeldAt(const ir::Stmt *S,
                                 const MethodCtx &Ctx) const;

  /// The SyncStmts statically enclosing \p S within its method.
  const std::vector<const ir::SyncStmt *> &
  enclosingSyncs(const ir::Stmt *S) const;

private:
  const PointsToAnalysis &PTA;
  /// Guards NestingCache: the filter engine queries locksets from its
  /// parallel verdict loop. Map nodes are stable, so references handed
  /// out remain valid after later insertions.
  mutable std::mutex CacheMu;
  mutable std::map<const ir::Method *,
                   std::map<const ir::Stmt *,
                            std::vector<const ir::SyncStmt *>>>
      NestingCache;

  const std::map<const ir::Stmt *, std::vector<const ir::SyncStmt *>> &
  nestingFor(const ir::Method *M) const;
};

} // namespace nadroid::analysis

#endif // NADROID_ANALYSIS_LOCKSET_H
