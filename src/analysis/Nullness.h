//===- analysis/Nullness.h - Inter-procedural nullness analysis -*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flow-sensitive, summary-based inter-procedural nullness analysis
/// over the Cfg/Dataflow framework. It subsumes the two syntactic
/// analyses the IG and IA filters were built on (Guards.cpp,
/// AllocFlow.cpp) and closes the §8.7 gap the paper concedes: a null
/// check in a caller now protects a dereference in a callee.
///
/// Lattice. Every value carries a pair of facts from the four-point
/// lattice  ⊥ < {Null, NonNull} < MaybeNull :
///
///  * the *guard* plane — what null tests, allocations and stores prove
///    about the value. Drives the IG filter ("is this use guarded?")
///    and the lint checkers.
///
///  * the *alloc* plane — what only allocations prove. Null-test
///    refinements deliberately do not touch it, so it reproduces the IA
///    filter's "a fresh allocation dominates the use" (§6.1.3) without
///    conflating it with guardedness; the two filters keep distinct
///    attribution in Figure 5.
///
/// State. Per program point: facts for locals and for field references
/// keyed (base local, field) — the same key the syntactic guard
/// analysis used, so `g = this.f; if (g != null) { u = this.f; ... }`
/// re-load guards work: a local remembers which field reference it
/// *mirrors*, and a branch refinement on the local refines the mirrored
/// field too. Locals also carry their reaching load-definitions, which
/// replaces the syntactic check-then-dereference pattern: a load is
/// guarded when it has at least one dereference and every dereference
/// it reaches sees a NonNull receiver.
///
/// Calls. Per the paper's §6.1.3 assumption, calls preserve field facts
/// intra-procedurally. Summaries strengthen this conservatively in one
/// direction only: a summary records the fields a callee leaves NonNull
/// on every exit (per plane), and call results are always MaybeNull —
/// never a source of guardedness or allocation facts. That asymmetry is
/// what keeps the dataflow filters a strict *superset* of the syntactic
/// ones (nothing the old analyses proved is lost, and the unsound MA
/// filter's territory — trusting getter results — is not annexed).
///
/// Inter-procedural composition. Entry states start ⊤ at *roots*
/// (framework callbacks and targets of non-this calls) and are the join
/// of caller states at this-call sites elsewhere, resolved by CHA over
/// subclass overrides. Summaries start optimistic and only shrink;
/// entries only rise — the whole system is monotone and converges.
/// Methods no caller reaches are analyzed with a ⊤ entry as a safety
/// net, so every statement of every method has facts.
///
/// The same facts feed three AIR lint checkers (see findings()):
/// double-free, dereference-of-definitely-null, and redundant
/// null-check.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_ANALYSIS_NULLNESS_H
#define NADROID_ANALYSIS_NULLNESS_H

#include "ir/Ir.h"
#include "ir/Stmt.h"
#include "support/Deadline.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <vector>

namespace nadroid::analysis {

/// The four-point nullness lattice: Bottom < {Null, NonNull} < Maybe.
enum class NullVal : uint8_t { Bottom, Null, NonNull, Maybe };

NullVal joinNullVal(NullVal A, NullVal B);
const char *nullValName(NullVal V);

/// One value's facts on both planes (see file comment).
struct NullFact {
  NullVal Guard = NullVal::Maybe;
  NullVal Alloc = NullVal::Maybe;

  friend bool operator==(const NullFact &A, const NullFact &B) {
    return A.Guard == B.Guard && A.Alloc == B.Alloc;
  }
  friend bool operator!=(const NullFact &A, const NullFact &B) {
    return !(A == B);
  }
};

/// What a method guarantees its callers about `this`-fields, per plane:
/// the field is non-null at every exit. Call results and parameter
/// effects are deliberately absent (see file comment).
struct MethodSummary {
  std::set<const ir::Field *> EnsuresGuard;
  std::set<const ir::Field *> EnsuresAlloc;
};

/// AIR-level lint findings produced from the same nullness facts.
enum class LintKind : uint8_t {
  DoubleFree,     ///< Store of null to a field that is already Null.
  NullDeref,      ///< Call through a receiver that is definitely Null.
  RedundantCheck, ///< Null test whose outcome is statically known.
};

const char *lintKindName(LintKind Kind);

struct LintFinding {
  LintKind Kind;
  /// The offending statement (the second free, the call, the if).
  const ir::Stmt *At = nullptr;
  /// Supporting statement when known: the first free for DoubleFree and
  /// NullDeref (where the value was nulled), else nullptr.
  const ir::Stmt *Prior = nullptr;
  /// The field involved, when the finding is about a field.
  const ir::Field *F = nullptr;
  /// For RedundantCheck: true when the test always takes the then-edge.
  bool AlwaysThen = false;
};

/// Whole-program nullness. Construction runs the analysis to fixpoint;
/// queries are O(log n) lookups.
class NullnessAnalysis {
public:
  /// \p D (not owned, may be null) is polled once per method per
  /// fixpoint round; expiry throws DeadlineExceeded from the ctor.
  explicit NullnessAnalysis(const ir::Program &P,
                            const support::Deadline *D = nullptr);
  ~NullnessAnalysis();

  NullnessAnalysis(const NullnessAnalysis &) = delete;
  NullnessAnalysis &operator=(const NullnessAnalysis &) = delete;

  /// IG's question: is this field load's value guarded — proven
  /// non-null where it is loaded, or null-checked before every
  /// dereference it reaches (with at least one dereference)?
  /// Loads on statically infeasible paths count as guarded.
  bool isGuarded(const ir::LoadStmt *L) const;

  /// IA's question: does an allocation reach this load on every path
  /// (alloc plane NonNull at the load)?
  bool isAllocProtected(const ir::LoadStmt *L) const;

  /// The field fact at \p L, or nullopt when the load is unreachable.
  std::optional<NullFact> factAtLoad(const ir::LoadStmt *L) const;

  /// The summary computed for \p M (null when \p M is unknown).
  const MethodSummary *summaryOf(const ir::Method &M) const;

  /// True when \p M 's entry state is ⊤ (framework callback, target of
  /// a non-this call, or the no-caller safety net).
  bool isRoot(const ir::Method &M) const;

  /// All lint findings, in deterministic (method, statement) order.
  const std::vector<LintFinding> &findings() const { return Findings; }

private:
  struct Impl;
  std::unique_ptr<Impl> I;
  std::vector<LintFinding> Findings;
};

} // namespace nadroid::analysis

#endif // NADROID_ANALYSIS_NULLNESS_H
