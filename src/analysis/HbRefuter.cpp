//===- analysis/HbRefuter.cpp - May-HB refutation engine ----------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/HbRefuter.h"

#include <set>
#include <sstream>

using namespace nadroid;
using namespace nadroid::analysis;
using namespace nadroid::ir;
using android::FrameworkSpec;
using threadify::ModeledThread;
using threadify::ThreadOrigin;

namespace {

/// Per-component lifecycle phase of the abstract state machine. Values
/// mirror FrameworkSpec::Phase (the spec's phase rules index this enum).
enum Phase : uint8_t { NotCreated = 0, Resumed = 1, Paused = 2, Destroyed = 3 };
static_assert(static_cast<uint8_t>(FrameworkSpec::Phase::NotCreated) ==
                  NotCreated &&
              static_cast<uint8_t>(FrameworkSpec::Phase::Resumed) == Resumed &&
              static_cast<uint8_t>(FrameworkSpec::Phase::Paused) == Paused &&
              static_cast<uint8_t>(FrameworkSpec::Phase::Destroyed) ==
                  Destroyed);

/// Saturating activation counters: 2 means "two or more", which keeps the
/// state space finite while over-approximating unbounded histories.
constexpr uint8_t CountCap = 2;

/// Hard limits of the packed 64-bit state encoding.
constexpr size_t MaxThreads = 12;
constexpr size_t MaxComponents = 4;
constexpr unsigned MaxStates = 50000;

/// The packed search state:
///   bits [0, 2*i)        saturating activation count of thread i
///   bit  24+i            thread i killed by a cancellation
///   bits [36+2c, 36+2c+2) phase of component c
///   bit  44              the field is currently freed
///   bit  45+c            component c owes a framework onResume: the
///                        framework resumes after every onCreate, so an
///                        overriding onResume may fire while the phase is
///                        already Resumed — but only once per transition
class State {
public:
  uint8_t count(size_t I) const { return (Bits >> (2 * I)) & 0x3; }
  void bumpCount(size_t I) {
    if (count(I) < CountCap)
      Bits += uint64_t(1) << (2 * I);
  }
  bool killed(size_t I) const { return (Bits >> (24 + I)) & 0x1; }
  void kill(size_t I) { Bits |= uint64_t(1) << (24 + I); }
  Phase phase(size_t C) const {
    return static_cast<Phase>((Bits >> (36 + 2 * C)) & 0x3);
  }
  void setPhase(size_t C, Phase Ph) {
    Bits &= ~(uint64_t(0x3) << (36 + 2 * C));
    Bits |= uint64_t(Ph) << (36 + 2 * C);
  }
  bool freed() const { return (Bits >> 44) & 0x1; }
  void setFreed(bool F) {
    Bits = (Bits & ~(uint64_t(1) << 44)) | (uint64_t(F) << 44);
  }
  bool resumePending(size_t C) const { return (Bits >> (45 + C)) & 0x1; }
  void setResumePending(size_t C, bool P) {
    Bits = (Bits & ~(uint64_t(1) << (45 + C))) | (uint64_t(P) << (45 + C));
  }
  uint64_t key() const { return Bits; }

private:
  uint64_t Bits = 0;
};

/// The event-order automaton for one refutation query, over the shared
/// RefuterModel (spec-driven phase rules, post/FIFO/kill/revive edges).
class Search {
public:
  Search(const RefuterModel &M, const ir::Field *F,
         const support::Deadline *D)
      : M(M), F(F), D(D) {}

  /// Exhaustively explores the abstract histories. Returns true when one
  /// ends with the use observing the freed field; Trace then holds it.
  bool findCrash(std::vector<std::string> &Trace) {
    State Init;
    for (size_t C = 0; C < M.NumComponents; ++C) {
      Init.setPhase(C, M.componentHasCreate(C) ? NotCreated : Resumed);
      // Whatever brings a component to Resumed (the modeled onCreate or
      // an unmodeled framework launch) owes it one onResume.
      Init.setResumePending(C, true);
    }
    Visited.clear();
    return search(Init, Trace);
  }

  unsigned statesExplored() const {
    return static_cast<unsigned>(Visited.size());
  }
  bool budgetExceeded() const { return BudgetExceeded; }

private:
  const RefuterModel &M;
  const ir::Field *F;
  const support::Deadline *D = nullptr;
  std::set<uint64_t> Visited;
  bool BudgetExceeded = false;

  /// Whether activating thread \p I is legal in \p S. Only constraints
  /// that concretely always hold may be enforced here — every removed
  /// history must be impossible in the real event system, or the proof
  /// side of the search is unsound.
  bool legal(const State &S, size_t I) const {
    const ModelThread &TI = M.Threads[I];
    if (S.killed(I))
      return false;
    if (TI.OnceOnly && S.count(I) >= 1)
      return false;

    // Lifecycle legality against the component phase machine, driven by
    // the spec's phase rules (e.g. onResume is legal when resuming from
    // Paused, and also right after the component reached Resumed — the
    // launch path: the framework calls onResume after onCreate even when
    // onPause is never overridden. Forbidding that would hide a free/use
    // inside onResume and make a bogus proof.)
    if (TI.Comp >= 0 && TI.T->origin() == ThreadOrigin::EntryCallback) {
      Phase Ph = S.phase(TI.Comp);
      if (TI.PhaseRule) {
        bool Admits = (TI.PhaseRule->FromMask >> Ph) & 1;
        if (!Admits && TI.PhaseRule->FromResumedPending && Ph == Resumed &&
            S.resumePending(TI.Comp))
          Admits = true;
        if (!Admits)
          return false;
      } else if (TI.NeedsResumed) {
        if (Ph != Resumed)
          return false;
      } else if (Ph == NotCreated || Ph == Destroyed) {
        // Other lifecycle and system-event callbacks need a live
        // component but keep firing while paused (the RHB rationale).
        return false;
      }
    }

    // Post edges: a postee runs only after its poster; one-shot postees
    // (Runnable.run, handleMessage) consume one post per activation, so
    // their count stays strictly below the poster's.
    if (TI.Parent >= 0) {
      uint8_t PCount = S.count(TI.Parent);
      if (PCount == 0)
        return false;
      if (TI.OnePerPost && PCount < CountCap && S.count(I) >= PCount)
        return false;
    }

    // Per-looper FIFO: a sibling posted earlier (its spawn site dominates
    // ours in the poster) reaches the queue first, every time. A killed
    // predecessor is treated as satisfied: its count froze when the
    // cancellation removed it from the queue, and holding the sibling to
    // that frozen count would remove real histories (unsound).
    for (int Pred : TI.FifoPred) {
      if (S.killed(Pred))
        continue;
      uint8_t PredCount = S.count(Pred);
      if (PredCount < CountCap && PredCount <= S.count(I))
        return false;
    }
    return true;
  }

  /// Applies the state effects of activating \p I. \p DoFree selects the
  /// freeing path through the free callback (the search tries both).
  State apply(State S, size_t I, bool DoFree) const {
    const ModelThread &TI = M.Threads[I];
    S.bumpCount(I);
    if (TI.PhaseRule) {
      S.setPhase(TI.Comp, static_cast<Phase>(TI.PhaseRule->To));
      if (TI.PhaseRule->SetsPending)
        S.setResumePending(TI.Comp, true);
      if (TI.PhaseRule->ClearsPending)
        S.setResumePending(TI.Comp, false);
    }
    if (static_cast<int>(I) == M.FreeIdx && DoFree) {
      // The free executed; a must-realloc after it still revives the
      // field before the atomic activation ends.
      S.setFreed(!M.FreeMustRealloc);
      // Every must-cancel dominates the free, so it executed too.
      for (const ModelCancel &C : M.Cancels)
        for (size_t J = 0; J < M.Threads.size(); ++J)
          if (C.KillMask & (uint32_t(1) << J))
            S.kill(J);
    } else if (TI.MustRealloc) {
      S.setFreed(false);
    }
    return S;
  }

  std::string label(size_t I, bool DoFree, bool Crash) const {
    std::string L = M.Threads[I].T->label();
    if (DoFree)
      L += " — frees " + F->name();
    else if (Crash)
      L += " — uses " + F->name() + " after the free (crash)";
    else if (M.Threads[I].MustRealloc)
      L += " — re-allocates " + F->name();
    return L;
  }

  /// Depth-first search over an explicit frame stack: the path length is
  /// bounded only by the number of distinct states (MaxStates), which
  /// recursion would turn into tens of thousands of native frames — too
  /// deep for a ThreadPool worker's stack during the parallel verdict
  /// sweep.
  bool search(const State &Init, std::vector<std::string> &Trace) {
    struct Frame {
      State S;
      size_t NextThread = 0; ///< next thread index to try from S
      unsigned NextAlt = 0;  ///< next DoFree alternative of NextThread
      std::string Label;     ///< move that produced S (empty at the root)
    };
    std::vector<Frame> Stack;
    auto push = [&](const State &S, std::string Label) {
      if (!Visited.insert(S.key()).second)
        return;
      if (Visited.size() > MaxStates) {
        BudgetExceeded = true;
        return;
      }
      Stack.push_back(Frame{S, 0, 0, std::move(Label)});
    };
    push(Init, "");
    while (!Stack.empty()) {
      // Safe point: each DFS step only reads the memo table it already
      // extended; abandoning the search mid-way loses nothing shared.
      if (D)
        D->check("hbrefuter");
      Frame &F = Stack.back();
      if (F.NextThread >= M.Threads.size()) {
        Stack.pop_back();
        continue;
      }
      const size_t I = F.NextThread;
      if (F.NextAlt == 0) {
        if (!legal(F.S, I)) {
          ++F.NextThread;
          continue;
        }
        // The crash event: the use-thread activates while the field is
        // freed and no dominating re-allocation protects the load.
        if (static_cast<int>(I) == M.UseIdx && F.S.freed() &&
            !M.UseProtected) {
          for (const Frame &G : Stack)
            if (!G.Label.empty())
              Trace.push_back(G.Label);
          Trace.push_back(label(I, false, /*Crash=*/true));
          return true;
        }
      }
      const unsigned NumAlts = static_cast<int>(I) == M.FreeIdx ? 2 : 1;
      if (F.NextAlt >= NumAlts) {
        F.NextAlt = 0;
        ++F.NextThread;
        continue;
      }
      // The free thread tries the freeing path first, then the path that
      // skips the free.
      const bool DoFree =
          static_cast<int>(I) == M.FreeIdx && F.NextAlt == 0;
      ++F.NextAlt;
      const State NS = apply(F.S, I, DoFree);
      std::string L = label(I, DoFree, false);
      push(NS, std::move(L)); // invalidates F
    }
    return false;
  }
};

HbRefutation demoted(std::string Reason) {
  HbRefutation R;
  R.Ordered = false;
  R.Counterexample.push_back(std::move(Reason));
  return R;
}

} // namespace

HbRefuter::HbRefuter(const ir::Program &P,
                     const threadify::ThreadForest &Forest,
                     const PointsToAnalysis &PTA, const ThreadReach &Reach,
                     const CancelReach &Cancel, const EscapeAnalysis &Escape,
                     MethodCfgCache &Cfgs, MethodAllocFlowCache &Alloc,
                     const support::Deadline *D, const HbQuery *HQ)
    : Builder(Forest, PTA, Reach, Cancel, Escape, Cfgs, Alloc,
              android::FrameworkSpec::builtin(), HQ),
      D(D) {
  (void)P;
}

HbRefutation HbRefuter::refute(const ir::LoadStmt *Use,
                               const ir::StoreStmt *Free, const ir::Field *F,
                               const ModeledThread *UseT,
                               const ModeledThread *FreeT) const {
  ModelOptions O; // tier-1 capacities, intra-procedural facts only
  O.MaxThreads = MaxThreads;
  O.MaxComponents = MaxComponents;
  RefuterModel Model;
  std::string Demote = Builder.build(Use, Free, F, UseT, FreeT, O, Model);
  if (!Demote.empty())
    return demoted(std::move(Demote));

  Search S(Model, F, D);
  std::vector<std::string> Trace;
  const bool Crash = S.findCrash(Trace);

  HbRefutation R;
  R.StatesExplored = S.statesExplored();
  if (S.budgetExceeded())
    return demoted("no proof: the abstract state budget was exceeded before "
                   "the search completed");
  if (Crash) {
    R.Ordered = false;
    R.Counterexample = std::move(Trace);
    return R;
  }

  R.Ordered = true;
  std::ostringstream Abs;
  Abs << "event-atomic abstraction: " << Model.Threads.size()
      << " same-looper callback(s) over " << Model.NumComponents
      << " component(s)";
  R.ProofChain.push_back(Abs.str());
  for (const ModelThread &TI : Model.Threads)
    if (TI.MustRealloc)
      R.ProofChain.push_back(TI.T->label() + " re-allocates " + F->name() +
                             " on every path — its activation revives the "
                             "field (revive edge)");
  for (const std::string &Fact : Model.CancelFacts)
    R.ProofChain.push_back(Fact);
  R.ProofChain.push_back(
      "lifecycle edges: onCreate first, onDestroy last, UI events only "
      "while resumed, onResume after launch/onCreate and after each "
      "onPause; posted callbacks follow their poster (per-looper FIFO)");
  std::ostringstream Done;
  Done << "exhausted " << R.StatesExplored
       << " abstract state(s): no history runs the use after the free";
  R.ProofChain.push_back(Done.str());
  return R;
}
