//===- analysis/HbRefuter.cpp - May-HB refutation engine ----------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/HbRefuter.h"

#include "android/Api.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace nadroid;
using namespace nadroid::analysis;
using namespace nadroid::ir;
using android::ApiKind;
using android::CallbackKind;
using threadify::ModeledThread;
using threadify::ThreadOrigin;

namespace {

/// Per-component lifecycle phase of the abstract state machine.
enum Phase : uint8_t { NotCreated = 0, Resumed = 1, Paused = 2, Destroyed = 3 };

/// Saturating activation counters: 2 means "two or more", which keeps the
/// state space finite while over-approximating unbounded histories.
constexpr uint8_t CountCap = 2;

/// Hard limits of the packed 64-bit state encoding.
constexpr size_t MaxThreads = 12;
constexpr size_t MaxComponents = 4;
constexpr unsigned MaxStates = 50000;

/// One relevant callback, with everything legality checks need resolved
/// to indices up front.
struct ThreadInfo {
  const ModeledThread *T = nullptr;
  int Parent = -1; ///< poster's index, -1 when externally triggered
  int Comp = -1;   ///< component index, -1 when none
  /// Runs at most once per poster activation (one post = one run).
  bool OnePerPost = false;
  /// Runs at most once overall (AsyncTask pre/post of one instance).
  bool OnceOnly = false;
  /// The callback re-allocates the racy field on every path: its
  /// activation revives the field (the RHB proof mechanism).
  bool MustRealloc = false;
  /// Sibling postees that must stay ahead: same poster, same looper,
  /// spawn site dominating ours (per-looper FIFO serialization).
  std::vector<int> FifoPred;
};

/// One must-cancellation of the free: the cancel site dominates the free
/// inside the free's own method, so whenever the free has executed, the
/// covered callbacks can never activate again.
struct MustCancel {
  ApiKind Kind = ApiKind::None;
  uint16_t KillMask = 0; ///< bit per relevant thread index
};

const char *lifecycleName(const ModeledThread *T) {
  return T->callback() ? T->callback()->name().c_str() : "";
}

/// The packed search state:
///   bits [0, 2*i)        saturating activation count of thread i
///   bit  24+i            thread i killed by a cancellation
///   bits [36+2c, 36+2c+2) phase of component c
///   bit  44              the field is currently freed
///   bit  45+c            component c owes a framework onResume: the
///                        framework resumes after every onCreate, so an
///                        overriding onResume may fire while the phase is
///                        already Resumed — but only once per transition
class State {
public:
  uint8_t count(size_t I) const { return (Bits >> (2 * I)) & 0x3; }
  void bumpCount(size_t I) {
    if (count(I) < CountCap)
      Bits += uint64_t(1) << (2 * I);
  }
  bool killed(size_t I) const { return (Bits >> (24 + I)) & 0x1; }
  void kill(size_t I) { Bits |= uint64_t(1) << (24 + I); }
  Phase phase(size_t C) const {
    return static_cast<Phase>((Bits >> (36 + 2 * C)) & 0x3);
  }
  void setPhase(size_t C, Phase Ph) {
    Bits &= ~(uint64_t(0x3) << (36 + 2 * C));
    Bits |= uint64_t(Ph) << (36 + 2 * C);
  }
  bool freed() const { return (Bits >> 44) & 0x1; }
  void setFreed(bool F) {
    Bits = (Bits & ~(uint64_t(1) << 44)) | (uint64_t(F) << 44);
  }
  bool resumePending(size_t C) const { return (Bits >> (45 + C)) & 0x1; }
  void setResumePending(size_t C, bool P) {
    Bits = (Bits & ~(uint64_t(1) << (45 + C))) | (uint64_t(P) << (45 + C));
  }
  uint64_t key() const { return Bits; }

private:
  uint64_t Bits = 0;
};

/// The event-order automaton for one refutation query.
class Search {
public:
  Search(std::vector<ThreadInfo> Threads, std::vector<MustCancel> Cancels,
         int UseIdx, int FreeIdx, bool FreeMustRealloc, bool UseProtected,
         const ir::Field *F, const support::Deadline *D)
      : Threads(std::move(Threads)), Cancels(std::move(Cancels)),
        UseIdx(UseIdx), FreeIdx(FreeIdx), FreeMustRealloc(FreeMustRealloc),
        UseProtected(UseProtected), F(F), D(D) {}

  /// Exhaustively explores the abstract histories. Returns true when one
  /// ends with the use observing the freed field; Trace then holds it.
  bool findCrash(std::vector<std::string> &Trace) {
    State Init;
    for (size_t C = 0; C < NumComponents(); ++C) {
      Init.setPhase(C, componentHasCreate(C) ? NotCreated : Resumed);
      // Whatever brings a component to Resumed (the modeled onCreate or
      // an unmodeled framework launch) owes it one onResume.
      Init.setResumePending(C, true);
    }
    Visited.clear();
    return search(Init, Trace);
  }

  unsigned statesExplored() const {
    return static_cast<unsigned>(Visited.size());
  }
  bool budgetExceeded() const { return BudgetExceeded; }

private:
  std::vector<ThreadInfo> Threads;
  std::vector<MustCancel> Cancels;
  int UseIdx, FreeIdx;
  bool FreeMustRealloc, UseProtected;
  const ir::Field *F;
  const support::Deadline *D = nullptr;
  std::set<uint64_t> Visited;
  bool BudgetExceeded = false;

  size_t NumComponents() const {
    int Max = -1;
    for (const ThreadInfo &TI : Threads)
      Max = std::max(Max, TI.Comp);
    return static_cast<size_t>(Max + 1);
  }

  bool componentHasCreate(size_t C) const {
    for (const ThreadInfo &TI : Threads)
      if (TI.Comp == static_cast<int>(C) &&
          std::string(lifecycleName(TI.T)) == "onCreate")
        return true;
    return false;
  }

  /// Whether activating thread \p I is legal in \p S. Only constraints
  /// that concretely always hold may be enforced here — every removed
  /// history must be impossible in the real event system, or the proof
  /// side of the search is unsound.
  bool legal(const State &S, size_t I) const {
    const ThreadInfo &TI = Threads[I];
    if (S.killed(I))
      return false;
    if (TI.OnceOnly && S.count(I) >= 1)
      return false;

    // Lifecycle legality against the component phase machine.
    if (TI.Comp >= 0 && TI.T->origin() == ThreadOrigin::EntryCallback) {
      Phase Ph = S.phase(TI.Comp);
      std::string Name = lifecycleName(TI.T);
      if (Name == "onCreate")
        return Ph == NotCreated;
      if (Name == "onDestroy")
        return Ph == Resumed || Ph == Paused;
      if (Name == "onPause")
        return Ph == Resumed;
      if (Name == "onResume")
        // Legal when resuming from Paused, and also right after the
        // component reached Resumed (launch path): the framework calls
        // onResume after onCreate even when onPause is never overridden.
        // Forbidding that would hide a free/use inside onResume and make
        // a bogus proof — see the pending-bit invariant above.
        return Ph == Paused || (Ph == Resumed && S.resumePending(TI.Comp));
      if (TI.T->callbackKind() == CallbackKind::Ui) {
        if (Ph != Resumed)
          return false;
      } else if (Ph == NotCreated || Ph == Destroyed) {
        // Other lifecycle and system-event callbacks need a live
        // component but keep firing while paused (the RHB rationale).
        return false;
      }
    }

    // Post edges: a postee runs only after its poster; one-shot postees
    // (Runnable.run, handleMessage) consume one post per activation, so
    // their count stays strictly below the poster's.
    if (TI.Parent >= 0) {
      uint8_t PCount = S.count(TI.Parent);
      if (PCount == 0)
        return false;
      if (TI.OnePerPost && PCount < CountCap && S.count(I) >= PCount)
        return false;
    }

    // Per-looper FIFO: a sibling posted earlier (its spawn site dominates
    // ours in the poster) reaches the queue first, every time. A killed
    // predecessor is treated as satisfied: its count froze when the
    // cancellation removed it from the queue, and holding the sibling to
    // that frozen count would remove real histories (unsound).
    for (int Pred : TI.FifoPred) {
      if (S.killed(Pred))
        continue;
      uint8_t PredCount = S.count(Pred);
      if (PredCount < CountCap && PredCount <= S.count(I))
        return false;
    }
    return true;
  }

  /// Applies the state effects of activating \p I. \p DoFree selects the
  /// freeing path through the free callback (the search tries both).
  State apply(State S, size_t I, bool DoFree) const {
    const ThreadInfo &TI = Threads[I];
    S.bumpCount(I);
    if (TI.Comp >= 0 && TI.T->origin() == ThreadOrigin::EntryCallback) {
      std::string Name = lifecycleName(TI.T);
      if (Name == "onCreate") {
        S.setPhase(TI.Comp, Resumed);
        S.setResumePending(TI.Comp, true);
      } else if (Name == "onDestroy") {
        S.setPhase(TI.Comp, Destroyed);
      } else if (Name == "onPause") {
        S.setPhase(TI.Comp, Paused);
        S.setResumePending(TI.Comp, false);
      } else if (Name == "onResume") {
        S.setPhase(TI.Comp, Resumed);
        S.setResumePending(TI.Comp, false);
      }
    }
    if (static_cast<int>(I) == FreeIdx && DoFree) {
      // The free executed; a must-realloc after it still revives the
      // field before the atomic activation ends.
      S.setFreed(!FreeMustRealloc);
      // Every must-cancel dominates the free, so it executed too.
      for (const MustCancel &C : Cancels)
        for (size_t J = 0; J < Threads.size(); ++J)
          if (C.KillMask & (uint16_t(1) << J))
            S.kill(J);
    } else if (TI.MustRealloc) {
      S.setFreed(false);
    }
    return S;
  }

  std::string label(size_t I, bool DoFree, bool Crash) const {
    std::string L = Threads[I].T->label();
    if (DoFree)
      L += " — frees " + F->name();
    else if (Crash)
      L += " — uses " + F->name() + " after the free (crash)";
    else if (Threads[I].MustRealloc)
      L += " — re-allocates " + F->name();
    return L;
  }

  /// Depth-first search over an explicit frame stack: the path length is
  /// bounded only by the number of distinct states (MaxStates), which
  /// recursion would turn into tens of thousands of native frames — too
  /// deep for a ThreadPool worker's stack during the parallel verdict
  /// sweep.
  bool search(const State &Init, std::vector<std::string> &Trace) {
    struct Frame {
      State S;
      size_t NextThread = 0; ///< next thread index to try from S
      unsigned NextAlt = 0;  ///< next DoFree alternative of NextThread
      std::string Label;     ///< move that produced S (empty at the root)
    };
    std::vector<Frame> Stack;
    auto push = [&](const State &S, std::string Label) {
      if (!Visited.insert(S.key()).second)
        return;
      if (Visited.size() > MaxStates) {
        BudgetExceeded = true;
        return;
      }
      Stack.push_back(Frame{S, 0, 0, std::move(Label)});
    };
    push(Init, "");
    while (!Stack.empty()) {
      // Safe point: each DFS step only reads the memo table it already
      // extended; abandoning the search mid-way loses nothing shared.
      if (D)
        D->check("hbrefuter");
      Frame &F = Stack.back();
      if (F.NextThread >= Threads.size()) {
        Stack.pop_back();
        continue;
      }
      const size_t I = F.NextThread;
      if (F.NextAlt == 0) {
        if (!legal(F.S, I)) {
          ++F.NextThread;
          continue;
        }
        // The crash event: the use-thread activates while the field is
        // freed and no dominating re-allocation protects the load.
        if (static_cast<int>(I) == UseIdx && F.S.freed() && !UseProtected) {
          for (const Frame &G : Stack)
            if (!G.Label.empty())
              Trace.push_back(G.Label);
          Trace.push_back(label(I, false, /*Crash=*/true));
          return true;
        }
      }
      const unsigned NumAlts = static_cast<int>(I) == FreeIdx ? 2 : 1;
      if (F.NextAlt >= NumAlts) {
        F.NextAlt = 0;
        ++F.NextThread;
        continue;
      }
      // The free thread tries the freeing path first, then the path that
      // skips the free.
      const bool DoFree = static_cast<int>(I) == FreeIdx && F.NextAlt == 0;
      ++F.NextAlt;
      const State NS = apply(F.S, I, DoFree);
      std::string L = label(I, DoFree, false);
      push(NS, std::move(L)); // invalidates F
    }
    return false;
  }
};

HbRefutation demoted(std::string Reason) {
  HbRefutation R;
  R.Ordered = false;
  R.Counterexample.push_back(std::move(Reason));
  return R;
}

/// Does cancellation \p C forbid future activations of \p T? Mirrors the
/// CHB filter's coverage, minus the poster-handler resolution for posted
/// Runnables (not killing a thread only widens the search — safe).
bool cancelCovers(const analysis::CancelInfo &C, const ModeledThread *T,
                  const ModeledThread *FreeT) {
  switch (C.Kind) {
  case ApiKind::Finish:
    return T->origin() == ThreadOrigin::EntryCallback &&
           T->component() == C.Target &&
           std::string(lifecycleName(T)) != "onDestroy";
  case ApiKind::UnbindService: {
    CallbackKind K = T->callbackKind();
    if (K != CallbackKind::ServiceConnect && K != CallbackKind::ServiceDisconn)
      return false;
    if (C.Target)
      return T->callback()->parent() == C.Target;
    return T->component() == FreeT->component();
  }
  case ApiKind::UnregisterReceiver: {
    if (T->callbackKind() != CallbackKind::Receive ||
        T->origin() != ThreadOrigin::PostedCallback)
      return false;
    if (C.Target)
      return T->callback()->parent() == C.Target;
    return T->component() == FreeT->component();
  }
  case ApiKind::RemoveCallbacks:
    return T->callbackKind() == CallbackKind::HandleMessage &&
           T->callback()->parent() == C.Target && C.Target;
  default:
    return false;
  }
}

bool isOneShotPostee(const ModeledThread *T) {
  return T->origin() == ThreadOrigin::PostedCallback &&
         (T->callbackKind() == CallbackKind::RunnableRun ||
          T->callbackKind() == CallbackKind::HandleMessage);
}

} // namespace

HbRefuter::HbRefuter(const ir::Program &P,
                     const threadify::ThreadForest &Forest,
                     const PointsToAnalysis &PTA, const ThreadReach &Reach,
                     const CancelReach &Cancel, const EscapeAnalysis &Escape,
                     MethodCfgCache &Cfgs, MethodAllocFlowCache &Alloc,
                     const support::Deadline *D)
    : Forest(Forest), PTA(PTA), Reach(Reach), Cancel(Cancel),
      Escape(Escape), Cfgs(Cfgs), Alloc(Alloc), D(D) {
  (void)P;
}

HbRefutation HbRefuter::refute(const ir::LoadStmt *Use,
                               const ir::StoreStmt *Free, const ir::Field *F,
                               const ModeledThread *UseT,
                               const ModeledThread *FreeT) const {
  // The abstraction's atomicity premise: both sides are callbacks of one
  // looper, so activations serialize and the history is a sequence.
  if (UseT->isNative() || FreeT->isNative() || !UseT->onLooper() ||
      !FreeT->onLooper())
    return demoted("no proof attempted: a native thread in the pair breaks "
                   "activation atomicity");
  if (UseT->looperId() != FreeT->looperId())
    return demoted("no proof attempted: the callbacks run on different "
                   "loopers, so activations may interleave");

  // Escape gate: if a native thread may touch one of the base objects,
  // histories outside the event system could mutate the field between
  // any two activations.
  for (const ModeledThread *Pivot : {UseT, FreeT}) {
    const ir::Stmt *Site = Pivot == UseT ? static_cast<const Stmt *>(Use)
                                         : static_cast<const Stmt *>(Free);
    const Local *Base = Pivot == UseT ? Use->base() : Free->base();
    for (const MethodCtx &Ctx : Reach.contextsOf(Pivot)) {
      if (Ctx.M != Site->parentMethod())
        continue;
      for (ObjectId Obj : PTA.ptsOf(Base, Ctx))
        for (const ModeledThread *Acc : Escape.accessors(Obj))
          if (Acc->isNative())
            return demoted("no proof attempted: the base object escapes to "
                           "native thread " +
                           Acc->label());
    }
  }

  // Collect the relevant callbacks: the poster lineages of both sides
  // plus the lifecycle callbacks of every involved component.
  std::set<const ModeledThread *> Rel;
  for (const ModeledThread *Seed : {UseT, FreeT})
    for (const ModeledThread *Cur = Seed;
         Cur && Cur->origin() != ThreadOrigin::DummyMain; Cur = Cur->parent())
      Rel.insert(Cur);
  std::set<Clazz *> Comps;
  for (const ModeledThread *T : Rel)
    if (T->component())
      Comps.insert(T->component());
  static const char *LifecycleNames[] = {"onCreate", "onResume", "onPause",
                                         "onDestroy"};
  for (const auto &TPtr : Forest.threads()) {
    const ModeledThread *T = TPtr.get();
    if (T->origin() != ThreadOrigin::EntryCallback || !T->component() ||
        !Comps.count(T->component()))
      continue;
    for (const char *N : LifecycleNames)
      if (lifecycleName(T) == std::string(N))
        Rel.insert(T);
  }

  std::vector<const ModeledThread *> Sorted(Rel.begin(), Rel.end());
  std::sort(Sorted.begin(), Sorted.end(),
            [](const ModeledThread *A, const ModeledThread *B) {
              return A->id() < B->id();
            });
  if (Sorted.size() > MaxThreads)
    return demoted("no proof attempted: too many interacting callbacks for "
                   "the abstraction");
  for (const ModeledThread *T : Sorted) {
    if (T->isNative() || !T->onLooper())
      return demoted("no proof attempted: native thread " + T->label() +
                     " in the poster lineage breaks activation atomicity");
    if (T->looperId() != UseT->looperId())
      return demoted("no proof attempted: " + T->label() +
                     " runs on a different looper");
  }

  std::vector<Clazz *> CompList(Comps.begin(), Comps.end());
  std::sort(CompList.begin(), CompList.end(),
            [](const Clazz *A, const Clazz *B) { return A->name() < B->name(); });
  if (CompList.size() > MaxComponents)
    return demoted("no proof attempted: too many components for the "
                   "abstraction");

  auto indexOf = [&](const ModeledThread *T) -> int {
    for (size_t I = 0; I < Sorted.size(); ++I)
      if (Sorted[I] == T)
        return static_cast<int>(I);
    return -1;
  };
  auto compIndexOf = [&](Clazz *C) -> int {
    for (size_t I = 0; I < CompList.size(); ++I)
      if (CompList[I] == C)
        return static_cast<int>(I);
    return -1;
  };
  auto mustRealloc = [&](const ModeledThread *T) {
    return T->callback() &&
           Alloc.get(*T->callback(), /*TreatCallResultAsAlloc=*/false)
                   .MustAllocAtExitFields.count(F) != 0;
  };

  std::vector<ThreadInfo> Infos(Sorted.size());
  for (size_t I = 0; I < Sorted.size(); ++I) {
    ThreadInfo &TI = Infos[I];
    TI.T = Sorted[I];
    TI.Parent = TI.T->parent() ? indexOf(TI.T->parent()) : -1;
    TI.Comp = TI.T->component() ? compIndexOf(TI.T->component()) : -1;
    TI.OnePerPost = isOneShotPostee(TI.T);
    TI.OnceOnly = TI.T->callbackKind() == CallbackKind::AsyncPre ||
                  TI.T->callbackKind() == CallbackKind::AsyncPost;
    TI.MustRealloc = mustRealloc(TI.T);
  }
  // FIFO predecessors: sibling one-shot postees of the same poster and
  // looper whose spawn site dominates ours inside the poster's method.
  for (size_t I = 0; I < Sorted.size(); ++I) {
    const ModeledThread *T = Sorted[I];
    if (!isOneShotPostee(T) || !T->spawnSite())
      continue;
    for (size_t J = 0; J < Sorted.size(); ++J) {
      const ModeledThread *S = Sorted[J];
      if (J == I || !isOneShotPostee(S) || !S->spawnSite() ||
          S->parent() != T->parent() || S->looperId() != T->looperId())
        continue;
      const Method *M = T->spawnSite()->parentMethod();
      if (S->spawnSite()->parentMethod() != M)
        continue;
      if (Cfgs.get(*M).dominates(S->spawnSite(), T->spawnSite()))
        Infos[I].FifoPred.push_back(static_cast<int>(J));
    }
  }

  // Must-cancellations: cancel sites in the free's own method that
  // dominate the free. Path-reachable-only cancels (the §8.6 shapes) do
  // not qualify — that is exactly what CHB gets wrong.
  std::vector<MustCancel> MustCancels;
  std::vector<std::string> CancelFacts;
  if (FreeT->callback()) {
    const Method *FreeM = Free->parentMethod();
    for (const CancelInfo &C : Cancel.cancelsFrom(FreeT->callback())) {
      if (!C.Site || C.Site->parentMethod() != FreeM ||
          !Cfgs.get(*FreeM).dominates(C.Site, Free))
        continue;
      MustCancel MC;
      MC.Kind = C.Kind;
      for (size_t J = 0; J < Sorted.size(); ++J)
        if (cancelCovers(C, Sorted[J], FreeT))
          MC.KillMask |= uint16_t(1) << J;
      if (MC.KillMask) {
        MustCancels.push_back(MC);
        CancelFacts.push_back(std::string(android::apiKindName(C.Kind)) +
                              " in " + FreeT->label() +
                              " dominates the free — covered callbacks "
                              "cannot activate afterwards (kill edge)");
      }
    }
  }

  const int UseIdx = indexOf(UseT);
  const int FreeIdx = indexOf(FreeT);
  const bool FreeMustRealloc =
      FreeT->callback() ? mustRealloc(FreeT) : false;
  const bool UseProtected =
      Alloc.get(*Use->parentMethod(), /*TreatCallResultAsAlloc=*/false)
          .ProtectedLoads.count(Use) != 0;

  Search S(Infos, MustCancels, UseIdx, FreeIdx, FreeMustRealloc, UseProtected,
           F, D);
  std::vector<std::string> Trace;
  const bool Crash = S.findCrash(Trace);

  HbRefutation R;
  R.StatesExplored = S.statesExplored();
  if (S.budgetExceeded())
    return demoted("no proof: the abstract state budget was exceeded before "
                   "the search completed");
  if (Crash) {
    R.Ordered = false;
    R.Counterexample = std::move(Trace);
    return R;
  }

  R.Ordered = true;
  std::ostringstream Abs;
  Abs << "event-atomic abstraction: " << Sorted.size()
      << " same-looper callback(s) over " << CompList.size()
      << " component(s)";
  R.ProofChain.push_back(Abs.str());
  for (const ThreadInfo &TI : Infos)
    if (TI.MustRealloc)
      R.ProofChain.push_back(TI.T->label() + " re-allocates " + F->name() +
                             " on every path — its activation revives the "
                             "field (revive edge)");
  for (std::string &Fact : CancelFacts)
    R.ProofChain.push_back(std::move(Fact));
  R.ProofChain.push_back(
      "lifecycle edges: onCreate first, onDestroy last, UI events only "
      "while resumed, onResume after launch/onCreate and after each "
      "onPause; posted callbacks follow their poster (per-looper FIFO)");
  std::ostringstream Done;
  Done << "exhausted " << R.StatesExplored
       << " abstract state(s): no history runs the use after the free";
  R.ProofChain.push_back(Done.str());
  return R;
}
