//===- analysis/RefuterModel.cpp - Shared refuter event model -----------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/RefuterModel.h"

#include "analysis/AllocFlow.h"
#include "android/Api.h"

#include <algorithm>

using namespace nadroid;
using namespace nadroid::analysis;
using namespace nadroid::ir;
using android::ApiKind;
using android::CallbackKind;
using android::FrameworkSpec;
using threadify::ModeledThread;
using threadify::ThreadOrigin;

namespace {

const char *lifecycleName(const ModeledThread *T) {
  return T->callback() ? T->callback()->name().c_str() : "";
}

/// Does cancellation \p C forbid future activations of \p T? Coverage is
/// the spec's kill rule for the API; no rule means no kill (not killing a
/// thread only widens the search — safe).
bool cancelCovers(const FrameworkSpec &Spec, const CancelInfo &C,
                  const ModeledThread *T, const ModeledThread *FreeT) {
  const FrameworkSpec::KillRule *R = Spec.killRule(C.Kind);
  if (!R)
    return false;
  auto Covered = [&] {
    return std::find(R->Covers.begin(), R->Covers.end(),
                     T->callbackKind()) != R->Covers.end();
  };
  switch (R->Scope) {
  case FrameworkSpec::KillScope::EntryOfComponent: {
    if (T->origin() != ThreadOrigin::EntryCallback ||
        T->component() != C.Target)
      return false;
    for (const std::string &N : R->Except)
      if (lifecycleName(T) == N)
        return false;
    return true;
  }
  case FrameworkSpec::KillScope::TargetOrComponent: {
    if (!Covered())
      return false;
    if (R->PostedOnly && T->origin() != ThreadOrigin::PostedCallback)
      return false;
    if (C.Target)
      return T->callback()->parent() == C.Target;
    return T->component() == FreeT->component();
  }
  case FrameworkSpec::KillScope::TargetParent:
    return Covered() && T->callback() &&
           T->callback()->parent() == C.Target && C.Target;
  }
  return false;
}

} // namespace

ir::Method *ModelBuilder::resolveThisCallee(const CallStmt &Call) const {
  if (!Call.recv() || !Call.recv()->isThis())
    return nullptr;
  Clazz *C = Call.parentMethod()->parent();
  return C ? C->findMethod(Call.callee()) : nullptr;
}

const std::set<const Field *> &
ModelBuilder::interprocMustAlloc(const Method &M, unsigned Depth) const {
  const auto Key = std::make_pair(&M, Depth);
  {
    std::lock_guard<std::mutex> Lock(MemoMu);
    auto It = AllocMemo.find(Key);
    if (It != AllocMemo.end())
      return It->second;
  }
  std::set<const Field *> Result;
  if (Depth == 0) {
    Result = Alloc.get(M, /*TreatCallResultAsAlloc=*/false)
                 .MustAllocAtExitFields;
  } else {
    CallAllocResolver R =
        [&](const CallStmt &Call) -> const std::set<const Field *> * {
      Method *Callee = resolveThisCallee(Call);
      return Callee ? &interprocMustAlloc(*Callee, Depth - 1) : nullptr;
    };
    Result = analyzeAllocFlow(M, /*TreatCallResultAsAlloc=*/false, &R)
                 .MustAllocAtExitFields;
  }
  std::lock_guard<std::mutex> Lock(MemoMu);
  return AllocMemo.emplace(Key, std::move(Result)).first->second;
}

void ModelBuilder::mustCancelsAtExit(Method &M, unsigned Depth,
                                     std::vector<CancelInfo> &Out) const {
  if (Depth == 0)
    return;
  const Cfg &G = Cfgs.get(M);
  for (const CancelInfo &C : Cancel.cancelsFrom(&M))
    if (C.Site && C.Site->parentMethod() == &M &&
        G.dominates(G.nodeOf(C.Site), G.exit()))
      Out.push_back(C);
  forEachStmt(M, [&](const Stmt &S) {
    if (const auto *Call = dyn_cast<CallStmt>(&S))
      if (Method *H = resolveThisCallee(*Call))
        if (G.dominates(G.nodeOf(Call), G.exit()))
          mustCancelsAtExit(*H, Depth - 1, Out);
  });
}

void ModelBuilder::computeSkeleton(const ModeledThread *UseT,
                                   const ModeledThread *FreeT,
                                   const ModelOptions &O,
                                   PairSkeleton &Out) const {
  // Collect the relevant callbacks: the poster lineages of both sides
  // plus the phase-driving lifecycle callbacks of every involved
  // component (the spec's phase rules name them).
  std::set<const ModeledThread *> Rel;
  for (const ModeledThread *Seed : {UseT, FreeT})
    for (const ModeledThread *Cur = Seed;
         Cur && Cur->origin() != ThreadOrigin::DummyMain;
         Cur = Cur->parent())
      Rel.insert(Cur);
  std::set<Clazz *> Comps;
  for (const ModeledThread *T : Rel)
    if (T->component())
      Comps.insert(T->component());
  for (const auto &TPtr : Forest.threads()) {
    const ModeledThread *T = TPtr.get();
    if (T->origin() != ThreadOrigin::EntryCallback || !T->component() ||
        !Comps.count(T->component()))
      continue;
    if (Spec.phaseRule(lifecycleName(T)))
      Rel.insert(T);
  }

  std::vector<const ModeledThread *> Sorted(Rel.begin(), Rel.end());
  std::sort(Sorted.begin(), Sorted.end(),
            [](const ModeledThread *A, const ModeledThread *B) {
              return A->id() < B->id();
            });
  if (Sorted.size() > O.MaxThreads) {
    Out.Demote = "no proof attempted: too many interacting callbacks for "
                 "the abstraction";
    return;
  }
  for (const ModeledThread *T : Sorted) {
    if (T->isNative() || !T->onLooper()) {
      Out.Demote = "no proof attempted: native thread " + T->label() +
                   " in the poster lineage breaks activation atomicity";
      return;
    }
    if (T->looperId() != UseT->looperId()) {
      Out.Demote = "no proof attempted: " + T->label() +
                   " runs on a different looper";
      return;
    }
  }

  std::vector<Clazz *> CompList(Comps.begin(), Comps.end());
  std::sort(CompList.begin(), CompList.end(), [](const Clazz *A,
                                                 const Clazz *B) {
    return A->name() < B->name();
  });
  if (CompList.size() > O.MaxComponents) {
    Out.Demote = "no proof attempted: too many components for the "
                 "abstraction";
    return;
  }

  auto indexOf = [&](const ModeledThread *T) -> int {
    for (size_t I = 0; I < Sorted.size(); ++I)
      if (Sorted[I] == T)
        return static_cast<int>(I);
    return -1;
  };
  auto compIndexOf = [&](Clazz *C) -> int {
    for (size_t I = 0; I < CompList.size(); ++I)
      if (CompList[I] == C)
        return static_cast<int>(I);
    return -1;
  };
  auto isOneShotPostee = [&](const ModeledThread *T) {
    return T->origin() == ThreadOrigin::PostedCallback &&
           Spec.isOnePerPost(T->callbackKind());
  };

  Out.Bits.resize(Sorted.size());
  for (size_t I = 0; I < Sorted.size(); ++I) {
    const ModeledThread *T = Sorted[I];
    PairSkeleton::ThreadBits &B = Out.Bits[I];
    B.Parent = T->parent() ? indexOf(T->parent()) : -1;
    B.Comp = T->component() ? compIndexOf(T->component()) : -1;
    B.OnePerPost = isOneShotPostee(T);
    B.OnceOnly = Spec.isOnceOnly(T->callbackKind());
    B.NeedsResumed = Spec.needsResumed(T->callbackKind());
    if (B.Comp >= 0 && T->origin() == ThreadOrigin::EntryCallback)
      B.PhaseRule = Spec.phaseRule(lifecycleName(T));
  }
  // FIFO predecessors: sibling one-shot postees of the same poster and
  // looper whose spawn site dominates ours inside the poster's method.
  for (size_t I = 0; I < Sorted.size(); ++I) {
    const ModeledThread *T = Sorted[I];
    if (!isOneShotPostee(T) || !T->spawnSite())
      continue;
    for (size_t J = 0; J < Sorted.size(); ++J) {
      const ModeledThread *S = Sorted[J];
      if (J == I || !isOneShotPostee(S) || !S->spawnSite() ||
          S->parent() != T->parent() || S->looperId() != T->looperId())
        continue;
      const Method *M = T->spawnSite()->parentMethod();
      if (S->spawnSite()->parentMethod() != M)
        continue;
      if (Cfgs.get(*M).dominates(S->spawnSite(), T->spawnSite()))
        Out.Bits[I].FifoPred.push_back(static_cast<int>(J));
    }
  }
  Out.Threads = std::move(Sorted);
  Out.Components = std::move(CompList);
}

std::string ModelBuilder::build(const LoadStmt *Use, const StoreStmt *Free,
                                const Field *F, const ModeledThread *UseT,
                                const ModeledThread *FreeT,
                                const ModelOptions &O,
                                RefuterModel &Out) const {
  // The abstraction's atomicity premise: both sides are callbacks of one
  // looper, so activations serialize and the history is a sequence.
  if (UseT->isNative() || FreeT->isNative() || !UseT->onLooper() ||
      !FreeT->onLooper())
    return "no proof attempted: a native thread in the pair breaks "
           "activation atomicity";
  if (UseT->looperId() != FreeT->looperId())
    return "no proof attempted: the callbacks run on different loopers, "
           "so activations may interleave";

  // Escape gate: if a native thread may touch one of the base objects,
  // histories outside the event system could mutate the field between
  // any two activations. Statement-dependent, so never part of the
  // shared skeleton.
  for (const ModeledThread *Pivot : {UseT, FreeT}) {
    const Stmt *Site = Pivot == UseT ? static_cast<const Stmt *>(Use)
                                     : static_cast<const Stmt *>(Free);
    const Local *Base = Pivot == UseT ? Use->base() : Free->base();
    for (const MethodCtx &Ctx : Reach.contextsOf(Pivot)) {
      if (Ctx.M != Site->parentMethod())
        continue;
      for (ObjectId Obj : PTA.ptsOf(Base, Ctx))
        for (const ModeledThread *Acc : Escape.accessors(Obj))
          if (Acc->isNative())
            return "no proof attempted: the base object escapes to "
                   "native thread " +
                   Acc->label();
    }
  }

  // The statement-independent half, shared across every (Use, Free, F)
  // query with this thread pair within one capacity tier.
  PairSkeleton Local;
  const PairSkeleton *SK;
  if (HQ) {
    SK = &HQ->pairSkeleton(UseT, FreeT, O.MaxThreads, O.MaxComponents,
                           [&](PairSkeleton &S) {
                             computeSkeleton(UseT, FreeT, O, S);
                           });
  } else {
    computeSkeleton(UseT, FreeT, O, Local);
    SK = &Local;
  }
  if (!SK->Demote.empty())
    return SK->Demote;
  const std::vector<const ModeledThread *> &Sorted = SK->Threads;

  auto indexOf = [&](const ModeledThread *T) -> int {
    for (size_t I = 0; I < Sorted.size(); ++I)
      if (Sorted[I] == T)
        return static_cast<int>(I);
    return -1;
  };
  auto intraMustRealloc = [&](const ModeledThread *T) {
    return T->callback() &&
           Alloc.get(*T->callback(), /*TreatCallResultAsAlloc=*/false)
                   .MustAllocAtExitFields.count(F) != 0;
  };
  auto mustRealloc = [&](const ModeledThread *T) {
    if (intraMustRealloc(T))
      return true;
    return O.InterprocRevive && T->callback() &&
           interprocMustAlloc(*T->callback(), O.InterprocDepth).count(F) !=
               0;
  };

  Out = RefuterModel();
  Out.NumComponents = SK->Components.size();
  Out.Threads.resize(Sorted.size());
  for (size_t I = 0; I < Sorted.size(); ++I) {
    ModelThread &TI = Out.Threads[I];
    const PairSkeleton::ThreadBits &B = SK->Bits[I];
    TI.T = Sorted[I];
    TI.Parent = B.Parent;
    TI.Comp = B.Comp;
    TI.OnePerPost = B.OnePerPost;
    TI.OnceOnly = B.OnceOnly;
    TI.MustRealloc = mustRealloc(TI.T);
    TI.ReviveViaHelper = TI.MustRealloc && !intraMustRealloc(TI.T);
    TI.NeedsResumed = B.NeedsResumed;
    TI.PhaseRule = B.PhaseRule;
    TI.FifoPred = B.FifoPred;
    if (TI.ReviveViaHelper)
      Out.ReviveFacts.push_back(
          TI.T->label() + " re-allocates " + F->name() +
          " at exit through helper calls (inter-procedural revive edge)");
  }

  // Must-cancellations: cancel sites in the free's own method that
  // dominate the free. Path-reachable-only cancels (the §8.6 shapes) do
  // not qualify — that is exactly what CHB gets wrong. The tier-2 kill
  // refinement additionally admits cancels reached through this-calls
  // that dominate the free, when the cancel dominates the callee's exit.
  if (FreeT->callback()) {
    const Method *FreeM = Free->parentMethod();
    std::set<const CallStmt *> SeenSites;
    auto addCancel = [&](const CancelInfo &C, const std::string &Helper) {
      if (C.Site && !SeenSites.insert(C.Site).second)
        return;
      ModelCancel MC;
      MC.Kind = C.Kind;
      for (size_t J = 0; J < Sorted.size(); ++J)
        if (cancelCovers(Spec, C, Sorted[J], FreeT))
          MC.KillMask |= uint32_t(1) << J;
      if (!MC.KillMask)
        return;
      Out.Cancels.push_back(MC);
      if (Helper.empty())
        Out.CancelFacts.push_back(
            std::string(android::apiKindName(C.Kind)) + " in " +
            FreeT->label() +
            " dominates the free — covered callbacks cannot activate "
            "afterwards (kill edge)");
      else
        Out.CancelFacts.push_back(
            std::string(android::apiKindName(C.Kind)) + " through helper " +
            Helper + "() in " + FreeT->label() +
            " dominates the free — covered callbacks cannot activate "
            "afterwards (inter-procedural kill edge)");
    };
    for (const CancelInfo &C : Cancel.cancelsFrom(FreeT->callback())) {
      if (!C.Site || C.Site->parentMethod() != FreeM ||
          !Cfgs.get(*FreeM).dominates(C.Site, Free))
        continue;
      addCancel(C, "");
    }
    if (O.InterprocKill) {
      forEachStmt(*FreeM, [&](const Stmt &S) {
        const auto *Call = dyn_cast<CallStmt>(&S);
        if (!Call)
          return;
        Method *H = resolveThisCallee(*Call);
        if (!H || !Cfgs.get(*FreeM).dominates(Call, Free))
          return;
        std::vector<CancelInfo> Nested;
        mustCancelsAtExit(*H, O.InterprocDepth, Nested);
        for (const CancelInfo &C : Nested)
          addCancel(C, Call->callee());
      });
    }
  }

  Out.UseIdx = indexOf(UseT);
  Out.FreeIdx = indexOf(FreeT);
  Out.FreeMustRealloc = FreeT->callback() ? mustRealloc(FreeT) : false;
  Out.UseProtected =
      Alloc.get(*Use->parentMethod(), /*TreatCallResultAsAlloc=*/false)
          .ProtectedLoads.count(Use) != 0;
  return "";
}
