//===- analysis/HbQuery.h - Shared HB/reachability query layer --*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-program query engine over the facts the §6.2.1 may-HB filters and
/// both refuter tiers previously re-derived per racy pair:
///
///  * the threadification forest's transitive same-looper post relation,
///    precomputed once as a dense bitset matrix (PhbFilter's per-pair
///    parent-chain walk becomes one bit test);
///  * syntactic method reachability with a per-method ordered callee
///    adjacency, so the repeated per-root BFS (CancelReach, and through it
///    CHB and the refuter kill edges) runs local type inference once per
///    method for the whole program instead of once per (root, visit);
///  * memoized pair verdicts for the filters whose answer depends only on
///    the (use-thread, free-thread) pair — CHB — or on the pair plus the
///    racy field — RHB; many warnings share the same pair, and the
///    verdict sweep asks for each one many times;
///  * a memoized *pair skeleton* for the refuter tiers: the relevant-
///    callback set, component list, per-thread lifecycle-phase rules and
///    FIFO predecessor edges of one (use-thread, free-thread) query are
///    independent of the racy statements and of the tier's interproc
///    flags, so every pair with the same thread pair shares one skeleton
///    per capacity tier.
///
/// One HbQuery is built per program (HbQueryPass in the AnalysisManager)
/// and shared by the filter context, CancelReach and both refuters. All
/// caches are internally synchronized: the filter engine's parallel
/// verdict sweep queries one instance concurrently. Every cached answer
/// is a pure function of the program + forest, so a racing double-compute
/// is benign — first store wins, both results are identical.
///
/// Invalidation: the pass depends on ApiIndexPass and ThreadForestPass,
/// so a ModelFragments flip (which drops the forest) cascades here and to
/// every dependent (cancelreach, the refuters, the filter context)
/// through the manager's observed dependency edges.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_ANALYSIS_HBQUERY_H
#define NADROID_ANALYSIS_HBQUERY_H

#include "android/Api.h"
#include "android/FrameworkSpec.h"
#include "support/BitVector.h"
#include "threadify/ThreadForest.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

namespace nadroid::analysis {

/// The statement-independent part of one refuter model build: everything
/// ModelBuilder derives from the (use-thread, free-thread) pair alone,
/// under one (MaxThreads, MaxComponents) capacity tier. A nonempty
/// Demote means the capacity/looper gates rejected the pair — the string
/// is the demotion message build() returns verbatim.
struct PairSkeleton {
  std::string Demote;
  /// Relevant callbacks, sorted by thread id.
  std::vector<const threadify::ModeledThread *> Threads;
  /// Involved components, sorted by name.
  std::vector<ir::Clazz *> Components;
  /// Flag- and field-independent per-thread model facts, parallel to
  /// Threads. MustRealloc/revive facts depend on the racy field and the
  /// tier's interproc flags and deliberately stay out.
  struct ThreadBits {
    int Parent = -1;
    int Comp = -1;
    bool OnePerPost = false;
    bool OnceOnly = false;
    bool NeedsResumed = false;
    const android::FrameworkSpec::PhaseRule *PhaseRule = nullptr;
    std::vector<int> FifoPred;
  };
  std::vector<ThreadBits> Bits;
};

/// The shared query layer. See the file comment.
class HbQuery {
public:
  HbQuery(const ir::Program &P, const android::ApiIndex &Apis,
          const threadify::ThreadForest &Forest);

  /// PHB's ordering fact as one matrix bit: true when \p Postee
  /// transitively descends from \p Poster through same-looper posting
  /// links (each hop poster-side atomic). Exactly PhbFilter's former
  /// parent-chain walk, precomputed for every pair at construction.
  bool postedAfter(const threadify::ModeledThread *Postee,
                   const threadify::ModeledThread *Poster) const {
    auto PI = Index.find(Postee);
    auto QI = Index.find(Poster);
    if (PI == Index.end() || QI == Index.end())
      return false;
    return PostedAfter[PI->second].test(QI->second);
  }

  /// \p Root plus every method reachable from it over ordinary (non-API)
  /// calls, in the exact BFS discovery order of
  /// android::collectReachableMethods. Memoized per root; the underlying
  /// per-method callee adjacency is memoized program-wide.
  const std::vector<ir::Method *> &reachableFrom(ir::Method *Root) const;

  /// Slots of the (use-thread, free-thread) verdict memo. One slot per
  /// filter whose pair verdict is statement-independent.
  enum PairSlot : unsigned { SlotChb = 0, NumPairSlots = 1 };

  /// Memoized pair verdict: returns the cached answer for
  /// (\p Slot, \p A, \p B) or computes it with \p Fn and caches it.
  /// \p Fn must be a pure function of the pair (and program state).
  template <typename FnT>
  bool pairVerdict(unsigned Slot, const threadify::ModeledThread *A,
                   const threadify::ModeledThread *B, FnT &&Fn) const {
    auto IA = Index.find(A);
    auto IB = Index.find(B);
    if (IA == Index.end() || IB == Index.end())
      return Fn();
    std::atomic<uint8_t> &Cell =
        PairBits[Slot * Index.size() * Index.size() +
                 IA->second * Index.size() + IB->second];
    // 0 = unknown, 1 = false, 2 = true. A concurrent double-compute
    // stores the same value twice — benign.
    uint8_t V = Cell.load(std::memory_order_acquire);
    if (V != 0)
      return V == 2;
    bool R = Fn();
    Cell.store(R ? 2 : 1, std::memory_order_release);
    return R;
  }

  /// Memoized (pair, field) verdict — RHB's shape: the answer depends on
  /// the thread pair and the racy field but not on the statements.
  template <typename FnT>
  bool fieldPairVerdict(const threadify::ModeledThread *A,
                        const threadify::ModeledThread *B,
                        const ir::Field *F, FnT &&Fn) const {
    const auto Key = std::make_tuple(A, B, F);
    {
      std::lock_guard<std::mutex> Lock(FieldPairMu);
      auto It = FieldPairMemo.find(Key);
      if (It != FieldPairMemo.end())
        return It->second;
    }
    bool R = Fn();
    std::lock_guard<std::mutex> Lock(FieldPairMu);
    return FieldPairMemo.emplace(Key, R).first->second;
  }

  /// The memoized refuter pair skeleton for one capacity tier. Computes
  /// with \p Fn on first request; tiers never share (their capacity
  /// gates differ), but every (Use, Free, F) query with the same thread
  /// pair within one tier does. References stay valid for the lifetime
  /// of this HbQuery (map nodes are stable).
  template <typename FnT>
  const PairSkeleton &pairSkeleton(const threadify::ModeledThread *UseT,
                                   const threadify::ModeledThread *FreeT,
                                   size_t MaxThreads, size_t MaxComponents,
                                   FnT &&Fn) const {
    const auto Key = std::make_tuple(UseT, FreeT, MaxThreads, MaxComponents);
    {
      std::lock_guard<std::mutex> Lock(SkeletonMu);
      auto It = Skeletons.find(Key);
      if (It != Skeletons.end())
        return It->second;
    }
    PairSkeleton S;
    Fn(S);
    std::lock_guard<std::mutex> Lock(SkeletonMu);
    return Skeletons.emplace(Key, std::move(S)).first->second;
  }

private:
  /// The ordered non-API callee targets of \p M — one entry per
  /// (call site, inferred receiver class) resolution, in statement
  /// order, duplicates preserved — so replaying them through a BFS
  /// reproduces collectReachableMethods' push order exactly.
  const std::vector<ir::Method *> &adjacencyOf(ir::Method *M) const;

  const android::ApiIndex &Apis;
  /// Dense thread indexing in forest order.
  std::map<const threadify::ModeledThread *, unsigned> Index;
  /// PostedAfter[postee] has bit poster set when postedAfter holds.
  std::vector<support::BitVector> PostedAfter;

  mutable std::mutex AdjMu;
  mutable std::map<const ir::Method *, std::vector<ir::Method *>> Adjacency;
  mutable std::mutex ReachMu;
  mutable std::map<const ir::Method *, std::vector<ir::Method *>> ReachMemo;

  /// NumPairSlots × N × N tri-state cells (0 unknown / 1 false / 2 true).
  mutable std::unique_ptr<std::atomic<uint8_t>[]> PairBits;

  mutable std::mutex FieldPairMu;
  mutable std::map<std::tuple<const threadify::ModeledThread *,
                              const threadify::ModeledThread *,
                              const ir::Field *>,
                   bool>
      FieldPairMemo;

  mutable std::mutex SkeletonMu;
  mutable std::map<std::tuple<const threadify::ModeledThread *,
                              const threadify::ModeledThread *, size_t,
                              size_t>,
                   PairSkeleton>
      Skeletons;
};

} // namespace nadroid::analysis

#endif // NADROID_ANALYSIS_HBQUERY_H
