//===- analysis/Typestate.cpp - Protocol typestate checking -------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/Typestate.h"

#include "analysis/Cfg.h"
#include "support/Casting.h"

#include <algorithm>
#include <deque>
#include <set>
#include <tuple>

using namespace nadroid;
using namespace nadroid::analysis;
using android::ApiKind;
using android::FrameworkSpec;
using threadify::ModeledThread;
using threadify::ThreadOrigin;
using Protocol = FrameworkSpec::Protocol;

namespace {

/// Applies one API event to a state set, per bit: a bit within a matching
/// transition's FromMask moves to that transition's To (first spec-order
/// match wins); other bits are kept. In \p May mode the source bits are
/// kept as well (the event may or may not happen on this path), and
/// origins are stamped only on states that become newly possible.
uint8_t applyEvent(const Protocol &Pr, ApiKind K, uint8_t Mask, bool May,
                   const ir::Stmt *S, const ir::Stmt **Origin) {
  uint8_t Out = 0, Moved = 0;
  for (unsigned B = 0; B < Pr.States.size(); ++B) {
    if (!(Mask & (1u << B)))
      continue;
    const Protocol::Transition *Match = nullptr;
    for (const Protocol::Transition &Tr : Pr.Transitions)
      if (Tr.Api == K && (Tr.FromMask & (1u << B))) {
        Match = &Tr;
        break;
      }
    if (Match) {
      Out |= uint8_t(1u << Match->To);
      Moved |= uint8_t(1u << Match->To);
    }
    if (!Match || May)
      Out |= uint8_t(1u << B);
  }
  for (unsigned B = 0; B < Pr.States.size(); ++B) {
    if (!(Moved & (1u << B)))
      continue;
    if (!May || !(Mask & (1u << B)))
      Origin[B] = S;
  }
  return Out;
}

std::string firstStateName(const Protocol &Pr, uint8_t Mask) {
  for (unsigned B = 0; B < Pr.States.size(); ++B)
    if (Mask & (1u << B))
      return Pr.States[B];
  return "?";
}

/// The API kinds this machine watches: every transition trigger plus
/// every error-call trigger. Events outside this mask cannot move the
/// machine or fire a rule.
uint32_t protoEventMask(const Protocol &Pr) {
  uint32_t Mask = 0;
  for (const Protocol::Transition &Tr : Pr.Transitions)
    Mask |= 1u << static_cast<unsigned>(Tr.Api);
  for (const Protocol::ErrorRule &R : Pr.Errors)
    if (!R.AtCallback)
      Mask |= 1u << static_cast<unsigned>(R.Api);
  return Mask;
}

} // namespace

//===----------------------------------------------------------------------===//
// Per-callback transfer summaries
//===----------------------------------------------------------------------===//

/// The flow-sensitive summary of one callback body against one protocol:
/// for each possible entry state, the exit state set, the transition
/// statement that produced each exit state (null when the state was
/// carried through unchanged), and every error-call rule hit with the
/// entry states under which it fires.
struct TypestateAnalysis::Transfer {
  unsigned NumStates = 0;
  uint8_t ExitMask[8] = {};
  const ir::Stmt *ExitOrigin[8][8] = {};
  struct CallHit {
    const Protocol::ErrorRule *Rule = nullptr;
    const ir::Stmt *At = nullptr;
    uint8_t EntryMask = 0; ///< Entry states under which the rule fires.
    uint8_t StateMask = 0; ///< Bad states live at the call.
  };
  std::vector<CallHit> CallHits;
};

uint32_t TypestateAnalysis::ownEventMask(const ir::Method *M) {
  auto Found = OwnEvents.find(M);
  if (Found != OwnEvents.end())
    return Found->second;
  uint32_t Mask = 0;
  ir::forEachStmt(*M, [&](const ir::Stmt &S) {
    const auto *Call = dyn_cast<ir::CallStmt>(&S);
    if (!Call)
      return;
    ApiKind K = Apis.lookup(*Call).Kind;
    if (K != ApiKind::None)
      Mask |= 1u << static_cast<unsigned>(K);
  });
  OwnEvents.emplace(M, Mask);
  return Mask;
}

uint32_t TypestateAnalysis::helperEventMask(ir::Method *M) {
  auto Found = HelperEvents.find(M);
  if (Found != HelperEvents.end())
    return Found->second;
  uint32_t Mask = 0;
  for (ir::Method *R : Hb.reachableFrom(M))
    if (R != M)
      Mask |= ownEventMask(R);
  HelperEvents.emplace(M, Mask);
  return Mask;
}

const TypestateAnalysis::Transfer &
TypestateAnalysis::transferOf(ir::Method *M, const Protocol &Pr) {
  auto Key = std::make_pair(static_cast<const ir::Method *>(M), &Pr);
  auto Found = Transfers.find(Key);
  if (Found != Transfers.end())
    return *Found->second;

  auto TF = std::make_unique<Transfer>();
  TF->NumStates = static_cast<unsigned>(Pr.States.size());

  // API events reachable through ordinary calls out of this callback: a
  // register hidden inside a helper makes its target state possible at
  // the helper's call site instead of being missed entirely. The
  // program-wide scan is cached per method across protocols; only the
  // kinds some transition of *this* machine watches can move its states.
  std::vector<ApiKind> HelperKinds;
  uint32_t HelperMask = helperEventMask(M);
  for (const Protocol::Transition &Tr : Pr.Transitions)
    if (HelperMask & (1u << static_cast<unsigned>(Tr.Api)))
      if (std::find(HelperKinds.begin(), HelperKinds.end(), Tr.Api) ==
          HelperKinds.end())
        HelperKinds.push_back(Tr.Api);

  // A callback that neither performs nor reaches any event this machine
  // watches is the identity transfer — no CFG sweep needed. This is the
  // common case: most callbacks of most components touch none of a
  // given protocol's APIs.
  if (!((ownEventMask(M) | HelperMask) & protoEventMask(Pr))) {
    for (unsigned E = 0; E < TF->NumStates; ++E)
      TF->ExitMask[E] = uint8_t(1u << E);
    const Transfer &Ref = *TF;
    Transfers.emplace(Key, std::move(TF));
    return Ref;
  }

  const Cfg &G = Cfgs.get(*M);
  struct NodeState {
    bool Reached = false;
    uint8_t Mask = 0;
    const ir::Stmt *Origin[8] = {};
  };
  auto Merge = [](NodeState &Dst, const NodeState &Src) {
    if (!Dst.Reached) {
      Dst = Src;
      return;
    }
    Dst.Mask |= Src.Mask;
    for (unsigned B = 0; B < 8; ++B)
      if (!Dst.Origin[B] && Src.Origin[B])
        Dst.Origin[B] = Src.Origin[B];
  };

  for (unsigned E = 0; E < TF->NumStates; ++E) {
    std::vector<NodeState> In(G.size());
    In[G.entry()].Reached = true;
    In[G.entry()].Mask = uint8_t(1u << E);
    for (uint32_t N : G.rpo()) {
      NodeState Cur = In[N];
      if (!Cur.Reached)
        continue;
      for (const ir::Stmt *S : G.node(N).Stmts) {
        const auto *Call = dyn_cast<ir::CallStmt>(S);
        if (!Call)
          continue;
        ApiKind K = Apis.lookup(*Call).Kind;
        if (K == ApiKind::None) {
          // Ordinary call: saturate under the helper event set.
          bool Changed = !HelperKinds.empty();
          while (Changed) {
            Changed = false;
            for (ApiKind HK : HelperKinds) {
              uint8_t NewMask =
                  applyEvent(Pr, HK, Cur.Mask, /*May=*/true, S, Cur.Origin);
              if (NewMask != Cur.Mask) {
                Cur.Mask = NewMask;
                Changed = true;
              }
            }
          }
          continue;
        }
        for (const Protocol::ErrorRule &R : Pr.Errors) {
          if (R.AtCallback || R.Api != K || !(Cur.Mask & R.InMask))
            continue;
          uint8_t Bad = Cur.Mask & R.InMask;
          auto Same = std::find_if(TF->CallHits.begin(), TF->CallHits.end(),
                                   [&](const Transfer::CallHit &H) {
                                     return H.Rule == &R && H.At == S;
                                   });
          if (Same == TF->CallHits.end())
            TF->CallHits.push_back({&R, S, uint8_t(1u << E), Bad});
          else {
            Same->EntryMask |= uint8_t(1u << E);
            Same->StateMask |= Bad;
          }
        }
        Cur.Mask = applyEvent(Pr, K, Cur.Mask, /*May=*/false, S, Cur.Origin);
      }
      for (const CfgEdge &Edge : G.node(N).Succs)
        Merge(In[Edge.To], Cur);
    }
    const NodeState &X = In[G.exit()];
    if (X.Reached) {
      TF->ExitMask[E] = X.Mask;
      for (unsigned B = 0; B < 8; ++B)
        TF->ExitOrigin[E][B] = X.Origin[B];
    } else {
      TF->ExitMask[E] = uint8_t(1u << E); // defensive: identity
    }
  }

  const Transfer &Ref = *TF;
  Transfers.emplace(Key, std::move(TF));
  return Ref;
}

TypestateAnalysis::~TypestateAnalysis() = default;

//===----------------------------------------------------------------------===//
// Inter-callback exploration
//===----------------------------------------------------------------------===//

TypestateAnalysis::TypestateAnalysis(
    const ir::Program &P, const FrameworkSpec &Spec,
    const android::ApiIndex &Apis, const threadify::ThreadForest &Forest,
    const HbQuery &Hb, MethodCfgCache &Cfgs, const support::Deadline *D)
    : P(P), Spec(Spec), Apis(Apis), Forest(Forest), Hb(Hb), Cfgs(Cfgs),
      D(D) {
  if (Spec.protocols().empty())
    return;

  // Group the forest's threads by owning component, in thread-id order.
  std::map<ir::Clazz *, std::vector<const ModeledThread *>> ByComp;
  for (const auto &T : Forest.threads())
    if (T->component() && T->callback())
      ByComp[T->component()].push_back(T.get());

  std::vector<ir::Clazz *> Comps;
  Comps.reserve(ByComp.size());
  for (const auto &[C, Ts] : ByComp)
    Comps.push_back(C);
  std::sort(Comps.begin(), Comps.end(),
            [](ir::Clazz *A, ir::Clazz *B) { return A->name() < B->name(); });

  for (ir::Clazz *C : Comps)
    checkComponent(C, ByComp[C]);

  std::stable_sort(
      Findings.begin(), Findings.end(),
      [](const TypestateFinding &A, const TypestateFinding &B) {
        return std::make_tuple(A.Component->name(), A.Proto->Name,
                               A.Rule->Line, A.At ? A.At->id() : 0u) <
               std::make_tuple(B.Component->name(), B.Proto->Name,
                               B.Rule->Line, B.At ? B.At->id() : 0u);
      });
}

void TypestateAnalysis::checkComponent(
    ir::Clazz *C, const std::vector<const ModeledThread *> &Ts) {
  constexpr unsigned NotCreated =
      static_cast<unsigned>(FrameworkSpec::Phase::NotCreated);
  constexpr unsigned Resumed =
      static_cast<unsigned>(FrameworkSpec::Phase::Resumed);
  constexpr unsigned Paused =
      static_cast<unsigned>(FrameworkSpec::Phase::Paused);

  for (const Protocol &Pr : Spec.protocols()) {
    if (D)
      D->check("typestate");

    // Component-level fast path: if no callback of this component can
    // produce an event the machine watches, the state never leaves the
    // initial one, so the only way a rule fires is an `on-callback`
    // transition moving it or an `error-at` rule naming the initial
    // state. When none of those apply either, skip the exploration.
    const uint32_t PrMask = protoEventMask(Pr);
    uint32_t CompMask = 0;
    bool AnyCallbackRule = false;
    for (const ModeledThread *T : Ts) {
      ir::Method *M = T->callback();
      CompMask |= ownEventMask(M) | helperEventMask(M);
      for (const Protocol::CallbackTransition &CT : Pr.CallbackTransitions)
        if (CT.Callback == M->name())
          AnyCallbackRule = true;
      for (const Protocol::ErrorRule &R : Pr.Errors)
        if (R.AtCallback && (R.InMask & (1u << Pr.Initial)) &&
            R.Callback == M->name())
          AnyCallbackRule = true;
    }
    if (!(CompMask & PrMask) && !AnyCallbackRule)
      continue;

    // Per-thread facts that do not depend on the configuration: the
    // lifecycle rule, origin category, and this machine's per-callback
    // transitions and error rules (matched by name once, not per config).
    // Transfers stay lazy — a thread never admitted by the phase machine
    // never pays for its CFG sweep.
    struct ThreadInfo {
      const FrameworkSpec::PhaseRule *PR = nullptr;
      bool IsEntry = false;
      bool NeedsResumed = false;
      const Transfer *TF = nullptr;
      std::vector<const Protocol::CallbackTransition *> CTs;
      std::vector<const Protocol::ErrorRule *> AtRules;
    };
    std::vector<ThreadInfo> Infos(Ts.size());
    for (size_t I = 0; I < Ts.size(); ++I) {
      const ModeledThread *T = Ts[I];
      const std::string &Name = T->callback()->name();
      ThreadInfo &TI = Infos[I];
      TI.PR = Spec.phaseRule(Name);
      TI.IsEntry = T->origin() == ThreadOrigin::EntryCallback;
      TI.NeedsResumed = TI.IsEntry && Spec.needsResumed(T->callbackKind());
      for (const Protocol::CallbackTransition &CT : Pr.CallbackTransitions)
        if (CT.Callback == Name)
          TI.CTs.push_back(&CT);
      for (const Protocol::ErrorRule &R : Pr.Errors)
        if (R.AtCallback && R.Callback == Name)
          TI.AtRules.push_back(&R);
    }

    const unsigned NS = static_cast<unsigned>(Pr.States.size());
    const unsigned NumCfg = FrameworkSpec::NumPhases * 2 * NS;
    auto Enc = [NS](unsigned Ph, unsigned Pend, unsigned St) {
      return (Ph * 2 + Pend) * NS + St;
    };

    // BFS over (phase, pending, state) configurations. Prev pointers
    // reconstruct the shortest activation chain to any configuration;
    // Origin carries the statement that last moved the protocol state.
    std::vector<int> PrevCfg(NumCfg, -2), PrevThread(NumCfg, -1);
    std::vector<const ir::Stmt *> Origin(NumCfg, nullptr);
    std::deque<unsigned> Work;
    const unsigned Init = Enc(NotCreated, 0, Pr.Initial);
    PrevCfg[Init] = -1;
    Work.push_back(Init);

    auto ChainTo = [&](int Cfg) {
      std::vector<std::string> Chain;
      for (int X = Cfg; X >= 0 && PrevThread[X] >= 0; X = PrevCfg[X])
        Chain.push_back(Ts[static_cast<size_t>(PrevThread[X])]->label());
      std::reverse(Chain.begin(), Chain.end());
      return Chain;
    };

    std::set<std::tuple<const Protocol::ErrorRule *, const ir::Stmt *,
                        const ir::Method *>>
        Seen;
    auto Emit = [&](const Protocol::ErrorRule &R, const ir::Stmt *At,
                    const ir::Method *In, uint8_t BadMask,
                    std::vector<std::string> Chain) {
      if (!Seen.insert({&R, At, In}).second)
        return;
      TypestateFinding F;
      F.Proto = &Pr;
      F.Rule = &R;
      F.Component = C;
      F.At = At;
      F.In = In;
      F.State = firstStateName(Pr, BadMask);
      F.Chain = std::move(Chain);
      Findings.push_back(std::move(F));
    };

    while (!Work.empty()) {
      const unsigned Cfg = Work.front();
      Work.pop_front();
      const unsigned St = Cfg % NS;
      const unsigned Ph = (Cfg / NS) / 2;
      const unsigned Pend = (Cfg / NS) % 2;

      for (size_t I = 0; I < Ts.size(); ++I) {
        const ModeledThread *T = Ts[I];
        ThreadInfo &TI = Infos[I];

        // Lifecycle legality — the same phase machine the refuter tiers
        // interpret. Callbacks with a phase rule follow it; other entry
        // callbacks need a live component (UI ones a resumed one);
        // posted/native threads run in any created phase (including
        // Destroyed — that is the ordering-violation window).
        bool Adm;
        unsigned NPh = Ph, NPend = Pend;
        if (const FrameworkSpec::PhaseRule *PR = TI.PR) {
          Adm = (PR->FromMask >> Ph) & 1;
          if (!Adm && PR->FromResumedPending && Ph == Resumed && Pend)
            Adm = true;
          if (Adm) {
            NPh = static_cast<unsigned>(PR->To);
            if (PR->SetsPending)
              NPend = 1;
            if (PR->ClearsPending)
              NPend = 0;
          }
        } else if (TI.IsEntry) {
          Adm = TI.NeedsResumed ? Ph == Resumed : (Ph == Resumed || Ph == Paused);
        } else {
          Adm = Ph != NotCreated;
        }
        if (!Adm)
          continue;

        // `on-callback` transitions apply at activation, before the body.
        unsigned CurSt = St;
        for (const Protocol::CallbackTransition *CT : TI.CTs)
          if (CT->FromMask & (1u << CurSt)) {
            CurSt = CT->To;
            break;
          }

        if (!TI.TF)
          TI.TF = &transferOf(T->callback(), Pr);
        const Transfer &TF = *TI.TF;

        for (const Transfer::CallHit &H : TF.CallHits)
          if (H.EntryMask & (1u << CurSt)) {
            std::vector<std::string> Chain = ChainTo(int(Cfg));
            Chain.push_back(T->label());
            Emit(*H.Rule, H.At, H.At->parentMethod(), H.StateMask,
                 std::move(Chain));
          }

        const uint8_t Exit = TF.ExitMask[CurSt];

        // `error-at` rules judge the *exit* states of the named callback:
        // discharging the obligation inside it is the canonical fix.
        for (const Protocol::ErrorRule *R : TI.AtRules) {
          const uint8_t Bad = Exit & R->InMask;
          if (!Bad)
            continue;
          unsigned B = 0;
          while (!(Bad & (1u << B)))
            ++B;
          const ir::Stmt *At =
              TF.ExitOrigin[CurSt][B] ? TF.ExitOrigin[CurSt][B] : Origin[Cfg];
          std::vector<std::string> Chain = ChainTo(int(Cfg));
          Chain.push_back(T->label());
          Emit(*R, At, At ? At->parentMethod() : T->callback(), Bad,
               std::move(Chain));
        }

        for (unsigned B = 0; B < NS; ++B) {
          if (!(Exit & (1u << B)))
            continue;
          const unsigned NC = Enc(NPh, NPend, B);
          if (PrevCfg[NC] != -2)
            continue;
          PrevCfg[NC] = static_cast<int>(Cfg);
          PrevThread[NC] = static_cast<int>(I);
          Origin[NC] =
              TF.ExitOrigin[CurSt][B] ? TF.ExitOrigin[CurSt][B] : Origin[Cfg];
          Work.push_back(NC);
        }
      }
    }
  }
}
