//===- analysis/Lockset.cpp - Lockset analysis --------------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lockset.h"

using namespace nadroid;
using namespace nadroid::analysis;
using namespace nadroid::ir;

namespace {

void buildNesting(
    const Block &B, std::vector<const SyncStmt *> &Stack,
    std::map<const Stmt *, std::vector<const SyncStmt *>> &Out) {
  for (const auto &S : B.stmts()) {
    Out.emplace(S.get(), Stack);
    if (const auto *If = dyn_cast<IfStmt>(S.get())) {
      buildNesting(If->thenBlock(), Stack, Out);
      buildNesting(If->elseBlock(), Stack, Out);
    } else if (const auto *Sync = dyn_cast<SyncStmt>(S.get())) {
      Stack.push_back(Sync);
      buildNesting(Sync->body(), Stack, Out);
      Stack.pop_back();
    }
  }
}

} // namespace

const std::map<const Stmt *, std::vector<const SyncStmt *>> &
LocksetAnalysis::nestingFor(const Method *M) const {
  std::lock_guard<std::mutex> Lock(CacheMu);
  auto It = NestingCache.find(M);
  if (It != NestingCache.end())
    return It->second;
  std::map<const Stmt *, std::vector<const SyncStmt *>> Nesting;
  std::vector<const SyncStmt *> Stack;
  buildNesting(M->body(), Stack, Nesting);
  return NestingCache.emplace(M, std::move(Nesting)).first->second;
}

const std::vector<const SyncStmt *> &
LocksetAnalysis::enclosingSyncs(const Stmt *S) const {
  static const std::vector<const SyncStmt *> Empty;
  const auto &Nesting = nestingFor(S->parentMethod());
  auto It = Nesting.find(S);
  return It == Nesting.end() ? Empty : It->second;
}

std::set<ObjectId> LocksetAnalysis::locksHeldAt(const Stmt *S,
                                                const MethodCtx &Ctx) const {
  std::set<ObjectId> Locks;
  for (const SyncStmt *Sync : enclosingSyncs(S)) {
    const std::set<ObjectId> &Pts = PTA.ptsOf(Sync->lock(), Ctx);
    Locks.insert(Pts.begin(), Pts.end());
  }
  return Locks;
}
