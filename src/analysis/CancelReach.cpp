//===- analysis/CancelReach.cpp - Cancellation reachability (CHB) -------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/CancelReach.h"

#include "android/SyntacticReach.h"

using namespace nadroid;
using namespace nadroid::analysis;
using namespace nadroid::ir;

const std::vector<CancelInfo> &CancelReach::cancelsFrom(Method *M) const {
  std::lock_guard<std::mutex> Lock(CacheMu);
  auto It = Cache.find(M);
  if (It != Cache.end())
    return It->second;

  std::vector<CancelInfo> Cancels;
  for (Method *Reached : android::collectReachableMethods(M, Apis)) {
    forEachStmt(*Reached, [&](const Stmt &S) {
      const auto *Call = dyn_cast<CallStmt>(&S);
      if (!Call)
        return;
      const android::ApiCallInfo &Info = Apis.lookup(*Call);
      if (!android::isCancellationApi(Info.Kind))
        return;
      Cancels.push_back({Info.Kind, Info.Target, Call});
    });
  }
  return Cache.emplace(M, std::move(Cancels)).first->second;
}
