//===- analysis/CancelReach.cpp - Cancellation reachability (CHB) -------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/CancelReach.h"

#include "analysis/HbQuery.h"
#include "android/SyntacticReach.h"

using namespace nadroid;
using namespace nadroid::analysis;
using namespace nadroid::ir;

const std::vector<CancelInfo> &CancelReach::cancelsFrom(Method *M) const {
  std::lock_guard<std::mutex> Lock(CacheMu);
  auto It = Cache.find(M);
  if (It != Cache.end())
    return It->second;

  // HbQuery reproduces collectReachableMethods' discovery order exactly,
  // so the cancel list (and everything downstream of it) is unchanged.
  std::vector<Method *> Fallback;
  const std::vector<Method *> *Reachable;
  if (HQ) {
    Reachable = &HQ->reachableFrom(M);
  } else {
    Fallback = android::collectReachableMethods(M, Apis);
    Reachable = &Fallback;
  }

  std::vector<CancelInfo> Cancels;
  for (Method *Reached : *Reachable) {
    forEachStmt(*Reached, [&](const Stmt &S) {
      const auto *Call = dyn_cast<CallStmt>(&S);
      if (!Call)
        return;
      const android::ApiCallInfo &Info = Apis.lookup(*Call);
      if (!android::isCancellationApi(Info.Kind))
        return;
      Cancels.push_back({Info.Kind, Info.Target, Call});
    });
  }
  return Cache.emplace(M, std::move(Cancels)).first->second;
}
