//===- analysis/Escape.h - Thread-escape analysis ---------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chord-style thread-escape analysis (§5): an abstract object escapes
/// when the code of two different modeled threads may access one of its
/// fields. Over the threadified program, escape is what turns the
/// classical "only escaping objects can race" precondition into the
/// event-aware one — an object touched by two event callbacks escapes
/// even though a conventional thread-based analysis would call it
/// looper-local.
///
/// The detector's racy-pair condition (distinct modeled threads with
/// aliasing bases) subsumes this check pair-by-pair; the standalone
/// analysis exists for Chord architectural fidelity, for statistics, and
/// as a cheap prefilter.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_ANALYSIS_ESCAPE_H
#define NADROID_ANALYSIS_ESCAPE_H

#include "analysis/PointsTo.h"
#include "analysis/ThreadReach.h"

namespace nadroid::analysis {

/// Computes, per abstract object, the set of modeled threads that may
/// access its fields.
class EscapeAnalysis {
public:
  EscapeAnalysis(const PointsToAnalysis &PTA, const ThreadReach &Reach,
                 const threadify::ThreadForest &Forest);

  /// True when ≥2 modeled threads may access \p Obj.
  bool escapes(ObjectId Obj) const { return Escaping.count(Obj) != 0; }

  /// All escaping objects.
  const std::set<ObjectId> &escapingObjects() const { return Escaping; }

  /// Threads that may access \p Obj (empty when never accessed).
  std::vector<const threadify::ModeledThread *>
  accessors(ObjectId Obj) const;

private:
  std::map<ObjectId, std::set<const threadify::ModeledThread *>>
      AccessedBy;
  std::set<ObjectId> Escaping;
};

} // namespace nadroid::analysis

#endif // NADROID_ANALYSIS_ESCAPE_H
