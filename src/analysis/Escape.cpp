//===- analysis/Escape.cpp - Thread-escape analysis ----------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/Escape.h"

using namespace nadroid;
using namespace nadroid::analysis;
using namespace nadroid::ir;

EscapeAnalysis::EscapeAnalysis(const PointsToAnalysis &PTA,
                               const ThreadReach &Reach,
                               const threadify::ThreadForest &Forest) {
  for (const auto &T : Forest.threads()) {
    for (const MethodCtx &Ctx : Reach.contextsOf(T.get())) {
      forEachStmt(*Ctx.M, [&](const Stmt &S) {
        const Local *Base = nullptr;
        if (const auto *Load = dyn_cast<LoadStmt>(&S))
          Base = Load->base();
        else if (const auto *Store = dyn_cast<StoreStmt>(&S))
          Base = Store->base();
        if (!Base)
          return;
        for (ObjectId Obj : PTA.ptsOf(Base, Ctx))
          AccessedBy[Obj].insert(T.get());
      });
    }
  }
  for (const auto &[Obj, Threads] : AccessedBy)
    if (Threads.size() >= 2)
      Escaping.insert(Obj);
}

std::vector<const threadify::ModeledThread *>
EscapeAnalysis::accessors(ObjectId Obj) const {
  auto It = AccessedBy.find(Obj);
  if (It == AccessedBy.end())
    return {};
  return {It->second.begin(), It->second.end()};
}
