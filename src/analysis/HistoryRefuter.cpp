//===- analysis/HistoryRefuter.cpp - History-predicate refinement -------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/HistoryRefuter.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace nadroid;
using namespace nadroid::analysis;
using namespace nadroid::ir;
using android::FrameworkSpec;
using threadify::ThreadOrigin;

namespace {

/// Tier-2 capacities: roomier than tier 1 (deep post chains and
/// multi-component pairs that tier 1 demoted get a real attempt), still
/// bounded so the parallel sweep stays responsive.
constexpr size_t MaxThreadsV2 = 24;
constexpr size_t MaxComponentsV2 = 8;
constexpr unsigned MaxStatesV2 = 200000;
constexpr unsigned MaxRounds = 12;
/// Ceiling of the per-thread activation caps the refinement may reach.
constexpr uint8_t CapMax = 5;

constexpr uint8_t PhNotCreated =
    static_cast<uint8_t>(FrameworkSpec::Phase::NotCreated);
constexpr uint8_t PhResumed =
    static_cast<uint8_t>(FrameworkSpec::Phase::Resumed);
constexpr uint8_t PhDestroyed =
    static_cast<uint8_t>(FrameworkSpec::Phase::Destroyed);

/// One step of an abstract history: which thread activated, and (for the
/// free thread) whether it took the freeing path.
struct Move {
  size_t Thread = 0;
  bool DoFree = false;
};

/// The unpacked search state of the tier-2 predicate: per-thread counts
/// saturating at *individual* caps, plus the exact phase/kill/freed/
/// pending machine. Keys are byte strings — 24 threads no longer fit a
/// packed 64-bit word.
struct HState {
  std::vector<uint8_t> Count;
  std::vector<uint8_t> PhaseOf;
  uint32_t Killed = 0;
  uint8_t Pending = 0;
  bool Freed = false;

  std::string key() const {
    std::string K;
    K.reserve(Count.size() + PhaseOf.size() + 6);
    K.append(reinterpret_cast<const char *>(Count.data()), Count.size());
    K.append(reinterpret_cast<const char *>(PhaseOf.data()), PhaseOf.size());
    for (int B = 0; B < 4; ++B)
      K.push_back(static_cast<char>((Killed >> (8 * B)) & 0xff));
    K.push_back(static_cast<char>(Pending));
    K.push_back(static_cast<char>(Freed));
    return K;
  }
};

/// Lifecycle legality shared by the abstract search and exact replay —
/// the phase machine is exact, so both use the same predicate.
bool phaseLegal(const ModelThread &TI, uint8_t Ph, bool Pending) {
  if (TI.Comp < 0 || TI.T->origin() != ThreadOrigin::EntryCallback)
    return true;
  if (TI.PhaseRule) {
    if ((TI.PhaseRule->FromMask >> Ph) & 1)
      return true;
    return TI.PhaseRule->FromResumedPending && Ph == PhResumed && Pending;
  }
  if (TI.NeedsResumed)
    return Ph == PhResumed;
  return Ph != PhNotCreated && Ph != PhDestroyed;
}

/// The event-order search under one history predicate (one cap vector).
class HistorySearch {
public:
  HistorySearch(const RefuterModel &M, const ir::Field *F,
                const std::vector<uint8_t> &Caps, const support::Deadline *D)
      : M(M), F(F), Caps(Caps), D(D) {}

  /// True when some abstract history ends with the use observing the
  /// freed field; Moves/Trace then hold it (Trace = labeled Moves).
  bool findCrash(std::vector<Move> &Moves, std::vector<std::string> &Trace) {
    HState Init;
    Init.Count.assign(M.Threads.size(), 0);
    Init.PhaseOf.assign(M.NumComponents, PhResumed);
    for (size_t C = 0; C < M.NumComponents; ++C) {
      if (M.componentHasCreate(C))
        Init.PhaseOf[C] = PhNotCreated;
      Init.Pending |= uint8_t(1) << C;
    }
    Visited.clear();
    return search(Init, Moves, Trace);
  }

  unsigned statesExplored() const {
    return static_cast<unsigned>(Visited.size());
  }
  bool budgetExceeded() const { return BudgetExceeded; }

  std::string label(size_t I, bool DoFree, bool Crash) const {
    std::string L = M.Threads[I].T->label();
    if (DoFree)
      L += " — frees " + F->name();
    else if (Crash)
      L += " — uses " + F->name() + " after the free (crash)";
    else if (M.Threads[I].MustRealloc)
      L += " — re-allocates " + F->name();
    return L;
  }

private:
  const RefuterModel &M;
  const ir::Field *F;
  const std::vector<uint8_t> &Caps;
  const support::Deadline *D = nullptr;
  std::set<std::string> Visited;
  bool BudgetExceeded = false;

  bool legal(const HState &S, size_t I) const {
    const ModelThread &TI = M.Threads[I];
    if (S.Killed & (uint32_t(1) << I))
      return false;
    if (TI.OnceOnly && S.Count[I] >= 1)
      return false;
    if (TI.Comp >= 0 &&
        !phaseLegal(TI, S.PhaseOf[TI.Comp],
                    (S.Pending >> TI.Comp) & 1))
      return false;
    if (TI.Parent >= 0) {
      uint8_t PCount = S.Count[TI.Parent];
      if (PCount == 0)
        return false;
      // One run per post: a saturated poster count admits any number of
      // runs (over-approximation the replay/refinement tightens).
      if (TI.OnePerPost && PCount < Caps[TI.Parent] && S.Count[I] >= PCount)
        return false;
    }
    for (int Pred : TI.FifoPred) {
      if (S.Killed & (uint32_t(1) << Pred))
        continue;
      uint8_t PredCount = S.Count[Pred];
      if (PredCount < Caps[Pred] && PredCount <= S.Count[I])
        return false;
    }
    return true;
  }

  HState apply(HState S, size_t I, bool DoFree) const {
    const ModelThread &TI = M.Threads[I];
    if (S.Count[I] < Caps[I])
      ++S.Count[I];
    if (TI.PhaseRule) {
      S.PhaseOf[TI.Comp] = static_cast<uint8_t>(TI.PhaseRule->To);
      if (TI.PhaseRule->SetsPending)
        S.Pending |= uint8_t(1) << TI.Comp;
      if (TI.PhaseRule->ClearsPending)
        S.Pending &= ~(uint8_t(1) << TI.Comp);
    }
    if (static_cast<int>(I) == M.FreeIdx && DoFree) {
      S.Freed = !M.FreeMustRealloc;
      for (const ModelCancel &C : M.Cancels)
        S.Killed |= C.KillMask;
    } else if (TI.MustRealloc) {
      S.Freed = false;
    }
    return S;
  }

  bool search(const HState &Init, std::vector<Move> &Moves,
              std::vector<std::string> &Trace) {
    struct Frame {
      HState S;
      size_t NextThread = 0;
      unsigned NextAlt = 0;
      Move Mv;
      bool HasMv = false;
    };
    std::vector<Frame> Stack;
    auto push = [&](HState S, Move Mv, bool HasMv) {
      if (!Visited.insert(S.key()).second)
        return;
      if (Visited.size() > MaxStatesV2) {
        BudgetExceeded = true;
        return;
      }
      Frame G;
      G.S = std::move(S);
      G.Mv = Mv;
      G.HasMv = HasMv;
      Stack.push_back(std::move(G));
    };
    push(Init, Move{}, false);
    while (!Stack.empty()) {
      if (D)
        D->check("historyrefuter");
      Frame &Fr = Stack.back();
      if (Fr.NextThread >= M.Threads.size()) {
        Stack.pop_back();
        continue;
      }
      const size_t I = Fr.NextThread;
      if (Fr.NextAlt == 0) {
        if (!legal(Fr.S, I)) {
          ++Fr.NextThread;
          continue;
        }
        if (static_cast<int>(I) == M.UseIdx && Fr.S.Freed &&
            !M.UseProtected) {
          for (const Frame &G : Stack)
            if (G.HasMv) {
              Moves.push_back(G.Mv);
              Trace.push_back(label(G.Mv.Thread, G.Mv.DoFree, false));
            }
          Moves.push_back(Move{I, false});
          Trace.push_back(label(I, false, /*Crash=*/true));
          return true;
        }
      }
      const unsigned NumAlts = static_cast<int>(I) == M.FreeIdx ? 2 : 1;
      if (Fr.NextAlt >= NumAlts) {
        Fr.NextAlt = 0;
        ++Fr.NextThread;
        continue;
      }
      const bool DoFree = static_cast<int>(I) == M.FreeIdx && Fr.NextAlt == 0;
      ++Fr.NextAlt;
      HState NS = apply(Fr.S, I, DoFree);
      push(std::move(NS), Move{I, DoFree}, true); // invalidates Fr
    }
    return false;
  }
};

/// Replays \p Moves under unbounded exact counters. Returns the index of
/// the first infeasible step, or -1 when the whole history is concretely
/// feasible. Phases/kills/freed evolve exactly as in the abstract search
/// (they are exact there too); only the count arithmetic differs.
int replayExact(const RefuterModel &M, const std::vector<Move> &Moves) {
  std::vector<uint64_t> Count(M.Threads.size(), 0);
  std::vector<uint8_t> Ph(M.NumComponents, PhResumed);
  uint32_t Killed = 0;
  uint8_t Pending = 0;
  bool Freed = false;
  (void)Freed;
  for (size_t C = 0; C < M.NumComponents; ++C) {
    if (M.componentHasCreate(C))
      Ph[C] = PhNotCreated;
    Pending |= uint8_t(1) << C;
  }
  for (size_t K = 0; K < Moves.size(); ++K) {
    const size_t I = Moves[K].Thread;
    const ModelThread &TI = M.Threads[I];
    if (Killed & (uint32_t(1) << I))
      return static_cast<int>(K);
    if (TI.OnceOnly && Count[I] >= 1)
      return static_cast<int>(K);
    if (TI.Comp >= 0 &&
        !phaseLegal(TI, Ph[TI.Comp], (Pending >> TI.Comp) & 1))
      return static_cast<int>(K);
    if (TI.Parent >= 0) {
      if (Count[TI.Parent] == 0)
        return static_cast<int>(K);
      if (TI.OnePerPost && Count[I] >= Count[TI.Parent])
        return static_cast<int>(K);
    }
    for (int Pred : TI.FifoPred) {
      if (Killed & (uint32_t(1) << Pred))
        continue;
      if (Count[Pred] <= Count[I])
        return static_cast<int>(K);
    }
    ++Count[I];
    if (TI.PhaseRule) {
      Ph[TI.Comp] = static_cast<uint8_t>(TI.PhaseRule->To);
      if (TI.PhaseRule->SetsPending)
        Pending |= uint8_t(1) << TI.Comp;
      if (TI.PhaseRule->ClearsPending)
        Pending &= ~(uint8_t(1) << TI.Comp);
    }
    if (static_cast<int>(I) == M.FreeIdx && Moves[K].DoFree) {
      Freed = !M.FreeMustRealloc;
      for (const ModelCancel &C : M.Cancels)
        Killed |= C.KillMask;
    } else if (TI.MustRealloc) {
      Freed = false;
    }
  }
  return -1;
}

/// Whether the revive refinement actually added facts.
bool reviveChanged(const RefuterModel &Old, const RefuterModel &New) {
  if (!New.ReviveFacts.empty())
    return true;
  if (Old.FreeMustRealloc != New.FreeMustRealloc)
    return true;
  for (size_t I = 0; I < Old.Threads.size(); ++I)
    if (Old.Threads[I].MustRealloc != New.Threads[I].MustRealloc)
      return true;
  return false;
}

std::string joinNames(const std::vector<std::string> &Names) {
  std::string Out;
  for (const std::string &N : Names) {
    if (!Out.empty())
      Out += ", ";
    Out += N;
  }
  return Out;
}

} // namespace

HistoryRefuter::HistoryRefuter(const ir::Program &P,
                               const threadify::ThreadForest &Forest,
                               const PointsToAnalysis &PTA,
                               const ThreadReach &Reach,
                               const CancelReach &Cancel,
                               const EscapeAnalysis &Escape,
                               MethodCfgCache &Cfgs,
                               MethodAllocFlowCache &Alloc,
                               const support::Deadline *D, const HbQuery *HQ)
    : Builder(Forest, PTA, Reach, Cancel, Escape, Cfgs, Alloc,
              android::FrameworkSpec::builtin(), HQ),
      D(D) {
  (void)P;
}

HistoryRefutation
HistoryRefuter::refine(const ir::LoadStmt *Use, const ir::StoreStmt *Free,
                       const ir::Field *F,
                       const threadify::ModeledThread *UseT,
                       const threadify::ModeledThread *FreeT) const {
  HistoryRefutation R;

  ModelOptions O;
  O.MaxThreads = MaxThreadsV2;
  O.MaxComponents = MaxComponentsV2;
  RefuterModel Model;
  if (!Builder.build(Use, Free, F, UseT, FreeT, O, Model).empty())
    return R; // inapplicable even at tier-2 capacity: tier-1 evidence stands

  // The history predicate: per-thread saturating activation caps,
  // strengthened from spurious counterexamples.
  std::vector<uint8_t> Caps(Model.Threads.size(), 2);
  std::vector<std::string> RoundLog;

  for (unsigned Round = 1; Round <= MaxRounds; ++Round) {
    R.Rounds = Round;
    HistorySearch S(Model, F, Caps, D);
    std::vector<Move> Moves;
    std::vector<std::string> Trace;
    const bool Crash = S.findCrash(Moves, Trace);
    R.StatesExplored += S.statesExplored();
    if (S.budgetExceeded())
      return R; // Assumed: the predicate got too fine for the budget

    if (!Crash) {
      // Obligation discharged: this predicate admits no history that
      // runs the use after the free.
      R.Ordered = true;
      std::ostringstream Abs;
      Abs << "history abstraction: " << Model.Threads.size()
          << " same-looper callback(s) over " << Model.NumComponents
          << " component(s), per-thread activation cap "
          << unsigned(*std::max_element(Caps.begin(), Caps.end()));
      R.ObligationChain.push_back(Abs.str());
      for (const std::string &Line : RoundLog)
        R.ObligationChain.push_back(Line);
      for (const ModelThread &TI : Model.Threads)
        if (TI.MustRealloc && !TI.ReviveViaHelper)
          R.ObligationChain.push_back(
              TI.T->label() + " re-allocates " + F->name() +
              " on every path — its activation revives the field (revive "
              "edge)");
      for (const std::string &Fact : Model.ReviveFacts)
        R.ObligationChain.push_back(Fact);
      for (const std::string &Fact : Model.CancelFacts)
        R.ObligationChain.push_back(Fact);
      R.ObligationChain.push_back(
          "lifecycle edges: onCreate first, onDestroy last, UI events only "
          "while resumed, onResume after launch/onCreate and after each "
          "onPause; posted callbacks follow their poster (per-looper FIFO)");
      std::ostringstream Done;
      Done << "discharged obligation: exhausted " << R.StatesExplored
           << " abstract state(s) across " << R.Rounds
           << " refinement round(s): no history runs the use after the free";
      R.ObligationChain.push_back(Done.str());
      return R;
    }

    const int Bad = replayExact(Model, Moves);
    if (Bad >= 0) {
      // Spurious: saturation admitted a history the exact counters
      // refute. Strengthen the predicate around the failing step.
      std::vector<std::string> Raised;
      auto raise = [&](int I) {
        if (I >= 0 && Caps[I] < CapMax) {
          ++Caps[I];
          Raised.push_back(Model.Threads[I].T->label());
        }
      };
      const ModelThread &TI = Model.Threads[Moves[Bad].Thread];
      raise(static_cast<int>(Moves[Bad].Thread));
      raise(TI.Parent);
      for (int Pred : TI.FifoPred)
        raise(Pred);
      if (Raised.empty())
        return R; // caps maxed out and still spurious: give up, Assumed
      std::ostringstream Line;
      Line << "refinement round " << Round << ": spurious history at step "
           << (Bad + 1) << " — raised activation cap of "
           << joinNames(Raised);
      RoundLog.push_back(Line.str());
      continue;
    }

    // The history is concretely feasible under the current facts. Try to
    // strengthen the facts themselves, one stage at a time.
    if (!O.InterprocRevive) {
      O.InterprocRevive = true;
      RefuterModel M2;
      if (Builder.build(Use, Free, F, UseT, FreeT, O, M2).empty() &&
          reviveChanged(Model, M2)) {
        std::ostringstream Line;
        Line << "refinement round " << Round
             << ": admitted inter-procedural revive facts ("
             << M2.ReviveFacts.size() << ")";
        RoundLog.push_back(Line.str());
        Model = std::move(M2);
        continue;
      }
    }
    if (!O.InterprocKill) {
      O.InterprocKill = true;
      RefuterModel M2;
      if (Builder.build(Use, Free, F, UseT, FreeT, O, M2).empty() &&
          M2.CancelFacts.size() > Model.CancelFacts.size()) {
        std::ostringstream Line;
        Line << "refinement round " << Round
             << ": admitted inter-procedural kill facts ("
             << (M2.CancelFacts.size() - Model.CancelFacts.size()) << ")";
        RoundLog.push_back(Line.str());
        Model = std::move(M2);
        continue;
      }
    }

    // No refinement changes anything: the witness is stable and genuine.
    R.Witness = std::move(Trace);
    return R;
  }
  return R; // round budget exhausted: Assumed, tier-1 evidence stands
}
