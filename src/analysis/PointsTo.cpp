//===- analysis/PointsTo.cpp - k-object-sensitive points-to ------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "analysis/PointsTo.h"

#include <cassert>

using namespace nadroid;
using namespace nadroid::analysis;
using namespace nadroid::ir;
using android::ApiCallInfo;
using android::ApiKind;
using android::CallbackKind;
using threadify::ModeledThread;
using threadify::ThreadOrigin;

std::string AbstractObject::describe() const {
  std::string Result;
  if (Site) {
    Result = "new " + Site->allocClass()->name() + "@" +
             std::to_string(Site->id());
  } else {
    Result = "<component " + Synthetic->name() + ">";
  }
  if (!HeapCtx.empty())
    Result += " [ctx:" + std::to_string(HeapCtx.size()) + "]";
  return Result;
}

PointsToAnalysis::PointsToAnalysis(const Program &P,
                                   const threadify::ThreadForest &Forest,
                                   const android::ApiIndex &Apis,
                                   Options Opts)
    : P(P), Forest(Forest), Apis(Apis), Opts(Opts) {
  assert(Opts.K >= 1 && "k must be at least 1");
}

PointsToAnalysis::PointsToAnalysis(const Program &P,
                                   const threadify::ThreadForest &Forest,
                                   const android::ApiIndex &Apis)
    : PointsToAnalysis(P, Forest, Apis, Options()) {}

bool PointsToAnalysis::addAll(std::set<ObjectId> &Dst,
                              const std::set<ObjectId> &Src) {
  bool Added = false;
  for (ObjectId Id : Src)
    Added |= Dst.insert(Id).second;
  Changed |= Added;
  return Added;
}

bool PointsToAnalysis::addOne(std::set<ObjectId> &Dst, ObjectId Id) {
  bool Added = Dst.insert(Id).second;
  Changed |= Added;
  return Added;
}

ObjectId PointsToAnalysis::internObject(const void *SiteKey,
                                        const NewStmt *Site,
                                        const Clazz *Synthetic,
                                        std::vector<const void *> HeapCtx,
                                        Clazz *RuntimeClass) {
  auto Key = std::make_pair(SiteKey, HeapCtx);
  auto It = ObjectIntern.find(Key);
  if (It != ObjectIntern.end())
    return It->second;
  ObjectId Id = static_cast<ObjectId>(Objects.size());
  Objects.push_back({Site, Synthetic, std::move(HeapCtx), RuntimeClass});
  ObjectIntern.emplace(std::move(Key), Id);
  return Id;
}

ObjectId PointsToAnalysis::syntheticObject(Clazz *C) {
  auto It = SyntheticByClass.find(C);
  if (It != SyntheticByClass.end())
    return It->second;
  ObjectId Id = internObject(C, nullptr, C, {}, C);
  SyntheticByClass.emplace(C, Id);
  return Id;
}

bool PointsToAnalysis::syntheticObjectFor(const Clazz *C,
                                          ObjectId &IdOut) const {
  auto It = SyntheticByClass.find(C);
  if (It == SyntheticByClass.end())
    return false;
  IdOut = It->second;
  return true;
}

std::vector<const void *> PointsToAnalysis::heapCtxFor(ObjectId Recv) const {
  // The new object's heap context is the receiver's site chain
  // [site, ctx...] truncated to k-1 entries.
  const AbstractObject &R = Objects[Recv];
  std::vector<const void *> Ctx;
  Ctx.push_back(R.siteKey());
  for (const void *Key : R.HeapCtx) {
    if (Ctx.size() >= Opts.K - 1)
      break;
    Ctx.push_back(Key);
  }
  if (Ctx.size() > Opts.K - 1)
    Ctx.resize(Opts.K - 1);
  return Ctx;
}

void PointsToAnalysis::addReachable(Method *M, ObjectId Recv) {
  MethodCtx Ctx{M, Recv};
  if (!Reachable.insert(Ctx).second)
    return;
  ReachableList.push_back(Ctx);
  // Bind `this`.
  addOne(varSet(M->thisLocal(), Recv), Recv);
  Changed = true;
}

/// Component entry callbacks run on synthetic component objects; every
/// other thread's contexts are discovered through spawn edges during the
/// solve.
void PointsToAnalysis::seedRoots() {
  for (const auto &T : Forest.threads()) {
    if (T->origin() != ThreadOrigin::EntryCallback || T->spawnSite())
      continue;
    Clazz *Component = T->component();
    assert(Component && "component EC without a component");
    addReachable(T->callback(), syntheticObject(Component));
  }
}

void PointsToAnalysis::run() {
  assert(!HasRun && "run() must be called exactly once");
  HasRun = true;
  seedRoots();
  unsigned Sweeps = 0;
  do {
    Changed = false;
    sweep();
    ++Sweeps;
  } while (Changed);
  Stats.set("pointsto.sweeps", Sweeps);
  Stats.set("pointsto.contexts", Reachable.size());
  Stats.set("pointsto.objects", Objects.size());
  Stats.set("pointsto.spawns", Spawns.size());
  uint64_t Edges = 0;
  for (const auto &[From, Tos] : CallEdges)
    Edges += Tos.size();
  Stats.set("pointsto.calledges", Edges);
}

void PointsToAnalysis::sweep() {
  // ReachableList can grow while we iterate; index loop keeps it valid.
  for (size_t I = 0; I < ReachableList.size(); ++I) {
    // Safe point: between contexts the solver state is merely
    // incomplete, never inconsistent.
    if (Opts.Deadline)
      Opts.Deadline->check("pointsto");
    MethodCtx Ctx = ReachableList[I];
    processContext(Ctx);
  }
}

void PointsToAnalysis::processContext(const MethodCtx &Ctx) {
  forEachStmt(*Ctx.M, [&](const Stmt &S) { processStmt(S, Ctx); });
}

void PointsToAnalysis::processStmt(const Stmt &S, const MethodCtx &Ctx) {
  switch (S.kind()) {
  case Stmt::Kind::New: {
    const auto *New = cast<NewStmt>(&S);
    ObjectId Obj = internObject(New, New, nullptr, heapCtxFor(Ctx.Recv),
                                New->allocClass());
    addOne(varSet(New->dst(), Ctx.Recv), Obj);
    return;
  }
  case Stmt::Kind::Copy: {
    const auto *Copy = cast<CopyStmt>(&S);
    addAll(varSet(Copy->dst(), Ctx.Recv), varSet(Copy->src(), Ctx.Recv));
    return;
  }
  case Stmt::Kind::Load: {
    const auto *Load = cast<LoadStmt>(&S);
    // Copy the base set: field insertions must not invalidate iteration.
    std::set<ObjectId> Base = varSet(Load->base(), Ctx.Recv);
    for (ObjectId O : Base)
      addAll(varSet(Load->dst(), Ctx.Recv),
             FieldPtsMap[{O, Load->field()}]);
    return;
  }
  case Stmt::Kind::Store: {
    const auto *Store = cast<StoreStmt>(&S);
    if (!Store->src())
      return; // null store: the "free" adds no pointees
    std::set<ObjectId> Base = varSet(Store->base(), Ctx.Recv);
    for (ObjectId O : Base)
      addAll(FieldPtsMap[{O, Store->field()}],
             varSet(Store->src(), Ctx.Recv));
    return;
  }
  case Stmt::Kind::Call: {
    const auto *Call = cast<CallStmt>(&S);
    const ApiCallInfo &Info = Apis.lookup(*Call);
    if (Info.isApi())
      processApiCall(*Call, Info, Ctx);
    else
      processOrdinaryCall(*Call, Ctx);
    return;
  }
  case Stmt::Kind::Return: {
    const auto *Ret = cast<ReturnStmt>(&S);
    if (Ret->src())
      addAll(RetPts[{Ctx.M, Ctx.Recv}], varSet(Ret->src(), Ctx.Recv));
    return;
  }
  case Stmt::Kind::If:
  case Stmt::Kind::Sync:
    return; // children visited by forEachStmt
  }
}

void PointsToAnalysis::processOrdinaryCall(const CallStmt &Call,
                                           const MethodCtx &Ctx) {
  std::set<ObjectId> Recvs = varSet(Call.recv(), Ctx.Recv);
  for (ObjectId O : Recvs) {
    Method *Target = Objects[O].RuntimeClass->findMethod(Call.callee());
    if (!Target)
      continue; // framework method we do not model; edge dropped
    addReachable(Target, O);
    CallEdges[Ctx].insert({Target, O});
    // Parameter binding (arity mismatches bind the common prefix).
    size_t N = std::min(Call.args().size(), Target->params().size());
    for (size_t I = 0; I < N; ++I)
      addAll(varSet(Target->params()[I], O),
             varSet(Call.args()[I], Ctx.Recv));
    if (Call.dst())
      addAll(varSet(Call.dst(), Ctx.Recv), RetPts[{Target, O}]);
  }
}

void PointsToAnalysis::spawn(const CallStmt &Call, ApiKind Kind,
                             Method *Target, ObjectId Recv,
                             const MethodCtx &Poster) {
  addReachable(Target, Recv);
  SpawnRecord Record{&Call, Kind, Target, Recv, Poster};
  if (Spawns.insert(Record).second)
    Changed = true;
}

void PointsToAnalysis::processApiCall(const CallStmt &Call,
                                      const ApiCallInfo &Info,
                                      const MethodCtx &Ctx) {
  auto Arg0Set = [&]() -> std::set<ObjectId> {
    if (Call.args().empty())
      return {};
    return varSet(Call.args()[0], Ctx.Recv);
  };
  auto RecvSet = [&]() -> std::set<ObjectId> {
    return varSet(Call.recv(), Ctx.Recv);
  };
  auto SpawnOn = [&](const std::set<ObjectId> &Objs, const char *Name,
                     ApiKind Kind) {
    for (ObjectId O : Objs)
      if (Method *Target = Objects[O].RuntimeClass->findMethod(Name))
        spawn(Call, Kind, Target, O, Ctx);
  };

  switch (Info.Kind) {
  case ApiKind::HandlerPost:
  case ApiKind::RunOnUiThread:
    SpawnOn(Arg0Set(), "run", Info.Kind);
    return;
  case ApiKind::HandlerSend:
    SpawnOn(RecvSet(), "handleMessage", Info.Kind);
    return;
  case ApiKind::BindService:
    SpawnOn(Arg0Set(), "onServiceConnected", Info.Kind);
    SpawnOn(Arg0Set(), "onServiceDisconnected", Info.Kind);
    return;
  case ApiKind::RegisterReceiver:
    SpawnOn(Arg0Set(), "onReceive", Info.Kind);
    return;
  case ApiKind::SetListener: {
    for (ObjectId O : Arg0Set()) {
      Clazz *C = Objects[O].RuntimeClass;
      for (const auto &M : C->methods())
        if (android::classifyCallback(C->kind(), M->name()) !=
            CallbackKind::None)
          spawn(Call, Info.Kind, M.get(), O, Ctx);
    }
    return;
  }
  case ApiKind::AsyncExecute:
    SpawnOn(RecvSet(), "doInBackground", Info.Kind);
    SpawnOn(RecvSet(), "onPreExecute", Info.Kind);
    SpawnOn(RecvSet(), "onProgressUpdate", Info.Kind);
    SpawnOn(RecvSet(), "onPostExecute", Info.Kind);
    return;
  case ApiKind::ThreadStart:
    SpawnOn(RecvSet(), "run", Info.Kind);
    return;
  case ApiKind::PublishProgress:
  case ApiKind::Finish:
  case ApiKind::UnbindService:
  case ApiKind::UnregisterReceiver:
  case ApiKind::RemoveCallbacks:
  case ApiKind::None:
    return;
  }
}

const std::set<ObjectId> &
PointsToAnalysis::ptsOf(const Local *L, const MethodCtx &Ctx) const {
  static const std::set<ObjectId> Empty;
  auto It = VarPts.find({L, Ctx.Recv});
  return It == VarPts.end() ? Empty : It->second;
}

const std::set<ObjectId> &
PointsToAnalysis::fieldPts(ObjectId Obj, const Field *F) const {
  static const std::set<ObjectId> Empty;
  auto It = FieldPtsMap.find({Obj, F});
  return It == FieldPtsMap.end() ? Empty : It->second;
}
