//===- analysis/RefuterModel.h - Shared refuter event model -----*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event-system model both refutation tiers search: the relevant
/// callbacks of one (use-thread, free-thread) pair resolved to indexed
/// ModelThreads with post/FIFO/kill/revive edges, plus the applicability
/// gates (activation atomicity, escape, capacity) that decide whether the
/// abstraction may run at all. All framework facts — phase rules, kill
/// rule coverage, activation multiplicity traits — come from the
/// declarative android::FrameworkSpec rather than hard-coded tables, so
/// HbRefuter (tier 1) and HistoryRefuter (tier 2) stay consistent by
/// construction.
///
/// Tier 2 additionally asks the builder for *inter-procedural* revive and
/// kill facts (must-alloc-at-exit / must-cancel through this-calls); tier
/// 1 keeps the intra-procedural facts so its verdicts are unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_ANALYSIS_REFUTERMODEL_H
#define NADROID_ANALYSIS_REFUTERMODEL_H

#include "analysis/CancelReach.h"
#include "analysis/Escape.h"
#include "analysis/HbQuery.h"
#include "analysis/MethodCaches.h"
#include "analysis/PointsTo.h"
#include "analysis/ThreadReach.h"
#include "android/FrameworkSpec.h"
#include "threadify/ThreadForest.h"

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace nadroid::analysis {

/// One relevant callback, with everything legality checks need resolved
/// to indices up front.
struct ModelThread {
  const threadify::ModeledThread *T = nullptr;
  int Parent = -1; ///< poster's index, -1 when externally triggered
  int Comp = -1;   ///< component index, -1 when none
  /// Runs at most once per poster activation (one post = one run).
  bool OnePerPost = false;
  /// Runs at most once overall (AsyncTask pre/post of one instance).
  bool OnceOnly = false;
  /// The callback re-allocates the racy field on every path: its
  /// activation revives the field (the RHB proof mechanism).
  bool MustRealloc = false;
  /// MustRealloc holds only through helper calls (tier-2 refinement).
  bool ReviveViaHelper = false;
  /// Entry callback that activates only while resumed (UI events).
  bool NeedsResumed = false;
  /// The spec phase rule driving the component machine; null for
  /// callbacks that do not change the phase (and for posted callbacks).
  const android::FrameworkSpec::PhaseRule *PhaseRule = nullptr;
  /// Sibling postees that must stay ahead: same poster, same looper,
  /// spawn site dominating ours (per-looper FIFO serialization).
  std::vector<int> FifoPred;
};

/// One must-cancellation of the free: whenever the free has executed, the
/// covered callbacks can never activate again.
struct ModelCancel {
  android::ApiKind Kind = android::ApiKind::None;
  uint32_t KillMask = 0; ///< bit per relevant thread index
};

/// The built model for one refutation query.
struct RefuterModel {
  std::vector<ModelThread> Threads;
  std::vector<ModelCancel> Cancels;
  /// Human-readable kill-edge facts, for the proof chain.
  std::vector<std::string> CancelFacts;
  /// Human-readable inter-procedural revive facts (tier 2 only).
  std::vector<std::string> ReviveFacts;
  int UseIdx = -1;
  int FreeIdx = -1;
  bool FreeMustRealloc = false;
  bool UseProtected = false;
  size_t NumComponents = 0;

  /// True when component \p C has a callback whose phase rule admits
  /// activation from NotCreated (a modeled onCreate).
  bool componentHasCreate(size_t C) const {
    for (const ModelThread &TI : Threads)
      if (TI.Comp == static_cast<int>(C) && TI.PhaseRule &&
          (TI.PhaseRule->FromMask &
           (1u << static_cast<unsigned>(
                android::FrameworkSpec::Phase::NotCreated))) != 0)
        return true;
    return false;
  }
};

/// Capacity limits and fact sources for one build.
struct ModelOptions {
  size_t MaxThreads = 12;
  size_t MaxComponents = 4;
  /// Derive must-realloc facts through this-calls (tier-2 revive
  /// refinement) instead of intra-procedurally.
  bool InterprocRevive = false;
  /// Derive must-cancel facts through this-calls that dominate the free
  /// (tier-2 kill refinement).
  bool InterprocKill = false;
  /// Call-depth bound for the inter-procedural fact derivations.
  unsigned InterprocDepth = 3;
};

/// Builds RefuterModels. Thread-safe: the underlying caches are
/// internally synchronized and the inter-procedural memo takes a lock, so
/// the filter engine's parallel verdict sweep can share one instance.
///
/// With an HbQuery attached, the statement-independent half of a build —
/// the relevant-callback set, component list, phase rules and FIFO edges
/// — is served from the shared pair-skeleton cache, keyed on the thread
/// pair *and* the capacity tier (tier 1's 12/4 and tier 2's 24/8 gates
/// demote different pairs, so tiers never share skeletons). The field-
/// and flag-dependent facts (must-realloc, revive/kill edges) are always
/// derived per call.
class ModelBuilder {
public:
  ModelBuilder(const threadify::ThreadForest &Forest,
               const PointsToAnalysis &PTA, const ThreadReach &Reach,
               const CancelReach &Cancel, const EscapeAnalysis &Escape,
               MethodCfgCache &Cfgs, MethodAllocFlowCache &Alloc,
               const android::FrameworkSpec &Spec,
               const HbQuery *HQ = nullptr)
      : Forest(Forest), PTA(PTA), Reach(Reach), Cancel(Cancel),
        Escape(Escape), Cfgs(Cfgs), Alloc(Alloc), Spec(Spec), HQ(HQ) {}

  /// Builds the model for one refutation query. On success returns an
  /// empty string and fills \p Out; otherwise returns the reason the
  /// abstraction is inapplicable (the demotion message).
  std::string build(const ir::LoadStmt *Use, const ir::StoreStmt *Free,
                    const ir::Field *F, const threadify::ModeledThread *UseT,
                    const threadify::ModeledThread *FreeT,
                    const ModelOptions &O, RefuterModel &Out) const;

  const android::FrameworkSpec &spec() const { return Spec; }

  /// Fields \p M leaves freshly allocated at exit on every path,
  /// following this-calls up to \p Depth levels (Depth 0 = the
  /// intra-procedural result). Memoized per (method, depth).
  const std::set<const ir::Field *> &
  interprocMustAlloc(const ir::Method &M, unsigned Depth) const;

private:
  /// The statement-independent half of build(): relevant-callback
  /// collection, capacity/looper gating, component indexing, phase rules
  /// and FIFO predecessor edges. Pure in (UseT, FreeT, O.MaxThreads,
  /// O.MaxComponents) — exactly the skeleton cache's key.
  void computeSkeleton(const threadify::ModeledThread *UseT,
                       const threadify::ModeledThread *FreeT,
                       const ModelOptions &O, PairSkeleton &Out) const;

  /// The callee of a this-call, resolved within the receiver class;
  /// nullptr for framework/unknown calls.
  ir::Method *resolveThisCallee(const ir::CallStmt &Call) const;

  /// Cancellations that must execute whenever \p M returns: direct
  /// cancel sites dominating M's exit plus, recursively, this-calls
  /// dominating M's exit whose callee must-cancels at exit.
  void mustCancelsAtExit(ir::Method &M, unsigned Depth,
                         std::vector<CancelInfo> &Out) const;

  const threadify::ThreadForest &Forest;
  const PointsToAnalysis &PTA;
  const ThreadReach &Reach;
  const CancelReach &Cancel;
  const EscapeAnalysis &Escape;
  MethodCfgCache &Cfgs;
  MethodAllocFlowCache &Alloc;
  const android::FrameworkSpec &Spec;
  const HbQuery *HQ = nullptr;

  mutable std::mutex MemoMu;
  mutable std::map<std::pair<const ir::Method *, unsigned>,
                   std::set<const ir::Field *>>
      AllocMemo;
};

} // namespace nadroid::analysis

#endif // NADROID_ANALYSIS_REFUTERMODEL_H
